package drimann_test

import (
	"reflect"
	"testing"
	"time"

	"drimann"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow.
func TestPublicAPIEndToEnd(t *testing.T) {
	corpus := drimann.Generate(drimann.SynthConfig{
		N: 4000, D: 32, NumQueries: 32, NumClusters: 24, Seed: 5, Noise: 9,
	})
	ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
		NList: 32, M: 8, CB: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = 16
	opts.NProbe = 8
	eng, err := drimann.NewEngine(ix, corpus.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SearchBatch(corpus.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.QPS <= 0 {
		t.Fatalf("bad QPS: %+v", res.Metrics)
	}
	gt := drimann.GroundTruth(corpus.Base, corpus.Queries, 10, 0)
	if r := drimann.Recall(gt, res.IDs, 10); r < 0.6 {
		t.Fatalf("public API recall = %v, want >= 0.6", r)
	}
}

func TestPublicAPIVariants(t *testing.T) {
	corpus := drimann.Generate(drimann.SynthConfig{
		N: 2500, D: 16, NumQueries: 8, NumClusters: 16, Seed: 7, Noise: 9,
	})
	for _, variant := range []string{"pq", "opq", "dpq"} {
		ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
			NList: 16, M: 4, CB: 32, Variant: variant, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if ix.NList != 16 {
			t.Fatalf("%s: bad index", variant)
		}
	}
}

// TestPublicAPISharded exercises the documented sharded flow: BuildSharded
// results are bit-identical to a single engine over the same index.
func TestPublicAPISharded(t *testing.T) {
	corpus := drimann.Generate(drimann.SynthConfig{
		N: 4000, D: 32, NumQueries: 24, NumClusters: 24, Seed: 5, Noise: 9,
	})
	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = 16
	opts.NProbe = 8
	cl, err := drimann.BuildSharded(corpus.Base, corpus.Queries,
		drimann.IndexOptions{NList: 32, M: 8, CB: 64, Seed: 2},
		drimann.ClusterOptions{Shards: 3, Assignment: drimann.AssignKMeans, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := drimann.NewEngine(cl.Index(), corpus.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.SearchBatch(corpus.Queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.SearchBatch(corpus.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, ref.IDs) {
		t.Fatal("sharded IDs diverge from single engine")
	}
	if got.Metrics.QPS <= 0 || len(cl.Shards()) != 3 {
		t.Fatalf("bad cluster state: QPS=%v shards=%d", got.Metrics.QPS, len(cl.Shards()))
	}
}

// TestLatencyPercentileContract is the table test for the documented
// nearest-rank contract of the public wrapper: p=0 clamps to the minimum,
// p=1 is the maximum, n=1 returns the only element for every p, and
// unsorted input indexes the slice as-is (well-defined, caller's bug).
func TestLatencyPercentileContract(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	unsorted := []time.Duration{ms(10), ms(1), ms(7), ms(3)}
	cases := []struct {
		name string
		in   []time.Duration
		p    float64
		want time.Duration
	}{
		{"empty", nil, 0.5, 0},
		{"p=0 clamps to minimum", sorted, 0, ms(1)},
		{"negative p clamps to minimum", sorted, -0.3, ms(1)},
		{"p=1 is the maximum", sorted, 1, ms(10)},
		{"p>1 clamps to maximum", sorted, 1.5, ms(10)},
		{"p50 nearest rank", sorted, 0.5, ms(5)},
		{"p95 on 10 samples is rank 10", sorted, 0.95, ms(10)},
		{"p90 on 10 samples is rank 9", sorted, 0.9, ms(9)},
		{"n=1 any p", []time.Duration{ms(42)}, 0.01, ms(42)},
		{"n=1 p=1", []time.Duration{ms(42)}, 1, ms(42)},
		// The documented sharp edge: unsorted input is indexed as-is, so
		// "p=0.5 of 4 samples" is whatever sits at index 1 — not the median.
		{"unsorted input indexes as-is", unsorted, 0.5, ms(1)},
		{"unsorted input p=1 is last element", unsorted, 1, ms(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := drimann.LatencyPercentile(c.in, c.p); got != c.want {
				t.Fatalf("LatencyPercentile(%v, %v) = %v, want %v", c.in, c.p, got, c.want)
			}
		})
	}
}

func TestPresetsShapes(t *testing.T) {
	cases := map[string]struct {
		s   *drimann.Synth
		dim int
	}{
		"SIFT":   {drimann.SIFT(500, 4, 1), 128},
		"DEEP":   {drimann.DEEP(500, 4, 1), 96},
		"SPACEV": {drimann.SPACEV(500, 4, 1), 100},
		"T2I":    {drimann.T2I(500, 4, 1), 200},
	}
	for name, c := range cases {
		if c.s.Base.D != c.dim {
			t.Fatalf("%s dim = %d, want %d", name, c.s.Base.D, c.dim)
		}
	}
}
