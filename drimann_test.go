package drimann_test

import (
	"testing"

	"drimann"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow.
func TestPublicAPIEndToEnd(t *testing.T) {
	corpus := drimann.Generate(drimann.SynthConfig{
		N: 4000, D: 32, NumQueries: 32, NumClusters: 24, Seed: 5, Noise: 9,
	})
	ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
		NList: 32, M: 8, CB: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = 16
	opts.NProbe = 8
	eng, err := drimann.NewEngine(ix, corpus.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SearchBatch(corpus.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.QPS <= 0 {
		t.Fatalf("bad QPS: %+v", res.Metrics)
	}
	gt := drimann.GroundTruth(corpus.Base, corpus.Queries, 10, 0)
	if r := drimann.Recall(gt, res.IDs, 10); r < 0.6 {
		t.Fatalf("public API recall = %v, want >= 0.6", r)
	}
}

func TestPublicAPIVariants(t *testing.T) {
	corpus := drimann.Generate(drimann.SynthConfig{
		N: 2500, D: 16, NumQueries: 8, NumClusters: 16, Seed: 7, Noise: 9,
	})
	for _, variant := range []string{"pq", "opq", "dpq"} {
		ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
			NList: 16, M: 4, CB: 32, Variant: variant, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if ix.NList != 16 {
			t.Fatalf("%s: bad index", variant)
		}
	}
}

func TestPresetsShapes(t *testing.T) {
	cases := map[string]struct {
		s   *drimann.Synth
		dim int
	}{
		"SIFT":   {drimann.SIFT(500, 4, 1), 128},
		"DEEP":   {drimann.DEEP(500, 4, 1), 96},
		"SPACEV": {drimann.SPACEV(500, 4, 1), 100},
		"T2I":    {drimann.T2I(500, 4, 1), 200},
	}
	for name, c := range cases {
		if c.s.Base.D != c.dim {
			t.Fatalf("%s dim = %d, want %d", name, c.s.Base.D, c.dim)
		}
	}
}
