// Quickstart: build a DRIM-ANN index over a synthetic SIFT-shaped corpus,
// deploy it on the simulated UPMEM DRAM-PIM system, and run a query batch.
package main

import (
	"fmt"
	"log"

	"drimann"
)

func main() {
	// 1. A corpus: 50k synthetic 128-dim uint8 vectors shaped like SIFT,
	//    plus 500 queries drawn from the same distribution.
	corpus := drimann.SIFT(50000, 500, 1)
	fmt.Printf("corpus: %d x %d uint8 vectors\n", corpus.Base.N, corpus.Base.D)

	// 2. An IVF-PQ index: 512 coarse clusters, 16 subvectors, 256-entry
	//    codebooks — the configuration family the paper evaluates.
	ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
		NList: 512, M: 32, CB: 256, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: nlist=%d, ~%.0f points per cluster\n", ix.NList, ix.AvgListLen())

	// 3. The engine: deploys the index across 128 simulated DPUs with all
	//    of the paper's optimizations on (SQT, WRAM buffering, lock
	//    pruning, layout balancing, greedy scheduling). The query workload
	//    doubles as the heat profile for the layout optimizer.
	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = 128
	opts.NProbe = 32
	opts.K = 10
	eng, err := drimann.NewEngine(ix, corpus.Queries, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Search. Results are bit-identical to a single-threaded integer
	//    IVF-PQ scan; the metrics are simulated UPMEM timings.
	res, err := eng.SearchBatch(corpus.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d queries: %.0f QPS (simulated), %d launches, imbalance %.2f\n",
		res.Metrics.Queries, res.Metrics.QPS, res.Metrics.Launches, res.Metrics.AvgImbalance())

	// 5. Verify quality against exact brute force.
	gt := drimann.GroundTruth(corpus.Base, corpus.Queries, 10, 0)
	fmt.Printf("recall@10 = %.3f\n", drimann.Recall(gt, res.IDs, 10))
	fmt.Printf("query 0 -> %v\n", res.IDs[0])
}
