// Quickstart: build a DRIM-ANN index over a synthetic SIFT-shaped corpus,
// deploy it on the simulated UPMEM DRAM-PIM system, run a query batch,
// compare it head-to-head against the graph backend on the same corpus,
// serve single queries online through the micro-batching server, scale out
// across a sharded scatter-gather fleet, and mask an injected straggler
// with replica hedging.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"drimann"
	"drimann/internal/fault"
)

func main() {
	// 1. A corpus: 50k synthetic 128-dim uint8 vectors shaped like SIFT,
	//    plus 500 queries drawn from the same distribution.
	corpus := drimann.SIFT(50000, 500, 1)
	fmt.Printf("corpus: %d x %d uint8 vectors\n", corpus.Base.N, corpus.Base.D)

	// 2. An IVF-PQ index: 512 coarse clusters, 16 subvectors, 256-entry
	//    codebooks — the configuration family the paper evaluates.
	ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
		NList: 512, M: 32, CB: 256, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: nlist=%d, ~%.0f points per cluster\n", ix.NList, ix.AvgListLen())

	// 3. The engine: deploys the index across 128 simulated DPUs with all
	//    of the paper's optimizations on (SQT, WRAM buffering, lock
	//    pruning, layout balancing, greedy scheduling). The query workload
	//    doubles as the heat profile for the layout optimizer.
	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = 128
	opts.NProbe = 32
	opts.K = 10
	eng, err := drimann.NewEngine(ix, corpus.Queries, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Search. Results are bit-identical to a single-threaded integer
	//    IVF-PQ scan; the metrics are simulated UPMEM timings.
	res, err := eng.SearchBatch(corpus.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d queries: %.0f QPS (simulated), %d launches, imbalance %.2f\n",
		res.Metrics.Queries, res.Metrics.QPS, res.Metrics.Launches, res.Metrics.AvgImbalance())

	// 5. Verify quality against exact brute force.
	gt := drimann.GroundTruth(corpus.Base, corpus.Queries, 10, 0)
	fmt.Printf("recall@10 = %.3f\n", drimann.Recall(gt, res.IDs, 10))
	fmt.Printf("query 0 -> %v\n", res.IDs[0])

	// 6. The same corpus on the other backend: a Vamana-style beam-search
	//    graph engine priced on the same simulated PIM cost model, behind
	//    the same engine contract (see "Backends" in the package docs).
	//    Head-to-head against the IVF numbers from steps 4-5 — the graph
	//    trades build time and mutability for recall per unit of simulated
	//    work. `drim-bench -headtohead` sweeps both accuracy knobs.
	gopts := drimann.DefaultGraphOptions()
	gopts.NumDPUs = 128
	gopts.K = 10
	geng, err := drimann.NewGraphEngine(corpus.Base, gopts)
	if err != nil {
		log.Fatal(err)
	}
	gres, err := geng.SearchBatch(corpus.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("head-to-head over %d queries:\n", corpus.Queries.N)
	fmt.Printf("  ivf   nprobe=%-3d recall@10=%.3f  %8.0f QPS (simulated)\n",
		opts.NProbe, drimann.Recall(gt, res.IDs, 10), res.Metrics.QPS)
	fmt.Printf("  graph beam=%-5d recall@10=%.3f  %8.0f QPS (simulated)\n",
		gopts.SearchBeam, drimann.Recall(gt, gres.IDs, 10), gres.Metrics.QPS)

	// 7. Online serving: wrap the engine in the deadline-aware
	//    micro-batching server and submit single queries from concurrent
	//    goroutines, the way live traffic arrives. Per-query results are
	//    bit-identical to the offline batch above.
	// With 4 closed-loop clients at most 4 queries are ever in flight, so
	// here the 500us MaxWait is what triggers each launch; MaxBatch only
	// kicks in under higher concurrency (see examples/loadbalance).
	srv, err := drimann.NewServer(eng, drimann.ServerOptions{
		MaxBatch: 64,
		MaxWait:  500 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for qi := c; qi < 64; qi += 4 {
				resp, err := srv.Search(context.Background(), corpus.Queries.Vec(qi), 10)
				if err != nil {
					log.Fatalf("query %d: %v", qi, err)
				}
				if qi == 0 {
					fmt.Printf("served query 0 in %s (batch of %d) -> %v\n",
						resp.Latency.Round(time.Microsecond), resp.BatchSize, resp.IDs)
				}
			}
		}(c)
	}
	wg.Wait()
	st := srv.Stats()
	fmt.Printf("served %d queries in %d launches (mean batch %.1f)\n",
		st.Completed, st.Batches, st.MeanBatch)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}

	// 8. Scale out: partition the same index across 4 shard engines (the
	//    rack-scale deployment — each shard simulates its own PIM system)
	//    and search through the scatter-gather front. Under AssignKMeans the
	//    front door runs coarse locate once and contacts only the shards
	//    that own probed clusters (selective scatter), so the mean fan-out
	//    stays below the shard count. The merged top-k is bit-identical to
	//    the single-engine batch in step 4; the metrics are the cross-shard
	//    parallel view (the fleet is as slow as its slowest shard, counters
	//    sum).
	cl, err := drimann.NewCluster(ix, corpus.Queries, drimann.ClusterOptions{
		Shards: 4, Assignment: drimann.AssignKMeans, Engine: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	cres, err := cl.SearchBatch(corpus.Queries)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for qi := range res.IDs {
		if !slices.Equal(cres.IDs[qi], res.IDs[qi]) {
			identical = false
		}
	}
	fmt.Printf("sharded fleet (4 shards): %.0f QPS (simulated), results identical to single engine: %v\n",
		cres.Metrics.QPS, identical)
	cstats := cl.Stats()
	fmt.Printf("selective scatter: mean fan-out %.2f / max %d of 4 shards\n",
		cstats.Route.MeanFanout(), cstats.Route.MaxFanout)

	// 9. Replication masks the tail: the same index across 2 shards with 2
	//    replicas each. Replicas are deterministic engine clones, so any
	//    replica's answer is its shard's answer — the front door routes each
	//    query to the less loaded replica, and hedges to the other when the
	//    first stalls. To show it working, one replica of every shard is
	//    wrapped in a fault-injected straggler that stalls every 3rd call by
	//    40ms; results stay bit-identical to step 4 regardless of which
	//    replica answers.
	rcl, err := drimann.NewCluster(ix, corpus.Queries, drimann.ClusterOptions{
		Shards: 2, Replicas: 2, Assignment: drimann.AssignHash, Engine: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	route := drimann.ClusterRouteOptions{
		WrapReplica: func(shard, replica int, r drimann.ClusterReplica) drimann.ClusterReplica {
			if replica == 1 {
				return fault.Wrap(r, fault.Plan{
					Delay: 40 * time.Millisecond, DelayEvery: 3, Seed: int64(shard),
				})
			}
			return r
		},
	}
	rsrv, err := drimann.NewClusterServerRouted(rcl, drimann.ServerOptions{
		MaxBatch: 64, MaxWait: 500 * time.Microsecond,
	}, route)
	if err != nil {
		log.Fatal(err)
	}
	var diverged atomic.Bool
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for qi := c; qi < 64; qi += 4 {
				resp, err := rsrv.Search(context.Background(), corpus.Queries.Vec(qi), 10)
				if err != nil {
					log.Fatalf("replicated query %d: %v", qi, err)
				}
				if !slices.Equal(resp.IDs, res.IDs[qi][:10]) {
					diverged.Store(true)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := rsrv.Close(); err != nil {
		log.Fatal(err)
	}
	rst := rsrv.Stats()
	fmt.Printf("replicated fleet (2 shards x 2 replicas, straggler injected): %d queries, %d hedges (%d won), results identical: %v\n",
		rst.Completed, rst.Hedged, rst.HedgeWins, !diverged.Load())

	// 10. Live mutability: the IVF index stays mutable after deployment
	//     (the graph backend is search-only — a serving-path mutation would
	//     return serve.ErrUnsupported). Insert a new point (assigned to its
	//     nearest cluster and PQ-encoded with the frozen codebooks, findable
	//     by the very next search), delete it again, and Compact — after
	//     which results are bit-identical to the never-mutated engine of
	//     step 4.
	newID := int32(corpus.Base.N)
	newVec := drimann.Vectors{N: 1, D: corpus.Base.D, Data: corpus.Queries.Vec(7)}
	if err := eng.Insert(newVec, []int32{newID}); err != nil {
		log.Fatal(err)
	}
	mres, err := eng.SearchBatch(newVec) // query with the inserted vector itself
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted point %d findable: %v\n", newID, slices.Contains(mres.IDs[0], newID))
	if err := eng.Delete([]int32{newID}); err != nil {
		log.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		log.Fatal(err)
	}
	pres, err := eng.SearchBatch(corpus.Queries)
	if err != nil {
		log.Fatal(err)
	}
	identical = true
	for qi := range res.IDs {
		if !slices.Equal(pres.IDs[qi], res.IDs[qi]) {
			identical = false
		}
	}
	fmt.Printf("after insert -> delete -> compact, results identical to step 4: %v\n", identical)

	// 11. Durability: attach a write-ahead-logged store, mutate through the
	//     serving layer (applied, then logged, then synced — that's what
	//     "acknowledged" means), kill the process, and recover from disk
	//     alone. The recovered engine serves bit-identical results to the
	//     engine at the moment of the kill.
	dir, err := os.MkdirTemp("", "drimann-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := drimann.CreateStore(eng, drimann.DurableOptions{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	dsrv, err := drimann.NewServer(eng, drimann.ServerOptions{
		MaxBatch: 64, MaxWait: 500 * time.Microsecond, Durability: store,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := dsrv.Insert(newVec, []int32{newID}); err != nil {
		log.Fatal(err)
	}
	if err := dsrv.Close(); err != nil { // the "kill": only the directory survives
		log.Fatal(err)
	}
	want, err := eng.SearchBatch(corpus.Queries)
	if err != nil {
		log.Fatal(err)
	}
	reng, _, err := drimann.Recover(drimann.DurableOptions{Dir: dir}, corpus.Queries, opts)
	if err != nil {
		log.Fatal(err)
	}
	rres, err := reng.SearchBatch(corpus.Queries)
	if err != nil {
		log.Fatal(err)
	}
	identical = true
	for qi := range want.IDs {
		if !slices.Equal(rres.IDs[qi], want.IDs[qi]) {
			identical = false
		}
	}
	fmt.Printf("after mutate -> kill -> recover, results identical to the killed engine: %v\n", identical)
}
