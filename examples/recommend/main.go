// Recommendation-system scenario (the paper's motivating workload):
// user-interest embeddings querying an item-embedding corpus with a heavily
// skewed, trending-item query distribution. The example shows why load
// balancing matters on a PIM system — the same engine is run with the
// paper's layout/scheduling optimizations on and off, on the same skewed
// workload.
package main

import (
	"fmt"
	"log"

	"drimann"
)

func main() {
	// Item embeddings: 96-dim (DEEP-like), Zipf-popular items, and a query
	// log dominated by a handful of trending interests (hotspots).
	corpus := drimann.Generate(drimann.SynthConfig{
		Name: "items", N: 60000, D: 96, NumQueries: 512,
		NumClusters: 400, ZipfS: 1.6, QuerySkew: 0.9, Hotspots: 6,
		Noise: 9, Seed: 7,
	})
	ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
		NList: 512, M: 16, CB: 256, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, mutate func(*drimann.EngineOptions)) *drimann.Result {
		opts := drimann.DefaultEngineOptions()
		opts.NumDPUs = 96
		opts.NProbe = 16
		opts.K = 10
		if mutate != nil {
			mutate(&opts)
		}
		eng, err := drimann.NewEngine(ix, corpus.Queries, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.SearchBatch(corpus.Queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.0f QPS   imbalance %.2f   postponed %d\n",
			label, res.Metrics.QPS, res.Metrics.AvgImbalance(), res.Metrics.Postponed)
		return res
	}

	fmt.Println("recommendation workload: 512 queries, 90% skewed to 6 trending interests")
	balanced := run("with load balancing", nil)
	naive := run("without load balancing", func(o *drimann.EngineOptions) {
		o.EnableSplit = false
		o.EnableDup = false
		o.EnableBalance = false
		o.Rebalance = false
		o.Th3 = 0
	})

	fmt.Printf("\nload-balance speedup: %.2fx (paper: 4.8-6.2x at 2543-DPU scale)\n",
		balanced.Metrics.QPS/naive.Metrics.QPS)

	// Same answers either way — balancing only moves work, never changes it.
	for qi := range balanced.IDs {
		for j := range balanced.IDs[qi] {
			if balanced.IDs[qi][j] != naive.IDs[qi][j] {
				log.Fatalf("balancing changed results at query %d", qi)
			}
		}
	}
	fmt.Println("result sets identical across both configurations")
	gt := drimann.GroundTruth(corpus.Base, corpus.Queries, 10, 0)
	fmt.Printf("recall@10 = %.3f\n", drimann.Recall(gt, balanced.IDs, 10))
}
