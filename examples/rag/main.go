// Retrieval-augmented generation (RAG) scenario: passage embeddings are
// searched under a strict recall constraint (missed passages hurt answer
// quality), so the index configuration is chosen by DRIM-ANN's Bayesian
// design space exploration (paper §4.1) instead of by hand.
package main

import (
	"fmt"
	"log"

	"drimann"
	"drimann/internal/dse"
	"drimann/internal/perfmodel"
	"drimann/internal/upmem"
)

func main() {
	// Passage embeddings: 100-dim (SPACEV-like text descriptors).
	corpus := drimann.Generate(drimann.SynthConfig{
		Name: "passages", N: 40000, D: 100, NumQueries: 256,
		NumClusters: 300, Seed: 11, Noise: 9,
	})
	gt := drimann.GroundTruth(corpus.Base, corpus.Queries, 10, 0)

	// Design space: how many clusters to probe, how fine the clustering,
	// and the quantizer resolution.
	space := dse.Space{
		P:     []int{8, 16, 32, 48},
		NList: []int{128, 512},
		M:     []int{10, 20},
		CB:    []int{64, 256},
	}
	host := perfmodel.FromPlatform(upmem.PlatformCPU())
	pim := perfmodel.Hardware{PE: 128, FreqHz: 350e6 * 0.3, Lanes: 1, BWBytes: 128 * 0.7e9}

	indexes := map[string]*drimann.Index{}
	getIndex := func(c dse.Candidate) (*drimann.Index, error) {
		key := fmt.Sprintf("%d/%d/%d", c.NList, c.M, c.CB)
		if ix, ok := indexes[key]; ok {
			return ix, nil
		}
		ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
			NList: c.NList, M: c.M, CB: c.CB, Seed: 11,
		})
		if err == nil {
			indexes[key] = ix
		}
		return ix, err
	}

	res, err := dse.Optimize(space,
		func(c dse.Candidate) (float64, error) {
			p := perfmodel.Params{
				N: int64(corpus.Base.N), Q: corpus.Queries.N, D: corpus.Base.D,
				K: 10, P: c.P, C: max(1, corpus.Base.N/c.NList), M: c.M, CB: c.CB,
			}
			return perfmodel.PredictQPS(p, host, pim, true)
		},
		func(c dse.Candidate) (float64, error) {
			ix, err := getIndex(c)
			if err != nil {
				return 0, err
			}
			got := ix.SearchIntBatch(corpus.Queries, c.P, 10, 0)
			return drimann.Recall(gt, got, 10), nil
		},
		dse.Config{AccuracyConstraint: 0.8, Budget: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DSE chose %s (recall %.3f, feasible=%v) after %d measurements\n",
		res.Best.String(), res.BestRecall, res.Feasible, len(res.History))

	// Deploy the chosen configuration and retrieve passages for a batch of
	// questions.
	ix, err := getIndex(res.Best)
	if err != nil {
		log.Fatal(err)
	}
	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = 128
	opts.NProbe = res.Best.P
	opts.K = 10
	eng, err := drimann.NewEngine(ix, corpus.Queries, opts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := eng.SearchBatch(corpus.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved top-10 passages for %d questions at %.0f QPS (simulated), recall@10 %.3f\n",
		out.Metrics.Queries, out.Metrics.QPS, drimann.Recall(gt, out.IDs, 10))
	fmt.Printf("question 0 -> passages %v\n", out.IDs[0])
}
