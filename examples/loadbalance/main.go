// Load-balance anatomy: runs the same skewed workload through each layout
// stage of DRIM-ANN (paper §3.2 / Figure 5) — naive, +allocation,
// +partition, +duplication, +scheduling — and prints how the DPU load
// distribution tightens at every step.
package main

import (
	"fmt"
	"log"

	"drimann"
)

func main() {
	corpus := drimann.Generate(drimann.SynthConfig{
		Name: "skewed", N: 50000, D: 128, NumQueries: 384,
		NumClusters: 300, ZipfS: 1.7, QuerySkew: 0.92, Hotspots: 5,
		Noise: 9, Seed: 3,
	})
	ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
		NList: 256, M: 16, CB: 256, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	type stage struct {
		name   string
		mutate func(*drimann.EngineOptions)
	}
	stages := []stage{
		{"naive (round-robin clusters)", func(o *drimann.EngineOptions) {
			o.EnableSplit, o.EnableDup, o.EnableBalance = false, false, false
			o.Rebalance, o.Th3 = false, 0
		}},
		{"+ heat-aware allocation", func(o *drimann.EngineOptions) {
			o.EnableSplit, o.EnableDup = false, false
			o.Rebalance, o.Th3 = false, 0
		}},
		{"+ cluster partition", func(o *drimann.EngineOptions) {
			o.EnableDup = false
			o.Rebalance, o.Th3 = false, 0
		}},
		{"+ cluster duplication", func(o *drimann.EngineOptions) {
			o.Rebalance, o.Th3 = false, 0
		}},
		{"+ runtime scheduling (full)", nil},
	}

	var baseline float64
	fmt.Println("stage                              QPS      imbalance  speedup")
	for i, st := range stages {
		opts := drimann.DefaultEngineOptions()
		opts.NumDPUs = 96
		opts.NProbe = 16
		opts.K = 10
		if st.mutate != nil {
			st.mutate(&opts)
		}
		eng, err := drimann.NewEngine(ix, corpus.Queries, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.SearchBatch(corpus.Queries)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = res.Metrics.QPS
		}
		fmt.Printf("%-32s %8.0f   %8.2f   %6.2fx\n",
			st.name, res.Metrics.QPS, res.Metrics.AvgImbalance(),
			res.Metrics.QPS/baseline)
	}
	fmt.Println("\n(paper Figure 13: the full pipeline reaches 4.84x-6.19x at 2543-DPU scale)")
}
