// Load-balance anatomy: runs the same skewed workload through each layout
// stage of DRIM-ANN (paper §3.2 / Figure 5) — naive, +allocation,
// +partition, +duplication, +scheduling — and prints how the DPU load
// distribution tightens at every step. The workload arrives the way real
// traffic does: concurrent clients submit single queries through the
// online serving layer (drimann.NewServer), whose micro-batcher assembles
// the engine launches; the table reports the aggregated simulated metrics.
//
// Layout balancing is an IVF-backend concern: clusters have wildly unequal
// heat, so where they live decides which DPU stalls. The graph backend
// (see "Backends" in the package docs) replicates the whole graph on every
// DPU and spreads queries round-robin, so it has no layout to balance —
// and nothing to show here.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"drimann"
	"drimann/internal/fault"
)

func main() {
	corpus := drimann.Generate(drimann.SynthConfig{
		Name: "skewed", N: 50000, D: 128, NumQueries: 384,
		NumClusters: 300, ZipfS: 1.7, QuerySkew: 0.92, Hotspots: 5,
		Noise: 9, Seed: 3,
	})
	ix, err := drimann.Build(corpus.Base, drimann.IndexOptions{
		NList: 256, M: 16, CB: 256, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	type stage struct {
		name   string
		mutate func(*drimann.EngineOptions)
	}
	stages := []stage{
		{"naive (round-robin clusters)", func(o *drimann.EngineOptions) {
			o.EnableSplit, o.EnableDup, o.EnableBalance = false, false, false
			o.Rebalance, o.Th3 = false, 0
		}},
		{"+ heat-aware allocation", func(o *drimann.EngineOptions) {
			o.EnableSplit, o.EnableDup = false, false
			o.Rebalance, o.Th3 = false, 0
		}},
		{"+ cluster partition", func(o *drimann.EngineOptions) {
			o.EnableDup = false
			o.Rebalance, o.Th3 = false, 0
		}},
		{"+ cluster duplication", func(o *drimann.EngineOptions) {
			o.Rebalance, o.Th3 = false, 0
		}},
		{"+ runtime scheduling (full)", nil},
	}

	var baseline float64
	fmt.Println("stage                              QPS      imbalance  speedup")
	for i, st := range stages {
		opts := drimann.DefaultEngineOptions()
		opts.NumDPUs = 96
		opts.NProbe = 16
		opts.K = 10
		if st.mutate != nil {
			st.mutate(&opts)
		}
		eng, err := drimann.NewEngine(ix, corpus.Queries, opts)
		if err != nil {
			log.Fatal(err)
		}
		// MaxWait far above the clients' inter-arrival jitter makes every
		// launch trigger on a full MaxBatch, so each launch schedules the
		// same 96 queries. Within a launch the arrival order still steers
		// the greedy scheduler across replica DPUs, so the printed metrics
		// can wobble slightly run to run — that order dependence is a real
		// property of online serving; the stage-to-stage progression is
		// what the table demonstrates. (Results are bit-identical always;
		// only the simulated load split varies.)
		srv, err := drimann.NewServer(eng, drimann.ServerOptions{
			MaxBatch: 96, MaxWait: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Closed-loop clients bound the in-flight queries, which bounds the
		// micro-batch size; load balancing needs full launches to matter,
		// so drive enough concurrency to fill MaxBatch.
		const clients = 96
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for qi := c; qi < corpus.Queries.N; qi += clients {
					if _, err := srv.Search(context.Background(), corpus.Queries.Vec(qi), 0); err != nil {
						log.Fatalf("query %d: %v", qi, err)
					}
				}
			}(c)
		}
		wg.Wait()
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
		m := srv.Metrics()
		if i == 0 {
			baseline = m.QPS
		}
		fmt.Printf("%-32s %8.0f   %8.2f   %6.2fx\n",
			st.name, m.QPS, m.AvgImbalance(), m.QPS/baseline)
	}
	fmt.Println("\n(paper Figure 13: the full pipeline reaches 4.84x-6.19x at 2543-DPU scale)")

	// Beyond one PIM system: the same skewed traffic through a sharded
	// fleet — 3 engines of 32 DPUs each behind one scatter-gather front
	// door (drimann.NewClusterServer), with a micro-batcher per shard.
	// Results stay bit-identical to any single engine over the full index;
	// the aggregated metrics are the cross-shard parallel view, so QPS
	// reflects the slowest shard per launch wave.
	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = 32
	opts.NProbe = 16
	opts.K = 10
	cl, err := drimann.NewCluster(ix, corpus.Queries, drimann.ClusterOptions{
		Shards: 3, Assignment: drimann.AssignKMeans, Engine: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	csrv, err := drimann.NewClusterServer(cl, drimann.ServerOptions{
		MaxBatch: 96, MaxWait: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	const clients = 96
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for qi := c; qi < corpus.Queries.N; qi += clients {
				if _, err := csrv.Search(context.Background(), corpus.Queries.Vec(qi), 0); err != nil {
					log.Fatalf("sharded query %d: %v", qi, err)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := csrv.Close(); err != nil {
		log.Fatal(err)
	}
	cst := csrv.Stats()
	fmt.Printf("\nsharded fleet (3 shards x 32 DPUs): %d queries, fleet QPS %.0f, imbalance %.2f, mean shard batch %.1f\n",
		cst.Completed, cst.Agg.Sim.QPS, cst.Agg.Sim.AvgImbalance(), cst.Agg.MeanBatch)
	// Selective scatter under AssignKMeans: the front door located each
	// query once and contacted only the shards owning its probed clusters.
	fmt.Printf("selective scatter: mean fan-out %.2f / max %d of 3 shards\n",
		cst.Route.MeanFanout(), cst.Route.MaxFanout)

	// Replication is load balancing across time: 2 replicas per shard mask
	// a replica that sometimes stalls the way layout balancing masks a DPU
	// that is sometimes overloaded. One replica of each shard is wrapped in
	// a fault-injected straggler (every 3rd call stalls 30ms); the router
	// picks the less loaded replica per query and hedges to the sibling when
	// the pick stalls, so the skewed traffic completes — bit-identically —
	// without ever waiting out a stall.
	rcl, err := drimann.NewCluster(ix, corpus.Queries, drimann.ClusterOptions{
		Shards: 3, Replicas: 2, Assignment: drimann.AssignKMeans, Engine: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	rsrv, err := drimann.NewClusterServerRouted(rcl, drimann.ServerOptions{
		MaxBatch: 96, MaxWait: 50 * time.Millisecond,
	}, drimann.ClusterRouteOptions{
		WrapReplica: func(shard, replica int, r drimann.ClusterReplica) drimann.ClusterReplica {
			if replica == 1 {
				return fault.Wrap(r, fault.Plan{
					Delay: 30 * time.Millisecond, DelayEvery: 3, Seed: int64(shard),
				})
			}
			return r
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for qi := c; qi < corpus.Queries.N; qi += clients {
				if _, err := rsrv.Search(context.Background(), corpus.Queries.Vec(qi), 0); err != nil {
					log.Fatalf("replicated query %d: %v", qi, err)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := rsrv.Close(); err != nil {
		log.Fatal(err)
	}
	rst := rsrv.Stats()
	fmt.Printf("replicated fleet (3 shards x 2 replicas, straggler injected): %d queries, %d hedges (%d won), %d failovers\n",
		rst.Completed, rst.Hedged, rst.HedgeWins, rst.Failovers)
}
