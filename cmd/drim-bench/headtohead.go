// Head-to-head backend comparison (-headtohead) and the graph-backend
// variant of the self-benchmark (-bench -backend graph). Both backends run
// on the same synthetic SIFT-shaped fixture and the same simulated PIM
// system size; head-to-head drives every query through the online serving
// path (drimann's micro-batching server) so the recorded numbers price the
// whole stack, not just the offline batch loop.

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/engine"
	"drimann/internal/graph"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/serve"
)

// headToHeadGraphOptions is the graph build shared by -headtohead and the
// graph self-benchmark: wide enough to reach competitive recall on the
// 128-dimensional fixture, small enough to build in seconds.
func headToHeadGraphOptions(dpus int) graph.Options {
	o := graph.DefaultOptions()
	o.NumDPUs = dpus
	o.Degree = 24
	o.BuildBeam = 64
	o.K = 10
	return o
}

// serveSweep drives all queries through a fresh server over eng with
// -clients-free defaults (32 concurrent callers, 1ms batching window) and
// returns the per-query IDs, the best wall-clock seconds of runs
// repetitions, and the engine metrics accumulated by the best run.
func serveSweep(eng engine.Engine, qs dataset.U8Set, k, runs int) ([][]int32, float64, engine.Metrics, error) {
	ids := make([][]int32, qs.N)
	best := -1.0
	var bestSim engine.Metrics
	for r := 0; r < runs; r++ {
		srv, err := serve.New(eng, serve.Options{MaxWait: time.Millisecond})
		if err != nil {
			return nil, 0, engine.Metrics{}, err
		}
		const clients = 32
		var wg sync.WaitGroup
		errs := make([]error, clients)
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for qi := c; qi < qs.N; qi += clients {
					resp, err := srv.Search(context.Background(), qs.Vec(qi), k)
					if err != nil {
						errs[c] = err
						return
					}
					ids[qi] = resp.IDs
				}
			}(c)
		}
		wg.Wait()
		sec := time.Since(t0).Seconds()
		m := srv.Metrics()
		if err := srv.Close(); err != nil {
			return nil, 0, engine.Metrics{}, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, 0, engine.Metrics{}, err
			}
		}
		if best < 0 || sec < best {
			best, bestSim = sec, m
		}
	}
	return ids, best, bestSim, nil
}

// runHeadToHead measures recall@10 vs simulated QPS for both backends over
// one corpus, sweeping each backend's accuracy knob (IVF: nprobe; graph:
// search beam), and appends one backend-tagged mode:"headtohead" entry per
// curve point to the trajectory file.
func runHeadToHead(n, queries, dpus int, seed int64, runs int, note, outPath string) error {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	if dpus <= 0 {
		dpus = core.DefaultOptions().NumDPUs
	}
	if seed == 0 {
		seed = 1
	}
	if runs <= 0 {
		runs = 1
	}
	fmt.Printf("drim-bench head-to-head: N=%d queries=%d DPUs=%d runs=%d\n", n, queries, dpus, runs)
	s := dataset.SIFT(n, queries, seed)
	t0 := time.Now()
	gt := dataset.GroundTruth(s.Base, s.Queries, 10, 0)
	fmt.Printf("  ground truth in %.1fs\n", time.Since(t0).Seconds())

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("reading %s: %w", outPath, err)
	}
	prior := trajectory

	record := func(backend, param string, value int, buildSec, recall, wallSec float64, sim engine.Metrics) {
		entry := benchEntry{
			Note: note, Mode: "headtohead", Backend: backend,
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			N:          n, D: s.Base.D, Queries: queries, Runs: runs, DPUs: dpus,
			CurveParam: param, CurveValue: value,
			Recall10: recall, BuildSec: buildSec,
			WallQPS: float64(queries) / wallSec,
			SimQPS:  sim.QPS,
		}
		if prev := lastComparable(prior, entry); prev != nil && prev.SimQPS > 0 {
			entry.SpeedupVsPrev = entry.SimQPS / prev.SimQPS
		}
		trajectory = append(trajectory, entry)
		fmt.Printf("    %-5s %s=%-4d recall@10=%.3f  sim %.0f q/s  wall %.0f q/s\n",
			backend, param, value, recall, entry.SimQPS, entry.WallQPS)
	}

	// IVF-PQ backend: sweep nprobe.
	t0 = time.Now()
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList:       1024,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 4,
		TrainSample: 8000,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	ivfBuild := time.Since(t0).Seconds()
	fmt.Printf("  ivf index built in %.1fs\n", ivfBuild)
	for _, np := range []int{4, 8, 16, 32, 64} {
		opts := core.DefaultOptions()
		opts.NumDPUs = dpus
		opts.NProbe = np
		eng, err := core.New(ix, dataset.U8Set{}, opts)
		if err != nil {
			return err
		}
		ids, wallSec, sim, err := serveSweep(eng, s.Queries, 10, runs)
		if err != nil {
			return err
		}
		record("ivf", "nprobe", np, ivfBuild, dataset.Recall(gt, ids, 10), wallSec, sim)
	}

	// Graph backend: one build, sweep the query-time beam width.
	t0 = time.Now()
	g, err := graph.New(s.Base, headToHeadGraphOptions(dpus))
	if err != nil {
		return err
	}
	graphBuild := time.Since(t0).Seconds()
	fmt.Printf("  graph built in %.1fs (degree=%d)\n", graphBuild, g.Options().Degree)
	for _, beam := range []int{16, 32, 64, 128} {
		eng, err := g.WithSearchOptions(func(o *graph.Options) { o.SearchBeam = beam })
		if err != nil {
			return err
		}
		ids, wallSec, sim, err := serveSweep(eng, s.Queries, 10, runs)
		if err != nil {
			return err
		}
		record("graph", "beam", beam, graphBuild, dataset.Recall(gt, ids, 10), wallSec, sim)
	}

	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded %d entries in %s (total %d)\n",
		len(trajectory)-len(prior), outPath, len(trajectory))
	return nil
}

// runGraphSelfBench is the graph-backend arm of -bench: one deterministic
// build, then the offline batch timed serially (Workers=1) and with the
// worker pool, per GOMAXPROCS value. Entries carry backend:"graph" and the
// build cost; the CL-stage fields stay zero (a graph traversal has no
// cluster-locate stage).
func runGraphSelfBench(n, queries, dpus int, seed int64, runs int, procs []int, note, outPath string) error {
	fmt.Printf("drim-bench self-benchmark (graph backend): N=%d queries=%d DPUs=%d procs=%v runs=%d\n",
		n, queries, dpus, procs, runs)
	s := dataset.SIFT(n, queries, seed)
	t0 := time.Now()
	g, err := graph.New(s.Base, headToHeadGraphOptions(dpus))
	if err != nil {
		return err
	}
	buildSec := time.Since(t0).Seconds()
	fmt.Printf("  graph built in %.1fs\n", buildSec)

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("reading %s: %w", outPath, err)
	}
	prior := trajectory

	timeSearch := func(e *graph.Engine) (float64, float64, error) {
		best := -1.0
		var simQPS float64
		for r := 0; r < runs; r++ {
			t := time.Now()
			res, err := e.SearchBatch(s.Queries)
			if err != nil {
				return 0, 0, err
			}
			if sec := time.Since(t).Seconds(); best < 0 || sec < best {
				best = sec
			}
			simQPS = res.Metrics.QPS
		}
		return best, simQPS, nil
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0)) // restore on exit
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		fmt.Printf("  GOMAXPROCS=%d\n", p)
		serial, err := g.WithSearchOptions(func(o *graph.Options) { o.Workers = 1 })
		if err != nil {
			return err
		}
		pooled, err := g.WithSearchOptions(func(o *graph.Options) { o.Workers = p })
		if err != nil {
			return err
		}
		serialSec, _, err := timeSearch(serial)
		if err != nil {
			return err
		}
		fmt.Printf("    serial (Workers=1):  %.3fs  (%.0f queries/s)\n",
			serialSec, float64(queries)/serialSec)
		poolSec, simQPS, err := timeSearch(pooled)
		if err != nil {
			return err
		}
		fmt.Printf("    pooled (Workers=%d): %.3fs  (%.0f queries/s)  vs serial %.2fx\n",
			p, poolSec, float64(queries)/poolSec, serialSec/poolSec)

		entry := benchEntry{
			Note: note, Backend: "graph",
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: p,
			N:          n, D: s.Base.D, Queries: queries, Runs: runs, DPUs: dpus,
			SerialSec:       serialSec,
			PipelinedSec:    poolSec,
			SpeedupVsSerial: serialSec / poolSec,
			WallQPS:         float64(queries) / poolSec,
			SimQPS:          simQPS,
			BuildSec:        buildSec,
		}
		if prev := lastComparable(prior, entry); prev != nil && poolSec > 0 {
			entry.SpeedupVsPrev = prev.PipelinedSec / poolSec
			fmt.Printf("    vs previous entry (%s): %.2fx\n", prev.Timestamp, entry.SpeedupVsPrev)
		}
		trajectory = append(trajectory, entry)
	}

	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded %d entr%s in %s (total %d)\n",
		len(procs), map[bool]string{true: "y", false: "ies"}[len(procs) == 1], outPath, len(trajectory))
	return nil
}
