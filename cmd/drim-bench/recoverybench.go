package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/durable"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

// runRecoveryBench is the -recovery mode: it prices the durability layer.
// The same SIFT-shaped fixture as -bench is built and checkpointed into a
// real on-disk store, then ~1% of the base count is mutated through the
// apply-then-log path (batched inserts plus a delete pass) twice over
// identical fresh engines — once with the WAL fsynced at every batch
// boundary, once with fsync off — so the entry records what the sync
// actually costs in acknowledged mutations/s. The synced engine is then
// killed (dropped; only its directory survives), Recover is timed, and the
// recovered engine's results are verified bit-identical to the killed
// engine's over the full query set — the recovery contract, checked at
// benchmark scale against the real filesystem. One mode:"recovery" entry
// lands in the trajectory file.
func runRecoveryBench(n, queries, dpus int, seed int64, runs int, note, outPath string) error {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	if dpus <= 0 {
		dpus = core.DefaultOptions().NumDPUs
	}
	if seed == 0 {
		seed = 1
	}
	if runs <= 0 {
		runs = 1
	}
	inserts := n / 100
	if inserts < 64 {
		inserts = 64
	}

	fmt.Printf("drim-bench recovery benchmark: N=%d queries=%d DPUs=%d runs=%d mutations=~%d\n",
		n, queries, dpus, runs, inserts+inserts/8)
	s := dataset.SIFT(n+inserts, queries, seed)
	base := dataset.U8Set{N: n, D: s.Base.D, Data: s.Base.Data[:n*s.Base.D]}
	t0 := time.Now()
	ix, err := ivf.Build(base, ivf.BuildConfig{
		NList:       1024,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 4,
		TrainSample: 8000,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  index built in %.1fs\n", time.Since(t0).Seconds())

	opts := core.DefaultOptions()
	opts.NumDPUs = dpus

	// Engine mutations write through to the index, so each policy run
	// needs a fresh copy; reload from serialized bytes instead of
	// re-building.
	var img bytes.Buffer
	if err := ix.Save(&img); err != nil {
		return err
	}
	newEngine := func() (*core.Engine, error) {
		fx, err := ivf.Load(bytes.NewReader(img.Bytes()))
		if err != nil {
			return nil, err
		}
		return core.New(fx, s.Queries, opts)
	}

	// The workload: batched inserts of the reserve ids, then a delete
	// pass over every 8th of them — each batch applied to the engine and
	// logged as one WAL record, exactly what the serving layer does.
	// Returns the mutated point count.
	const batchN = 64
	workload := func(eng *core.Engine, st *durable.Store) (int, error) {
		muts := 0
		for lo := 0; lo < inserts; lo += batchN {
			hi := lo + batchN
			if hi > inserts {
				hi = inserts
			}
			vecs := dataset.U8Set{
				N: hi - lo, D: s.Base.D,
				Data: s.Base.Data[(n+lo)*s.Base.D : (n+hi)*s.Base.D],
			}
			ids := make([]int32, hi-lo)
			for i := range ids {
				ids[i] = int32(n + lo + i)
			}
			if err := eng.Insert(vecs, ids); err != nil {
				return 0, err
			}
			rec, err := durable.EncodeInsert(ids, s.Base.D, vecs.Data)
			if err != nil {
				return 0, err
			}
			if err := st.Append(rec); err != nil {
				return 0, err
			}
			if err := st.BatchEnd(); err != nil {
				return 0, err
			}
			muts += hi - lo
		}
		var dels []int32
		for id := 0; id < inserts; id += 8 {
			dels = append(dels, int32(n+id))
			if len(dels) == batchN {
				if err := applyDelete(eng, st, dels); err != nil {
					return 0, err
				}
				muts += len(dels)
				dels = dels[:0]
			}
		}
		if len(dels) > 0 {
			if err := applyDelete(eng, st, dels); err != nil {
				return 0, err
			}
			muts += len(dels)
		}
		return muts, nil
	}

	root, err := os.MkdirTemp("", "drim-recovery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// Same workload, two fsync policies: the ratio is the price of
	// calling fsync at every batch boundary on this filesystem.
	type polRun struct {
		name   string
		policy durable.SyncPolicy
		qps    float64
		muts   int
		eng    *core.Engine
		st     *durable.Store
		dir    string
	}
	runsOut := []*polRun{
		{name: "fsync every batch", policy: durable.SyncEveryBatch},
		{name: "fsync off", policy: durable.SyncNever},
	}
	for _, pr := range runsOut {
		eng, err := newEngine()
		if err != nil {
			return err
		}
		pr.dir = filepath.Join(root, fmt.Sprintf("store-%d", pr.policy))
		st, err := eng.CreateStore(durable.Options{Dir: pr.dir, Policy: pr.policy})
		if err != nil {
			return err
		}
		t := time.Now()
		muts, err := workload(eng, st)
		if err != nil {
			return err
		}
		sec := time.Since(t).Seconds()
		pr.qps, pr.muts, pr.eng, pr.st = float64(muts)/sec, muts, eng, st
		fmt.Printf("  %-17s %d mutations in %.3fs (%.0f muts/s acknowledged)\n",
			pr.name+":", muts, sec, pr.qps)
	}
	synced, unsynced := runsOut[0], runsOut[1]
	fmt.Printf("  fsync overhead: %.2fx\n", unsynced.qps/synced.qps)
	if err := unsynced.st.Close(); err != nil {
		return err
	}

	// Kill the synced engine: the reference answers are taken first, then
	// only its directory survives.
	want, err := synced.eng.SearchBatch(s.Queries)
	if err != nil {
		return err
	}
	var walBytes int64
	if fi, err := os.Stat(filepath.Join(synced.dir, synced.st.Manifest().WAL)); err == nil {
		walBytes = fi.Size()
	}
	if err := synced.st.Close(); err != nil {
		return err
	}
	synced.eng = nil

	t := time.Now()
	recovered, rst, err := core.Recover(durable.Options{Dir: synced.dir, Policy: durable.SyncEveryBatch}, s.Queries, opts)
	if err != nil {
		return fmt.Errorf("recovery benchmark: %w", err)
	}
	recoverSec := time.Since(t).Seconds()
	defer rst.Close()
	fmt.Printf("  recovered in %.3fs (%d WAL bytes replayed)\n", recoverSec, walBytes)

	// The recovery contract at benchmark scale: bit-identical answers to
	// the killed engine over every query.
	bestSec := -1.0
	var res *core.Result
	for r := 0; r < runs; r++ {
		t := time.Now()
		rr, err := recovered.SearchBatch(s.Queries)
		if err != nil {
			return err
		}
		if sec := time.Since(t).Seconds(); bestSec < 0 || sec < bestSec {
			bestSec, res = sec, rr
		}
	}
	for qi := range want.IDs {
		if !slices.Equal(res.IDs[qi], want.IDs[qi]) || !slices.Equal(res.Items[qi], want.Items[qi]) {
			return fmt.Errorf("recovery benchmark: query %d diverges after recovery (answers must be bit-identical to the killed engine)", qi)
		}
	}
	fmt.Printf("  recovered engine: %.3fs (%.0f QPS wall), results bit-identical to the killed engine\n",
		bestSec, float64(queries)/bestSec)

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("reading %s: %w", outPath, err)
	}

	entry := benchEntry{
		Note:       note,
		Mode:       "recovery",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N:          n, D: s.Base.D, Queries: queries, Runs: runs,
		DPUs:           dpus,
		MutCount:       synced.muts,
		WALBytes:       walBytes,
		SyncedMutQPS:   synced.qps,
		UnsyncedMutQPS: unsynced.qps,
		RecoverSec:     recoverSec,
		WallQPS:        float64(queries) / bestSec,
		SimQPS:         res.Metrics.QPS,
	}
	if prev := lastComparable(trajectory, entry); prev != nil && recoverSec > 0 {
		entry.SpeedupVsPrev = prev.RecoverSec / recoverSec
		fmt.Printf("  vs previous recovery entry (%s): %.2fx\n", prev.Timestamp, entry.SpeedupVsPrev)
	}
	trajectory = append(trajectory, entry)

	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded recovery entry in %s (total %d)\n", outPath, len(trajectory))
	return nil
}

// applyDelete applies one delete batch to the engine and logs it, the
// apply-then-log discipline of the serving layer.
func applyDelete(eng *core.Engine, st *durable.Store, ids []int32) error {
	if err := eng.Delete(ids); err != nil {
		return err
	}
	if err := st.Append(durable.EncodeDelete(ids)); err != nil {
		return err
	}
	return st.BatchEnd()
}
