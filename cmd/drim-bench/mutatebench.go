package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

// runMutateBench is the -mutate mode: it prices the live-mutability overlay.
// The same SIFT-shaped fixture as -bench is built and measured packed (the
// compacted baseline), then 1% and 10% of the base count are appended live —
// nearest-centroid routed and PQ-encoded with the frozen codebooks, served
// out of the append segments — and the offline SearchBatch wall clock is
// re-measured at each fraction. One mode:"mutate" entry per fraction lands
// in the trajectory file, each carrying the shared compacted baseline, so
// the overlay_qps/compacted_qps ratio tracks the cost of serving fresh
// points across PRs. At the end the overlay is compacted and the results
// are verified bit-identical to a frozen-quantizer rebuild over the same
// logical corpus — the mutability contract, checked at benchmark scale.
func runMutateBench(n, queries, dpus int, seed int64, runs int, note, outPath string) error {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	if dpus <= 0 {
		dpus = core.DefaultOptions().NumDPUs
	}
	if seed == 0 {
		seed = 1
	}
	if runs <= 0 {
		runs = 1
	}
	fracs := []float64{0.01, 0.10}
	extra := int(float64(n)*fracs[len(fracs)-1]) + 1

	fmt.Printf("drim-bench mutate benchmark: N=%d queries=%d DPUs=%d runs=%d appends=%v\n",
		n, queries, dpus, runs, fracs)
	s := dataset.SIFT(n+extra, queries, seed)
	base := dataset.U8Set{N: n, D: s.Base.D, Data: s.Base.Data[:n*s.Base.D]}
	t0 := time.Now()
	ix, err := ivf.Build(base, ivf.BuildConfig{
		NList:       1024,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 4,
		TrainSample: 8000,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  index built in %.1fs\n", time.Since(t0).Seconds())

	opts := core.DefaultOptions()
	opts.NumDPUs = dpus
	eng, err := core.New(ix, s.Queries, opts)
	if err != nil {
		return err
	}

	// Best-of-runs offline batch, the same measurement discipline as -bench.
	measure := func() (float64, *core.Result, error) {
		bestSec := 0.0
		var bestRes *core.Result
		for r := 0; r < runs; r++ {
			t := time.Now()
			res, err := eng.SearchBatch(s.Queries)
			if err != nil {
				return 0, nil, err
			}
			if sec := time.Since(t).Seconds(); bestRes == nil || sec < bestSec {
				bestSec, bestRes = sec, res
			}
		}
		return bestSec, bestRes, nil
	}

	baseSec, _, err := measure()
	if err != nil {
		return err
	}
	baseQPS := float64(queries) / baseSec
	fmt.Printf("  compacted baseline: %.3fs (%.0f QPS wall)\n", baseSec, baseQPS)

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("reading %s: %w", outPath, err)
	}

	inserted := 0
	var lastRes *core.Result
	for _, frac := range fracs {
		target := int(float64(n) * frac)
		if count := target - inserted; count > 0 {
			vecs := dataset.U8Set{
				N: count, D: s.Base.D,
				Data: s.Base.Data[(n+inserted)*s.Base.D : (n+target)*s.Base.D],
			}
			ids := make([]int32, count)
			for i := range ids {
				ids[i] = int32(n + inserted + i)
			}
			if err := eng.Insert(vecs, ids); err != nil {
				return err
			}
			inserted = target
		}
		overlaySec, res, err := measure()
		if err != nil {
			return err
		}
		lastRes = res
		overlayQPS := float64(queries) / overlaySec
		fmt.Printf("  +%d live appends (%.0f%%, %d overlay bytes): %.3fs (%.0f QPS wall, %.2fx of baseline)\n",
			inserted, frac*100, ix.MutationBytes(), overlaySec, overlayQPS, overlayQPS/baseQPS)

		entry := benchEntry{
			Note:       note,
			Mode:       "mutate",
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			N:          n, D: s.Base.D, Queries: queries, Runs: runs,
			DPUs:         dpus,
			AppendFrac:   frac,
			AppendCount:  inserted,
			OverlayBytes: ix.MutationBytes(),
			OverlaySec:   overlaySec,
			OverlayQPS:   overlayQPS,
			CompactedSec: baseSec,
			CompactedQPS: baseQPS,
			WallQPS:      overlayQPS,
			SimQPS:       res.Metrics.QPS,
		}
		if prev := lastComparable(trajectory, entry); prev != nil {
			entry.SpeedupVsPrev = overlayQPS / prev.OverlayQPS
			fmt.Printf("  vs previous mutate entry (%s): %.2fx\n", prev.Timestamp, entry.SpeedupVsPrev)
		}
		trajectory = append(trajectory, entry)
	}

	// Fold the overlay back in and hold the benchmark to the serving
	// contract: post-compact results must be bit-identical to the live
	// overlay's (same logical corpus, packed vs appended layout).
	if err := eng.Compact(); err != nil {
		return err
	}
	compSec, compRes, err := measure()
	if err != nil {
		return err
	}
	for qi := range lastRes.IDs {
		if !slices.Equal(compRes.IDs[qi], lastRes.IDs[qi]) || !slices.Equal(compRes.Items[qi], lastRes.Items[qi]) {
			return fmt.Errorf("mutate benchmark: query %d diverges after Compact (overlay and packed answers must be bit-identical)", qi)
		}
	}
	fmt.Printf("  after Compact (%d points): %.3fs (%.0f QPS wall), results bit-identical to live overlay\n",
		n+inserted, compSec, float64(queries)/compSec)

	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded %d mutate entries in %s (total %d)\n", len(fracs), outPath, len(trajectory))
	return nil
}
