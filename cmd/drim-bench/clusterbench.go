package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"drimann/internal/cluster"
	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

// runClusterBench is the -shards mode: the scatter-gather fleet against the
// single-engine reference on the same index. It builds the SIFT-shaped
// fixture of -bench once, deploys it both unsharded (the reference) and
// across `shards` engines (each with `dpus` DPUs), verifies the merged
// top-k is identical to the reference, and appends one mode:"cluster"
// entry to the trajectory file at outPath.
func runClusterBench(n, queries, dpus int, seed int64, shards int, assignment string,
	runs int, note, outPath string) error {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	if dpus <= 0 {
		dpus = core.DefaultOptions().NumDPUs
	}
	if seed == 0 {
		seed = 1
	}
	if runs <= 0 {
		runs = 1
	}
	if assignment == "" {
		assignment = string(cluster.AssignHash)
	}

	fmt.Printf("drim-bench cluster benchmark: N=%d queries=%d shards=%d (x%d DPUs) assign=%s runs=%d\n",
		n, queries, shards, dpus, assignment, runs)
	s := dataset.SIFT(n, queries, seed)
	t0 := time.Now()
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList:       1024,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 4,
		TrainSample: 8000,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  index built in %.1fs\n", time.Since(t0).Seconds())

	// Both deployments get the query workload as the offline heat profile —
	// the single engine's layout optimizer and the cluster's heat-weighted
	// kmeans shard assignment use it the same way the paper's offline
	// profiling stage does.
	opts := core.DefaultOptions()
	opts.NumDPUs = dpus
	single, err := core.New(ix, s.Queries, opts)
	if err != nil {
		return err
	}
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: shards, Assignment: cluster.Assignment(assignment), Engine: opts,
	})
	if err != nil {
		return err
	}

	singleSec := -1.0
	var ref *core.Result
	for r := 0; r < runs; r++ {
		t := time.Now()
		res, err := single.SearchBatch(s.Queries)
		if err != nil {
			return err
		}
		if sec := time.Since(t).Seconds(); singleSec < 0 || sec < singleSec {
			singleSec = sec
		}
		ref = res
	}
	fmt.Printf("  single engine (unsharded):   %.3fs  (%.0f queries/s)\n",
		singleSec, float64(queries)/singleSec)

	clusterSec := -1.0
	clusterTotal := 0.0
	var merged *core.Result
	for r := 0; r < runs; r++ {
		t := time.Now()
		res, err := cl.SearchBatch(s.Queries)
		if err != nil {
			return err
		}
		sec := time.Since(t).Seconds()
		clusterTotal += sec
		if clusterSec < 0 || sec < clusterSec {
			clusterSec = sec
		}
		merged = res
	}
	// The equivalence contract, checked on the real fixture: merged
	// scatter-gather IDs must be identical to the unsharded reference.
	for qi := range ref.IDs {
		if len(ref.IDs[qi]) != len(merged.IDs[qi]) {
			return fmt.Errorf("cluster result diverges from single engine at query %d", qi)
		}
		for j := range ref.IDs[qi] {
			if ref.IDs[qi][j] != merged.IDs[qi][j] {
				return fmt.Errorf("cluster result diverges from single engine at query %d", qi)
			}
		}
	}
	fmt.Printf("  cluster (%d shards, merged): %.3fs  (%.0f queries/s)  results identical ✓\n",
		shards, clusterSec, float64(queries)/clusterSec)
	fmt.Printf("  simulated fleet QPS %.0f (max-over-shards latency), single-system %.0f\n",
		merged.Metrics.QPS, ref.Metrics.QPS)

	// Selective-scatter routing stats: the cluster accumulates them across
	// all runs, so the mean fan-out and the front-door CL share of wall time
	// are averages over every measured batch.
	st := cl.Stats()
	frontCLShare := 0.0
	if st.Selective {
		if clusterTotal > 0 {
			frontCLShare = st.Route.FrontCLWallSeconds / clusterTotal
		}
		fmt.Printf("  selective scatter: mean fan-out %.2f / max %d of %d shards, front-door CL %.1f%% of wall\n",
			st.Route.MeanFanout(), st.Route.MaxFanout, shards, 100*frontCLShare)
	}

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("reading %s: %w", outPath, err)
	}

	entry := benchEntry{
		Note:       note,
		Mode:       "cluster",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N:          n, D: s.Base.D, Queries: queries, Runs: runs,
		DPUs:            dpus,
		Shards:          shards,
		Assignment:      assignment,
		SerialSec:       singleSec,
		PipelinedSec:    clusterSec,
		SpeedupVsSerial: singleSec / clusterSec,
		WallQPS:         float64(queries) / clusterSec,
		SimQPS:          merged.Metrics.QPS,
	}
	if st.Selective {
		entry.Selective = true
		entry.MeanFanout = st.Route.MeanFanout()
		entry.MaxFanout = st.Route.MaxFanout
		entry.FrontCLShare = frontCLShare
	}
	if prev := lastComparable(trajectory, entry); prev != nil && clusterSec > 0 {
		entry.SpeedupVsPrev = prev.PipelinedSec / clusterSec
		fmt.Printf("  vs previous cluster entry (%s): %.2fx\n", prev.Timestamp, entry.SpeedupVsPrev)
	}
	trajectory = append(trajectory, entry)

	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded cluster entry in %s (total %d)\n", outPath, len(trajectory))
	return nil
}
