package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"drimann/internal/cluster"
	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/fault"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/serve"
)

// runReplicaBench is the -replicas mode: the tail-masking benchmark over a
// replicated fleet. It builds the SIFT-shaped fixture of -bench, deploys it
// across `shards` shard groups of `replicas` engine clones each, and — when
// -straggler is set — wraps the last replica of every shard in a
// fault-injected straggler that stalls every stragglerEvery-th call by
// stragglerDelay. A periodic straggler is the interesting adversary: a
// replica that is always slow is simply routed around by the load-aware
// pick, while one that is usually fast keeps earning traffic and only its
// occasional stalls poison the tail — exactly the case hedging exists for.
//
// The same closed-loop load (clients callers, dur window) runs twice over
// the degraded fleet — hedging disabled, then enabled — every response is
// verified bit-identical to the unsharded single-engine reference, and one
// mode:"replica" entry with both latency distributions is appended to the
// trajectory file at outPath.
func runReplicaBench(n, queries, dpus int, seed int64, shards, replicas int,
	assignment string, clients int, straggler bool, stragglerDelay time.Duration,
	stragglerEvery int, maxWait time.Duration, maxBatch int, dur time.Duration,
	note, outPath string) error {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	if dpus <= 0 {
		dpus = core.DefaultOptions().NumDPUs
	}
	if seed == 0 {
		seed = 1
	}
	if shards <= 0 {
		shards = 2
	}
	if replicas < 2 {
		return fmt.Errorf("-replicas %d: tail masking needs at least 2 replicas", replicas)
	}
	if assignment == "" {
		assignment = string(cluster.AssignHash)
	}
	if clients <= 0 {
		clients = 8
	}
	if stragglerDelay <= 0 {
		stragglerDelay = 100 * time.Millisecond
	}
	if stragglerEvery <= 0 {
		stragglerEvery = 3
	}
	if dur <= 0 {
		dur = 5 * time.Second
	}

	fmt.Printf("drim-bench replica benchmark: N=%d queries=%d shards=%d x %d replicas (x%d DPUs) assign=%s clients=%d dur=%s\n",
		n, queries, shards, replicas, dpus, assignment, clients, dur)
	if straggler {
		fmt.Printf("  straggler: every %d-th call to the last replica of each shard stalls %s\n",
			stragglerEvery, stragglerDelay)
	}
	s := dataset.SIFT(n, queries, seed)
	t0 := time.Now()
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList:       1024,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 4,
		TrainSample: 8000,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  index built in %.1fs\n", time.Since(t0).Seconds())

	opts := core.DefaultOptions()
	opts.NumDPUs = dpus
	single, err := core.New(ix, dataset.U8Set{}, opts)
	if err != nil {
		return err
	}
	ref, err := single.SearchBatch(s.Queries)
	if err != nil {
		return err
	}
	cl, err := cluster.New(ix, dataset.U8Set{}, cluster.Options{
		Shards: shards, Replicas: replicas,
		Assignment: cluster.Assignment(assignment), Engine: opts,
	})
	if err != nil {
		return err
	}

	var plan *fault.Plan
	if straggler {
		plan = &fault.Plan{Delay: stragglerDelay, DelayEvery: stragglerEvery, Seed: seed}
	}
	measure := func(label string, disableHedge bool) ([]time.Duration, float64, cluster.ServerStats, error) {
		route := cluster.RouteOptions{DisableHedge: disableHedge, Seed: uint64(seed)}
		if plan != nil {
			route.WrapReplica = func(shard, replica int, r cluster.Replica) cluster.Replica {
				if replica == replicas-1 {
					p := *plan
					p.Seed = seed + int64(shard)
					return fault.Wrap(r, p)
				}
				return r
			}
		}
		srv, err := cluster.NewServerRouted(cl, serve.Options{MaxBatch: maxBatch, MaxWait: maxWait}, route)
		if err != nil {
			return nil, 0, cluster.ServerStats{}, err
		}
		var (
			wg        sync.WaitGroup
			latMu     sync.Mutex
			latencies []time.Duration
			clientErr error
		)
		start := time.Now()
		deadline := start.Add(dur)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				local := make([]time.Duration, 0, 4096)
				defer func() {
					latMu.Lock()
					latencies = append(latencies, local...)
					latMu.Unlock()
				}()
				for i := 0; time.Now().Before(deadline); i++ {
					qi := (i*clients + c) % queries
					t := time.Now()
					resp, err := srv.Search(context.Background(), s.Queries.Vec(qi), 0)
					if err != nil {
						latMu.Lock()
						if clientErr == nil {
							clientErr = fmt.Errorf("%s client %d: %w", label, c, err)
						}
						latMu.Unlock()
						return
					}
					local = append(local, time.Since(t))
					// The masking contract on the real fixture: a degraded
					// fleet still answers bit-identically to the unsharded
					// single engine.
					diverged := len(resp.IDs) != len(ref.IDs[qi])
					for j := 0; !diverged && j < len(resp.IDs); j++ {
						diverged = resp.IDs[j] != ref.IDs[qi][j]
					}
					if diverged {
						latMu.Lock()
						if clientErr == nil {
							clientErr = fmt.Errorf("%s: query %d diverges from single engine", label, qi)
						}
						latMu.Unlock()
						return
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := srv.Close(); err != nil {
			return nil, 0, cluster.ServerStats{}, err
		}
		if clientErr != nil {
			return nil, 0, cluster.ServerStats{}, clientErr
		}
		if len(latencies) == 0 {
			return nil, 0, cluster.ServerStats{}, fmt.Errorf("%s run completed no requests", label)
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		return latencies, float64(len(latencies)) / elapsed.Seconds(), srv.Stats(), nil
	}

	unhedged, unhedgedQPS, _, err := measure("unhedged", true)
	if err != nil {
		return err
	}
	hedged, hedgedQPS, hst, err := measure("hedged", false)
	if err != nil {
		return err
	}

	pct := func(l []time.Duration, p float64) float64 {
		return serve.LatencyPercentile(l, p).Seconds() * 1e3
	}
	fmt.Printf("  unhedged: %d requests, %.0f QPS  p50 %.3fms  p99 %.3fms  p999 %.3fms\n",
		len(unhedged), unhedgedQPS, pct(unhedged, 0.50), pct(unhedged, 0.99), pct(unhedged, 0.999))
	fmt.Printf("  hedged:   %d requests, %.0f QPS  p50 %.3fms  p99 %.3fms  p999 %.3fms  (%d hedges, %d wins)\n",
		len(hedged), hedgedQPS, pct(hedged, 0.50), pct(hedged, 0.99), pct(hedged, 0.999),
		hst.Hedged, hst.HedgeWins)
	if hp := pct(hedged, 0.99); hp > 0 {
		fmt.Printf("  hedged p99 is %.1fx lower than unhedged  (results identical to single engine ✓)\n",
			pct(unhedged, 0.99)/hp)
	}

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("reading %s: %w", outPath, err)
	}

	entry := benchEntry{
		Note:       note,
		Mode:       "replica",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N:          n, D: s.Base.D, Queries: queries, Runs: 1,
		DPUs:           dpus,
		Shards:         shards,
		Replicas:       replicas,
		Assignment:     assignment,
		Clients:        clients,
		MaxWaitMS:      maxWait.Seconds() * 1e3,
		MaxBatch:       maxBatch,
		DurSec:         dur.Seconds(),
		UnhedgedP50MS:  pct(unhedged, 0.50),
		UnhedgedP99MS:  pct(unhedged, 0.99),
		UnhedgedP999MS: pct(unhedged, 0.999),
		HedgedP50MS:    pct(hedged, 0.50),
		HedgedP99MS:    pct(hedged, 0.99),
		HedgedP999MS:   pct(hedged, 0.999),
		UnhedgedQPS:    unhedgedQPS,
		HedgedQPS:      hedgedQPS,
	}
	if straggler {
		entry.StragglerDelayMS = stragglerDelay.Seconds() * 1e3
		entry.StragglerEvery = stragglerEvery
	}
	if prev := lastComparable(trajectory, entry); prev != nil && entry.HedgedP99MS > 0 {
		entry.SpeedupVsPrev = prev.HedgedP99MS / entry.HedgedP99MS
		fmt.Printf("  vs previous replica entry (%s): %.2fx on hedged p99\n", prev.Timestamp, entry.SpeedupVsPrev)
	}
	trajectory = append(trajectory, entry)

	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded replica entry in %s (total %d)\n", outPath, len(trajectory))
	return nil
}
