package main

import (
	"strings"
	"testing"
)

// TestLastComparableModeIsolation pins the trajectory-comparison rules:
// speedup_vs_prev_entry must never compare entries across modes, and
// cluster entries additionally require the same shard count and assignment
// policy (a 2-shard and a 7-shard wall clock are different phenomena).
func TestLastComparableModeIsolation(t *testing.T) {
	shape := func(e benchEntry) benchEntry {
		e.GoMaxProcs, e.N, e.D, e.Queries, e.DPUs = 4, 100000, 128, 1000, 64
		return e
	}
	bench := shape(benchEntry{Timestamp: "t0", PipelinedSec: 1.0})
	serve := shape(benchEntry{Timestamp: "t1", Mode: "serve", Clients: 8, MaxBatch: 256,
		AchievedQPS: 2500, PipelinedSec: 0})
	cl2hash := shape(benchEntry{Timestamp: "t2", Mode: "cluster", Shards: 2,
		Assignment: "hash", PipelinedSec: 0.5})
	cl7hash := shape(benchEntry{Timestamp: "t3", Mode: "cluster", Shards: 7,
		Assignment: "hash", PipelinedSec: 0.3})
	cl2km := shape(benchEntry{Timestamp: "t4", Mode: "cluster", Shards: 2,
		Assignment: "kmeans", PipelinedSec: 0.6})
	rep22 := shape(benchEntry{Timestamp: "t5", Mode: "replica", Shards: 2, Replicas: 2,
		Assignment: "hash", Clients: 8, StragglerDelayMS: 75, StragglerEvery: 4,
		HedgedP99MS: 3.0})
	rec := shape(benchEntry{Timestamp: "t6", Mode: "recovery", MutCount: 1125,
		RecoverSec: 0.8})
	gbench := shape(benchEntry{Timestamp: "t7", Backend: "graph", PipelinedSec: 2.0})
	h2hIVF := shape(benchEntry{Timestamp: "t8", Mode: "headtohead", Backend: "ivf",
		CurveParam: "nprobe", CurveValue: 32, SimQPS: 4000})
	h2hGraph := shape(benchEntry{Timestamp: "t9", Mode: "headtohead", Backend: "graph",
		CurveParam: "beam", CurveValue: 32, SimQPS: 1500})
	prior := []benchEntry{bench, serve, cl2hash, cl7hash, cl2km, rep22, rec,
		gbench, h2hIVF, h2hGraph}

	cases := []struct {
		name string
		e    benchEntry
		want string // timestamp of expected match, "" = no match
	}{
		{"bench matches bench only", shape(benchEntry{PipelinedSec: 0.9}), "t0"},
		{"serve matches same config", shape(benchEntry{Mode: "serve", Clients: 8,
			MaxBatch: 256, AchievedQPS: 3000}), "t1"},
		{"serve config change no match", shape(benchEntry{Mode: "serve", Clients: 64,
			MaxBatch: 256, AchievedQPS: 3000}), ""},
		{"cluster matches same shards+assign", shape(benchEntry{Mode: "cluster",
			Shards: 2, Assignment: "hash", PipelinedSec: 0.4}), "t2"},
		{"cluster shard count isolates", shape(benchEntry{Mode: "cluster",
			Shards: 3, Assignment: "hash", PipelinedSec: 0.4}), ""},
		{"cluster assignment isolates", shape(benchEntry{Mode: "cluster",
			Shards: 7, Assignment: "kmeans", PipelinedSec: 0.4}), ""},
		{"cluster kmeans matches kmeans", shape(benchEntry{Mode: "cluster",
			Shards: 2, Assignment: "kmeans", PipelinedSec: 0.4}), "t4"},
		{"cluster never matches bench shape", shape(benchEntry{Mode: "cluster",
			Shards: 0, Assignment: "", PipelinedSec: 0.4}), ""},
		{"replica matches same fleet+straggler", shape(benchEntry{Mode: "replica",
			Shards: 2, Replicas: 2, Assignment: "hash", Clients: 8,
			StragglerDelayMS: 75, StragglerEvery: 4, HedgedP99MS: 2.0}), "t5"},
		{"replica count isolates", shape(benchEntry{Mode: "replica",
			Shards: 2, Replicas: 3, Assignment: "hash", Clients: 8,
			StragglerDelayMS: 75, StragglerEvery: 4, HedgedP99MS: 2.0}), ""},
		{"replica straggler config isolates", shape(benchEntry{Mode: "replica",
			Shards: 2, Replicas: 2, Assignment: "hash", Clients: 8,
			StragglerDelayMS: 50, StragglerEvery: 4, HedgedP99MS: 2.0}), ""},
		{"replica never matches cluster", shape(benchEntry{Mode: "replica",
			Shards: 2, Replicas: 0, Assignment: "hash", Clients: 0,
			HedgedP99MS: 2.0}), ""},
		{"recovery matches same mutation count", shape(benchEntry{Mode: "recovery",
			MutCount: 1125, RecoverSec: 0.5}), "t6"},
		{"recovery mutation count isolates", shape(benchEntry{Mode: "recovery",
			MutCount: 2250, RecoverSec: 0.5}), ""},
		{"recovery never matches bench", shape(benchEntry{Mode: "recovery",
			MutCount: 0, RecoverSec: 0.5}), ""},
		{"ivf bench never matches graph bench", shape(benchEntry{PipelinedSec: 0.9}), "t0"},
		{"graph bench matches graph bench only", shape(benchEntry{Backend: "graph",
			PipelinedSec: 1.8}), "t7"},
		{"headtohead matches same backend+knob", shape(benchEntry{Mode: "headtohead",
			Backend: "ivf", CurveParam: "nprobe", CurveValue: 32, SimQPS: 4100}), "t8"},
		{"headtohead backend isolates", shape(benchEntry{Mode: "headtohead",
			Backend: "graph", CurveParam: "beam", CurveValue: 32, SimQPS: 1600}), "t9"},
		{"headtohead curve value isolates", shape(benchEntry{Mode: "headtohead",
			Backend: "ivf", CurveParam: "nprobe", CurveValue: 64, SimQPS: 4100}), ""},
		{"headtohead never matches plain bench", shape(benchEntry{Mode: "headtohead",
			Backend: "graph", CurveParam: "beam", CurveValue: 16, SimQPS: 1600}), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := lastComparable(prior, c.e)
			switch {
			case c.want == "" && got != nil:
				t.Fatalf("matched %q, want no match", got.Timestamp)
			case c.want != "" && got == nil:
				t.Fatalf("no match, want %q", c.want)
			case c.want != "" && got.Timestamp != c.want:
				t.Fatalf("matched %q, want %q", got.Timestamp, c.want)
			}
		})
	}
	// Fixture-shape mismatch always isolates, regardless of mode.
	off := shape(benchEntry{PipelinedSec: 0.9})
	off.DPUs = 128
	if lastComparable(prior, off) != nil {
		t.Fatal("different fixture shape must not match")
	}
}

// TestValidateChoice pins the enum-flag validation: a valid value passes,
// anything else — including the empty string and a case mismatch — fails
// with an error naming the flag and listing the valid options.
func TestValidateChoice(t *testing.T) {
	for _, v := range []string{"hash", "kmeans"} {
		if err := validateChoice("-assign", v, []string{"hash", "kmeans"}); err != nil {
			t.Fatalf("%q rejected: %v", v, err)
		}
	}
	for _, v := range []string{"", "khash", "Hash", "kmeans ", "graph"} {
		err := validateChoice("-assign", v, []string{"hash", "kmeans"})
		if err == nil {
			t.Fatalf("%q accepted, want error", v)
		}
		for _, want := range []string{"-assign", "hash", "kmeans"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not mention %q", err, want)
			}
		}
	}
	if err := validateChoice("-backend", "graph", []string{"ivf", "graph"}); err != nil {
		t.Fatalf("graph backend rejected: %v", err)
	}
	if err := validateChoice("-backend", "hnsw", []string{"ivf", "graph"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
