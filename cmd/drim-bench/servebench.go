package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/serve"
)

// runServeBench is the -serve mode: a closed-loop load generator over the
// online serving layer. It builds the same SIFT-shaped fixture as -bench,
// starts a serve.Server over the engine, and drives it with `clients`
// concurrent callers for `dur`, each caller issuing its next query as soon
// as the previous one answers (optionally paced to an aggregate `qps`
// target). Client-observed Search latencies yield p50/p95/p99; one
// mode:"serve" entry is appended to the trajectory file at outPath.
func runServeBench(n, queries, dpus int, seed int64, clients int, qps float64,
	maxWait time.Duration, maxBatch int, dur time.Duration, note, outPath string) error {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	if dpus <= 0 {
		dpus = core.DefaultOptions().NumDPUs
	}
	if seed == 0 {
		seed = 1
	}
	if clients <= 0 {
		clients = 8
	}
	if dur <= 0 {
		dur = 5 * time.Second
	}

	fmt.Printf("drim-bench serve benchmark: N=%d queries=%d DPUs=%d clients=%d qps=%v maxwait=%s maxbatch=%d dur=%s\n",
		n, queries, dpus, clients, qps, maxWait, maxBatch, dur)
	s := dataset.SIFT(n, queries, seed)
	t0 := time.Now()
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList:       1024,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 4,
		TrainSample: 8000,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  index built in %.1fs\n", time.Since(t0).Seconds())

	opts := core.DefaultOptions()
	opts.NumDPUs = dpus
	eng, err := core.New(ix, dataset.U8Set{}, opts)
	if err != nil {
		return err
	}
	srv, err := serve.New(eng, serve.Options{MaxBatch: maxBatch, MaxWait: maxWait})
	if err != nil {
		return err
	}

	// Closed loop with optional pacing: client c issues request i at
	// start + (i*clients+c)/qps when a target rate is set, otherwise
	// back-to-back. Latencies are client-observed (queueing + batching +
	// launch), which is what an end user sees.
	var (
		wg        sync.WaitGroup
		latMu     sync.Mutex
		latencies []time.Duration
		completed int
		clientErr error
	)
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 4096)
			defer func() {
				latMu.Lock()
				latencies = append(latencies, local...)
				completed += len(local)
				latMu.Unlock()
			}()
			for i := 0; ; i++ {
				if qps > 0 {
					at := start.Add(time.Duration(float64(i*clients+c) / qps * float64(time.Second)))
					if at.After(deadline) {
						break // next paced slot lands outside the window
					}
					if wait := time.Until(at); wait > 0 {
						time.Sleep(wait)
					}
				}
				if time.Now().After(deadline) {
					break
				}
				qi := (i*clients + c) % queries
				t := time.Now()
				if _, err := srv.Search(context.Background(), s.Queries.Vec(qi), 0); err != nil {
					// No error is expected inside the window; fail the run
					// rather than record a partial measurement.
					latMu.Lock()
					if clientErr == nil {
						clientErr = fmt.Errorf("serve client %d: %w", c, err)
					}
					latMu.Unlock()
					return
				}
				local = append(local, time.Since(t))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := srv.Close(); err != nil {
		return err
	}
	if clientErr != nil {
		return clientErr
	}
	if completed == 0 {
		return fmt.Errorf("serve benchmark completed no requests")
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration { return serve.LatencyPercentile(latencies, p) }
	st := srv.Stats()
	achieved := float64(completed) / elapsed.Seconds()
	fmt.Printf("  %d requests in %.2fs: %.0f QPS achieved (mean batch %.1f, %d launches)\n",
		completed, elapsed.Seconds(), achieved, st.MeanBatch, st.Batches)
	fmt.Printf("  latency p50 %.3fms  p95 %.3fms  p99 %.3fms  (queue depth at end %d)\n",
		pct(0.50).Seconds()*1e3, pct(0.95).Seconds()*1e3, pct(0.99).Seconds()*1e3, st.QueueDepth)

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("reading %s: %w", outPath, err)
	}

	entry := benchEntry{
		Note:       note,
		Mode:       "serve",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N:          n, D: s.Base.D, Queries: queries, Runs: 1,
		DPUs:        dpus,
		Clients:     clients,
		TargetQPS:   qps,
		MaxWaitMS:   maxWait.Seconds() * 1e3,
		MaxBatch:    srv.Options().MaxBatch,
		DurSec:      elapsed.Seconds(),
		AchievedQPS: achieved,
		P50MS:       pct(0.50).Seconds() * 1e3,
		P95MS:       pct(0.95).Seconds() * 1e3,
		P99MS:       pct(0.99).Seconds() * 1e3,
		MeanBatch:   st.MeanBatch,
		WallQPS:     achieved,
		SimQPS:      st.Sim.QPS,
	}
	if prev := lastComparable(trajectory, entry); prev != nil && prev.AchievedQPS > 0 {
		entry.SpeedupVsPrev = achieved / prev.AchievedQPS
		fmt.Printf("  vs previous serve entry (%s): %.2fx\n", prev.Timestamp, entry.SpeedupVsPrev)
	}
	trajectory = append(trajectory, entry)

	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded serve entry in %s (total %d)\n", outPath, len(trajectory))
	return nil
}
