// Command drim-bench regenerates the tables and figures of the DRIM-ANN
// paper's evaluation (§5) on the simulated UPMEM system, and benchmarks the
// simulator itself.
//
// Usage:
//
//	drim-bench                  # run every experiment at the default scale
//	drim-bench -exp F7,F9       # run selected experiments
//	drim-bench -small           # test-suite scale (seconds)
//	drim-bench -n 100000 -dpus 128 -queries 1000
//
// Self-benchmark mode (-bench) measures the wall-clock throughput of the
// engine's pipelined execution path against the serial reference path
// (Workers=1, pipelining off) on a synthetic SIFT-shaped corpus, plus the
// batched LocateBatch CL stage on its own. It sweeps GOMAXPROCS (1 and
// NumCPU by default; -benchprocs overrides, e.g. -benchprocs 1,4,max) and
// appends one entry per value to a JSON trajectory file so successive PRs
// can track both the simulator's own speed and its multi-core scaling:
//
//	drim-bench -bench                          # 100k x 128d, 1k queries
//	drim-bench -bench -n 200000 -queries 2000  # custom scale
//	drim-bench -bench -benchout BENCH_core.json -benchruns 3 -benchprocs 1,max
//
// Each entry records the fixture shape, serial and pipelined seconds, the
// explicit speedup_vs_serial (pipelined vs the same build's serial mode) and
// speedup_vs_prev_entry (vs the most recent earlier entry with the same
// fixture shape and GOMAXPROCS — the cross-PR improvement), wall/simulated
// QPS and the CL stage cost; see the benchEntry schema in selfbench.go.
// Compare runs with e.g.
// `jq '.[] | {timestamp, go_max_procs, speedup_vs_prev_entry, wall_qps}' BENCH_core.json`.
//
// -backend selects the engine under test for -bench: "ivf" (default, the
// DRIM-ANN IVF-PQ engine) or "graph" (the beam-search graph-traversal
// backend on the same simulated hardware). Graph entries are tagged
// backend:"graph" in the trajectory and only compare against graph
// entries.
//
// Head-to-head mode (-headtohead) runs BOTH backends over one corpus and
// records each backend's recall-vs-simulated-QPS curve, with every query
// driven through the online serving path: the IVF engine sweeps nprobe,
// the graph engine sweeps its search beam width over a single build. One
// backend-tagged mode:"headtohead" entry per curve point lands in the
// trajectory file (recall@10, simulated and wall QPS, build seconds):
//
//	drim-bench -headtohead                           # 100k x 128d, 1k queries
//	drim-bench -headtohead -n 20000 -queries 200     # smoke scale
//
// Serving-layer mode (-serve) drives the online micro-batching server
// (drimann.NewServer) with a closed-loop load generator instead of one
// offline SearchBatch: -clients concurrent callers issue single queries
// (optionally paced to an aggregate -qps target) for -servedur, through a
// batcher configured by -maxwait/-maxbatch. Client-observed p50/p95/p99
// Search latency and achieved QPS are appended to the same trajectory file
// as mode:"serve" entries:
//
//	drim-bench -serve                                # unthrottled, 8 clients
//	drim-bench -serve -clients 32 -maxwait 500us
//	drim-bench -serve -qps 2000 -servedur 10s
//
// Cluster mode (-shards N) measures the scatter-gather sharding layer:
// the corpus is partitioned across N shard engines (each simulating -dpus
// DPUs, so the fleet models N x dpus devices), one query batch fans out to
// every shard in parallel and the per-shard top-k lists merge into the
// global answer — verified identical to the unsharded single engine on the
// same index, then recorded as a mode:"cluster" entry (shard count,
// assignment policy, fleet wall/sim QPS, speedup vs the single engine):
//
//	drim-bench -shards 4                             # hash partitioning
//	drim-bench -shards 8 -assign kmeans -dpus 64
//
// Replica mode (-replicas R) measures the tail-masking machinery of the
// replicated serving layer: each shard (default 2, -shards overrides) is
// served by R engine clones behind load-aware routing with hedged requests,
// and -straggler wraps the last replica of every shard in a fault-injected
// periodic straggler (every -stragglerevery-th call stalls by
// -stragglerdelay). The same closed-loop load (-clients, -servedur) runs
// twice — hedging off, then on — every response is verified bit-identical
// to the unsharded single engine, and both latency distributions
// (p50/p99/p999) land in one mode:"replica" trajectory entry, so the
// hedged-vs-unhedged tail ratio is recorded alongside the fleet's history:
//
//	drim-bench -replicas 2 -straggler                # 2 shards x 2 replicas
//	drim-bench -replicas 3 -shards 4 -straggler -stragglerdelay 50ms -stragglerevery 3
//
// Mutate mode (-mutate) prices the live-mutability overlay: the packed
// index is measured as the compacted baseline, then 1% and 10% of the base
// count are appended live (routed to their nearest clusters, PQ-encoded
// with the frozen codebooks, served from append segments) and the offline
// batch is re-measured at each fraction. One mode:"mutate" entry per
// fraction records overlay vs compacted QPS; at the end the overlay is
// compacted and the results verified bit-identical to the live answers:
//
//	drim-bench -mutate
//	drim-bench -mutate -n 200000 -benchruns 5
//
// Recovery mode (-recovery) prices the durability layer against the real
// filesystem: ~1% of the base count is mutated through the
// apply-then-WAL-log path twice over identical engines — fsync at every
// batch boundary vs fsync off, recording what the sync costs in
// acknowledged mutations/s — then the synced engine is killed, Recover is
// timed, and the recovered results are verified bit-identical to the
// killed engine's. One mode:"recovery" entry records the sync/no-sync
// mutation throughputs, WAL bytes replayed and the recovery wall clock:
//
//	drim-bench -recovery
//	drim-bench -recovery -n 200000 -benchruns 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"drimann/internal/bench"
)

func main() {
	var (
		expFlag    = flag.String("exp", "", "comma-separated experiment ids (default: all); see -list")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		small      = flag.Bool("small", false, "use the small (test-suite) scale")
		n          = flag.Int("n", 0, "override base vectors per dataset")
		queries    = flag.Int("queries", 0, "override query count")
		dpus       = flag.Int("dpus", 0, "override simulated DPU count")
		seed       = flag.Int64("seed", 0, "override RNG seed")
		selfBench  = flag.Bool("bench", false, "benchmark the simulator itself (wall clock) instead of running experiments")
		backend    = flag.String("backend", "ivf", "-bench/-headtohead: engine backend (ivf or graph)")
		headToHead = flag.Bool("headtohead", false, "head-to-head backend comparison: recall@10 vs simulated QPS for IVF-PQ and graph through the serving path")
		benchOut   = flag.String("benchout", "BENCH_core.json", "trajectory file appended to by -bench/-serve")
		benchRuns  = flag.Int("benchruns", 3, "repetitions per -bench measurement (best is recorded)")
		benchProcs = flag.String("benchprocs", "1,max", "comma-separated GOMAXPROCS sweep for -bench (max = NumCPU)")
		benchNote  = flag.String("benchnote", "", "free-form note stored in the entries recorded by -bench/-serve")
		serveBench = flag.Bool("serve", false, "closed-loop load-generator benchmark over the online serving layer")
		mutate     = flag.Bool("mutate", false, "live-mutability benchmark: QPS with 1%/10% live appends vs the compacted baseline")
		recovery   = flag.Bool("recovery", false, "durability benchmark: WAL fsync overhead, recovery wall clock, bit-identical restart")
		shards     = flag.Int("shards", 0, "cluster mode: scatter-gather benchmark over this many shard engines (-dpus is per shard)")
		assignFlag = flag.String("assign", "hash", "-shards: partitioning policy (hash or kmeans)")
		replicas   = flag.Int("replicas", 0, "replica mode: hedged-vs-unhedged tail benchmark over this many replicas per shard (default 2 shards; -shards overrides)")
		straggler  = flag.Bool("straggler", false, "-replicas: fault-inject a periodic straggler into the last replica of each shard")
		stragDelay = flag.Duration("stragglerdelay", 100*time.Millisecond, "-replicas -straggler: injected stall per straggling call")
		stragEvery = flag.Int("stragglerevery", 3, "-replicas -straggler: every Nth call to the straggler stalls")
		clients    = flag.Int("clients", 8, "-serve: concurrent closed-loop clients")
		qps        = flag.Float64("qps", 0, "-serve: aggregate pacing target in queries/s (0 = unthrottled)")
		maxWait    = flag.Duration("maxwait", 200*time.Microsecond, "-serve: micro-batcher max wait")
		maxBatch   = flag.Int("maxbatch", 0, "-serve: micro-batcher max batch (0 = engine batch size)")
		serveDur   = flag.Duration("servedur", 5*time.Second, "-serve: measurement window")
	)
	flag.Parse()

	// Enum-valued flags are validated up front: a typo'd policy or backend
	// must abort with the valid options, never fall back silently.
	for _, c := range []struct {
		name, value string
		valid       []string
	}{
		{"-assign", *assignFlag, []string{"hash", "kmeans"}},
		{"-backend", *backend, []string{"ivf", "graph"}},
	} {
		if err := validateChoice(c.name, c.value, c.valid); err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %v\n", err)
			os.Exit(2)
		}
	}

	if *headToHead {
		if *selfBench || *serveBench || *small || *expFlag != "" {
			fmt.Fprintln(os.Stderr, "drim-bench: -headtohead excludes -bench/-serve/-small/-exp (use -n/-queries/-dpus)")
			os.Exit(2)
		}
		if err := runHeadToHead(*n, *queries, *dpus, *seed, *benchRuns, *benchNote, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *replicas > 0 {
		if *selfBench || *serveBench || *small || *expFlag != "" {
			fmt.Fprintln(os.Stderr, "drim-bench: -replicas excludes -bench/-serve/-small/-exp (use -n/-queries/-dpus)")
			os.Exit(2)
		}
		if err := runReplicaBench(*n, *queries, *dpus, *seed, *shards, *replicas,
			*assignFlag, *clients, *straggler, *stragDelay, *stragEvery,
			*maxWait, *maxBatch, *serveDur, *benchNote, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *shards > 0 {
		if *selfBench || *serveBench || *small || *expFlag != "" {
			fmt.Fprintln(os.Stderr, "drim-bench: -shards excludes -bench/-serve/-small/-exp (use -n/-queries/-dpus)")
			os.Exit(2)
		}
		if err := runClusterBench(*n, *queries, *dpus, *seed, *shards, *assignFlag,
			*benchRuns, *benchNote, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *mutate {
		if *selfBench || *serveBench || *small || *expFlag != "" {
			fmt.Fprintln(os.Stderr, "drim-bench: -mutate excludes -bench/-serve/-small/-exp (use -n/-queries/-dpus)")
			os.Exit(2)
		}
		if err := runMutateBench(*n, *queries, *dpus, *seed, *benchRuns, *benchNote, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *recovery {
		if *selfBench || *serveBench || *mutate || *small || *expFlag != "" {
			fmt.Fprintln(os.Stderr, "drim-bench: -recovery excludes -bench/-serve/-mutate/-small/-exp (use -n/-queries/-dpus)")
			os.Exit(2)
		}
		if err := runRecoveryBench(*n, *queries, *dpus, *seed, *benchRuns, *benchNote, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serveBench {
		if *selfBench || *small || *expFlag != "" {
			fmt.Fprintln(os.Stderr, "drim-bench: -serve excludes -bench/-small/-exp (use -n/-queries/-dpus)")
			os.Exit(2)
		}
		if err := runServeBench(*n, *queries, *dpus, *seed, *clients, *qps,
			*maxWait, *maxBatch, *serveDur, *benchNote, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *selfBench {
		if *small || *expFlag != "" {
			fmt.Fprintln(os.Stderr, "drim-bench: -small and -exp do not apply to -bench (use -n/-queries/-dpus)")
			os.Exit(2)
		}
		if err := runSelfBench(*n, *queries, *dpus, *seed, *benchRuns, *benchProcs, *backend, *benchNote, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := bench.DefaultScale()
	if *small {
		scale = bench.SmallScale()
	}
	if *n > 0 {
		scale.N = *n
	}
	if *queries > 0 {
		scale.Queries = *queries
	}
	if *dpus > 0 {
		scale.NumDPUs = *dpus
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "drim-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("DRIM-ANN experiment harness: N=%d queries=%d DPUs=%d seed=%d\n\n",
		scale.N, scale.Queries, scale.NumDPUs, scale.Seed)
	runner := bench.NewRunner(scale)
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
