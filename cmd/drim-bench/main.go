// Command drim-bench regenerates the tables and figures of the DRIM-ANN
// paper's evaluation (§5) on the simulated UPMEM system.
//
// Usage:
//
//	drim-bench                  # run every experiment at the default scale
//	drim-bench -exp F7,F9       # run selected experiments
//	drim-bench -small           # test-suite scale (seconds)
//	drim-bench -n 100000 -dpus 128 -queries 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"drimann/internal/bench"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment ids (default: all); see -list")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		small   = flag.Bool("small", false, "use the small (test-suite) scale")
		n       = flag.Int("n", 0, "override base vectors per dataset")
		queries = flag.Int("queries", 0, "override query count")
		dpus    = flag.Int("dpus", 0, "override simulated DPU count")
		seed    = flag.Int64("seed", 0, "override RNG seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := bench.DefaultScale()
	if *small {
		scale = bench.SmallScale()
	}
	if *n > 0 {
		scale.N = *n
	}
	if *queries > 0 {
		scale.Queries = *queries
	}
	if *dpus > 0 {
		scale.NumDPUs = *dpus
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "drim-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("DRIM-ANN experiment harness: N=%d queries=%d DPUs=%d seed=%d\n\n",
		scale.N, scale.Queries, scale.NumDPUs, scale.Seed)
	runner := bench.NewRunner(scale)
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drim-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
