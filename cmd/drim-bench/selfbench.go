package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/topk"
)

// benchEntry is one -bench measurement in the BENCH_core.json trajectory.
type benchEntry struct {
	Note       string `json:"note,omitempty"`
	Timestamp  string `json:"timestamp"`
	GoMaxProcs int    `json:"go_max_procs"`
	N          int    `json:"n"`
	D          int    `json:"d"`
	Queries    int    `json:"queries"`
	Runs       int    `json:"runs"` // repetitions; best time recorded

	DPUs int `json:"dpus"`

	SerialSec    float64 `json:"serial_seconds"`    // Workers=1, NoPipeline
	PipelinedSec float64 `json:"pipelined_seconds"` // default options
	Speedup      float64 `json:"speedup"`
	WallQPS      float64 `json:"wall_qps"` // pipelined wall-clock throughput
	SimQPS       float64 `json:"sim_qps"`  // modeled PIM-system throughput

	LocateSec float64 `json:"locate_seconds"` // batched CL stage alone
	LocateQPS float64 `json:"locate_qps"`
}

// runSelfBench measures the simulator's own wall-clock speed: the pipelined
// engine vs the serial reference path on one corpus, plus the batched CL
// stage, and appends the result to the trajectory file at outPath.
func runSelfBench(n, queries, dpus int, seed int64, runs int, outPath string) error {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	if dpus <= 0 {
		dpus = core.DefaultOptions().NumDPUs
	}
	if seed == 0 {
		seed = 1
	}
	if runs <= 0 {
		runs = 1
	}

	fmt.Printf("drim-bench self-benchmark: N=%d queries=%d DPUs=%d GOMAXPROCS=%d runs=%d\n",
		n, queries, dpus, runtime.GOMAXPROCS(0), runs)
	s := dataset.SIFT(n, queries, seed)
	// Training is capped so setup stays in seconds; search-time cost is
	// unaffected by the training budget.
	t0 := time.Now()
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList:       1024,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 4,
		TrainSample: 8000,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  index built in %.1fs\n", time.Since(t0).Seconds())

	pipeOpts := core.DefaultOptions()
	pipeOpts.NumDPUs = dpus
	serialOpts := pipeOpts
	serialOpts.Workers = 1
	serialOpts.NoPipeline = true
	serial, err := core.New(ix, dataset.U8Set{}, serialOpts)
	if err != nil {
		return err
	}
	pipelined, err := core.New(ix, dataset.U8Set{}, pipeOpts)
	if err != nil {
		return err
	}

	timeSearch := func(e *core.Engine) (float64, float64, error) {
		best := -1.0
		var simQPS float64
		for r := 0; r < runs; r++ {
			t := time.Now()
			res, err := e.SearchBatch(s.Queries)
			if err != nil {
				return 0, 0, err
			}
			if sec := time.Since(t).Seconds(); best < 0 || sec < best {
				best = sec
			}
			simQPS = res.Metrics.QPS
		}
		return best, simQPS, nil
	}

	serialSec, _, err := timeSearch(serial)
	if err != nil {
		return err
	}
	fmt.Printf("  serial    (Workers=1, no pipeline): %.3fs  (%.0f queries/s)\n",
		serialSec, float64(queries)/serialSec)
	pipeSec, simQPS, err := timeSearch(pipelined)
	if err != nil {
		return err
	}
	fmt.Printf("  pipelined (default options):        %.3fs  (%.0f queries/s)  speedup %.2fx\n",
		pipeSec, float64(queries)/pipeSec, serialSec/pipeSec)

	nprobe := core.DefaultOptions().NProbe
	out := make([]topk.Item[uint32], queries*nprobe)
	counts := make([]int, queries)
	locateSec := -1.0
	for r := 0; r < runs; r++ {
		t := time.Now()
		ix.LocateBatch(s.Queries, 0, queries, nprobe, 0, out, counts)
		if sec := time.Since(t).Seconds(); locateSec < 0 || sec < locateSec {
			locateSec = sec
		}
	}
	fmt.Printf("  LocateBatch: %.3fs  (%.0f queries/s)\n", locateSec, float64(queries)/locateSec)

	entry := benchEntry{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N:          n, D: s.Base.D, Queries: queries, Runs: runs,
		DPUs:         dpus,
		SerialSec:    serialSec,
		PipelinedSec: pipeSec,
		Speedup:      serialSec / pipeSec,
		WallQPS:      float64(queries) / pipeSec,
		SimQPS:       simQPS,
		LocateSec:    locateSec,
		LocateQPS:    float64(queries) / locateSec,
	}

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		// Never truncate history because the read failed for some other
		// reason (permissions, IO): surface it instead.
		return fmt.Errorf("reading %s: %w", outPath, err)
	}
	trajectory = append(trajectory, entry)
	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded entry %d in %s\n", len(trajectory), outPath)
	return nil
}
