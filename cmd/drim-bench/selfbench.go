package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/topk"
)

// benchEntry is one -bench measurement in the BENCH_core.json trajectory.
// The file is an append-only JSON array of these entries, one per (run,
// GOMAXPROCS) pair, so successive PRs can track the simulator's own
// wall-clock speed and multi-core scaling. Schema:
type benchEntry struct {
	// Note is free-form context for the entry (what changed in this PR).
	Note string `json:"note,omitempty"`
	// Backend tags which engine produced the entry: "" (legacy and
	// default) is the IVF-PQ engine, "graph" the beam-search graph
	// backend. Cross-PR comparisons only match entries with the same
	// backend tag, so IVF history keeps comparing against IVF.
	Backend string `json:"backend,omitempty"`
	// Mode distinguishes entry kinds: "" (legacy/default) is the offline
	// -bench measurement, "serve" the -serve closed-loop load-generator
	// measurement over the online serving layer, "cluster" the -shards
	// scatter-gather measurement over the sharded fleet, "mutate" the
	// -mutate live-appends-vs-compacted measurement. Cross-PR comparisons
	// only match entries of the same mode.
	Mode string `json:"mode,omitempty"`
	// Timestamp is the measurement time (RFC 3339, UTC).
	Timestamp string `json:"timestamp"`
	// GoMaxProcs is the GOMAXPROCS the measurement ran under; -bench sweeps
	// (1, NumCPU) by default so single-core and multi-core scaling are both
	// recorded (override with -benchprocs).
	GoMaxProcs int `json:"go_max_procs"`
	// N/D/Queries identify the fixture; Runs is the repetition count (the
	// best time of Runs is recorded); DPUs the simulated system size.
	N       int `json:"n"`
	D       int `json:"d"`
	Queries int `json:"queries"`
	Runs    int `json:"runs"`
	DPUs    int `json:"dpus"`

	// SerialSec is the serial reference path (Workers=1, NoPipeline);
	// PipelinedSec the default engine. Both are wall-clock seconds for the
	// full query set.
	SerialSec    float64 `json:"serial_seconds"`
	PipelinedSec float64 `json:"pipelined_seconds"`

	// SpeedupVsSerial = serial_seconds / pipelined_seconds: the engine's
	// pipelined path against its own serial mode in the same build (≈1 on a
	// single hardware thread, where pipelining cannot help). Omitted on
	// legacy pre-PR-2 entries, which recorded it in Speedup.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// SpeedupVsPrev = previous pipelined_seconds / this pipelined_seconds,
	// against the most recent earlier entry with the same fixture shape and
	// GOMAXPROCS — the cross-PR improvement on this phase. Omitted when no
	// comparable entry exists.
	SpeedupVsPrev float64 `json:"speedup_vs_prev_entry,omitempty"`
	// Speedup is the legacy pre-PR-2 field (same value as
	// speedup_vs_serial); kept so old entries round-trip unchanged.
	Speedup float64 `json:"speedup,omitempty"`

	// WallQPS is pipelined wall-clock throughput; SimQPS the modeled
	// PIM-system throughput (unaffected by host speed).
	WallQPS float64 `json:"wall_qps"`
	SimQPS  float64 `json:"sim_qps"`

	// LocateSec/LocateQPS measure the batched CL stage alone. Not omitempty:
	// the fields predate the serve mode and historical entries carry them
	// explicitly, so marshaling must keep old records byte-stable.
	LocateSec float64 `json:"locate_seconds"`
	LocateQPS float64 `json:"locate_qps"`

	// Serve-mode fields (mode == "serve"): the closed-loop load-generator
	// configuration and its outcome. Clients is the concurrent caller
	// count; TargetQPS the aggregate pacing target (0 = unthrottled);
	// MaxWaitMS / MaxBatch the batcher policy; DurSec the measurement
	// window. AchievedQPS counts completed requests over the window;
	// P50/P95/P99MS are client-observed Search latencies; MeanBatch the
	// completed-weighted mean launch size. For serve entries,
	// SpeedupVsPrev is this AchievedQPS over the previous comparable
	// entry's (>1 = faster serving).
	Clients     int     `json:"clients,omitempty"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	MaxWaitMS   float64 `json:"max_wait_ms,omitempty"`
	MaxBatch    int     `json:"max_batch,omitempty"`
	DurSec      float64 `json:"duration_seconds,omitempty"`
	AchievedQPS float64 `json:"achieved_qps,omitempty"`
	P50MS       float64 `json:"p50_ms,omitempty"`
	P95MS       float64 `json:"p95_ms,omitempty"`
	P99MS       float64 `json:"p99_ms,omitempty"`
	MeanBatch   float64 `json:"mean_batch,omitempty"`

	// Cluster-mode fields (mode == "cluster"): Shards is the fleet size
	// (DPUs above is per shard), Assignment the partitioning policy. For
	// cluster entries PipelinedSec/WallQPS measure the scatter-gather
	// Cluster.SearchBatch wall clock, SerialSec/SpeedupVsSerial the
	// single-engine (unsharded) reference over the same index in the same
	// build, and SimQPS the fleet's modeled throughput (max-over-shards
	// latency accounting). SpeedupVsPrev only compares against earlier
	// cluster entries with the same fixture shape, shard count and
	// assignment.
	Shards     int    `json:"shards,omitempty"`
	Assignment string `json:"assignment,omitempty"`

	// Selective-scatter routing fields (mode == "cluster" under kmeans
	// assignment): Selective marks entries measured on the front-door-CL
	// selective scatter path (coarse locate runs once at the front door and
	// only shards owning probed clusters are contacted), as opposed to the
	// broadcast path where every shard runs CL itself. MeanFanout/MaxFanout
	// summarize the per-batch shards-contacted distribution; FrontCLShare is
	// the front-door CL stage's share of the scatter-gather wall clock.
	// Absent on broadcast entries; cross-PR comparisons never mix selective
	// and broadcast entries.
	Selective    bool    `json:"selective_scatter,omitempty"`
	MeanFanout   float64 `json:"mean_fanout,omitempty"`
	MaxFanout    int     `json:"max_fanout,omitempty"`
	FrontCLShare float64 `json:"front_cl_share,omitempty"`

	// Replica-mode fields (mode == "replica"): the -replicas tail-masking
	// benchmark. Replicas is the copies per shard; StragglerDelayMS /
	// StragglerEvery describe the injected straggler (every
	// straggler_every-th call to one replica of each shard stalls by
	// straggler_delay_ms) — both zero when -straggler is off. The same
	// closed-loop load (Clients above) runs twice over the same degraded
	// fleet, hedging off then on; the Unhedged*/Hedged* percentiles are the
	// client-observed Search latencies of the two runs, and the QPS pair
	// their throughputs. For replica entries SpeedupVsPrev compares hedged
	// p99 tails across PRs (previous hedged_p99_ms over this one, >1 =
	// better tail); the headline hedged-vs-unhedged ratio within the run is
	// unhedged_p99_ms / hedged_p99_ms.
	Replicas         int     `json:"replicas,omitempty"`
	StragglerDelayMS float64 `json:"straggler_delay_ms,omitempty"`
	StragglerEvery   int     `json:"straggler_every,omitempty"`
	UnhedgedP50MS    float64 `json:"unhedged_p50_ms,omitempty"`
	UnhedgedP99MS    float64 `json:"unhedged_p99_ms,omitempty"`
	UnhedgedP999MS   float64 `json:"unhedged_p999_ms,omitempty"`
	HedgedP50MS      float64 `json:"hedged_p50_ms,omitempty"`
	HedgedP99MS      float64 `json:"hedged_p99_ms,omitempty"`
	HedgedP999MS     float64 `json:"hedged_p999_ms,omitempty"`
	UnhedgedQPS      float64 `json:"unhedged_qps,omitempty"`
	HedgedQPS        float64 `json:"hedged_qps,omitempty"`

	// Mutate-mode fields (mode == "mutate"): the -mutate live-mutability
	// benchmark. AppendFrac is the fraction of the base count appended live
	// (one entry per fraction; AppendCount the resulting point count,
	// OverlayBytes the overlay's memory cost at measurement time).
	// OverlaySec/OverlayQPS measure the offline batch over the index with
	// that overlay in place — fresh points served out of append segments —
	// and CompactedSec/CompactedQPS the same build's packed baseline before
	// any append, shared by every fraction of the run; within a run,
	// overlay_qps / compacted_qps prices the overlay scan. For mutate
	// entries SpeedupVsPrev is this OverlayQPS over the previous comparable
	// entry's (same fixture and fraction; >1 = faster mutable serving).
	AppendFrac   float64 `json:"append_frac,omitempty"`
	AppendCount  int     `json:"append_count,omitempty"`
	OverlayBytes int64   `json:"overlay_bytes,omitempty"`
	OverlaySec   float64 `json:"overlay_seconds,omitempty"`
	OverlayQPS   float64 `json:"overlay_qps,omitempty"`
	CompactedSec float64 `json:"compacted_seconds,omitempty"`
	CompactedQPS float64 `json:"compacted_qps,omitempty"`

	// Recovery-mode fields (mode == "recovery"): the -recovery durability
	// benchmark. MutCount is the number of mutated points (inserts plus
	// deletes) applied and WAL-logged before the kill; WALBytes the log's
	// size at the kill point. SyncedMutQPS and UnsyncedMutQPS are
	// acknowledged mutations/s over the identical workload under
	// fsync-every-batch vs fsync-off — their ratio prices the sync.
	// RecoverSec is the wall clock of Recover (redeploy the checkpoint,
	// replay the WAL tail), after which the recovered engine's results are
	// verified bit-identical to the killed engine's; for recovery entries
	// WallQPS/SimQPS measure the recovered engine's offline batch and
	// SpeedupVsPrev is the previous comparable entry's recover_seconds
	// over this one (>1 = faster recovery).
	MutCount       int     `json:"mut_count,omitempty"`
	WALBytes       int64   `json:"wal_bytes,omitempty"`
	SyncedMutQPS   float64 `json:"synced_mut_qps,omitempty"`
	UnsyncedMutQPS float64 `json:"unsynced_mut_qps,omitempty"`
	RecoverSec     float64 `json:"recover_seconds,omitempty"`

	// Head-to-head fields (mode == "headtohead"): one entry per (backend,
	// curve point) of the -headtohead recall-vs-QPS sweep, all queries
	// driven through the online serving path. CurveParam names the knob
	// being swept (IVF: "nprobe"; graph: "beam"), CurveValue its setting,
	// Recall10 the recall@10 against exact ground truth; SimQPS above is
	// the modeled PIM throughput at that point and WallQPS the wall-clock
	// throughput through the server. BuildSec is the one-time index/graph
	// construction cost of the backend (repeated on every entry of the
	// sweep for self-containedness). SpeedupVsPrev compares SimQPS against
	// the previous comparable entry (same backend, param and value).
	CurveParam string  `json:"curve_param,omitempty"`
	CurveValue int     `json:"curve_value,omitempty"`
	Recall10   float64 `json:"recall_at_10,omitempty"`
	BuildSec   float64 `json:"build_seconds,omitempty"`
}

// validateChoice rejects a flag value outside its closed set of valid
// options, naming them — enum flags must fail loudly, not fall back.
func validateChoice(flagName, value string, valid []string) error {
	for _, v := range valid {
		if value == v {
			return nil
		}
	}
	return fmt.Errorf("unknown %s %q (valid: %s)", flagName, value, strings.Join(valid, ", "))
}

// parseProcsList parses the -benchprocs flag: a comma-separated GOMAXPROCS
// sweep, where "max" (or 0) means NumCPU. Duplicates collapse.
func parseProcsList(spec string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		p := 0
		if f != "max" {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad -benchprocs element %q", f)
			}
			p = v
		}
		if p == 0 {
			p = runtime.NumCPU()
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-benchprocs is empty")
	}
	return out, nil
}

// runSelfBench measures the simulator's own wall-clock speed — the pipelined
// engine vs the serial reference path plus, on the IVF backend, the batched
// CL stage alone — once per GOMAXPROCS value in the sweep, and appends one
// entry per value to the trajectory file at outPath. backend selects the
// engine under test ("ivf" or "graph"); graph entries carry a backend tag
// and only ever compare against graph entries.
func runSelfBench(n, queries, dpus int, seed int64, runs int, procsSpec, backend, note, outPath string) error {
	if n <= 0 {
		n = 100000
	}
	if queries <= 0 {
		queries = 1000
	}
	if dpus <= 0 {
		dpus = core.DefaultOptions().NumDPUs
	}
	if seed == 0 {
		seed = 1
	}
	if runs <= 0 {
		runs = 1
	}
	procs, err := parseProcsList(procsSpec)
	if err != nil {
		return err
	}
	if backend == "graph" {
		return runGraphSelfBench(n, queries, dpus, seed, runs, procs, note, outPath)
	}

	fmt.Printf("drim-bench self-benchmark: N=%d queries=%d DPUs=%d procs=%v runs=%d\n",
		n, queries, dpus, procs, runs)
	s := dataset.SIFT(n, queries, seed)
	// Training is capped so setup stays in seconds; search-time cost is
	// unaffected by the training budget.
	t0 := time.Now()
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList:       1024,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 4,
		TrainSample: 8000,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  index built in %.1fs\n", time.Since(t0).Seconds())

	var trajectory []benchEntry
	raw, err := os.ReadFile(outPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", outPath, err)
		}
	case !os.IsNotExist(err):
		// Never truncate history because the read failed for some other
		// reason (permissions, IO): surface it instead.
		return fmt.Errorf("reading %s: %w", outPath, err)
	}
	// Cross-PR comparisons only look at entries that existed before this
	// invocation, so a sweep never compares against itself.
	prior := trajectory

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0)) // restore on exit
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		fmt.Printf("  GOMAXPROCS=%d\n", p)

		pipeOpts := core.DefaultOptions()
		pipeOpts.NumDPUs = dpus
		pipeOpts.Workers = p
		serialOpts := pipeOpts
		serialOpts.Workers = 1
		serialOpts.NoPipeline = true
		serial, err := core.New(ix, dataset.U8Set{}, serialOpts)
		if err != nil {
			return err
		}
		pipelined, err := core.New(ix, dataset.U8Set{}, pipeOpts)
		if err != nil {
			return err
		}

		timeSearch := func(e *core.Engine) (float64, float64, error) {
			best := -1.0
			var simQPS float64
			for r := 0; r < runs; r++ {
				t := time.Now()
				res, err := e.SearchBatch(s.Queries)
				if err != nil {
					return 0, 0, err
				}
				if sec := time.Since(t).Seconds(); best < 0 || sec < best {
					best = sec
				}
				simQPS = res.Metrics.QPS
			}
			return best, simQPS, nil
		}

		serialSec, _, err := timeSearch(serial)
		if err != nil {
			return err
		}
		fmt.Printf("    serial    (Workers=1, no pipeline): %.3fs  (%.0f queries/s)\n",
			serialSec, float64(queries)/serialSec)
		pipeSec, simQPS, err := timeSearch(pipelined)
		if err != nil {
			return err
		}
		fmt.Printf("    pipelined (default options):        %.3fs  (%.0f queries/s)  vs serial %.2fx\n",
			pipeSec, float64(queries)/pipeSec, serialSec/pipeSec)

		nprobe := core.DefaultOptions().NProbe
		out := make([]topk.Item[uint32], queries*nprobe)
		counts := make([]int, queries)
		locateSec := -1.0
		for r := 0; r < runs; r++ {
			t := time.Now()
			ix.LocateBatch(s.Queries, 0, queries, nprobe, 0, out, counts)
			if sec := time.Since(t).Seconds(); locateSec < 0 || sec < locateSec {
				locateSec = sec
			}
		}
		fmt.Printf("    LocateBatch: %.3fs  (%.0f queries/s)\n", locateSec, float64(queries)/locateSec)

		entry := benchEntry{
			Note:       note,
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: p,
			N:          n, D: s.Base.D, Queries: queries, Runs: runs,
			DPUs:            dpus,
			SerialSec:       serialSec,
			PipelinedSec:    pipeSec,
			SpeedupVsSerial: serialSec / pipeSec,
			WallQPS:         float64(queries) / pipeSec,
			SimQPS:          simQPS,
			LocateSec:       locateSec,
			LocateQPS:       float64(queries) / locateSec,
		}
		if prev := lastComparable(prior, entry); prev != nil && pipeSec > 0 {
			entry.SpeedupVsPrev = prev.PipelinedSec / pipeSec
			fmt.Printf("    vs previous entry (%s): %.2fx\n", prev.Timestamp, entry.SpeedupVsPrev)
		}
		trajectory = append(trajectory, entry)
	}

	raw, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  recorded %d entr%s in %s (total %d)\n",
		len(procs), map[bool]string{true: "y", false: "ies"}[len(procs) == 1], outPath, len(trajectory))
	return nil
}

// lastComparable returns the most recent prior entry of the same mode and
// backend measuring the same fixture shape at the same GOMAXPROCS — and,
// per mode, the same configuration: serve entries must match the
// load-generator setup, cluster entries the shard count and assignment
// policy, head-to-head entries the swept knob and its value. Entries of
// different modes or backends never compare (an offline -bench second
// count and a cluster scatter-gather second count are different phenomena
// even on the same fixture, and a graph traversal is never comparable to
// an IVF scan), so speedup_vs_prev_entry always tracks like against like.
func lastComparable(prior []benchEntry, e benchEntry) *benchEntry {
	for i := len(prior) - 1; i >= 0; i-- {
		p := &prior[i]
		if p.Mode != e.Mode || p.Backend != e.Backend || p.GoMaxProcs != e.GoMaxProcs ||
			p.N != e.N || p.D != e.D || p.Queries != e.Queries || p.DPUs != e.DPUs {
			continue
		}
		switch e.Mode {
		case "headtohead":
			if p.CurveParam == e.CurveParam && p.CurveValue == e.CurveValue && p.SimQPS > 0 {
				return p
			}
			continue
		case "serve":
			if p.Clients == e.Clients && p.TargetQPS == e.TargetQPS &&
				p.MaxWaitMS == e.MaxWaitMS && p.MaxBatch == e.MaxBatch && p.AchievedQPS > 0 {
				return p
			}
		case "cluster":
			if p.Shards == e.Shards && p.Assignment == e.Assignment &&
				p.Selective == e.Selective && p.PipelinedSec > 0 {
				return p
			}
		case "replica":
			if p.Shards == e.Shards && p.Replicas == e.Replicas &&
				p.Assignment == e.Assignment && p.Clients == e.Clients &&
				p.StragglerDelayMS == e.StragglerDelayMS &&
				p.StragglerEvery == e.StragglerEvery && p.HedgedP99MS > 0 {
				return p
			}
		case "mutate":
			if p.AppendFrac == e.AppendFrac && p.OverlayQPS > 0 {
				return p
			}
		case "recovery":
			if p.MutCount == e.MutCount && p.RecoverSec > 0 {
				return p
			}
		default:
			if p.PipelinedSec > 0 {
				return p
			}
		}
	}
	return nil
}
