// Command drim-dse runs DRIM-ANN's Bayesian design space exploration
// (paper §4.1) on a synthetic corpus: it searches (nprobe, nlist, M, CB)
// for the configuration with the best model-predicted throughput subject to
// a measured recall constraint.
//
// Usage:
//
//	drim-dse -dataset SIFT -n 50000 -accuracy 0.8 -budget 12
package main

import (
	"flag"
	"fmt"
	"log"

	"drimann"
	"drimann/internal/dse"
	"drimann/internal/ivf"
	"drimann/internal/perfmodel"
	"drimann/internal/pq"
	"drimann/internal/upmem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drim-dse: ")
	var (
		dsName   = flag.String("dataset", "SIFT", "synthetic dataset shape: SIFT, DEEP, SPACEV, T2I")
		n        = flag.Int("n", 50000, "corpus size")
		queries  = flag.Int("queries", 256, "queries used to measure recall")
		accuracy = flag.Float64("accuracy", 0.8, "recall@k constraint")
		k        = flag.Int("k", 10, "neighbors per query")
		budget   = flag.Int("budget", 12, "expensive recall evaluations")
		dpus     = flag.Int("dpus", 128, "modeled DPUs")
		seed     = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	var s *drimann.Synth
	switch *dsName {
	case "SIFT":
		s = drimann.SIFT(*n, *queries, *seed)
	case "DEEP":
		s = drimann.DEEP(*n, *queries, *seed)
	case "SPACEV":
		s = drimann.SPACEV(*n, *queries, *seed)
	case "T2I":
		s = drimann.T2I(*n, *queries, *seed)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}
	gt := drimann.GroundTruth(s.Base, s.Queries, *k, 0)

	baseM := 16
	for s.Base.D%baseM != 0 {
		baseM /= 2
	}
	space := dse.Space{
		P:     []int{8, 16, 32, 64},
		NList: []int{*n / 256, *n / 64, *n / 16},
		M:     []int{baseM, baseM * 2},
		CB:    []int{64, 256},
	}
	host := perfmodel.FromPlatform(upmem.PlatformCPU())
	pim := perfmodel.Hardware{
		PE: float64(*dpus), FreqHz: 350e6 * 0.30, Lanes: 1,
		BWBytes: float64(*dpus) * 0.7e9,
	}

	indexes := map[string]*ivf.Index{}
	qpsFn := func(c dse.Candidate) (float64, error) {
		avg := s.Base.N / c.NList
		if avg < 1 {
			avg = 1
		}
		p := perfmodel.Params{
			N: int64(s.Base.N), Q: s.Queries.N, D: s.Base.D,
			K: *k, P: c.P, C: avg, M: c.M, CB: c.CB,
		}
		return perfmodel.PredictQPS(p, host, pim, true)
	}
	evals := 0
	recallFn := func(c dse.Candidate) (float64, error) {
		key := fmt.Sprintf("%d/%d/%d", c.NList, c.M, c.CB)
		ix := indexes[key]
		if ix == nil {
			var err error
			ix, err = ivf.Build(s.Base, ivf.BuildConfig{
				NList: c.NList, PQ: pq.Config{M: c.M, CB: c.CB}, Seed: *seed,
			})
			if err != nil {
				return 0, err
			}
			indexes[key] = ix
		}
		got := ix.SearchIntBatch(s.Queries, c.P, *k, 0)
		r := drimann.Recall(gt, got, *k)
		evals++
		fmt.Printf("  eval %2d: %-28s recall=%.3f\n", evals, c.String(), r)
		return r, nil
	}

	fmt.Printf("exploring %d candidates with budget %d, recall@%d >= %.2f\n",
		len(space.All()), *budget, *k, *accuracy)
	res, err := dse.Optimize(space, qpsFn, recallFn, dse.Config{
		AccuracyConstraint: *accuracy, Budget: *budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest: %s\n  model QPS = %.0f, measured recall = %.3f, feasible = %v\n",
		res.Best.String(), res.BestQPS, res.BestRecall, res.Feasible)
}
