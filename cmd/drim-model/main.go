// Command drim-model evaluates DRIM-ANN's analytic performance model
// (paper §4, Equations 1-13) for a given index configuration and hardware:
// per-phase compute/IO costs, compute-to-IO ratios, the suggested host/PIM
// phase placement, and predicted QPS on the modeled platforms.
//
// Usage:
//
//	drim-model -n 100000000 -d 128 -nlist 16384 -nprobe 96 -m 16 -cb 256
package main

import (
	"flag"
	"fmt"

	"drimann/internal/perfmodel"
	"drimann/internal/upmem"
)

func main() {
	var (
		n      = flag.Int64("n", 100_000_000, "total vectors")
		q      = flag.Int("q", 10000, "queries per batch")
		d      = flag.Int("d", 128, "dimension")
		k      = flag.Int("k", 10, "neighbors per query")
		nlist  = flag.Int("nlist", 1<<14, "coarse clusters")
		nprobe = flag.Int("nprobe", 96, "probed clusters per query")
		m      = flag.Int("m", 16, "PQ subvectors")
		cb     = flag.Int("cb", 256, "codebook entries")
		dimms  = flag.Int("dimms", 32, "UPMEM DIMMs (80 DPUs each)")
		sqt    = flag.Bool("sqt", true, "multiplier-less (SQT) LC kernel on the PIM")
	)
	flag.Parse()

	c := int(*n) / *nlist
	if c < 1 {
		c = 1
	}
	p := perfmodel.Params{
		N: *n, Q: *q, D: *d, K: *k, P: *nprobe, C: c, M: *m, CB: *cb,
	}
	mulCost := 32.0
	if *sqt {
		mulCost = 2.0
	}
	costs, err := perfmodel.Costs(p, mulCost)
	if err != nil {
		fmt.Println("drim-model:", err)
		return
	}

	fmt.Printf("configuration: N=%d Q=%d D=%d K=%d nprobe=%d nlist=%d (C=%d) M=%d CB=%d sqt=%v\n\n",
		*n, *q, *d, *k, *nprobe, *nlist, c, *m, *cb, *sqt)
	fmt.Printf("%-6s  %14s  %14s  %10s\n", "phase", "compute (ops)", "IO (bytes)", "C2IO")
	var totOps, totIO float64
	for ph := upmem.Phase(0); ph < upmem.NumPhases; ph++ {
		pc := costs[ph]
		if pc.Compute == 0 && pc.IO == 0 {
			continue
		}
		fmt.Printf("%-6s  %14.3e  %14.3e  %10.4f\n", ph, pc.Compute, pc.IO, pc.C2IO())
		totOps += pc.Compute
		totIO += pc.IO
	}
	fmt.Printf("%-6s  %14.3e  %14.3e  %10.4f  (arithmetic intensity)\n\n",
		"total", totOps, totIO, perfmodel.ArithmeticIntensity(costs))

	host := perfmodel.FromPlatform(upmem.PlatformCPU())
	pim := perfmodel.FromPlatform(upmem.PlatformUPMEM(*dimms))
	asg := perfmodel.SuggestAssignment(costs, host, pim)
	fmt.Print("suggested placement (paper §4 C2IO rule): host = {")
	first := true
	for ph := upmem.Phase(0); ph < upmem.NumPhases; ph++ {
		if asg.HostPhases[ph] {
			if !first {
				fmt.Print(", ")
			}
			fmt.Print(ph)
			first = false
		}
	}
	fmt.Println("}, remainder on PIM")

	batch := perfmodel.BatchTime(costs, host, pim, asg)
	fmt.Printf("predicted batch time on UPMEM x%d DIMMs: %.3f ms -> %.0f QPS\n",
		*dimms, batch*1e3, perfmodel.QPS(p, batch))

	for _, plt := range []upmem.Platform{
		upmem.PlatformCPU(), upmem.PlatformGPU(),
		upmem.PlatformHBMPIM(), upmem.PlatformAiM(),
	} {
		hw := perfmodel.FromPlatform(plt)
		t := perfmodel.BatchTime(costs, hw, hw, perfmodel.Assignment{})
		note := ""
		if !plt.Fits(perfmodel.DatasetBytes(p)) {
			note = "  [dataset exceeds memory: OOM]"
		}
		fmt.Printf("  %-34s ideal %.0f QPS%s\n", plt.Name, perfmodel.QPS(p, t), note)
	}
}
