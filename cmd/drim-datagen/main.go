// Command drim-datagen writes synthetic DRIM-ANN corpora to disk in the
// standard TEXMEX formats: .bvecs (base and query vectors) and .ivecs
// (exact ground truth), so external tools can consume them.
//
// Usage:
//
//	drim-datagen -dataset SIFT -n 100000 -queries 1000 -out ./data/sift
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"drimann"
	"drimann/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drim-datagen: ")
	var (
		dsName  = flag.String("dataset", "SIFT", "dataset shape: SIFT, DEEP, SPACEV, T2I")
		n       = flag.Int("n", 100000, "base vectors")
		queries = flag.Int("queries", 1000, "query vectors")
		k       = flag.Int("k", 100, "ground-truth neighbors per query (0 to skip)")
		out     = flag.String("out", "data", "output path prefix")
		seed    = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	var s *drimann.Synth
	switch *dsName {
	case "SIFT":
		s = drimann.SIFT(*n, *queries, *seed)
	case "DEEP":
		s = drimann.DEEP(*n, *queries, *seed)
	case "SPACEV":
		s = drimann.SPACEV(*n, *queries, *seed)
	case "T2I":
		s = drimann.T2I(*n, *queries, *seed)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}

	baseFile := *out + "_base.bvecs"
	if err := dataset.SaveBvecsFile(baseFile, s.Base); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d x %d)\n", baseFile, s.Base.N, s.Base.D)

	queryFile := *out + "_query.bvecs"
	if err := dataset.SaveBvecsFile(queryFile, s.Queries); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d x %d)\n", queryFile, s.Queries.N, s.Queries.D)

	if *k > 0 {
		gt := dataset.GroundTruth(s.Base, s.Queries, *k, 0)
		gtFile := *out + "_groundtruth.ivecs"
		f, err := os.Create(gtFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := dataset.WriteIvecs(f, gt); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (top-%d exact neighbors)\n", gtFile, *k)
	}
}
