// Command drim-search builds a DRIM-ANN index over a corpus (a .bvecs file
// or a generated synthetic dataset) and serves a query batch on the
// simulated UPMEM system, reporting QPS, recall and the phase breakdown.
//
// Usage:
//
//	drim-search -dataset SIFT -n 100000 -queries 1000 -nlist 1024 -nprobe 32
//	drim-search -base corpus.bvecs -query queries.bvecs -nlist 4096
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"drimann"
	"drimann/internal/dataset"
	"drimann/internal/upmem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drim-search: ")
	var (
		dsName  = flag.String("dataset", "SIFT", "synthetic dataset shape: SIFT, DEEP, SPACEV, T2I")
		n       = flag.Int("n", 100000, "synthetic corpus size")
		queries = flag.Int("queries", 1000, "synthetic query count")
		baseF   = flag.String("base", "", "optional .bvecs corpus file (overrides -dataset)")
		queryF  = flag.String("query", "", "optional .bvecs query file (with -base)")
		nlist   = flag.Int("nlist", 1024, "number of coarse clusters")
		m       = flag.Int("m", 16, "PQ subvectors")
		cb      = flag.Int("cb", 256, "PQ codebook entries")
		variant = flag.String("variant", "pq", "quantizer variant: pq, opq, dpq")
		nprobe  = flag.Int("nprobe", 32, "clusters probed per query")
		k       = flag.Int("k", 10, "neighbors per query")
		dpus    = flag.Int("dpus", 128, "simulated DPUs")
		seed    = flag.Int64("seed", 1, "RNG seed")
		showGT  = flag.Bool("recall", true, "compute exact ground truth and recall (brute force)")
	)
	flag.Parse()

	var base, qs drimann.Vectors
	if *baseF != "" {
		var err error
		base, err = dataset.LoadBvecsFile(*baseF)
		if err != nil {
			log.Fatal(err)
		}
		if *queryF == "" {
			log.Fatal("-query is required with -base")
		}
		qs, err = dataset.LoadBvecsFile(*queryF)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var s *drimann.Synth
		switch *dsName {
		case "SIFT":
			s = drimann.SIFT(*n, *queries, *seed)
		case "DEEP":
			s = drimann.DEEP(*n, *queries, *seed)
		case "SPACEV":
			s = drimann.SPACEV(*n, *queries, *seed)
		case "T2I":
			s = drimann.T2I(*n, *queries, *seed)
		default:
			log.Fatalf("unknown dataset %q", *dsName)
		}
		base, qs = s.Base, s.Queries
	}
	fmt.Printf("corpus: %d x %d, queries: %d\n", base.N, base.D, qs.N)

	ix, err := drimann.Build(base, drimann.IndexOptions{
		NList: *nlist, M: *m, CB: *cb, Variant: *variant, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: nlist=%d M=%d CB=%d variant=%s (avg cluster %.0f points)\n",
		ix.NList, ix.M, ix.CB, *variant, ix.AvgListLen())

	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = *dpus
	opts.NProbe = *nprobe
	opts.K = *k
	eng, err := drimann.NewEngine(ix, qs, opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.SearchBatch(qs)
	if err != nil {
		log.Fatal(err)
	}
	m2 := res.Metrics
	fmt.Printf("\nsimulated on %d DPUs: %.0f QPS (%.2f ms batch, %d launches, imbalance %.2f)\n",
		*dpus, m2.QPS, m2.SimSeconds*1e3, m2.Launches, m2.AvgImbalance())
	fmt.Printf("phase breakdown: ")
	sh := m2.PhaseShare()
	for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
		if sh[p] > 0 {
			fmt.Printf("%s %.1f%%  ", p, sh[p]*100)
		}
	}
	fmt.Println()
	fmt.Printf("locks: %d acquired, %d pruned; LUT builds %d, reuses %d\n",
		m2.LockAcquired, m2.LockSkipped, m2.LUTBuilds, m2.LUTReuses)

	if *showGT {
		gt := drimann.GroundTruth(base, qs, *k, 0)
		fmt.Printf("recall@%d = %.4f\n", *k, drimann.Recall(gt, res.IDs, *k))
	}
	if len(res.IDs) > 0 {
		fmt.Printf("query 0 neighbors: %v\n", res.IDs[0])
	}
	os.Exit(0)
}
