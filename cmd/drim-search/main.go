// Command drim-search builds a DRIM-ANN index over a corpus (a .bvecs file
// or a generated synthetic dataset) and serves a query workload through the
// online serving layer (drimann.NewServer) on the simulated UPMEM system:
// concurrent clients submit single queries, the deadline-aware micro-batcher
// coalesces them into engine launches, and the tool reports achieved QPS,
// client-observed latency percentiles, recall and the phase breakdown.
//
// Usage:
//
//	drim-search -dataset SIFT -n 100000 -queries 1000 -nlist 1024 -nprobe 32
//	drim-search -base corpus.bvecs -query queries.bvecs -nlist 4096
//	drim-search -clients 16 -maxwait 500us -maxbatch 64
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"drimann"
	"drimann/internal/dataset"
	"drimann/internal/upmem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drim-search: ")
	var (
		dsName   = flag.String("dataset", "SIFT", "synthetic dataset shape: SIFT, DEEP, SPACEV, T2I")
		n        = flag.Int("n", 100000, "synthetic corpus size")
		queries  = flag.Int("queries", 1000, "synthetic query count")
		baseF    = flag.String("base", "", "optional .bvecs corpus file (overrides -dataset)")
		queryF   = flag.String("query", "", "optional .bvecs query file (with -base)")
		nlist    = flag.Int("nlist", 1024, "number of coarse clusters")
		m        = flag.Int("m", 16, "PQ subvectors")
		cb       = flag.Int("cb", 256, "PQ codebook entries")
		variant  = flag.String("variant", "pq", "quantizer variant: pq, opq, dpq")
		nprobe   = flag.Int("nprobe", 32, "clusters probed per query")
		k        = flag.Int("k", 10, "neighbors per query")
		dpus     = flag.Int("dpus", 128, "simulated DPUs")
		seed     = flag.Int64("seed", 1, "RNG seed")
		showGT   = flag.Bool("recall", true, "compute exact ground truth and recall (brute force)")
		clients  = flag.Int("clients", 8, "concurrent serving clients")
		maxWait  = flag.Duration("maxwait", 200*time.Microsecond, "micro-batcher max wait")
		maxBatch = flag.Int("maxbatch", 0, "micro-batcher max batch (0 = engine batch size)")
	)
	flag.Parse()

	var base, qs drimann.Vectors
	if *baseF != "" {
		var err error
		base, err = dataset.LoadBvecsFile(*baseF)
		if err != nil {
			log.Fatal(err)
		}
		if *queryF == "" {
			log.Fatal("-query is required with -base")
		}
		qs, err = dataset.LoadBvecsFile(*queryF)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var s *drimann.Synth
		switch *dsName {
		case "SIFT":
			s = drimann.SIFT(*n, *queries, *seed)
		case "DEEP":
			s = drimann.DEEP(*n, *queries, *seed)
		case "SPACEV":
			s = drimann.SPACEV(*n, *queries, *seed)
		case "T2I":
			s = drimann.T2I(*n, *queries, *seed)
		default:
			log.Fatalf("unknown dataset %q", *dsName)
		}
		base, qs = s.Base, s.Queries
	}
	fmt.Printf("corpus: %d x %d, queries: %d\n", base.N, base.D, qs.N)
	if qs.N == 0 {
		log.Fatal("no queries to serve")
	}

	ix, err := drimann.Build(base, drimann.IndexOptions{
		NList: *nlist, M: *m, CB: *cb, Variant: *variant, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: nlist=%d M=%d CB=%d variant=%s (avg cluster %.0f points)\n",
		ix.NList, ix.M, ix.CB, *variant, ix.AvgListLen())

	opts := drimann.DefaultEngineOptions()
	opts.NumDPUs = *dpus
	opts.NProbe = *nprobe
	opts.K = *k
	eng, err := drimann.NewEngine(ix, qs, opts)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := drimann.NewServer(eng, drimann.ServerOptions{
		MaxBatch: *maxBatch, MaxWait: *maxWait,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Drive every query through the server from concurrent clients — the
	// online path a real workload takes — collecting per-query results and
	// client-observed latencies.
	ids := make([][]int32, qs.N)
	latencies := make([]time.Duration, qs.N)
	var wg sync.WaitGroup
	nClients := *clients
	if nClients < 1 {
		nClients = 1
	}
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for qi := c; qi < qs.N; qi += nClients {
				resp, err := srv.Search(context.Background(), qs.Vec(qi), *k)
				if err != nil {
					log.Fatalf("query %d: %v", qi, err)
				}
				ids[qi] = resp.IDs
				latencies[qi] = resp.Latency
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}

	st := srv.Stats()
	m2 := st.Sim
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		return drimann.LatencyPercentile(latencies, p).Seconds() * 1e3
	}
	fmt.Printf("\nserved %d queries with %d clients in %.2fs: %.0f QPS achieved (wall), %.0f QPS simulated on %d DPUs\n",
		qs.N, nClients, wall.Seconds(), float64(qs.N)/wall.Seconds(), m2.QPS, *dpus)
	fmt.Printf("latency p50 %.3fms  p95 %.3fms  p99 %.3fms; %d launches, mean batch %.1f, imbalance %.2f\n",
		pct(0.50), pct(0.95), pct(0.99), st.Batches, st.MeanBatch, m2.AvgImbalance())
	fmt.Printf("phase breakdown: ")
	sh := m2.PhaseShare()
	for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
		if sh[p] > 0 {
			fmt.Printf("%s %.1f%%  ", p, sh[p]*100)
		}
	}
	fmt.Println()
	fmt.Printf("locks: %d acquired, %d pruned; LUT builds %d, reuses %d\n",
		m2.LockAcquired, m2.LockSkipped, m2.LUTBuilds, m2.LUTReuses)

	if *showGT {
		gt := drimann.GroundTruth(base, qs, *k, 0)
		fmt.Printf("recall@%d = %.4f\n", *k, drimann.Recall(gt, ids, *k))
	}
	if len(ids) > 0 {
		fmt.Printf("query 0 neighbors: %v\n", ids[0])
	}
	os.Exit(0)
}
