package drimann_test

// One testing.B benchmark per table/figure of the paper's evaluation,
// regenerating the artifact at the small scale. `go test -bench=.` prints
// each table once (first iteration) and reports the wall time of a full
// regeneration.

import (
	"io"
	"os"
	"sync"
	"testing"

	"drimann/internal/bench"
)

var (
	runnerOnce sync.Once
	runner     *bench.Runner
)

// sharedRunner caches datasets/indexes across benchmarks.
func sharedRunner() *bench.Runner {
	runnerOnce.Do(func() { runner = bench.NewRunner(bench.SmallScale()) })
	return runner
}

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		t, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		var out io.Writer = io.Discard
		if i == 0 {
			out = os.Stdout
		}
		t.Fprint(out)
	}
}

func BenchmarkTable1Datasets(b *testing.B)      { benchExperiment(b, "T1") }
func BenchmarkFigure2Roofline(b *testing.B)     { benchExperiment(b, "F2") }
func BenchmarkFigure7SIFT(b *testing.B)         { benchExperiment(b, "F7") }
func BenchmarkFigure8DEEP(b *testing.B)         { benchExperiment(b, "F8") }
func BenchmarkFigure9Breakdown(b *testing.B)    { benchExperiment(b, "F9") }
func BenchmarkFigure10Energy(b *testing.B)      { benchExperiment(b, "F10") }
func BenchmarkFigure11aSQT(b *testing.B)        { benchExperiment(b, "F11a") }
func BenchmarkFigure11bModelGap(b *testing.B)   { benchExperiment(b, "F11b") }
func BenchmarkFigure12aAccuracy(b *testing.B)   { benchExperiment(b, "F12a") }
func BenchmarkFigure12bBuffer(b *testing.B)     { benchExperiment(b, "F12b") }
func BenchmarkFigure13LoadBalance(b *testing.B) { benchExperiment(b, "F13") }
func BenchmarkFigure14aSplit(b *testing.B)      { benchExperiment(b, "F14a") }
func BenchmarkFigure14bDup(b *testing.B)        { benchExperiment(b, "F14b") }
func BenchmarkFigure15Scalability(b *testing.B) { benchExperiment(b, "F15") }
func BenchmarkTable3MemANNS(b *testing.B)       { benchExperiment(b, "T3") }
