// Package graph is a beam-search graph-traversal ANN backend — the
// competing design to DRIM-ANN's IVF-PQ — served on the same simulated
// UPMEM DRAM-PIM hardware and cost model, so the two papers' access
// patterns are charged under one accounting scheme.
//
// # Index structure
//
// Build constructs a Vamana-style pruned proximity graph (greedy beam
// search for candidates, alpha-slack robust pruning to a bounded
// out-degree, symmetric backlinks re-pruned under the same bound), with
// every step deterministic: insertion order is ascending point ID, all
// orderings are the repository's canonical ascending (distance, id) total
// order, and the search entry point is the corpus medoid. Distances are
// exact integer L2 over the uint8 vectors — a graph index stores full
// vectors, not PQ codes, which is the memory-for-recall trade the
// graph-vs-IVF comparison is about.
//
// # DPU cost profile
//
// Query-time traversal is simulated per DPU with a random-access-heavy
// profile, the defining contrast to IVF-PQ's streaming scans: each query
// runs on one DPU, and every hop issues one unbuffered MRAM DMA for the
// node's adjacency list (charged to the RC phase) plus one unbuffered DMA
// per candidate vector fetched for a distance evaluation (charged to DC,
// full DMA setup latency each — there is no large contiguous slice to
// stream, so the per-transfer latency the paper's buffering optimizations
// amortize away is paid on every access). Distance arithmetic charges DC
// compute cycles (squaring through the multiplier-free SQT table by
// default, exactly the trick core uses); beam-pool maintenance charges TS.
// The host does no cluster locating — only the final merge/demux. Each DPU
// holds the full graph (vectors + adjacency) in MRAM, so corpus size is
// bounded by MRAM capacity; New reports an error when it does not fit.
//
// SimSeconds follows core's accounting exactly: per launch the PIM time is
// the slowest DPU's cycles, and a batch costs max(host, max(pim, xfer)).
package graph

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"drimann/internal/dataset"
	"drimann/internal/engine"
	"drimann/internal/topk"
	"drimann/internal/upmem"
	"drimann/internal/vecmath"
)

// Options configures a graph engine; zero values select defaults.
type Options struct {
	// K is the neighbors returned per query; default 10.
	K int
	// Degree bounds each node's out-neighbor list (Vamana's R); default 16.
	Degree int
	// BuildBeam is the candidate-pool width of build-time searches
	// (Vamana's L_build); default 48.
	BuildBeam int
	// SearchBeam is the query-time pool width (ef); clamped to at least K;
	// default 32. Larger values trade simulated time for recall — the knob
	// the head-to-head recall-vs-QPS curves sweep.
	SearchBeam int
	// Alpha is the robust-prune slack (>= 1); default 1.2.
	Alpha float64

	// NumDPUs sizes the simulated PIM system; default 64.
	NumDPUs int
	// Tasklets per DPU; default 16.
	Tasklets int
	// BatchSize is the scheduling batch (and MaxBatch); default 256.
	BatchSize int
	// Workers bounds goroutine parallelism of the simulation itself
	// (results are identical for any value); default GOMAXPROCS.
	Workers int

	// UseSQT charges squaring through the multiplier-free square-lookup
	// table (DefaultOptions sets it); off, every per-dimension square pays
	// the 32-cycle software multiply.
	UseSQT bool
	// SQTAccessCycles is the charged cost of one SQT lookup; default 8.
	SQTAccessCycles uint64

	// MRAMBytes overrides per-DPU MRAM capacity (default 64 MB).
	MRAMBytes int
	// Host models the CPU running the final merge.
	Host upmem.Platform
}

// DefaultOptions returns the default graph-backend configuration.
func DefaultOptions() Options {
	return Options{
		K:               10,
		Degree:          16,
		BuildBeam:       48,
		SearchBeam:      32,
		Alpha:           1.2,
		NumDPUs:         64,
		Tasklets:        16,
		BatchSize:       256,
		UseSQT:          true,
		SQTAccessCycles: 8,
		Host:            upmem.Platform{Name: "host", Threads: 32, FreqGHz: 2.1, VectorWidth: 8},
		Workers:         runtime.GOMAXPROCS(0),
	}
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 10
	}
	if o.Degree <= 0 {
		o.Degree = 16
	}
	if o.BuildBeam <= 0 {
		o.BuildBeam = 48
	}
	if o.SearchBeam <= 0 {
		o.SearchBeam = 32
	}
	if o.SearchBeam < o.K {
		o.SearchBeam = o.K
	}
	if o.Alpha < 1 {
		o.Alpha = 1.2
	}
	if o.NumDPUs <= 0 {
		o.NumDPUs = 64
	}
	if o.Tasklets <= 0 {
		o.Tasklets = 16
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.SQTAccessCycles == 0 {
		o.SQTAccessCycles = 8
	}
	if o.Host.Threads == 0 {
		o.Host = DefaultOptions().Host
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Engine is a graph-traversal backend instance: the pruned proximity graph
// over an owned copy of the corpus, plus one simulated PIM system.
type Engine struct {
	base   dataset.U8Set // owned copy of the corpus vectors
	nbrs   [][]int32     // adjacency: nbrs[i] sorted ascending, len <= Degree
	edges  int           // total directed edges (for memory accounting)
	medoid int32
	opts   Options
	sys    *upmem.System

	scratch []searchScratch // one per DPU
}

// searchScratch is one simulated DPU's private traversal state.
type searchScratch struct {
	pool     []topk.Item[uint32]
	expanded []bool
	visited  []uint32 // per-node visit stamps (epoch trick: no per-query clear)
	epoch    uint32
	evals    uint64 // distance evaluations since the last flush
	tally    upmem.Tally
}

// The graph engine implements the mandatory contract plus replication and
// memory reporting. It is deliberately NOT Mutable, ProbedSearcher or
// Snapshotter: the serving stack must degrade gracefully over a
// search-only backend.
var (
	_ engine.Engine         = (*Engine)(nil)
	_ engine.Replicable     = (*Engine)(nil)
	_ engine.MemoryReporter = (*Engine)(nil)
)

// New builds the proximity graph over base and sizes the simulated PIM
// system. The build is deterministic (no randomness, canonical orderings
// everywhere): the same corpus and options always yield the same graph,
// which is what makes replicas and restarts bit-identical.
func New(base dataset.U8Set, opts Options) (*Engine, error) {
	opts.defaults()
	if base.N == 0 {
		return nil, fmt.Errorf("graph: empty corpus")
	}
	if base.D == 0 {
		return nil, fmt.Errorf("graph: zero-dimensional vectors")
	}
	cfg := upmem.DefaultConfig(opts.NumDPUs)
	cfg.Tasklets = opts.Tasklets
	if opts.MRAMBytes > 0 {
		cfg.MRAMBytes = opts.MRAMBytes
	}
	sys, err := upmem.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		base: dataset.U8Set{N: base.N, D: base.D, Data: append([]uint8(nil), base.Data...)},
		opts: opts,
		sys:  sys,
	}
	e.medoid = medoid(e.base)
	e.build()
	for _, n := range e.nbrs {
		e.edges += len(n)
	}
	// Every DPU holds the full graph in MRAM: vectors plus the
	// degree-bounded adjacency in a packed (count + ids) layout.
	mramBytes := e.base.N*e.base.D + e.base.N*(1+opts.Degree)*4
	for _, d := range e.sys.DPUs {
		if err := d.AllocMRAM(mramBytes); err != nil {
			return nil, fmt.Errorf("graph: corpus does not fit per-DPU MRAM: %w", err)
		}
	}
	e.scratch = newScratches(opts, e.base.N)
	return e, nil
}

func newScratches(opts Options, n int) []searchScratch {
	scr := make([]searchScratch, opts.NumDPUs)
	for i := range scr {
		scr[i].visited = make([]uint32, n)
		scr[i].pool = make([]topk.Item[uint32], 0, opts.SearchBeam+1)
		scr[i].expanded = make([]bool, 0, opts.SearchBeam+1)
	}
	return scr
}

// medoid returns the point closest to the corpus mean (ties: lowest id) —
// the deterministic traversal entry point.
func medoid(base dataset.U8Set) int32 {
	d := base.D
	sums := make([]float64, d)
	for i := 0; i < base.N; i++ {
		v := base.Vec(i)
		for j := 0; j < d; j++ {
			sums[j] += float64(v[j])
		}
	}
	mean := make([]float32, d)
	for j := 0; j < d; j++ {
		mean[j] = float32(sums[j] / float64(base.N))
	}
	best, bestD := int32(0), math.MaxFloat64
	vf := make([]float32, d)
	for i := 0; i < base.N; i++ {
		vecmath.U8ToF32(vf, base.Vec(i))
		dist := float64(vecmath.L2SquaredF32(vf, mean))
		if dist < bestD {
			best, bestD = int32(i), dist
		}
	}
	return best
}

func (e *Engine) dist(q []uint8, id int32) uint32 {
	return vecmath.L2SquaredU8(q, e.base.Vec(int(id)))
}

// build inserts points in ascending ID order: a beam search over the
// partial graph collects candidates, robust pruning picks the out-list,
// and backlinks are re-pruned under the degree bound.
func (e *Engine) build() {
	n := e.base.N
	e.nbrs = make([][]int32, n)
	sc := &searchScratch{
		visited:  make([]uint32, n),
		pool:     make([]topk.Item[uint32], 0, e.opts.BuildBeam+1),
		expanded: make([]bool, 0, e.opts.BuildBeam+1),
	}
	var cands []topk.Item[uint32]
	for i := 0; i < n; i++ {
		if i == 0 {
			continue // first node: no graph yet, no edges to make
		}
		// Entry: the medoid once it exists in the partial graph, node 0
		// before that (both deterministic).
		entry := int32(0)
		if int(e.medoid) < i {
			entry = e.medoid
		}
		q := e.base.Vec(i)
		cands = e.beamCollect(sc, q, entry, e.opts.BuildBeam, cands[:0])
		// Drop self-matches (a duplicate vector is a distance-0 candidate,
		// the point itself never appears: it is not in the graph yet).
		pruned := e.robustPrune(int32(i), cands)
		e.nbrs[i] = append([]int32(nil), pruned...)
		for _, j := range pruned {
			e.addBacklink(j, int32(i))
		}
	}
	// Canonical adjacency order: ascending node ID per list. Traversal
	// visits every neighbor regardless of order; a fixed order makes the
	// structure (and every downstream result) reproducible byte-for-byte.
	for i := range e.nbrs {
		sort.Slice(e.nbrs[i], func(a, b int) bool { return e.nbrs[i][a] < e.nbrs[i][b] })
	}
}

// addBacklink adds `from` to j's out-list, re-pruning when the degree
// bound overflows.
func (e *Engine) addBacklink(j, from int32) {
	for _, x := range e.nbrs[j] {
		if x == from {
			return
		}
	}
	e.nbrs[j] = append(e.nbrs[j], from)
	if len(e.nbrs[j]) <= e.opts.Degree {
		return
	}
	qj := e.base.Vec(int(j))
	cands := make([]topk.Item[uint32], 0, len(e.nbrs[j]))
	for _, x := range e.nbrs[j] {
		cands = append(cands, topk.Item[uint32]{ID: x, Dist: e.dist(qj, x)})
	}
	topk.SortItems(cands)
	e.nbrs[j] = e.robustPrune(j, cands)
}

// robustPrune selects up to Degree neighbors for p from cands (sorted
// ascending by (dist, id)): greedily keep the nearest candidate, then
// discard any candidate alpha-dominated by a kept one (alpha * d(kept, c)
// <= d(p, c)), Vamana's diversity rule that keeps a few long-range edges.
func (e *Engine) robustPrune(p int32, cands []topk.Item[uint32]) []int32 {
	out := make([]int32, 0, e.opts.Degree)
	alive := make([]bool, len(cands))
	for i, c := range cands {
		alive[i] = c.ID != p
	}
	for len(out) < e.opts.Degree {
		pick := -1
		for i := range cands {
			if alive[i] {
				pick = i
				break
			}
		}
		if pick < 0 {
			break
		}
		kept := cands[pick]
		out = append(out, kept.ID)
		alive[pick] = false
		vk := e.base.Vec(int(kept.ID))
		for i := pick + 1; i < len(cands); i++ {
			if !alive[i] {
				continue
			}
			if e.opts.Alpha*float64(vecmath.L2SquaredU8(vk, e.base.Vec(int(cands[i].ID)))) <= float64(cands[i].Dist) {
				alive[i] = false
			}
		}
	}
	return out
}

// beamCollect runs a build-time beam search from entry and returns every
// evaluated candidate sorted ascending — the Vamana visited set, truncated
// to 2*beam (build cost bound; the nearest candidates are what pruning
// uses).
func (e *Engine) beamCollect(sc *searchScratch, q []uint8, entry int32, beam int, cands []topk.Item[uint32]) []topk.Item[uint32] {
	cands = cands[:0]
	e.beamSearch(sc, q, entry, beam, func(it topk.Item[uint32]) {
		cands = append(cands, it)
	})
	topk.SortItems(cands)
	if len(cands) > 2*beam {
		cands = cands[:2*beam]
	}
	return cands
}

// beamStats counts the simulated work of one traversal.
type beamStats struct {
	hops  int // nodes expanded (adjacency-list fetches)
	evals int // distance evaluations (vector fetches)
}

// beamSearch is the greedy best-first traversal: keep a pool of the `beam`
// nearest visited nodes, repeatedly expand the nearest unexpanded one,
// stop when the pool is fully expanded. onEval (optional) observes every
// distance evaluation. The final pool is sorted ascending (dist, id).
func (e *Engine) beamSearch(sc *searchScratch, q []uint8, entry int32, beam int, onEval func(topk.Item[uint32])) beamStats {
	var st beamStats
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps are stale, clear once
		clear(sc.visited)
		sc.epoch = 1
	}
	sc.pool = sc.pool[:0]
	sc.expanded = sc.expanded[:0]

	insert := func(it topk.Item[uint32]) {
		// Binary search under the canonical (dist, id) order.
		lo, hi := 0, len(sc.pool)
		for lo < hi {
			mid := (lo + hi) / 2
			if topk.Less(sc.pool[mid], it) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= beam {
			return
		}
		sc.pool = append(sc.pool, topk.Item[uint32]{})
		sc.expanded = append(sc.expanded, false)
		copy(sc.pool[lo+1:], sc.pool[lo:])
		copy(sc.expanded[lo+1:], sc.expanded[lo:])
		sc.pool[lo] = it
		sc.expanded[lo] = false
		if len(sc.pool) > beam {
			sc.pool = sc.pool[:beam]
			sc.expanded = sc.expanded[:beam]
		}
	}

	eval := func(id int32) {
		sc.visited[id] = sc.epoch
		it := topk.Item[uint32]{ID: id, Dist: e.dist(q, id)}
		st.evals++
		if onEval != nil {
			onEval(it)
		}
		insert(it)
	}
	eval(entry)
	for {
		next := -1
		for i := range sc.pool {
			if !sc.expanded[i] {
				next = i
				break
			}
		}
		if next < 0 {
			break
		}
		sc.expanded[next] = true
		node := sc.pool[next].ID
		st.hops++
		for _, nb := range e.nbrs[node] {
			if sc.visited[nb] == sc.epoch {
				continue
			}
			eval(nb)
		}
	}
	return st
}

// K returns the neighbors per query (engine.Engine).
func (e *Engine) K() int { return e.opts.K }

// Dim returns the vector dimensionality (engine.Engine).
func (e *Engine) Dim() int { return e.base.D }

// MaxBatch returns the scheduling batch size (engine.Engine).
func (e *Engine) MaxBatch() int { return e.opts.BatchSize }

// Len returns the corpus size.
func (e *Engine) Len() int { return e.base.N }

// Medoid returns the traversal entry point.
func (e *Engine) Medoid() int32 { return e.medoid }

// Neighbors returns node i's out-list (a view; ascending node ID).
func (e *Engine) Neighbors(i int32) []int32 { return e.nbrs[i] }

// Options reports the engine's resolved configuration.
func (e *Engine) Options() Options { return e.opts }

// System exposes the simulated PIM system (inspection and tests).
func (e *Engine) System() *upmem.System { return e.sys }

// NewReplica builds an engine serving the same graph bit-identically:
// shared read-only corpus and adjacency, private simulated system and
// scratch (engine.Replicable).
func (e *Engine) NewReplica() (engine.Engine, error) {
	return e.withOptions(e.opts)
}

// WithSearchOptions builds an engine over the same built graph with
// query-time options modified by mod: SearchBeam, K, BatchSize, NumDPUs,
// Workers and the cost knobs may change; the build-time shape (Degree,
// BuildBeam, Alpha) is pinned to the existing graph. This is what lets a
// recall-vs-QPS sweep reuse one expensive build across beam widths.
func (e *Engine) WithSearchOptions(mod func(*Options)) (*Engine, error) {
	opts := e.opts
	mod(&opts)
	opts.defaults()
	opts.Degree, opts.BuildBeam, opts.Alpha = e.opts.Degree, e.opts.BuildBeam, e.opts.Alpha
	return e.withOptions(opts)
}

// withOptions clones the engine around the shared graph under opts: fresh
// simulated system (re-running the MRAM fit check) and fresh scratch.
func (e *Engine) withOptions(opts Options) (*Engine, error) {
	cfg := upmem.DefaultConfig(opts.NumDPUs)
	cfg.Tasklets = opts.Tasklets
	if opts.MRAMBytes > 0 {
		cfg.MRAMBytes = opts.MRAMBytes
	}
	sys, err := upmem.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	r := &Engine{
		base:   e.base,
		nbrs:   e.nbrs,
		edges:  e.edges,
		medoid: e.medoid,
		opts:   opts,
		sys:    sys,
	}
	mramBytes := e.base.N*e.base.D + e.base.N*(1+e.opts.Degree)*4
	for _, d := range sys.DPUs {
		if err := d.AllocMRAM(mramBytes); err != nil {
			return nil, err
		}
	}
	r.scratch = newScratches(opts, e.base.N)
	return r, nil
}

// MemoryFootprint reports the host-side shared/per-replica byte split
// (engine.MemoryReporter): the corpus and adjacency are shared read-only;
// each replica owns per-DPU visit stamps and beam pools.
func (e *Engine) MemoryFootprint() engine.MemoryFootprint {
	shared := int64(len(e.base.Data)) + int64(e.edges)*4
	per := int64(e.opts.NumDPUs) * (int64(e.base.N)*4 + int64(e.opts.SearchBeam)*17)
	return engine.MemoryFootprint{SharedBytes: shared, PerReplicaBytes: per}
}
