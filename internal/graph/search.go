// Query-time simulation: batches of queries round-robin across DPUs, each
// query traversing the full graph held in its DPU's MRAM. The charging is
// intentionally random-access-heavy — every adjacency fetch and every
// candidate vector fetch is its own fixed-size DMA with full setup latency
// (there is nothing contiguous to stream) — and the launch accounting
// mirrors internal/core byte-for-byte: per-launch max-DPU cycles for PIM
// time, TransferSeconds for the bus, SimSeconds += max(host, max(pim,
// xfer)) per batch.

package graph

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"drimann/internal/dataset"
	"drimann/internal/engine"
	"drimann/internal/topk"
	"drimann/internal/upmem"
)

// SearchBatch searches every query and returns neighbors plus metrics
// (engine.Engine). Results are deterministic: the traversal itself is
// sequential per query, and queries are statically assigned to DPUs.
func (e *Engine) SearchBatch(queries dataset.U8Set) (*engine.Result, error) {
	if queries.N > 0 && queries.D != e.base.D {
		return nil, fmt.Errorf("graph: query dim %d != index dim %d", queries.D, e.base.D)
	}
	res := &engine.Result{
		IDs:   make([][]int32, queries.N),
		Items: make([][]topk.Item[uint32], queries.N),
	}
	m := &res.Metrics
	m.Queries = queries.N
	for lo := 0; lo < queries.N; lo += e.opts.BatchSize {
		hi := lo + e.opts.BatchSize
		if hi > queries.N {
			hi = queries.N
		}
		e.runLaunch(queries, lo, hi, res, m)
	}
	if m.SimSeconds > 0 {
		m.QPS = float64(queries.N) / m.SimSeconds
	}
	return res, nil
}

// runLaunch simulates one synchronous launch over queries[lo:hi): query qi
// runs on DPU (qi-lo) mod NumDPUs. DPUs simulate in parallel (bounded by
// Workers) over private scratch; tallies flush to the system sequentially,
// so metrics do not depend on goroutine interleaving.
func (e *Engine) runLaunch(queries dataset.U8Set, lo, hi int, res *engine.Result, m *engine.Metrics) {
	e.sys.ResetCounters()
	e.sys.Launch()
	nq := hi - lo
	// Host -> DPU: each query vector ships to exactly one DPU.
	e.sys.TransferToDPUs(uint64(nq * queries.D))

	nd := e.opts.NumDPUs
	workers := e.opts.Workers
	if workers > nd {
		workers = nd
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for d := w; d < nd; d += workers {
				e.runDPU(queries, lo, hi, d, res)
			}
		}(w)
	}
	wg.Wait()

	// Flush per-DPU tallies and gather result sizes in DPU order.
	mergeItems := 0
	var fromDev uint64
	var evals uint64
	for d := 0; d < nd; d++ {
		sc := &e.scratch[d]
		e.sys.DPUs[d].ApplyTally(&sc.tally)
		evals += sc.evals
		sc.evals = 0
		sc.tally.Reset()
		for qi := lo + d; qi < hi; qi += nd {
			k := len(res.Items[qi])
			mergeItems += k
			fromDev += uint64(k * 8) // (id, dist) per neighbor
		}
	}
	e.sys.TransferFromDPUs(fromDev)
	m.PointsScanned += evals

	pimSec := e.sys.Cfg.Seconds(e.sys.MaxDPUCycles())
	xferSec := e.sys.TransferSeconds()
	for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
		m.PhaseSeconds[p] += e.sys.Cfg.Seconds(e.sys.PhaseCyclesMax(p))
	}
	for _, d := range e.sys.DPUs {
		for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
			st := d.Stats(p)
			m.PhaseComputeCycles[p] += st.ComputeCycles
			m.PhaseDMACount[p] += st.DMACount
			m.PhaseDMABytes[p] += st.DMABytes
		}
	}
	m.Launches++
	m.XferSeconds += xferSec
	m.PIMSeconds += pimSec
	m.ImbalanceSum += e.sys.Imbalance()

	hostSec := e.hostMergeSeconds(mergeItems)
	m.HostSeconds += hostSec
	m.SimSeconds += math.Max(hostSec, math.Max(pimSec, xferSec))
	m.Batches++
}

// runDPU traverses the graph for every query assigned to DPU d, charging
// the DPU's tally and writing final per-query results.
func (e *Engine) runDPU(queries dataset.U8Set, lo, hi, d int, res *engine.Result) {
	sc := &e.scratch[d]
	cost := &e.sys.Cfg.Cost
	beam := e.opts.SearchBeam
	// Per-dimension distance cost: subtract, square (SQT lookup or software
	// multiply), accumulate.
	perDim := uint64(2) + e.opts.SQTAccessCycles
	if !e.opts.UseSQT {
		perDim = 2 + cost.MulCycles
	}
	logBeam := uint64(log2ceil(beam))
	for qi := lo + d; qi < hi; qi += e.opts.NumDPUs {
		st := e.beamSearch(sc, queries.Vec(qi), e.medoid, beam, nil)
		sc.evals += uint64(st.evals)

		// RC: one unbuffered DMA per hop for the node's fixed-size
		// adjacency record (count + Degree slots), plus the visited-stamp
		// check per scanned neighbor.
		adjBytes := uint64((1 + e.opts.Degree) * 4)
		for h := 0; h < st.hops; h++ {
			sc.tally.DMA(upmem.PhaseRC, adjBytes)
		}
		scanned := uint64(st.hops * e.opts.Degree)
		sc.tally.Charge(cost, upmem.PhaseRC, upmem.OpLoad, scanned)
		sc.tally.Charge(cost, upmem.PhaseRC, upmem.OpCmp, scanned)

		// DC: one unbuffered DMA per evaluated candidate for its full
		// vector — the traversal's dominant cost — plus the arithmetic.
		for ev := 0; ev < st.evals; ev++ {
			sc.tally.DMA(upmem.PhaseDC, uint64(e.base.D))
		}
		sc.tally.ChargeCycles(upmem.PhaseDC, uint64(st.evals)*uint64(e.base.D)*perDim)

		// TS: sorted-pool insertion per evaluated candidate (binary probe
		// of the beam plus the shift/store).
		sc.tally.ChargeCycles(upmem.PhaseTS, uint64(st.evals)*(logBeam+2))

		k := e.opts.K
		if k > len(sc.pool) {
			k = len(sc.pool)
		}
		items := append([]topk.Item[uint32](nil), sc.pool[:k]...)
		ids := make([]int32, k)
		for j, it := range items {
			ids[j] = it.ID
		}
		res.IDs[qi] = ids
		res.Items[qi] = items
	}
}

// hostMergeSeconds models the host-side demux/merge of returned top-k
// lists — the same formula core charges for its merge stage.
func (e *Engine) hostMergeSeconds(items int) float64 {
	h := e.opts.Host
	ops := float64(items) * float64(log2ceil(e.opts.K)+1)
	return ops / (float64(h.Threads) * h.FreqGHz * 1e9)
}

func log2ceil(x int) int {
	if x <= 1 {
		return 1
	}
	return bits.Len(uint(x - 1))
}
