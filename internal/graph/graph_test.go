package graph

import (
	"reflect"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/testutil"
	"drimann/internal/upmem"
)

func testSpec(n, queries int) testutil.FixtureSpec {
	return testutil.FixtureSpec{
		Name: "graph", N: n, D: 24, Queries: queries,
		NumClusters: 24, Seed: 13, Noise: 10,
	}
}

func testOptions() Options {
	o := DefaultOptions()
	o.NumDPUs = 16
	o.K = 10
	o.BatchSize = 32
	return o
}

var shared *Engine
var sharedSynth *dataset.Synth

func getEngine(t *testing.T) (*Engine, *dataset.Synth) {
	t.Helper()
	if shared == nil {
		sharedSynth = testutil.Synth(testSpec(4000, 64))
		e, err := New(sharedSynth.Base, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		shared = e
	}
	return shared, sharedSynth
}

func TestGraphStructure(t *testing.T) {
	e, s := getEngine(t)
	if e.Len() != s.Base.N || e.Dim() != s.Base.D {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", e.Len(), e.Dim(), s.Base.N, s.Base.D)
	}
	deg := e.Options().Degree
	for i := 0; i < e.Len(); i++ {
		nb := e.Neighbors(int32(i))
		if len(nb) > deg {
			t.Fatalf("node %d degree %d > bound %d", i, len(nb), deg)
		}
		if i > 0 && len(nb) == 0 {
			t.Fatalf("node %d has no neighbors", i)
		}
		for j, x := range nb {
			if x == int32(i) {
				t.Fatalf("node %d links to itself", i)
			}
			if j > 0 && nb[j-1] >= x {
				t.Fatalf("node %d adjacency not strictly ascending", i)
			}
		}
	}
	if m := e.Medoid(); m < 0 || int(m) >= e.Len() {
		t.Fatalf("medoid %d out of range", m)
	}
}

func TestBuildDeterminism(t *testing.T) {
	_, s := getEngine(t)
	a, err := New(s.Base, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(s.Base, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Medoid() != b.Medoid() {
		t.Fatalf("medoids differ: %d vs %d", a.Medoid(), b.Medoid())
	}
	if !reflect.DeepEqual(a.nbrs, b.nbrs) {
		t.Fatal("two builds over the same corpus produced different graphs")
	}
}

func TestSearchRecallAndMetrics(t *testing.T) {
	e, s := getEngine(t)
	res, err := e.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	gt := dataset.GroundTruth(s.Base, s.Queries, 10, 0)
	if r := dataset.Recall(gt, res.IDs, 10); r < 0.80 {
		t.Fatalf("graph recall@10 = %.3f, want >= 0.80", r)
	}
	m := res.Metrics
	if m.Queries != s.Queries.N {
		t.Fatalf("Queries = %d, want %d", m.Queries, s.Queries.N)
	}
	wantBatches := (s.Queries.N + e.MaxBatch() - 1) / e.MaxBatch()
	if m.Batches != wantBatches || m.Launches != wantBatches {
		t.Fatalf("Batches/Launches = %d/%d, want %d", m.Batches, m.Launches, wantBatches)
	}
	if m.SimSeconds <= 0 || m.PIMSeconds <= 0 || m.XferSeconds <= 0 || m.QPS <= 0 {
		t.Fatalf("degenerate timing: %+v", m)
	}
	if m.PointsScanned == 0 {
		t.Fatal("no distance evaluations recorded")
	}
	// The profile must be random-access-heavy: adjacency fetches in RC,
	// vector fetches in DC, one DMA each.
	if m.PhaseDMACount[upmem.PhaseRC] == 0 || m.PhaseDMACount[upmem.PhaseDC] == 0 {
		t.Fatalf("expected RC and DC DMA traffic, got %v", m.PhaseDMACount)
	}
	if m.PhaseDMACount[upmem.PhaseDC] != m.PointsScanned {
		t.Fatalf("DC DMAs %d != distance evals %d (want one unbuffered fetch per eval)",
			m.PhaseDMACount[upmem.PhaseDC], m.PointsScanned)
	}
	for qi := range res.IDs {
		if len(res.IDs[qi]) != e.K() {
			t.Fatalf("query %d: %d results, want %d", qi, len(res.IDs[qi]), e.K())
		}
		for j := 1; j < len(res.Items[qi]); j++ {
			a, b := res.Items[qi][j-1], res.Items[qi][j]
			if a.Dist > b.Dist || (a.Dist == b.Dist && a.ID >= b.ID) {
				t.Fatalf("query %d: results not in (dist, id) order", qi)
			}
		}
	}
}

func TestSearchDeterminismAndReplica(t *testing.T) {
	e, s := getEngine(t)
	r1, err := e.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("two runs over the same engine differ")
	}
	rep, err := e.NewReplica()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := rep.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatal("replica results differ from source engine")
	}
}

func TestEmptyAndInvalidBatches(t *testing.T) {
	e, _ := getEngine(t)
	res, err := e.SearchBatch(dataset.U8Set{D: e.Dim()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 0 || res.Metrics.Queries != 0 || res.Metrics.SimSeconds != 0 {
		t.Fatalf("empty batch not empty: %+v", res.Metrics)
	}
	bad := dataset.U8Set{N: 1, D: e.Dim() + 1, Data: make([]uint8, e.Dim()+1)}
	if _, err := e.SearchBatch(bad); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
}

func TestSmallCorpus(t *testing.T) {
	// Fewer points than K: every point must come back.
	base := dataset.U8Set{N: 5, D: 4, Data: []uint8{
		0, 0, 0, 0, 10, 0, 0, 0, 0, 10, 0, 0, 200, 200, 200, 200, 5, 5, 0, 0,
	}}
	e, err := New(base, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.U8Set{N: 1, D: 4, Data: []uint8{1, 0, 0, 0}}
	res, err := e.SearchBatch(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs[0]) != base.N {
		t.Fatalf("got %d results, want the whole corpus (%d)", len(res.IDs[0]), base.N)
	}
	if res.IDs[0][0] != 0 {
		t.Fatalf("nearest = %d, want 0", res.IDs[0][0])
	}
}

func TestMRAMOverflowRejected(t *testing.T) {
	_, s := getEngine(t)
	o := testOptions()
	o.MRAMBytes = 16 * 1024 // far below corpus size
	if _, err := New(s.Base, o); err == nil {
		t.Fatal("oversized corpus not rejected by MRAM accounting")
	}
}

func TestMemoryFootprintSharing(t *testing.T) {
	e, _ := getEngine(t)
	mf := e.MemoryFootprint()
	if mf.SharedBytes <= 0 || mf.PerReplicaBytes <= 0 {
		t.Fatalf("degenerate footprint: %+v", mf)
	}
	if mf.SharedBytes < int64(e.Len()*e.Dim()) {
		t.Fatalf("shared bytes %d below corpus size", mf.SharedBytes)
	}
}
