package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drimann/internal/serve"
)

// TestServeMaxBatchClamp is the regression test for the Options.defaults
// bug where a user MaxBatch larger than the engine's scheduling batch size
// was accepted verbatim: the engine would silently split such launches into
// several scheduling batches internally, so the launch-duration EWMA and
// the BatchSize stats would describe a unit the batcher never actually
// launched. The resolved MaxBatch must clamp to Engine.MaxBatch().
func TestServeMaxBatchClamp(t *testing.T) {
	eng, _ := testEngine(t, 2000, 8)
	srv, err := serve.New(eng, serve.Options{MaxBatch: 5 * eng.MaxBatch()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.Options().MaxBatch; got != eng.MaxBatch() {
		t.Fatalf("resolved MaxBatch = %d, want engine batch size %d", got, eng.MaxBatch())
	}
	// QueueLimit defaults off the clamped value.
	if got := srv.Options().QueueLimit; got != 4*eng.MaxBatch() {
		t.Fatalf("resolved QueueLimit = %d, want %d", got, 4*eng.MaxBatch())
	}
	// A legal explicit value still wins.
	srv2, err := serve.New(eng, serve.Options{MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.Options().MaxBatch; got != 3 {
		t.Fatalf("resolved MaxBatch = %d, want 3", got)
	}
}

// TestServeResponseDoesNotAliasEngine pins the demux-boundary copy: a
// Response handed to one caller must stay valid and immutable-by-others for
// as long as the caller holds it, even after the engine has served many
// further launches, and mutating a held Response must not leak into
// responses other callers receive later.
func TestServeResponseDoesNotAliasEngine(t *testing.T) {
	eng, s := testEngine(t, 4000, 32)
	srv, err := serve.New(eng, serve.Options{MaxBatch: 8, MaxWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := srv.Search(context.Background(), s.Queries.Vec(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	snapIDs := append([]int32(nil), first.IDs...)
	snapItems := append(first.Items[:0:0], first.Items...)

	// Drive plenty of subsequent launches over other queries.
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for qi := 1; qi < s.Queries.N; qi++ {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				if _, err := srv.Search(context.Background(), s.Queries.Vec(qi), 0); err != nil {
					t.Errorf("query %d: %v", qi, err)
				}
			}(qi)
		}
		wg.Wait()
	}
	if t.Failed() {
		t.FailNow()
	}
	if !reflect.DeepEqual(first.IDs, snapIDs) || !reflect.DeepEqual(first.Items, snapItems) {
		t.Fatal("held response mutated by subsequent launches")
	}

	// The reverse direction: scribbling over a held response must not
	// corrupt what a later identical query observes.
	first.IDs[0] = -999
	first.Items[0].ID = -999
	again, err := srv.Search(context.Background(), s.Queries.Vec(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.IDs[0] == -999 || again.Items[0].ID == -999 {
		t.Fatal("response storage shared between callers")
	}
}

// TestServeMixedKLedger is the ledger-balance property under mixed-k
// traffic: concurrent Search calls with random k < K must each get a
// consistently truncated IDs/Items pair (equal lengths, pairwise-matching
// IDs, a prefix of the full-k answer), and once the server has drained,
// Enqueued == Completed + Canceled + Failed.
func TestServeMixedKLedger(t *testing.T) {
	eng, s := testEngine(t, 5000, 64)
	full, err := eng.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(eng, serve.Options{MaxBatch: 16, MaxWait: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 30
	var outcomes atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*104729 + 1))
			for i := 0; i < perG; i++ {
				qi := rng.Intn(s.Queries.N)
				k := 1 + rng.Intn(eng.K())
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(5) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				resp, err := srv.Search(ctx, s.Queries.Vec(qi), k)
				if cancel != nil {
					cancel()
				}
				outcomes.Add(1)
				if err != nil {
					if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				want := full.IDs[qi]
				if len(want) > k {
					want = want[:k]
				}
				if len(resp.IDs) != len(want) || len(resp.Items) != len(resp.IDs) {
					t.Errorf("q=%d k=%d: got %d ids / %d items, want %d",
						qi, k, len(resp.IDs), len(resp.Items), len(want))
					continue
				}
				for j := range resp.IDs {
					if resp.IDs[j] != want[j] {
						t.Errorf("q=%d k=%d: id[%d]=%d, want %d", qi, k, j, resp.IDs[j], want[j])
						break
					}
					if resp.Items[j].ID != resp.IDs[j] {
						t.Errorf("q=%d k=%d: items[%d].ID %d != ids[%d] %d",
							qi, k, j, resp.Items[j].ID, j, resp.IDs[j])
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if outcomes.Load() != goroutines*perG {
		t.Fatalf("resolved %d of %d calls", outcomes.Load(), goroutines*perG)
	}
	st := srv.Stats()
	if st.Enqueued != st.Completed+st.Canceled+st.Failed {
		t.Fatalf("ledger unbalanced after drain: Enqueued %d != Completed %d + Canceled %d + Failed %d",
			st.Enqueued, st.Completed, st.Canceled, st.Failed)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
}
