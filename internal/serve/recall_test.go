package serve_test

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/serve"
)

// goldenRecall pins recall@10 through the server path for each dataset
// shape, at fixed seeds and configs. Every stage is deterministic (index
// training, cluster locating, the integer kernels, the (distance, id)
// total order), so the values are exact — a scheduler or batcher change
// that reorders, drops or duplicates results moves recall by at least
// 1/(queries*k) = 1e-3, five orders of magnitude above the tolerance.
var goldenRecall = map[string]struct {
	synth  func(n, q int, seed int64) *dataset.Synth
	m      int
	recall float64
}{
	"SIFT":   {dataset.SIFT, 16, 0.674},
	"DEEP":   {dataset.DEEP, 16, 0.694},
	"SPACEV": {dataset.SPACEV, 20, 0.759},
	"T2I":    {dataset.T2I, 20, 0.659},
}

// TestServeGoldenRecall runs each fixture's queries through a concurrent
// server and checks recall@10 against the pinned value.
func TestServeGoldenRecall(t *testing.T) {
	const (
		n       = 10000
		queries = 100
		k       = 10
	)
	for name, g := range goldenRecall {
		t.Run(name, func(t *testing.T) {
			s := g.synth(n, queries, 42)
			ix, err := ivf.Build(s.Base, ivf.BuildConfig{
				NList:       128,
				PQ:          pq.Config{M: g.m, CB: 256},
				KMeansIters: 6,
				TrainSample: 4000,
				Seed:        42,
			})
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.NumDPUs = 32
			opts.NProbe = 16
			opts.K = k
			eng, err := core.New(ix, s.Queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := serve.New(eng, serve.Options{
				MaxBatch: 32,
				MaxWait:  500 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			got := make([][]int32, queries)
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for qi := c; qi < queries; qi += 4 {
						resp, err := srv.Search(context.Background(), s.Queries.Vec(qi), k)
						if err != nil {
							t.Errorf("query %d: %v", qi, err)
							return
						}
						got[qi] = resp.IDs
					}
				}(c)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}

			gt := dataset.GroundTruth(s.Base, s.Queries, k, 0)
			r := dataset.Recall(gt, got, k)
			if g.recall < 0 {
				t.Fatalf("golden value not pinned yet: measured recall@10 = %.6f", r)
			}
			if math.Abs(r-g.recall) > 1e-8 {
				t.Fatalf("recall@10 = %.6f, pinned %.6f — the serving path changed result content",
					r, g.recall)
			}
		})
	}
}
