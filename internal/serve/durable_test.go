package serve_test

import (
	"context"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/durable"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/serve"
)

// durableEngine is testEngine plus the deployment inputs Recover needs
// to reproduce the engine bit-identically.
func durableEngine(t testing.TB, n, queries int) (*core.Engine, *dataset.Synth, core.Options) {
	t.Helper()
	s := dataset.Generate(dataset.SynthConfig{
		Name: "serve-durable", N: n, D: 64, NumQueries: queries,
		NumClusters: 48, Seed: 13, Noise: 9,
	})
	base := dataset.U8Set{N: n - 256, D: s.Base.D, Data: s.Base.Data[:(n-256)*s.Base.D]}
	ix, err := ivf.Build(base, ivf.BuildConfig{
		NList:       64,
		PQ:          pq.Config{M: 16, CB: 256},
		KMeansIters: 6,
		TrainSample: 3000,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.NumDPUs = 16
	opts.NProbe = 8
	opts.K = 10
	eng, err := core.New(ix, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s, opts
}

// TestServeDurableRecoverUnderTraffic is the recover-under-traffic
// stress (CI repeats it with -race): a durable server absorbs
// concurrent searches and mutations, closes cleanly, and a recovered
// engine over the same store serves bit-identical results; the
// recovered store then accepts further durable mutations.
func TestServeDurableRecoverUnderTraffic(t *testing.T) {
	eng, s, opts := durableEngine(t, 4000, 64)
	dir := t.TempDir()
	st, err := eng.CreateStore(durable.Options{Dir: dir, Policy: durable.SyncEveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(eng, serve.Options{
		MaxBatch:   8,
		MaxWait:    100 * time.Microsecond,
		Durability: st,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.Search(context.Background(), s.Queries.Vec(rng.Intn(s.Queries.N)), 0); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(g)
	}

	// Mutations under traffic: insert the reserved corpus tail in small
	// batches, delete a few base points and one fresh insert, compact
	// once mid-stream (checkpoint + WAL rotation under load).
	base := s.Base.N - 256
	for lo := base; lo < base+120; lo += 8 {
		ids := make([]int32, 8)
		for i := range ids {
			ids[i] = int32(lo + i)
		}
		vecs := dataset.U8Set{N: 8, D: s.Base.D, Data: s.Base.Data[lo*s.Base.D : (lo+8)*s.Base.D]}
		if err := srv.Insert(vecs, ids); err != nil {
			t.Fatal(err)
		}
		if lo == base+56 {
			if err := srv.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := srv.Delete([]int32{3, 99, int32(base + 5)}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Reference answers from the live (never-crashed) engine, then kill.
	want := make([]serve.Response, s.Queries.N)
	for qi := range want {
		if want[qi], err = srv.Search(context.Background(), s.Queries.Vec(qi), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, rst, err := core.Recover(durable.Options{Dir: dir, Policy: durable.SyncEveryBatch}, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := serve.New(recovered, serve.Options{MaxBatch: 8, Durability: rst})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	for qi := range want {
		got, err := rsrv.Search(context.Background(), s.Queries.Vec(qi), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got.IDs, want[qi].IDs) || !slices.Equal(got.Items, want[qi].Items) {
			t.Fatalf("query %d diverges after recovery:\n got %v\nwant %v", qi, got.IDs, want[qi].IDs)
		}
	}
	// The recovered store keeps accepting acknowledged mutations.
	tail := base + 200
	one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(tail)}
	if err := rsrv.Insert(one, []int32{int32(tail)}); err != nil {
		t.Fatal(err)
	}
	if err := rsrv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDurablePartialBatchLogsPrefix pins the applied-prefix
// contract: an insert batch that fails mid-way (duplicate id) logs
// exactly the applied prefix, so a recovered engine matches the live
// engine's post-error state.
func TestServeDurablePartialBatchLogsPrefix(t *testing.T) {
	eng, s, opts := durableEngine(t, 4000, 16)
	fs := durable.NewMemFS(durable.FaultPlan{})
	st, err := eng.CreateStore(durable.Options{Dir: "srv", Policy: durable.SyncEveryRecord, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(eng, serve.Options{Durability: st})
	if err != nil {
		t.Fatal(err)
	}
	base := s.Base.N - 256
	// ids[2] duplicates a base id: points 0 and 1 apply, the batch errors.
	ids := []int32{int32(base), int32(base + 1), 7, int32(base + 3)}
	vecs := dataset.U8Set{N: 4, D: s.Base.D, Data: s.Base.Data[base*s.Base.D : (base+4)*s.Base.D]}
	if err := srv.Insert(vecs, ids); err == nil {
		t.Fatal("duplicate id must fail the batch")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _, err := core.Recover(durable.Options{Dir: "srv", FS: fs}, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int32{int32(base), int32(base + 1)} {
		if _, ok := recovered.Index().WhereIs(id); !ok {
			t.Fatalf("applied-prefix id %d lost after recovery", id)
		}
	}
	if _, ok := recovered.Index().WhereIs(int32(base + 3)); ok {
		t.Fatal("unapplied suffix id resurrected after recovery")
	}
	want, err := eng.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recovered.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range want.IDs {
		if !slices.Equal(got.IDs[qi], want.IDs[qi]) {
			t.Fatalf("query %d diverges from live post-error engine", qi)
		}
	}
}
