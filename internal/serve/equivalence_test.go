package serve_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/serve"
	"drimann/internal/testutil"
)

// testEngine builds a small shared fixture: a clustered synthetic corpus,
// an IVF-PQ index and an engine. The engine is deterministic, so the same
// instance can serve a direct SearchBatch reference and then (serially)
// one server after another.
func testEngine(t testing.TB, n, queries int) (*core.Engine, *dataset.Synth) {
	t.Helper()
	ix, s := testutil.Fixture(t, testutil.FixtureSpec{
		Name: "serve", N: n, D: 64, Queries: queries,
		NumClusters: 48, Seed: 11, Noise: 9,
		NList: 64, M: 16, CB: 256, KMeansIters: 6, TrainSample: 3000,
		BuildSeed: 11,
	})
	opts := core.DefaultOptions()
	opts.NumDPUs = 16
	opts.NProbe = 8
	opts.K = 10
	eng, err := core.New(ix, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

// submitAll drives every query through the server according to pattern and
// returns per-query responses indexed like the query set. Any Search error
// fails the test.
func submitAll(t *testing.T, srv *serve.Server, qs dataset.U8Set, pattern string, chunk int) []serve.Response {
	t.Helper()
	out := make([]serve.Response, qs.N)
	search := func(qi int) {
		resp, err := srv.Search(context.Background(), qs.Vec(qi), 0)
		if err != nil {
			t.Errorf("query %d: %v", qi, err)
			return
		}
		out[qi] = resp
	}
	switch pattern {
	case "burst":
		// Every query in flight at once from its own goroutine.
		var wg sync.WaitGroup
		for qi := 0; qi < qs.N; qi++ {
			wg.Add(1)
			go func(qi int) { defer wg.Done(); search(qi) }(qi)
		}
		wg.Wait()
	case "trickle":
		// Strictly sequential closed loop: at most one query queued, so the
		// batcher sees a stream of singletons.
		for qi := 0; qi < qs.N; qi++ {
			search(qi)
		}
	case "boundary":
		// Adversarial chunks straddling the batch boundary (chunk-1, chunk,
		// chunk+1, ...) with a gap between chunks so each chunk tends to
		// form its own launch.
		var wg sync.WaitGroup
		qi := 0
		for step := 0; qi < qs.N; step++ {
			size := chunk - 1 + step%3
			if size < 1 {
				size = 1
			}
			for j := 0; j < size && qi < qs.N; j++ {
				wg.Add(1)
				go func(qi int) { defer wg.Done(); search(qi) }(qi)
				qi++
			}
			time.Sleep(300 * time.Microsecond)
		}
		wg.Wait()
	default:
		t.Fatalf("unknown pattern %q", pattern)
	}
	return out
}

// TestServeEquivalence is the property test that makes the serving layer
// shippable: for every tested batcher config and arrival pattern, each
// query's IDs and Items through the server are bit-identical to one direct
// SearchBatch over the full query set. This holds because the engine's
// per-query result is the top-k of the query's candidate multiset under
// the deterministic (distance, id) total order, which is independent of
// how queries are grouped into launches.
func TestServeEquivalence(t *testing.T) {
	eng, s := testEngine(t, 6000, 96)
	ref, err := eng.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}

	for _, maxBatch := range []int{1, 7, 64} {
		for _, maxWait := range []time.Duration{0, time.Millisecond} {
			for _, pattern := range []string{"burst", "trickle", "boundary"} {
				name := fmt.Sprintf("maxBatch=%d/maxWait=%s/%s", maxBatch, maxWait, pattern)
				t.Run(name, func(t *testing.T) {
					srv, err := serve.New(eng, serve.Options{
						MaxBatch: maxBatch,
						MaxWait:  maxWait,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer srv.Close()
					got := submitAll(t, srv, s.Queries, pattern, maxBatch)
					if t.Failed() {
						t.FailNow()
					}
					for qi := range got {
						if !reflect.DeepEqual(got[qi].IDs, ref.IDs[qi]) {
							t.Fatalf("query %d IDs diverge:\n  server %v\n  batch  %v",
								qi, got[qi].IDs, ref.IDs[qi])
						}
						if !reflect.DeepEqual(got[qi].Items, ref.Items[qi]) {
							t.Fatalf("query %d Items diverge:\n  server %v\n  batch  %v",
								qi, got[qi].Items, ref.Items[qi])
						}
					}
					st := srv.Stats()
					if st.Completed != uint64(s.Queries.N) {
						t.Fatalf("completed %d of %d", st.Completed, s.Queries.N)
					}
					if maxBatch == 1 && st.MeanBatch != 1 {
						t.Fatalf("maxBatch=1 mean batch = %v", st.MeanBatch)
					}
				})
			}
		}
	}
}

// TestServeTruncatesToK pins the per-request k semantics: k <= 0 selects
// the engine K, a smaller k truncates the deterministic prefix, and a
// larger k is rejected.
func TestServeTruncatesToK(t *testing.T) {
	eng, s := testEngine(t, 3000, 8)
	srv, err := serve.New(eng, serve.Options{MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	full, err := srv.Search(context.Background(), s.Queries.Vec(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.IDs) != eng.K() {
		t.Fatalf("k=0 returned %d ids, want %d", len(full.IDs), eng.K())
	}
	three, err := srv.Search(context.Background(), s.Queries.Vec(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(three.IDs, full.IDs[:3]) {
		t.Fatalf("k=3 not a prefix: %v vs %v", three.IDs, full.IDs)
	}
	if _, err := srv.Search(context.Background(), s.Queries.Vec(0), eng.K()+1); err == nil {
		t.Fatal("k > engine K should fail")
	}
	if _, err := srv.Search(context.Background(), s.Queries.Vec(0)[:8], 0); err == nil {
		t.Fatal("wrong dimension should fail")
	}
}
