package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drimann/internal/serve"
)

// TestServeStress hammers one server from many goroutines with random
// per-request cancellations and a mid-flight Close, and asserts the
// exactly-once response contract: every Search call returns exactly one
// outcome, every successful response carries that request's own query's
// bit-exact result (no cross-wiring between concurrent callers), admitted
// requests are never lost, and post-Close submissions fail fast with the
// typed ErrClosed. CI runs this under -race; the batcher, admission path
// and stats are all exercised concurrently.
func TestServeStress(t *testing.T) {
	eng, s := testEngine(t, 4000, 64)
	ref, err := eng.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(eng, serve.Options{
		MaxBatch:   8,
		MaxWait:    100 * time.Microsecond,
		QueueLimit: 16, // small bound so backpressure blocking is exercised
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		perG       = 40
	)
	var (
		ok        atomic.Uint64 // successful responses (verified bit-exact)
		ctxErrs   atomic.Uint64 // context cancellations observed by callers
		closedErr atomic.Uint64 // ErrClosed rejections
		mismatch  atomic.Uint64
		wg        sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < perG; i++ {
				qi := rng.Intn(s.Queries.N)
				ctx := context.Background()
				var cancel context.CancelFunc
				switch rng.Intn(4) {
				case 0: // already canceled at submission
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				case 1: // cancels mid-flight
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				resp, err := srv.Search(ctx, s.Queries.Vec(qi), 0)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					ok.Add(1)
					if !reflect.DeepEqual(resp.IDs, ref.IDs[qi]) {
						mismatch.Add(1)
					}
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					ctxErrs.Add(1)
				case errors.Is(err, serve.ErrClosed):
					closedErr.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}

	// Close mid-flight: half the submission volume is typically still
	// outstanding. Close must drain admitted requests (no lost responses)
	// and turn away the rest with ErrClosed.
	time.Sleep(2 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	total := ok.Load() + ctxErrs.Load() + closedErr.Load()
	if total != goroutines*perG {
		t.Fatalf("outcomes %d (ok %d, ctx %d, closed %d) != submissions %d — lost or duplicated responses",
			total, ok.Load(), ctxErrs.Load(), closedErr.Load(), goroutines*perG)
	}
	if mismatch.Load() != 0 {
		t.Fatalf("%d responses carried another query's results", mismatch.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("stress produced no successful responses; fixture too aggressive to test anything")
	}

	// Post-Close: fail fast with the typed error, and keep failing on
	// repeated Close-then-Search.
	for i := 0; i < 3; i++ {
		if _, err := srv.Search(context.Background(), s.Queries.Vec(0), 0); !errors.Is(err, serve.ErrClosed) {
			t.Fatalf("post-Close Search error = %v, want ErrClosed", err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The server's own ledger must balance: every admitted request was
	// answered (completed, canceled or failed), none left in the queue.
	st := srv.Stats()
	if st.Enqueued != st.Completed+st.Canceled+st.Failed {
		t.Fatalf("ledger: enqueued %d != completed %d + canceled %d + failed %d",
			st.Enqueued, st.Completed, st.Canceled, st.Failed)
	}
	if st.Failed != 0 {
		t.Fatalf("unexpected engine-launch failures: %d", st.Failed)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
}

// TestServeCloseIdlePromptly pins that Close on an idle server returns
// without waiting on any timer (the batcher is parked on the queue, not in
// a max-wait countdown).
func TestServeCloseIdlePromptly(t *testing.T) {
	eng, _ := testEngine(t, 2500, 4)
	srv, err := serve.New(eng, serve.Options{MaxBatch: 8, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close of an idle server did not return")
	}
}
