package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drimann/internal/dataset"
	"drimann/internal/serve"
)

// TestServeMutateUnderTraffic races Insert/Delete/Compact against
// concurrent Search traffic on one server under -race. Exclusive runs the
// mutation on the batcher goroutine between launches, so the engine state
// that launches read is never touched mid-launch (the race detector is the
// referee), and the batch-boundary semantics are observable: a point is
// findable by the first search issued after Insert returns and absent after
// Delete returns. The query vectors double as the insert pool (they are
// valid corpus-shaped points the index has never held).
func TestServeMutateUnderTraffic(t *testing.T) {
	eng, s := testEngine(t, 4000, 64)
	srv, err := serve.New(eng, serve.Options{
		MaxBatch: 8,
		MaxWait:  100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var served atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 6151))
			for {
				select {
				case <-stop:
					return
				default:
				}
				qi := rng.Intn(32) // queries 32.. are the insert pool
				resp, err := srv.Search(context.Background(), s.Queries.Vec(qi), 0)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if len(resp.IDs) != len(resp.Items) {
					t.Errorf("torn response: %d ids, %d items", len(resp.IDs), len(resp.Items))
					return
				}
				served.Add(1)
			}
		}(g)
	}

	find := func(id int32, vec []uint8) bool {
		resp, err := srv.Search(context.Background(), vec, 0)
		if err != nil {
			t.Fatalf("probe search: %v", err)
		}
		return slices.Contains(resp.IDs, id)
	}
	for round := 0; round < 10; round++ {
		id := int32(s.Base.N + round)
		vec := s.Queries.Vec(32 + round)
		one := dataset.U8Set{N: 1, D: s.Queries.D, Data: vec}
		if err := srv.Insert(one, []int32{id}); err != nil {
			t.Fatal(err)
		}
		if !find(id, vec) {
			t.Fatalf("round %d: inserted point %d not findable after Insert returned", round, id)
		}
		if round%2 == 0 {
			if err := srv.Delete([]int32{id}); err != nil {
				t.Fatal(err)
			}
			if find(id, vec) {
				t.Fatalf("round %d: deleted point %d still findable after Delete returned", round, id)
			}
		}
		if round%3 == 2 {
			if err := srv.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no background traffic was served")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExclusiveContract pins Exclusive's error semantics: fn's error comes
// back to the caller, and a closed server refuses with ErrClosed without
// running fn.
func TestExclusiveContract(t *testing.T) {
	eng, _ := testEngine(t, 2000, 8)
	srv, err := serve.New(eng, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if got := srv.Exclusive(func() error { return boom }); !errors.Is(got, boom) {
		t.Fatalf("Exclusive returned %v, want fn's error", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ran := false
	if got := srv.Exclusive(func() error { ran = true; return nil }); !errors.Is(got, serve.ErrClosed) {
		t.Fatalf("Exclusive on closed server returned %v, want ErrClosed", got)
	}
	if ran {
		t.Fatal("Exclusive ran fn on a closed server")
	}
}
