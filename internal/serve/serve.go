// Package serve is DRIM-ANN's online serving layer: a concurrent,
// deadline-aware dynamic micro-batcher over any backend implementing the
// engine.Engine contract (the pipelined IVF-PQ engine of internal/core,
// the beam-search graph engine of internal/graph).
//
// The engine's SearchBatch is an offline primitive — one caller, one
// pre-assembled query set. Real ANN traffic (the paper's target workload)
// arrives as single queries from many concurrent callers, and on DRAM-PIM
// systems the batching policy around the kernel determines end-to-end QPS
// as much as the kernel itself: a launch has fixed scheduling and transfer
// overheads that amortize over the batch, while every query the batch waits
// for adds queueing latency. The Server navigates that trade-off.
//
// # Batcher states
//
// A single batcher goroutine owns the engine (SearchBatch is not safe for
// concurrent use — the engine pools per-launch state) and cycles through
// three states:
//
//	idle       — no pending queries; blocked on the arrival queue.
//	collecting — a batch is open: the first query's arrival started a
//	             max-wait countdown, and queries are absorbed until the
//	             batch reaches MaxBatch, the countdown expires, or a
//	             member's deadline demands an early launch.
//	launching  — the batch runs through Engine.SearchBatch; results are
//	             demultiplexed to each caller via Result.Query.
//
// # Deadline semantics
//
// A request's context deadline participates in the launch policy: the
// batcher tracks an EWMA of recent launch service times and launches early
// once now + estimated service time reaches the earliest deadline in the
// open batch, giving that request its best chance of answering in time.
// Cancellation is honored while a request is queued (it is dropped from the
// batch and fails with ctx.Err()); once its launch starts, the result is
// computed and delivered regardless — the caller may have stopped
// listening, which is its prerogative; delivery never blocks the batcher.
//
// # Backpressure and shutdown
//
// The arrival queue is bounded (Options.QueueLimit). When it is full,
// Search blocks — honoring its context — so overload turns into caller-side
// latency instead of unbounded memory growth. Close stops admission
// (subsequent Search calls fail fast with ErrClosed), then drains: every
// request already admitted is still launched and answered, so no response
// is ever lost. Requests racing with Close either get admitted and served
// or fail with ErrClosed — exactly one of the two.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"drimann/internal/dataset"
	"drimann/internal/durable"
	"drimann/internal/engine"
	"drimann/internal/topk"
)

// ErrUnsupported is returned when an operation needs a backend capability
// (mutation, probed search, snapshotting) the served engine does not
// implement.
var ErrUnsupported = errors.New("serve: backend does not support this operation")

// ErrClosed is returned by Search once Close has stopped admission.
var ErrClosed = errors.New("serve: server closed")

// Options configures a Server; zero values select defaults.
type Options struct {
	// MaxBatch caps queries per launch. Default: the engine's scheduling
	// batch size (larger launches would be split into several scheduling
	// batches inside the engine anyway).
	MaxBatch int
	// MaxWait bounds how long the first query of a batch waits for company
	// before the batch launches anyway. 0 launches immediately with
	// whatever is queued at that instant (pure dynamic batching).
	MaxWait time.Duration
	// QueueLimit bounds the pending-request queue; a full queue blocks
	// Search (backpressure). Default 4*MaxBatch.
	QueueLimit int
	// ServiceTimeGuess seeds the launch-duration EWMA the deadline-aware
	// early-launch policy uses before the first real measurement. Default
	// 1ms.
	ServiceTimeGuess time.Duration
	// Durability, when non-nil, write-ahead-logs every mutation at the
	// batch boundary where mutations already serialize: Insert/Delete
	// apply to the engine, append one record to the store's WAL, and
	// sync per the store's policy before acknowledging — so a mutation
	// whose call returned nil survives a crash (core.Recover replays
	// the log). Compact additionally writes a fresh checkpoint and
	// rotates the log. The server takes ownership of the store: Close
	// syncs and closes it after draining.
	Durability *durable.Store
}

func (o *Options) defaults(eng engine.Engine) {
	// Clamp to the engine's scheduling batch size: a larger MaxBatch would
	// silently split each launch into several scheduling batches inside the
	// engine, so the "launch" the deadline EWMA and the BatchSize stats
	// describe would no longer be the unit the batcher thinks it is timing.
	if o.MaxBatch <= 0 || o.MaxBatch > eng.MaxBatch() {
		o.MaxBatch = eng.MaxBatch()
	}
	if o.MaxWait < 0 {
		o.MaxWait = 0
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 4 * o.MaxBatch
	}
	if o.ServiceTimeGuess <= 0 {
		o.ServiceTimeGuess = time.Millisecond
	}
}

// Response is one query's answer.
type Response struct {
	// IDs are the neighbor ids in the deterministic (distance, id) order,
	// truncated to the requested k.
	IDs []int32
	// Items carries the scored candidates behind IDs.
	Items []topk.Item[uint32]
	// Latency is enqueue-to-demux time: queueing + batching + launch.
	Latency time.Duration
	// BatchSize is the number of queries in the launch this one rode in.
	BatchSize int
}

// Stats is a point-in-time snapshot of the server's serving metrics.
type Stats struct {
	Enqueued  uint64 // requests admitted to the queue
	Completed uint64 // requests answered with results
	Canceled  uint64 // requests dropped while queued (context canceled)
	Failed    uint64 // requests answered with an engine launch error
	Rejected  uint64 // Search calls refused (closed, bad argument, ctx)
	Batches   uint64 // launches executed

	// The ledger balances: once the server has drained, Enqueued ==
	// Completed + Canceled + Failed (every admitted request is answered
	// exactly once).

	QueueDepth int // requests currently queued (admitted, not yet picked up)
	Inflight   int // requests currently inside a running engine launch

	// MeanBatch is Completed-weighted mean launch size.
	MeanBatch float64
	// AvgLatency is the mean enqueue-to-demux latency of completed requests.
	AvgLatency time.Duration

	// Sim aggregates the engine's simulated metrics over every launch this
	// server issued (engine.Metrics.Merge), so AvgImbalance, PhaseShare and
	// friends work on the lifetime view.
	Sim engine.Metrics
}

type reply struct {
	resp Response
	err  error
}

// mutation is a unit of work the batcher runs between launches on behalf of
// Exclusive; done (buffered 1) carries fn's error back to the caller.
type mutation struct {
	fn   func() error
	done chan error
}

type request struct {
	ctx   context.Context
	q     []uint8
	k     int
	enq   time.Time
	reply chan reply // buffered(1): delivery never blocks the batcher

	// probed requests carry a pre-resolved probe list (shard-local cluster
	// IDs, ascending distance order) from a sharded front door; the batcher
	// then skips the engine's CL stage (SearchBatchProbed). probes is frozen
	// under the same contract as q.
	probes []int32
	probed bool
}

// Server coalesces concurrent single-query Search calls into dynamic
// micro-batches over one backend engine. Construct with New; all methods
// are safe for concurrent use.
type Server struct {
	eng engine.Engine
	opt Options

	// Optional backend capabilities, discovered once at construction; nil
	// when the backend doesn't implement them.
	probed engine.ProbedSearcher
	mut    engine.Mutable
	snap   engine.Snapshotter

	pending chan *request
	// mutate is the Exclusive hand-off: unbuffered, so a mutation is only
	// accepted when the batcher is parked in its select — between launches,
	// never during one.
	mutate chan *mutation

	// admission guards the closed flag against in-flight sends: Search
	// holds it in read mode across its queue send, Close takes it in write
	// mode to flip closed, so after Close returns from the critical section
	// no sender can still be inside the select and the queue is final.
	admission sync.RWMutex
	closed    bool
	closeCh   chan struct{} // closed after admission is sealed
	loopDone  chan struct{}

	// Batcher-owned scratch (no locking: single goroutine).
	batchBuf []*request
	qbuf     []uint8
	psOff    []int32 // pooled ProbeSet storage for all-probed launches
	psClu    []int32
	est      time.Duration // EWMA of launch service time

	enqueued   atomic.Uint64
	canceled   atomic.Uint64
	failed     atomic.Uint64
	rejected   atomic.Uint64
	batches    atomic.Uint64
	queueDepth atomic.Int64
	inflight   atomic.Int64

	// The completion triple updates and snapshots under one mutex: Completed
	// and the latency/size sums it averages must come from the same instant,
	// or Stats can divide mismatched pairs under concurrent load.
	doneMu    sync.Mutex
	completed uint64
	sizeSum   uint64
	latencyNS int64

	simMu sync.Mutex
	sim   engine.Metrics
}

// New starts a server over eng — any backend implementing engine.Engine.
// The server becomes the engine's only driver: do not call eng.SearchBatch
// concurrently with a live server. Optional capabilities (probed search,
// mutation, snapshotting) are discovered by type assertion; operations
// needing a missing one fail with ErrUnsupported. Configuring Durability
// requires a backend that is both Mutable and a Snapshotter.
func New(eng engine.Engine, opt Options) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	opt.defaults(eng)
	probed, _ := eng.(engine.ProbedSearcher)
	mut, _ := eng.(engine.Mutable)
	snap, _ := eng.(engine.Snapshotter)
	if opt.Durability != nil && (mut == nil || snap == nil) {
		return nil, fmt.Errorf("serve: durability configured but backend %T is not mutable+snapshottable: %w", eng, ErrUnsupported)
	}
	s := &Server{
		eng:      eng,
		probed:   probed,
		mut:      mut,
		snap:     snap,
		opt:      opt,
		pending:  make(chan *request, opt.QueueLimit),
		mutate:   make(chan *mutation),
		closeCh:  make(chan struct{}),
		loopDone: make(chan struct{}),
		est:      opt.ServiceTimeGuess,
	}
	go s.loop()
	return s, nil
}

// Options reports the server's resolved configuration.
func (s *Server) Options() Options { return s.opt }

// Search submits one query and blocks until its micro-batch has been
// served, ctx is done, or the server closes. q must have the engine's
// dimensionality and must not be mutated until Search returns (it is
// copied at admission). k <= 0 selects the engine's configured K; k larger
// than that is an error (the engine computes exactly K candidates).
func (s *Server) Search(ctx context.Context, q []uint8, k int) (Response, error) {
	return s.search(ctx, q, k, true, nil, false)
}

// SearchOwned is Search without the admission copy of q: the caller
// promises q stays valid and unmutated until the request's reply has been
// delivered. Note that this is a stronger promise than "until the call
// returns": a call abandoned on context cancellation can return while the
// request is still queued, and the batcher may read q when it launches the
// batch later. Callers must therefore never mutate or recycle q after an
// error return either — treat the buffer as frozen for as long as the
// server lives, or use Search, which copies. The hook exists for fan-out
// layers that already copied the query once at their own front door and
// keep that copy alive (the sharded cluster server submits one immutable
// copy to S per-shard servers); everything else about the serving contract
// is identical.
func (s *Server) SearchOwned(ctx context.Context, q []uint8, k int) (Response, error) {
	return s.search(ctx, q, k, false, nil, false)
}

// SearchProbedOwned is SearchOwned with the CL stage pre-resolved: probes
// carries this query's cluster list in the engine's (shard-local) ID space,
// ascending distance order, and the batcher launches the micro-batch
// through Engine.SearchBatchProbed — no per-shard CL, no CL charge in this
// server's simulated metrics (the front door that resolved the probes
// accounts that phase once). Both q and probes are frozen under the
// SearchOwned contract: valid and unmutated until the reply is delivered,
// even on an error return. An empty probe list is valid and yields an empty
// response. If a launch mixes probed and unprobed requests the batcher
// falls back to the engine's own CL for the whole batch — results are
// identical (the probes came from the same locator over the same shared
// directory), only the CL attribution differs for that launch.
func (s *Server) SearchProbedOwned(ctx context.Context, q []uint8, k int, probes []int32) (Response, error) {
	if s.probed == nil {
		s.rejected.Add(1)
		return Response{}, fmt.Errorf("serve: probed search on backend %T: %w", s.eng, ErrUnsupported)
	}
	nlist := s.probed.NumClusters()
	for _, c := range probes {
		if c < 0 || int(c) >= nlist {
			s.rejected.Add(1)
			return Response{}, fmt.Errorf("serve: probe cluster %d outside [0, %d)", c, nlist)
		}
	}
	return s.search(ctx, q, k, false, probes, true)
}

func (s *Server) search(ctx context.Context, q []uint8, k int, copyQ bool, probes []int32, probed bool) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(q) != s.eng.Dim() {
		s.rejected.Add(1)
		return Response{}, fmt.Errorf("serve: query dim %d != index dim %d", len(q), s.eng.Dim())
	}
	if k <= 0 {
		k = s.eng.K()
	} else if k > s.eng.K() {
		s.rejected.Add(1)
		return Response{}, fmt.Errorf("serve: k %d exceeds engine K %d", k, s.eng.K())
	}
	if copyQ {
		q = append([]uint8(nil), q...)
	}
	r := &request{
		ctx:    ctx,
		q:      q,
		k:      k,
		enq:    time.Now(),
		reply:  make(chan reply, 1),
		probes: probes,
		probed: probed,
	}

	// Holding the admission read lock across the send means closeCh cannot
	// close mid-select (Close takes the write lock first), so a sender that
	// got past the closed check always either completes its send — the
	// batcher keeps consuming until closeCh — or bails on its own context.
	s.admission.RLock()
	if s.closed {
		s.admission.RUnlock()
		s.rejected.Add(1)
		return Response{}, ErrClosed
	}
	// Counters are bumped before the send (and rolled back on the ctx
	// branch, where the send did not happen) so that once the batcher has
	// answered a request its admission is already on the ledger.
	s.queueDepth.Add(1)
	s.enqueued.Add(1)
	select {
	case s.pending <- r:
		s.admission.RUnlock()
	case <-ctx.Done():
		s.admission.RUnlock()
		s.queueDepth.Add(-1)
		s.enqueued.Add(^uint64(0))
		s.rejected.Add(1)
		return Response{}, ctx.Err()
	}

	select {
	case rep := <-r.reply:
		return rep.resp, rep.err
	case <-ctx.Done():
		// The batcher will still deliver into the buffered channel (or has
		// already); the caller just stops waiting.
		return Response{}, ctx.Err()
	}
}

// Exclusive runs fn on the batcher goroutine, between launches: when fn
// executes, no engine launch is in flight on this server and none starts
// until fn returns. This is the serialization point for live index
// mutations — the engine's Insert/Delete/Compact are not safe concurrently
// with SearchBatch, and running them here needs no locking on the query hot
// path. Exclusive blocks until fn has run (waiting out an in-flight launch
// first) and returns fn's error, or ErrClosed if the server closed before
// fn was accepted. Queries admitted before the call are answered before fn
// runs or after it — never during.
func (s *Server) Exclusive(fn func() error) error {
	m := &mutation{fn: fn, done: make(chan error, 1)}
	// Same admission discipline as search: holding the read lock across the
	// send means Close (write lock) cannot seal admission mid-send, so the
	// batcher is still consuming and the send always completes.
	s.admission.RLock()
	if s.closed {
		s.admission.RUnlock()
		return ErrClosed
	}
	s.mutate <- m
	s.admission.RUnlock()
	return <-m.done
}

// Insert routes the backend's Insert through Exclusive: the new points are
// PQ-encoded into their clusters' append segments between launches and are
// visible to every query batched after the call returns. With durability
// configured, the applied points are appended to the WAL and synced per
// the store's policy before the call returns: a nil return means the
// batch survives a crash.
func (s *Server) Insert(vecs dataset.U8Set, ids []int32) error {
	if s.mut == nil {
		return fmt.Errorf("serve: insert on backend %T: %w", s.eng, ErrUnsupported)
	}
	if s.opt.Durability == nil {
		return s.Exclusive(func() error { return s.mut.Insert(vecs, ids) })
	}
	return s.Exclusive(func() error {
		// Apply point-by-point so a mid-batch failure (duplicate id,
		// bad dimension) still logs exactly the applied prefix: the WAL
		// always reproduces the engine state it acknowledges, even on
		// an error return.
		applied := 0
		var applyErr error
		for i := range ids {
			one := dataset.U8Set{N: 1, D: vecs.D, Data: vecs.Data[i*vecs.D : (i+1)*vecs.D]}
			if applyErr = s.mut.Insert(one, ids[i:i+1]); applyErr != nil {
				break
			}
			applied++
		}
		if applied > 0 {
			rec, err := durable.EncodeInsert(ids[:applied], vecs.D, vecs.Data[:applied*vecs.D])
			if err == nil {
				err = s.opt.Durability.Append(rec)
			}
			if err == nil {
				err = s.opt.Durability.BatchEnd()
			}
			if err != nil {
				// Applied but not durably logged: the mutation is NOT
				// acknowledged (a crash may forget it).
				return fmt.Errorf("serve: insert applied but not durable: %w", err)
			}
		}
		return applyErr
	})
}

// Delete routes the backend's Delete through Exclusive; the ids are gone from
// every query batched after the call returns, durably so (see Insert)
// when a store is configured.
func (s *Server) Delete(ids []int32) error {
	if s.mut == nil {
		return fmt.Errorf("serve: delete on backend %T: %w", s.eng, ErrUnsupported)
	}
	if s.opt.Durability == nil {
		return s.Exclusive(func() error { return s.mut.Delete(ids) })
	}
	return s.Exclusive(func() error {
		applied := 0
		var applyErr error
		for i := range ids {
			if applyErr = s.mut.Delete(ids[i : i+1]); applyErr != nil {
				break
			}
			applied++
		}
		if applied > 0 {
			err := s.opt.Durability.Append(durable.EncodeDelete(ids[:applied]))
			if err == nil {
				err = s.opt.Durability.BatchEnd()
			}
			if err != nil {
				return fmt.Errorf("serve: delete applied but not durable: %w", err)
			}
		}
		return applyErr
	})
}

// Compact routes the backend's Compact through Exclusive, folding the mutation
// overlay back into the packed layout between launches. With durability
// configured it then writes a fresh checkpoint and rotates the WAL —
// the log never grows past one compaction cycle.
func (s *Server) Compact() error {
	if s.mut == nil {
		return fmt.Errorf("serve: compact on backend %T: %w", s.eng, ErrUnsupported)
	}
	return s.Exclusive(func() error {
		if err := s.mut.Compact(); err != nil {
			return err
		}
		if s.opt.Durability != nil {
			if err := s.opt.Durability.Checkpoint(s.snap.Snapshot); err != nil {
				return fmt.Errorf("serve: post-compact checkpoint: %w", err)
			}
		}
		return nil
	})
}

// Checkpoint writes a fresh snapshot (current overlay included) and
// rotates the WAL, without compacting. No-op without a durability
// store. Runs at the batch boundary like every other mutation.
func (s *Server) Checkpoint() error {
	if s.opt.Durability == nil {
		return nil
	}
	return s.Exclusive(func() error {
		return s.opt.Durability.Checkpoint(s.snap.Snapshot)
	})
}

// Close seals admission, waits for every already-admitted request to be
// answered, and stops the batcher; a configured durability store is
// synced and closed once the batcher has stopped (no mutation can be in
// flight then). Safe to call multiple times and concurrently; later
// calls wait for the first to finish draining.
func (s *Server) Close() error {
	s.admission.Lock()
	if s.closed {
		s.admission.Unlock()
		<-s.loopDone
		return nil
	}
	s.closed = true
	s.admission.Unlock()
	// No Search call can be inside its queue send now (they hold the
	// admission read lock across the select), so the queue is final.
	close(s.closeCh)
	<-s.loopDone
	if s.opt.Durability != nil {
		return s.opt.Durability.Close()
	}
	return nil
}

// Stats snapshots the server's serving metrics.
func (s *Server) Stats() Stats {
	st := Stats{
		Enqueued:   s.enqueued.Load(),
		Canceled:   s.canceled.Load(),
		Failed:     s.failed.Load(),
		Rejected:   s.rejected.Load(),
		Batches:    s.batches.Load(),
		QueueDepth: int(s.queueDepth.Load()),
		Inflight:   int(s.inflight.Load()),
	}
	s.doneMu.Lock()
	st.Completed = s.completed
	if s.completed > 0 {
		st.MeanBatch = float64(s.sizeSum) / float64(s.completed)
		st.AvgLatency = time.Duration(s.latencyNS / int64(s.completed))
	}
	s.doneMu.Unlock()
	s.simMu.Lock()
	st.Sim = s.sim
	s.simMu.Unlock()
	return st
}

// Load is the server's instantaneous request load — queued plus in-launch
// queries. It is the cheap gauge replica routers compare (power-of-two
// choices picks the less loaded of two replicas).
func (s *Server) Load() int {
	return int(s.queueDepth.Load() + s.inflight.Load())
}

// Metrics returns the aggregated simulated engine metrics of every launch
// this server issued.
func (s *Server) Metrics() engine.Metrics {
	s.simMu.Lock()
	defer s.simMu.Unlock()
	return s.sim
}

// LatencyPercentile returns the p-th (0..1) nearest-rank percentile of
// sorted (ascending) latencies — index ceil(p*n)-1, so p=1 is the max and
// small samples don't under-report the tail — or 0 for an empty slice.
// Shared by the load-generator tools that report p50/p95/p99 of Search
// latencies.
func LatencyPercentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// loop is the batcher goroutine: idle -> collecting -> launching, then the
// final drain once admission is sealed.
func (s *Server) loop() {
	defer close(s.loopDone)
	// Go 1.23+ timer semantics: Stop/Reset drain the channel, so the old
	// `if !Stop() { <-C }` idiom is unnecessary (and would deadlock).
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		select {
		case first := <-s.pending:
			s.queueDepth.Add(-1)
			s.launch(s.collect(first, timer))
		case m := <-s.mutate:
			m.done <- m.fn()
		case <-s.closeCh:
			// Exclusive holds the admission read lock across its send, so once
			// closeCh is closed no mutation can still be in flight: drain only
			// has queries to answer.
			s.drain()
			return
		}
	}
}

// drain empties the (now final) queue, launching full batches without
// waiting, so Close never strands an admitted request.
func (s *Server) drain() {
	for {
		batch := s.batchBuf[:0]
		for len(batch) < s.opt.MaxBatch {
			select {
			case r := <-s.pending:
				s.queueDepth.Add(-1)
				batch = append(batch, r)
			default:
				s.launch(batch)
				return
			}
		}
		s.launch(batch)
	}
}

// collect absorbs queued requests into first's batch until it is full, the
// max-wait countdown expires, a member's deadline demands an early launch,
// or the server starts closing (the remaining queue is handled by drain).
func (s *Server) collect(first *request, timer *time.Timer) []*request {
	batch := s.batchBuf[:0]
	launchAt := time.Now().Add(s.opt.MaxWait)
	// absorb answers an already-dead request right here — it must not
	// occupy a batch slot or drag launchAt into the past, which would
	// systematically under-batch live traffic when clients use aggressive
	// timeouts — and otherwise admits it, letting its deadline tighten the
	// launch window.
	absorb := func(r *request) {
		if err := r.ctx.Err(); err != nil {
			s.canceled.Add(1)
			r.reply <- reply{err: err}
			return
		}
		batch = append(batch, r)
		if d, ok := r.ctx.Deadline(); ok {
			if early := d.Add(-s.est); early.Before(launchAt) {
				launchAt = early
			}
		}
	}
	absorb(first)
	if s.opt.MaxBatch == 1 || len(batch) == 0 {
		// A dead first request leaves nothing to wait for: hand back to
		// the idle state rather than holding an empty window open.
		return batch
	}
	for len(batch) < s.opt.MaxBatch {
		// Fast path: absorb whatever is already queued before arming a
		// timer at all (with MaxWait 0 this is the whole policy).
		select {
		case r := <-s.pending:
			s.queueDepth.Add(-1)
			absorb(r)
			continue
		default:
		}
		wait := time.Until(launchAt)
		if wait <= 0 {
			break
		}
		timer.Reset(wait)
		select {
		case r := <-s.pending:
			timer.Stop()
			s.queueDepth.Add(-1)
			absorb(r)
		case <-timer.C:
			return batch
		case <-s.closeCh:
			return batch
		}
	}
	return batch
}

// launch runs one micro-batch through the engine and demultiplexes the
// per-query results. Requests whose context ended while they were queued
// are dropped here with their context error.
func (s *Server) launch(batch []*request) {
	s.batchBuf = batch // retain capacity for the next collect
	// Nil out the slots once every reply is delivered: the retained
	// capacity must not pin served requests (copied queries, reply
	// channels, caller contexts) until some later batch happens to
	// overwrite them.
	defer clear(s.batchBuf[:len(batch)])
	live := 0
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			s.canceled.Add(1)
			r.reply <- reply{err: err}
			continue
		}
		batch[live] = r
		live++
	}
	batch = batch[:live]
	if live == 0 {
		return
	}
	s.inflight.Store(int64(live))
	defer s.inflight.Store(0)

	dim := s.eng.Dim()
	s.qbuf = s.qbuf[:0]
	allProbed := true
	for _, r := range batch {
		s.qbuf = append(s.qbuf, r.q...)
		allProbed = allProbed && r.probed
	}
	qs := dataset.U8Set{N: live, D: dim, Data: s.qbuf}

	t0 := time.Now()
	var res *engine.Result
	var err error
	if allProbed && s.probed != nil {
		// Every member carries front-door probes: pack them (in batch order,
		// each list already ascending-distance) and skip the CL stage.
		s.psOff = append(s.psOff[:0], 0)
		s.psClu = s.psClu[:0]
		for _, r := range batch {
			s.psClu = append(s.psClu, r.probes...)
			s.psOff = append(s.psOff, int32(len(s.psClu)))
		}
		res, err = s.probed.SearchBatchProbed(qs, engine.ProbeSet{Offsets: s.psOff, Clusters: s.psClu}, false)
	} else {
		res, err = s.eng.SearchBatch(qs)
	}
	dur := time.Since(t0)
	// EWMA (7/8 history) of launch service time for the deadline policy.
	s.est += (dur - s.est) / 8
	s.batches.Add(1)

	if err != nil {
		// Engine-level failure: fan the error to every member.
		for _, r := range batch {
			s.failed.Add(1)
			r.reply <- reply{err: fmt.Errorf("serve: launch: %w", err)}
		}
		return
	}

	s.simMu.Lock()
	s.sim.Merge(&res.Metrics)
	s.simMu.Unlock()

	for i, r := range batch {
		qr := res.Query(i)
		ids, items := qr.IDs, qr.Items
		if len(ids) > r.k {
			ids, items = ids[:r.k], items[:r.k]
		}
		// Copy at the demux boundary: the engine owns the Result storage,
		// and nothing in the serving contract stops a future engine from
		// pooling those buffers across launches. A Response must stay valid
		// for as long as the caller holds it, so it never aliases engine
		// memory (TestServeResponseDoesNotAliasEngine pins this).
		if len(ids) > 0 {
			ids = append([]int32(nil), ids...)
			items = append([]topk.Item[uint32](nil), items...)
		}
		lat := time.Since(r.enq)
		s.doneMu.Lock()
		s.completed++
		s.sizeSum += uint64(live)
		s.latencyNS += int64(lat)
		s.doneMu.Unlock()
		r.reply <- reply{resp: Response{
			IDs:       ids,
			Items:     items,
			Latency:   lat,
			BatchSize: live,
		}}
	}
}
