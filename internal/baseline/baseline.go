// Package baseline models the systems DRIM-ANN is compared against in the
// paper's evaluation: Faiss-CPU (a real multi-threaded IVF-PQ search for
// recall, with a modeled AVX2 Xeon for the QPS axis) and Faiss-GPU (an A100
// platform model with the OOM failure mode of §2.1 and §5.4).
package baseline

import (
	"fmt"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/perfmodel"
	"drimann/internal/upmem"
)

// Metrics summarizes one baseline run.
type Metrics struct {
	Platform string
	QPS      float64
	Recall   float64
	Seconds  float64 // batch latency at the modeled QPS
}

// CPU is the Faiss-CPU-style baseline: vectorized, multi-threaded IVF-PQ.
type CPU struct {
	Index    *ivf.Index
	Platform upmem.Platform
	// Efficiency derates the peak model to what Faiss achieves in practice
	// on this workload (instruction mix, cache misses); default 0.35.
	Efficiency float64
}

// NewCPU builds the 32-thread AVX2 baseline of the paper's experiments.
func NewCPU(ix *ivf.Index) *CPU {
	return &CPU{Index: ix, Platform: upmem.PlatformCPU(), Efficiency: 0.35}
}

// modelParams derives the performance-model parameters for this index.
func (b *CPU) modelParams(nVectors int64, nQueries, nprobe, k int) perfmodel.Params {
	ix := b.Index
	c := int(nVectors) / ix.NList
	if c < 1 {
		c = 1
	}
	return perfmodel.Params{
		N: nVectors, Q: nQueries, D: ix.Dim,
		K: k, P: nprobe, C: c, M: ix.M, CB: ix.CB,
	}
}

// Run searches the queries with the real float path (recall) and prices the
// run with the analytic CPU model (QPS): everything on the host, hardware
// multipliers, AVX lanes on the distance kernels.
func (b *CPU) Run(queries dataset.U8Set, base dataset.U8Set, nprobe, k int, gt [][]int32) (Metrics, [][]int32, error) {
	got := b.Index.SearchBatch(queries, nprobe, k, 0)
	recall := 0.0
	if gt != nil {
		recall = dataset.Recall(gt, got, k)
	}
	qps, err := b.ModelQPS(int64(base.N), queries.N, nprobe, k)
	if err != nil {
		return Metrics{}, nil, err
	}
	return Metrics{
		Platform: b.Platform.Name,
		QPS:      qps,
		Recall:   recall,
		Seconds:  float64(queries.N) / qps,
	}, got, nil
}

// ModelQPS prices the search without executing it (used at paper scale).
func (b *CPU) ModelQPS(nVectors int64, nQueries, nprobe, k int) (float64, error) {
	p := b.modelParams(nVectors, nQueries, nprobe, k)
	costs, err := perfmodel.Costs(p, 1) // hardware multiplier
	if err != nil {
		return 0, err
	}
	hw := perfmodel.FromPlatform(b.Platform)
	hw.PE *= b.Efficiency
	var total float64
	for ph := upmem.Phase(0); ph < upmem.NumPhases; ph++ {
		if costs[ph].Compute == 0 && costs[ph].IO == 0 {
			continue
		}
		// AVX lanes accelerate the element-wise phases but not the
		// top-k/scatter-gather ones.
		phw := hw
		if ph == upmem.PhaseDC || ph == upmem.PhaseTS {
			phw.Lanes = 1
		}
		total += perfmodel.PhaseTime(costs[ph], phw)
	}
	return perfmodel.QPS(p, total), nil
}

// GPU is the Faiss-GPU-style baseline: an A100 platform model. It refuses
// datasets beyond its memory (the paper's OOM markers) and otherwise scales
// the CPU cost model by the platform's bandwidth/compute advantage.
type GPU struct {
	Index    *ivf.Index
	Platform upmem.Platform
	// Efficiency derates peak GPU throughput (kernel launch, PCIe, small
	// batches); calibrated so Faiss-GPU lands near the paper's ~12.3x over
	// Faiss-CPU on SIFT100M-class workloads.
	Efficiency float64
}

// NewGPU builds the A100 baseline.
func NewGPU(ix *ivf.Index) *GPU {
	return &GPU{Index: ix, Platform: upmem.PlatformGPU(), Efficiency: 0.065}
}

// ErrOOM is returned when the dataset does not fit GPU memory.
type ErrOOM struct {
	NeedBytes float64
	HaveBytes float64
}

func (e *ErrOOM) Error() string {
	return fmt.Sprintf("baseline: GPU OOM: dataset needs %.1f GB, device has %.1f GB",
		e.NeedBytes/1e9, e.HaveBytes/1e9)
}

// ModelQPS prices a GPU run, or fails with ErrOOM for oversized datasets
// (Faiss-GPU requires the dataset fully resident in device memory).
func (g *GPU) ModelQPS(nVectors int64, nQueries, nprobe, k int) (float64, error) {
	ix := g.Index
	c := int(nVectors) / ix.NList
	if c < 1 {
		c = 1
	}
	p := perfmodel.Params{
		N: nVectors, Q: nQueries, D: ix.Dim,
		K: k, P: nprobe, C: c, M: ix.M, CB: ix.CB,
	}
	need := perfmodel.DatasetBytes(p)
	if !g.Platform.Fits(need) {
		return 0, &ErrOOM{NeedBytes: need, HaveBytes: g.Platform.MemCapGB * 1e9}
	}
	costs, err := perfmodel.Costs(p, 1)
	if err != nil {
		return 0, err
	}
	hw := perfmodel.FromPlatform(g.Platform)
	hw.PE *= g.Efficiency
	var total float64
	for ph := upmem.Phase(0); ph < upmem.NumPhases; ph++ {
		if costs[ph].Compute == 0 && costs[ph].IO == 0 {
			continue
		}
		total += perfmodel.PhaseTime(costs[ph], hw)
	}
	return perfmodel.QPS(p, total), nil
}
