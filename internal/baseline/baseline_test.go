package baseline

import (
	"errors"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

func testIndex(t *testing.T) (*ivf.Index, *dataset.Synth) {
	t.Helper()
	s := dataset.Generate(dataset.SynthConfig{
		N: 3000, D: 16, NumQueries: 32, NumClusters: 16, Seed: 9, Noise: 10,
	})
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList: 24, PQ: pq.Config{M: 8, CB: 64}, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, s
}

func TestCPUBaselineRun(t *testing.T) {
	ix, s := testIndex(t)
	b := NewCPU(ix)
	gt := dataset.GroundTruth(s.Base, s.Queries, 10, 0)
	m, got, err := b.Run(s.Queries, s.Base, 12, 10, gt)
	if err != nil {
		t.Fatal(err)
	}
	if m.QPS <= 0 || m.Seconds <= 0 {
		t.Fatalf("bad metrics %+v", m)
	}
	if m.Recall < 0.6 {
		t.Fatalf("CPU baseline recall %v too low", m.Recall)
	}
	if len(got) != s.Queries.N {
		t.Fatalf("got %d result lists", len(got))
	}
}

func TestCPUModelQPSFallsWithNprobe(t *testing.T) {
	ix, _ := testIndex(t)
	b := NewCPU(ix)
	prev := 1e18
	for _, nprobe := range []int{8, 16, 32, 64} {
		qps, err := b.ModelQPS(100_000_000, 1000, nprobe, 10)
		if err != nil {
			t.Fatal(err)
		}
		if qps >= prev {
			t.Fatalf("QPS should fall with nprobe: %v -> %v", prev, qps)
		}
		prev = qps
	}
}

func TestGPUModelFasterThanCPU(t *testing.T) {
	ix, _ := testIndex(t)
	cpu := NewCPU(ix)
	gpu := NewGPU(ix)
	cq, err := cpu.ModelQPS(100_000_000, 1000, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := gpu.ModelQPS(100_000_000, 1000, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	ratio := gq / cq
	// The paper measures Faiss-GPU ~12.33x over Faiss-CPU on SIFT100M-class
	// workloads; accept a generous band around that.
	if ratio < 5 || ratio > 25 {
		t.Fatalf("GPU/CPU QPS ratio %v outside plausible band [5,25]", ratio)
	}
}

func TestGPUOOMOnBillionScale(t *testing.T) {
	ix, _ := testIndex(t)
	gpu := NewGPU(ix)
	if _, err := gpu.ModelQPS(100_000_000, 1000, 32, 10); err != nil {
		t.Fatalf("100M should fit: %v", err)
	}
	// This test index is 16-dim (24 B/vector encoded+raw), so OOM needs 4B
	// vectors; the paper's 128-dim SIFT1B OOMs already at 1B.
	_, err := gpu.ModelQPS(4_000_000_000, 1000, 32, 10)
	if err == nil {
		t.Fatal("4B 16-dim vectors must OOM on an 80GB A100")
	}
	var oom *ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("expected ErrOOM, got %T: %v", err, err)
	}
	if oom.NeedBytes <= oom.HaveBytes {
		t.Fatalf("OOM error inconsistent: %+v", oom)
	}
}
