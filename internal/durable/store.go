package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Options configures a Store.
type Options struct {
	// Dir is the store directory; one engine's durable state lives in
	// one directory (cluster fleets use one subdirectory per shard).
	Dir string
	// Policy is the WAL fsync policy. Zero value is SyncEveryBatch.
	Policy SyncPolicy
	// FS overrides the filesystem (crash-point tests inject a MemFS).
	// Nil means the real filesystem.
	FS FS
}

// ErrExists is returned by Create when the directory already holds a
// store (use Open + recovery instead of re-creating).
var ErrExists = errors.New("durable: store already exists")

// ErrNotExists is returned by Open when the directory holds no store.
var ErrNotExists = errors.New("durable: no store in directory")

// Store owns one directory of durable state: the manifest, the current
// snapshot, and the live WAL. It is not safe for concurrent use; the
// serving layer already serializes mutations at the batch boundary and
// appends from there.
//
// Checkpoint ordering is the heart of crash atomicity:
//
//  1. write snap-(seq+1) via temp + fsync + rename
//  2. create and sync wal-(seq+1) (header only)
//  3. atomically replace MANIFEST with {seq+1, snap, wal}
//  4. best-effort remove the old snapshot and WAL
//
// A crash before step 3 leaves the old manifest naming the old intact
// pair; after step 3, the new pair. The manifest names both files, so
// recovery can never mix generations.
type Store struct {
	fs     FS
	dir    string
	policy SyncPolicy
	man    Manifest
	wal    *WAL
}

func (o Options) fsys() FS {
	if o.FS != nil {
		return o.FS
	}
	return OS{}
}

// Create initializes a new store in opt.Dir from an initial snapshot
// (written by the snapshot callback) and opens a fresh WAL for
// appending. Fails with ErrExists if a manifest is already present.
func Create(opt Options, snapshot func(w io.Writer) error) (*Store, error) {
	fsys := opt.fsys()
	if err := fsys.MkdirAll(opt.Dir); err != nil {
		return nil, err
	}
	if _, err := fsys.ReadFile(filepath.Join(opt.Dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrExists, opt.Dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	st := &Store{fs: fsys, dir: opt.Dir, policy: opt.Policy}
	if err := st.checkpoint(snapshot); err != nil {
		return nil, err
	}
	return st, nil
}

// Open reads the manifest of an existing store for recovery. The
// returned store has no live WAL: read the snapshot and replay
// WALRecords, then call Checkpoint — which rotates to a fresh log —
// before appending. (Appending to a possibly-torn tail is never done.)
func Open(opt Options) (*Store, error) {
	fsys := opt.fsys()
	man, err := readManifest(fsys, filepath.Join(opt.Dir, ManifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotExists, opt.Dir)
		}
		return nil, err
	}
	return &Store{fs: fsys, dir: opt.Dir, policy: opt.Policy, man: man}, nil
}

// Manifest returns the current manifest.
func (st *Store) Manifest() Manifest { return st.man }

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// Policy returns the WAL sync policy.
func (st *Store) Policy() SyncPolicy { return st.policy }

// SnapshotBytes reads the current snapshot file whole.
func (st *Store) SnapshotBytes() ([]byte, error) {
	return st.fs.ReadFile(filepath.Join(st.dir, st.man.Snapshot))
}

// WALRecords strictly decodes the current WAL and returns the valid
// record prefix; a torn or corrupt tail (from a crash) is silently
// truncated, per the acknowledged-means-synced contract.
func (st *Store) WALRecords() ([][]byte, error) {
	data, err := st.fs.ReadFile(filepath.Join(st.dir, st.man.WAL))
	if err != nil {
		return nil, err
	}
	recs, _, err := DecodeWAL(data)
	return recs, err
}

// Append writes one mutation record to the live WAL. Under
// SyncEveryRecord it is durable on return; under SyncEveryBatch after
// the next BatchEnd. A store obtained from Open has no live WAL until
// Checkpoint rotates one in.
func (st *Store) Append(payload []byte) error {
	if st.wal == nil {
		return fmt.Errorf("durable: store has no live WAL (recover then Checkpoint first)")
	}
	return st.wal.Append(payload)
}

// BatchEnd marks a batch durability point on the live WAL.
func (st *Store) BatchEnd() error {
	if st.wal == nil {
		return fmt.Errorf("durable: store has no live WAL (recover then Checkpoint first)")
	}
	return st.wal.BatchEnd()
}

// Checkpoint writes a new snapshot and rotates the WAL atomically (see
// the ordering on Store). On success the old generation's files are
// removed best-effort; on failure the store keeps appending to the old
// generation, which remains fully intact.
func (st *Store) Checkpoint(snapshot func(w io.Writer) error) error {
	return st.checkpoint(snapshot)
}

func (st *Store) checkpoint(snapshot func(w io.Writer) error) error {
	seq := st.man.Seq + 1
	next := Manifest{
		Seq:      seq,
		Snapshot: fmt.Sprintf("snap-%08d", seq),
		WAL:      fmt.Sprintf("wal-%08d", seq),
	}
	if err := WriteFileAtomic(st.fs, filepath.Join(st.dir, next.Snapshot), snapshot); err != nil {
		return err
	}
	wal, err := createWAL(st.fs, filepath.Join(st.dir, next.WAL), st.policy)
	if err != nil {
		st.fs.Remove(filepath.Join(st.dir, next.Snapshot))
		return err
	}
	if err := writeManifest(st.fs, filepath.Join(st.dir, ManifestName), next); err != nil {
		wal.Close()
		st.fs.Remove(filepath.Join(st.dir, next.WAL))
		st.fs.Remove(filepath.Join(st.dir, next.Snapshot))
		return err
	}
	prev, prevWAL := st.man, st.wal
	st.man, st.wal = next, wal
	if prevWAL != nil {
		prevWAL.Close()
	}
	if prev.Snapshot != "" {
		st.fs.Remove(filepath.Join(st.dir, prev.Snapshot))
	}
	if prev.WAL != "" {
		st.fs.Remove(filepath.Join(st.dir, prev.WAL))
	}
	return nil
}

// Close syncs (unless SyncNever) and closes the live WAL, if any.
func (st *Store) Close() error {
	if st.wal == nil {
		return nil
	}
	var err error
	if st.policy != SyncNever {
		err = st.wal.Sync()
	}
	if cerr := st.wal.Close(); err == nil {
		err = cerr
	}
	st.wal = nil
	return err
}
