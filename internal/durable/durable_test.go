package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, w *WAL, payload []byte) {
	t.Helper()
	if err := w.Append(payload); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	w, err := createWAL(fs, "log", SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma"), {0, 1, 2, 255}}
	for _, p := range want {
		mustAppend(t, w, p)
	}
	data, err := fs.ReadFile("log")
	if err != nil {
		t.Fatal(err)
	}
	recs, valid, err := DecodeWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(data) {
		t.Fatalf("valid=%d, want %d (no torn tail)", valid, len(data))
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestWALTruncatesTornTail(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	w, err := createWAL(fs, "log", SyncEveryRecord)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, []byte("first"))
	mustAppend(t, w, []byte("second"))
	good, _ := fs.ReadFile("log")

	cases := map[string][]byte{
		"half frame":     good[:len(good)-3], // cut into second record's payload
		"frame only":     good[:len(good)-6], // length present, payload missing
		"one extra byte": append(append([]byte{}, good...), 0x7f),
		"flipped bit": func() []byte {
			b := append([]byte{}, good...)
			b[len(b)-1] ^= 0x01 // corrupt second payload's last byte
			return b
		}(),
	}
	for name, data := range cases {
		recs, valid, err := DecodeWAL(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) < 1 || !bytes.Equal(recs[0], []byte("first")) {
			t.Fatalf("%s: lost the intact first record (%d recs)", name, len(recs))
		}
		if len(recs) > 2 {
			t.Fatalf("%s: invented records (%d)", name, len(recs))
		}
		if valid > len(data) {
			t.Fatalf("%s: valid=%d beyond %d bytes", name, valid, len(data))
		}
	}

	if _, _, err := DecodeWAL([]byte("not a wal")); !errors.Is(err, ErrWALHeader) {
		t.Fatalf("bad header error = %v, want ErrWALHeader", err)
	}
	if _, _, err := DecodeWAL(nil); !errors.Is(err, ErrWALHeader) {
		t.Fatalf("empty error = %v, want ErrWALHeader", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{Seq: 42, Snapshot: "snap-00000042", WAL: "wal-00000042"}
	enc := m.encode()
	got, err := decodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip %+v != %+v", got, m)
	}
	for i := range enc {
		bad := append([]byte{}, enc...)
		bad[i] ^= 0x10
		if _, err := decodeManifest(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, err := decodeManifest(enc[:10]); err == nil {
		t.Fatal("truncated manifest went undetected")
	}
}

func TestMutationRecordRoundTrip(t *testing.T) {
	ids := []int32{7, -1, 1 << 20}
	vecs := make([]byte, 3*5)
	for i := range vecs {
		vecs[i] = byte(i * 13)
	}
	ins, err := EncodeInsert(ids, 5, vecs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMutation(ins)
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != OpInsert || m.Dim != 5 || len(m.IDs) != 3 || !bytes.Equal(m.Vecs, vecs) {
		t.Fatalf("insert round trip: %+v", m)
	}
	for i, id := range ids {
		if m.IDs[i] != id {
			t.Fatalf("id %d = %d, want %d", i, m.IDs[i], id)
		}
	}

	del := EncodeDelete(ids[:2])
	m, err = DecodeMutation(del)
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != OpDelete || len(m.IDs) != 2 || m.IDs[0] != 7 || m.IDs[1] != -1 {
		t.Fatalf("delete round trip: %+v", m)
	}

	if _, err := EncodeInsert(ids, 4, vecs); err == nil {
		t.Fatal("mismatched vecs length accepted")
	}
	for _, bad := range [][]byte{nil, {OpInsert}, {99, 0, 0, 0, 0}, ins[:len(ins)-1], append(append([]byte{}, del...), 0)} {
		if _, err := DecodeMutation(bad); err == nil {
			t.Fatalf("bad record %v accepted", bad)
		}
	}
}

func TestSyncPolicyString(t *testing.T) {
	for p, want := range map[SyncPolicy]string{SyncEveryBatch: "every-batch", SyncEveryRecord: "every-record", SyncNever: "off", SyncPolicy(9): "SyncPolicy(9)"} {
		if got := p.String(); got != want {
			t.Fatalf("SyncPolicy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

// TestWriteFileAtomicCrashMatrix overwrites an existing good file at
// every possible crash point and checks the reader always sees either
// the complete old content or the complete new content — the property
// the in-place os.Create save path lacked.
func TestWriteFileAtomicCrashMatrix(t *testing.T) {
	oldContent := []byte("old-good-content")
	newContent := bytes.Repeat([]byte("new!"), 64)
	scenario := func(fs *MemFS) error {
		return WriteFileAtomic(fs, "file", func(w io.Writer) error {
			_, err := w.Write(newContent)
			return err
		})
	}
	seed := func(fs *MemFS) {
		if err := WriteFileAtomic(fs, "file", func(w io.Writer) error {
			_, err := w.Write(oldContent)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	dry := NewMemFS(FaultPlan{})
	seed(dry)
	opsBefore := dry.Ops()
	if err := scenario(dry); err != nil {
		t.Fatal(err)
	}
	total := dry.Ops()

	for _, torn := range []bool{false, true} {
		for op := opsBefore + 1; op <= total; op++ {
			fs := NewMemFS(FaultPlan{CrashAtOp: op, TornWrite: torn})
			seed(fs)
			err := scenario(fs)
			if !fs.Crashed() {
				t.Fatalf("op %d: expected a crash", op)
			}
			if err == nil {
				t.Fatalf("op %d: crash not surfaced", op)
			}
			fs.Reboot()
			got, err := fs.ReadFile("file")
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if !bytes.Equal(got, oldContent) && !bytes.Equal(got, newContent) {
				t.Fatalf("op %d torn=%v: torn hybrid %q", op, torn, got)
			}
		}
	}
}

// TestStoreCrashMatrix drives a full store life cycle — create with
// snapshot A, append three synced records, checkpoint to snapshot B,
// append one more — crashing at every mutating filesystem operation.
// After reboot + Open, the recovered {snapshot, WAL prefix} must be a
// consistent generation (never snapshot B with generation-1 records or
// vice versa), and every record acknowledged before the crash must be
// present.
func TestStoreCrashMatrix(t *testing.T) {
	snapA, snapB := []byte("snapshot-A"), []byte("snapshot-B")
	gen1 := [][]byte{[]byte("r1"), []byte("r2"), []byte("r3")}
	gen2 := [][]byte{[]byte("r4")}
	writeBytes := func(b []byte) func(io.Writer) error {
		return func(w io.Writer) error { _, err := w.Write(b); return err }
	}

	// acked collects records that were durably acknowledged before the
	// crash (Append returned nil under SyncEveryRecord).
	scenario := func(fs *MemFS, acked *[][]byte) error {
		st, err := Create(Options{Dir: "store", Policy: SyncEveryRecord, FS: fs}, writeBytes(snapA))
		if err != nil {
			return err
		}
		for _, r := range gen1 {
			if err := st.Append(r); err != nil {
				return err
			}
			*acked = append(*acked, r)
		}
		if err := st.Checkpoint(writeBytes(snapB)); err != nil {
			return err
		}
		*acked = nil // checkpoint folded gen-1 records into snapshot B
		for _, r := range gen2 {
			if err := st.Append(r); err != nil {
				return err
			}
			*acked = append(*acked, r)
		}
		return st.Close()
	}

	dry := NewMemFS(FaultPlan{})
	var drop [][]byte
	if err := scenario(dry, &drop); err != nil {
		t.Fatal(err)
	}
	total := dry.Ops()
	if total < 10 {
		t.Fatalf("scenario too small for a meaningful matrix: %d ops", total)
	}

	for _, torn := range []bool{false, true} {
		for op := 1; op <= total; op++ {
			fs := NewMemFS(FaultPlan{CrashAtOp: op, TornWrite: torn})
			var acked [][]byte
			if err := scenario(fs, &acked); err == nil {
				t.Fatalf("op %d: crash not surfaced", op)
			}
			fs.Reboot()

			st, err := Open(Options{Dir: "store", FS: fs})
			if errors.Is(err, ErrNotExists) {
				// Crashed before the very first manifest landed: the
				// store never existed, so nothing was ever acked.
				if len(acked) != 0 {
					t.Fatalf("op %d: %d acked records but no store", op, len(acked))
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d: Open: %v", op, err)
			}
			snap, err := st.SnapshotBytes()
			if err != nil {
				t.Fatalf("op %d: snapshot: %v", op, err)
			}
			recs, err := st.WALRecords()
			if err != nil {
				t.Fatalf("op %d: WAL: %v", op, err)
			}

			var okPrefixes [][][]byte
			switch {
			case bytes.Equal(snap, snapA):
				okPrefixes = prefixes(gen1)
			case bytes.Equal(snap, snapB):
				okPrefixes = prefixes(gen2)
			default:
				t.Fatalf("op %d torn=%v: torn snapshot %q", op, torn, snap)
			}
			if !containsPrefix(okPrefixes, recs) {
				t.Fatalf("op %d torn=%v: snapshot %q with records %q is not a valid generation prefix", op, torn, snap, recs)
			}
			// Durability: acked records of the surviving generation
			// must all be present. (acked is reset at checkpoint, so
			// it always refers to the newest generation the scenario
			// reached; if the crash rolled back to generation 1, the
			// checkpoint never committed and acked still holds gen-1
			// appends.)
			for i, r := range acked {
				if i >= len(recs) || !bytes.Equal(recs[i], r) {
					t.Fatalf("op %d torn=%v: acked record %d (%q) lost; recovered %q from snapshot %q", op, torn, i, r, recs, snap)
				}
			}
		}
	}
}

func prefixes(recs [][]byte) [][][]byte {
	out := make([][][]byte, 0, len(recs)+1)
	for i := 0; i <= len(recs); i++ {
		out = append(out, recs[:i])
	}
	return out
}

func containsPrefix(prefixes [][][]byte, recs [][]byte) bool {
	for _, p := range prefixes {
		if len(p) != len(recs) {
			continue
		}
		ok := true
		for i := range p {
			if !bytes.Equal(p[i], recs[i]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestStoreSyncFailure pins error-on-sync handling: a failed sync under
// SyncEveryRecord surfaces from Append (the mutation must not be
// acknowledged) and the store keeps working afterwards.
func TestStoreSyncFailure(t *testing.T) {
	fs := NewMemFS(FaultPlan{FailSyncAt: 4}) // 1: snap temp, 2: wal header, 3: manifest temp, 4: first record
	st, err := Create(Options{Dir: "store", Policy: SyncEveryRecord, FS: fs}, func(w io.Writer) error {
		_, err := w.Write([]byte("snap"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]byte("doomed")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("Append under failing sync = %v, want ErrInjectedSync", err)
	}
	if err := st.Append([]byte("fine")); err != nil {
		t.Fatalf("Append after sync recovered: %v", err)
	}
	recs, err := st.WALRecords()
	if err != nil {
		t.Fatal(err)
	}
	// Both byte sequences are in the log (the write preceded the failed
	// sync); what the failure guarantees is only that "doomed" was not
	// acknowledged — after a crash it may or may not survive.
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

func TestStoreCreateTwiceFails(t *testing.T) {
	fs := NewMemFS(FaultPlan{})
	snap := func(w io.Writer) error { _, err := w.Write([]byte("s")); return err }
	if _, err := Create(Options{Dir: "d", FS: fs}, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(Options{Dir: "d", FS: fs}, snap); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create = %v, want ErrExists", err)
	}
	if _, err := Open(Options{Dir: "elsewhere", FS: fs}); !errors.Is(err, ErrNotExists) {
		t.Fatalf("Open of empty dir = %v, want ErrNotExists", err)
	}
}

// TestStoreOnDisk exercises the OS-backed FS end to end in a temp dir:
// create, append, reopen, replay, checkpoint, reopen again.
func TestStoreOnDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := Create(Options{Dir: dir, Policy: SyncEveryBatch}, func(w io.Writer) error {
		_, err := w.Write([]byte("disk-snap"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.BatchEnd(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Dir: dir, Policy: SyncEveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := re.SnapshotBytes()
	if err != nil || !bytes.Equal(snap, []byte("disk-snap")) {
		t.Fatalf("snapshot %q err %v", snap, err)
	}
	recs, err := re.WALRecords()
	if err != nil || len(recs) != 3 {
		t.Fatalf("%d records err %v", len(recs), err)
	}
	if err := re.Checkpoint(func(w io.Writer) error {
		_, err := w.Write([]byte("disk-snap-2"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if re.Manifest().Seq != 2 {
		t.Fatalf("seq %d after checkpoint, want 2", re.Manifest().Seq)
	}
	if err := re.Append([]byte("post-rotate")); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 { // MANIFEST + snap-2 + wal-2; generation 1 removed
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("dir holds %v, want exactly 3 files", names)
	}
}

// FuzzWALDecode is the WAL-framing analogue of ivf's FuzzAppendLog:
// arbitrary bytes never panic the strict decoder, the decoded prefix is
// re-encodable to an image that decodes to the same records, and valid
// never exceeds the input length.
func FuzzWALDecode(f *testing.F) {
	fs := NewMemFS(FaultPlan{})
	w, _ := createWAL(fs, "seed", SyncNever)
	w.Append([]byte("hello"))
	w.Append([]byte{})
	w.Append(bytes.Repeat([]byte{0xab}, 300))
	seed, _ := fs.ReadFile("seed")
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte{})
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	f.Add(hdr[:])
	f.Add(append(hdr[:], 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := DecodeWAL(data)
		if err != nil {
			return
		}
		if valid > len(data) {
			t.Fatalf("valid %d > len %d", valid, len(data))
		}
		// Re-encode the decoded records and decode again: must be
		// lossless and fully valid.
		re := NewMemFS(FaultPlan{})
		w, err := createWAL(re, "re", SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		img, _ := re.ReadFile("re")
		recs2, valid2, err := DecodeWAL(img)
		if err != nil {
			t.Fatal(err)
		}
		if valid2 != len(img) || len(recs2) != len(recs) {
			t.Fatalf("re-decode: %d/%d records, valid %d/%d", len(recs2), len(recs), valid2, len(img))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], recs2[i]) {
				t.Fatalf("record %d changed across re-encode", i)
			}
		}
		// Sanity: each returned payload's CRC must match what the image
		// claims at its frame (the decoder only accepts checksummed
		// prefixes).
		off := walHeaderSize
		for i, r := range recs {
			if crc := binary.LittleEndian.Uint32(data[off+4:]); crc32.ChecksumIEEE(r) != crc {
				t.Fatalf("record %d accepted with mismatched crc", i)
			}
			off += recFrameSize + len(r)
		}
	})
}
