// Package durable is the persistence seam for the serving stack: a
// checksummed write-ahead log for mutations, atomic checkpointed
// snapshots, and a manifest that binds the two so a process can restart
// bit-identically after dying at any instant.
//
// The package deliberately imports nothing from the rest of the module:
// ivf, core, serve, and cluster all layer on top of it, so it must sit
// at the bottom of the import graph. Everything that touches storage
// goes through the FS interface; production code uses OS, and the
// crash-point tests use MemFS, which models the byte-level durability
// contract of a journaled filesystem and can kill the simulated machine
// at any mutating operation.
package durable

import (
	"errors"
	"io"
	"os"
	"sync"
)

// ErrCrashed is returned by every MemFS operation after an injected
// crash fires: the simulated machine is dead until Reboot is called.
var ErrCrashed = errors.New("durable: filesystem crashed (injected)")

// ErrInjectedSync is the error returned by a Sync call selected by
// FaultPlan.FailSyncAt. The sync does not happen; the process survives.
var ErrInjectedSync = errors.New("durable: fsync failed (injected)")

// File is the writable handle surface the durability layer needs:
// sequential writes, an explicit durability barrier, and close.
type File interface {
	io.Writer
	// Sync blocks until every byte written so far would survive a
	// crash (fsync).
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations used by Store, WAL, and the
// atomic-write helper. Implementations must make Rename atomic with
// respect to crashes: after a crash, a reader sees either the old or
// the new binding of the name, never a mixture.
type FS interface {
	MkdirAll(dir string) error
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns the full contents of name. A missing file is
	// reported with an error satisfying errors.Is(err, os.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	Rename(oldname, newname string) error
	Remove(name string) error
}

// OS is the production FS backed by the real filesystem.
type OS struct{}

func (OS) MkdirAll(dir string) error             { return os.MkdirAll(dir, 0o755) }
func (OS) ReadFile(name string) ([]byte, error)  { return os.ReadFile(name) }
func (OS) Rename(oldname, newname string) error  { return os.Rename(oldname, newname) }
func (OS) Remove(name string) error              { return os.Remove(name) }
func (OS) Create(name string) (File, error)      { return os.Create(name) }
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// FaultPlan is a deterministic crash schedule for MemFS, in the same
// call-counter style as internal/fault: the n-th mutating operation
// (Create, OpenAppend, Write, Sync, Rename, Remove — counted across
// the whole filesystem) either kills the machine or fails. Running the
// same workload twice against the same plan injects at the same point.
type FaultPlan struct {
	// CrashAtOp kills the machine at the CrashAtOp-th mutating
	// operation (1-based): the operation does not happen, every file
	// is truncated to its durable (synced) content, and all further
	// calls return ErrCrashed until Reboot. 0 disables.
	CrashAtOp int
	// TornWrite modifies CrashAtOp when the fatal operation is a
	// Write: the first half of the buffer reaches durable storage
	// before the machine dies (a torn record — the in-flight sector
	// that made it to the platter), instead of nothing.
	TornWrite bool
	// FailSyncAt makes the FailSyncAt-th Sync call (1-based, counted
	// separately) return ErrInjectedSync without syncing and without
	// crashing. 0 disables.
	FailSyncAt int
}

// MemFS is an in-memory FS with an explicit crash model for the
// crash-point matrix tests. Each file tracks its written content and a
// durable watermark advanced only by Sync; a crash truncates every
// file to the watermark, so bytes written but never synced are lost.
// Rename is modeled as journaled metadata: atomic and immediately
// durable (file *contents* still need Sync — renaming an unsynced temp
// file over a good snapshot loses the snapshot, which is exactly the
// failure mode WriteFileAtomic's sync-before-rename exists to prevent).
type MemFS struct {
	mu      sync.Mutex
	plan    FaultPlan
	files   map[string]*memFile
	ops     int
	syncs   int
	crashed bool
}

type memFile struct {
	data   []byte
	synced int // durable prefix length: data[:synced] survives a crash
}

// NewMemFS returns an empty MemFS governed by plan.
func NewMemFS(plan FaultPlan) *MemFS {
	return &MemFS{plan: plan, files: map[string]*memFile{}}
}

// Ops reports the number of mutating operations observed so far. A
// fault-free dry run of a workload yields the total T; re-running the
// identical workload with CrashAtOp=i for every i in 1..T visits every
// crash point.
func (fs *MemFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the injected crash has fired.
func (fs *MemFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Reboot brings the machine back after a crash: files stay truncated
// to their durable content (that happened at crash time), and
// operations work again. The op counter keeps running so a second
// crash point could be scheduled by a fresh plan.
func (fs *MemFS) Reboot() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = false
}

// step accounts one mutating operation and fires the scheduled crash.
// Returns ErrCrashed when the machine is (or just became) dead, and
// reports whether this very call is the fatal one (for torn writes).
func (fs *MemFS) step() (fatal bool, err error) {
	if fs.crashed {
		return false, ErrCrashed
	}
	fs.ops++
	if fs.plan.CrashAtOp > 0 && fs.ops == fs.plan.CrashAtOp {
		fs.crash()
		return true, ErrCrashed
	}
	return false, nil
}

// crash truncates every file to its durable content.
func (fs *MemFS) crash() {
	fs.crashed = true
	for _, f := range fs.files {
		f.data = f.data[:f.synced]
	}
}

func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	return nil // directories are implicit
}

func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return nil, err
	}
	f := &memFile{}
	fs.files[name] = f
	return &memHandle{fs: fs, f: f}, nil
}

func (fs *MemFS) OpenAppend(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return nil, err
	}
	f, ok := fs.files[name]
	if !ok {
		f = &memFile{}
		fs.files[name] = f
	}
	return &memHandle{fs: fs, f: f}, nil
}

func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return err
	}
	f, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(fs.files, oldname)
	fs.files[newname] = f
	return nil
}

func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step(); err != nil {
		return err
	}
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	fatal, err := h.fs.step()
	if err != nil {
		if fatal && h.fs.plan.TornWrite && len(p) > 0 {
			// The in-flight half of this write reached the platter
			// before the machine died: it lands after the durable
			// prefix (unsynced earlier writes are already gone).
			torn := p[:len(p)/2]
			h.f.data = append(h.f.data, torn...)
			h.f.synced = len(h.f.data)
		}
		return 0, err
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if _, err := h.fs.step(); err != nil {
		return err
	}
	h.fs.syncs++
	if h.fs.plan.FailSyncAt > 0 && h.fs.syncs == h.fs.plan.FailSyncAt {
		return ErrInjectedSync
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
