package durable

import (
	"bufio"
	"io"
)

// WriteFileAtomic writes a file so that a crash at any instant leaves
// either the complete old content or the complete new content at name,
// never a prefix: the payload is written to a temp file, synced to
// durable storage, and only then renamed over name. This is the shared
// helper behind snapshot checkpoints, manifest swaps, and ivf.SaveFile.
func WriteFileAtomic(fsys FS, name string, write func(w io.Writer) error) error {
	tmp := name + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := write(bw); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, name)
}
