package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Manifest is the one mutable pointer in a store directory: it names
// the current snapshot and the WAL that continues it. It is always
// replaced atomically (WriteFileAtomic), so the {snapshot, WAL} pair
// switches as a unit — recovery never pairs a new snapshot with an old
// log or vice versa.
type Manifest struct {
	// Seq is the checkpoint sequence number, bumped by every
	// checkpoint; snapshot and WAL file names embed it.
	Seq uint64
	// Snapshot and WAL are file names relative to the store dir.
	Snapshot string
	// WAL holds mutations appended after Snapshot was taken.
	WAL string
}

// Manifest layout: magic u32 "DRMF" | ver u32 | seq u64 |
// lenSnap u32 | snap | lenWAL u32 | wal | crc u32 (of all prior bytes).
const (
	manifestMagic   = 0x44524d46
	manifestVersion = 1
	// ManifestName is the manifest's file name inside a store dir.
	ManifestName = "MANIFEST"
)

func (m Manifest) encode() []byte {
	buf := make([]byte, 0, 32+len(m.Snapshot)+len(m.WAL))
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	put32(manifestMagic)
	put32(manifestVersion)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], m.Seq)
	buf = append(buf, u64[:]...)
	put32(uint32(len(m.Snapshot)))
	buf = append(buf, m.Snapshot...)
	put32(uint32(len(m.WAL)))
	buf = append(buf, m.WAL...)
	put32(crc32.ChecksumIEEE(buf))
	return buf
}

func decodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) < 24 {
		return m, fmt.Errorf("durable: manifest too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return m, fmt.Errorf("durable: manifest checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(body[0:]); v != manifestMagic {
		return m, fmt.Errorf("durable: bad manifest magic %#x", v)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != manifestVersion {
		return m, fmt.Errorf("durable: unsupported manifest version %d", v)
	}
	m.Seq = binary.LittleEndian.Uint64(body[8:])
	off := 16
	readStr := func() (string, error) {
		if len(body)-off < 4 {
			return "", fmt.Errorf("durable: manifest truncated")
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if n < 0 || n > len(body)-off {
			return "", fmt.Errorf("durable: manifest string length %d out of range", n)
		}
		s := string(body[off : off+n])
		off += n
		return s, nil
	}
	var err error
	if m.Snapshot, err = readStr(); err != nil {
		return m, err
	}
	if m.WAL, err = readStr(); err != nil {
		return m, err
	}
	if off != len(body) {
		return m, fmt.Errorf("durable: %d trailing manifest bytes", len(body)-off)
	}
	return m, nil
}

func writeManifest(fsys FS, path string, m Manifest) error {
	enc := m.encode()
	return WriteFileAtomic(fsys, path, func(w io.Writer) error {
		_, err := w.Write(enc)
		return err
	})
}

func readManifest(fsys FS, path string) (Manifest, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	return decodeManifest(data)
}
