package durable

import (
	"encoding/binary"
	"fmt"
)

// Mutation record payloads (they ride inside WAL record frames, which
// supply length and checksum):
//
//	insert: op u8 = 1 | n u32 | dim u32 | ids n×i32 | vecs n*dim bytes
//	delete: op u8 = 2 | n u32 | ids n×i32
//
// Vectors are logged raw (uint8 components, the corpus element type):
// replay re-routes and re-encodes them with the frozen quantizers, which
// is deterministic, so the recovered overlay is bit-identical to the
// pre-crash one.
const (
	// OpInsert identifies an insert mutation record.
	OpInsert byte = 1
	// OpDelete identifies a delete mutation record.
	OpDelete byte = 2
)

// Mutation is a decoded WAL mutation record.
type Mutation struct {
	Op  byte
	IDs []int32
	// Dim and Vecs are set for OpInsert: len(Vecs) == len(IDs)*Dim.
	Dim  int
	Vecs []byte
}

// EncodeInsert builds an insert record for len(ids) vectors of dim
// components stored row-major in vecs.
func EncodeInsert(ids []int32, dim int, vecs []byte) ([]byte, error) {
	if len(vecs) != len(ids)*dim {
		return nil, fmt.Errorf("durable: insert record: %d vector bytes for %d ids × dim %d", len(vecs), len(ids), dim)
	}
	buf := make([]byte, 0, 9+4*len(ids)+len(vecs))
	buf = append(buf, OpInsert)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return append(buf, vecs...), nil
}

// EncodeDelete builds a delete record for ids.
func EncodeDelete(ids []int32) []byte {
	buf := make([]byte, 0, 5+4*len(ids))
	buf = append(buf, OpDelete)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

// DecodeMutation strictly decodes a mutation record: unknown ops,
// short payloads, and trailing bytes are all errors (the WAL frame
// already checksummed the payload, so any mismatch here means a
// version skew or an encoder bug, not disk corruption). Vecs aliases
// rec.
func DecodeMutation(rec []byte) (Mutation, error) {
	var m Mutation
	if len(rec) < 5 {
		return m, fmt.Errorf("durable: mutation record too short (%d bytes)", len(rec))
	}
	m.Op = rec[0]
	n := int(binary.LittleEndian.Uint32(rec[1:]))
	off := 5
	switch m.Op {
	case OpInsert:
		if len(rec)-off < 4 {
			return m, fmt.Errorf("durable: insert record truncated")
		}
		m.Dim = int(binary.LittleEndian.Uint32(rec[off:]))
		off += 4
		if n < 0 || m.Dim <= 0 || n > (len(rec)-off)/4 {
			return m, fmt.Errorf("durable: insert record: bad n=%d dim=%d", n, m.Dim)
		}
	case OpDelete:
		if n < 0 || n > (len(rec)-off)/4 {
			return m, fmt.Errorf("durable: delete record: bad n=%d", n)
		}
	default:
		return m, fmt.Errorf("durable: unknown mutation op %d", m.Op)
	}
	m.IDs = make([]int32, n)
	for i := range m.IDs {
		m.IDs[i] = int32(binary.LittleEndian.Uint32(rec[off:]))
		off += 4
	}
	if m.Op == OpInsert {
		want := n * m.Dim
		if len(rec)-off != want {
			return m, fmt.Errorf("durable: insert record: %d vector bytes, want %d", len(rec)-off, want)
		}
		m.Vecs = rec[off : off+want]
	} else if off != len(rec) {
		return m, fmt.Errorf("durable: %d trailing bytes in delete record", len(rec)-off)
	}
	return m, nil
}
