package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL file layout (all integers little-endian):
//
//	magic  u32 = 0x4452574c "DRWL"
//	ver    u32 = 1
//	records:
//	  len  u32   payload length
//	  crc  u32   IEEE CRC32 of payload
//	  payload [len]byte
//
// Records are appended, never rewritten; durability is governed by the
// SyncPolicy. DecodeWAL is strict: it stops at the first record whose
// frame is short or whose checksum fails, returning the valid prefix —
// a torn tail from a crash is truncated, never half-applied.
const (
	walMagic      = 0x4452574c
	walVersion    = 1
	walHeaderSize = 8
	recFrameSize  = 8
)

// SyncPolicy controls when appended WAL records become durable — the
// point at which a mutation may be acknowledged as surviving a crash.
type SyncPolicy int

const (
	// SyncEveryBatch syncs once per BatchEnd (the serve batch
	// boundary): every acknowledged mutation batch is durable.
	SyncEveryBatch SyncPolicy = iota
	// SyncEveryRecord syncs after every single record.
	SyncEveryRecord
	// SyncNever leaves durability to the OS; a crash may lose
	// acknowledged mutations. For benchmarking the fsync overhead.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryBatch:
		return "every-batch"
	case SyncEveryRecord:
		return "every-record"
	case SyncNever:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// WAL is an append-only checksummed record log. Not safe for
// concurrent use; callers serialize appends (serve.Server already
// funnels mutations through one batch boundary).
type WAL struct {
	f      File
	policy SyncPolicy
}

// createWAL creates name, writes and syncs the header, and returns the
// open log.
func createWAL(fsys FS, name string, policy SyncPolicy) (*WAL, error) {
	f, err := fsys.Create(name)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, policy: policy}, nil
}

// openAppendWAL reopens an existing log for appending at its end. The
// caller is responsible for having validated (and, after a crash,
// truncated) the tail; Store does this by rotating to a fresh log on
// recovery instead of appending to a possibly-torn one.
func openAppendWAL(fsys FS, name string, policy SyncPolicy) (*WAL, error) {
	f, err := fsys.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, policy: policy}, nil
}

// Append frames and writes one record. Under SyncEveryRecord the
// record is durable when Append returns; under SyncEveryBatch it is
// durable after the next BatchEnd.
func (w *WAL) Append(payload []byte) error {
	var frame [recFrameSize]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	buf := make([]byte, 0, recFrameSize+len(payload))
	buf = append(buf, frame[:]...)
	buf = append(buf, payload...)
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if w.policy == SyncEveryRecord {
		return w.f.Sync()
	}
	return nil
}

// BatchEnd marks a durability point under SyncEveryBatch.
func (w *WAL) BatchEnd() error {
	if w.policy == SyncEveryBatch {
		return w.f.Sync()
	}
	return nil
}

// Sync forces durability regardless of policy.
func (w *WAL) Sync() error { return w.f.Sync() }

// Close closes the underlying file without syncing.
func (w *WAL) Close() error { return w.f.Close() }

// ErrWALHeader reports a log whose header (not tail) is unreadable —
// wrong magic, wrong version, or shorter than a header. Unlike a torn
// tail this is not survivable truncation damage; the file is not a WAL.
var ErrWALHeader = errors.New("durable: bad WAL header")

// DecodeWAL strictly decodes a WAL image: it validates the header,
// then walks records until the first short frame or checksum mismatch
// and returns every record before it. valid is the byte offset of the
// decoded prefix (header included) — everything past it is torn/corrupt
// tail. Payload slices alias data.
func DecodeWAL(data []byte) (recs [][]byte, valid int, err error) {
	if len(data) < walHeaderSize {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrWALHeader, len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != walMagic {
		return nil, 0, fmt.Errorf("%w: magic %#x", ErrWALHeader, m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != walVersion {
		return nil, 0, fmt.Errorf("%w: version %d", ErrWALHeader, v)
	}
	off := walHeaderSize
	for {
		if len(data)-off < recFrameSize {
			return recs, off, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n < 0 || n > len(data)-off-recFrameSize {
			return recs, off, nil // torn: frame promises more than exists
		}
		payload := data[off+recFrameSize : off+recFrameSize+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, nil // corrupt record: stop here
		}
		recs = append(recs, payload)
		off += recFrameSize + n
	}
}
