// Package testutil holds the corpus/index fixture constructor shared by the
// core, serve, cluster and graph test suites. Each suite used to carry its
// own copy of the same synthesize-then-build dance with slightly different
// constants; the constants are now data (FixtureSpec) and the dance lives
// here once. The package deliberately imports only leaf packages
// (dataset/ivf/pq) so that core's in-package tests — which cannot import
// anything that imports core — can use it too.
package testutil

import (
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

// FixtureSpec names the degrees of freedom the suites actually vary. Zero
// values fall back to the generator/builder defaults (see dataset.SynthConfig
// and ivf.BuildConfig); suites keep their historical constants by spelling
// them out, so fixture contents are bit-identical to the pre-dedup copies.
type FixtureSpec struct {
	Name    string
	N       int
	D       int
	Queries int

	// Corpus shape.
	NumClusters int
	Noise       float64
	ZipfS       float64
	QuerySkew   float64
	Seed        int64

	// Index shape. NList == 0 skips the index build entirely (corpus-only
	// fixtures, e.g. the graph backend's).
	NList       int
	M, CB       int
	KMeansIters int
	TrainSample int
	BuildSeed   int64
}

// Synth generates the spec's synthetic corpus (no index).
func Synth(spec FixtureSpec) *dataset.Synth {
	return dataset.Generate(dataset.SynthConfig{
		Name: spec.Name, N: spec.N, D: spec.D, NumQueries: spec.Queries,
		NumClusters: spec.NumClusters, Noise: spec.Noise,
		ZipfS: spec.ZipfS, QuerySkew: spec.QuerySkew, Seed: spec.Seed,
	})
}

// Fixture generates the spec's corpus and builds its IVF-PQ index, failing
// the test on build errors. With NList == 0 the index is nil.
func Fixture(t testing.TB, spec FixtureSpec) (*ivf.Index, *dataset.Synth) {
	t.Helper()
	s := Synth(spec)
	if spec.NList == 0 {
		return nil, s
	}
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList:       spec.NList,
		PQ:          pq.Config{M: spec.M, CB: spec.CB},
		KMeansIters: spec.KMeansIters,
		TrainSample: spec.TrainSample,
		Seed:        spec.BuildSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, s
}
