// Package fault wraps a serving replica with injectable failure behaviors —
// delays (stragglers), wedges (calls that block forever), errors, and kills
// (a replica that dies permanently, releasing anything wedged inside it).
//
// The wrapper exists so the replication layer's tail-masking machinery
// (hedged requests, breakers, load-aware routing in internal/cluster) can be
// exercised against every replica failure mode the fleet claims to survive,
// both in the test suite and in `drim-bench -replicas R -straggler`.
//
// Scheduled behaviors are deterministic: each call atomically takes the next
// call number n (1-based), the plan decides from n alone whether the call is
// delayed, errored or wedged, and jitter is a pure hash of (Seed, n). Two
// runs over the same call sequence inject identically. Manual controls
// (Wedge/Unwedge/Kill/SetErr) layer on top for tests that need to flip a
// replica's health mid-flight.
package fault

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"drimann/internal/serve"
)

// ErrInjected is the error an error-scheduled call (Plan.ErrorEvery,
// Plan.FailFirst) fails with.
var ErrInjected = errors.New("fault: injected error")

// ErrKilled is returned by every call — including calls already wedged or
// sleeping — once the replica has been killed.
var ErrKilled = errors.New("fault: replica killed")

// Backend is the replica contract the wrapper interposes on; *serve.Server
// satisfies it, as does another *Replica (wrappers nest).
type Backend interface {
	SearchOwned(ctx context.Context, q []uint8, k int) (serve.Response, error)
	SearchProbedOwned(ctx context.Context, q []uint8, k int, probes []int32) (serve.Response, error)
	Load() int
	Stats() serve.Stats
	Close() error
}

// Plan is a deterministic injection schedule, keyed on the wrapper's own
// 1-based call counter. The zero Plan injects nothing.
type Plan struct {
	// Delay stalls matching calls for Delay (+ seeded jitter in
	// [0, DelayJitter)) before forwarding — the straggler behavior. A delayed
	// call still honors its context and a kill.
	Delay       time.Duration
	DelayJitter time.Duration
	// DelayEvery selects which calls stall: every DelayEvery-th call
	// (n % DelayEvery == 0). 0 or 1 delays every call (when Delay > 0).
	DelayEvery int
	// WedgeFrom > 0 wedges every call numbered >= WedgeFrom: it blocks until
	// its context dies or the replica is killed, and never reaches the
	// backend — the wedged-forever replica.
	WedgeFrom int
	// ErrorEvery > 0 fails every ErrorEvery-th call with ErrInjected before
	// it reaches the backend.
	ErrorEvery int
	// FailFirst > 0 fails calls 1..FailFirst with ErrInjected — a replica
	// that comes up sick and then recovers (the breaker probe-back case).
	FailFirst int
	// KillAfter > 0 kills the replica permanently once KillAfter calls have
	// been accepted: call KillAfter+1 and everything after it — and any call
	// still wedged or sleeping inside the wrapper — fails with ErrKilled.
	// The mid-flight kill: the backend below may be healthy, the replica is
	// gone regardless.
	KillAfter int
	// Seed feeds the jitter hash; 0 is a valid (and distinct) seed.
	Seed int64
}

// Replica wraps a Backend with a Plan. Construct with Wrap; all methods are
// safe for concurrent use.
type Replica struct {
	inner Backend
	plan  Plan

	calls   atomic.Uint64
	blocked atomic.Int64 // calls stalled inside the wrapper (wedge/delay)

	killOnce sync.Once
	killed   chan struct{}

	mu      sync.Mutex
	wedgeCh chan struct{} // non-nil while manually wedged; closed by Unwedge
	errInj  error         // manual SetErr override
}

// Wrap interposes plan on inner.
func Wrap(inner Backend, plan Plan) *Replica {
	return &Replica{inner: inner, plan: plan, killed: make(chan struct{})}
}

// Wedge manually wedges the replica: subsequent calls block until Unwedge,
// their context dies, or the replica is killed. Idempotent.
func (r *Replica) Wedge() {
	r.mu.Lock()
	if r.wedgeCh == nil {
		r.wedgeCh = make(chan struct{})
	}
	r.mu.Unlock()
}

// Unwedge releases a manual Wedge; calls blocked in it proceed normally.
func (r *Replica) Unwedge() {
	r.mu.Lock()
	if r.wedgeCh != nil {
		close(r.wedgeCh)
		r.wedgeCh = nil
	}
	r.mu.Unlock()
}

// Kill kills the replica permanently: every current and future call fails
// with ErrKilled, including calls blocked in a wedge or delay. Idempotent.
func (r *Replica) Kill() { r.killOnce.Do(func() { close(r.killed) }) }

// Killed reports whether Kill has fired (by schedule or by hand).
func (r *Replica) Killed() bool {
	select {
	case <-r.killed:
		return true
	default:
		return false
	}
}

// SetErr sets (err != nil) or clears (err == nil) a manual error override:
// while set, every call fails with it before reaching the backend.
func (r *Replica) SetErr(err error) {
	r.mu.Lock()
	r.errInj = err
	r.mu.Unlock()
}

// Calls reports how many calls the wrapper has accepted.
func (r *Replica) Calls() int { return int(r.calls.Load()) }

// splitmix64 hashes the (seed, call-number) pair into the jitter stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SearchOwned applies the injection schedule, then forwards to the backend.
// The wrapped call keeps the serve.Server contract: it honors ctx, and a
// q buffer handed in must stay frozen as long as the backend lives.
func (r *Replica) SearchOwned(ctx context.Context, q []uint8, k int) (serve.Response, error) {
	if err := r.admit(ctx); err != nil {
		return serve.Response{}, err
	}
	return r.inner.SearchOwned(ctx, q, k)
}

// SearchProbedOwned applies the same injection schedule as SearchOwned (the
// two share one call counter — the plan keys on calls, not entry points),
// then forwards the routed probe list to the backend.
func (r *Replica) SearchProbedOwned(ctx context.Context, q []uint8, k int, probes []int32) (serve.Response, error) {
	if err := r.admit(ctx); err != nil {
		return serve.Response{}, err
	}
	return r.inner.SearchProbedOwned(ctx, q, k, probes)
}

// admit runs one call through the injection schedule: it takes the next
// call number and applies kill, manual error, fail-first/error-every,
// wedges and delays. A nil return means the call reaches the backend.
func (r *Replica) admit(ctx context.Context) error {
	n := r.calls.Add(1)
	if r.plan.KillAfter > 0 && n > uint64(r.plan.KillAfter) {
		r.Kill()
	}
	if r.Killed() {
		return ErrKilled
	}
	r.mu.Lock()
	errInj := r.errInj
	wedgeCh := r.wedgeCh
	r.mu.Unlock()
	if errInj != nil {
		return errInj
	}
	if r.plan.FailFirst > 0 && n <= uint64(r.plan.FailFirst) {
		return ErrInjected
	}
	if r.plan.ErrorEvery > 0 && n%uint64(r.plan.ErrorEvery) == 0 {
		return ErrInjected
	}
	if r.plan.WedgeFrom > 0 && n >= uint64(r.plan.WedgeFrom) {
		// Wedged forever: only the caller's context or a kill gets out.
		r.blocked.Add(1)
		defer r.blocked.Add(-1)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.killed:
			return ErrKilled
		}
	}
	if wedgeCh != nil {
		r.blocked.Add(1)
		select {
		case <-ctx.Done():
			r.blocked.Add(-1)
			return ctx.Err()
		case <-r.killed:
			r.blocked.Add(-1)
			return ErrKilled
		case <-wedgeCh:
			r.blocked.Add(-1)
		}
	}
	if r.plan.Delay > 0 && (r.plan.DelayEvery <= 1 || n%uint64(r.plan.DelayEvery) == 0) {
		d := r.plan.Delay
		if r.plan.DelayJitter > 0 {
			d += time.Duration(splitmix64(uint64(r.plan.Seed)^n) % uint64(r.plan.DelayJitter))
		}
		r.blocked.Add(1)
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			r.blocked.Add(-1)
			return ctx.Err()
		case <-r.killed:
			t.Stop()
			r.blocked.Add(-1)
			return ErrKilled
		case <-t.C:
			r.blocked.Add(-1)
		}
	}
	return nil
}

// Load reports the backend's load plus calls currently stalled inside the
// wrapper, so load-aware routers see a wedged or delayed replica as busy.
func (r *Replica) Load() int { return r.inner.Load() + int(r.blocked.Load()) }

// Stats forwards to the backend: the wrapper injects failures before
// admission, so its victims never appear in the serve ledger.
func (r *Replica) Stats() serve.Stats { return r.inner.Stats() }

// Close closes the backend. It does not release wedged calls — those belong
// to callers whose contexts the serving layer cancels; Kill releases them.
func (r *Replica) Close() error { return r.inner.Close() }
