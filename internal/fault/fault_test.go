package fault_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"drimann/internal/fault"
	"drimann/internal/serve"
)

// stub is a healthy in-memory backend: answers instantly with k echoed in
// BatchSize so tests can see the call went through.
type stub struct {
	mu    sync.Mutex
	calls int
}

func (s *stub) SearchOwned(ctx context.Context, q []uint8, k int) (serve.Response, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return serve.Response{BatchSize: 1}, nil
}
func (s *stub) SearchProbedOwned(ctx context.Context, q []uint8, k int, probes []int32) (serve.Response, error) {
	return s.SearchOwned(ctx, q, k)
}
func (s *stub) Load() int          { return 0 }
func (s *stub) Stats() serve.Stats { return serve.Stats{} }
func (s *stub) Close() error       { return nil }

func (s *stub) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func call(t *testing.T, r *fault.Replica, ctx context.Context) error {
	t.Helper()
	_, err := r.SearchOwned(ctx, []uint8{1}, 1)
	return err
}

func TestPlanErrorSchedules(t *testing.T) {
	b := &stub{}
	r := fault.Wrap(b, fault.Plan{ErrorEvery: 3, FailFirst: 2})
	ctx := context.Background()
	// Calls 1,2 fail (FailFirst), 3 fails (ErrorEvery), 4,5 pass, 6 fails.
	want := []bool{false, false, false, true, true, false, true, true, false}
	for i, ok := range want {
		err := call(t, r, ctx)
		if ok && err != nil {
			t.Fatalf("call %d: unexpected error %v", i+1, err)
		}
		if !ok && !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("call %d: error %v, want ErrInjected", i+1, err)
		}
	}
	if b.count() != 4 {
		t.Fatalf("backend saw %d calls, want 4", b.count())
	}
}

func TestPlanDelayIsDeterministicAndCancelable(t *testing.T) {
	mk := func() *fault.Replica {
		return fault.Wrap(&stub{}, fault.Plan{
			Delay: 5 * time.Millisecond, DelayJitter: 5 * time.Millisecond,
			DelayEvery: 2, Seed: 42,
		})
	}
	// Same plan, same call sequence: identical delay decisions (call 1 fast,
	// call 2 delayed), and the delayed call takes at least the base delay.
	for run := 0; run < 2; run++ {
		r := mk()
		t0 := time.Now()
		if err := call(t, r, context.Background()); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d > 4*time.Millisecond {
			t.Fatalf("run %d: undelayed call took %v", run, d)
		}
		t0 = time.Now()
		if err := call(t, r, context.Background()); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < 5*time.Millisecond {
			t.Fatalf("run %d: delayed call took only %v", run, d)
		}
	}
	// A delayed call honors its context.
	r := mk()
	_ = call(t, r, context.Background()) // call 1: fast
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := call(t, r, ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled delay returned %v", err)
	}
}

func TestWedgeBlocksUntilContextOrKill(t *testing.T) {
	b := &stub{}
	r := fault.Wrap(b, fault.Plan{WedgeFrom: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- call(t, r, ctx) }()
	select {
	case err := <-done:
		t.Fatalf("wedged call returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if r.Load() != 1 {
		t.Fatalf("wedged replica Load = %d, want 1", r.Load())
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("wedged call returned %v, want context.Canceled", err)
	}

	// A second wedged call is released by Kill instead.
	go func() { done <- call(t, r, context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	r.Kill()
	if err := <-done; !errors.Is(err, fault.ErrKilled) {
		t.Fatalf("killed wedge returned %v, want ErrKilled", err)
	}
	if b.count() != 0 {
		t.Fatalf("backend saw %d calls through the wedge", b.count())
	}
}

func TestManualWedgeUnwedge(t *testing.T) {
	b := &stub{}
	r := fault.Wrap(b, fault.Plan{})
	r.Wedge()
	done := make(chan error, 1)
	go func() { done <- call(t, r, context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("manually wedged call returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	r.Unwedge()
	if err := <-done; err != nil {
		t.Fatalf("unwedged call failed: %v", err)
	}
	if b.count() != 1 {
		t.Fatalf("backend saw %d calls, want 1", b.count())
	}
}

func TestKillAfterSchedule(t *testing.T) {
	b := &stub{}
	r := fault.Wrap(b, fault.Plan{KillAfter: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := call(t, r, ctx); err != nil {
			t.Fatalf("call %d before kill: %v", i+1, err)
		}
	}
	if r.Killed() {
		t.Fatal("killed before the schedule fired")
	}
	for i := 0; i < 3; i++ {
		if err := call(t, r, ctx); !errors.Is(err, fault.ErrKilled) {
			t.Fatalf("post-kill call returned %v, want ErrKilled", err)
		}
	}
	if !r.Killed() {
		t.Fatal("Killed() false after schedule fired")
	}
	if b.count() != 2 {
		t.Fatalf("backend saw %d calls, want 2", b.count())
	}
}

func TestSetErrOverride(t *testing.T) {
	b := &stub{}
	r := fault.Wrap(b, fault.Plan{})
	boom := errors.New("boom")
	r.SetErr(boom)
	if err := call(t, r, context.Background()); !errors.Is(err, boom) {
		t.Fatalf("override returned %v, want boom", err)
	}
	r.SetErr(nil)
	if err := call(t, r, context.Background()); err != nil {
		t.Fatalf("cleared override still fails: %v", err)
	}
}
