// Package integration ties the whole stack together: generate -> build ->
// serialize -> deploy -> tune -> search, asserting cross-module contracts
// that unit tests cannot see.
package integration

import (
	"bytes"
	"fmt"
	"testing"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/dse"
	"drimann/internal/ivf"
	"drimann/internal/perfmodel"
	"drimann/internal/pq"
	"drimann/internal/upmem"
)

func TestFullPipeline(t *testing.T) {
	// 1. Synthetic corpus with skewed queries.
	s := dataset.Generate(dataset.SynthConfig{
		N: 8000, D: 32, NumQueries: 64, NumClusters: 32,
		ZipfS: 1.5, QuerySkew: 0.9, Hotspots: 4, Noise: 9, Seed: 17,
	})
	gt := dataset.GroundTruth(s.Base, s.Queries, 10, 0)

	// 2. Index, round-tripped through serialization.
	built, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList: 64, PQ: pq.Config{M: 16, CB: 64}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix, err := ivf.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Engine over the loaded index.
	opts := core.DefaultOptions()
	opts.NumDPUs = 16
	opts.NProbe = 16
	eng, err := core.New(ix, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Quality and equivalence.
	recall := dataset.Recall(gt, res.IDs, 10)
	if recall < 0.7 {
		t.Fatalf("pipeline recall@10 = %v", recall)
	}
	for qi := 0; qi < s.Queries.N; qi++ {
		want := ix.SearchInt(s.Queries.Vec(qi), opts.NProbe, opts.K)
		for j := range want {
			if res.Items[qi][j] != want[j] {
				t.Fatalf("engine diverges from reference at query %d", qi)
			}
		}
	}

	// 5. The engine's measured QPS stays below the analytic upper bound.
	p := perfmodel.Params{
		N: int64(s.Base.N), Q: s.Queries.N, D: s.Base.D,
		K: 10, P: opts.NProbe, C: s.Base.N / ix.NList, M: ix.M, CB: ix.CB,
	}
	host := perfmodel.FromPlatform(upmem.PlatformCPU())
	pim := perfmodel.Hardware{PE: 16, FreqHz: 350e6, Lanes: 1, BWBytes: 16 * 0.7e9}
	bound, err := perfmodel.PredictQPS(p, host, pim, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.QPS > bound*1.05 {
		t.Fatalf("simulated QPS %v exceeds the analytic bound %v", res.Metrics.QPS, bound)
	}
}

func TestDSEToEngine(t *testing.T) {
	// The DSE's chosen configuration must actually deploy and meet its
	// measured recall when run on the engine.
	s := dataset.Generate(dataset.SynthConfig{
		N: 6000, D: 16, NumQueries: 48, NumClusters: 24, Noise: 9, Seed: 23,
	})
	gt := dataset.GroundTruth(s.Base, s.Queries, 10, 0)

	indexes := map[string]*ivf.Index{}
	getIndex := func(c dse.Candidate) (*ivf.Index, error) {
		key := fmt.Sprintf("%d/%d/%d", c.NList, c.M, c.CB)
		if ix, ok := indexes[key]; ok {
			return ix, nil
		}
		ix, err := ivf.Build(s.Base, ivf.BuildConfig{
			NList: c.NList, PQ: pq.Config{M: c.M, CB: c.CB}, Seed: 3,
		})
		if err == nil {
			indexes[key] = ix
		}
		return ix, err
	}
	host := perfmodel.FromPlatform(upmem.PlatformCPU())
	pim := perfmodel.Hardware{PE: 16, FreqHz: 350e6 * 0.3, Lanes: 1, BWBytes: 16 * 0.7e9}

	res, err := dse.Optimize(
		dse.Space{P: []int{4, 8, 16}, NList: []int{16, 48}, M: []int{8, 16}, CB: []int{32, 64}},
		func(c dse.Candidate) (float64, error) {
			p := perfmodel.Params{
				N: int64(s.Base.N), Q: s.Queries.N, D: s.Base.D,
				K: 10, P: c.P, C: max(1, s.Base.N/c.NList), M: c.M, CB: c.CB,
			}
			return perfmodel.PredictQPS(p, host, pim, true)
		},
		func(c dse.Candidate) (float64, error) {
			ix, err := getIndex(c)
			if err != nil {
				return 0, err
			}
			got := ix.SearchIntBatch(s.Queries, c.P, 10, 0)
			return dataset.Recall(gt, got, 10), nil
		},
		dse.Config{AccuracyConstraint: 0.7, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("no feasible configuration at this scale")
	}

	ix, err := getIndex(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.NumDPUs = 8
	opts.NProbe = res.Best.P
	eng, err := core.New(ix, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	deployed := dataset.Recall(gt, out.IDs, 10)
	if deployed < res.BestRecall-1e-9 {
		t.Fatalf("deployed recall %v below DSE-measured %v (paths must agree)", deployed, res.BestRecall)
	}
}
