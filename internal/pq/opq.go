package pq

import (
	"fmt"
	"math"

	"drimann/internal/mat"
)

// OPQ couples a learned orthogonal rotation with a product quantizer
// (Ge et al., "Optimized Product Quantization", the non-parametric variant).
// Rotating the space before quantization balances variance across subspaces
// and lowers quantization error on correlated data.
type OPQ struct {
	R  *mat.Dense // D x D orthogonal rotation
	PQ *Quantizer
}

// TrainOPQ alternates PQ training and Procrustes rotation updates.
// opqIters is the number of alternations (2-5 is typical). The best
// (rotation, quantizer) pair seen across iterations is returned; since the
// first iterate uses the identity rotation, OPQ can only match or improve on
// plain PQ for the same config.
func TrainOPQ(data []float32, dim int, cfg Config, opqIters int) (*OPQ, error) {
	if opqIters < 1 {
		opqIters = 3
	}
	n := len(data) / dim
	if n == 0 || n*dim != len(data) {
		return nil, fmt.Errorf("pq: bad training data for OPQ (len %d, dim %d)", len(data), dim)
	}

	curR := mat.Identity(dim)
	rotated := make([]float32, len(data))
	copy(rotated, data)

	evalRows := n
	if evalRows > 2000 {
		evalRows = 2000
	}

	var bestQ *Quantizer
	var bestR *mat.Dense
	bestMSE := math.Inf(1)

	var q *Quantizer
	var err error
	for it := 0; it < opqIters; it++ {
		q, err = Train(rotated, dim, cfg)
		if err != nil {
			return nil, fmt.Errorf("pq: OPQ iteration %d: %w", it, err)
		}
		if mse := q.ReconstructionMSE(rotated[:evalRows*dim]); mse < bestMSE {
			bestMSE, bestQ, bestR = mse, q, curR
		}
		if it == opqIters-1 {
			break
		}
		// Procrustes step: find orthogonal R minimizing ||X*R - Y|| where Y is
		// the quantized reconstruction of the rotated data; then re-rotate the
		// original data by the accumulated rotation.
		code := make([]uint16, q.M)
		rec := make([]float32, dim)
		// Accumulate C = Xᵀ * Y in float64.
		c := mat.NewDense(dim, dim)
		for i := 0; i < n; i++ {
			row := data[i*dim : (i+1)*dim]
			rrow := rotated[i*dim : (i+1)*dim]
			q.Encode(rrow, code)
			q.Decode(code, rec)
			for a := 0; a < dim; a++ {
				xa := float64(row[a])
				if xa == 0 {
					continue
				}
				crow := c.Row(a)
				for b := 0; b < dim; b++ {
					crow[b] += xa * float64(rec[b])
				}
			}
		}
		curR, err = mat.OrthoProcrustes(c)
		if err != nil {
			return nil, fmt.Errorf("pq: OPQ Procrustes: %w", err)
		}
		applyRotation(rotated, data, curR, dim)
	}
	return &OPQ{R: bestR, PQ: bestQ}, nil
}

// applyRotation writes dst = src * R row-wise.
func applyRotation(dst, src []float32, r *mat.Dense, dim int) {
	n := len(src) / dim
	tmp := make([]float64, dim)
	for i := 0; i < n; i++ {
		row := src[i*dim : (i+1)*dim]
		for b := 0; b < dim; b++ {
			tmp[b] = 0
		}
		for a := 0; a < dim; a++ {
			xa := float64(row[a])
			if xa == 0 {
				continue
			}
			rrow := r.Row(a)
			for b := 0; b < dim; b++ {
				tmp[b] += xa * rrow[b]
			}
		}
		out := dst[i*dim : (i+1)*dim]
		for b := 0; b < dim; b++ {
			out[b] = float32(tmp[b])
		}
	}
}

// Rotate returns v * R as a fresh vector.
func (o *OPQ) Rotate(v []float32) []float32 {
	out := make([]float32, len(v))
	applyRotation(out, v, o.R, len(v))
	return out
}

// ReconstructionMSE reports the rotated-space reconstruction error on data.
func (o *OPQ) ReconstructionMSE(data []float32) float64 {
	dim := o.PQ.D
	rotated := make([]float32, len(data))
	applyRotation(rotated, data, o.R, dim)
	return o.PQ.ReconstructionMSE(rotated)
}
