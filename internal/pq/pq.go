// Package pq implements product quantization and the variants DRIM-ANN
// supports: plain PQ (Jégou et al.), OPQ (optimized PQ with a learned
// orthogonal rotation, Ge et al.) and a DPQ-style learned refinement (after
// Klein & Wolf's end-to-end supervised PQ; here an unsupervised SGD
// refinement of the codebooks, see DESIGN.md for the substitution note).
//
// The float32 path mirrors what Faiss does on the host. The integer path
// (IntCodebooks + LUTInt) mirrors the PIM deployment: codebook entries are
// rounded to int16 residual-domain values so that LUT construction can use
// the squaring lookup table (SQT) and stay bit-exact with multiplication.
package pq

import (
	"fmt"
	"math"
	"math/rand"

	"drimann/internal/kmeans"
	"drimann/internal/sqt"
	"drimann/internal/vecmath"
)

// Config controls PQ training.
type Config struct {
	M  int // number of subspaces; must divide the dimension
	CB int // codebook entries per subspace (Faiss requires 256; we allow 16..65536)
	// Iters is the k-means iteration budget per subspace; default 20.
	Iters int
	// TrainSample caps the number of vectors used for training; 0 = all.
	TrainSample int
	Seed        int64
	Workers     int
}

// Quantizer is a trained product quantizer over D-dimensional float vectors.
type Quantizer struct {
	D, M, CB int
	DSub     int
	// Codebooks is flat M x CB x DSub: entry c of subspace m starts at
	// ((m*CB)+c)*DSub.
	Codebooks []float32
}

// Train learns a product quantizer from flat training data (N x dim rows).
func Train(data []float32, dim int, cfg Config) (*Quantizer, error) {
	if cfg.M <= 0 || dim%cfg.M != 0 {
		return nil, fmt.Errorf("pq: M=%d must divide dim=%d", cfg.M, dim)
	}
	if cfg.CB < 2 || cfg.CB > 65536 {
		return nil, fmt.Errorf("pq: CB=%d out of range [2,65536]", cfg.CB)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	n := len(data) / dim
	if n*dim != len(data) {
		return nil, fmt.Errorf("pq: data length %d not a multiple of dim %d", len(data), dim)
	}
	if n < cfg.CB {
		return nil, fmt.Errorf("pq: %d training vectors < CB=%d", n, cfg.CB)
	}
	sample := data
	if cfg.TrainSample > 0 && cfg.TrainSample < n {
		rng := rand.New(rand.NewSource(cfg.Seed))
		sample = make([]float32, 0, cfg.TrainSample*dim)
		for i := 0; i < cfg.TrainSample; i++ {
			p := rng.Intn(n)
			sample = append(sample, data[p*dim:(p+1)*dim]...)
		}
		n = cfg.TrainSample
	}

	dsub := dim / cfg.M
	q := &Quantizer{D: dim, M: cfg.M, CB: cfg.CB, DSub: dsub,
		Codebooks: make([]float32, cfg.M*cfg.CB*dsub)}

	sub := make([]float32, n*dsub)
	for m := 0; m < cfg.M; m++ {
		for i := 0; i < n; i++ {
			copy(sub[i*dsub:(i+1)*dsub], sample[i*dim+m*dsub:i*dim+(m+1)*dsub])
		}
		res, err := kmeans.Train(sub, kmeans.Config{
			K: cfg.CB, Dim: dsub, MaxIters: cfg.Iters,
			Seed: cfg.Seed + int64(m), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("pq: subspace %d: %w", m, err)
		}
		copy(q.Codebooks[m*cfg.CB*dsub:(m+1)*cfg.CB*dsub], res.Centroids)
	}
	return q, nil
}

// Entry returns codebook entry c of subspace m as a slice view.
func (q *Quantizer) Entry(m, c int) []float32 {
	off := (m*q.CB + c) * q.DSub
	return q.Codebooks[off : off+q.DSub]
}

// Encode writes the code of vec (length D) into code (length M).
func (q *Quantizer) Encode(vec []float32, code []uint16) {
	for m := 0; m < q.M; m++ {
		subvec := vec[m*q.DSub : (m+1)*q.DSub]
		cb := q.Codebooks[m*q.CB*q.DSub : (m+1)*q.CB*q.DSub]
		best, _ := vecmath.ArgMinL2F32(subvec, cb, q.DSub)
		code[m] = uint16(best)
	}
}

// EncodeAll encodes flat data (N x D) into a fresh flat code array (N x M).
func (q *Quantizer) EncodeAll(data []float32) []uint16 {
	n := len(data) / q.D
	codes := make([]uint16, n*q.M)
	for i := 0; i < n; i++ {
		q.Encode(data[i*q.D:(i+1)*q.D], codes[i*q.M:(i+1)*q.M])
	}
	return codes
}

// Decode reconstructs the vector of a code into out (length D).
func (q *Quantizer) Decode(code []uint16, out []float32) {
	for m := 0; m < q.M; m++ {
		copy(out[m*q.DSub:(m+1)*q.DSub], q.Entry(m, int(code[m])))
	}
}

// LUT fills lut (length M*CB) with squared L2 distances between each subvector
// of v and every codebook entry — the LC phase in float32.
func (q *Quantizer) LUT(v []float32, lut []float32) {
	for m := 0; m < q.M; m++ {
		subvec := v[m*q.DSub : (m+1)*q.DSub]
		for c := 0; c < q.CB; c++ {
			lut[m*q.CB+c] = vecmath.L2SquaredF32(subvec, q.Entry(m, c))
		}
	}
}

// ADC returns the asymmetric distance of a code against a prepared LUT.
func (q *Quantizer) ADC(lut []float32, code []uint16) float32 {
	return vecmath.ADCF32(lut, code, q.CB)
}

// ReconstructionMSE reports the mean squared reconstruction error over flat
// data, the quantity PQ training minimizes.
func (q *Quantizer) ReconstructionMSE(data []float32) float64 {
	n := len(data) / q.D
	if n == 0 {
		return 0
	}
	code := make([]uint16, q.M)
	rec := make([]float32, q.D)
	var total float64
	for i := 0; i < n; i++ {
		row := data[i*q.D : (i+1)*q.D]
		q.Encode(row, code)
		q.Decode(code, rec)
		total += float64(vecmath.L2SquaredF32(row, rec))
	}
	return total / float64(n)
}

// CodeBytes reports the packed bytes per vector on the PIM layout: one byte
// per sub-code when CB <= 256, two otherwise (the paper's Ba/Bp parameters).
func (q *Quantizer) CodeBytes() int {
	if q.CB <= 256 {
		return q.M
	}
	return 2 * q.M
}

// IntCodebooks is the residual-domain integer deployment of a quantizer for
// the PIM path. Entries are rounded to int16; combined with int16 residuals
// the LC subtraction stays within the SQT domain.
type IntCodebooks struct {
	M, CB, DSub int
	Data        []int16 // same layout as Quantizer.Codebooks
}

// QuantizeCodebooks rounds the float codebooks to the integer residual grid.
// Residuals of uint8 vectors lie in [-255, 255]; trained codebook entries are
// clamped to the same interval so |residual - entry| <= 510 = sqt.MaxDiff8.
func (q *Quantizer) QuantizeCodebooks() IntCodebooks {
	ic := IntCodebooks{M: q.M, CB: q.CB, DSub: q.DSub, Data: make([]int16, len(q.Codebooks))}
	for i, x := range q.Codebooks {
		v := math.Round(float64(x))
		if v > 255 {
			v = 255
		}
		if v < -255 {
			v = -255
		}
		ic.Data[i] = int16(v)
	}
	return ic
}

// Entry returns integer codebook entry c of subspace m.
func (ic *IntCodebooks) Entry(m, c int) []int16 {
	off := (m*ic.CB + c) * ic.DSub
	return ic.Data[off : off+ic.DSub]
}

// EncodeInt encodes an int16 residual against the integer codebooks with
// exact integer arithmetic (deterministic tie-break on the lower index).
func (ic *IntCodebooks) EncodeInt(residual []int16, code []uint16) {
	for m := 0; m < ic.M; m++ {
		subvec := residual[m*ic.DSub : (m+1)*ic.DSub]
		best, bestD := 0, uint32(math.MaxUint32)
		for c := 0; c < ic.CB; c++ {
			d := vecmath.L2SquaredI16(subvec, ic.Entry(m, c))
			if d < bestD {
				best, bestD = c, d
			}
		}
		code[m] = uint16(best)
	}
}

// LUTInt fills lut (length M*CB) with integer squared distances between the
// residual subvectors and every codebook entry, computed multiplier-less via
// the SQT — the PIM LC kernel. The result is bit-exact with LUTIntMul.
func (ic *IntCodebooks) LUTInt(residual []int16, lut []uint32, tab *sqt.SQT8) {
	for m := 0; m < ic.M; m++ {
		subvec := residual[m*ic.DSub : (m+1)*ic.DSub]
		for c := 0; c < ic.CB; c++ {
			entry := ic.Entry(m, c)
			var sum uint32
			for j, r := range subvec {
				sum += tab.Square(int32(r) - int32(entry[j]))
			}
			lut[m*ic.CB+c] = sum
		}
	}
}

// LUTIntMul is the multiplication-based twin of LUTInt, used as the ablation
// baseline for the paper's Figure 11(a) (and to verify SQT losslessness).
func (ic *IntCodebooks) LUTIntMul(residual []int16, lut []uint32) {
	for m := 0; m < ic.M; m++ {
		subvec := residual[m*ic.DSub : (m+1)*ic.DSub]
		for c := 0; c < ic.CB; c++ {
			lut[m*ic.CB+c] = vecmath.L2SquaredI16(subvec, ic.Entry(m, c))
		}
	}
}
