package pq

import (
	"fmt"
	"math/rand"
)

// TrainDPQ refines a PQ quantizer with stochastic gradient descent on the
// reconstruction loss, a simplified unsupervised stand-in for DPQ
// (Klein & Wolf's end-to-end supervised product quantization; the paper's
// engine only needs the resulting codebooks, not the training labels — see
// DESIGN.md substitutions). Starting from k-means codebooks, each epoch
// re-encodes a mini-batch and nudges the selected entries toward the
// residual gradient with momentum.
func TrainDPQ(data []float32, dim int, cfg Config, epochs int, lr float64) (*Quantizer, error) {
	if epochs < 1 {
		epochs = 5
	}
	if lr <= 0 {
		lr = 0.05
	}
	q, err := Train(data, dim, cfg)
	if err != nil {
		return nil, fmt.Errorf("pq: DPQ init: %w", err)
	}
	n := len(data) / dim
	rng := rand.New(rand.NewSource(cfg.Seed + 777))
	batch := 256
	if batch > n {
		batch = n
	}
	velocity := make([]float32, len(q.Codebooks))
	code := make([]uint16, q.M)
	const momentum = 0.9
	for e := 0; e < epochs; e++ {
		for b := 0; b < batch; b++ {
			i := rng.Intn(n)
			row := data[i*dim : (i+1)*dim]
			q.Encode(row, code)
			for m := 0; m < q.M; m++ {
				entryOff := (m*q.CB + int(code[m])) * q.DSub
				sub := row[m*q.DSub : (m+1)*q.DSub]
				for j := 0; j < q.DSub; j++ {
					grad := q.Codebooks[entryOff+j] - sub[j] // d/dc ||x - c||^2 / 2
					velocity[entryOff+j] = momentum*velocity[entryOff+j] - float32(lr)*grad
					q.Codebooks[entryOff+j] += velocity[entryOff+j]
				}
			}
		}
	}
	return q, nil
}
