package pq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"drimann/internal/sqt"
	"drimann/internal/vecmath"
)

// corpus generates n clustered vectors of dimension dim in roughly [-64, 64].
func corpus(rng *rand.Rand, n, dim int) []float32 {
	data := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		base := float64(rng.Intn(8))*16 - 64
		for j := 0; j < dim; j++ {
			data[i*dim+j] = float32(base + rng.NormFloat64()*4)
		}
	}
	return data
}

func TestTrainValidation(t *testing.T) {
	data := corpus(rand.New(rand.NewSource(1)), 64, 8)
	if _, err := Train(data, 8, Config{M: 3, CB: 16}); err == nil {
		t.Fatal("M must divide dim")
	}
	if _, err := Train(data, 8, Config{M: 2, CB: 1}); err == nil {
		t.Fatal("CB too small must fail")
	}
	if _, err := Train(data, 8, Config{M: 2, CB: 128}); err == nil {
		t.Fatal("n < CB must fail")
	}
	if _, err := Train(data[:9], 8, Config{M: 2, CB: 4}); err == nil {
		t.Fatal("ragged data must fail")
	}
}

func TestEncodeDecodeShrinksError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := corpus(rng, 512, 16)
	q, err := Train(data, 16, Config{M: 4, CB: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mse := q.ReconstructionMSE(data)
	// Variance of the corpus per vector: upper bound for a useful quantizer.
	mean := vecmath.MeanVec(data, 16)
	var variance float64
	for i := 0; i < 512; i++ {
		variance += float64(vecmath.L2SquaredF32(data[i*16:(i+1)*16], mean))
	}
	variance /= 512
	if mse >= variance {
		t.Fatalf("PQ reconstruction MSE %v not better than variance %v", mse, variance)
	}
}

func TestEncodeIsNearestEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := corpus(rng, 256, 8)
	q, err := Train(data, 8, Config{M: 2, CB: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	code := make([]uint16, 2)
	for i := 0; i < 32; i++ {
		row := data[i*8 : (i+1)*8]
		q.Encode(row, code)
		for m := 0; m < 2; m++ {
			sub := row[m*4 : (m+1)*4]
			got := vecmath.L2SquaredF32(sub, q.Entry(m, int(code[m])))
			for c := 0; c < 16; c++ {
				if d := vecmath.L2SquaredF32(sub, q.Entry(m, c)); d < got {
					t.Fatalf("code %d not nearest in subspace %d: %v < %v", code[m], m, d, got)
				}
			}
		}
	}
}

func TestADCEqualsDecodedDistance(t *testing.T) {
	// ADC with a LUT must equal the exact distance to the decoded vector.
	rng := rand.New(rand.NewSource(4))
	data := corpus(rng, 256, 12)
	q, err := Train(data, 12, Config{M: 3, CB: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lut := make([]float32, q.M*q.CB)
	code := make([]uint16, q.M)
	rec := make([]float32, q.D)
	for i := 0; i < 20; i++ {
		query := data[i*12 : (i+1)*12]
		q.LUT(query, lut)
		target := data[(i+100)*12 : (i+101)*12]
		q.Encode(target, code)
		q.Decode(code, rec)
		want := vecmath.L2SquaredF32(query, rec)
		got := q.ADC(lut, code)
		if math.Abs(float64(got-want)) > 1e-2*math.Max(1, float64(want)) {
			t.Fatalf("ADC %v != decoded distance %v", got, want)
		}
	}
}

func TestEncodeAllShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := corpus(rng, 128, 8)
	q, err := Train(data, 8, Config{M: 4, CB: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	codes := q.EncodeAll(data)
	if len(codes) != 128*4 {
		t.Fatalf("EncodeAll length %d", len(codes))
	}
	for _, c := range codes {
		if int(c) >= q.CB {
			t.Fatalf("code %d out of range", c)
		}
	}
}

func TestCodeBytes(t *testing.T) {
	q := &Quantizer{M: 16, CB: 256}
	if q.CodeBytes() != 16 {
		t.Fatalf("CodeBytes = %d, want 16", q.CodeBytes())
	}
	q.CB = 1024
	if q.CodeBytes() != 32 {
		t.Fatalf("CodeBytes = %d, want 32", q.CodeBytes())
	}
}

func TestTrainSampleCapsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := corpus(rng, 2048, 8)
	q, err := Train(data, 8, Config{M: 2, CB: 16, Seed: 7, TrainSample: 256})
	if err != nil {
		t.Fatal(err)
	}
	if q.ReconstructionMSE(data) <= 0 {
		t.Fatal("sampled training should still produce a useful quantizer")
	}
}

func TestQuantizeCodebooksClamps(t *testing.T) {
	q := &Quantizer{D: 2, M: 1, CB: 2, DSub: 2, Codebooks: []float32{300, -300, 1.4, -1.6}}
	ic := q.QuantizeCodebooks()
	want := []int16{255, -255, 1, -2}
	for i := range want {
		if ic.Data[i] != want[i] {
			t.Fatalf("IntCodebooks[%d] = %d, want %d", i, ic.Data[i], want[i])
		}
	}
}

func TestLUTIntSQTBitExactWithMul(t *testing.T) {
	// The multiplier-less LC kernel must match multiplication bit-for-bit.
	rng := rand.New(rand.NewSource(7))
	data := corpus(rng, 256, 8)
	q, err := Train(data, 8, Config{M: 2, CB: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ic := q.QuantizeCodebooks()
	tab := sqt.NewSQT8()
	lutA := make([]uint32, q.M*q.CB)
	lutB := make([]uint32, q.M*q.CB)
	residual := make([]int16, 8)
	for trial := 0; trial < 100; trial++ {
		for j := range residual {
			residual[j] = int16(rng.Intn(511) - 255)
		}
		ic.LUTInt(residual, lutA, tab)
		ic.LUTIntMul(residual, lutB)
		for i := range lutA {
			if lutA[i] != lutB[i] {
				t.Fatalf("SQT LUT differs from mul LUT at %d: %d vs %d", i, lutA[i], lutB[i])
			}
		}
	}
}

func TestEncodeIntNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := corpus(rng, 256, 8)
	q, err := Train(data, 8, Config{M: 2, CB: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ic := q.QuantizeCodebooks()
	code := make([]uint16, 2)
	residual := make([]int16, 8)
	for trial := 0; trial < 50; trial++ {
		for j := range residual {
			residual[j] = int16(rng.Intn(511) - 255)
		}
		ic.EncodeInt(residual, code)
		for m := 0; m < 2; m++ {
			sub := residual[m*4 : (m+1)*4]
			got := vecmath.L2SquaredI16(sub, ic.Entry(m, int(code[m])))
			for c := 0; c < 16; c++ {
				if d := vecmath.L2SquaredI16(sub, ic.Entry(m, c)); d < got {
					t.Fatalf("EncodeInt not nearest: %d < %d", d, got)
				}
			}
		}
	}
}

func TestADCU32MatchesLUTSumProperty(t *testing.T) {
	q := &Quantizer{D: 8, M: 2, CB: 4, DSub: 4}
	f := func(lutRaw [8]uint8, c0, c1 uint8) bool {
		lut := make([]uint32, 8)
		for i, v := range lutRaw {
			lut[i] = uint32(v)
		}
		code := []uint16{uint16(c0 % 4), uint16(c1 % 4)}
		got := vecmath.ADCU32(lut, code, q.CB)
		want := lut[int(code[0])] + lut[4+int(code[1])]
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOPQRotationOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := corpus(rng, 300, 8)
	o, err := TrainOPQ(data, 8, Config{M: 2, CB: 16, Seed: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// R must be orthogonal: rotating preserves norms.
	for i := 0; i < 10; i++ {
		v := data[i*8 : (i+1)*8]
		rv := o.Rotate(v)
		n1 := vecmath.NormSquaredF32(v)
		n2 := vecmath.NormSquaredF32(rv)
		if math.Abs(float64(n1-n2)) > 1e-2*math.Max(1, float64(n1)) {
			t.Fatalf("rotation does not preserve norm: %v vs %v", n1, n2)
		}
	}
}

func TestOPQNotWorseThanPQOnCorrelatedData(t *testing.T) {
	// Strongly correlated dimensions: OPQ's rotation should help (or at least
	// not hurt) versus axis-aligned PQ.
	rng := rand.New(rand.NewSource(10))
	n, dim := 600, 8
	data := make([]float32, n*dim)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64() * 20
		for j := 0; j < dim; j++ {
			data[i*dim+j] = float32(base + rng.NormFloat64()*1)
		}
	}
	cfg := Config{M: 4, CB: 16, Seed: 11}
	q, err := Train(data, dim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := TrainOPQ(data, dim, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	pqMSE := q.ReconstructionMSE(data)
	opqMSE := o.ReconstructionMSE(data)
	if opqMSE > pqMSE*1.10 {
		t.Fatalf("OPQ MSE %v much worse than PQ MSE %v", opqMSE, pqMSE)
	}
}

func TestDPQRefinementNotWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := corpus(rng, 512, 8)
	cfg := Config{M: 2, CB: 16, Seed: 13}
	q, err := Train(data, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := TrainDPQ(data, 8, cfg, 8, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	base := q.ReconstructionMSE(data)
	refined := d.ReconstructionMSE(data)
	if refined > base*1.05 {
		t.Fatalf("DPQ refinement regressed MSE: %v vs %v", refined, base)
	}
}

func TestDPQValidation(t *testing.T) {
	if _, err := TrainDPQ([]float32{1, 2}, 2, Config{M: 3, CB: 4}, 1, 0.1); err == nil {
		t.Fatal("expected error propagation from Train")
	}
}
