package sqt

import (
	"testing"
	"testing/quick"
)

func TestSQT8LosslessExhaustive(t *testing.T) {
	// The multiplier-less conversion must be bit-exact over the whole domain:
	// every difference of two values in [-255, 255].
	tab := NewSQT8()
	for d := int32(-MaxDiff8); d <= MaxDiff8; d++ {
		if got, want := tab.Square(d), uint32(d*d); got != want {
			t.Fatalf("SQT8.Square(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestSQT8FitsWRAM(t *testing.T) {
	tab := NewSQT8()
	const wram = 64 * 1024
	if tab.SizeBytes() >= wram {
		t.Fatalf("SQT8 is %d bytes, must fit far below 64KB WRAM", tab.SizeBytes())
	}
	if tab.SizeBytes() != (MaxDiff8+1)*4 {
		t.Fatalf("unexpected table size %d", tab.SizeBytes())
	}
}

func TestSQT16LosslessProperty(t *testing.T) {
	tab := NewSQT16(8192, 1<<17)
	f := func(raw int32) bool {
		d := raw % (1 << 17)
		got, _ := tab.Square(d)
		if d < 0 {
			d = -d
		}
		return got == uint32(d)*uint32(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSQT16HotColdAccounting(t *testing.T) {
	tab := NewSQT16(16, 100)
	tab.Square(5)   // hot
	tab.Square(-15) // hot (|.|)
	tab.Square(16)  // cold boundary
	tab.Square(100) // cold
	s := tab.Stats()
	if s.Hot != 2 || s.Cold != 2 {
		t.Fatalf("stats = %+v, want 2 hot / 2 cold", s)
	}
	if hr := tab.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
	tab.ResetStats()
	if tab.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear counters")
	}
	if tab.HitRate() != 1 {
		t.Fatal("empty hit rate should be 1")
	}
}

func TestSQT16HotWindowBoundary(t *testing.T) {
	tab := NewSQT16(16, 100)
	if _, hot := tab.Square(15); !hot {
		t.Fatal("15 should be a hot lookup for 16 hot entries")
	}
	if _, hot := tab.Square(16); hot {
		t.Fatal("16 should be a cold lookup for 16 hot entries")
	}
}

func TestSQT16Sizes(t *testing.T) {
	tab := NewSQT16(8192, 65535)
	if tab.HotSizeBytes() != 8192*4 {
		t.Fatalf("hot size = %d", tab.HotSizeBytes())
	}
	if tab.ColdSizeBytes() != (65536-8192)*4 {
		t.Fatalf("cold size = %d", tab.ColdSizeBytes())
	}
	// Hot window must fit WRAM alongside other buffers.
	if tab.HotSizeBytes() > 48*1024 {
		t.Fatalf("hot window too large for WRAM: %d", tab.HotSizeBytes())
	}
}

func TestSQT16ClampsHotEntries(t *testing.T) {
	tab := NewSQT16(1000, 9) // domain smaller than requested hot window
	if tab.ColdSizeBytes() != 0 {
		t.Fatalf("fully-hot table should have no cold part, got %d", tab.ColdSizeBytes())
	}
	if _, hot := tab.Square(9); !hot {
		t.Fatal("all lookups should be hot when the domain fits the window")
	}
}

func TestSQT16PanicsOutsideDomain(t *testing.T) {
	tab := NewSQT16(4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-domain operand")
		}
	}()
	tab.Square(11)
}

func TestNewSQT16PanicsOnBadHot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hotEntries=0")
		}
	}()
	NewSQT16(0, 100)
}

func BenchmarkSQT8Square(b *testing.B) {
	tab := NewSQT8()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += tab.Square(int32(i % 511))
	}
	_ = sink
}

func BenchmarkMulVsSQT(b *testing.B) {
	// Host-side sanity benchmark: on a CPU the multiply wins; on a DPU the
	// table wins because mul costs 32 cycles. The simulator models this; the
	// benchmark just documents both paths execute.
	tab := NewSQT8()
	b.Run("mul", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			d := int32(i%511) - 255
			sink += uint32(d * d)
		}
		_ = sink
	})
	b.Run("sqt", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink += tab.Square(int32(i%511) - 255)
		}
		_ = sink
	})
}
