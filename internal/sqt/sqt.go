// Package sqt implements the squaring lookup tables (SQTs) of DRIM-ANN's
// multiplier-less conversion (paper §3.1). UPMEM DPUs have no hardware
// multiplier, so a multiplication costs ~32 add-equivalent cycles; the L2
// kernels only ever square values, so a table indexed by |a-b| replaces each
// multiplication with one absolute value and one load, losslessly.
//
// Two variants exist, matching the paper:
//
//   - SQT8: operands are differences of 8-bit-quantized values, so |d| <= 510
//     and the full table (511 x 4 B ≈ 2 KB) fits in WRAM.
//   - SQT16: operands are differences of 16-bit-quantized values; the full
//     table would be 256 KB, far beyond the 64 KB WRAM, so a hot window of
//     small magnitudes lives in WRAM and the cold remainder in MRAM. Because
//     squaring operands are residuals, their magnitudes concentrate near
//     zero, and the hot window absorbs most lookups.
package sqt

// MaxDiff8 is the largest |a-b| when a and b are differences of two
// uint8-quantized values (residual minus codebook entry, both in
// [-255, 255]).
const MaxDiff8 = 510

// SQT8 is a full squaring table for the 8-bit quantization mode.
type SQT8 struct {
	table [MaxDiff8 + 1]uint32
}

// NewSQT8 builds the full 8-bit-mode squaring table.
func NewSQT8() *SQT8 {
	t := &SQT8{}
	for d := 0; d <= MaxDiff8; d++ {
		t.table[d] = uint32(d * d)
	}
	return t
}

// Square returns d*d via table lookup. d must be in [-MaxDiff8, MaxDiff8].
func (t *SQT8) Square(d int32) uint32 {
	if d < 0 {
		d = -d
	}
	return t.table[d]
}

// SizeBytes reports the table footprint, which must fit WRAM.
func (t *SQT8) SizeBytes() int { return len(t.table) * 4 }

// Stats carries hot/cold access counts for the tiered 16-bit table; the
// memory subsystem of the simulator charges WRAM cost for hits and an MRAM
// DMA for misses.
type Stats struct {
	Hot  uint64 // lookups served from the WRAM-resident window
	Cold uint64 // lookups that had to touch the MRAM-resident remainder
}

// SQT16 is the tiered squaring table for the 16-bit quantization mode.
type SQT16 struct {
	hot     []uint32 // squares of 0..hotMax-1, WRAM resident
	hotMax  int32
	maxDiff int32
	stats   Stats
}

// NewSQT16 builds a tiered table. hotEntries is the number of magnitudes
// resident in WRAM (e.g. 8192 entries = 32 KB); maxDiff bounds the operand
// domain (for 16-bit quantization differences, up to 131070).
func NewSQT16(hotEntries int, maxDiff int32) *SQT16 {
	if hotEntries < 1 {
		panic("sqt: hotEntries must be >= 1")
	}
	if int32(hotEntries) > maxDiff+1 {
		hotEntries = int(maxDiff + 1)
	}
	t := &SQT16{
		hot:     make([]uint32, hotEntries),
		hotMax:  int32(hotEntries),
		maxDiff: maxDiff,
	}
	for d := range t.hot {
		t.hot[d] = uint32(d) * uint32(d)
	}
	return t
}

// Square returns d*d. The boolean reports whether the lookup hit the
// WRAM-resident hot window; cold lookups are still lossless (the MRAM
// remainder holds exact squares, modeled here by direct computation) but
// cost an MRAM access in the simulator.
func (t *SQT16) Square(d int32) (uint32, bool) {
	if d < 0 {
		d = -d
	}
	if d > t.maxDiff {
		panic("sqt: operand outside table domain")
	}
	if d < t.hotMax {
		t.stats.Hot++
		return t.hot[d], true
	}
	t.stats.Cold++
	return uint32(d) * uint32(d), false
}

// CountColdRow replays the |res[j]-entry[j]| diff stream of one codebook row
// against the tiered table, accumulating hot/cold statistics once per row
// instead of once per element, and returns the number of cold (MRAM-tier)
// lookups. It is the batched twin of calling Square per element: the counters
// end up identical, but the per-element closure of (abs, tier test, counter
// read-modify-write) collapses into a branchless scan, which matters because
// the engine replays the full M x CB x dsub stream per LUT build. res and
// entry must have equal length.
func (t *SQT16) CountColdRow(res, entry []int16) uint64 {
	cold := t.ColdCountRow(res, entry)
	t.stats.Hot += uint64(len(res)) - cold
	t.stats.Cold += cold
	return cold
}

// ColdCountRow is the stats-free twin of CountColdRow: it replays the
// |res[j]-entry[j]| diff stream and returns the cold-lookup count without
// touching the hit/miss counters. It only reads the table's geometry, so
// concurrent calls on a shared table are safe. This is the memoization hook
// for engines that run many DPUs with identically-shaped tables: the replay
// runs once per unique (query, cluster) group, and the returned count is
// applied to each DPU's table arithmetically via AddStats — exactly the
// statistics a private per-DPU replay would accumulate.
func (t *SQT16) ColdCountRow(res, entry []int16) uint64 {
	var cold uint64
	hotMax, maxDiff := t.hotMax, t.maxDiff
	for j, r := range res {
		d := int32(r) - int32(entry[j])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			panic("sqt: operand outside table domain")
		}
		if d >= hotMax {
			cold++
		}
	}
	return cold
}

// AddStats credits pre-counted hot and cold lookups to the table's
// counters, the arithmetic twin of replaying the same diff stream against
// this table. Callers must only apply counts obtained from a table with the
// same geometry (see Geometry).
func (t *SQT16) AddStats(hot, cold uint64) {
	t.stats.Hot += hot
	t.stats.Cold += cold
}

// Geometry returns the parameters that determine hot/cold classification:
// the WRAM-resident entry count and the operand domain bound. Two tables
// with equal geometry classify every lookup identically, which is the
// invariant behind memoized replay (ColdCountRow + AddStats).
func (t *SQT16) Geometry() (hotEntries int, maxDiff int32) {
	return int(t.hotMax), t.maxDiff
}

// Stats returns the accumulated hot/cold counters.
func (t *SQT16) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *SQT16) ResetStats() { t.stats = Stats{} }

// HotSizeBytes reports the WRAM-resident footprint.
func (t *SQT16) HotSizeBytes() int { return len(t.hot) * 4 }

// ColdSizeBytes reports the MRAM-resident footprint.
func (t *SQT16) ColdSizeBytes() int {
	cold := int(t.maxDiff+1) - len(t.hot)
	if cold < 0 {
		cold = 0
	}
	return cold * 4
}

// HitRate returns the fraction of lookups served by the hot window, or 1 if
// no lookups have occurred.
func (t *SQT16) HitRate() float64 {
	total := t.stats.Hot + t.stats.Cold
	if total == 0 {
		return 1
	}
	return float64(t.stats.Hot) / float64(total)
}
