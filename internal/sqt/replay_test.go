package sqt

import (
	"math/rand"
	"testing"
)

// TestCountColdRowMatchesSquare: the batched replay must leave exactly the
// same hot/cold statistics (and report the same cold count) as calling
// Square per element.
func TestCountColdRowMatchesSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		hot := 1 + rng.Intn(300)
		n := 1 + rng.Intn(64)
		res := make([]int16, n)
		entry := make([]int16, n)
		for j := range res {
			res[j] = int16(rng.Intn(511) - 255)
			entry[j] = int16(rng.Intn(511) - 255)
		}

		ref := NewSQT16(hot, MaxDiff8)
		var wantCold uint64
		for j := range res {
			if _, isHot := ref.Square(int32(res[j]) - int32(entry[j])); !isHot {
				wantCold++
			}
		}

		batched := NewSQT16(hot, MaxDiff8)
		gotCold := batched.CountColdRow(res, entry)
		if gotCold != wantCold {
			t.Fatalf("trial %d: cold %d, want %d", trial, gotCold, wantCold)
		}
		if batched.Stats() != ref.Stats() {
			t.Fatalf("trial %d: stats %+v, want %+v", trial, batched.Stats(), ref.Stats())
		}
	}
}

func TestCountColdRowPanicsOutsideDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for operand outside table domain")
		}
	}()
	tab := NewSQT16(16, 100)
	tab.CountColdRow([]int16{200}, []int16{-200})
}

// The ISSUE-1 satellite micro-benchmark: replaying the per-subquantizer-row
// diff stream in one batched call vs. one Square call per element. The
// engine's LC cost replay runs this stream M x CB times per LUT build, so
// the per-element overhead (function call, tier branch, two counter
// read-modify-writes) is hot.

func replayFixture() (*SQT16, []int16, []int16) {
	rng := rand.New(rand.NewSource(7))
	res := make([]int16, 8)
	entry := make([]int16, 8)
	for j := range res {
		res[j] = int16(rng.Intn(101) - 50) // concentrated, like real residuals
		entry[j] = int16(rng.Intn(511) - 255)
	}
	return NewSQT16(8192, MaxDiff8), res, entry
}

func BenchmarkSQT16ReplayPerElement(b *testing.B) {
	tab, res, entry := replayFixture()
	var cold uint64
	for i := 0; i < b.N; i++ {
		for j := range res {
			if _, hot := tab.Square(int32(res[j]) - int32(entry[j])); !hot {
				cold++
			}
		}
	}
	_ = cold
}

func BenchmarkSQT16ReplayRow(b *testing.B) {
	tab, res, entry := replayFixture()
	var cold uint64
	for i := 0; i < b.N; i++ {
		cold += tab.CountColdRow(res, entry)
	}
	_ = cold
}
