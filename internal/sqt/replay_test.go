package sqt

import (
	"math/rand"
	"testing"
)

// TestCountColdRowMatchesSquare: the batched replay must leave exactly the
// same hot/cold statistics (and report the same cold count) as calling
// Square per element.
func TestCountColdRowMatchesSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		hot := 1 + rng.Intn(300)
		n := 1 + rng.Intn(64)
		res := make([]int16, n)
		entry := make([]int16, n)
		for j := range res {
			res[j] = int16(rng.Intn(511) - 255)
			entry[j] = int16(rng.Intn(511) - 255)
		}

		ref := NewSQT16(hot, MaxDiff8)
		var wantCold uint64
		for j := range res {
			if _, isHot := ref.Square(int32(res[j]) - int32(entry[j])); !isHot {
				wantCold++
			}
		}

		batched := NewSQT16(hot, MaxDiff8)
		gotCold := batched.CountColdRow(res, entry)
		if gotCold != wantCold {
			t.Fatalf("trial %d: cold %d, want %d", trial, gotCold, wantCold)
		}
		if batched.Stats() != ref.Stats() {
			t.Fatalf("trial %d: stats %+v, want %+v", trial, batched.Stats(), ref.Stats())
		}
	}
}

func TestCountColdRowPanicsOutsideDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for operand outside table domain")
		}
	}()
	tab := NewSQT16(16, 100)
	tab.CountColdRow([]int16{200}, []int16{-200})
}

// The ISSUE-1 satellite micro-benchmark: replaying the per-subquantizer-row
// diff stream in one batched call vs. one Square call per element. The
// engine's LC cost replay runs this stream M x CB times per LUT build, so
// the per-element overhead (function call, tier branch, two counter
// read-modify-writes) is hot.

func replayFixture() (*SQT16, []int16, []int16) {
	rng := rand.New(rand.NewSource(7))
	res := make([]int16, 8)
	entry := make([]int16, 8)
	for j := range res {
		res[j] = int16(rng.Intn(101) - 50) // concentrated, like real residuals
		entry[j] = int16(rng.Intn(511) - 255)
	}
	return NewSQT16(8192, MaxDiff8), res, entry
}

func BenchmarkSQT16ReplayPerElement(b *testing.B) {
	tab, res, entry := replayFixture()
	var cold uint64
	for i := 0; i < b.N; i++ {
		for j := range res {
			if _, hot := tab.Square(int32(res[j]) - int32(entry[j])); !hot {
				cold++
			}
		}
	}
	_ = cold
}

func BenchmarkSQT16ReplayRow(b *testing.B) {
	tab, res, entry := replayFixture()
	var cold uint64
	for i := 0; i < b.N; i++ {
		cold += tab.CountColdRow(res, entry)
	}
	_ = cold
}

// TestMemoizedReplayMatchesPerTableReplay: computing the cold count once via
// the stats-free ColdCountRow and applying it to N identically-shaped tables
// with AddStats must leave every table with exactly the stats a private
// CountColdRow replay would have produced.
func TestMemoizedReplayMatchesPerTableReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		hot := 1 + rng.Intn(300)
		const numTables = 7
		perTable := make([]*SQT16, numTables)
		memoized := make([]*SQT16, numTables)
		for i := range perTable {
			perTable[i] = NewSQT16(hot, MaxDiff8)
			memoized[i] = NewSQT16(hot, MaxDiff8)
		}
		geomH, geomD := memoized[0].Geometry()
		if geomH != min(hot, int(MaxDiff8)+1) || geomD != MaxDiff8 {
			t.Fatalf("Geometry() = (%d, %d), want (%d, %d)", geomH, geomD, hot, MaxDiff8)
		}
		for row := 0; row < 20; row++ {
			n := 1 + rng.Intn(32)
			res := make([]int16, n)
			entry := make([]int16, n)
			for j := range res {
				res[j] = int16(rng.Intn(511) - 255)
				entry[j] = int16(rng.Intn(511) - 255)
			}
			// Reference: every table replays the stream privately.
			for _, tab := range perTable {
				tab.CountColdRow(res, entry)
			}
			// Memoized: one stats-free replay, applied arithmetically.
			cold := memoized[0].ColdCountRow(res, entry)
			for _, tab := range memoized {
				tab.AddStats(uint64(n)-cold, cold)
			}
		}
		for i := range perTable {
			if perTable[i].Stats() != memoized[i].Stats() {
				t.Fatalf("trial %d table %d: memoized stats %+v != replayed %+v",
					trial, i, memoized[i].Stats(), perTable[i].Stats())
			}
		}
	}
}

// The ISSUE-2 micro-benchmark: the engine's LC replay for one (query,
// cluster) group across 64 DPUs — per-DPU replay (the retained reference
// accountant) vs one memoized ColdCountRow application. The stream is one
// CB x dsub codebook block, the unit chargeLC replays per subquantizer.

func replayGroupFixture() (tables []*SQT16, res []int16, entries [][]int16) {
	rng := rand.New(rand.NewSource(8))
	const numDPUs, cb, dsub = 64, 64, 8
	tables = make([]*SQT16, numDPUs)
	for i := range tables {
		tables[i] = NewSQT16(8192, MaxDiff8)
	}
	res = make([]int16, dsub)
	for j := range res {
		res[j] = int16(rng.Intn(101) - 50)
	}
	entries = make([][]int16, cb)
	for e := range entries {
		entries[e] = make([]int16, dsub)
		for j := range entries[e] {
			entries[e][j] = int16(rng.Intn(511) - 255)
		}
	}
	return tables, res, entries
}

func BenchmarkSQT16ReplayPerDPU(b *testing.B) {
	tables, res, entries := replayGroupFixture()
	for i := 0; i < b.N; i++ {
		for _, tab := range tables {
			for _, entry := range entries {
				tab.CountColdRow(res, entry)
			}
		}
	}
}

func BenchmarkSQT16ReplayMemoized(b *testing.B) {
	tables, res, entries := replayGroupFixture()
	elems := uint64(len(entries) * len(res))
	for i := 0; i < b.N; i++ {
		var cold uint64
		for _, entry := range entries {
			cold += tables[0].ColdCountRow(res, entry)
		}
		for _, tab := range tables {
			tab.AddStats(elems-cold, cold)
		}
	}
}
