// Package dse implements DRIM-ANN's approximation design space exploration
// (paper §4.1): a Bayesian optimizer over the index parameters (P, nlist,
// M, CB) that maximizes model-predicted throughput subject to a measured
// recall constraint. Throughput comes exactly from the performance model;
// accuracy is expensive to measure, so it is modeled by a Gaussian process
// with a Matérn 5/2 kernel, and candidates are picked by expected
// hypervolume improvement (EHVI) on the (QPS, recall) front, weighted by
// the probability of satisfying the accuracy constraint.
package dse

import (
	"errors"
	"fmt"
	"math"

	"drimann/internal/mat"
)

// GP is a Gaussian-process regressor with a Matérn 5/2 kernel, used as the
// accuracy surrogate.
type GP struct {
	Lengthscale float64 // kernel lengthscale in normalized input space
	Signal      float64 // prior signal stddev
	Noise       float64 // observation noise stddev

	x     [][]float64
	mean  float64
	chol  *mat.Dense
	alpha []float64
}

// NewGP returns a surrogate with sensible defaults for [0,1]^d inputs.
func NewGP() *GP {
	return &GP{Lengthscale: 0.35, Signal: 1.0, Noise: 0.02}
}

// matern52 evaluates the Matérn 5/2 correlation at distance r.
func matern52(r, l float64) float64 {
	if r <= 0 {
		return 1
	}
	s := math.Sqrt(5) * r / l
	return (1 + s + s*s/3) * math.Exp(-s)
}

func dist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Fit conditions the GP on observations (inputs must be normalized to
// roughly [0,1]^d; outputs are internally centered).
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("dse: GP.Fit needs equal-length non-empty x, y")
	}
	n := len(x)
	g.x = x
	g.mean = 0
	for _, v := range y {
		g.mean += v
	}
	g.mean /= float64(n)

	k := mat.NewDense(n, n)
	s2 := g.Signal * g.Signal
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := s2 * matern52(dist(x[i], x[j]), g.Lengthscale)
			if i == j {
				v += g.Noise * g.Noise
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, err := mat.Cholesky(k)
	if err != nil {
		return fmt.Errorf("dse: GP kernel not PD: %w", err)
	}
	g.chol = chol
	centered := make([]float64, n)
	for i, v := range y {
		centered[i] = v - g.mean
	}
	g.alpha = mat.SolveChol(chol, centered)
	return nil
}

// Predict returns the posterior mean and standard deviation at x.
func (g *GP) Predict(x []float64) (mu, sigma float64) {
	if g.chol == nil {
		return g.mean, g.Signal
	}
	n := len(g.x)
	ks := make([]float64, n)
	s2 := g.Signal * g.Signal
	for i := 0; i < n; i++ {
		ks[i] = s2 * matern52(dist(x, g.x[i]), g.Lengthscale)
	}
	mu = g.mean
	for i := 0; i < n; i++ {
		mu += ks[i] * g.alpha[i]
	}
	// sigma^2 = k(x,x) - ksᵀ K⁻¹ ks via triangular solve: v = L⁻¹ ks.
	v := forwardSolve(g.chol, ks)
	var vv float64
	for _, t := range v {
		vv += t * t
	}
	s2x := s2 - vv
	if s2x < 1e-12 {
		s2x = 1e-12
	}
	return mu, math.Sqrt(s2x)
}

func forwardSolve(l *mat.Dense, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	return y
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
