package dse

import (
	"fmt"
	"math"
	"sort"
)

// Candidate is one point of the design space: an index configuration
// (K is fixed by the application; the paper tunes it too, but recall@K with
// varying K is not comparable across candidates).
type Candidate struct {
	P     int // nprobe
	NList int // number of coarse clusters (determines C = N/NList)
	M     int // subvectors
	CB    int // codebook entries
}

func (c Candidate) String() string {
	return fmt.Sprintf("P=%d nlist=%d M=%d CB=%d", c.P, c.NList, c.M, c.CB)
}

// Space is the candidate grid.
type Space struct {
	P     []int
	NList []int
	M     []int
	CB    []int
}

// All enumerates the cartesian product.
func (s Space) All() []Candidate {
	var out []Candidate
	for _, p := range s.P {
		for _, nl := range s.NList {
			for _, m := range s.M {
				for _, cb := range s.CB {
					out = append(out, Candidate{P: p, NList: nl, M: m, CB: cb})
				}
			}
		}
	}
	return out
}

// normalize maps a candidate into [0,1]^4 in log space for the GP.
func (s Space) normalize(c Candidate) []float64 {
	f := func(v int, grid []int) float64 {
		lo, hi := math.Log(float64(grid[0])), math.Log(float64(grid[len(grid)-1]))
		if hi <= lo {
			return 0.5
		}
		return (math.Log(float64(v)) - lo) / (hi - lo)
	}
	return []float64{f(c.P, s.P), f(c.NList, s.NList), f(c.M, s.M), f(c.CB, s.CB)}
}

// Sample is one evaluated configuration.
type Sample struct {
	Cand   Candidate
	QPS    float64
	Recall float64
}

// Config controls the optimization.
type Config struct {
	// AccuracyConstraint is the recall floor (the paper uses recall@10 >= 0.8).
	AccuracyConstraint float64
	// Budget bounds the number of expensive recall measurements.
	Budget int
	// InitSamples seeds the surrogate; default 4 (or the whole space if
	// smaller).
	InitSamples int
}

// Result reports the exploration outcome.
type Result struct {
	Best       Candidate
	BestQPS    float64
	BestRecall float64
	Feasible   bool
	History    []Sample
}

// Optimize explores the space. qpsFn must be cheap and exact (the
// performance model); recallFn is the expensive accuracy measurement.
func Optimize(space Space, qpsFn func(Candidate) (float64, error),
	recallFn func(Candidate) (float64, error), cfg Config) (*Result, error) {

	cands := space.All()
	if len(cands) == 0 {
		return nil, fmt.Errorf("dse: empty design space")
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 16
	}
	if cfg.InitSamples <= 0 {
		cfg.InitSamples = 4
	}
	if cfg.Budget > len(cands) {
		cfg.Budget = len(cands)
	}
	if cfg.InitSamples > cfg.Budget {
		cfg.InitSamples = cfg.Budget
	}

	qps := make([]float64, len(cands))
	for i, c := range cands {
		v, err := qpsFn(c)
		if err != nil {
			return nil, fmt.Errorf("dse: qps(%v): %w", c, err)
		}
		qps[i] = v
	}

	evaluated := make(map[int]bool)
	var history []Sample
	evaluate := func(i int) error {
		r, err := recallFn(cands[i])
		if err != nil {
			return fmt.Errorf("dse: recall(%v): %w", cands[i], err)
		}
		evaluated[i] = true
		history = append(history, Sample{Cand: cands[i], QPS: qps[i], Recall: r})
		return nil
	}

	// Greedy seeds: the paper starts from a feasible-leaning configuration.
	// Conservative (max accuracy-lean) + aggressive (max QPS) + spread.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return qps[order[a]] > qps[order[b]] })
	seeds := []int{
		order[0],              // fastest
		order[len(order)-1],   // most conservative
		order[len(order)/2],   // middle
		order[len(order)/4],   // fast-ish quartile
		order[3*len(order)/4], // slow-ish quartile
	}
	for _, s := range seeds {
		if len(history) >= cfg.InitSamples {
			break
		}
		if evaluated[s] {
			continue
		}
		if err := evaluate(s); err != nil {
			return nil, err
		}
	}

	// Bayesian loop.
	for len(history) < cfg.Budget {
		gp := NewGP()
		x := make([][]float64, len(history))
		y := make([]float64, len(history))
		var mean float64
		for i, s := range history {
			x[i] = space.normalize(s.Cand)
			y[i] = s.Recall
			mean += s.Recall
		}
		mean /= float64(len(history))
		// Scale the prior to the observed recall spread so that the
		// feasibility probability collapses quickly near known-bad regions.
		var variance float64
		for _, v := range y {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(len(y))
		gp.Signal = math.Max(math.Sqrt(variance), 0.05)
		gp.Lengthscale = 0.5
		if err := gp.Fit(x, y); err != nil {
			return nil, err
		}
		front := paretoFront(history, cfg.AccuracyConstraint)

		bestIdx, bestAcq := -1, -1.0
		for i, c := range cands {
			if evaluated[i] {
				continue
			}
			mu, sigma := gp.Predict(space.normalize(c))
			pFeasible := 1 - normCDF((cfg.AccuracyConstraint-mu)/sigma)
			acq := pFeasible * ehvi(qps[i], mu, sigma, front, cfg.AccuracyConstraint)
			if acq > bestAcq {
				bestAcq, bestIdx = acq, i
			}
		}
		if bestIdx < 0 {
			break
		}
		if err := evaluate(bestIdx); err != nil {
			return nil, err
		}
	}

	res := &Result{History: history}
	for _, s := range history {
		if s.Recall >= cfg.AccuracyConstraint {
			if !res.Feasible || s.QPS > res.BestQPS {
				res.Best, res.BestQPS, res.BestRecall, res.Feasible = s.Cand, s.QPS, s.Recall, true
			}
		}
	}
	if !res.Feasible {
		// No feasible point found: return the most accurate one seen.
		for _, s := range history {
			if s.Recall > res.BestRecall {
				res.Best, res.BestQPS, res.BestRecall = s.Cand, s.QPS, s.Recall
			}
		}
	}
	return res, nil
}

// paretoFront extracts the non-dominated feasible (QPS, recall) samples.
func paretoFront(history []Sample, constraint float64) []Sample {
	var front []Sample
	for _, s := range history {
		if s.Recall < constraint {
			continue
		}
		dominated := false
		for _, o := range history {
			if o.Recall >= constraint && o.QPS >= s.QPS && o.Recall >= s.Recall &&
				(o.QPS > s.QPS || o.Recall > s.Recall) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, s)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].QPS > front[j].QPS })
	return front
}

// hv2d computes the 2-D hypervolume of a front relative to the reference
// point (0, refRecall); the front must be sorted by descending QPS.
func hv2d(front []Sample, refRecall float64) float64 {
	var hv float64
	prevRecall := refRecall
	for _, s := range front {
		if s.Recall > prevRecall {
			hv += s.QPS * (s.Recall - prevRecall)
			prevRecall = s.Recall
		}
	}
	return hv
}

// ehvi estimates the expected hypervolume improvement of a candidate whose
// QPS is exact and whose recall is N(mu, sigma^2), by quadrature over seven
// recall quantiles (a deterministic EHVI approximation, after Daulton et
// al.'s differentiable EHVI, cited by the paper).
func ehvi(qps, mu, sigma float64, front []Sample, refRecall float64) float64 {
	quantiles := []struct{ z, w float64 }{
		{-1.645, 0.05}, {-1.0, 0.15}, {-0.5, 0.2}, {0, 0.2}, {0.5, 0.2}, {1.0, 0.15}, {1.645, 0.05},
	}
	base := hv2d(front, refRecall)
	var ev float64
	for _, q := range quantiles {
		r := mu + q.z*sigma
		if r <= refRecall {
			continue
		}
		if r > 1 {
			r = 1
		}
		cand := Sample{QPS: qps, Recall: r}
		merged := append(append([]Sample{}, front...), cand)
		sort.Slice(merged, func(i, j int) bool { return merged[i].QPS > merged[j].QPS })
		improvement := hv2d(merged, refRecall) - base
		if improvement > 0 {
			ev += q.w * improvement
		}
	}
	return ev
}
