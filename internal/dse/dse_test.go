package dse

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatern52Properties(t *testing.T) {
	if matern52(0, 0.5) != 1 {
		t.Fatal("kernel at r=0 must be 1")
	}
	prev := 1.0
	for r := 0.1; r < 5; r += 0.1 {
		v := matern52(r, 0.5)
		if v <= 0 || v >= prev {
			t.Fatalf("kernel must decay monotonically: k(%v)=%v prev=%v", r, v, prev)
		}
		prev = v
	}
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	gp := NewGP()
	gp.Noise = 1e-3
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = math.Sin(3 * xi[0])
	}
	if err := gp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i, xi := range x {
		mu, sigma := gp.Predict(xi)
		if math.Abs(mu-y[i]) > 0.02 {
			t.Fatalf("GP does not interpolate: mu(%v)=%v want %v", xi, mu, y[i])
		}
		if sigma > 0.1 {
			t.Fatalf("uncertainty at training point too high: %v", sigma)
		}
	}
	// Far from data the posterior variance must grow.
	_, sFar := gp.Predict([]float64{5})
	_, sNear := gp.Predict([]float64{0.5})
	if sFar <= sNear {
		t.Fatalf("variance should grow away from data: %v <= %v", sFar, sNear)
	}
}

func TestGPPredictionQuality(t *testing.T) {
	// Fit a smooth function on a grid; check generalization between points.
	gp := NewGP()
	var x [][]float64
	var y []float64
	f := func(a, b float64) float64 { return 0.5 + 0.3*a - 0.2*b*b }
	for a := 0.0; a <= 1.0; a += 0.25 {
		for b := 0.0; b <= 1.0; b += 0.25 {
			x = append(x, []float64{a, b})
			y = append(y, f(a, b))
		}
	}
	if err := gp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Float64(), rng.Float64()
		mu, _ := gp.Predict([]float64{a, b})
		if math.Abs(mu-f(a, b)) > 0.1 {
			t.Fatalf("GP generalization error too high at (%v,%v): %v vs %v", a, b, mu, f(a, b))
		}
	}
}

func TestGPFitValidation(t *testing.T) {
	gp := NewGP()
	if err := gp.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must fail")
	}
	if err := gp.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestHV2D(t *testing.T) {
	front := []Sample{
		{QPS: 100, Recall: 0.85},
		{QPS: 50, Recall: 0.95},
	}
	// HV over ref recall 0.8: 100*(0.85-0.8) + 50*(0.95-0.85) = 5 + 5 = 10.
	if got := hv2d(front, 0.8); math.Abs(got-10) > 1e-12 {
		t.Fatalf("hv2d = %v, want 10", got)
	}
	if hv2d(nil, 0.8) != 0 {
		t.Fatal("empty front has zero HV")
	}
}

func TestEHVIPrefersImprovingPoints(t *testing.T) {
	front := []Sample{{QPS: 100, Recall: 0.85}}
	// A candidate with much higher QPS and similar recall should beat one
	// dominated by the front.
	better := ehvi(500, 0.85, 0.02, front, 0.8)
	dominated := ehvi(10, 0.82, 0.02, front, 0.8)
	if better <= dominated {
		t.Fatalf("EHVI should prefer improving candidates: %v vs %v", better, dominated)
	}
	// A candidate almost surely below the constraint contributes ~nothing.
	infeasible := ehvi(1000, 0.5, 0.01, front, 0.8)
	if infeasible > 1e-9 {
		t.Fatalf("infeasible candidate should have ~0 EHVI, got %v", infeasible)
	}
}

// synthetic design problem: recall rises with P, M, CB and falls with NList;
// QPS the other way around. The optimum under a recall floor is interior.
func synthProblem() (Space, func(Candidate) (float64, error), func(Candidate) (float64, error), int) {
	space := Space{
		P:     []int{8, 16, 32, 64, 128},
		NList: []int{256, 512, 1024, 2048},
		M:     []int{8, 16},
		CB:    []int{64, 256},
	}
	recall := func(c Candidate) (float64, error) {
		r := 1 - math.Exp(-float64(c.P)/20) // rises with P
		r *= 0.8 + 0.2*math.Min(1, float64(c.M)/16)
		r *= 0.9 + 0.1*math.Min(1, float64(c.CB)/256)
		r *= 1 - 0.05*math.Log2(float64(c.NList)/256)/3
		return math.Min(r, 1), nil
	}
	qps := func(c Candidate) (float64, error) {
		cost := float64(c.P) * (float64(1_000_000)/float64(c.NList)*float64(c.M) +
			float64(c.CB)*float64(c.M)*4)
		return 1e9 / cost, nil
	}
	evals := 0
	countingRecall := func(c Candidate) (float64, error) {
		evals++
		return recall(c)
	}
	_ = evals
	return space, qps, countingRecall, len(space.All())
}

func TestOptimizeFindsFeasibleNearOptimal(t *testing.T) {
	space, qps, recall, total := synthProblem()
	cfg := Config{AccuracyConstraint: 0.8, Budget: 24}
	res, err := Optimize(space, qps, recall, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("synthetic problem has feasible points; DSE found none")
	}
	if res.BestRecall < 0.8 {
		t.Fatalf("constraint violated: recall %v", res.BestRecall)
	}
	if len(res.History) > cfg.Budget {
		t.Fatalf("budget exceeded: %d > %d", len(res.History), cfg.Budget)
	}
	// Exhaustive optimum for comparison.
	bestQPS := 0.0
	for _, c := range space.All() {
		r, _ := recall(c)
		if r >= 0.8 {
			q, _ := qps(c)
			if q > bestQPS {
				bestQPS = q
			}
		}
	}
	if res.BestQPS < 0.5*bestQPS {
		t.Fatalf("DSE result %v too far from optimum %v with %d/%d evals",
			res.BestQPS, bestQPS, len(res.History), total)
	}
}

func TestOptimizeBeatsRandomSearch(t *testing.T) {
	space, qps, recall, _ := synthProblem()
	cfg := Config{AccuracyConstraint: 0.8, Budget: 16}
	res, err := Optimize(space, qps, recall, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Random search with the same budget, averaged over a few seeds.
	cands := space.All()
	var randBest float64
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		best := 0.0
		for i := 0; i < cfg.Budget; i++ {
			c := cands[rng.Intn(len(cands))]
			r, _ := recall(c)
			if r >= 0.8 {
				q, _ := qps(c)
				if q > best {
					best = q
				}
			}
		}
		randBest += best
	}
	randBest /= trials
	if res.BestQPS < randBest*0.8 {
		t.Fatalf("DSE (%v) much worse than random search (%v)", res.BestQPS, randBest)
	}
}

func TestOptimizeInfeasibleSpace(t *testing.T) {
	space := Space{P: []int{1}, NList: []int{1024}, M: []int{8}, CB: []int{64}}
	qps := func(Candidate) (float64, error) { return 100, nil }
	recall := func(Candidate) (float64, error) { return 0.3, nil }
	res, err := Optimize(space, qps, recall, Config{AccuracyConstraint: 0.9, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("space is infeasible; result should say so")
	}
	if res.BestRecall != 0.3 {
		t.Fatalf("should return most accurate seen, got %v", res.BestRecall)
	}
}

func TestOptimizeEmptySpace(t *testing.T) {
	if _, err := Optimize(Space{}, nil, nil, Config{}); err == nil {
		t.Fatal("empty space must fail")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	space, qps, recall, _ := synthProblem()
	cfg := Config{AccuracyConstraint: 0.8, Budget: 12}
	a, err := Optimize(space, qps, recall, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(space, qps, recall, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best {
		t.Fatalf("DSE not deterministic: %v vs %v", a.Best, b.Best)
	}
	for i := range a.History {
		if a.History[i].Cand != b.History[i].Cand {
			t.Fatal("evaluation order not deterministic")
		}
	}
}

func TestParetoFront(t *testing.T) {
	hist := []Sample{
		{QPS: 100, Recall: 0.85},
		{QPS: 200, Recall: 0.82}, // non-dominated
		{QPS: 50, Recall: 0.83},  // dominated by first
		{QPS: 80, Recall: 0.95},  // non-dominated
		{QPS: 500, Recall: 0.5},  // infeasible
	}
	front := paretoFront(hist, 0.8)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3: %+v", len(front), front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].QPS > front[i-1].QPS {
			t.Fatal("front not sorted by descending QPS")
		}
	}
}
