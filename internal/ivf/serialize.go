package ivf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"drimann/internal/durable"
	"drimann/internal/mat"
	"drimann/internal/pq"
	"drimann/internal/sqt"
)

// Binary index format, little-endian throughout.
//
// v1 (legacy): a flat header followed by centroid tables, codebooks and
// inverted lists, no checksums, no overlay. Still loadable; only
// writable for unmutated indexes (it cannot represent the overlay, and
// silently dropping live inserts/tombstones is exactly the bug v2
// fixes).
//
// v2 (current): magic u32 | version u32, then four checksummed
// sections, each framed as len u32 | payload | crc u32 (IEEE CRC32 of
// the payload):
//
//	head    dim, nlist, m, cb, hasOPQ (5 × i32)
//	quant   centroids f32* | centroidsU8 u8* | codebooks f32* | [rotation f64*]
//	lists   per cluster: n i32 | ids i32* | codes u16*
//	overlay the mutation append log (EncodeAppendLog; zero-record when clean)
//
// A flipped bit anywhere fails the section CRC instead of deserializing
// garbage, and the overlay section makes Save/Load lossless for a live
// mutated index — insert → save → load → search serves the inserted
// points.
const (
	indexMagic     = 0x44524d41 // "DRMA"
	indexVersion1  = 1
	indexVersion2  = 2
	maxSectionSize = 1 << 31 // sanity cap for corrupt section lengths
)

func writeSection(w io.Writer, payload []byte) error {
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
	if _, err := w.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(frame[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(frame[:])
	return err
}

func readSection(r io.Reader, name string) ([]byte, error) {
	var frame [4]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, fmt.Errorf("ivf: load %s section length: %w", name, err)
	}
	n := binary.LittleEndian.Uint32(frame[:])
	if uint64(n) >= maxSectionSize {
		return nil, fmt.Errorf("ivf: %s section claims %d bytes", name, n)
	}
	// CopyN grows the buffer only as bytes actually arrive, so a
	// corrupt huge length on a short stream fails at EOF instead of
	// attempting a giant upfront allocation.
	var pb bytes.Buffer
	if _, err := io.CopyN(&pb, r, int64(n)); err != nil {
		return nil, fmt.Errorf("ivf: load %s section: %w", name, err)
	}
	payload := pb.Bytes()
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, fmt.Errorf("ivf: load %s section crc: %w", name, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(frame[:]); got != want {
		return nil, fmt.Errorf("ivf: %s section checksum mismatch (%#x != %#x)", name, got, want)
	}
	return payload, nil
}

// Save writes the index in the current (v2) format, including the live
// mutation overlay when present.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, []int32{indexMagic, indexVersion2}); err != nil {
		return fmt.Errorf("ivf: save header: %w", err)
	}

	hasOPQ := int32(0)
	if ix.OPQ != nil {
		hasOPQ = 1
	}
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, []int32{
		int32(ix.Dim), int32(ix.NList), int32(ix.M), int32(ix.CB), hasOPQ,
	}); err != nil {
		return fmt.Errorf("ivf: save head: %w", err)
	}
	if err := writeSection(bw, buf.Bytes()); err != nil {
		return fmt.Errorf("ivf: save head section: %w", err)
	}

	buf.Reset()
	if err := binary.Write(&buf, binary.LittleEndian, ix.Centroids); err != nil {
		return fmt.Errorf("ivf: save centroids: %w", err)
	}
	buf.Write(ix.CentroidsU8)
	if err := binary.Write(&buf, binary.LittleEndian, ix.PQ.Codebooks); err != nil {
		return fmt.Errorf("ivf: save codebooks: %w", err)
	}
	if ix.OPQ != nil {
		if err := binary.Write(&buf, binary.LittleEndian, ix.OPQ.R.Data); err != nil {
			return fmt.Errorf("ivf: save rotation: %w", err)
		}
	}
	if err := writeSection(bw, buf.Bytes()); err != nil {
		return fmt.Errorf("ivf: save quant section: %w", err)
	}

	buf.Reset()
	for c := 0; c < ix.NList; c++ {
		if err := binary.Write(&buf, binary.LittleEndian, int32(len(ix.Lists[c]))); err != nil {
			return fmt.Errorf("ivf: save list %d len: %w", c, err)
		}
		if err := binary.Write(&buf, binary.LittleEndian, ix.Lists[c]); err != nil {
			return fmt.Errorf("ivf: save list %d ids: %w", c, err)
		}
		if err := binary.Write(&buf, binary.LittleEndian, ix.Codes[c]); err != nil {
			return fmt.Errorf("ivf: save list %d codes: %w", c, err)
		}
	}
	if err := writeSection(bw, buf.Bytes()); err != nil {
		return fmt.Errorf("ivf: save lists section: %w", err)
	}

	if err := writeSection(bw, ix.EncodeAppendLog()); err != nil {
		return fmt.Errorf("ivf: save overlay section: %w", err)
	}
	return bw.Flush()
}

// SaveV1 writes the legacy v1 format for compatibility with old
// readers. v1 has no overlay section, so saving a mutated index this
// way would silently lose live inserts and resurrect tombstoned points
// on Load — it is an explicit error instead; Compact first, or use
// Save (v2).
func (ix *Index) SaveV1(w io.Writer) error {
	if ix.HasMutations() {
		return fmt.Errorf("ivf: v1 format cannot represent a live mutation overlay (Compact first, or Save as v2)")
	}
	bw := bufio.NewWriter(w)
	head := []int32{
		indexMagic, indexVersion1,
		int32(ix.Dim), int32(ix.NList), int32(ix.M), int32(ix.CB),
	}
	if err := binary.Write(bw, binary.LittleEndian, head); err != nil {
		return fmt.Errorf("ivf: save header: %w", err)
	}
	hasOPQ := int32(0)
	if ix.OPQ != nil {
		hasOPQ = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hasOPQ); err != nil {
		return fmt.Errorf("ivf: save flags: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.Centroids); err != nil {
		return fmt.Errorf("ivf: save centroids: %w", err)
	}
	if _, err := bw.Write(ix.CentroidsU8); err != nil {
		return fmt.Errorf("ivf: save u8 centroids: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.PQ.Codebooks); err != nil {
		return fmt.Errorf("ivf: save codebooks: %w", err)
	}
	if ix.OPQ != nil {
		if err := binary.Write(bw, binary.LittleEndian, ix.OPQ.R.Data); err != nil {
			return fmt.Errorf("ivf: save rotation: %w", err)
		}
	}
	for c := 0; c < ix.NList; c++ {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(ix.Lists[c]))); err != nil {
			return fmt.Errorf("ivf: save list %d len: %w", c, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, ix.Lists[c]); err != nil {
			return fmt.Errorf("ivf: save list %d ids: %w", c, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, ix.Codes[c]); err != nil {
			return fmt.Errorf("ivf: save list %d codes: %w", c, err)
		}
	}
	return bw.Flush()
}

// Load reads an index written by Save (v2) or SaveV1 (legacy v1).
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]int32, 2)
	if err := binary.Read(br, binary.LittleEndian, head); err != nil {
		return nil, fmt.Errorf("ivf: load header: %w", err)
	}
	if head[0] != indexMagic {
		return nil, fmt.Errorf("ivf: bad magic %#x", head[0])
	}
	switch head[1] {
	case indexVersion1:
		return loadV1(br)
	case indexVersion2:
		return loadV2(br)
	default:
		return nil, fmt.Errorf("ivf: unsupported version %d", head[1])
	}
}

// newLoadShell validates the shape parameters shared by both versions
// and allocates an index with empty lists.
func newLoadShell(dim, nlist, m, cb int) (*Index, error) {
	if dim <= 0 || nlist <= 0 || m <= 0 || cb <= 0 || dim%m != 0 {
		return nil, fmt.Errorf("ivf: corrupt header dim=%d nlist=%d m=%d cb=%d", dim, nlist, m, cb)
	}
	return &Index{
		Dim: dim, NList: nlist, M: m, CB: cb,
		Centroids:   make([]float32, nlist*dim),
		CentroidsU8: make([]uint8, nlist*dim),
		PQ:          &pq.Quantizer{D: dim, M: m, CB: cb, DSub: dim / m, Codebooks: make([]float32, m*cb*(dim/m))},
		SQT:         sqt.NewSQT8(),
	}, nil
}

func loadV1(br *bufio.Reader) (*Index, error) {
	dims := make([]int32, 4)
	if err := binary.Read(br, binary.LittleEndian, dims); err != nil {
		return nil, fmt.Errorf("ivf: load header: %w", err)
	}
	ix, err := newLoadShell(int(dims[0]), int(dims[1]), int(dims[2]), int(dims[3]))
	if err != nil {
		return nil, err
	}
	var hasOPQ int32
	if err := binary.Read(br, binary.LittleEndian, &hasOPQ); err != nil {
		return nil, fmt.Errorf("ivf: load flags: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, ix.Centroids); err != nil {
		return nil, fmt.Errorf("ivf: load centroids: %w", err)
	}
	if _, err := io.ReadFull(br, ix.CentroidsU8); err != nil {
		return nil, fmt.Errorf("ivf: load u8 centroids: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, ix.PQ.Codebooks); err != nil {
		return nil, fmt.Errorf("ivf: load codebooks: %w", err)
	}
	if hasOPQ == 1 {
		rot := make([]float64, ix.Dim*ix.Dim)
		if err := binary.Read(br, binary.LittleEndian, rot); err != nil {
			return nil, fmt.Errorf("ivf: load rotation: %w", err)
		}
		ix.OPQ = &pq.OPQ{R: &mat.Dense{Rows: ix.Dim, Cols: ix.Dim, Data: rot}, PQ: ix.PQ}
	}
	ix.IntCB = ix.PQ.QuantizeCodebooks()
	ix.Lists = make([][]int32, ix.NList)
	ix.Codes = make([][]uint16, ix.NList)
	for c := 0; c < ix.NList; c++ {
		var n int32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("ivf: load list %d len: %w", c, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("ivf: corrupt list length %d", n)
		}
		ix.Lists[c] = make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, ix.Lists[c]); err != nil {
			return nil, fmt.Errorf("ivf: load list %d ids: %w", c, err)
		}
		ix.Codes[c] = make([]uint16, int(n)*ix.M)
		if err := binary.Read(br, binary.LittleEndian, ix.Codes[c]); err != nil {
			return nil, fmt.Errorf("ivf: load list %d codes: %w", c, err)
		}
	}
	return ix, nil
}

func loadV2(br *bufio.Reader) (*Index, error) {
	headSec, err := readSection(br, "head")
	if err != nil {
		return nil, err
	}
	if len(headSec) != 5*4 {
		return nil, fmt.Errorf("ivf: head section is %d bytes, want 20", len(headSec))
	}
	h := make([]int32, 5)
	if err := binary.Read(bytes.NewReader(headSec), binary.LittleEndian, h); err != nil {
		return nil, err
	}
	ix, err := newLoadShell(int(h[0]), int(h[1]), int(h[2]), int(h[3]))
	if err != nil {
		return nil, err
	}
	hasOPQ := h[4]
	if hasOPQ != 0 && hasOPQ != 1 {
		return nil, fmt.Errorf("ivf: corrupt OPQ flag %d", hasOPQ)
	}

	quantSec, err := readSection(br, "quant")
	if err != nil {
		return nil, err
	}
	wantQuant := 4*len(ix.Centroids) + len(ix.CentroidsU8) + 4*len(ix.PQ.Codebooks)
	if hasOPQ == 1 {
		wantQuant += 8 * ix.Dim * ix.Dim
	}
	if len(quantSec) != wantQuant {
		return nil, fmt.Errorf("ivf: quant section is %d bytes, want %d", len(quantSec), wantQuant)
	}
	qr := bytes.NewReader(quantSec)
	if err := binary.Read(qr, binary.LittleEndian, ix.Centroids); err != nil {
		return nil, fmt.Errorf("ivf: load centroids: %w", err)
	}
	if _, err := io.ReadFull(qr, ix.CentroidsU8); err != nil {
		return nil, fmt.Errorf("ivf: load u8 centroids: %w", err)
	}
	if err := binary.Read(qr, binary.LittleEndian, ix.PQ.Codebooks); err != nil {
		return nil, fmt.Errorf("ivf: load codebooks: %w", err)
	}
	if hasOPQ == 1 {
		rot := make([]float64, ix.Dim*ix.Dim)
		if err := binary.Read(qr, binary.LittleEndian, rot); err != nil {
			return nil, fmt.Errorf("ivf: load rotation: %w", err)
		}
		ix.OPQ = &pq.OPQ{R: &mat.Dense{Rows: ix.Dim, Cols: ix.Dim, Data: rot}, PQ: ix.PQ}
	}
	ix.IntCB = ix.PQ.QuantizeCodebooks()

	listsSec, err := readSection(br, "lists")
	if err != nil {
		return nil, err
	}
	lr := logReader{data: listsSec}
	ix.Lists = make([][]int32, ix.NList)
	ix.Codes = make([][]uint16, ix.NList)
	for c := 0; c < ix.NList; c++ {
		n := int(int32(lr.u32()))
		if lr.err != nil {
			return nil, fmt.Errorf("ivf: load list %d len: %w", c, lr.err)
		}
		if n < 0 || int64(n)*int64(4+2*ix.M) > int64(lr.remaining()) {
			return nil, fmt.Errorf("ivf: corrupt list %d length %d", c, n)
		}
		ix.Lists[c] = make([]int32, n)
		for i := range ix.Lists[c] {
			ix.Lists[c][i] = int32(lr.u32())
		}
		ix.Codes[c] = make([]uint16, n*ix.M)
		for i := range ix.Codes[c] {
			ix.Codes[c][i] = lr.u16()
		}
		if lr.err != nil {
			return nil, fmt.Errorf("ivf: load list %d: %w", c, lr.err)
		}
	}
	if lr.remaining() != 0 {
		return nil, fmt.Errorf("ivf: %d trailing bytes in lists section", lr.remaining())
	}

	overlaySec, err := readSection(br, "overlay")
	if err != nil {
		return nil, err
	}
	if err := ix.DecodeAppendLog(overlaySec); err != nil {
		return nil, err
	}
	if !ix.HasMutations() {
		// A zero-record overlay decodes to an instantiated-but-empty
		// mutState; drop it so a clean index loads pristine, exactly
		// like a v1 load.
		ix.mut = nil
	}
	return ix, nil
}

// SaveFile writes the index to path atomically: the bytes land in a
// temp file, are fsynced, and replace path in one rename — a crash
// mid-save leaves the previous good snapshot intact instead of a
// truncated file.
func (ix *Index) SaveFile(path string) error {
	return durable.WriteFileAtomic(durable.OS{}, path, ix.Save)
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ivf: %w", err)
	}
	defer f.Close()
	return Load(f)
}
