package ivf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"drimann/internal/mat"
	"drimann/internal/pq"
	"drimann/internal/sqt"
)

// Binary index format: a versioned header followed by the centroid tables,
// codebooks and inverted lists, all little-endian. OPQ rotations are stored
// when present. Intended for cmd/drim-search style offline build-once /
// serve-many workflows.

const (
	indexMagic   = 0x44524d41 // "DRMA"
	indexVersion = 1
)

// Save writes the index to w.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	head := []int32{
		indexMagic, indexVersion,
		int32(ix.Dim), int32(ix.NList), int32(ix.M), int32(ix.CB),
	}
	if err := binary.Write(bw, binary.LittleEndian, head); err != nil {
		return fmt.Errorf("ivf: save header: %w", err)
	}
	hasOPQ := int32(0)
	if ix.OPQ != nil {
		hasOPQ = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hasOPQ); err != nil {
		return fmt.Errorf("ivf: save flags: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.Centroids); err != nil {
		return fmt.Errorf("ivf: save centroids: %w", err)
	}
	if _, err := bw.Write(ix.CentroidsU8); err != nil {
		return fmt.Errorf("ivf: save u8 centroids: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.PQ.Codebooks); err != nil {
		return fmt.Errorf("ivf: save codebooks: %w", err)
	}
	if ix.OPQ != nil {
		if err := binary.Write(bw, binary.LittleEndian, ix.OPQ.R.Data); err != nil {
			return fmt.Errorf("ivf: save rotation: %w", err)
		}
	}
	for c := 0; c < ix.NList; c++ {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(ix.Lists[c]))); err != nil {
			return fmt.Errorf("ivf: save list %d len: %w", c, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, ix.Lists[c]); err != nil {
			return fmt.Errorf("ivf: save list %d ids: %w", c, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, ix.Codes[c]); err != nil {
			return fmt.Errorf("ivf: save list %d codes: %w", c, err)
		}
	}
	return bw.Flush()
}

// Load reads an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]int32, 6)
	if err := binary.Read(br, binary.LittleEndian, head); err != nil {
		return nil, fmt.Errorf("ivf: load header: %w", err)
	}
	if head[0] != indexMagic {
		return nil, fmt.Errorf("ivf: bad magic %#x", head[0])
	}
	if head[1] != indexVersion {
		return nil, fmt.Errorf("ivf: unsupported version %d", head[1])
	}
	dim, nlist, m, cb := int(head[2]), int(head[3]), int(head[4]), int(head[5])
	if dim <= 0 || nlist <= 0 || m <= 0 || cb <= 0 || dim%m != 0 {
		return nil, fmt.Errorf("ivf: corrupt header %v", head)
	}
	var hasOPQ int32
	if err := binary.Read(br, binary.LittleEndian, &hasOPQ); err != nil {
		return nil, fmt.Errorf("ivf: load flags: %w", err)
	}

	ix := &Index{
		Dim: dim, NList: nlist, M: m, CB: cb,
		Centroids:   make([]float32, nlist*dim),
		CentroidsU8: make([]uint8, nlist*dim),
		PQ:          &pq.Quantizer{D: dim, M: m, CB: cb, DSub: dim / m, Codebooks: make([]float32, m*cb*(dim/m))},
		SQT:         sqt.NewSQT8(),
	}
	if err := binary.Read(br, binary.LittleEndian, ix.Centroids); err != nil {
		return nil, fmt.Errorf("ivf: load centroids: %w", err)
	}
	if _, err := io.ReadFull(br, ix.CentroidsU8); err != nil {
		return nil, fmt.Errorf("ivf: load u8 centroids: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, ix.PQ.Codebooks); err != nil {
		return nil, fmt.Errorf("ivf: load codebooks: %w", err)
	}
	if hasOPQ == 1 {
		rot := make([]float64, dim*dim)
		if err := binary.Read(br, binary.LittleEndian, rot); err != nil {
			return nil, fmt.Errorf("ivf: load rotation: %w", err)
		}
		ix.OPQ = &pq.OPQ{R: &mat.Dense{Rows: dim, Cols: dim, Data: rot}, PQ: ix.PQ}
	}
	ix.IntCB = ix.PQ.QuantizeCodebooks()
	ix.Lists = make([][]int32, nlist)
	ix.Codes = make([][]uint16, nlist)
	for c := 0; c < nlist; c++ {
		var n int32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("ivf: load list %d len: %w", c, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("ivf: corrupt list length %d", n)
		}
		ix.Lists[c] = make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, ix.Lists[c]); err != nil {
			return nil, fmt.Errorf("ivf: load list %d ids: %w", c, err)
		}
		ix.Codes[c] = make([]uint16, int(n)*m)
		if err := binary.Read(br, binary.LittleEndian, ix.Codes[c]); err != nil {
			return nil, fmt.Errorf("ivf: load list %d codes: %w", c, err)
		}
	}
	return ix, nil
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ivf: %w", err)
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ivf: %w", err)
	}
	defer f.Close()
	return Load(f)
}
