package ivf

import (
	"testing"

	"drimann/internal/dataset"
)

func TestBuildTreeCLValidation(t *testing.T) {
	ix, _ := smallIndex(t, "pq")
	if _, err := ix.BuildTreeCL(1, 1); err == nil {
		t.Fatal("branch < 2 must fail")
	}
	if _, err := ix.BuildTreeCL(ix.NList, 1); err == nil {
		t.Fatal("branch >= nlist must fail")
	}
}

func TestTreeCLPartitionsClusters(t *testing.T) {
	ix, _ := smallIndex(t, "pq")
	tree, err := ix.BuildTreeCL(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, ch := range tree.Children {
		for _, c := range ch {
			if seen[c] {
				t.Fatalf("cluster %d routed to two upper nodes", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != ix.NList {
		t.Fatalf("tree covers %d clusters, want %d", len(seen), ix.NList)
	}
}

func TestTreeCLScansFewerCentroids(t *testing.T) {
	ix, _ := smallIndex(t, "pq")
	tree, err := ix.BuildTreeCL(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if scanned := tree.CentroidsScanned(0); scanned >= ix.NList {
		t.Fatalf("tree CL should scan fewer than nlist=%d centroids, got %d", ix.NList, scanned)
	}
}

func TestTreeCLRecallCloseToFlat(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	tree, err := ix.BuildTreeCL(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	const k, nprobe = 10, 16
	gt := dataset.GroundTruth(s.Base, s.Queries, k, 0)

	flat := ix.SearchIntBatch(s.Queries, nprobe, k, 0)
	treeRes := make([][]int32, s.Queries.N)
	for qi := 0; qi < s.Queries.N; qi++ {
		items := ix.SearchIntTree(tree, s.Queries.Vec(qi), nprobe, 0, k)
		ids := make([]int32, len(items))
		for j, it := range items {
			ids[j] = it.ID
		}
		treeRes[qi] = ids
	}
	rFlat := dataset.Recall(gt, flat, k)
	rTree := dataset.Recall(gt, treeRes, k)
	if rTree < rFlat-0.10 {
		t.Fatalf("tree CL recall %v too far below flat CL %v", rTree, rFlat)
	}
}

func TestTreeCLFullBeamMatchesFlat(t *testing.T) {
	// With beam = branch the tree scans every child list, so the probe set
	// and therefore the results must equal the flat locator's exactly.
	ix, s := smallIndex(t, "pq")
	tree, err := ix.BuildTreeCL(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	const k, nprobe = 5, 12
	for qi := 0; qi < 10; qi++ {
		want := ix.SearchInt(s.Queries.Vec(qi), nprobe, k)
		got := ix.SearchIntTree(tree, s.Queries.Vec(qi), nprobe, tree.Branch, k)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("full-beam tree CL diverges from flat at query %d", qi)
			}
		}
	}
}
