package ivf

import (
	"sync"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/pq"
)

var (
	benchOnce sync.Once
	benchIx   *Index
	benchData *dataset.Synth
)

func benchIndex(b *testing.B) (*Index, *dataset.Synth) {
	b.Helper()
	benchOnce.Do(func() {
		benchData = dataset.Generate(dataset.SynthConfig{
			N: 20000, D: 64, NumQueries: 64, NumClusters: 64, Noise: 9, Seed: 13,
		})
		ix, err := Build(benchData.Base, BuildConfig{
			NList: 128, PQ: pq.Config{M: 16, CB: 64}, Seed: 3,
		})
		if err != nil {
			panic(err)
		}
		benchIx = ix
	})
	return benchIx, benchData
}

func BenchmarkLocateInt(b *testing.B) {
	ix, s := benchIndex(b)
	for i := 0; i < b.N; i++ {
		ix.LocateInt(s.Queries.Vec(i%s.Queries.N), 16)
	}
}

func BenchmarkSearchIntNprobe16(b *testing.B) {
	ix, s := benchIndex(b)
	for i := 0; i < b.N; i++ {
		ix.SearchInt(s.Queries.Vec(i%s.Queries.N), 16, 10)
	}
}

func BenchmarkSearchFloatNprobe16(b *testing.B) {
	ix, s := benchIndex(b)
	for i := 0; i < b.N; i++ {
		ix.Search(s.Queries.Vec(i%s.Queries.N), 16, 10)
	}
}

func BenchmarkBuild20k(b *testing.B) {
	_, s := benchIndex(b)
	for i := 0; i < b.N; i++ {
		if _, err := Build(s.Base, BuildConfig{
			NList: 128, PQ: pq.Config{M: 16, CB: 64, Iters: 8}, KMeansIters: 8, Seed: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
