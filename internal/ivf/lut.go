package ivf

import (
	"sync"

	"drimann/internal/vecmath"
)

// LUTBuilder is the wall-clock-optimized host implementation of the LC
// kernel: it produces distance LUTs bit-identical to IntCodebooks.LUTInt /
// LUTIntMul while doing ~6-8x less arithmetic per (query, cluster) pair.
//
// It exploits the algebraic decomposition of the squared distance between a
// residual subvector r = q - c and a codebook entry e:
//
//	Σ_j (q_j - c_j - e_j)²  =  [Σ q_j² - 2 Σ q_j c_j]  (per query+cluster, Dim ops)
//	                         + [Σ (c_j + e_j)²]        (per cluster, precomputed)
//	                         - 2 [Σ q_j e_j]           (per query, amortized over clusters)
//
// The middle term is a per-index table built once at engine deployment; the
// last term is computed once per query and reused for every cluster that
// query probes in a launch. Only the simulator's *functional* computation
// changes — the DPU cost model still charges the paper's multiplier-less SQT
// kernel (Equations 6-7), which is unaffected by how the host obtains the
// bit-identical LUT values.
//
// All arithmetic is int32-exact: operands are bounded by |c_j + e_j| <= 510
// and dsub <= 4096, keeping every partial sum far below overflow.
type LUTBuilder struct {
	ix   *Index
	dsub int
	// b[(c*M+m)*CB+e] = Σ_j (centroid_c[m*dsub+j] + entry_{m,e}[j])², laid
	// out so one (query, cluster) build streams it exactly like the LUT.
	b []int32
}

// lutBuilderBudgetBytes caps the precomputed table; past it (huge NList*CB
// products) callers fall back to direct LUTInt construction.
const lutBuilderBudgetBytes = 512 << 20

// NewLUTBuilder precomputes the per-cluster term across workers goroutines
// (0 = serial). It returns nil when the table would exceed the memory
// budget; callers must then use IntCodebooks.LUTInt directly.
func (ix *Index) NewLUTBuilder(workers int) *LUTBuilder {
	m, cb := ix.M, ix.CB
	dsub := ix.Dim / m
	entries := ix.NList * m * cb
	if entries <= 0 || entries > lutBuilderBudgetBytes/4 {
		return nil
	}
	lb := &LUTBuilder{ix: ix, dsub: dsub, b: make([]int32, entries)}
	if workers <= 1 {
		for c := 0; c < ix.NList; c++ {
			lb.fillCluster(c)
		}
		return lb
	}
	var wg sync.WaitGroup
	chunk := (ix.NList + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > ix.NList {
			hi = ix.NList
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for c := lo; c < hi; c++ {
				lb.fillCluster(c)
			}
		}(lo, hi)
	}
	wg.Wait()
	return lb
}

func (lb *LUTBuilder) fillCluster(c int) {
	ix, m, cb, dsub := lb.ix, lb.ix.M, lb.ix.CB, lb.dsub
	cent := ix.CentroidU8(c)
	for mi := 0; mi < m; mi++ {
		csub := cent[mi*dsub : (mi+1)*dsub]
		rows := ix.IntCB.Data[mi*cb*dsub : (mi+1)*cb*dsub]
		out := lb.b[(c*m+mi)*cb : (c*m+mi+1)*cb]
		for e := range out {
			row := rows[e*dsub : (e+1)*dsub : (e+1)*dsub]
			var s int32
			for j, cv := range csub {
				t := int32(cv) + int32(row[j])
				s += t * t
			}
			out[e] = s
		}
	}
}

// LUTScratch carries the per-query terms of the decomposition. One scratch
// serves one goroutine; reusing it across consecutive clusters of the same
// query (matched by qid) is where the amortization comes from.
type LUTScratch struct {
	qid int32   // query the cached terms belong to; -1 = none
	a   []int32 // M: Σ_j q_j² per subspace
	qe  []int32 // M*CB: Σ_j q_j * entry_j
}

// NewScratch returns an empty per-goroutine scratch.
func (lb *LUTBuilder) NewScratch() *LUTScratch {
	return &LUTScratch{
		qid: -1,
		a:   make([]int32, lb.ix.M),
		qe:  make([]int32, lb.ix.M*lb.ix.CB),
	}
}

// Invalidate drops the cached per-query terms. Callers that reuse scratches
// across searches MUST invalidate between them: qids are only unique within
// one search, so a stale cache would silently serve another query's terms.
func (sc *LUTScratch) Invalidate() { sc.qid = -1 }

// BuildQE fills qe (length M*CB) with the per-query gather table of the
// decomposition: qe[m*CB+e] = Σ_j q_j * entry_{m,e}[j]. Together with the
// precomputed per-cluster point sums (ClusterADCSums) and the per-(query,
// cluster) scalar (PTerm), it lets a DC kernel evaluate exact LUT sums
// point-by-point without materializing any per-group LUT — see
// vecmath.ADCResidualBatch for the identity.
func (lb *LUTBuilder) BuildQE(query []uint8, qe []int32) {
	ix, m, cb, dsub := lb.ix, lb.ix.M, lb.ix.CB, lb.dsub
	for mi := 0; mi < m; mi++ {
		sub := query[mi*dsub : (mi+1)*dsub]
		rows := ix.IntCB.Data[mi*cb*dsub : (mi+1)*cb*dsub]
		out := qe[mi*cb : (mi+1)*cb]
		if dsub == 8 {
			// Dominant shape (e.g. 128d / M=16): hoist the query subvector
			// into registers and unroll the dot product; int32 addition is
			// associative, so the result is unchanged.
			q0, q1 := int32(sub[0]), int32(sub[1])
			q2, q3 := int32(sub[2]), int32(sub[3])
			q4, q5 := int32(sub[4]), int32(sub[5])
			q6, q7 := int32(sub[6]), int32(sub[7])
			for e := range out {
				row := rows[e*8 : e*8+8 : e*8+8]
				s01 := q0*int32(row[0]) + q1*int32(row[1])
				s23 := q2*int32(row[2]) + q3*int32(row[3])
				s45 := q4*int32(row[4]) + q5*int32(row[5])
				s67 := q6*int32(row[6]) + q7*int32(row[7])
				out[e] = (s01 + s23) + (s45 + s67)
			}
			continue
		}
		for e := range out {
			row := rows[e*dsub : (e+1)*dsub : (e+1)*dsub]
			var s int32
			for j, q := range sub {
				s += int32(q) * int32(row[j])
			}
			out[e] = s
		}
	}
}

// PTerm returns the per-(query, cluster) scalar of the decomposition summed
// over all M subspaces: Σ_j q_j² - 2 Σ_j q_j c_j. Adding it to a point's
// ClusterADCSums entry minus twice its BuildQE gathers reproduces, exactly,
// the sum over M of the LUT entries Build would materialize (all partial
// sums stay far below int32 overflow, so the grouping of terms is free).
func (lb *LUTBuilder) PTerm(query []uint8, cluster int) int32 {
	return lb.PTermQQ(vecmath.DotU8I32(query, query), query, cluster)
}

// PTermQQ is PTerm with the query self-product qq = Σ_j q_j² precomputed,
// for callers that amortize it over every cluster the query probes.
func (lb *LUTBuilder) PTermQQ(qq int32, query []uint8, cluster int) int32 {
	return qq - 2*vecmath.DotU8I32(query, lb.ix.CentroidU8(cluster))
}

// ClusterADCSums fills dst[i] = Σ_m b_c[m][code_im] over the cluster's
// packed code matrix — the static per-point term of the decomposition,
// computable once per index deployment because it depends only on the
// cluster centroid and the codebook.
func (lb *LUTBuilder) ClusterADCSums(c int, codes []uint16, dst []int32) {
	m, cb := lb.ix.M, lb.ix.CB
	bc := lb.b[c*m*cb : (c+1)*m*cb]
	for i := range dst {
		code := codes[i*m : (i+1)*m]
		var s int32
		for mi, e := range code {
			s += bc[mi*cb+int(e)]
		}
		dst[i] = s
	}
}

// Build fills lut (length M*CB) with exactly the values LUTInt would produce
// for residual query-centroid(cluster). qid identifies the query for scratch
// reuse; callers must pass a stable id per distinct query vector.
func (lb *LUTBuilder) Build(qid int32, query []uint8, cluster int, lut []uint32, sc *LUTScratch) {
	ix, m, cb, dsub := lb.ix, lb.ix.M, lb.ix.CB, lb.dsub
	if sc.qid != qid {
		sc.qid = qid
		lb.BuildQE(query, sc.qe)
		for mi := 0; mi < m; mi++ {
			sub := query[mi*dsub : (mi+1)*dsub]
			var a int32
			for _, q := range sub {
				a += int32(q) * int32(q)
			}
			sc.a[mi] = a
		}
	}
	cent := ix.CentroidU8(cluster)
	bCluster := lb.b[cluster*m*cb : (cluster+1)*m*cb]
	for mi := 0; mi < m; mi++ {
		sub := query[mi*dsub : (mi+1)*dsub]
		csub := cent[mi*dsub : (mi+1)*dsub]
		var qc int32
		for j, q := range sub {
			qc += int32(q) * int32(csub[j])
		}
		p := sc.a[mi] - 2*qc
		qe := sc.qe[mi*cb : (mi+1)*cb : (mi+1)*cb]
		bb := bCluster[mi*cb : (mi+1)*cb : (mi+1)*cb]
		out := lut[mi*cb : (mi+1)*cb]
		for e := range out {
			out[e] = uint32(p + bb[e] - 2*qe[e])
		}
	}
}
