// Live index mutability: per-cluster append segments plus tombstone sets
// layered over the packed inverted lists (an LSM-flavored overlay). Inserts
// PQ-encode against the frozen quantizers (coarse centroids, codebooks, OPQ
// rotation are never retrained) and land in the owning cluster's append
// segment; deletes tombstone base-list entries in place, or drop append
// entries directly. Compact folds both back into the packed Lists/Codes
// arenas — only for clusters that actually changed — restoring the exact
// layout Build would have produced over the same logical corpus.
//
// Mutations are NOT safe concurrently with each other or with searches over
// the same Index; callers (the core engine, the serve batcher) serialize
// them at launch boundaries.

package ivf

import (
	"encoding/binary"
	"fmt"
	"sort"

	"drimann/internal/dataset"
	"drimann/internal/vecmath"
)

// mutState is the mutation overlay. It is created lazily on the first
// Insert/Delete and discarded whole by Compact.
type mutState struct {
	appendIDs   [][]int32  // per cluster: ids appended since last compaction
	appendCodes [][]uint16 // per cluster: their PQ codes, M entries each
	tomb        []map[int32]bool // per cluster: deleted BASE-list ids only
	where       map[int32]int32  // live id -> owning cluster
	nAppend     int
	nTomb       int
	esc         *EncodeScratch
}

// EncodeScratch carries the float buffers AssignVec/EncodeVec need. One
// scratch serves one goroutine.
type EncodeScratch struct {
	f32 []float32
	res []float32
}

// NewEncodeScratch allocates a scratch sized for this index.
func (ix *Index) NewEncodeScratch() *EncodeScratch {
	return &EncodeScratch{f32: make([]float32, ix.Dim), res: make([]float32, ix.Dim)}
}

func (ix *Index) ensureMut() *mutState {
	if m := ix.mut; m != nil {
		return m
	}
	m := &mutState{
		appendIDs:   make([][]int32, ix.NList),
		appendCodes: make([][]uint16, ix.NList),
		tomb:        make([]map[int32]bool, ix.NList),
		where:       make(map[int32]int32),
		esc:         ix.NewEncodeScratch(),
	}
	for c, list := range ix.Lists {
		for _, id := range list {
			m.where[id] = int32(c)
		}
	}
	ix.mut = m
	return m
}

// AssignVec returns the nearest-centroid cluster of one uint8 vector on the
// float path — bit-identical to Build's coarse assignment, which runs
// vecmath.ArgMinL2F32 over the float-converted corpus (uint8→float32
// conversion is exact, so converting one vector here matches converting the
// whole set there).
func (ix *Index) AssignVec(vec []uint8, sc *EncodeScratch) int32 {
	vecmath.U8ToF32(sc.f32, vec)
	c, _ := vecmath.ArgMinL2F32(sc.f32, ix.Centroids, ix.Dim)
	return int32(c)
}

// EncodeVec PQ-encodes one uint8 vector against cluster c's centroid with
// the frozen quantizers, writing M code entries into code. The arithmetic
// (SubF32 residual, optional OPQ rotation, per-subspace ArgMin encode) is
// exactly Build's, so a vector inserted then compacted carries the same code
// a fresh Build would give it.
func (ix *Index) EncodeVec(vec []uint8, c int32, code []uint16, sc *EncodeScratch) {
	vecmath.U8ToF32(sc.f32, vec)
	vecmath.SubF32(sc.res, sc.f32, ix.Centroids[int(c)*ix.Dim:(int(c)+1)*ix.Dim])
	r := sc.res
	if ix.OPQ != nil {
		r = ix.OPQ.Rotate(sc.res)
	}
	ix.PQ.Encode(r, code)
}

// Insert adds one vector under id: assign to the nearest centroid, encode
// with the frozen quantizers, append to that cluster's segment. The id must
// not be live; delete first to replace (the delete-then-reinsert sequence is
// well-defined even for base-list ids — the old copy stays tombstoned while
// the new one serves from the append segment).
func (ix *Index) Insert(id int32, vec []uint8) (int32, error) {
	if len(vec) != ix.Dim {
		return 0, fmt.Errorf("ivf: insert vector has dim %d, index has %d", len(vec), ix.Dim)
	}
	if id < 0 {
		return 0, fmt.Errorf("ivf: insert id %d negative", id)
	}
	m := ix.ensureMut()
	if _, ok := m.where[id]; ok {
		return 0, fmt.Errorf("ivf: id %d already present (delete it first)", id)
	}
	c := ix.AssignVec(vec, m.esc)
	off := len(m.appendCodes[c])
	m.appendCodes[c] = append(m.appendCodes[c], make([]uint16, ix.M)...)
	ix.EncodeVec(vec, c, m.appendCodes[c][off:off+ix.M], m.esc)
	m.appendIDs[c] = append(m.appendIDs[c], id)
	m.where[id] = c
	m.nAppend++
	return c, nil
}

// Delete removes id from the logical corpus. A base-list id is tombstoned in
// place (the code stays physically present until Compact); an append-segment
// id is removed immediately, shifting later append entries down one slot.
// It returns the owning cluster and the removed append position (-1 for a
// base tombstone) so engine-side per-point tables can mirror the shift.
func (ix *Index) Delete(id int32) (cluster int32, appendPos int, err error) {
	m := ix.ensureMut()
	c, ok := m.where[id]
	if !ok {
		return 0, 0, fmt.Errorf("ivf: id %d not present", id)
	}
	delete(m.where, id)
	ids := m.appendIDs[c]
	for i, aid := range ids {
		if aid != id {
			continue
		}
		m.appendIDs[c] = append(ids[:i], ids[i+1:]...)
		codes := m.appendCodes[c]
		m.appendCodes[c] = append(codes[:i*ix.M], codes[(i+1)*ix.M:]...)
		m.nAppend--
		return c, i, nil
	}
	if m.tomb[c] == nil {
		m.tomb[c] = make(map[int32]bool)
	}
	m.tomb[c][id] = true
	m.nTomb++
	return c, -1, nil
}

// AppendLen returns the number of points in cluster c's append segment.
func (ix *Index) AppendLen(c int) int {
	if ix.mut == nil {
		return 0
	}
	return len(ix.mut.appendIDs[c])
}

// AppendIDs returns cluster c's append-segment ids (a view, not a copy).
func (ix *Index) AppendIDs(c int) []int32 {
	if ix.mut == nil {
		return nil
	}
	return ix.mut.appendIDs[c]
}

// AppendCodes returns cluster c's append-segment PQ codes (a view).
func (ix *Index) AppendCodes(c int) []uint16 {
	if ix.mut == nil {
		return nil
	}
	return ix.mut.appendCodes[c]
}

// Tombstoned returns cluster c's base-list tombstone set, nil when empty —
// scan kernels branch on nil to keep the unmutated fast path untouched. The
// set applies to the base list only; append segments never contain dead ids.
func (ix *Index) Tombstoned(c int) map[int32]bool {
	if ix.mut == nil {
		return nil
	}
	t := ix.mut.tomb[c]
	if len(t) == 0 {
		return nil
	}
	return t
}

// DetachOverlay serializes the live mutation overlay (EncodeAppendLog)
// and removes it from the index, leaving the packed base lists behind.
// Recovery uses it to split a checkpoint snapshot into the part the
// engine deploys over (base lists, exactly as they were at deploy time)
// and the overlay it re-adopts afterwards via DecodeAppendLog.
func (ix *Index) DetachOverlay() []byte {
	log := ix.EncodeAppendLog()
	ix.mut = nil
	return log
}

// HasMutations reports whether any uncompacted insert or delete exists.
func (ix *Index) HasMutations() bool {
	return ix.mut != nil && (ix.mut.nAppend > 0 || ix.mut.nTomb > 0)
}

// WhereIs returns the owning cluster of a live id.
func (ix *Index) WhereIs(id int32) (int32, bool) {
	if ix.mut != nil {
		c, ok := ix.mut.where[id]
		return c, ok
	}
	for c, list := range ix.Lists {
		for _, x := range list {
			if x == id {
				return int32(c), true
			}
		}
	}
	return 0, false
}

// LiveIDs returns every live id in ascending order: base lists minus
// tombstones, plus append segments.
func (ix *Index) LiveIDs() []int32 {
	var out []int32
	if ix.mut != nil {
		out = make([]int32, 0, len(ix.mut.where))
		for id := range ix.mut.where {
			out = append(out, id)
		}
	} else {
		for _, list := range ix.Lists {
			out = append(out, list...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MutationBytes reports the live overlay's footprint: append ids + codes
// plus tombstone entries. Zero once compacted.
func (ix *Index) MutationBytes() int64 {
	if ix.mut == nil {
		return 0
	}
	return int64(ix.mut.nAppend)*int64(4+2*ix.M) + int64(ix.mut.nTomb)*4
}

// Compact folds append segments and tombstones back into the packed
// Lists/Codes arenas and discards the overlay. Only clusters whose content
// changed are rebuilt; within each, surviving base entries and append
// entries merge in ascending-id order — the order Build produces — so a
// compacted index is bit-identical to a fresh frozen-quantizer build over
// the same logical corpus. It returns the rebuilt clusters (callers
// invalidate per-point derived tables for exactly those).
func (ix *Index) Compact() ([]int32, error) { return ix.CompactRemap(nil) }

// CompactRemap is Compact with a simultaneous id relabeling: live id x
// becomes remap[x] (remap must be injective over live ids, len > max live
// id). The sharded layer uses it to renumber shard-local ids back to the
// dense monotone space its remap tables require. When remap reorders a
// cluster's surviving base entries (it never does under a monotone remap),
// that cluster is re-sorted and reported dirty too.
func (ix *Index) CompactRemap(remap []int32) ([]int32, error) {
	m := ix.mut
	if m == nil && remap == nil {
		return nil, nil
	}
	var dirty []int32
	if m != nil {
		for c := 0; c < ix.NList; c++ {
			if len(m.appendIDs[c]) > 0 || len(m.tomb[c]) > 0 {
				dirty = append(dirty, int32(c))
			}
		}
	}
	if remap != nil {
		for _, id := range ix.LiveIDs() {
			if int(id) >= len(remap) {
				return nil, fmt.Errorf("ivf: remap table len %d does not cover live id %d", len(remap), id)
			}
		}
	}
	isDirty := make(map[int32]bool, len(dirty))
	for _, c := range dirty {
		isDirty[c] = true
	}
	for c := 0; c < ix.NList; c++ {
		if isDirty[int32(c)] {
			ix.rebuildCluster(c, remap)
			continue
		}
		if remap == nil {
			continue
		}
		list := ix.Lists[c]
		sorted := true
		for i := range list {
			list[i] = remap[list[i]]
			if i > 0 && list[i] <= list[i-1] {
				sorted = false
			}
		}
		if !sorted {
			// Non-monotone relabeling: restore ascending-id order and report
			// the cluster dirty so derived per-point tables get rebuilt.
			ix.sortCluster(c)
			dirty = append(dirty, int32(c))
		}
	}
	ix.mut = nil
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	return dirty, nil
}

// rebuildCluster folds cluster c's survivors and appends, relabeled through
// remap (nil = identity), into fresh ascending-id Lists/Codes arenas.
func (ix *Index) rebuildCluster(c int, remap []int32) {
	m := ix.mut
	tomb := m.tomb[c]
	n := len(ix.Lists[c]) - len(tomb) + len(m.appendIDs[c])
	ids := make([]int32, 0, n)
	codes := make([]uint16, 0, n*ix.M)
	for i, id := range ix.Lists[c] {
		if tomb[id] {
			continue
		}
		if remap != nil {
			id = remap[id]
		}
		ids = append(ids, id)
		codes = append(codes, ix.Codes[c][i*ix.M:(i+1)*ix.M]...)
	}
	for i, id := range m.appendIDs[c] {
		if remap != nil {
			id = remap[id]
		}
		ids = append(ids, id)
		codes = append(codes, m.appendCodes[c][i*ix.M:(i+1)*ix.M]...)
	}
	ix.Lists[c], ix.Codes[c] = ids, codes
	ix.sortCluster(c)
}

// sortCluster re-sorts cluster c's (id, code) rows into ascending-id order.
func (ix *Index) sortCluster(c int) {
	ids := ix.Lists[c]
	perm := make([]int, len(ids))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return ids[perm[a]] < ids[perm[b]] })
	inOrder := true
	for i, p := range perm {
		if p != i {
			inOrder = false
			break
		}
	}
	if inOrder {
		return
	}
	newIDs := make([]int32, len(ids))
	newCodes := make([]uint16, len(ids)*ix.M)
	for i, p := range perm {
		newIDs[i] = ids[p]
		copy(newCodes[i*ix.M:(i+1)*ix.M], ix.Codes[c][p*ix.M:(p+1)*ix.M])
	}
	ix.Lists[c], ix.Codes[c] = newIDs, newCodes
}

// RebuildFrozen builds a fresh Index over the logical corpus (vecs.Vec(i)
// under ids[i]) reusing ix's frozen quantizers — the reference a compacted
// mutated index must match bit-for-bit. Points are placed in ascending-id
// order, matching Build's list order.
func RebuildFrozen(ix *Index, vecs dataset.U8Set, ids []int32) (*Index, error) {
	if vecs.N != len(ids) {
		return nil, fmt.Errorf("ivf: %d vectors for %d ids", vecs.N, len(ids))
	}
	if vecs.N > 0 && vecs.D != ix.Dim {
		return nil, fmt.Errorf("ivf: rebuild dim %d, index dim %d", vecs.D, ix.Dim)
	}
	order := make([]int, vecs.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ids[order[a]] < ids[order[b]] })
	out := &Index{
		Dim: ix.Dim, NList: ix.NList, M: ix.M, CB: ix.CB,
		Centroids: ix.Centroids, CentroidsU8: ix.CentroidsU8,
		PQ: ix.PQ, IntCB: ix.IntCB, OPQ: ix.OPQ, SQT: ix.SQT,
		Lists: make([][]int32, ix.NList),
		Codes: make([][]uint16, ix.NList),
	}
	sc := ix.NewEncodeScratch()
	code := make([]uint16, ix.M)
	for _, i := range order {
		v := vecs.Vec(i)
		c := out.AssignVec(v, sc)
		out.EncodeVec(v, c, code, sc)
		out.Lists[c] = append(out.Lists[c], ids[i])
		out.Codes[c] = append(out.Codes[c], code...)
	}
	return out, nil
}

// Append-log wire format: the mutation overlay serialized standalone (the
// base index keeps its own versioned format in serialize.go). Little-endian:
//
//	magic u32 | version u32 | nlist u32 | m u32 | nrec u32
//	per record: cluster u32 | nAppend u32 | ids i32* | codes u16*
//	            | nTomb u32 | tombstoned ids i32* (ascending)
const (
	appendLogMagic   uint32 = 0x44524d4c // "DRML"
	appendLogVersion uint32 = 1
)

// EncodeAppendLog serializes the live mutation overlay (empty overlay
// encodes to a valid zero-record log).
func (ix *Index) EncodeAppendLog() []byte {
	var recs []int
	if ix.mut != nil {
		for c := 0; c < ix.NList; c++ {
			if len(ix.mut.appendIDs[c]) > 0 || len(ix.mut.tomb[c]) > 0 {
				recs = append(recs, c)
			}
		}
	}
	buf := make([]byte, 0, 20+len(recs)*12)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u32(appendLogMagic)
	u32(appendLogVersion)
	u32(uint32(ix.NList))
	u32(uint32(ix.M))
	u32(uint32(len(recs)))
	for _, c := range recs {
		m := ix.mut
		u32(uint32(c))
		u32(uint32(len(m.appendIDs[c])))
		for _, id := range m.appendIDs[c] {
			u32(uint32(id))
		}
		for _, e := range m.appendCodes[c] {
			buf = binary.LittleEndian.AppendUint16(buf, e)
		}
		tomb := make([]int32, 0, len(m.tomb[c]))
		for id := range m.tomb[c] {
			tomb = append(tomb, id)
		}
		sort.Slice(tomb, func(i, j int) bool { return tomb[i] < tomb[j] })
		u32(uint32(len(tomb)))
		for _, id := range tomb {
			u32(uint32(id))
		}
	}
	return buf
}

// DecodeAppendLog replaces ix's mutation overlay with the decoded log.
// Corrupt input errors without panicking and without allocating more than
// the input length implies; on error the index is left unmutated.
func (ix *Index) DecodeAppendLog(data []byte) error {
	r := logReader{data: data}
	if v := r.u32(); v != appendLogMagic {
		return fmt.Errorf("ivf: append log magic %#x, want %#x", v, appendLogMagic)
	}
	if v := r.u32(); v != appendLogVersion {
		return fmt.Errorf("ivf: append log version %d, want %d", v, appendLogVersion)
	}
	if v := r.u32(); int(v) != ix.NList {
		return fmt.Errorf("ivf: append log for nlist=%d, index has %d", v, ix.NList)
	}
	if v := r.u32(); int(v) != ix.M {
		return fmt.Errorf("ivf: append log for m=%d, index has %d", v, ix.M)
	}
	nrec := r.u32()
	if r.err != nil {
		return r.err
	}
	if int64(nrec) > int64(len(data)) {
		return fmt.Errorf("ivf: append log claims %d records in %d bytes", nrec, len(data))
	}
	prev := ix.mut
	ix.mut = nil
	m := ix.ensureMut()
	fail := func(err error) error {
		ix.mut = prev
		return err
	}
	seen := make(map[int32]bool)
	for rec := uint32(0); rec < nrec; rec++ {
		c := r.u32()
		if r.err != nil {
			return fail(r.err)
		}
		if int(c) >= ix.NList {
			return fail(fmt.Errorf("ivf: append log cluster %d outside [0, %d)", c, ix.NList))
		}
		if seen[int32(c)] {
			return fail(fmt.Errorf("ivf: append log repeats cluster %d", c))
		}
		seen[int32(c)] = true
		nApp := r.u32()
		if r.err != nil {
			return fail(r.err)
		}
		if int64(nApp)*int64(4+2*ix.M) > int64(r.remaining()) {
			return fail(fmt.Errorf("ivf: append log cluster %d claims %d appends in %d bytes", c, nApp, r.remaining()))
		}
		for i := uint32(0); i < nApp; i++ {
			id := int32(r.u32())
			if r.err != nil {
				return fail(r.err)
			}
			if id < 0 {
				return fail(fmt.Errorf("ivf: append log id %d negative", id))
			}
			if _, live := m.where[id]; live {
				return fail(fmt.Errorf("ivf: append log id %d already live", id))
			}
			m.appendIDs[c] = append(m.appendIDs[c], id)
			m.where[id] = int32(c)
			m.nAppend++
		}
		for i := uint32(0); i < nApp*uint32(ix.M); i++ {
			e := r.u16()
			if r.err != nil {
				return fail(r.err)
			}
			if int(e) >= ix.CB {
				return fail(fmt.Errorf("ivf: append log code entry %d outside [0, %d)", e, ix.CB))
			}
			m.appendCodes[c] = append(m.appendCodes[c], e)
		}
		nTomb := r.u32()
		if r.err != nil {
			return fail(r.err)
		}
		if int64(nTomb)*4 > int64(r.remaining()) {
			return fail(fmt.Errorf("ivf: append log cluster %d claims %d tombstones in %d bytes", c, nTomb, r.remaining()))
		}
		for i := uint32(0); i < nTomb; i++ {
			id := int32(r.u32())
			if r.err != nil {
				return fail(r.err)
			}
			cc, live := m.where[id]
			if !live || cc != int32(c) {
				return fail(fmt.Errorf("ivf: append log tombstones id %d not live in cluster %d", id, c))
			}
			inBase := false
			for _, b := range ix.Lists[c] {
				if b == id {
					inBase = true
					break
				}
			}
			if !inBase {
				return fail(fmt.Errorf("ivf: append log tombstones id %d outside cluster %d's base list", id, c))
			}
			if m.tomb[c] == nil {
				m.tomb[c] = make(map[int32]bool)
			}
			if m.tomb[c][id] {
				return fail(fmt.Errorf("ivf: append log repeats tombstone %d", id))
			}
			delete(m.where, id)
			m.tomb[c][id] = true
			m.nTomb++
		}
	}
	if r.remaining() != 0 {
		return fail(fmt.Errorf("ivf: append log has %d trailing bytes", r.remaining()))
	}
	return nil
}

type logReader struct {
	data []byte
	off  int
	err  error
}

func (r *logReader) remaining() int { return len(r.data) - r.off }

func (r *logReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 4 {
		r.err = fmt.Errorf("ivf: append log truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *logReader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 2 {
		r.err = fmt.Errorf("ivf: append log truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}
