package ivf

import (
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/pq"
)

// smallIndex builds a small but realistic index for tests.
func smallIndex(t *testing.T, variant string) (*Index, *dataset.Synth) {
	t.Helper()
	s := dataset.Generate(dataset.SynthConfig{
		N: 4000, D: 16, NumQueries: 40, NumClusters: 24, Seed: 11, Noise: 10,
	})
	ix, err := Build(s.Base, BuildConfig{
		NList:   32,
		PQ:      pq.Config{M: 16, CB: 64},
		Variant: variant,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, s
}

func TestBuildInvariants(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	if ix.NList != 32 || ix.Dim != 16 {
		t.Fatalf("index shape wrong: %+v", ix)
	}
	// Every base vector appears in exactly one list.
	seen := make(map[int32]bool, s.Base.N)
	for c, list := range ix.Lists {
		if len(ix.Codes[c]) != len(list)*ix.M {
			t.Fatalf("cluster %d codes length %d, want %d", c, len(ix.Codes[c]), len(list)*ix.M)
		}
		for _, id := range list {
			if seen[id] {
				t.Fatalf("vector %d in multiple lists", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != s.Base.N {
		t.Fatalf("lists cover %d vectors, want %d", len(seen), s.Base.N)
	}
	if got := ix.AvgListLen(); got != float64(s.Base.N)/32 {
		t.Fatalf("AvgListLen = %v", got)
	}
}

func TestBuildValidation(t *testing.T) {
	s := dataset.Generate(dataset.SynthConfig{N: 100, D: 8, NumQueries: 5, Seed: 2})
	if _, err := Build(dataset.U8Set{}, BuildConfig{NList: 4, PQ: pq.Config{M: 2, CB: 8}}); err == nil {
		t.Fatal("empty corpus must fail")
	}
	if _, err := Build(s.Base, BuildConfig{NList: 0, PQ: pq.Config{M: 2, CB: 8}}); err == nil {
		t.Fatal("NList=0 must fail")
	}
	if _, err := Build(s.Base, BuildConfig{NList: 4, PQ: pq.Config{M: 3, CB: 8}}); err == nil {
		t.Fatal("M not dividing dim must fail")
	}
	if _, err := Build(s.Base, BuildConfig{NList: 4, PQ: pq.Config{M: 2, CB: 8}, Variant: "nope"}); err == nil {
		t.Fatal("unknown variant must fail")
	}
}

func TestLocateSortedAndDistinct(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	qf := make([]float32, 16)
	for i, v := range s.Queries.Vec(0) {
		qf[i] = float32(v)
	}
	probes := ix.Locate(qf, 8)
	if len(probes) != 8 {
		t.Fatalf("got %d probes", len(probes))
	}
	seen := map[int32]bool{}
	for i, p := range probes {
		if seen[p.ID] {
			t.Fatalf("duplicate probe %d", p.ID)
		}
		seen[p.ID] = true
		if i > 0 && probes[i-1].Dist > p.Dist {
			t.Fatal("probes not sorted by distance")
		}
	}
}

func TestSearchRecall(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	const k = 10
	gt := dataset.GroundTruth(s.Base, s.Queries, k, 0)
	got := ix.SearchBatch(s.Queries, 16, k, 0)
	if r := dataset.Recall(gt, got, k); r < 0.8 {
		t.Fatalf("float-path recall@10 = %v, want >= 0.8", r)
	}
}

func TestSearchIntRecall(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	const k = 10
	gt := dataset.GroundTruth(s.Base, s.Queries, k, 0)
	got := ix.SearchIntBatch(s.Queries, 16, k, 0)
	if r := dataset.Recall(gt, got, k); r < 0.75 {
		t.Fatalf("int-path recall@10 = %v, want >= 0.75", r)
	}
}

func TestRecallImprovesWithNprobe(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	const k = 10
	gt := dataset.GroundTruth(s.Base, s.Queries, k, 0)
	r4 := dataset.Recall(gt, ix.SearchBatch(s.Queries, 2, k, 0), k)
	r32 := dataset.Recall(gt, ix.SearchBatch(s.Queries, 32, k, 0), k)
	if r32 < r4 {
		t.Fatalf("recall should not degrade with nprobe: %v -> %v", r4, r32)
	}
	if r32 < 0.85 {
		t.Fatalf("full-probe recall too low: %v", r32)
	}
}

func TestSearchResultsSortedUnique(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	items := ix.Search(s.Queries.Vec(1), 8, 10)
	if len(items) != 10 {
		t.Fatalf("got %d results", len(items))
	}
	seen := map[int32]bool{}
	for i, it := range items {
		if seen[it.ID] {
			t.Fatalf("duplicate result id %d", it.ID)
		}
		seen[it.ID] = true
		if i > 0 && items[i-1].Dist > it.Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestOPQVariantBuildsAndSearches(t *testing.T) {
	ix, s := smallIndex(t, "opq")
	if ix.OPQ == nil {
		t.Fatal("OPQ variant should carry a rotation")
	}
	const k = 10
	gt := dataset.GroundTruth(s.Base, s.Queries, k, 0)
	got := ix.SearchBatch(s.Queries, 16, k, 0)
	if r := dataset.Recall(gt, got, k); r < 0.7 {
		t.Fatalf("OPQ recall@10 = %v too low", r)
	}
}

func TestDPQVariantBuildsAndSearches(t *testing.T) {
	ix, s := smallIndex(t, "dpq")
	const k = 10
	gt := dataset.GroundTruth(s.Base, s.Queries, k, 0)
	got := ix.SearchBatch(s.Queries, 16, k, 0)
	if r := dataset.Recall(gt, got, k); r < 0.7 {
		t.Fatalf("DPQ recall@10 = %v too low", r)
	}
}

func TestSearchIntDeterministic(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	a := ix.SearchInt(s.Queries.Vec(3), 8, 5)
	b := ix.SearchInt(s.Queries.Vec(3), 8, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SearchInt not deterministic")
		}
	}
}
