// Package ivf implements the cluster-based (inverted file) index with
// product quantization that both the CPU baseline and the DRIM-ANN PIM
// engine consume: a coarse k-means quantizer over the corpus, per-cluster
// inverted lists of PQ codes, and two search paths —
//
//   - Search: the float32 host path, structured like Faiss's IVFADC
//     (cluster locating, residual, LUT construction, distance scan, top-k);
//   - SearchInt: the integer path that is arithmetic-identical to the PIM
//     kernels (uint8 centroids, int16 residuals, SQT-able LUTs, uint32
//     accumulation), so engine results can be compared bit-for-bit.
package ivf

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"drimann/internal/dataset"
	"drimann/internal/kmeans"
	"drimann/internal/pq"
	"drimann/internal/sqt"
	"drimann/internal/topk"
	"drimann/internal/vecmath"
)

// BuildConfig controls index construction.
type BuildConfig struct {
	NList int // number of coarse clusters (the paper's nlist)
	PQ    pq.Config
	// Variant selects the quantizer family: "pq" (default), "opq", or "dpq".
	Variant string
	// KMeansIters bounds coarse-quantizer training; default 20.
	KMeansIters int
	// TrainSample caps vectors used for training both quantizers; 0 = all.
	TrainSample int
	Seed        int64
	Workers     int
}

func (c *BuildConfig) defaults() {
	if c.KMeansIters <= 0 {
		c.KMeansIters = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Variant == "" {
		c.Variant = "pq"
	}
}

// Index is a built IVF-PQ index over a uint8 corpus.
type Index struct {
	Dim, NList int
	M, CB      int

	Centroids   []float32 // NList x Dim, float path
	CentroidsU8 []uint8   // NList x Dim, integer path (rounded)

	PQ    *pq.Quantizer
	IntCB pq.IntCodebooks
	OPQ   *pq.OPQ // non-nil for the "opq" variant

	// Lists[c] holds the base-vector ids of cluster c; Codes[c] holds their
	// PQ codes back-to-back (len(Lists[c]) * M entries).
	Lists [][]int32
	Codes [][]uint16

	SQT *sqt.SQT8

	// mut is the live-mutation overlay (append segments + tombstones),
	// nil until the first Insert/Delete and after every Compact. See
	// mutable.go.
	mut *mutState
}

// Build trains the coarse quantizer and PQ codebooks and encodes the corpus.
func Build(base dataset.U8Set, cfg BuildConfig) (*Index, error) {
	cfg.defaults()
	if base.N == 0 {
		return nil, fmt.Errorf("ivf: empty corpus")
	}
	if cfg.NList <= 0 || cfg.NList > base.N {
		return nil, fmt.Errorf("ivf: NList=%d invalid for %d vectors", cfg.NList, base.N)
	}
	data := base.F32().Data

	// Training sample: stride-sampled so it covers the whole corpus even
	// when vectors are stored in clustered order (taking a prefix would
	// train the quantizers on a single region).
	trainIdx := make([]int, 0, base.N)
	if cfg.TrainSample > 0 && cfg.TrainSample < base.N {
		stride := base.N / cfg.TrainSample
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < base.N && len(trainIdx) < cfg.TrainSample; i += stride {
			trainIdx = append(trainIdx, i)
		}
	} else {
		for i := 0; i < base.N; i++ {
			trainIdx = append(trainIdx, i)
		}
	}
	train := make([]float32, 0, len(trainIdx)*base.D)
	for _, i := range trainIdx {
		train = append(train, data[i*base.D:(i+1)*base.D]...)
	}

	coarse, err := kmeans.Train(train, kmeans.Config{
		K: cfg.NList, Dim: base.D, MaxIters: cfg.KMeansIters,
		Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("ivf: coarse quantizer: %w", err)
	}

	ix := &Index{
		Dim: base.D, NList: cfg.NList,
		M: cfg.PQ.M, CB: cfg.PQ.CB,
		Centroids: coarse.Centroids,
		SQT:       sqt.NewSQT8(),
	}
	ix.CentroidsU8 = make([]uint8, len(coarse.Centroids))
	for i, x := range coarse.Centroids {
		v := math.Round(float64(x))
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		ix.CentroidsU8[i] = uint8(v)
	}

	// Assign every vector and compute training residuals on the sample.
	assign, err := kmeans.Assign(data, ix.Centroids, base.D, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("ivf: assignment: %w", err)
	}
	residuals := make([]float32, len(train))
	for si, i := range trainIdx {
		c := int(assign[i])
		vecmath.SubF32(residuals[si*base.D:(si+1)*base.D],
			data[i*base.D:(i+1)*base.D],
			ix.Centroids[c*base.D:(c+1)*base.D])
	}

	pcfg := cfg.PQ
	if pcfg.Seed == 0 {
		pcfg.Seed = cfg.Seed + 1000
	}
	switch cfg.Variant {
	case "pq":
		ix.PQ, err = pq.Train(residuals, base.D, pcfg)
	case "opq":
		var o *pq.OPQ
		o, err = pq.TrainOPQ(residuals, base.D, pcfg, 3)
		if err == nil {
			ix.OPQ = o
			ix.PQ = o.PQ
		}
	case "dpq":
		ix.PQ, err = pq.TrainDPQ(residuals, base.D, pcfg, 6, 0.02)
	default:
		return nil, fmt.Errorf("ivf: unknown variant %q", cfg.Variant)
	}
	if err != nil {
		return nil, fmt.Errorf("ivf: PQ training: %w", err)
	}
	ix.IntCB = ix.PQ.QuantizeCodebooks()

	// Encode the full corpus per-cluster, in parallel over vectors.
	ix.Lists = make([][]int32, cfg.NList)
	ix.Codes = make([][]uint16, cfg.NList)
	codes := make([]uint16, base.N*ix.M)
	var wg sync.WaitGroup
	chunk := (base.N + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > base.N {
			hi = base.N
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			res := make([]float32, base.D)
			resRot := res
			for i := lo; i < hi; i++ {
				c := int(assign[i])
				vecmath.SubF32(res, data[i*base.D:(i+1)*base.D],
					ix.Centroids[c*base.D:(c+1)*base.D])
				if ix.OPQ != nil {
					resRot = ix.OPQ.Rotate(res)
				}
				ix.PQ.Encode(resRot, codes[i*ix.M:(i+1)*ix.M])
			}
		}(lo, hi)
	}
	wg.Wait()
	for i := 0; i < base.N; i++ {
		c := int(assign[i])
		ix.Lists[c] = append(ix.Lists[c], int32(i))
		ix.Codes[c] = append(ix.Codes[c], codes[i*ix.M:(i+1)*ix.M]...)
	}
	return ix, nil
}

// Centroid returns float centroid c.
func (ix *Index) Centroid(c int) []float32 { return ix.Centroids[c*ix.Dim : (c+1)*ix.Dim] }

// CentroidU8 returns the integer-path centroid c.
func (ix *Index) CentroidU8(c int) []uint8 { return ix.CentroidsU8[c*ix.Dim : (c+1)*ix.Dim] }

// ListLen returns the population of cluster c.
func (ix *Index) ListLen(c int) int { return len(ix.Lists[c]) }

// AvgListLen returns the paper's parameter C (average cluster population).
func (ix *Index) AvgListLen() float64 {
	total := 0
	for _, l := range ix.Lists {
		total += len(l)
	}
	return float64(total) / float64(ix.NList)
}

// Locate performs the CL phase on the float path: the nprobe nearest
// centroids to the query, in ascending distance order.
func (ix *Index) Locate(query []float32, nprobe int) []topk.Item[float32] {
	h := topk.NewHeap[float32](nprobe)
	for c := 0; c < ix.NList; c++ {
		d := vecmath.L2SquaredF32(query, ix.Centroid(c))
		if h.WouldAccept(int32(c), d) {
			h.Push(int32(c), d)
		}
	}
	return h.Sorted()
}

// LocateInt performs the CL phase with integer arithmetic (uint8 centroids),
// matching the PIM engine's host-side CL.
func (ix *Index) LocateInt(query []uint8, nprobe int) []topk.Item[uint32] {
	h := topk.NewHeap[uint32](nprobe)
	ix.locateIntInto(query, h)
	return h.Sorted()
}

// locateIntInto fills h (which must be empty) with the h.K() nearest
// centroids to query under the integer metric.
func (ix *Index) locateIntInto(query []uint8, h *topk.Heap[uint32]) {
	// Once the heap is full, centroids whose partial distance already
	// exceeds the current threshold are abandoned mid-scan. Squared sums
	// only grow, so an abandoned centroid's true distance is strictly above
	// the threshold and would have been rejected anyway (ties keep the
	// incumbent of larger distance out regardless of ID, because only
	// strictly greater sums abandon) — the probe set is exactly that of the
	// full scan.
	for c := 0; c < ix.NList; c++ {
		cent := ix.CentroidU8(c)
		thr, full := h.Threshold()
		if full {
			d, done := vecmath.L2SquaredU8Abandon(query, cent, thr)
			if !done {
				continue
			}
			if h.WouldAccept(int32(c), d) {
				h.Push(int32(c), d)
			}
			continue
		}
		d := vecmath.L2SquaredU8(query, cent)
		if h.WouldAccept(int32(c), d) {
			h.Push(int32(c), d)
		}
	}
}

// forEachQueryChunk partitions the query range [lo, hi) into contiguous
// chunks across workers goroutines (0 = GOMAXPROCS) and calls f with each
// chunk's bounds. It is the shared scaffold of the batched CL stages.
func forEachQueryChunk(lo, hi, workers int, f func(wlo, whi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(lo, hi)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wlo, whi := lo+w*chunk, lo+(w+1)*chunk
		if whi > hi {
			whi = hi
		}
		if wlo >= whi {
			continue
		}
		wg.Add(1)
		go func(wlo, whi int) {
			defer wg.Done()
			f(wlo, whi)
		}(wlo, whi)
	}
	wg.Wait()
}

// LocateBatch performs integer-path cluster locating for queries[lo:hi),
// fanned across workers goroutines (0 = GOMAXPROCS). Query qi's probes are
// written, in ascending distance order, into
// out[(qi-lo)*nprobe : (qi-lo)*nprobe+counts[qi-lo]], so out must hold
// (hi-lo)*nprobe items and counts hi-lo entries. Results are identical to
// per-query LocateInt calls, but the batch shares one heap per worker and
// performs no per-query allocation — this is the engine's pipelined CL stage.
func (ix *Index) LocateBatch(queries dataset.U8Set, lo, hi, nprobe, workers int, out []topk.Item[uint32], counts []int) {
	forEachQueryChunk(lo, hi, workers, func(wlo, whi int) {
		h := topk.NewHeap[uint32](nprobe)
		for qi := wlo; qi < whi; qi++ {
			h.Reset()
			ix.locateIntInto(queries.Vec(qi), h)
			base := (qi - lo) * nprobe
			dst := out[base : base : base+nprobe]
			counts[qi-lo] = len(h.SortedInto(dst))
		}
	})
}

// Search runs the float path (Faiss-IVFADC-like) for one uint8 query.
func (ix *Index) Search(query []uint8, nprobe, k int) []topk.Item[float32] {
	qf := make([]float32, ix.Dim)
	vecmath.U8ToF32(qf, query)
	probes := ix.Locate(qf, nprobe)

	res := make([]float32, ix.Dim)
	lut := make([]float32, ix.M*ix.CB)
	h := topk.NewHeap[float32](k)
	for _, p := range probes {
		c := int(p.ID)
		vecmath.SubF32(res, qf, ix.Centroid(c)) // RC
		lc := res
		if ix.OPQ != nil {
			lc = ix.OPQ.Rotate(res)
		}
		ix.PQ.LUT(lc, lut) // LC
		ids := ix.Lists[c]
		codes := ix.Codes[c]
		tomb := ix.Tombstoned(c)
		for i, id := range ids { // DC + TS
			if tomb != nil && tomb[id] {
				continue
			}
			d := vecmath.ADCF32(lut, codes[i*ix.M:(i+1)*ix.M], ix.CB)
			if h.WouldAccept(id, d) {
				h.Push(id, d)
			}
		}
		aids := ix.AppendIDs(c)
		acodes := ix.AppendCodes(c)
		for i, id := range aids { // append segment (never tombstoned)
			d := vecmath.ADCF32(lut, acodes[i*ix.M:(i+1)*ix.M], ix.CB)
			if h.WouldAccept(id, d) {
				h.Push(id, d)
			}
		}
	}
	return h.Sorted()
}

// SearchInt runs the integer path for one query: identical arithmetic to the
// PIM kernels (CL on uint8 centroids, int16 residuals, SQT LUTs, uint32 ADC).
func (ix *Index) SearchInt(query []uint8, nprobe, k int) []topk.Item[uint32] {
	probes := ix.LocateInt(query, nprobe)
	res := make([]int16, ix.Dim)
	lut := make([]uint32, ix.M*ix.CB)
	h := topk.NewHeap[uint32](k)
	for _, p := range probes {
		c := int(p.ID)
		vecmath.SubI16(res, query, ix.CentroidU8(c)) // RC
		ix.IntCB.LUTInt(res, lut, ix.SQT)            // LC (multiplier-less)
		ids := ix.Lists[c]
		codes := ix.Codes[c]
		tomb := ix.Tombstoned(c)
		for i, id := range ids { // DC + TS
			if tomb != nil && tomb[id] {
				continue
			}
			d := vecmath.ADCU32(lut, codes[i*ix.M:(i+1)*ix.M], ix.CB)
			if h.WouldAccept(id, d) {
				h.Push(id, d)
			}
		}
		aids := ix.AppendIDs(c)
		acodes := ix.AppendCodes(c)
		for i, id := range aids { // append segment (never tombstoned)
			d := vecmath.ADCU32(lut, acodes[i*ix.M:(i+1)*ix.M], ix.CB)
			if h.WouldAccept(id, d) {
				h.Push(id, d)
			}
		}
	}
	return h.Sorted()
}

// SearchBatch runs Search for a query set in parallel and returns id lists.
func (ix *Index) SearchBatch(queries dataset.U8Set, nprobe, k, workers int) [][]int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]int32, queries.N)
	var wg sync.WaitGroup
	chunk := (queries.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > queries.N {
			hi = queries.N
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for qi := lo; qi < hi; qi++ {
				items := ix.Search(queries.Vec(qi), nprobe, k)
				ids := make([]int32, len(items))
				for j, it := range items {
					ids[j] = it.ID
				}
				out[qi] = ids
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// SearchIntBatch runs SearchInt for a query set in parallel.
func (ix *Index) SearchIntBatch(queries dataset.U8Set, nprobe, k, workers int) [][]int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]int32, queries.N)
	var wg sync.WaitGroup
	chunk := (queries.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > queries.N {
			hi = queries.N
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for qi := lo; qi < hi; qi++ {
				items := ix.SearchInt(queries.Vec(qi), nprobe, k)
				ids := make([]int32, len(items))
				for j, it := range items {
					ids[j] = it.ID
				}
				out[qi] = ids
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
