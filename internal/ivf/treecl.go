package ivf

import (
	"fmt"
	"math"

	"drimann/internal/dataset"
	"drimann/internal/kmeans"
	"drimann/internal/topk"
	"drimann/internal/vecmath"
)

// TreeCL is a two-level hierarchical cluster locator: an upper k-means
// layer over the IVF centroids. Instead of scanning all nlist centroids,
// cluster locating descends into the best beam upper nodes and scans only
// their children — the paper's §6 extension point ("easy adaptation to
// other cluster-based ANNS methods by replacing CPU-side CL while reusing
// the PIM-DIMM acceleration for CS").
type TreeCL struct {
	Dim    int
	Branch int       // upper-layer node count
	Upper  []float32 // Branch x Dim upper centroids
	// Children[b] lists the IVF cluster ids routed to upper node b.
	Children [][]int32
}

// BuildTreeCL clusters the index's coarse centroids into branch upper nodes.
func (ix *Index) BuildTreeCL(branch int, seed int64) (*TreeCL, error) {
	if branch < 2 || branch >= ix.NList {
		return nil, fmt.Errorf("ivf: tree branch %d must be in [2, nlist)", branch)
	}
	res, err := kmeans.Train(ix.Centroids, kmeans.Config{
		K: branch, Dim: ix.Dim, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("ivf: tree CL: %w", err)
	}
	t := &TreeCL{
		Dim: ix.Dim, Branch: branch,
		Upper:    res.Centroids,
		Children: make([][]int32, branch),
	}
	for c, b := range res.Assign {
		t.Children[b] = append(t.Children[b], int32(c))
	}
	return t, nil
}

// Locate returns the nprobe nearest IVF clusters found by descending the
// beam best upper nodes. beam trades CL cost for probe quality; a beam of
// ~sqrt(branch) is a reasonable default (0 uses that).
func (t *TreeCL) Locate(ix *Index, query []uint8, nprobe, beam int) []topk.Item[uint32] {
	sc := newTreeScratch(t, nprobe, beam)
	t.locateInto(ix, query, sc)
	return sc.h.Sorted()
}

// treeScratch is the per-worker reusable state of one tree descent: the
// widened query, the upper-layer beam heap and its sorted view, and the
// leaf-layer probe heap.
type treeScratch struct {
	beam  int
	qf    []float32
	upper *topk.Heap[float32]
	ubuf  []topk.Item[float32]
	h     *topk.Heap[uint32]
}

func (t *TreeCL) effectiveBeam(beam int) int {
	if beam <= 0 {
		beam = int(math.Sqrt(float64(t.Branch))) + 1
	}
	if beam > t.Branch {
		beam = t.Branch
	}
	return beam
}

func newTreeScratch(t *TreeCL, nprobe, beam int) *treeScratch {
	beam = t.effectiveBeam(beam)
	return &treeScratch{
		beam:  beam,
		qf:    make([]float32, t.Dim),
		upper: topk.NewHeap[float32](beam),
		ubuf:  make([]topk.Item[float32], 0, beam),
		h:     topk.NewHeap[uint32](nprobe),
	}
}

// locateInto runs one descent, leaving the probes in sc.h.
func (t *TreeCL) locateInto(ix *Index, query []uint8, sc *treeScratch) {
	vecmath.U8ToF32(sc.qf, query)

	sc.upper.Reset()
	for b := 0; b < t.Branch; b++ {
		d := vecmath.L2SquaredF32(sc.qf, t.Upper[b*t.Dim:(b+1)*t.Dim])
		if sc.upper.WouldAccept(int32(b), d) {
			sc.upper.Push(int32(b), d)
		}
	}

	sc.h.Reset()
	sc.ubuf = sc.upper.SortedInto(sc.ubuf)
	for _, un := range sc.ubuf {
		for _, c := range t.Children[un.ID] {
			d := vecmath.L2SquaredU8(query, ix.CentroidU8(int(c)))
			if sc.h.WouldAccept(c, d) {
				sc.h.Push(c, d)
			}
		}
	}
}

// LocateBatch is the tree locator's batched CL stage: probes for
// queries[lo:hi) are computed across workers goroutines (0 = GOMAXPROCS) and
// written into the same flat layout as Index.LocateBatch. Results are
// identical to per-query Locate calls; each worker reuses one descent
// scratch, so no per-query allocation occurs.
func (t *TreeCL) LocateBatch(ix *Index, queries dataset.U8Set, lo, hi, nprobe, beam, workers int, out []topk.Item[uint32], counts []int) {
	forEachQueryChunk(lo, hi, workers, func(wlo, whi int) {
		sc := newTreeScratch(t, nprobe, beam)
		for qi := wlo; qi < whi; qi++ {
			t.locateInto(ix, queries.Vec(qi), sc)
			base := (qi - lo) * nprobe
			dst := out[base : base : base+nprobe]
			counts[qi-lo] = len(sc.h.SortedInto(dst))
		}
	})
}

// CentroidsScanned reports how many distance computations one Locate costs
// on average (upper scan + expected children of the beam), the quantity the
// host CL cost model uses.
func (t *TreeCL) CentroidsScanned(beam int) int {
	if beam <= 0 {
		beam = int(math.Sqrt(float64(t.Branch))) + 1
	}
	if beam > t.Branch {
		beam = t.Branch
	}
	total := 0
	for _, ch := range t.Children {
		total += len(ch)
	}
	avgChildren := total / t.Branch
	return t.Branch + beam*avgChildren
}

// SearchIntTree is SearchInt with the tree locator in place of the flat
// centroid scan.
func (ix *Index) SearchIntTree(t *TreeCL, query []uint8, nprobe, beam, k int) []topk.Item[uint32] {
	probes := t.Locate(ix, query, nprobe, beam)
	return ix.searchIntProbes(query, probes, k)
}

// searchIntProbes runs RC/LC/DC/TS over an explicit probe list.
func (ix *Index) searchIntProbes(query []uint8, probes []topk.Item[uint32], k int) []topk.Item[uint32] {
	res := make([]int16, ix.Dim)
	lut := make([]uint32, ix.M*ix.CB)
	h := topk.NewHeap[uint32](k)
	for _, p := range probes {
		c := int(p.ID)
		vecmath.SubI16(res, query, ix.CentroidU8(c))
		ix.IntCB.LUTInt(res, lut, ix.SQT)
		ids := ix.Lists[c]
		codes := ix.Codes[c]
		for i, id := range ids {
			d := vecmath.ADCU32(lut, codes[i*ix.M:(i+1)*ix.M], ix.CB)
			if h.WouldAccept(id, d) {
				h.Push(id, d)
			}
		}
	}
	return h.Sorted()
}
