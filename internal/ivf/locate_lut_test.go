package ivf

import (
	"math/rand"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/pq"
	"drimann/internal/topk"
	"drimann/internal/vecmath"
)

func locateFixture(t *testing.T) (*Index, *dataset.Synth) {
	t.Helper()
	s := dataset.Generate(dataset.SynthConfig{
		N: 4000, D: 32, NumQueries: 70, NumClusters: 24, Seed: 11, Noise: 10,
	})
	ix, err := Build(s.Base, BuildConfig{
		NList: 40, PQ: pq.Config{M: 8, CB: 32}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, s
}

// TestLocateBatchMatchesLocateInt: the batched, worker-parallel CL stage
// must reproduce per-query LocateInt exactly, for any worker count and any
// subrange.
func TestLocateBatchMatchesLocateInt(t *testing.T) {
	ix, s := locateFixture(t)
	const nprobe = 12
	for _, workers := range []int{0, 1, 3} {
		for _, span := range [][2]int{{0, s.Queries.N}, {5, 29}, {63, 70}} {
			lo, hi := span[0], span[1]
			out := make([]topk.Item[uint32], (hi-lo)*nprobe)
			counts := make([]int, hi-lo)
			ix.LocateBatch(s.Queries, lo, hi, nprobe, workers, out, counts)
			for qi := lo; qi < hi; qi++ {
				want := ix.LocateInt(s.Queries.Vec(qi), nprobe)
				got := out[(qi-lo)*nprobe : (qi-lo)*nprobe+counts[qi-lo]]
				if len(got) != len(want) {
					t.Fatalf("workers=%d query %d: %d probes, want %d", workers, qi, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("workers=%d query %d probe %d: %+v != %+v", workers, qi, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestTreeCLLocateBatchMatchesLocate: same contract for the tree locator.
func TestTreeCLLocateBatchMatchesLocate(t *testing.T) {
	ix, s := locateFixture(t)
	tree, err := ix.BuildTreeCL(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	const nprobe, beam = 10, 3
	for _, workers := range []int{1, 4} {
		out := make([]topk.Item[uint32], s.Queries.N*nprobe)
		counts := make([]int, s.Queries.N)
		tree.LocateBatch(ix, s.Queries, 0, s.Queries.N, nprobe, beam, workers, out, counts)
		for qi := 0; qi < s.Queries.N; qi++ {
			want := tree.Locate(ix, s.Queries.Vec(qi), nprobe, beam)
			got := out[qi*nprobe : qi*nprobe+counts[qi]]
			if len(got) != len(want) {
				t.Fatalf("workers=%d query %d: %d probes, want %d", workers, qi, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("workers=%d query %d probe %d: %+v != %+v", workers, qi, j, got[j], want[j])
				}
			}
		}
	}
}

// TestLUTBuilderBitExact: the decomposed builder must agree entry-for-entry
// with both the SQT path and the multiplication path for every (query,
// cluster) pair — the invariant that lets the engine swap it in without
// perturbing a single search result.
func TestLUTBuilderBitExact(t *testing.T) {
	ix, s := locateFixture(t)
	lb := ix.NewLUTBuilder(2)
	if lb == nil {
		t.Fatal("builder unexpectedly over budget")
	}
	sc := lb.NewScratch()
	n := ix.M * ix.CB
	got := make([]uint32, n)
	wantSQT := make([]uint32, n)
	wantMul := make([]uint32, n)
	res := make([]int16, ix.Dim)

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		qi := rng.Intn(s.Queries.N)
		c := rng.Intn(ix.NList)
		q := s.Queries.Vec(qi)
		lb.Build(int32(qi), q, c, got, sc)
		subI16(res, q, ix.CentroidU8(c))
		ix.IntCB.LUTInt(res, wantSQT, ix.SQT)
		ix.IntCB.LUTIntMul(res, wantMul)
		for i := range got {
			if got[i] != wantSQT[i] || got[i] != wantMul[i] {
				t.Fatalf("trial %d (q=%d c=%d) entry %d: builder %d, SQT %d, mul %d",
					trial, qi, c, i, got[i], wantSQT[i], wantMul[i])
			}
		}
	}
}

// subI16 mirrors vecmath.SubI16 locally to keep the test self-describing.
func subI16(dst []int16, a []uint8, b []uint8) {
	for i := range dst {
		dst[i] = int16(a[i]) - int16(b[i])
	}
}

// TestLUTBuilderScratchReuseAcrossQueries guards the per-query caching: a
// scratch must produce correct LUTs when alternating between queries (cache
// invalidation on qid change).
func TestLUTBuilderScratchReuseAcrossQueries(t *testing.T) {
	ix, s := locateFixture(t)
	lb := ix.NewLUTBuilder(0)
	sc := lb.NewScratch()
	got := make([]uint32, ix.M*ix.CB)
	want := make([]uint32, ix.M*ix.CB)
	res := make([]int16, ix.Dim)
	order := []struct{ q, c int }{{0, 1}, {0, 2}, {1, 1}, {0, 1}, {1, 3}}
	for _, oc := range order {
		q := s.Queries.Vec(oc.q)
		lb.Build(int32(oc.q), q, oc.c, got, sc)
		subI16(res, q, ix.CentroidU8(oc.c))
		ix.IntCB.LUTInt(res, want, ix.SQT)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("(q=%d c=%d) entry %d: %d != %d", oc.q, oc.c, i, got[i], want[i])
			}
		}
	}
}

// TestDecomposedADCMatchesMaterializedLUT: the LUT-free DC decomposition
// (per-query BuildQE gather table + static per-point ClusterADCSums + the
// per-(query, cluster) PTerm scalar) must reproduce, bit-for-bit, the ADC
// sums of a materialized Build LUT for every point of the cluster — the
// identity that lets the engine skip per-group LUT materialization entirely.
func TestDecomposedADCMatchesMaterializedLUT(t *testing.T) {
	ix, s := locateFixture(t)
	lb := ix.NewLUTBuilder(0)
	if lb == nil {
		t.Fatal("builder unexpectedly over budget")
	}
	sc := lb.NewScratch()
	lut := make([]uint32, ix.M*ix.CB)
	qe := make([]int32, ix.M*ix.CB)

	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		qi := rng.Intn(s.Queries.N)
		c := rng.Intn(ix.NList)
		q := s.Queries.Vec(qi)
		codes := ix.Codes[c]
		n := len(codes) / ix.M
		if n == 0 {
			continue
		}

		lb.Build(int32(qi), q, c, lut, sc)
		want := make([]uint32, n)
		vecmath.ADCBatchU32(want, lut, codes, ix.M, ix.CB)

		lb.BuildQE(q, qe)
		bsum := make([]int32, n)
		lb.ClusterADCSums(c, codes, bsum)
		got := make([]uint32, n)
		vecmath.ADCResidualBatch(got, qe, codes, bsum, lb.PTerm(q, c), ix.M, ix.CB)

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (q=%d c=%d) point %d: decomposed %d != materialized %d",
					trial, qi, c, i, got[i], want[i])
			}
		}
	}
}

// TestLocateIntMatchesFullScanReference: the early-abandoning centroid scan
// must select exactly the probes (IDs, distances, order) of a naive full
// evaluation — LocateInt and LocateBatch share the abandoning scan, so this
// pins it against an independent reference.
func TestLocateIntMatchesFullScanReference(t *testing.T) {
	ix, s := locateFixture(t)
	const nprobe = 12
	for qi := 0; qi < s.Queries.N; qi++ {
		q := s.Queries.Vec(qi)
		h := topk.NewHeap[uint32](nprobe)
		for c := 0; c < ix.NList; c++ {
			h.Push(int32(c), vecmath.L2SquaredU8(q, ix.CentroidU8(c)))
		}
		want := h.Sorted()
		got := ix.LocateInt(q, nprobe)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d probes, want %d", qi, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d probe %d: %+v != full-scan %+v", qi, j, got[j], want[j])
			}
		}
	}
}
