package ivf

import (
	"math/rand"
	"slices"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/pq"
)

// mutableFixture builds an index over the first base of the corpus and keeps
// the tail as an insert pool; ids are corpus positions throughout, so
// s.Base.Vec(id) is every id's vector.
func mutableFixture(t testing.TB, variant string) (*Index, *dataset.Synth, int) {
	t.Helper()
	s := dataset.Generate(dataset.SynthConfig{
		N: 4000, D: 16, NumQueries: 40, NumClusters: 24, Seed: 11, Noise: 10,
	})
	base := 3200
	ix, err := Build(dataset.U8Set{N: base, D: s.Base.D, Data: s.Base.Data[:base*s.Base.D]},
		BuildConfig{NList: 32, PQ: pq.Config{M: 16, CB: 64}, Variant: variant, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ix, s, base
}

// liveSet assembles the logical corpus (vectors + ids) of the index's
// current live ids out of the generator corpus.
func liveSet(ix *Index, s *dataset.Synth) (dataset.U8Set, []int32) {
	ids := ix.LiveIDs()
	vecs := dataset.U8Set{N: len(ids), D: s.Base.D}
	for _, id := range ids {
		vecs.Data = append(vecs.Data, s.Base.Vec(int(id))...)
	}
	return vecs, ids
}

// requireSameContents fails unless both indexes hold bit-identical inverted
// lists and codes (nil and empty compare equal: a cluster emptied by deletes
// matches a cluster a fresh build never filled).
func requireSameContents(t *testing.T, got, want *Index) {
	t.Helper()
	for c := 0; c < want.NList; c++ {
		if !slices.Equal(got.Lists[c], want.Lists[c]) {
			t.Fatalf("cluster %d ids diverge:\n got %v\nwant %v", c, got.Lists[c], want.Lists[c])
		}
		if !slices.Equal(got.Codes[c], want.Codes[c]) {
			t.Fatalf("cluster %d codes diverge", c)
		}
	}
}

// TestMutateCompactBitIdentity drives randomized insert/delete/compact
// interleavings and checks the LSM overlay's central contract: after
// Compact, the index is bit-identical to a frozen-quantizer rebuild over the
// same logical corpus. Covers pq and opq (the rotation participates in
// encode).
func TestMutateCompactBitIdentity(t *testing.T) {
	for _, variant := range []string{"pq", "opq"} {
		t.Run(variant, func(t *testing.T) {
			ix, s, base := mutableFixture(t, variant)
			rng := rand.New(rand.NewSource(77))
			live := make([]int32, base)
			for i := range live {
				live[i] = int32(i)
			}
			pool := make([]int32, s.Base.N-base)
			for i := range pool {
				pool[i] = int32(base + i)
			}
			for op := 0; op < 600; op++ {
				switch r := rng.Intn(10); {
				case r < 5 && len(pool) > 0: // insert a pool point
					i := rng.Intn(len(pool))
					id := pool[i]
					pool = append(pool[:i], pool[i+1:]...)
					if _, err := ix.Insert(id, s.Base.Vec(int(id))); err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
				case r < 9 && len(live) > 0: // delete a live point (may be a fresh insert)
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if _, _, err := ix.Delete(id); err != nil {
						t.Fatal(err)
					}
					pool = append(pool, id)
				case r == 9: // occasional mid-stream compaction
					if _, err := ix.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := ix.Compact(); err != nil {
				t.Fatal(err)
			}
			if ix.HasMutations() || ix.MutationBytes() != 0 {
				t.Fatal("overlay must be empty after Compact")
			}
			vecs, ids := liveSet(ix, s)
			want, err := RebuildFrozen(ix, vecs, ids)
			if err != nil {
				t.Fatal(err)
			}
			requireSameContents(t, ix, want)
		})
	}
}

// TestMutableSearchVisibility pins the between-compaction promise on the
// float search path: an inserted point is findable immediately (its own
// vector as the query ranks it), and a deleted point never surfaces, in
// both the base list (tombstone filter) and the append segment.
func TestMutableSearchVisibility(t *testing.T) {
	ix, s, base := mutableFixture(t, "pq")
	const nprobe, k = 32, 10
	id := int32(base)
	vec := s.Base.Vec(int(id))
	found := func(id int32, vec []uint8) bool {
		for _, it := range ix.Search(vec, nprobe, k) {
			if it.ID == id {
				return true
			}
		}
		return false
	}
	if found(id, vec) {
		t.Fatal("pool point visible before insert")
	}
	if _, err := ix.Insert(id, vec); err != nil {
		t.Fatal(err)
	}
	if !found(id, vec) {
		t.Fatal("inserted point not findable from the append segment")
	}
	if _, _, err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	if found(id, vec) {
		t.Fatal("append-deleted point still visible")
	}
	// Base-list tombstone: delete an existing point and query with its own
	// vector (which must have ranked it before).
	victim := int32(0)
	if !found(victim, s.Base.Vec(0)) {
		t.Skip("victim not in its own top-k; pick unsuitable for this corpus")
	}
	if _, _, err := ix.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if found(victim, s.Base.Vec(0)) {
		t.Fatal("tombstoned base point still visible")
	}
}

// TestDeleteThenReinsert pins the replace sequence: deleting a base-list id
// and reinserting the same id (same vector) serves from the append segment
// between compactions, and compacts back to exactly the never-mutated index.
func TestDeleteThenReinsert(t *testing.T) {
	ix, s, _ := mutableFixture(t, "pq")
	vecs, ids := liveSet(ix, s)
	pristine, err := RebuildFrozen(ix, vecs, ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int32{0, 17, 1031} {
		if _, _, err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Insert(id, s.Base.Vec(int(id))); err != nil {
			t.Fatal(err)
		}
	}
	if !ix.HasMutations() {
		t.Fatal("delete-then-reinsert must leave an overlay")
	}
	if _, err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	requireSameContents(t, ix, pristine)
}

func TestMutationValidation(t *testing.T) {
	ix, s, base := mutableFixture(t, "pq")
	if _, err := ix.Insert(int32(base), s.Base.Vec(0)[:8]); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if _, err := ix.Insert(-1, s.Base.Vec(0)); err == nil {
		t.Fatal("negative id must fail")
	}
	if _, err := ix.Insert(0, s.Base.Vec(0)); err == nil {
		t.Fatal("live id must fail")
	}
	if _, _, err := ix.Delete(int32(base)); err == nil {
		t.Fatal("deleting a non-live id must fail")
	}
	if _, _, err := ix.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Delete(0); err == nil {
		t.Fatal("double delete must fail")
	}
	if _, err := ix.Insert(0, s.Base.Vec(0)); err != nil {
		t.Fatalf("reinsert after delete must succeed: %v", err)
	}
}

// TestAppendLogRoundTrip serializes a live overlay and replays it onto a
// fresh build of the same base; both compact to identical contents.
func TestAppendLogRoundTrip(t *testing.T) {
	ix, s, base := mutableFixture(t, "pq")
	ix2, _, _ := mutableFixture(t, "pq")
	for i := 0; i < 50; i++ {
		if _, err := ix.Insert(int32(base+i), s.Base.Vec(base+i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int32{3, 99, 1500} {
		if _, _, err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	log := ix.EncodeAppendLog()
	if err := ix2.DecodeAppendLog(log); err != nil {
		t.Fatal(err)
	}
	if got := ix2.EncodeAppendLog(); !slices.Equal(got, log) {
		t.Fatal("re-encoded log differs from the original")
	}
	if _, err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.Compact(); err != nil {
		t.Fatal(err)
	}
	requireSameContents(t, ix2, ix)
}

func TestAppendLogRejectsCorruption(t *testing.T) {
	ix, s, base := mutableFixture(t, "pq")
	if _, err := ix.Insert(int32(base), s.Base.Vec(base)); err != nil {
		t.Fatal(err)
	}
	good := ix.EncodeAppendLog()
	cases := map[string][]byte{
		"empty":     {},
		"badmagic":  append([]byte{1, 2, 3, 4}, good[4:]...),
		"truncated": good[:len(good)-3],
		"trailing":  append(slices.Clone(good), 0),
	}
	for name, data := range cases {
		if err := ix.DecodeAppendLog(data); err == nil {
			t.Fatalf("%s log must fail to decode", name)
		}
	}
	// Errors must leave the previous overlay intact.
	if got := ix.EncodeAppendLog(); !slices.Equal(got, good) {
		t.Fatal("failed decode disturbed the live overlay")
	}
}

// FuzzAppendLog throws arbitrary bytes at the append-log decoder: it must
// never panic or over-allocate, and any log it accepts must re-encode to a
// decodable log.
func FuzzAppendLog(f *testing.F) {
	ix, s, base := mutableFixture(f, "pq")
	for i := 0; i < 30; i++ {
		if _, err := ix.Insert(int32(base+i), s.Base.Vec(base+i)); err != nil {
			f.Fatal(err)
		}
	}
	for _, id := range []int32{1, 2, 500} {
		if _, _, err := ix.Delete(id); err != nil {
			f.Fatal(err)
		}
	}
	valid := ix.EncodeAppendLog()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte{})
	for i := 0; i < len(valid); i += 7 {
		mut := slices.Clone(valid)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := ix.DecodeAppendLog(data); err != nil {
			return
		}
		re := ix.EncodeAppendLog()
		if err := ix.DecodeAppendLog(re); err != nil {
			t.Fatalf("accepted log did not round-trip: %v", err)
		}
	})
}
