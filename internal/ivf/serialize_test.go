package ivf

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim != ix.Dim || loaded.NList != ix.NList || loaded.M != ix.M || loaded.CB != ix.CB {
		t.Fatalf("shape mismatch after load: %+v", loaded)
	}
	// Search results must be identical on both paths.
	for qi := 0; qi < 8; qi++ {
		want := ix.SearchInt(s.Queries.Vec(qi), 8, 5)
		got := loaded.SearchInt(s.Queries.Vec(qi), 8, 5)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d: loaded index diverges at %d: %v vs %v", qi, j, got[j], want[j])
			}
		}
		wantF := ix.Search(s.Queries.Vec(qi), 8, 5)
		gotF := loaded.Search(s.Queries.Vec(qi), 8, 5)
		for j := range wantF {
			if gotF[j].ID != wantF[j].ID {
				t.Fatalf("query %d: float path diverges after load", qi)
			}
		}
	}
}

func TestSaveLoadOPQ(t *testing.T) {
	ix, s := smallIndex(t, "opq")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.OPQ == nil {
		t.Fatal("OPQ rotation lost in round trip")
	}
	want := ix.Search(s.Queries.Vec(0), 8, 5)
	got := loaded.Search(s.Queries.Vec(0), 8, 5)
	for j := range want {
		if got[j].ID != want[j].ID {
			t.Fatal("OPQ search diverges after load")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ix, _ := smallIndex(t, "pq")
	path := filepath.Join(t.TempDir(), "index.drim")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NList != ix.NList {
		t.Fatal("file round trip failed")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
}

// TestSaveLoadMutatedOverlay is the regression test for the silent
// overlay loss: insert → save → load → search must serve the inserted
// points and keep tombstoned ones dead.
func TestSaveLoadMutatedOverlay(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	// Live mutations: a handful of fresh inserts and deletes of base ids.
	for qi := 0; qi < 6; qi++ {
		if _, err := ix.Insert(int32(100000+qi), s.Queries.Vec(qi)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int32{3, 77, 1999} {
		if _, _, err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if !ix.HasMutations() {
		t.Fatal("fixture has no mutations")
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasMutations() {
		t.Fatal("overlay lost in save/load round trip")
	}
	if !slices.Equal(loaded.LiveIDs(), ix.LiveIDs()) {
		t.Fatal("live id set changed across save/load")
	}
	for qi := 0; qi < 16; qi++ {
		want := ix.SearchInt(s.Queries.Vec(qi), 8, 5)
		got := loaded.SearchInt(s.Queries.Vec(qi), 8, 5)
		if !slices.Equal(got, want) {
			t.Fatalf("query %d: loaded mutated index diverges: %v vs %v", qi, got, want)
		}
	}
	// The inserted points must actually be findable, and the tombstoned
	// ones must stay dead.
	if c, ok := loaded.WhereIs(100000); !ok {
		t.Fatal("inserted id 100000 lost after load")
	} else if wc, _ := ix.WhereIs(100000); wc != c {
		t.Fatalf("inserted id 100000 moved cluster: %d vs %d", c, wc)
	}
	if _, ok := loaded.WhereIs(77); ok {
		t.Fatal("tombstoned id 77 resurrected by load")
	}

	// The legacy v1 format cannot represent the overlay: writing it
	// from a mutated index is an explicit error, not silent data loss.
	if err := ix.SaveV1(&bytes.Buffer{}); err == nil {
		t.Fatal("SaveV1 of a mutated index must fail")
	}
}

// TestSaveV1LegacyRoundTrip pins that v1 images still load.
func TestSaveV1LegacyRoundTrip(t *testing.T) {
	for _, variant := range []string{"pq", "opq"} {
		ix, s := smallIndex(t, variant)
		var buf bytes.Buffer
		if err := ix.SaveV1(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 8; qi++ {
			want := ix.SearchInt(s.Queries.Vec(qi), 8, 5)
			got := loaded.SearchInt(s.Queries.Vec(qi), 8, 5)
			if !slices.Equal(got, want) {
				t.Fatalf("%s query %d: v1 round trip diverges", variant, qi)
			}
		}
	}
}

// TestV2DetectsBitFlips checks the per-section CRCs: flipping any
// single byte of a v2 image must fail Load instead of deserializing
// garbage.
func TestV2DetectsBitFlips(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	if _, err := ix.Insert(100001, s.Queries.Vec(0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for pos := 0; pos < len(img); pos += 13 {
		bad := append([]byte{}, img...)
		bad[pos] ^= 0x04
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped byte %d of %d went undetected", pos, len(img))
		}
	}
}

// TestSaveFileLeavesNoTemp pins the atomic save path: repeated saves
// over the same path leave exactly the index file, no temp droppings.
func TestSaveFileLeavesNoTemp(t *testing.T) {
	ix, _ := smallIndex(t, "pq")
	dir := t.TempDir()
	path := filepath.Join(dir, "index.drim")
	for i := 0; i < 2; i++ {
		if err := ix.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "index.drim" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated header must fail")
	}
	// Wrong magic.
	bad := make([]byte, 7*4)
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must fail")
	}
	// Valid header, truncated body.
	ix, _ := smallIndex(t, "pq")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body must fail")
	}
}
