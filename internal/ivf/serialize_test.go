package ivf

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ix, s := smallIndex(t, "pq")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim != ix.Dim || loaded.NList != ix.NList || loaded.M != ix.M || loaded.CB != ix.CB {
		t.Fatalf("shape mismatch after load: %+v", loaded)
	}
	// Search results must be identical on both paths.
	for qi := 0; qi < 8; qi++ {
		want := ix.SearchInt(s.Queries.Vec(qi), 8, 5)
		got := loaded.SearchInt(s.Queries.Vec(qi), 8, 5)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d: loaded index diverges at %d: %v vs %v", qi, j, got[j], want[j])
			}
		}
		wantF := ix.Search(s.Queries.Vec(qi), 8, 5)
		gotF := loaded.Search(s.Queries.Vec(qi), 8, 5)
		for j := range wantF {
			if gotF[j].ID != wantF[j].ID {
				t.Fatalf("query %d: float path diverges after load", qi)
			}
		}
	}
}

func TestSaveLoadOPQ(t *testing.T) {
	ix, s := smallIndex(t, "opq")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.OPQ == nil {
		t.Fatal("OPQ rotation lost in round trip")
	}
	want := ix.Search(s.Queries.Vec(0), 8, 5)
	got := loaded.Search(s.Queries.Vec(0), 8, 5)
	for j := range want {
		if got[j].ID != want[j].ID {
			t.Fatal("OPQ search diverges after load")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ix, _ := smallIndex(t, "pq")
	path := filepath.Join(t.TempDir(), "index.drim")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NList != ix.NList {
		t.Fatal("file round trip failed")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated header must fail")
	}
	// Wrong magic.
	bad := make([]byte, 7*4)
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must fail")
	}
	// Valid header, truncated body.
	ix, _ := smallIndex(t, "pq")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body must fail")
	}
}
