// Package sched implements DRIM-ANN's runtime query scheduling (paper §3.3):
// a greedy mapper that sends each (query, cluster-slice) task to the coldest
// DPU holding a copy of that slice, a rebalancing pass that exploits
// duplicated slices to shave the long tail, and overheat postponement that
// defers tasks from DPUs loaded beyond th3 times the mean to the next batch.
// After scheduling, all DPUs are launched synchronously.
package sched

import (
	"sort"

	"drimann/internal/layout"
)

// Request asks for one query to be searched in one located cluster.
type Request struct {
	Query   int32
	Cluster int32
}

// Task is a scheduled unit: one query scanning one slice copy on one DPU.
type Task struct {
	Query   int32
	Cluster int32
	Slice   int // index into placement.Slices
	DPU     int
}

// Config controls scheduling.
type Config struct {
	// Cost predicts the execution cycles of scanning `points` points for one
	// query; the engine supplies the performance-model-derived estimate.
	Cost func(points int) float64
	// Th3 is the overheat threshold: after greedy assignment, tasks are
	// postponed while a DPU's predicted heat exceeds Th3 x mean heat.
	// <= 0 disables postponement.
	Th3 float64
	// Rebalance enables the long-tail pass that moves tasks from the hottest
	// DPU to colder replicas.
	Rebalance bool
}

// Batch is the result of scheduling one query batch. A Batch can be reused
// across GreedyInto calls: its slices are truncated and refilled rather than
// reallocated, which keeps the per-launch scheduling path allocation-free.
type Batch struct {
	PerDPU    [][]Task  // tasks per DPU
	Postponed []Task    // deferred to the next batch (already slice-level)
	Heat      []float64 // predicted cycles per DPU

	scratch []Task // reused task-expansion buffer
}

// Greedy schedules requests (plus carried-over tasks) onto DPUs.
func Greedy(reqs []Request, carried []Task, pl *layout.Placement, cfg Config) *Batch {
	b := &Batch{}
	GreedyInto(b, reqs, carried, pl, cfg)
	return b
}

// GreedyInto is Greedy with caller-owned storage: b's slices are reset and
// refilled in place (grown only when capacity is insufficient), so a batch
// loop that reuses one Batch performs no steady-state allocation. carried
// must not alias b.Postponed from the same Batch — copy it out first.
func GreedyInto(b *Batch, reqs []Request, carried []Task, pl *layout.Placement, cfg Config) {
	if cfg.Cost == nil {
		cfg.Cost = func(points int) float64 { return float64(points) }
	}
	if cap(b.PerDPU) < pl.NumDPUs {
		b.PerDPU = make([][]Task, pl.NumDPUs)
	}
	b.PerDPU = b.PerDPU[:pl.NumDPUs]
	for d := range b.PerDPU {
		b.PerDPU[d] = b.PerDPU[d][:0]
	}
	if cap(b.Heat) < pl.NumDPUs {
		b.Heat = make([]float64, pl.NumDPUs)
	}
	b.Heat = b.Heat[:pl.NumDPUs]
	for d := range b.Heat {
		b.Heat[d] = 0
	}
	b.Postponed = b.Postponed[:0]

	// Expand requests into slice-level tasks; carried tasks come first so
	// postponed work from the previous batch is not starved.
	tasks := append(b.scratch[:0], carried...)
	for _, r := range reqs {
		for _, si := range pl.ByCluster[r.Cluster] {
			tasks = append(tasks, Task{Query: r.Query, Cluster: r.Cluster, Slice: si})
		}
	}
	b.scratch = tasks

	// Greedy: each task to the coldest replica DPU.
	for i := range tasks {
		t := &tasks[i]
		s := &pl.Slices[t.Slice]
		best := -1
		for _, d := range s.DPUs {
			if best < 0 || b.Heat[d] < b.Heat[best] {
				best = d
			}
		}
		t.DPU = best
		b.Heat[best] += cfg.Cost(s.Count)
		b.PerDPU[best] = append(b.PerDPU[best], *t)
	}

	if cfg.Rebalance {
		rebalance(b, pl, cfg)
	}
	if cfg.Th3 > 0 {
		postpone(b, pl, cfg)
	}
}

// rebalance repeatedly moves a task off the hottest DPU onto a colder
// replica while that lowers the predicted maximum.
func rebalance(b *Batch, pl *layout.Placement, cfg Config) {
	for iter := 0; iter < 4*pl.NumDPUs; iter++ {
		hot := argmaxHeat(b.Heat)
		improved := false
		tasks := b.PerDPU[hot]
		for ti := len(tasks) - 1; ti >= 0; ti-- {
			t := tasks[ti]
			s := &pl.Slices[t.Slice]
			cost := cfg.Cost(s.Count)
			for _, d := range s.DPUs {
				if d == hot {
					continue
				}
				if b.Heat[d]+cost < b.Heat[hot] {
					b.PerDPU[hot] = append(tasks[:ti], tasks[ti+1:]...)
					t.DPU = d
					b.PerDPU[d] = append(b.PerDPU[d], t)
					b.Heat[hot] -= cost
					b.Heat[d] += cost
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			return
		}
	}
}

// postpone defers the latest tasks of overheated DPUs to the next batch.
func postpone(b *Batch, pl *layout.Placement, cfg Config) {
	mean := meanHeat(b.Heat)
	if mean == 0 {
		return
	}
	limit := cfg.Th3 * mean
	for d := range b.PerDPU {
		for b.Heat[d] > limit && len(b.PerDPU[d]) > 1 {
			tasks := b.PerDPU[d]
			t := tasks[len(tasks)-1]
			b.PerDPU[d] = tasks[:len(tasks)-1]
			cost := cfg.Cost(pl.Slices[t.Slice].Count)
			b.Heat[d] -= cost
			t.DPU = -1
			b.Postponed = append(b.Postponed, t)
		}
	}
	// Deterministic order for the next batch.
	sort.Slice(b.Postponed, func(i, j int) bool {
		a, c := b.Postponed[i], b.Postponed[j]
		if a.Query != c.Query {
			return a.Query < c.Query
		}
		return a.Slice < c.Slice
	})
}

func argmaxHeat(heat []float64) int {
	best := 0
	for i, h := range heat {
		if h > heat[best] {
			best = i
		}
	}
	return best
}

func meanHeat(heat []float64) float64 {
	var sum float64
	for _, h := range heat {
		sum += h
	}
	return sum / float64(len(heat))
}

// MaxHeat returns the hottest DPU's predicted cycles.
func (b *Batch) MaxHeat() float64 { return b.Heat[argmaxHeat(b.Heat)] }

// TaskCount returns the number of scheduled (non-postponed) tasks.
func (b *Batch) TaskCount() int {
	n := 0
	for _, ts := range b.PerDPU {
		n += len(ts)
	}
	return n
}

// Profile counts how often each cluster appears in the probe lists of a
// sample query workload — the offline heat profile that drives the layout
// optimizer (paper: "heat profiled by random data distribution patterns").
func Profile(probeLists [][]int32, nClusters int) []float64 {
	freq := make([]float64, nClusters)
	for _, probes := range probeLists {
		for _, c := range probes {
			freq[c]++
		}
	}
	return freq
}
