package sched

import (
	"math/rand"
	"testing"

	"drimann/internal/layout"
)

// testPlacement builds a placement over skewed clusters.
func testPlacement(t *testing.T, numDPUs int, dup bool) (*layout.Placement, []int) {
	t.Helper()
	sizes := []int{1200, 600, 300, 150, 100, 100, 80, 60}
	freq := []float64{40, 20, 10, 5, 3, 3, 2, 1}
	cfg := layout.Config{
		NumDPUs:        numDPUs,
		BytesPerPoint:  20,
		MRAMDataBudget: 1 << 20,
		WRAMMetaBudget: 16 << 10,
		EnableSplit:    true,
		EnableDup:      dup,
		EnableBalance:  true,
	}
	if dup {
		cfg.CopyFootprint = 32 << 10
	}
	pl, err := layout.Optimize(sizes, freq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl, sizes
}

// reqsFor builds skewed requests: most queries hit cluster 0.
func skewedRequests(rng *rand.Rand, n int, nClusters int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		c := int32(0)
		if rng.Float64() > 0.6 {
			c = int32(rng.Intn(nClusters))
		}
		reqs[i] = Request{Query: int32(i / 3), Cluster: c}
	}
	return reqs
}

func TestGreedyCoversEverySliceExactlyOnce(t *testing.T) {
	pl, _ := testPlacement(t, 4, true)
	rng := rand.New(rand.NewSource(1))
	reqs := skewedRequests(rng, 60, len(pl.ByCluster))
	b := Greedy(reqs, nil, pl, Config{})

	// Each request must produce exactly one task per slice of its cluster.
	type key struct {
		q     int32
		slice int
	}
	counts := map[key]int{}
	for _, tasks := range b.PerDPU {
		for _, task := range tasks {
			counts[key{task.Query, task.Slice}]++
		}
	}
	for _, p := range b.Postponed {
		counts[key{p.Query, p.Slice}]++
	}
	want := map[key]int{}
	for _, r := range reqs {
		for _, si := range pl.ByCluster[r.Cluster] {
			want[key{r.Query, si}]++
		}
	}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("task %+v scheduled %d times, want %d", k, counts[k], n)
		}
	}
	for k := range counts {
		if want[k] == 0 {
			t.Fatalf("spurious task %+v", k)
		}
	}
}

func TestGreedyAssignsToReplicaDPUs(t *testing.T) {
	pl, _ := testPlacement(t, 4, true)
	rng := rand.New(rand.NewSource(2))
	reqs := skewedRequests(rng, 40, len(pl.ByCluster))
	b := Greedy(reqs, nil, pl, Config{})
	for d, tasks := range b.PerDPU {
		for _, task := range tasks {
			found := false
			for _, rd := range pl.Slices[task.Slice].DPUs {
				if rd == d {
					found = true
				}
			}
			if !found {
				t.Fatalf("task on DPU %d but slice %d lives on %v", d, task.Slice, pl.Slices[task.Slice].DPUs)
			}
		}
	}
}

func TestDuplicationReducesMaxHeat(t *testing.T) {
	plNoDup, _ := testPlacement(t, 4, false)
	plDup, _ := testPlacement(t, 4, true)
	rng := rand.New(rand.NewSource(3))
	reqs := skewedRequests(rng, 120, len(plNoDup.ByCluster))
	cfg := Config{Rebalance: true}
	bN := Greedy(reqs, nil, plNoDup, cfg)
	bD := Greedy(reqs, nil, plDup, cfg)
	if bD.MaxHeat() > bN.MaxHeat()*1.05 {
		t.Fatalf("duplication should not raise max heat: %v vs %v", bD.MaxHeat(), bN.MaxHeat())
	}
}

func TestPostponeRespectsThreshold(t *testing.T) {
	pl, _ := testPlacement(t, 4, false)
	rng := rand.New(rand.NewSource(4))
	reqs := skewedRequests(rng, 200, len(pl.ByCluster))
	cfg := Config{Th3: 1.3}
	b := Greedy(reqs, nil, pl, cfg)
	mean := 0.0
	for _, h := range b.Heat {
		mean += h
	}
	mean /= float64(len(b.Heat))
	for d, h := range b.Heat {
		// DPUs with more than one task must be within threshold.
		if len(b.PerDPU[d]) > 1 && h > 1.3*mean*1.5 {
			t.Fatalf("DPU %d heat %v far above th3*mean %v", d, h, 1.3*mean)
		}
	}
}

func TestPostponedTasksCarryOver(t *testing.T) {
	pl, _ := testPlacement(t, 2, false)
	rng := rand.New(rand.NewSource(5))
	reqs := skewedRequests(rng, 100, len(pl.ByCluster))
	b1 := Greedy(reqs, nil, pl, Config{Th3: 1.1})
	if len(b1.Postponed) == 0 {
		t.Skip("no postponement triggered at this skew")
	}
	b2 := Greedy(nil, b1.Postponed, pl, Config{})
	if b2.TaskCount() != len(b1.Postponed) {
		t.Fatalf("carried tasks lost: %d scheduled of %d", b2.TaskCount(), len(b1.Postponed))
	}
}

func TestRebalanceNeverWorsensMax(t *testing.T) {
	pl, _ := testPlacement(t, 4, true)
	rng := rand.New(rand.NewSource(6))
	reqs := skewedRequests(rng, 150, len(pl.ByCluster))
	plain := Greedy(reqs, nil, pl, Config{})
	reb := Greedy(reqs, nil, pl, Config{Rebalance: true})
	if reb.MaxHeat() > plain.MaxHeat()+1e-9 {
		t.Fatalf("rebalance worsened max heat: %v vs %v", reb.MaxHeat(), plain.MaxHeat())
	}
}

func TestGreedyDeterministic(t *testing.T) {
	pl, _ := testPlacement(t, 4, true)
	rng := rand.New(rand.NewSource(7))
	reqs := skewedRequests(rng, 50, len(pl.ByCluster))
	a := Greedy(reqs, nil, pl, Config{Rebalance: true, Th3: 1.5})
	b := Greedy(reqs, nil, pl, Config{Rebalance: true, Th3: 1.5})
	for d := range a.PerDPU {
		if len(a.PerDPU[d]) != len(b.PerDPU[d]) {
			t.Fatal("non-deterministic schedule")
		}
		for i := range a.PerDPU[d] {
			if a.PerDPU[d][i] != b.PerDPU[d][i] {
				t.Fatal("non-deterministic task order")
			}
		}
	}
}

func TestCustomCostFunction(t *testing.T) {
	pl, _ := testPlacement(t, 2, false)
	reqs := []Request{{Query: 0, Cluster: 0}, {Query: 1, Cluster: 0}}
	called := false
	b := Greedy(reqs, nil, pl, Config{Cost: func(points int) float64 {
		called = true
		return float64(points) * 2
	}})
	if !called {
		t.Fatal("cost function not consulted")
	}
	if b.TaskCount() == 0 {
		t.Fatal("no tasks scheduled")
	}
}

func TestProfileCounts(t *testing.T) {
	probes := [][]int32{{0, 1}, {0, 2}, {0}}
	freq := Profile(probes, 4)
	want := []float64{3, 1, 1, 0}
	for i := range want {
		if freq[i] != want[i] {
			t.Fatalf("Profile = %v, want %v", freq, want)
		}
	}
}

func TestEmptyRequests(t *testing.T) {
	pl, _ := testPlacement(t, 2, false)
	b := Greedy(nil, nil, pl, Config{Th3: 1.2, Rebalance: true})
	if b.TaskCount() != 0 || len(b.Postponed) != 0 {
		t.Fatal("empty input should produce empty schedule")
	}
}
