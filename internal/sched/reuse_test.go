package sched

import (
	"reflect"
	"testing"

	"drimann/internal/layout"
)

// reusePlacement builds a small placement with duplicated slices so both the
// greedy pass and the rebalance/postpone paths have real work to do.
func reusePlacement(t *testing.T) *layout.Placement {
	t.Helper()
	sizes := []int{400, 300, 200, 100, 80, 60}
	freq := []float64{10, 8, 6, 4, 2, 1}
	pl, err := layout.Optimize(sizes, freq, layout.Config{
		NumDPUs: 4, BytesPerPoint: 20, MRAMDataBudget: 1 << 20,
		CopyFootprint: 4 << 10, WRAMMetaBudget: 1 << 10,
		HeatWeight: 0.5, EnableSplit: true, EnableDup: true, EnableBalance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestGreedyIntoReusesStorage: scheduling into a recycled Batch must produce
// exactly what a fresh Greedy call produces, for several rounds, so the
// engine can run its whole launch loop on one Batch.
func TestGreedyIntoReusesStorage(t *testing.T) {
	pl := reusePlacement(t)
	cfg := Config{Th3: 1.2, Rebalance: true}

	var reused Batch
	var carried []Task
	for round := 0; round < 4; round++ {
		var reqs []Request
		for q := 0; q < 12+round; q++ {
			for c := 0; c < len(pl.ByCluster); c += 1 + (q+round)%3 {
				reqs = append(reqs, Request{Query: int32(q), Cluster: int32(c)})
			}
		}
		fresh := Greedy(reqs, carried, pl, cfg)
		GreedyInto(&reused, reqs, carried, pl, cfg)

		if !reflect.DeepEqual(fresh.PerDPU, reused.PerDPU) {
			t.Fatalf("round %d: PerDPU diverges", round)
		}
		if !reflect.DeepEqual(fresh.Heat, reused.Heat) {
			t.Fatalf("round %d: Heat diverges: %v vs %v", round, fresh.Heat, reused.Heat)
		}
		if len(fresh.Postponed) != len(reused.Postponed) ||
			(len(fresh.Postponed) > 0 && !reflect.DeepEqual(fresh.Postponed, reused.Postponed)) {
			t.Fatalf("round %d: Postponed diverges", round)
		}
		// Next round carries the postponed tasks, copied out because the
		// reused batch's Postponed slice is recycled by GreedyInto.
		carried = append(carried[:0], fresh.Postponed...)
	}
}
