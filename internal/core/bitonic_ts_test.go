package core

import (
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/upmem"
)

func TestBitonicTSIdenticalResults(t *testing.T) {
	f := getFixture(t)
	heap := testOptions()
	bitonic := testOptions()
	bitonic.UseBitonicTS = true

	eH, err := New(f.ix, dataset.U8Set{}, heap)
	if err != nil {
		t.Fatal(err)
	}
	eB, err := New(f.ix, dataset.U8Set{}, bitonic)
	if err != nil {
		t.Fatal(err)
	}
	rH, err := eH.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := eB.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range rH.IDs {
		for j := range rH.IDs[qi] {
			if rH.IDs[qi][j] != rB.IDs[qi][j] {
				t.Fatalf("bitonic TS changed results at query %d", qi)
			}
		}
	}
	// Bitonic is lock-free...
	if rB.Metrics.LockAcquired != 0 {
		t.Fatalf("bitonic TS should acquire no locks, got %d", rB.Metrics.LockAcquired)
	}
	// ...but does n log^2 n work: on these slice sizes its TS time exceeds
	// the lock-pruned priority queue (which is why the paper keeps the
	// queue and prunes the lock instead).
	tsH := rH.Metrics.PhaseSeconds[upmem.PhaseTS]
	tsB := rB.Metrics.PhaseSeconds[upmem.PhaseTS]
	if tsB <= tsH {
		t.Fatalf("bitonic TS (%v) should cost more than a pruned queue (%v) at these slice sizes", tsB, tsH)
	}
}

func TestBitonicTSVsUnprunedQueue(t *testing.T) {
	// Against the *unpruned* locked queue (the paper's ~50%-of-latency
	// scenario), the bitonic network can win — the trade-off that motivated
	// considering it at all.
	f := getFixture(t)
	unpruned := testOptions()
	unpruned.UseLockPruning = false
	bitonic := testOptions()
	bitonic.UseBitonicTS = true

	eU, err := New(f.ix, dataset.U8Set{}, unpruned)
	if err != nil {
		t.Fatal(err)
	}
	eB, err := New(f.ix, dataset.U8Set{}, bitonic)
	if err != nil {
		t.Fatal(err)
	}
	rU, err := eU.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := eB.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	// No strict winner asserted — just both well-defined and nonzero.
	if rU.Metrics.PhaseSeconds[upmem.PhaseTS] <= 0 || rB.Metrics.PhaseSeconds[upmem.PhaseTS] <= 0 {
		t.Fatal("TS accounting missing")
	}
}
