// Backend-contract bindings: the IVF-PQ engine's shared types (Metrics,
// Result, ProbeSet) now live in internal/engine so every backend — and the
// whole serving stack — shares one vocabulary. The aliases below keep this
// package's historical surface intact (core.Metrics IS engine.Metrics, not
// a copy, so existing callers, tests and the bit-identity suites are
// untouched), and the assertions pin that *Engine implements the full
// capability set the stack can discover.

package core

import "drimann/internal/engine"

// Metrics, Result, QueryResult and ProbeSet are the contract types shared
// by every backend; see internal/engine.
type (
	Metrics     = engine.Metrics
	Result      = engine.Result
	QueryResult = engine.QueryResult
	ProbeSet    = engine.ProbeSet
)

// The IVF engine implements the mandatory contract and every optional
// capability the serving stack knows about.
var (
	_ engine.Engine         = (*Engine)(nil)
	_ engine.ProbedSearcher = (*Engine)(nil)
	_ engine.Mutable        = (*Engine)(nil)
	_ engine.Snapshotter    = (*Engine)(nil)
	_ engine.Replicable     = (*Engine)(nil)
	_ engine.MemoryReporter = (*Engine)(nil)
)

// NumClusters returns the probe-ID domain of SearchBatchProbed — the
// index's nlist (engine.ProbedSearcher).
func (e *Engine) NumClusters() int { return e.ix.NList }

// NewReplica builds a replica of this engine's deployment
// (engine.Replicable); see the package-level NewReplica.
func (e *Engine) NewReplica() (engine.Engine, error) { return NewReplica(e) }
