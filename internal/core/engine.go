// Package core is DRIM-ANN itself: the cluster-based ANNS engine that runs
// IVF-PQ search across a simulated UPMEM DRAM-PIM system (paper §3).
//
// The host performs cluster locating (CL) and final top-k merging; the DPUs
// perform residual calculation (RC), LUT construction (LC, multiplier-less
// via SQT), distance calculation (DC) and top-k sorting (TS). Queries are
// scheduled onto DPUs per batch by the greedy scheduler over a
// load-balance-optimized data layout. Every kernel is executed functionally
// (real answers) while charging cycle/DMA costs to the simulator, so both
// recall and the performance phenomena are reproduced.
//
// The engine itself runs as fast as the host allows, mirroring the overlap
// the paper models: SearchBatch is a three-stage pipeline (CL -> schedule ->
// DPU-sim/merge) in which batch i+1's cluster locating runs concurrently
// with batch i's kernel simulation (Options.NoPipeline restores the serial
// reference path). Within a launch, each unique (query, cluster) group's
// residual — and, on the fallback paths, its LUT — is built exactly once,
// shared read-only across the DPUs that scan the cluster, while per-DPU
// RC/LC costs are still charged as if each DPU ran the kernel privately.
// All per-launch state (heaps, arenas, task and schedule buffers) is
// pooled, so the steady-state hot path performs no allocation. The
// pipelined and serial paths produce bit-identical results and metrics.
//
// # Cost-tally execution model
//
// The DPU kernel simulation does O(points) arithmetic with near-zero
// accounting overhead. Instead of charging the upmem.DPU phase counters per
// simulated instruction, each DPU's kernel run accumulates its costs in a
// register-resident upmem.Tally and flushes it to the DPU exactly once per
// launch block (runDPUBlock). Per-candidate TS costs (shared-heap locks,
// heap-update compares and stores) are counted as accept/lock totals during
// the scan and converted to cycles in bulk; every conversion is a uint64
// sum or product identical to the per-op arithmetic, so the flushed phase
// counters are bit-identical to the per-op path. The per-op reference
// accountant is retained behind Options.PerOpAccounting, and the
// determinism suite asserts exact metric equality between the two.
//
// # LUT-free distance calculation
//
// With the decomposed LUT builder available, the engine never materializes
// per-group LUTs at all: DC evaluates, per point, the algebraic identity
//
//	Σ_m lut[m][code_m] = PTerm(q, c) + bsum[point] - 2 Σ_m qe_q[m][code_m]
//
// where bsum (the static per-point term) is precomputed once at deployment,
// qe_q (the per-query gather table) once per query per launch, and PTerm
// once per group — all int32-exact, so distances are bit-identical to
// summing a materialized LUT (vecmath.ADCResidualBatch). The DPU cost model
// is unaffected: RC/LC/DC/TS are still charged exactly as the paper's
// kernels would execute them. Fallback paths (LUT builder over budget, or
// the per-op reference accountant) materialize shared per-group LUTs as
// before.
//
// # SQT16 memoization invariant
//
// All per-DPU sqt.SQT16 tables are built with identical geometry (hot-window
// size, operand domain), so the hot/cold classification of a diff stream is
// the same on every DPU. The LC replay of the 16-bit mode therefore runs
// once per unique (query, cluster) group in buildGroups (stats-free
// ColdCountRow), and the resulting cold count and hit/miss statistics are
// applied arithmetically to every DPU that runs the group — up to a
// NumDPUs-fold reduction — leaving counters bit-identical to a private
// per-DPU replay.
package core

import (
	"cmp"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/layout"
	"drimann/internal/sched"
	"drimann/internal/sqt"
	"drimann/internal/topk"
	"drimann/internal/upmem"
	"drimann/internal/vecmath"
)

// Options configures an Engine. DefaultOptions enables every optimization
// the paper proposes; the ablation studies switch them off one at a time.
type Options struct {
	NumDPUs   int // default 64
	Tasklets  int // default 16
	K         int // neighbors per query; default 10
	NProbe    int // located clusters per query; default 32
	BatchSize int // queries per scheduling batch; default 256

	// UseSQT selects the multiplier-less LC kernel (paper §3.1 / Fig 11a).
	UseSQT bool
	// SQT16 simulates the 16-bit quantization mode (paper §3.1): the full
	// squaring table exceeds WRAM, so a hot window of small magnitudes stays
	// in the scratchpad and cold lookups pay an MRAM access. Residual
	// magnitudes concentrate near zero, so the hot window absorbs most
	// lookups; the engine measures the actual hit rate. Requires UseSQT.
	SQT16 bool
	// SQT16HotEntries sizes the WRAM-resident window; default 8192 (32 KB).
	SQT16HotEntries int
	// UseWRAM enables the WRAM buffer optimization: hot data (SQT, LUT,
	// staging, metadata) resides in the scratchpad (paper §3.2 / Fig 12b).
	UseWRAM bool
	// UseLockPruning forwards the current top-k bound to DC so tasklets skip
	// the shared-heap lock for most points (paper §6).
	UseLockPruning bool
	// UseBitonicTS replaces the shared priority queue with a per-slice
	// bitonic sorting network (the TS alternative in the paper's Figure 1):
	// lock-free and data-independent, but O(n log^2 n) compare-exchanges.
	// Results are identical; only the cost profile changes.
	UseBitonicTS bool

	// Layout toggles (paper §3.2 / Fig 13, 14).
	EnableSplit    bool
	EnableDup      bool
	EnableBalance  bool
	SplitThreshold int // 0 = automatic th1 search
	CopyFootprint  int // extra bytes per DPU for duplicates; default 128 KiB

	// Scheduling (paper §3.3).
	Th3       float64 // overheat postponement threshold; default 1.3
	Rebalance bool

	// TreeCLBranch > 0 replaces the flat host-side centroid scan with a
	// two-level k-means tree locator of that branching factor — the paper's
	// §6 extension point for tree/graph cluster organizations. 0 keeps the
	// flat IVF scan.
	TreeCLBranch int
	// TreeCLBeam is the number of upper nodes descended (0 = sqrt(branch)+1).
	TreeCLBeam int

	// LockCycles is the cost of one shared-heap lock acquisition.
	LockCycles uint64 // default 24
	// SQTAccessCycles is the per-lookup overhead of the squaring table
	// beyond the load itself (address generation, load-use stalls, WRAM
	// port pressure at 4-byte granularity) — the reason the paper's LC
	// speedup is ~1.93x rather than the naive 32x.
	SQTAccessCycles uint64 // default 8

	// Hardware overrides (0 = upmem defaults); used by failure-injection
	// tests and platform scaling studies.
	WRAMBytes int
	MRAMBytes int
	ClockHz   float64
	MulCycles uint64

	// Host models the CPU running CL and merging (Xeon Silver 4216-like).
	Host upmem.Platform

	Workers int // goroutine parallelism for the simulation itself

	// NoPipeline disables the cross-batch execution pipeline: with it set,
	// batch i+1's host-side cluster locating waits for batch i's DPU
	// simulation instead of overlapping with it. Results and metrics are
	// identical either way (the pipeline only changes wall-clock behavior,
	// never the simulated SimSeconds = Σ max(host, pim+xfer) accounting);
	// the flag exists for the serial reference path and determinism tests.
	NoPipeline bool

	// PerOpAccounting selects the retained per-operation reference
	// accountant: every simulated instruction and DMA is charged to the
	// upmem.DPU counters at the point it happens, per-group LUTs are
	// materialized, and the SQT16 replay runs privately per DPU. The default
	// batched cost-tally path produces bit-identical results and exactly
	// equal metrics while doing near-zero accounting work per point; this
	// flag exists so tests can verify that equivalence (and as a
	// maximally-literal reading of the paper's kernels for auditing).
	PerOpAccounting bool
}

// DefaultOptions returns the full DRIM-ANN configuration.
func DefaultOptions() Options {
	return Options{
		NumDPUs:         64,
		Tasklets:        16,
		K:               10,
		NProbe:          32,
		BatchSize:       256,
		UseSQT:          true,
		UseWRAM:         true,
		UseLockPruning:  true,
		EnableSplit:     true,
		EnableDup:       true,
		EnableBalance:   true,
		CopyFootprint:   128 << 10,
		Th3:             1.3,
		Rebalance:       true,
		LockCycles:      24,
		SQTAccessCycles: 8,
		Host: upmem.Platform{
			Name: "host (Xeon Silver 4216)", Threads: 32, FreqGHz: 2.1, VectorWidth: 8,
			PeakGOPs: 538, MemBWGBs: 90, MemCapGB: 256,
		},
		Workers: runtime.GOMAXPROCS(0),
	}
}

func (o *Options) defaults() {
	if o.NumDPUs <= 0 {
		o.NumDPUs = 64
	}
	if o.Tasklets <= 0 {
		o.Tasklets = 16
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.NProbe <= 0 {
		o.NProbe = 32
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.CopyFootprint < 0 {
		o.CopyFootprint = 0
	}
	if o.Th3 < 0 {
		o.Th3 = 0
	}
	if o.LockCycles == 0 {
		o.LockCycles = 24
	}
	if o.SQTAccessCycles == 0 {
		o.SQTAccessCycles = 8
	}
	if o.Host.Threads == 0 {
		o.Host = DefaultOptions().Host
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Engine is a DRIM-ANN instance bound to one index and one PIM system.
type Engine struct {
	ix   *ivf.Index
	sys  *upmem.System
	pl   *layout.Placement
	opts Options

	codeBytes  int  // packed bytes per PQ code
	lutInWRAM  bool // LUT fits the scratchpad alongside mandatory buffers
	lutBytes   int
	metaPerDPU []int // slice-copy count per DPU (metadata footprint)

	// loc is the CL stage (flat scan or TreeCL descent); shared read-only
	// with replica engines and borrowable by sharded front doors.
	loc *Locator
	// sqt16 holds one tiered table per DPU (kernels run concurrently and
	// the tables track per-DPU hit statistics); nil without Options.SQT16.
	sqt16 []*sqt.SQT16

	// lut is the decomposed host-side LUT builder (nil when the per-index
	// precomputation exceeds its memory budget; the engine then falls back
	// to direct LUTInt builds). lutScratch holds one per-worker scratch.
	lut        *ivf.LUTBuilder
	lutScratch []*ivf.LUTScratch

	// algebraic selects the LUT-free DC path (see the package doc): true
	// when the decomposed builder is available and the per-op reference
	// accountant (which materializes LUTs) is off.
	algebraic bool
	// bsum[c][i] is the static per-point decomposition term of point i of
	// cluster c (ivf.LUTBuilder.ClusterADCSums), built once at deployment.
	bsum [][]int32
	// asums[c][i] is bsum's twin for cluster c's live append segment,
	// maintained incrementally by Insert/Delete and cleared by Compact.
	// Like bsum it is shared across replicas: the outer array is allocated
	// once and only its elements are rewritten.
	asums [][]int32

	// freq and lcfg are the heat profile and layout configuration New
	// resolved, retained so Compact can re-run the layout optimizer over the
	// post-fold cluster sizes with identical inputs.
	freq []float64
	lcfg layout.Config

	// Per-launch reusable state: one kernel scratch per DPU plus the shared
	// (query, cluster) group store. Together they make the launch hot path
	// allocation-free after the first batch.
	scratch []dpuScratch
	groups  groupStore
}

// groupKey identifies one unique (query, cluster) pair of a launch.
type groupKey struct {
	q int32
	c int32
}

// groupStore is the per-launch shared LC state: every unique (query,
// cluster) group's residual — plus, depending on the execution mode, its
// LUT (materialized paths) or its decomposition terms and memoized SQT16
// cold count (algebraic path) — is built exactly once, fanned across
// workers, then read by each DPU that scans a slice of the cluster. Arenas
// are sized for one group block at a time to bound memory.
type groupStore struct {
	keys []groupKey // sorted unique groups of the launch
	res  []int16    // block arena: residuals, blockGroups x Dim
	lut  []uint32   // block arena (materialized modes): LUTs, blockGroups x M*CB
	runs []int32    // query-run boundaries within the current block

	// Algebraic-mode arenas (see the package doc): one qe gather table per
	// query run, one scalar PTerm and run index per group.
	qe    []int32 // runs x M*CB
	p     []int32 // block-relative per-group PTerm
	runOf []int32 // block-relative per-group run index into qe

	// cold[i] is the memoized SQT16 cold-lookup count of block-relative
	// group i's full M x CB x dsub replay stream (set only in SQT16 mode on
	// the batched-tally path).
	cold []uint64
}

// dpuScratch is the reusable per-DPU kernel state: the top-k heap pool, the
// (query, heap) result list, the per-task group indices, and the launch
// cursor that lets kernels resume across group blocks.
type dpuScratch struct {
	heaps   []*topk.Heap[uint32] // pool, grown on demand, Reset between uses
	nHeaps  int                  // heaps handed out this launch
	results []dpuQueryResult     // ascending query order (tasks are sorted)
	groupIx []int32              // unique-group index per task
	itemBuf []topk.Item[uint32]  // SortedInto scratch for the host merge
	stats   dpuRunStats

	// tally batches this DPU's simulated costs; flushed to the upmem.DPU
	// once per launch block. distBuf holds one slice's DC distances between
	// the gather pass and the TS accept pass.
	tally   upmem.Tally
	distBuf []uint32

	// Launch cursor: position in the sorted task list plus the current
	// (query, cluster) group, preserved across group blocks.
	taskPos    int
	curQ, curC int32
	curHeap    *topk.Heap[uint32]
}

type dpuQueryResult struct {
	q int32
	h *topk.Heap[uint32]
}

func (sc *dpuScratch) nextHeap(k int) *topk.Heap[uint32] {
	if sc.nHeaps == len(sc.heaps) {
		sc.heaps = append(sc.heaps, topk.NewHeap[uint32](k))
	}
	h := sc.heaps[sc.nHeaps]
	sc.nHeaps++
	h.Reset()
	return h
}

// New builds an engine: it sizes the PIM system, profiles cluster heat on
// the provided profile queries (or falls back to cluster sizes), optimizes
// the data layout, and checks that everything fits MRAM and WRAM.
func New(ix *ivf.Index, profile dataset.U8Set, opts Options) (*Engine, error) {
	opts.defaults()
	cfg := upmem.DefaultConfig(opts.NumDPUs)
	cfg.Tasklets = opts.Tasklets
	if opts.WRAMBytes > 0 {
		cfg.WRAMBytes = opts.WRAMBytes
	}
	if opts.MRAMBytes > 0 {
		cfg.MRAMBytes = opts.MRAMBytes
	}
	if opts.ClockHz > 0 {
		cfg.Cost.ClockHz = opts.ClockHz
	}
	if opts.MulCycles > 0 {
		cfg.Cost.MulCycles = opts.MulCycles
	}
	sys, err := upmem.NewSystem(cfg)
	if err != nil {
		return nil, err
	}

	if ix.HasMutations() {
		return nil, fmt.Errorf("core: index has uncompacted mutations; Compact it before deploying")
	}
	e := &Engine{ix: ix, sys: sys, opts: opts, codeBytes: codeBytesFor(ix.CB, ix.M)}
	loc, err := NewLocator(ix, opts)
	if err != nil {
		return nil, err
	}
	e.loc = loc
	if opts.SQT16 {
		if !opts.UseSQT {
			return nil, fmt.Errorf("core: SQT16 requires UseSQT")
		}
		e.sqt16 = newSQT16Tables(opts)
	}

	// Offline heat profile: probe frequency over the profile workload.
	sizes := make([]int, ix.NList)
	for c := range sizes {
		sizes[c] = ix.ListLen(c)
	}
	freq := make([]float64, ix.NList)
	if profile.N > 0 {
		for qi := 0; qi < profile.N; qi++ {
			for _, p := range ix.LocateInt(profile.Vec(qi), opts.NProbe) {
				freq[p.ID]++
			}
		}
	} else {
		for c, s := range sizes {
			freq[c] = float64(s)
		}
	}

	// Reserve per-DPU MRAM for index-wide data before the layout divides the
	// remainder: integer codebooks plus the full centroid table (for
	// simplicity every DPU keeps all centroids, as the directory is small).
	codebookBytes := ix.M * ix.CB * (ix.Dim / ix.M) * 2
	centroidBytes := ix.NList * ix.Dim
	fixed := codebookBytes + centroidBytes
	dataBudget := cfg.MRAMBytes - fixed - opts.CopyFootprint
	if dataBudget <= 0 {
		return nil, fmt.Errorf("core: MRAM too small: %d fixed bytes vs %d bank", fixed, cfg.MRAMBytes)
	}

	lcfg := layout.Config{
		NumDPUs:        opts.NumDPUs,
		BytesPerPoint:  e.codeBytes + 4,
		MRAMDataBudget: dataBudget,
		CopyFootprint:  opts.CopyFootprint,
		WRAMMetaBudget: cfg.WRAMBytes / 4,
		HeatWeight:     0.5,
		SplitThreshold: opts.SplitThreshold,
		EnableSplit:    opts.EnableSplit,
		EnableDup:      opts.EnableDup,
		EnableBalance:  opts.EnableBalance,
	}
	pl, err := layout.Optimize(sizes, freq, lcfg)
	if err != nil {
		return nil, fmt.Errorf("core: layout: %w", err)
	}
	if err := pl.Validate(sizes); err != nil {
		return nil, fmt.Errorf("core: layout invariants: %w", err)
	}
	e.pl = pl
	e.freq = freq
	e.lcfg = lcfg

	if err := e.accountMemory(); err != nil {
		return nil, err
	}

	// Host-side execution state: the decomposed LUT builder with one scratch
	// per worker, and the per-DPU kernel scratch reused across launches.
	e.lut = ix.NewLUTBuilder(opts.Workers)
	e.lutScratch = newLUTScratches(e.lut, opts.Workers)
	// The LUT-free DC path needs the static per-point decomposition term of
	// every cluster; build it once here (O(N*M) gathers over the whole
	// corpus). The per-op reference accountant materializes LUTs instead.
	e.algebraic = e.lut != nil && !opts.PerOpAccounting
	if e.algebraic {
		e.bsum = make([][]int32, ix.NList)
		e.asums = make([][]int32, ix.NList)
		parallelFor(ix.NList, opts.Workers, func(_, c int) {
			codes := ix.Codes[c]
			sums := make([]int32, len(codes)/ix.M)
			e.lut.ClusterADCSums(c, codes, sums)
			e.bsum[c] = sums
		})
	}
	e.scratch = make([]dpuScratch, opts.NumDPUs)
	return e, nil
}

func codeBytesFor(cb, m int) int {
	if cb <= 256 {
		return m
	}
	return 2 * m
}

// newSQT16Tables builds one tiered 16-bit squaring table per DPU — all with
// identical geometry, the precondition of the SQT16 memoization invariant.
// Replica engines get their own tables (they carry per-DPU hit statistics).
func newSQT16Tables(opts Options) []*sqt.SQT16 {
	hot := opts.SQT16HotEntries
	if hot <= 0 {
		hot = 8192
	}
	t := make([]*sqt.SQT16, opts.NumDPUs)
	for i := range t {
		t[i] = sqt.NewSQT16(hot, sqt.MaxDiff8)
	}
	return t
}

// newLUTScratches allocates one LUT-builder scratch per worker (nil when the
// builder itself is unavailable).
func newLUTScratches(lut *ivf.LUTBuilder, workers int) []*ivf.LUTScratch {
	if lut == nil {
		return nil
	}
	scratches := make([]*ivf.LUTScratch, workers)
	for i := range scratches {
		scratches[i] = lut.NewScratch()
	}
	return scratches
}

// accountMemory reserves the engine's per-DPU MRAM (index-wide fixed data
// plus every placed slice) and WRAM (staging, SQT, metadata, and the LUT
// when it fits), recording metaPerDPU and lutInWRAM. New and NewReplica both
// run it — each against its own fresh upmem.System, since the simulated
// hardware is per replica even where the host-side data is shared.
func (e *Engine) accountMemory() error {
	ix, sys, opts := e.ix, e.sys, e.opts
	codebookBytes := ix.M * ix.CB * (ix.Dim / ix.M) * 2
	centroidBytes := ix.NList * ix.Dim
	fixed := codebookBytes + centroidBytes

	// Account MRAM per DPU.
	e.metaPerDPU = make([]int, opts.NumDPUs)
	for _, d := range sys.DPUs {
		if err := d.AllocMRAM(fixed); err != nil {
			return fmt.Errorf("core: fixed MRAM: %w", err)
		}
	}
	for _, s := range e.pl.Slices {
		bytes := s.Count * (e.codeBytes + 4)
		for _, d := range s.DPUs {
			if err := sys.DPUs[d].AllocMRAM(bytes); err != nil {
				return fmt.Errorf("core: slice data: %w", err)
			}
			e.metaPerDPU[d]++
		}
	}

	// Account WRAM per DPU: staging buffers are always needed; with the
	// buffer optimization also the SQT, slice metadata, and (if it fits)
	// the distance LUT.
	e.lutBytes = ix.M * ix.CB * 4
	const stagingBytes = 4096
	const sqtBytes = 511 * 4
	e.lutInWRAM = false
	if opts.UseWRAM {
		e.lutInWRAM = true
		for i, d := range sys.DPUs {
			if err := d.AllocWRAM(stagingBytes + sqtBytes + e.metaPerDPU[i]*16); err != nil {
				return fmt.Errorf("core: WRAM: %w", err)
			}
			if d.WRAMFree() < e.lutBytes {
				e.lutInWRAM = false
			}
		}
		if e.lutInWRAM {
			for _, d := range sys.DPUs {
				if err := d.AllocWRAM(e.lutBytes); err != nil {
					return fmt.Errorf("core: WRAM LUT: %w", err)
				}
			}
		}
	} else {
		for _, d := range sys.DPUs {
			if err := d.AllocWRAM(stagingBytes); err != nil {
				return fmt.Errorf("core: WRAM staging: %w", err)
			}
		}
	}
	return nil
}

// SQT16HitRate reports the aggregate hot-window hit rate of the tiered
// 16-bit squaring tables, or 1 when the mode is off (the paper's claim:
// residual magnitudes concentrate, so the WRAM tier absorbs most lookups).
func (e *Engine) SQT16HitRate() float64 {
	hot, cold := e.sqt16Totals()
	if hot+cold == 0 {
		return 1
	}
	return float64(hot) / float64(hot+cold)
}

// Placement exposes the optimized layout (for inspection and tests).
func (e *Engine) Placement() *layout.Placement { return e.pl }

// System exposes the simulated PIM system.
func (e *Engine) System() *upmem.System { return e.sys }

// Index returns the underlying IVF-PQ index.
func (e *Engine) Index() *ivf.Index { return e.ix }

// K reports the configured neighbors-per-query.
func (e *Engine) K() int { return e.opts.K }

// Dim reports the vector dimensionality queries must match.
func (e *Engine) Dim() int { return e.ix.Dim }

// MaxBatch reports the engine's scheduling batch size — the natural upper
// bound for a serving-layer micro-batch (larger launches are split into
// several scheduling batches anyway).
func (e *Engine) MaxBatch() int { return e.opts.BatchSize }

// taskCostCycles predicts DC+TS cycles for scanning n points — the
// scheduler's heat estimate (Equations 8-11 restricted to the dominant
// terms).
func (e *Engine) taskCostCycles(n int) float64 {
	m := float64(e.ix.M)
	perPoint := 2*m + (m - 1) + 1 + float64(e.opts.LockCycles)/8
	return float64(n) * perPoint
}

// hostCLSeconds models the host-side cluster locating cost for nq queries
// (Equations 1-3 with the CPU's #PE, frequency and vector width), delegated
// to the engine's Locator so a front door charging the cost once computes
// the exact same number.
func (e *Engine) hostCLSeconds(nq int) float64 {
	return e.loc.CLSeconds(nq)
}

// locateBatch runs the configured CL variant for queries[lo:hi) across the
// engine's workers, writing probes into the flat out/counts layout of
// ivf.Index.LocateBatch. This is the pipeline's first stage.
func (e *Engine) locateBatch(queries dataset.U8Set, lo, hi int, out []topk.Item[uint32], counts []int) {
	e.loc.LocateBatch(queries, lo, hi, out, counts)
}

// Locator exposes the engine's CL stage. It is stateless per call, so a
// sharded front door may run it concurrently with the engine's own batches.
func (e *Engine) Locator() *Locator { return e.loc }

// hostMergeSeconds models merging per-DPU partial top-k lists on the host.
func (e *Engine) hostMergeSeconds(items int) float64 {
	h := e.opts.Host
	ops := float64(items) * float64(log2ceil(e.opts.K)+1)
	return ops / (float64(h.Threads) * h.FreqGHz * 1e9)
}

func log2ceil(x int) int {
	if x <= 1 {
		return 1
	}
	return bits.Len(uint(x - 1))
}

// clBatch is one produced CL stage result: the slice-level requests of the
// query range [lo, hi).
type clBatch struct {
	lo, hi int
	reqs   []sched.Request
}

// SearchBatch searches every query and returns neighbors plus metrics.
//
// Execution is a three-stage pipeline (paper §3: host CL overlaps the PIM
// kernels): stage 1 locates clusters for a whole query batch across the
// engine's workers; stage 2 schedules the resulting tasks; stage 3 runs the
// DPU kernel simulation and host merge. Unless Options.NoPipeline is set,
// stage 1 of batch i+1 runs concurrently with stages 2-3 of batch i, so the
// host CL cost disappears from the wall-clock critical path exactly as the
// modeled SimSeconds = Σ max(host, pim+xfer) accounting assumes. Results and
// metrics are bit-identical between the pipelined and serial paths.
func (e *Engine) SearchBatch(queries dataset.U8Set) (*Result, error) {
	return e.searchBatch(queries, ProbeSet{}, false, true)
}

// searchBatch is the shared body behind SearchBatch and SearchBatchProbed.
// With probed set, the CL stage is replaced by expanding the pre-resolved
// probe lists of ps — in list order, which preserves the ascending-distance
// request order the scheduler sees on the plain path, so schedules, results
// and metrics stay bit-identical when ps came from this engine's Locator.
// chargeCL controls whether each batch's host CL cost enters the metrics.
func (e *Engine) searchBatch(queries dataset.U8Set, ps ProbeSet, probed, chargeCL bool) (*Result, error) {
	if queries.D != e.ix.Dim {
		return nil, fmt.Errorf("core: query dim %d != index dim %d", queries.D, e.ix.Dim)
	}
	res := &Result{
		IDs:   make([][]int32, queries.N),
		Items: make([][]topk.Item[uint32], queries.N),
	}
	m := &res.Metrics
	m.Queries = queries.N
	// The per-DPU SQT16 counters accumulate across the engine's lifetime;
	// this call's share is the delta.
	sqtHot0, sqtCold0 := e.sqt16Totals()

	// Query ids are only unique within this call: drop any per-query terms
	// the LUT scratches cached during a previous SearchBatch.
	for _, sc := range e.lutScratch {
		sc.Invalidate()
	}

	partials := make([][]topk.Item[uint32], queries.N)
	nBatches := (queries.N + e.opts.BatchSize - 1) / e.opts.BatchSize

	// CL stage: probe storage for one batch plus the request-expansion
	// closure, owned by whichever goroutine runs the stage. The probed path
	// needs no probe buffers — it only reads ps.
	var probes []topk.Item[uint32]
	var counts []int
	if !probed {
		probes = make([]topk.Item[uint32], e.opts.BatchSize*e.opts.NProbe)
		counts = make([]int, e.opts.BatchSize)
	}
	runCL := func(lo, hi int, reqs []sched.Request) []sched.Request {
		reqs = reqs[:0]
		if probed {
			for qi := lo; qi < hi; qi++ {
				for _, c := range ps.Of(qi) {
					reqs = append(reqs, sched.Request{Query: int32(qi), Cluster: c})
				}
			}
			return reqs
		}
		e.locateBatch(queries, lo, hi, probes, counts)
		for qi := lo; qi < hi; qi++ {
			base := (qi - lo) * e.opts.NProbe
			for _, p := range probes[base : base+counts[qi-lo]] {
				reqs = append(reqs, sched.Request{Query: int32(qi), Cluster: p.ID})
			}
		}
		return reqs
	}

	// Pipelined mode: a producer goroutine runs CL one batch ahead, cycling
	// two request buffers through a free list so steady state allocates
	// nothing and CL of batch i+1 overlaps the DPU simulation of batch i.
	var clOut chan clBatch
	var clFree chan []sched.Request
	if !e.opts.NoPipeline && nBatches > 1 {
		clOut = make(chan clBatch, 1)
		clFree = make(chan []sched.Request, 2)
		clFree <- nil
		clFree <- nil
		go func() {
			for lo := 0; lo < queries.N; lo += e.opts.BatchSize {
				hi := lo + e.opts.BatchSize
				if hi > queries.N {
					hi = queries.N
				}
				clOut <- clBatch{lo: lo, hi: hi, reqs: runCL(lo, hi, <-clFree)}
			}
			close(clOut)
		}()
	}

	var carried []sched.Task
	var sb sched.Batch // schedule storage reused across launches
	var serialReqs []sched.Request
	scfg := sched.Config{
		Cost:      func(points int) float64 { return e.taskCostCycles(points) },
		Th3:       e.opts.Th3,
		Rebalance: e.opts.Rebalance,
	}

	for bi := 0; bi < nBatches; bi++ {
		lo := bi * e.opts.BatchSize
		hi := lo + e.opts.BatchSize
		if hi > queries.N {
			hi = queries.N
		}
		var reqs, clBuf []sched.Request
		if clOut != nil {
			cb := <-clOut
			reqs, clBuf = cb.reqs, cb.reqs
		} else {
			serialReqs = runCL(lo, hi, serialReqs)
			reqs = serialReqs
		}
		hostSec := 0.0
		if chargeCL {
			hostSec = e.hostCLSeconds(hi - lo)
		}

		lastBatch := hi >= queries.N
		var pimPlusXfer float64
		for {
			sched.GreedyInto(&sb, reqs, carried, e.pl, scfg)
			reqs = nil
			carried = append(carried[:0], sb.Postponed...)
			m.Postponed += len(sb.Postponed)

			launchSec, mergeItems := e.runLaunch(&sb, queries, partials, m)
			pimPlusXfer += launchSec
			hostSec += e.hostMergeSeconds(mergeItems)

			if !lastBatch || len(carried) == 0 {
				break
			}
			// Final batch: drain postponed tasks with extra launches, but
			// stop postponing once only carried work remains.
			if scfg.Th3 > 0 {
				scfg.Th3 = scfg.Th3 * 2
			}
		}
		if clFree != nil {
			clFree <- clBuf
		}
		m.HostSeconds += hostSec
		m.SimSeconds += math.Max(hostSec, pimPlusXfer)
		m.Batches++
	}

	// Final per-query merge (already counted in host merge time above).
	for qi := range partials {
		items := partials[qi]
		topk.SortItems(items)
		if len(items) > e.opts.K {
			items = items[:e.opts.K]
		}
		res.Items[qi] = items
		ids := make([]int32, len(items))
		for j, it := range items {
			ids[j] = it.ID
		}
		res.IDs[qi] = ids
	}
	if m.SimSeconds > 0 {
		m.QPS = float64(queries.N) / m.SimSeconds
	}
	sqtHot1, sqtCold1 := e.sqt16Totals()
	m.SQT16Hot = sqtHot1 - sqtHot0
	m.SQT16Cold = sqtCold1 - sqtCold0
	return res, nil
}

// sqt16Totals sums the hot/cold lookup counters over every DPU's tiered
// table (both zero when the 16-bit mode is off).
func (e *Engine) sqt16Totals() (hot, cold uint64) {
	for _, t := range e.sqt16 {
		s := t.Stats()
		hot += s.Hot
		cold += s.Cold
	}
	return hot, cold
}

// groupBlockBudget bounds the shared residual+LUT arena of one launch
// block; large batches are processed in several blocks so memory stays flat
// while the per-block LUT builds still fan out across workers.
const groupBlockBudget = 48 << 20

// runLaunch executes one synchronous DPU launch and returns its wall time
// max(PIM, transfer) and the number of partial items merged on the host.
//
// The launch is staged for wall-clock speed without touching the simulated
// accounting: (1) every DPU's task list is sorted in parallel; (2) the
// launch's unique (query, cluster) groups are collected so each residual and
// LUT is built exactly once — in parallel across workers, block by block —
// instead of once per DPU touching the cluster; (3) DPU kernels run in
// parallel over the shared read-only LUTs, charging the per-DPU RC/LC/DC/TS
// costs exactly as a private build would; (4) results merge deterministically
// from reusable per-DPU heaps.
func (e *Engine) runLaunch(batch *sched.Batch, queries dataset.U8Set, partials [][]topk.Item[uint32], m *Metrics) (float64, int) {
	e.sys.ResetCounters()
	e.sys.Launch()

	// Stage 1: deterministic task order per DPU; reset launch cursors.
	e.forEachDPU(batch, func(d int) {
		e.sortTasks(batch.PerDPU[d])
		sc := &e.scratch[d]
		sc.results = sc.results[:0]
		sc.nHeaps = 0
		sc.stats = dpuRunStats{}
		sc.tally.Reset()
		sc.taskPos = 0
		sc.curQ, sc.curC = -1, -1
		sc.curHeap = nil
	})

	// Stage 2: unique groups + per-task group indices + query shipments.
	// Host -> DPU: each (query, DPU) pair ships the query vector once.
	shipped := e.collectGroups(batch)
	e.sys.TransferToDPUs(uint64(shipped * queries.D))

	// Stage 3: build shared residuals/LUTs one block at a time, then let
	// every DPU consume its tasks whose groups fall inside the block.
	g := &e.groups
	blockGroups := groupBlockBudget / (e.ix.M*e.ix.CB*4 + e.ix.Dim*2)
	if blockGroups < 1 {
		blockGroups = 1
	}
	for gLo := 0; gLo < len(g.keys); gLo += blockGroups {
		gHi := gLo + blockGroups
		if gHi > len(g.keys) {
			gHi = len(g.keys)
		}
		e.buildGroups(queries, gLo, gHi)
		e.forEachDPU(batch, func(d int) {
			e.runDPUBlock(d, batch.PerDPU[d], gLo, gHi)
		})
	}

	// Stage 4: deterministic host merge (DPU order, then query order — the
	// per-DPU result lists are already query-sorted).
	mergeItems := 0
	var fromDev uint64
	for d := 0; d < e.opts.NumDPUs; d++ {
		if len(batch.PerDPU[d]) == 0 {
			continue
		}
		sc := &e.scratch[d]
		for _, r := range sc.results {
			sc.itemBuf = r.h.SortedInto(sc.itemBuf)
			partials[r.q] = append(partials[r.q], sc.itemBuf...)
			mergeItems += len(sc.itemBuf)
			fromDev += uint64(len(sc.itemBuf) * 8)
		}
		m.LockAcquired += sc.stats.lockAcquired
		m.LockSkipped += sc.stats.lockSkipped
		m.LUTBuilds += sc.stats.lutBuilds
		m.LUTReuses += sc.stats.lutReuses
		m.PointsScanned += sc.stats.points
	}
	e.sys.TransferFromDPUs(fromDev)

	pimSec := e.sys.Cfg.Seconds(e.sys.MaxDPUCycles())
	xferSec := e.sys.TransferSeconds()
	for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
		m.PhaseSeconds[p] += e.sys.Cfg.Seconds(e.sys.PhaseCyclesMax(p))
	}
	for _, d := range e.sys.DPUs {
		for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
			st := d.Stats(p)
			m.PhaseComputeCycles[p] += st.ComputeCycles
			m.PhaseDMACount[p] += st.DMACount
			m.PhaseDMABytes[p] += st.DMABytes
		}
	}
	m.Launches++
	m.XferSeconds += xferSec
	m.PIMSeconds += pimSec
	m.ImbalanceSum += e.sys.Imbalance()
	return math.Max(pimSec, xferSec), mergeItems
}

type dpuRunStats struct {
	lockAcquired, lockSkipped uint64
	lutBuilds, lutReuses      uint64
	points                    uint64
}

// forEachDPU runs f for every DPU with scheduled tasks, fanned across the
// engine's workers. Each DPU's state is private, so invocation order cannot
// affect results.
func (e *Engine) forEachDPU(batch *sched.Batch, f func(d int)) {
	parallelFor(e.opts.NumDPUs, e.opts.Workers, func(_ int, d int) {
		if len(batch.PerDPU[d]) > 0 {
			f(d)
		}
	})
}

// parallelFor runs f(worker, i) for i in [0, n) across up to workers
// goroutines via an atomic work queue. worker identifies the executing
// goroutine for per-worker scratch (always 0 when serial).
func parallelFor(n, workers int, f func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// sortTasks orders one DPU's tasks by (query, cluster, slice start) — the
// deterministic kernel order that makes queries contiguous and groups
// adjacent.
func (e *Engine) sortTasks(tasks []sched.Task) {
	slices.SortFunc(tasks, func(a, b sched.Task) int {
		if c := cmp.Compare(a.Query, b.Query); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Cluster, b.Cluster); c != 0 {
			return c
		}
		return cmp.Compare(e.pl.Slices[a.Slice].Start, e.pl.Slices[b.Slice].Start)
	})
}

// collectGroups gathers the launch's unique (query, cluster) groups into
// e.groups.keys (sorted), assigns every task its group index, and returns
// the number of (query, DPU) pairs whose query vector must ship to a DPU.
// Task lists must already be sorted; the per-DPU group sequences are then
// ascending, so index assignment is a linear merge against the key list.
func (e *Engine) collectGroups(batch *sched.Batch) int {
	g := &e.groups
	g.keys = g.keys[:0]
	shipped := 0
	for d := range batch.PerDPU {
		prevQ, prevC := int32(-1), int32(-1)
		for _, t := range batch.PerDPU[d] {
			if t.Query != prevQ {
				shipped++
			}
			if t.Query != prevQ || t.Cluster != prevC {
				g.keys = append(g.keys, groupKey{q: t.Query, c: t.Cluster})
				prevQ, prevC = t.Query, t.Cluster
			}
		}
	}
	slices.SortFunc(g.keys, func(a, b groupKey) int {
		if c := cmp.Compare(a.q, b.q); c != 0 {
			return c
		}
		return cmp.Compare(a.c, b.c)
	})
	uniq := g.keys[:0]
	for _, k := range g.keys {
		if len(uniq) == 0 || k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	g.keys = uniq

	// Per-DPU index assignment is independent (each DPU writes only its own
	// scratch and reads the shared key list), so fan it out. A DPU's group
	// sequence is ascending, so each transition binary-searches only the
	// key tail past the previous hit — O(groups_d * log(groups)) per DPU
	// rather than a linear rescan of the full key list.
	e.forEachDPU(batch, func(d int) {
		tasks := batch.PerDPU[d]
		sc := &e.scratch[d]
		if cap(sc.groupIx) < len(tasks) {
			sc.groupIx = make([]int32, len(tasks))
		}
		sc.groupIx = sc.groupIx[:len(tasks)]
		ki := 0
		prev := groupKey{q: -1, c: -1}
		for i, t := range tasks {
			k := groupKey{q: t.Query, c: t.Cluster}
			if k != prev {
				tail := g.keys[ki:]
				ki += sort.Search(len(tail), func(j int) bool {
					kj := tail[j]
					if kj.q != k.q {
						return kj.q >= k.q
					}
					return kj.c >= k.c
				})
				prev = k
			}
			sc.groupIx[i] = int32(ki)
		}
	})
	return shipped
}

// buildGroups fills the shared arenas for every group in keys[gLo:gHi),
// building each exactly once. On the algebraic path this is the residual,
// the PTerm scalar and (per query run) the qe gather table; on the
// materialized paths (per-op reference, or LUT builder over budget) it is
// the residual and the full LUT. In SQT16 mode on the batched-tally path it
// also memoizes each group's cold-lookup count, replayed once here instead
// of once per DPU. Work is fanned across workers per query run so per-query
// terms amortize over all clusters the query probes; per-worker scratches
// keep the stage allocation-free.
func (e *Engine) buildGroups(queries dataset.U8Set, gLo, gHi int) {
	g := &e.groups
	ix := e.ix
	dim, lutLen := ix.Dim, ix.M*ix.CB
	n := gHi - gLo
	if n <= 0 {
		return
	}
	if cap(g.res) < n*dim {
		g.res = make([]int16, n*dim)
	}
	if !e.algebraic && cap(g.lut) < n*lutLen {
		g.lut = make([]uint32, n*lutLen)
	}
	memoSQT := e.sqt16 != nil && !e.opts.PerOpAccounting
	if memoSQT {
		if cap(g.cold) < n {
			g.cold = make([]uint64, n)
		}
		g.cold = g.cold[:n]
	}

	// Query runs within the block: keys are (query, cluster)-sorted, so one
	// run is one query's clusters.
	g.runs = g.runs[:0]
	for i := gLo; i < gHi; i++ {
		if i == gLo || g.keys[i].q != g.keys[i-1].q {
			g.runs = append(g.runs, int32(i))
		}
	}
	g.runs = append(g.runs, int32(gHi))
	if e.algebraic {
		if cap(g.qe) < (len(g.runs)-1)*lutLen {
			g.qe = make([]int32, (len(g.runs)-1)*lutLen)
		}
		if cap(g.p) < n {
			g.p = make([]int32, n)
			g.runOf = make([]int32, n)
		}
		g.p = g.p[:n]
		g.runOf = g.runOf[:n]
	}

	parallelFor(len(g.runs)-1, e.opts.Workers, func(w, ri int) {
		var sc *ivf.LUTScratch
		if e.lut != nil && !e.algebraic {
			sc = e.lutScratch[w]
		}
		lo, hi := int(g.runs[ri]), int(g.runs[ri+1])
		query := queries.Vec(int(g.keys[lo].q))
		var qq int32
		if e.algebraic {
			e.lut.BuildQE(query, g.qe[ri*lutLen:(ri+1)*lutLen])
			qq = vecmath.DotU8I32(query, query) // amortized over the run's clusters
		}
		for i := lo; i < hi; i++ {
			k := g.keys[i]
			res := g.res[(i-gLo)*dim : (i-gLo+1)*dim]
			vecmath.SubI16(res, query, ix.CentroidU8(int(k.c)))
			if e.algebraic {
				g.p[i-gLo] = e.lut.PTermQQ(qq, query, int(k.c))
				g.runOf[i-gLo] = int32(ri)
			} else {
				lut := g.lut[(i-gLo)*lutLen : (i-gLo+1)*lutLen]
				switch {
				case e.lut != nil:
					e.lut.Build(k.q, query, int(k.c), lut, sc)
				case e.opts.UseSQT:
					ix.IntCB.LUTInt(res, lut, ix.SQT)
				default:
					ix.IntCB.LUTIntMul(res, lut)
				}
			}
			if memoSQT {
				g.cold[i-gLo] = e.groupColdCount(res)
			}
		}
	})
}

// groupColdCount replays one group's full M x CB x dsub SQT16 diff stream
// (stats-free) and returns its cold-lookup count. All per-DPU tables share
// one geometry and ColdCountRow only reads it, so a single table stands in
// for every DPU — the memoization invariant from the package doc.
func (e *Engine) groupColdCount(res []int16) uint64 {
	ix := e.ix
	tab := e.sqt16[0]
	dsub := ix.Dim / ix.M
	var cold uint64
	for m := 0; m < ix.M; m++ {
		sub := res[m*dsub : (m+1)*dsub]
		for c := 0; c < ix.CB; c++ {
			cold += tab.ColdCountRow(sub, ix.IntCB.Entry(m, c))
		}
	}
	return cold
}

// runDPUBlock advances one DPU's kernel execution through every task whose
// group lies in [gLo, gHi): per group it charges the RC and LC kernels, then
// functionally scans the slice (DC + TS). The cursor in the DPU scratch
// carries the run across blocks of the same launch.
//
// This is the batched-tally hot path: DC distances are computed by an
// unrolled batch gather kernel (LUT-free on the algebraic path), the TS
// accept pass tests a register-cached bound, and every simulated cost
// accumulates in the scratch tally, flushed to the DPU once per block.
// Options.PerOpAccounting swaps in the retained per-op reference.
func (e *Engine) runDPUBlock(d int, tasks []sched.Task, gLo, gHi int) {
	if e.opts.PerOpAccounting {
		e.runDPUBlockRef(d, tasks, gLo, gHi)
		return
	}
	sc := &e.scratch[d]
	dpu := e.sys.DPUs[d]
	ix := e.ix
	g := &e.groups
	lutLen := ix.M * ix.CB
	ta := &sc.tally
	for sc.taskPos < len(tasks) {
		gi := int(sc.groupIx[sc.taskPos])
		if gi >= gHi {
			break
		}
		t := tasks[sc.taskPos]
		sc.taskPos++
		if t.Query != sc.curQ {
			sc.curHeap = sc.nextHeap(e.opts.K)
			sc.results = append(sc.results, dpuQueryResult{q: t.Query, h: sc.curHeap})
		}
		if t.Query != sc.curQ || t.Cluster != sc.curC {
			sc.curQ, sc.curC = t.Query, t.Cluster
			e.chargeRC(ta)
			e.chargeLC(ta, dpu, gi-gLo)
			sc.stats.lutBuilds++
		} else {
			sc.stats.lutReuses++
		}
		s := &e.pl.Slices[t.Slice]
		ids := ix.Lists[t.Cluster][s.Start : s.Start+s.Count]
		codes := ix.Codes[t.Cluster][s.Start*ix.M : (s.Start+s.Count)*ix.M]
		// The append segment rides on the slice that starts the cluster
		// (slicing always begins at 0, so exactly one task per (query,
		// cluster) carries it); base-list tombstones filter in the TS accept
		// pass while the physically-scanned points still charge DC/TS.
		aLen := 0
		if s.Start == 0 {
			aLen = ix.AppendLen(int(t.Cluster))
		}
		if need := s.Count + aLen; cap(sc.distBuf) < need {
			sc.distBuf = make([]uint32, need)
		}
		var qe []int32
		var lut []uint32
		if e.algebraic {
			qe = g.qe[int(g.runOf[gi-gLo])*lutLen:][:lutLen]
		} else {
			lut = g.lut[(gi-gLo)*lutLen : (gi-gLo+1)*lutLen]
		}
		if s.Count > 0 {
			dist := sc.distBuf[:s.Count]
			if e.algebraic {
				bsum := e.bsum[t.Cluster][s.Start : s.Start+s.Count]
				vecmath.ADCResidualBatch(dist, qe, codes, bsum, g.p[gi-gLo], ix.M, ix.CB)
			} else {
				vecmath.ADCBatchU32(dist, lut, codes, ix.M, ix.CB)
			}
			e.kernelTS(ta, dist, ids, ix.Tombstoned(int(t.Cluster)), sc)
		}
		if aLen > 0 {
			adist := sc.distBuf[:aLen]
			acodes := ix.AppendCodes(int(t.Cluster))
			if e.algebraic {
				vecmath.ADCResidualBatch(adist, qe, acodes, e.asums[t.Cluster], g.p[gi-gLo], ix.M, ix.CB)
			} else {
				vecmath.ADCBatchU32(adist, lut, acodes, ix.M, ix.CB)
			}
			e.kernelTS(ta, adist, ix.AppendIDs(int(t.Cluster)), nil, sc)
		}
	}
	dpu.ApplyTally(ta)
	ta.Reset()
}

// chargeRC accounts the residual-calculation kernel (paper Equations 4-5):
// D subtractions plus centroid DMA from MRAM. The residual value itself is
// computed once per group in buildGroups; every DPU running the group is
// still charged as if it ran the kernel privately, as the hardware would.
func (e *Engine) chargeRC(ta *upmem.Tally) {
	cost := &e.sys.Cfg.Cost
	n := uint64(e.ix.Dim)
	ta.Charge(cost, upmem.PhaseRC, upmem.OpLoad, 2*n)
	ta.Charge(cost, upmem.PhaseRC, upmem.OpAdd, n)
	ta.Charge(cost, upmem.PhaseRC, upmem.OpStore, n)
	ta.DMA(upmem.PhaseRC, n) // centroid bytes (uint8)
}

// chargeLC accounts the LUT-construction kernel (Equations 6-7). With
// UseSQT each square is |a-b| + one table load; without it each square is a
// 32-cycle multiply. The codebook streams from MRAM; LUT stores hit WRAM
// when buffered, otherwise they become slow-path MRAM traffic. The LUT
// values themselves are never built per DPU (buildGroups builds each group
// once, or the algebraic path skips them); costs are still charged per DPU.
// In SQT16 mode the group's memoized cold count (bi indexes the block) is
// charged and credited to this DPU's tiered table — bit-identical to the
// private replay chargeLCRef retains, per the memoization invariant.
func (e *Engine) chargeLC(ta *upmem.Tally, dpu *upmem.DPU, bi int) {
	ix := e.ix
	cost := &e.sys.Cfg.Cost
	elems := uint64(ix.CB * ix.Dim) // M * CB * dsub
	entries := uint64(ix.M * ix.CB)
	ta.Charge(cost, upmem.PhaseLC, upmem.OpAdd, elems)  // subtraction per element
	ta.Charge(cost, upmem.PhaseLC, upmem.OpAdd, elems)  // accumulate per element
	ta.Charge(cost, upmem.PhaseLC, upmem.OpLoad, elems) // codebook element loads
	switch {
	case e.opts.UseSQT && e.sqt16 != nil:
		cold := e.groups.cold[bi]
		e.sqt16[dpu.ID].AddStats(elems-cold, cold)
		ta.Charge(cost, upmem.PhaseLC, upmem.OpAdd, elems)  // abs
		ta.Charge(cost, upmem.PhaseLC, upmem.OpLoad, elems) // table lookup
		ta.ChargeCycles(upmem.PhaseLC, elems*e.opts.SQTAccessCycles)
		ta.RandomAccess(upmem.PhaseLC, cold) // cold tier lives in MRAM
		if !e.opts.UseWRAM {
			ta.RandomAccess(upmem.PhaseLC, elems-cold)
		}
	case e.opts.UseSQT:
		ta.Charge(cost, upmem.PhaseLC, upmem.OpAdd, elems)  // abs
		ta.Charge(cost, upmem.PhaseLC, upmem.OpLoad, elems) // SQT lookup
		ta.ChargeCycles(upmem.PhaseLC, elems*e.opts.SQTAccessCycles)
		if !e.opts.UseWRAM {
			ta.RandomAccess(upmem.PhaseLC, elems) // SQT lives in MRAM without buffering
		}
	default:
		ta.Charge(cost, upmem.PhaseLC, upmem.OpMul, elems)
	}
	ta.Charge(cost, upmem.PhaseLC, upmem.OpStore, entries) // LUT stores
	ta.DMA(upmem.PhaseLC, 2*elems)                         // codebook stream (int16)
	if !e.lutInWRAM {
		ta.RandomAccess(upmem.PhaseLC, entries) // LUT spills to MRAM
	}
}

// kernelTS runs the top-k accept pass (TS, Equations 10-11) over one
// slice's DC distances against a register-cached bound (topk.Bound — the
// predicate is exactly Heap.WouldAccept, re-captured after each Push), then
// charges the slice's DC and TS costs in bulk: locks and heap updates are
// counted during the scan and converted to cycles once, which is exact
// because every per-op charge is a uint64 product.
func (e *Engine) kernelTS(ta *upmem.Tally, dist []uint32, ids []int32, tomb map[int32]bool, sc *dpuScratch) {
	h := sc.curHeap
	bound := h.Bound()
	var accepts uint64
	if tomb == nil {
		for i, dv := range dist {
			if bound.Accepts(ids[i], dv) {
				h.Push(ids[i], dv)
				bound = h.Bound()
				accepts++
			}
		}
	} else {
		// Tombstoned base-list points are scanned (and charged) but never
		// accepted into the heap.
		for i, dv := range dist {
			if tomb[ids[i]] {
				continue
			}
			if bound.Accepts(ids[i], dv) {
				h.Push(ids[i], dv)
				bound = h.Bound()
				accepts++
			}
		}
	}

	cost := &e.sys.Cfg.Cost
	n := uint64(len(dist))
	logK := uint64(log2ceil(e.opts.K))
	st := &sc.stats
	st.points += n
	switch {
	case e.opts.UseBitonicTS:
		// A bitonic network over the slice's candidates: size/2 compare-
		// exchanges per column, log(size)*(log(size)+1)/2 columns; no shared
		// queue, no per-accept heap updates.
		if len(dist) > 1 {
			size := uint64(1) << uint(log2ceil(len(dist)))
			logSize := uint64(log2ceil(len(dist)))
			swaps := size / 2 * logSize * (logSize + 1) / 2
			ta.Charge(cost, upmem.PhaseTS, upmem.OpCmp, swaps)
			ta.Charge(cost, upmem.PhaseTS, upmem.OpStore, swaps/2)
		}
	case e.opts.UseLockPruning:
		st.lockAcquired += accepts
		st.lockSkipped += n - accepts
		ta.ChargeCycles(upmem.PhaseTS, accepts*e.opts.LockCycles)
		ta.Charge(cost, upmem.PhaseTS, upmem.OpCmp, accepts*logK)
		ta.Charge(cost, upmem.PhaseTS, upmem.OpStore, accepts*logK)
	default:
		st.lockAcquired += n
		ta.ChargeCycles(upmem.PhaseTS, n*e.opts.LockCycles)
		ta.Charge(cost, upmem.PhaseTS, upmem.OpCmp, accepts*logK)
		ta.Charge(cost, upmem.PhaseTS, upmem.OpStore, accepts*logK)
	}

	um := uint64(e.ix.M)
	ta.Charge(cost, upmem.PhaseDC, upmem.OpLoad, n*um) // code element loads
	ta.Charge(cost, upmem.PhaseDC, upmem.OpLoad, n*um) // LUT gathers
	ta.Charge(cost, upmem.PhaseDC, upmem.OpAdd, n*(um-1))
	ta.Charge(cost, upmem.PhaseTS, upmem.OpCmp, n) // bound comparison per point
	ta.DMA(upmem.PhaseDC, n*uint64(e.codeBytes+4)) // codes + ids stream
	if !e.opts.UseWRAM || !e.lutInWRAM {
		ta.RandomAccess(upmem.PhaseDC, n*um) // LUT gathers hit MRAM
	}
}

// runDPUBlockRef is the retained per-op reference accountant
// (Options.PerOpAccounting): identical task walk, but every simulated
// instruction and DMA is charged to the DPU at the point it happens and DC
// scans a materialized group LUT point-by-point. The batched-tally path
// must reproduce its results and metrics exactly.
func (e *Engine) runDPUBlockRef(d int, tasks []sched.Task, gLo, gHi int) {
	sc := &e.scratch[d]
	dpu := e.sys.DPUs[d]
	ix := e.ix
	dim, lutLen := ix.Dim, ix.M*ix.CB
	for sc.taskPos < len(tasks) {
		gi := int(sc.groupIx[sc.taskPos])
		if gi >= gHi {
			return
		}
		t := tasks[sc.taskPos]
		sc.taskPos++
		if t.Query != sc.curQ {
			sc.curHeap = sc.nextHeap(e.opts.K)
			sc.results = append(sc.results, dpuQueryResult{q: t.Query, h: sc.curHeap})
		}
		res := e.groups.res[(gi-gLo)*dim : (gi-gLo+1)*dim]
		lut := e.groups.lut[(gi-gLo)*lutLen : (gi-gLo+1)*lutLen]
		if t.Query != sc.curQ || t.Cluster != sc.curC {
			sc.curQ, sc.curC = t.Query, t.Cluster
			e.chargeRCRef(dpu)
			e.chargeLCRef(dpu, res)
			sc.stats.lutBuilds++
		} else {
			sc.stats.lutReuses++
		}
		s := &e.pl.Slices[t.Slice]
		ids := ix.Lists[t.Cluster][s.Start : s.Start+s.Count]
		codes := ix.Codes[t.Cluster][s.Start*ix.M : (s.Start+s.Count)*ix.M]
		if s.Count > 0 {
			e.kernelDCTSRef(dpu, lut, ids, codes, ix.Tombstoned(int(t.Cluster)), sc.curHeap, &sc.stats)
		}
		// Append segment: same placement rule as the batched path — it rides
		// on the cluster-starting slice.
		if s.Start == 0 && ix.AppendLen(int(t.Cluster)) > 0 {
			e.kernelDCTSRef(dpu, lut, ix.AppendIDs(int(t.Cluster)), ix.AppendCodes(int(t.Cluster)), nil, sc.curHeap, &sc.stats)
		}
	}
}

// chargeRCRef is the per-op reference twin of chargeRC.
func (e *Engine) chargeRCRef(dpu *upmem.DPU) {
	n := uint64(e.ix.Dim)
	dpu.Charge(upmem.PhaseRC, upmem.OpLoad, 2*n)
	dpu.Charge(upmem.PhaseRC, upmem.OpAdd, n)
	dpu.Charge(upmem.PhaseRC, upmem.OpStore, n)
	dpu.DMA(upmem.PhaseRC, n) // centroid bytes (uint8)
}

// chargeLCRef is the per-op reference twin of chargeLC: in SQT16 mode it
// replays the group's diff stream privately against this DPU's tiered
// table, the cost the memoized path reproduces arithmetically.
func (e *Engine) chargeLCRef(dpu *upmem.DPU, residual []int16) {
	ix := e.ix
	elems := uint64(ix.CB * ix.Dim) // M * CB * dsub
	entries := uint64(ix.M * ix.CB)
	dpu.Charge(upmem.PhaseLC, upmem.OpAdd, elems)  // subtraction per element
	dpu.Charge(upmem.PhaseLC, upmem.OpAdd, elems)  // accumulate per element
	dpu.Charge(upmem.PhaseLC, upmem.OpLoad, elems) // codebook element loads
	switch {
	case e.opts.UseSQT && e.sqt16 != nil:
		// Tiered 16-bit-mode table: replay the actual |diff| stream against
		// the hot window, one subquantizer row at a time; cold lookups pay
		// an MRAM access each.
		tab := e.sqt16[dpu.ID]
		dsub := ix.Dim / ix.M
		var cold uint64
		for m := 0; m < ix.M; m++ {
			sub := residual[m*dsub : (m+1)*dsub]
			for c := 0; c < ix.CB; c++ {
				cold += tab.CountColdRow(sub, ix.IntCB.Entry(m, c))
			}
		}
		dpu.Charge(upmem.PhaseLC, upmem.OpAdd, elems)  // abs
		dpu.Charge(upmem.PhaseLC, upmem.OpLoad, elems) // table lookup
		dpu.ChargeCycles(upmem.PhaseLC, elems*e.opts.SQTAccessCycles)
		dpu.RandomAccess(upmem.PhaseLC, cold) // cold tier lives in MRAM
		if !e.opts.UseWRAM {
			dpu.RandomAccess(upmem.PhaseLC, elems-cold)
		}
	case e.opts.UseSQT:
		dpu.Charge(upmem.PhaseLC, upmem.OpAdd, elems)  // abs
		dpu.Charge(upmem.PhaseLC, upmem.OpLoad, elems) // SQT lookup
		dpu.ChargeCycles(upmem.PhaseLC, elems*e.opts.SQTAccessCycles)
		if !e.opts.UseWRAM {
			dpu.RandomAccess(upmem.PhaseLC, elems) // SQT lives in MRAM without buffering
		}
	default:
		dpu.Charge(upmem.PhaseLC, upmem.OpMul, elems)
	}
	dpu.Charge(upmem.PhaseLC, upmem.OpStore, entries) // LUT stores
	dpu.DMA(upmem.PhaseLC, 2*elems)                   // codebook stream (int16)
	if !e.lutInWRAM {
		dpu.RandomAccess(upmem.PhaseLC, entries) // LUT spills to MRAM
	}
}

// kernelDCTSRef is the per-op reference twin of the batch-DC + kernelTS
// pair: per point M LUT gathers and M-1 adds (DC, Equations 8-9), then the
// top-k update (TS, Equations 10-11) with the shared-heap lock and optional
// lock pruning, each cost charged as it is simulated.
func (e *Engine) kernelDCTSRef(dpu *upmem.DPU, lut []uint32, ids []int32, codes []uint16, tomb map[int32]bool, h *topk.Heap[uint32], st *dpuRunStats) {
	ix := e.ix
	n := len(ids)
	m := ix.M
	logK := uint64(log2ceil(e.opts.K))

	for i := 0; i < n; i++ {
		dist := vecmath.ADCU32(lut, codes[i*m:(i+1)*m], ix.CB)
		accept := (tomb == nil || !tomb[ids[i]]) && h.WouldAccept(ids[i], dist)
		switch {
		case e.opts.UseBitonicTS:
			// Lock-free network: no shared queue, costs charged in bulk
			// below.
		case e.opts.UseLockPruning:
			if accept {
				st.lockAcquired++
				dpu.ChargeCycles(upmem.PhaseTS, e.opts.LockCycles)
			} else {
				st.lockSkipped++
			}
		default:
			st.lockAcquired++
			dpu.ChargeCycles(upmem.PhaseTS, e.opts.LockCycles)
		}
		if accept {
			h.Push(ids[i], dist)
			if !e.opts.UseBitonicTS {
				dpu.Charge(upmem.PhaseTS, upmem.OpCmp, logK)
				dpu.Charge(upmem.PhaseTS, upmem.OpStore, logK)
			}
		}
	}
	st.points += uint64(n)
	if e.opts.UseBitonicTS && n > 1 {
		// A bitonic network over the slice's candidates: size/2 compare-
		// exchanges per column, log(size)*(log(size)+1)/2 columns.
		size := uint64(1) << uint(log2ceil(n))
		logSize := uint64(log2ceil(n))
		swaps := size / 2 * logSize * (logSize + 1) / 2
		dpu.Charge(upmem.PhaseTS, upmem.OpCmp, swaps)
		dpu.Charge(upmem.PhaseTS, upmem.OpStore, swaps/2)
	}

	un := uint64(n)
	um := uint64(m)
	dpu.Charge(upmem.PhaseDC, upmem.OpLoad, un*um) // code element loads
	dpu.Charge(upmem.PhaseDC, upmem.OpLoad, un*um) // LUT gathers
	dpu.Charge(upmem.PhaseDC, upmem.OpAdd, un*(um-1))
	dpu.Charge(upmem.PhaseTS, upmem.OpCmp, un)       // bound comparison per point
	dpu.DMA(upmem.PhaseDC, un*uint64(e.codeBytes+4)) // codes + ids stream
	if !e.opts.UseWRAM || !e.lutInWRAM {
		dpu.RandomAccess(upmem.PhaseDC, un*um) // LUT gathers hit MRAM
	}
}
