// Package core is DRIM-ANN itself: the cluster-based ANNS engine that runs
// IVF-PQ search across a simulated UPMEM DRAM-PIM system (paper §3).
//
// The host performs cluster locating (CL) and final top-k merging; the DPUs
// perform residual calculation (RC), LUT construction (LC, multiplier-less
// via SQT), distance calculation (DC) and top-k sorting (TS). Queries are
// scheduled onto DPUs per batch by the greedy scheduler over a
// load-balance-optimized data layout. Every kernel is executed functionally
// (real answers) while charging cycle/DMA costs to the simulator, so both
// recall and the performance phenomena are reproduced.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/layout"
	"drimann/internal/sched"
	"drimann/internal/sqt"
	"drimann/internal/topk"
	"drimann/internal/upmem"
	"drimann/internal/vecmath"
)

// Options configures an Engine. DefaultOptions enables every optimization
// the paper proposes; the ablation studies switch them off one at a time.
type Options struct {
	NumDPUs   int // default 64
	Tasklets  int // default 16
	K         int // neighbors per query; default 10
	NProbe    int // located clusters per query; default 32
	BatchSize int // queries per scheduling batch; default 256

	// UseSQT selects the multiplier-less LC kernel (paper §3.1 / Fig 11a).
	UseSQT bool
	// SQT16 simulates the 16-bit quantization mode (paper §3.1): the full
	// squaring table exceeds WRAM, so a hot window of small magnitudes stays
	// in the scratchpad and cold lookups pay an MRAM access. Residual
	// magnitudes concentrate near zero, so the hot window absorbs most
	// lookups; the engine measures the actual hit rate. Requires UseSQT.
	SQT16 bool
	// SQT16HotEntries sizes the WRAM-resident window; default 8192 (32 KB).
	SQT16HotEntries int
	// UseWRAM enables the WRAM buffer optimization: hot data (SQT, LUT,
	// staging, metadata) resides in the scratchpad (paper §3.2 / Fig 12b).
	UseWRAM bool
	// UseLockPruning forwards the current top-k bound to DC so tasklets skip
	// the shared-heap lock for most points (paper §6).
	UseLockPruning bool
	// UseBitonicTS replaces the shared priority queue with a per-slice
	// bitonic sorting network (the TS alternative in the paper's Figure 1):
	// lock-free and data-independent, but O(n log^2 n) compare-exchanges.
	// Results are identical; only the cost profile changes.
	UseBitonicTS bool

	// Layout toggles (paper §3.2 / Fig 13, 14).
	EnableSplit    bool
	EnableDup      bool
	EnableBalance  bool
	SplitThreshold int // 0 = automatic th1 search
	CopyFootprint  int // extra bytes per DPU for duplicates; default 128 KiB

	// Scheduling (paper §3.3).
	Th3       float64 // overheat postponement threshold; default 1.3
	Rebalance bool

	// TreeCLBranch > 0 replaces the flat host-side centroid scan with a
	// two-level k-means tree locator of that branching factor — the paper's
	// §6 extension point for tree/graph cluster organizations. 0 keeps the
	// flat IVF scan.
	TreeCLBranch int
	// TreeCLBeam is the number of upper nodes descended (0 = sqrt(branch)+1).
	TreeCLBeam int

	// LockCycles is the cost of one shared-heap lock acquisition.
	LockCycles uint64 // default 24
	// SQTAccessCycles is the per-lookup overhead of the squaring table
	// beyond the load itself (address generation, load-use stalls, WRAM
	// port pressure at 4-byte granularity) — the reason the paper's LC
	// speedup is ~1.93x rather than the naive 32x.
	SQTAccessCycles uint64 // default 8

	// Hardware overrides (0 = upmem defaults); used by failure-injection
	// tests and platform scaling studies.
	WRAMBytes int
	MRAMBytes int
	ClockHz   float64
	MulCycles uint64

	// Host models the CPU running CL and merging (Xeon Silver 4216-like).
	Host upmem.Platform

	Workers int // goroutine parallelism for the simulation itself
}

// DefaultOptions returns the full DRIM-ANN configuration.
func DefaultOptions() Options {
	return Options{
		NumDPUs:         64,
		Tasklets:        16,
		K:               10,
		NProbe:          32,
		BatchSize:       256,
		UseSQT:          true,
		UseWRAM:         true,
		UseLockPruning:  true,
		EnableSplit:     true,
		EnableDup:       true,
		EnableBalance:   true,
		CopyFootprint:   128 << 10,
		Th3:             1.3,
		Rebalance:       true,
		LockCycles:      24,
		SQTAccessCycles: 8,
		Host: upmem.Platform{
			Name: "host (Xeon Silver 4216)", Threads: 32, FreqGHz: 2.1, VectorWidth: 8,
			PeakGOPs: 538, MemBWGBs: 90, MemCapGB: 256,
		},
		Workers: runtime.GOMAXPROCS(0),
	}
}

func (o *Options) defaults() {
	if o.NumDPUs <= 0 {
		o.NumDPUs = 64
	}
	if o.Tasklets <= 0 {
		o.Tasklets = 16
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.NProbe <= 0 {
		o.NProbe = 32
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.CopyFootprint < 0 {
		o.CopyFootprint = 0
	}
	if o.Th3 < 0 {
		o.Th3 = 0
	}
	if o.LockCycles == 0 {
		o.LockCycles = 24
	}
	if o.SQTAccessCycles == 0 {
		o.SQTAccessCycles = 8
	}
	if o.Host.Threads == 0 {
		o.Host = DefaultOptions().Host
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Engine is a DRIM-ANN instance bound to one index and one PIM system.
type Engine struct {
	ix   *ivf.Index
	sys  *upmem.System
	pl   *layout.Placement
	opts Options

	codeBytes  int  // packed bytes per PQ code
	lutInWRAM  bool // LUT fits the scratchpad alongside mandatory buffers
	lutBytes   int
	metaPerDPU []int // slice-copy count per DPU (metadata footprint)

	tree *ivf.TreeCL // non-nil when TreeCLBranch > 0
	// sqt16 holds one tiered table per DPU (kernels run concurrently and
	// the tables track per-DPU hit statistics); nil without Options.SQT16.
	sqt16 []*sqt.SQT16
}

// Metrics reports the simulated cost of a SearchBatch call.
type Metrics struct {
	Queries     int
	SimSeconds  float64 // end-to-end: sum over batches of max(host, PIM+xfer)
	QPS         float64
	HostSeconds float64 // host CL + merge (overlapped with PIM)
	PIMSeconds  float64 // critical-path DPU time summed over launches
	XferSeconds float64 // host<->PIM transfers + launch overhead

	PhaseSeconds [upmem.NumPhases]float64 // per-phase critical path
	Launches     int
	Batches      int

	ImbalanceSum float64 // summed per-launch max/mean (divide by Launches)
	Postponed    int     // tasks deferred by overheat postponement

	LockAcquired  uint64
	LockSkipped   uint64
	LUTBuilds     uint64
	LUTReuses     uint64
	PointsScanned uint64
}

// AvgImbalance returns the mean per-launch max/mean DPU load ratio.
func (m *Metrics) AvgImbalance() float64 {
	if m.Launches == 0 {
		return 1
	}
	return m.ImbalanceSum / float64(m.Launches)
}

// PhaseShare returns each phase's fraction of total PIM time (Figure 9).
func (m *Metrics) PhaseShare() [upmem.NumPhases]float64 {
	var out [upmem.NumPhases]float64
	var total float64
	for _, s := range m.PhaseSeconds {
		total += s
	}
	if total == 0 {
		return out
	}
	for p, s := range m.PhaseSeconds {
		out[p] = s / total
	}
	return out
}

// Result carries the neighbors plus the simulation metrics.
type Result struct {
	IDs     [][]int32
	Items   [][]topk.Item[uint32]
	Metrics Metrics
}

// New builds an engine: it sizes the PIM system, profiles cluster heat on
// the provided profile queries (or falls back to cluster sizes), optimizes
// the data layout, and checks that everything fits MRAM and WRAM.
func New(ix *ivf.Index, profile dataset.U8Set, opts Options) (*Engine, error) {
	opts.defaults()
	cfg := upmem.DefaultConfig(opts.NumDPUs)
	cfg.Tasklets = opts.Tasklets
	if opts.WRAMBytes > 0 {
		cfg.WRAMBytes = opts.WRAMBytes
	}
	if opts.MRAMBytes > 0 {
		cfg.MRAMBytes = opts.MRAMBytes
	}
	if opts.ClockHz > 0 {
		cfg.Cost.ClockHz = opts.ClockHz
	}
	if opts.MulCycles > 0 {
		cfg.Cost.MulCycles = opts.MulCycles
	}
	sys, err := upmem.NewSystem(cfg)
	if err != nil {
		return nil, err
	}

	e := &Engine{ix: ix, sys: sys, opts: opts, codeBytes: codeBytesFor(ix.CB, ix.M)}
	if opts.TreeCLBranch > 0 {
		tree, err := ix.BuildTreeCL(opts.TreeCLBranch, 1)
		if err != nil {
			return nil, fmt.Errorf("core: tree CL: %w", err)
		}
		e.tree = tree
	}
	if opts.SQT16 {
		if !opts.UseSQT {
			return nil, fmt.Errorf("core: SQT16 requires UseSQT")
		}
		hot := opts.SQT16HotEntries
		if hot <= 0 {
			hot = 8192
		}
		e.sqt16 = make([]*sqt.SQT16, opts.NumDPUs)
		for i := range e.sqt16 {
			e.sqt16[i] = sqt.NewSQT16(hot, sqt.MaxDiff8)
		}
	}

	// Offline heat profile: probe frequency over the profile workload.
	sizes := make([]int, ix.NList)
	for c := range sizes {
		sizes[c] = ix.ListLen(c)
	}
	freq := make([]float64, ix.NList)
	if profile.N > 0 {
		for qi := 0; qi < profile.N; qi++ {
			for _, p := range ix.LocateInt(profile.Vec(qi), opts.NProbe) {
				freq[p.ID]++
			}
		}
	} else {
		for c, s := range sizes {
			freq[c] = float64(s)
		}
	}

	// Reserve per-DPU MRAM for index-wide data before the layout divides the
	// remainder: integer codebooks plus the full centroid table (for
	// simplicity every DPU keeps all centroids, as the directory is small).
	codebookBytes := ix.M * ix.CB * (ix.Dim / ix.M) * 2
	centroidBytes := ix.NList * ix.Dim
	fixed := codebookBytes + centroidBytes
	dataBudget := cfg.MRAMBytes - fixed - opts.CopyFootprint
	if dataBudget <= 0 {
		return nil, fmt.Errorf("core: MRAM too small: %d fixed bytes vs %d bank", fixed, cfg.MRAMBytes)
	}

	lcfg := layout.Config{
		NumDPUs:        opts.NumDPUs,
		BytesPerPoint:  e.codeBytes + 4,
		MRAMDataBudget: dataBudget,
		CopyFootprint:  opts.CopyFootprint,
		WRAMMetaBudget: cfg.WRAMBytes / 4,
		HeatWeight:     0.5,
		SplitThreshold: opts.SplitThreshold,
		EnableSplit:    opts.EnableSplit,
		EnableDup:      opts.EnableDup,
		EnableBalance:  opts.EnableBalance,
	}
	pl, err := layout.Optimize(sizes, freq, lcfg)
	if err != nil {
		return nil, fmt.Errorf("core: layout: %w", err)
	}
	if err := pl.Validate(sizes); err != nil {
		return nil, fmt.Errorf("core: layout invariants: %w", err)
	}
	e.pl = pl

	// Account MRAM per DPU.
	e.metaPerDPU = make([]int, opts.NumDPUs)
	for _, d := range sys.DPUs {
		if err := d.AllocMRAM(fixed); err != nil {
			return nil, fmt.Errorf("core: fixed MRAM: %w", err)
		}
	}
	for _, s := range pl.Slices {
		bytes := s.Count * (e.codeBytes + 4)
		for _, d := range s.DPUs {
			if err := sys.DPUs[d].AllocMRAM(bytes); err != nil {
				return nil, fmt.Errorf("core: slice data: %w", err)
			}
			e.metaPerDPU[d]++
		}
	}

	// Account WRAM per DPU: staging buffers are always needed; with the
	// buffer optimization also the SQT, slice metadata, and (if it fits)
	// the distance LUT.
	e.lutBytes = ix.M * ix.CB * 4
	const stagingBytes = 4096
	const sqtBytes = 511 * 4
	e.lutInWRAM = false
	if opts.UseWRAM {
		e.lutInWRAM = true
		for i, d := range sys.DPUs {
			if err := d.AllocWRAM(stagingBytes + sqtBytes + e.metaPerDPU[i]*16); err != nil {
				return nil, fmt.Errorf("core: WRAM: %w", err)
			}
			if d.WRAMFree() < e.lutBytes {
				e.lutInWRAM = false
			}
		}
		if e.lutInWRAM {
			for _, d := range sys.DPUs {
				if err := d.AllocWRAM(e.lutBytes); err != nil {
					return nil, fmt.Errorf("core: WRAM LUT: %w", err)
				}
			}
		}
	} else {
		for _, d := range sys.DPUs {
			if err := d.AllocWRAM(stagingBytes); err != nil {
				return nil, fmt.Errorf("core: WRAM staging: %w", err)
			}
		}
	}
	return e, nil
}

func codeBytesFor(cb, m int) int {
	if cb <= 256 {
		return m
	}
	return 2 * m
}

// SQT16HitRate reports the aggregate hot-window hit rate of the tiered
// 16-bit squaring tables, or 1 when the mode is off (the paper's claim:
// residual magnitudes concentrate, so the WRAM tier absorbs most lookups).
func (e *Engine) SQT16HitRate() float64 {
	if e.sqt16 == nil {
		return 1
	}
	var hot, cold uint64
	for _, t := range e.sqt16 {
		s := t.Stats()
		hot += s.Hot
		cold += s.Cold
	}
	if hot+cold == 0 {
		return 1
	}
	return float64(hot) / float64(hot+cold)
}

// Placement exposes the optimized layout (for inspection and tests).
func (e *Engine) Placement() *layout.Placement { return e.pl }

// System exposes the simulated PIM system.
func (e *Engine) System() *upmem.System { return e.sys }

// Index returns the underlying IVF-PQ index.
func (e *Engine) Index() *ivf.Index { return e.ix }

// taskCostCycles predicts DC+TS cycles for scanning n points — the
// scheduler's heat estimate (Equations 8-11 restricted to the dominant
// terms).
func (e *Engine) taskCostCycles(n int) float64 {
	m := float64(e.ix.M)
	perPoint := 2*m + (m - 1) + 1 + float64(e.opts.LockCycles)/8
	return float64(n) * perPoint
}

// hostCLSeconds models the host-side cluster locating cost for nq queries
// (Equations 1-3 with the CPU's #PE, frequency and vector width). With the
// tree locator, only branch + beam x children centroids are scanned.
func (e *Engine) hostCLSeconds(nq int) float64 {
	h := e.opts.Host
	distOps := float64(3*e.ix.Dim - 1)
	sortOps := float64(log2ceil(e.opts.NProbe) + 1)
	scanned := float64(e.ix.NList)
	if e.tree != nil {
		scanned = float64(e.tree.CentroidsScanned(e.opts.TreeCLBeam))
	}
	ops := float64(nq) * scanned * (distOps + sortOps)
	lanes := float64(h.Threads * h.VectorWidth)
	return ops / (lanes * h.FreqGHz * 1e9)
}

// locate runs the configured CL variant for one query.
func (e *Engine) locate(query []uint8) []topk.Item[uint32] {
	if e.tree != nil {
		return e.tree.Locate(e.ix, query, e.opts.NProbe, e.opts.TreeCLBeam)
	}
	return e.ix.LocateInt(query, e.opts.NProbe)
}

// hostMergeSeconds models merging per-DPU partial top-k lists on the host.
func (e *Engine) hostMergeSeconds(items int) float64 {
	h := e.opts.Host
	ops := float64(items) * float64(log2ceil(e.opts.K)+1)
	return ops / (float64(h.Threads) * h.FreqGHz * 1e9)
}

func log2ceil(x int) int {
	if x <= 1 {
		return 1
	}
	return bits.Len(uint(x - 1))
}

// SearchBatch searches every query and returns neighbors plus metrics.
func (e *Engine) SearchBatch(queries dataset.U8Set) (*Result, error) {
	if queries.D != e.ix.Dim {
		return nil, fmt.Errorf("core: query dim %d != index dim %d", queries.D, e.ix.Dim)
	}
	res := &Result{
		IDs:   make([][]int32, queries.N),
		Items: make([][]topk.Item[uint32], queries.N),
	}
	m := &res.Metrics
	m.Queries = queries.N

	partials := make([][]topk.Item[uint32], queries.N)

	var carried []sched.Task
	scfg := sched.Config{
		Cost:      func(points int) float64 { return e.taskCostCycles(points) },
		Th3:       e.opts.Th3,
		Rebalance: e.opts.Rebalance,
	}

	for lo := 0; lo < queries.N || len(carried) > 0; lo += e.opts.BatchSize {
		hi := lo + e.opts.BatchSize
		if hi > queries.N {
			hi = queries.N
		}
		if hi < lo {
			hi = lo // pure drain iteration past the last query batch
		}
		var reqs []sched.Request
		if lo < queries.N {
			for qi := lo; qi < hi; qi++ {
				for _, p := range e.locate(queries.Vec(qi)) {
					reqs = append(reqs, sched.Request{Query: int32(qi), Cluster: p.ID})
				}
			}
		}
		hostSec := e.hostCLSeconds(hi - lo)

		lastBatch := hi >= queries.N
		var pimPlusXfer float64
		for {
			batch := sched.Greedy(reqs, carried, e.pl, scfg)
			reqs = nil
			carried = batch.Postponed
			m.Postponed += len(batch.Postponed)

			launchSec, mergeItems := e.runLaunch(batch, queries, partials, m)
			pimPlusXfer += launchSec
			hostSec += e.hostMergeSeconds(mergeItems)

			if !lastBatch || len(carried) == 0 {
				break
			}
			// Final batch: drain postponed tasks with extra launches, but
			// stop postponing once only carried work remains.
			if len(carried) > 0 && scfg.Th3 > 0 {
				scfg.Th3 = scfg.Th3 * 2
			}
		}
		m.HostSeconds += hostSec
		m.SimSeconds += math.Max(hostSec, pimPlusXfer)
		m.Batches++
		if hi == lo && len(carried) == 0 {
			break
		}
	}

	// Final per-query merge (already counted in host merge time above).
	for qi := range partials {
		items := partials[qi]
		topk.SortItems(items)
		if len(items) > e.opts.K {
			items = items[:e.opts.K]
		}
		res.Items[qi] = items
		ids := make([]int32, len(items))
		for j, it := range items {
			ids[j] = it.ID
		}
		res.IDs[qi] = ids
	}
	if m.SimSeconds > 0 {
		m.QPS = float64(queries.N) / m.SimSeconds
	}
	return res, nil
}

// runLaunch executes one synchronous DPU launch and returns its wall time
// max(PIM, transfer) and the number of partial items merged on the host.
func (e *Engine) runLaunch(batch *sched.Batch, queries dataset.U8Set, partials [][]topk.Item[uint32], m *Metrics) (float64, int) {
	e.sys.ResetCounters()
	e.sys.Launch()

	// Host -> DPU: each (query, DPU) pair ships the query vector once.
	type qd struct {
		q int32
		d int
	}
	shipped := map[qd]bool{}
	for d, tasks := range batch.PerDPU {
		for _, t := range tasks {
			shipped[qd{t.Query, d}] = true
		}
	}
	e.sys.TransferToDPUs(uint64(len(shipped) * queries.D))

	// Run every DPU's kernel in parallel (simulation-level parallelism).
	results := make([]map[int32]*topk.Heap[uint32], e.opts.NumDPUs)
	stats := make([]dpuRunStats, e.opts.NumDPUs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.opts.Workers)
	for d := 0; d < e.opts.NumDPUs; d++ {
		if len(batch.PerDPU[d]) == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(d int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[d], stats[d] = e.runDPU(d, batch.PerDPU[d], queries)
		}(d)
	}
	wg.Wait()

	mergeItems := 0
	var fromDev uint64
	for d := 0; d < e.opts.NumDPUs; d++ {
		if results[d] == nil {
			continue
		}
		// Deterministic merge order.
		qids := make([]int32, 0, len(results[d]))
		for q := range results[d] {
			qids = append(qids, q)
		}
		sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
		for _, q := range qids {
			items := results[d][q].Sorted()
			partials[q] = append(partials[q], items...)
			mergeItems += len(items)
			fromDev += uint64(len(items) * 8)
		}
		m.LockAcquired += stats[d].lockAcquired
		m.LockSkipped += stats[d].lockSkipped
		m.LUTBuilds += stats[d].lutBuilds
		m.LUTReuses += stats[d].lutReuses
		m.PointsScanned += stats[d].points
	}
	e.sys.TransferFromDPUs(fromDev)

	pimSec := e.sys.Cfg.Seconds(e.sys.MaxDPUCycles())
	xferSec := e.sys.TransferSeconds()
	for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
		m.PhaseSeconds[p] += e.sys.Cfg.Seconds(e.sys.PhaseCyclesMax(p))
	}
	m.Launches++
	m.XferSeconds += xferSec
	m.PIMSeconds += pimSec
	m.ImbalanceSum += e.sys.Imbalance()
	return math.Max(pimSec, xferSec), mergeItems
}

type dpuRunStats struct {
	lockAcquired, lockSkipped uint64
	lutBuilds, lutReuses      uint64
	points                    uint64
}

// runDPU executes the RC/LC/DC/TS kernels for one DPU's task list,
// functionally and with cost charging. Tasks are grouped by (query, cluster)
// so the residual and LUT are built once per group and reused across slices
// of the same cluster on this DPU (the co-location payoff).
func (e *Engine) runDPU(d int, tasks []sched.Task, queries dataset.U8Set) (map[int32]*topk.Heap[uint32], dpuRunStats) {
	dpu := e.sys.DPUs[d]
	ix := e.ix
	var st dpuRunStats

	sort.Slice(tasks, func(i, j int) bool {
		a, b := tasks[i], tasks[j]
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Cluster != b.Cluster {
			return a.Cluster < b.Cluster
		}
		return pSliceStart(e, a.Slice) < pSliceStart(e, b.Slice)
	})

	heaps := make(map[int32]*topk.Heap[uint32])
	residual := make([]int16, ix.Dim)
	lut := make([]uint32, ix.M*ix.CB)

	var curQ int32 = -1
	var curC int32 = -1
	for _, t := range tasks {
		h := heaps[t.Query]
		if h == nil {
			h = topk.NewHeap[uint32](e.opts.K)
			heaps[t.Query] = h
		}
		if t.Query != curQ || t.Cluster != curC {
			curQ, curC = t.Query, t.Cluster
			e.kernelRC(dpu, queries.Vec(int(t.Query)), int(t.Cluster), residual)
			e.kernelLC(dpu, residual, lut)
			st.lutBuilds++
		} else {
			st.lutReuses++
		}
		s := &e.pl.Slices[t.Slice]
		ids := ix.Lists[t.Cluster][s.Start : s.Start+s.Count]
		codes := ix.Codes[t.Cluster][s.Start*ix.M : (s.Start+s.Count)*ix.M]
		e.kernelDCTS(dpu, lut, ids, codes, h, &st)
	}
	return heaps, st
}

func pSliceStart(e *Engine, slice int) int { return e.pl.Slices[slice].Start }

// kernelRC computes the int16 residual between query and centroid (paper
// Equations 4-5): D subtractions plus centroid DMA from MRAM.
func (e *Engine) kernelRC(dpu *upmem.DPU, query []uint8, cluster int, residual []int16) {
	ix := e.ix
	vecmath.SubI16(residual, query, ix.CentroidU8(cluster))

	n := uint64(ix.Dim)
	dpu.Charge(upmem.PhaseRC, upmem.OpLoad, 2*n)
	dpu.Charge(upmem.PhaseRC, upmem.OpAdd, n)
	dpu.Charge(upmem.PhaseRC, upmem.OpStore, n)
	dpu.DMA(upmem.PhaseRC, uint64(ix.Dim)) // centroid bytes (uint8)
}

// kernelLC builds the distance LUT (Equations 6-7). With UseSQT each square
// is |a-b| + one table load; without it each square is a 32-cycle multiply.
// The codebook streams from MRAM; LUT stores hit WRAM when buffered,
// otherwise they become slow-path MRAM traffic.
func (e *Engine) kernelLC(dpu *upmem.DPU, residual []int16, lut []uint32) {
	ix := e.ix
	if e.opts.UseSQT {
		ix.IntCB.LUTInt(residual, lut, ix.SQT)
	} else {
		ix.IntCB.LUTIntMul(residual, lut)
	}

	elems := uint64(ix.CB * ix.Dim) // M * CB * dsub
	entries := uint64(ix.M * ix.CB)
	dpu.Charge(upmem.PhaseLC, upmem.OpAdd, elems)  // subtraction per element
	dpu.Charge(upmem.PhaseLC, upmem.OpAdd, elems)  // accumulate per element
	dpu.Charge(upmem.PhaseLC, upmem.OpLoad, elems) // codebook element loads
	switch {
	case e.opts.UseSQT && e.sqt16 != nil:
		// Tiered 16-bit-mode table: replay the actual |diff| stream against
		// the hot window; cold lookups pay an MRAM access each.
		tab := e.sqt16[dpu.ID]
		var cold uint64
		for m := 0; m < ix.M; m++ {
			sub := residual[m*(ix.Dim/ix.M) : (m+1)*(ix.Dim/ix.M)]
			for c := 0; c < ix.CB; c++ {
				entry := ix.IntCB.Entry(m, c)
				for j, r := range sub {
					if _, hot := tab.Square(int32(r) - int32(entry[j])); !hot {
						cold++
					}
				}
			}
		}
		dpu.Charge(upmem.PhaseLC, upmem.OpAdd, elems)  // abs
		dpu.Charge(upmem.PhaseLC, upmem.OpLoad, elems) // table lookup
		dpu.ChargeCycles(upmem.PhaseLC, elems*e.opts.SQTAccessCycles)
		dpu.RandomAccess(upmem.PhaseLC, cold) // cold tier lives in MRAM
		if !e.opts.UseWRAM {
			dpu.RandomAccess(upmem.PhaseLC, elems-cold)
		}
	case e.opts.UseSQT:
		dpu.Charge(upmem.PhaseLC, upmem.OpAdd, elems)  // abs
		dpu.Charge(upmem.PhaseLC, upmem.OpLoad, elems) // SQT lookup
		dpu.ChargeCycles(upmem.PhaseLC, elems*e.opts.SQTAccessCycles)
		if !e.opts.UseWRAM {
			dpu.RandomAccess(upmem.PhaseLC, elems) // SQT lives in MRAM without buffering
		}
	default:
		dpu.Charge(upmem.PhaseLC, upmem.OpMul, elems)
	}
	dpu.Charge(upmem.PhaseLC, upmem.OpStore, entries) // LUT stores
	dpu.DMA(upmem.PhaseLC, 2*elems)                   // codebook stream (int16)
	if !e.lutInWRAM {
		dpu.RandomAccess(upmem.PhaseLC, entries) // LUT spills to MRAM
	}
}

// kernelDCTS scans one slice: per point M LUT gathers and M-1 adds (DC,
// Equations 8-9), then the top-k update (TS, Equations 10-11) with the
// shared-heap lock and optional lock pruning.
func (e *Engine) kernelDCTS(dpu *upmem.DPU, lut []uint32, ids []int32, codes []uint16, h *topk.Heap[uint32], st *dpuRunStats) {
	ix := e.ix
	n := len(ids)
	m := ix.M
	logK := uint64(log2ceil(e.opts.K))

	for i := 0; i < n; i++ {
		dist := vecmath.ADCU32(lut, codes[i*m:(i+1)*m], ix.CB)
		accept := h.WouldAccept(ids[i], dist)
		switch {
		case e.opts.UseBitonicTS:
			// Lock-free network: no shared queue, costs charged in bulk
			// below.
		case e.opts.UseLockPruning:
			if accept {
				st.lockAcquired++
				dpu.ChargeCycles(upmem.PhaseTS, e.opts.LockCycles)
			} else {
				st.lockSkipped++
			}
		default:
			st.lockAcquired++
			dpu.ChargeCycles(upmem.PhaseTS, e.opts.LockCycles)
		}
		if accept {
			h.Push(ids[i], dist)
			if !e.opts.UseBitonicTS {
				dpu.Charge(upmem.PhaseTS, upmem.OpCmp, logK)
				dpu.Charge(upmem.PhaseTS, upmem.OpStore, logK)
			}
		}
	}
	st.points += uint64(n)
	if e.opts.UseBitonicTS && n > 1 {
		// A bitonic network over the slice's candidates: size/2 compare-
		// exchanges per column, log(size)*(log(size)+1)/2 columns.
		size := uint64(1) << uint(log2ceil(n))
		logSize := uint64(log2ceil(n))
		swaps := size / 2 * logSize * (logSize + 1) / 2
		dpu.Charge(upmem.PhaseTS, upmem.OpCmp, swaps)
		dpu.Charge(upmem.PhaseTS, upmem.OpStore, swaps/2)
	}

	un := uint64(n)
	um := uint64(m)
	dpu.Charge(upmem.PhaseDC, upmem.OpLoad, un*um) // code element loads
	dpu.Charge(upmem.PhaseDC, upmem.OpLoad, un*um) // LUT gathers
	dpu.Charge(upmem.PhaseDC, upmem.OpAdd, un*(um-1))
	dpu.Charge(upmem.PhaseTS, upmem.OpCmp, un)       // bound comparison per point
	dpu.DMA(upmem.PhaseDC, un*uint64(e.codeBytes+4)) // codes + ids stream
	if !e.opts.UseWRAM || !e.lutInWRAM {
		dpu.RandomAccess(upmem.PhaseDC, un*um) // LUT gathers hit MRAM
	}
}
