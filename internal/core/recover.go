// Crash recovery at the engine level: Recover rebuilds a serving engine
// from a durable.Store — checkpoint snapshot plus WAL tail — so that a
// process killed at any instant restarts with the exact pre-crash
// logical corpus: bit-identical search results and memory stats over
// every acknowledged (WAL-synced) mutation.
//
// Why bit-identity holds: checkpoints are only written where the base
// lists equal a deploy-time state (engine creation, Compact, and the
// post-replay rotation below), so re-running New over the snapshot's
// base lists reproduces the original placement, heat profile, and
// static decomposition terms exactly (layout.Optimize is deterministic
// in its inputs). The snapshot's overlay section restores the append
// segments and tombstones byte-for-byte, the per-point overlay terms
// (asums) are order-independent per-point sums recomputed from the
// restored codes, and WAL replay re-routes and re-encodes the logged
// raw vectors with the frozen quantizers — the same arithmetic the
// original Insert ran.
package core

import (
	"bytes"
	"fmt"
	"io"

	"drimann/internal/dataset"
	"drimann/internal/durable"
	"drimann/internal/ivf"
)

// Snapshot writes the engine's durable state — the index with its live
// mutation overlay — in the v2 checkpoint format. It must not run
// concurrently with mutations or searches; the serving layer calls it
// at the same batch boundary that serializes mutations.
func (e *Engine) Snapshot(w io.Writer) error { return e.ix.Save(w) }

// CreateStore initializes a durable store for this engine in opt.Dir,
// writing the initial checkpoint and opening a WAL for appends.
func (e *Engine) CreateStore(opt durable.Options) (*durable.Store, error) {
	return durable.Create(opt, e.Snapshot)
}

// Recover rebuilds an engine from the durable state in opt.Dir: it
// loads the checkpoint snapshot, deploys over its base lists exactly as
// New did originally (profile and opts must match the original
// deployment for bit-identity), re-adopts the snapshot's mutation
// overlay, replays the WAL tail in order, and rotates to a fresh
// checkpoint — discarding any torn tail — so the returned store is
// ready for appends. Unacknowledged mutations (never WAL-synced) may be
// lost; acknowledged ones never are.
func Recover(opt durable.Options, profile dataset.U8Set, opts Options) (*Engine, *durable.Store, error) {
	st, err := durable.Open(opt)
	if err != nil {
		return nil, nil, err
	}
	img, err := st.SnapshotBytes()
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover snapshot: %w", err)
	}
	ix, err := ivf.Load(bytes.NewReader(img))
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover snapshot: %w", err)
	}
	overlay := ix.DetachOverlay()
	eng, err := New(ix, profile, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover deploy: %w", err)
	}
	if err := eng.AdoptOverlay(overlay); err != nil {
		return nil, nil, fmt.Errorf("core: recover overlay: %w", err)
	}
	recs, err := st.WALRecords()
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover WAL: %w", err)
	}
	if err := eng.ReplayWAL(recs); err != nil {
		return nil, nil, err
	}
	if err := st.Checkpoint(eng.Snapshot); err != nil {
		return nil, nil, fmt.Errorf("core: recover checkpoint: %w", err)
	}
	return eng, st, nil
}

// AdoptOverlay restores a mutation overlay detached from a checkpoint
// snapshot (ivf.Index.DetachOverlay) onto a freshly deployed engine:
// the index overlay itself, the per-point decomposition terms of every
// append segment, and placement reachability for clusters whose base
// list is empty. Sums are per-point independent, so recomputing them
// from the restored codes yields the values the original engine built
// incrementally.
func (e *Engine) AdoptOverlay(log []byte) error {
	if err := e.ix.DecodeAppendLog(log); err != nil {
		return err
	}
	for c := 0; c < e.ix.NList; c++ {
		n := e.ix.AppendLen(c)
		if n == 0 {
			continue
		}
		if e.algebraic {
			sums := make([]int32, n)
			e.lut.ClusterADCSums(c, e.ix.AppendCodes(c), sums)
			e.asums[c] = sums
		}
		e.ensureReachable(int32(c))
	}
	return nil
}

// ReplayWAL applies decoded WAL records in order through the normal
// mutation path. Replay is deterministic: inserts re-route and
// re-encode the logged raw vectors with the frozen quantizers.
func (e *Engine) ReplayWAL(recs [][]byte) error {
	for i, rec := range recs {
		m, err := durable.DecodeMutation(rec)
		if err != nil {
			return fmt.Errorf("core: WAL record %d: %w", i, err)
		}
		switch m.Op {
		case durable.OpInsert:
			vecs := dataset.U8Set{N: len(m.IDs), D: m.Dim, Data: m.Vecs}
			if err := e.Insert(vecs, m.IDs); err != nil {
				return fmt.Errorf("core: WAL record %d replay: %w", i, err)
			}
		case durable.OpDelete:
			if err := e.Delete(m.IDs); err != nil {
				return fmt.Errorf("core: WAL record %d replay: %w", i, err)
			}
		default:
			return fmt.Errorf("core: WAL record %d: unknown op %d", i, m.Op)
		}
	}
	return nil
}
