// Locator is the host-side cluster-locating (CL) stage factored out of the
// Engine so it can run at a sharded deployment's front door: the cluster
// layer locates once per batch over the full shared centroid directory,
// partitions the probe lists per shard, and hands each shard engine a
// pre-resolved ProbeSet (SearchBatchProbed) instead of letting every shard
// redundantly rerun CL. The engine itself delegates its own CL stage to an
// embedded Locator, so both paths scan the same directory with the same
// variant (flat scan or the TreeCL descent) and produce identical probes.

package core

import (
	"fmt"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/topk"
	"drimann/internal/upmem"
)

// Locator runs the configured CL variant over one index's centroid
// directory and models its host cost. Construct with NewLocator (or take an
// engine's via Engine.Locator). LocateBatch is stateless per call, so one
// Locator is safe for concurrent use by independent batches.
type Locator struct {
	ix      *ivf.Index
	tree    *ivf.TreeCL // non-nil when TreeCLBranch > 0
	nprobe  int
	beam    int
	workers int
	host    upmem.Platform
}

// NewLocator builds the CL stage an engine with the same Options would use:
// the flat centroid scan, or a two-level tree locator when TreeCLBranch > 0
// (built with the engine's deterministic seed, so probes are identical).
func NewLocator(ix *ivf.Index, opts Options) (*Locator, error) {
	opts.defaults()
	l := &Locator{
		ix:      ix,
		nprobe:  opts.NProbe,
		beam:    opts.TreeCLBeam,
		workers: opts.Workers,
		host:    opts.Host,
	}
	if opts.TreeCLBranch > 0 {
		tree, err := ix.BuildTreeCL(opts.TreeCLBranch, 1)
		if err != nil {
			return nil, fmt.Errorf("core: tree CL: %w", err)
		}
		l.tree = tree
	}
	return l, nil
}

// NProbe reports the probes located per query.
func (l *Locator) NProbe() int { return l.nprobe }

// LocateBatch computes probes for queries[lo:hi) across the locator's
// workers, writing into the flat out/counts layout of ivf.Index.LocateBatch
// (out holds (hi-lo)*NProbe slots; counts[i] the probe count of query lo+i,
// in ascending distance order).
func (l *Locator) LocateBatch(queries dataset.U8Set, lo, hi int, out []topk.Item[uint32], counts []int) {
	if l.tree != nil {
		l.tree.LocateBatch(l.ix, queries, lo, hi, l.nprobe, l.beam, l.workers, out, counts)
		return
	}
	l.ix.LocateBatch(queries, lo, hi, l.nprobe, l.workers, out, counts)
}

// CLSeconds models the host-side cluster-locating cost for nq queries
// (Equations 1-3 with the CPU's #PE, frequency and vector width) — exactly
// the per-batch charge Engine.SearchBatch applies. With the tree locator,
// only branch + beam x children centroids are scanned. Linear in nq, so a
// front door charging CLSeconds(N) once matches an engine charging it
// batch by batch.
func (l *Locator) CLSeconds(nq int) float64 {
	distOps := float64(3*l.ix.Dim - 1)
	sortOps := float64(log2ceil(l.nprobe) + 1)
	scanned := float64(l.ix.NList)
	if l.tree != nil {
		scanned = float64(l.tree.CentroidsScanned(l.beam))
	}
	ops := float64(nq) * scanned * (distOps + sortOps)
	lanes := float64(l.host.Threads * l.host.VectorWidth)
	return ops / (lanes * l.host.FreqGHz * 1e9)
}

// Probes locates every query of the set and packs the results into a
// ProbeSet — the convenience path for callers that front-door a whole batch
// without per-shard partitioning (tests, single-tenant front doors).
func (l *Locator) Probes(queries dataset.U8Set) ProbeSet {
	const chunk = 256
	out := make([]topk.Item[uint32], chunk*l.nprobe)
	counts := make([]int, chunk)
	ps := ProbeSet{
		Offsets:  make([]int32, 1, queries.N+1),
		Clusters: make([]int32, 0, queries.N*l.nprobe),
	}
	for lo := 0; lo < queries.N; lo += chunk {
		hi := lo + chunk
		if hi > queries.N {
			hi = queries.N
		}
		l.LocateBatch(queries, lo, hi, out, counts)
		for qi := lo; qi < hi; qi++ {
			base := (qi - lo) * l.nprobe
			for _, p := range out[base : base+counts[qi-lo]] {
				ps.Clusters = append(ps.Clusters, p.ID)
			}
			ps.Offsets = append(ps.Offsets, int32(len(ps.Clusters)))
		}
	}
	return ps
}
