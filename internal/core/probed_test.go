package core

import (
	"reflect"
	"testing"

	"drimann/internal/dataset"
)

// TestSearchBatchProbedEquivalence pins the refactor's core contract: an
// engine handed its own Locator's probes via SearchBatchProbed (with CL
// charged) must be bit-identical to plain SearchBatch — IDs, Items and
// exactly-equal Metrics — with the flat scan and the TreeCL descent alike.
func TestSearchBatchProbedEquivalence(t *testing.T) {
	f := getFixture(t)
	for _, branch := range []int{0, 8} {
		o := testOptions()
		o.TreeCLBranch = branch
		e, err := New(f.ix, dataset.U8Set{}, o)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := e.SearchBatch(f.s.Queries)
		if err != nil {
			t.Fatal(err)
		}
		ps := e.Locator().Probes(f.s.Queries)
		if err := ps.Validate(f.s.Queries.N, f.ix.NList); err != nil {
			t.Fatalf("branch=%d: locator probes invalid: %v", branch, err)
		}
		probed, err := e.SearchBatchProbed(f.s.Queries, ps, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.IDs, probed.IDs) {
			t.Fatalf("branch=%d: IDs differ", branch)
		}
		if !reflect.DeepEqual(plain.Items, probed.Items) {
			t.Fatalf("branch=%d: Items differ", branch)
		}
		if !reflect.DeepEqual(plain.Metrics, probed.Metrics) {
			t.Fatalf("branch=%d: metrics differ:\nplain:  %+v\nprobed: %+v",
				branch, plain.Metrics, probed.Metrics)
		}
	}
}

// TestSearchBatchProbedNoCLCharge checks the front-door attribution mode:
// with chargeCL=false the per-shard call carries no CL cost, results stay
// identical, and SimSeconds cannot exceed the charged run's.
func TestSearchBatchProbedNoCLCharge(t *testing.T) {
	f := getFixture(t)
	e, err := New(f.ix, dataset.U8Set{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	ps := e.Locator().Probes(f.s.Queries)
	free, err := e.SearchBatchProbed(f.s.Queries, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.IDs, free.IDs) || !reflect.DeepEqual(plain.Items, free.Items) {
		t.Fatal("results differ with CL charging off")
	}
	if free.Metrics.HostSeconds >= plain.Metrics.HostSeconds {
		t.Fatalf("uncharged host time %v not below charged %v",
			free.Metrics.HostSeconds, plain.Metrics.HostSeconds)
	}
	if free.Metrics.SimSeconds > plain.Metrics.SimSeconds {
		t.Fatalf("uncharged sim time %v exceeds charged %v",
			free.Metrics.SimSeconds, plain.Metrics.SimSeconds)
	}
	if free.Metrics.PIMSeconds != plain.Metrics.PIMSeconds {
		t.Fatalf("PIM time changed: %v vs %v", free.Metrics.PIMSeconds, plain.Metrics.PIMSeconds)
	}
}

func TestProbeSetValidate(t *testing.T) {
	cases := []struct {
		name string
		ps   ProbeSet
		nq   int
		ok   bool
	}{
		{"empty", ProbeSet{Offsets: []int32{0}}, 0, true},
		{"good", ProbeSet{Offsets: []int32{0, 2, 2, 3}, Clusters: []int32{1, 0, 4}}, 3, true},
		{"missing sentinel", ProbeSet{Offsets: []int32{0, 2}, Clusters: []int32{1, 0}}, 2, false},
		{"bad start", ProbeSet{Offsets: []int32{1, 2}, Clusters: []int32{0, 0}}, 1, false},
		{"bad end", ProbeSet{Offsets: []int32{0, 1}, Clusters: []int32{0, 0}}, 1, false},
		{"non-monotone", ProbeSet{Offsets: []int32{0, 2, 1, 3}, Clusters: []int32{0, 0, 0}}, 3, false},
		{"cluster out of range", ProbeSet{Offsets: []int32{0, 1}, Clusters: []int32{5}}, 1, false},
		{"cluster negative", ProbeSet{Offsets: []int32{0, 1}, Clusters: []int32{-1}}, 1, false},
	}
	for _, c := range cases {
		err := c.ps.Validate(c.nq, 5)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

// TestNewReplicaShares verifies the replica memory contract: read-only
// deployment state is pointer-shared with the source, mutable state is
// private, and results plus metrics stay bit-identical.
func TestNewReplicaShares(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.SQT16 = true
	src, err := New(f.ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ix != src.ix || rep.pl != src.pl || rep.loc != src.loc || rep.lut != src.lut {
		t.Fatal("read-only state not shared")
	}
	if len(src.bsum) > 0 && &rep.bsum[0] != &src.bsum[0] {
		t.Fatal("bsum not shared")
	}
	if rep.sys == src.sys {
		t.Fatal("simulated system must be private")
	}
	if len(rep.sqt16) == 0 || rep.sqt16[0] == src.sqt16[0] {
		t.Fatal("SQT16 tables must be private")
	}
	a, err := src.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.IDs, b.IDs) || !reflect.DeepEqual(a.Items, b.Items) {
		t.Fatal("replica results differ from source")
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("replica metrics differ:\nsrc: %+v\nrep: %+v", a.Metrics, b.Metrics)
	}

	mf := src.MemoryFootprint()
	if mf.SharedBytes <= 0 || mf.PerReplicaBytes <= 0 {
		t.Fatalf("degenerate footprint %+v", mf)
	}
}
