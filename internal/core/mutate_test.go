package core

import (
	"math/rand"
	"slices"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

// mutFixture builds an index over the head of a corpus and keeps the tail
// as an insert pool (ids are corpus positions, so s.Base.Vec(id) is any
// id's vector).
func mutFixture(t testing.TB) (*ivf.Index, *dataset.Synth, int) {
	t.Helper()
	s := dataset.Generate(dataset.SynthConfig{
		N: 5000, D: 16, NumQueries: 48, NumClusters: 32, Seed: 21, Noise: 10,
	})
	base := 4200
	ix, err := ivf.Build(dataset.U8Set{N: base, D: s.Base.D, Data: s.Base.Data[:base*s.Base.D]},
		ivf.BuildConfig{NList: 48, PQ: pq.Config{M: 8, CB: 64}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ix, s, base
}

// requireSameResults fails unless two engine results are bit-identical in
// both IDs and scored Items for every query.
func requireSameResults(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("%s: %d queries vs %d", label, len(got.IDs), len(want.IDs))
	}
	for qi := range want.IDs {
		if !slices.Equal(got.IDs[qi], want.IDs[qi]) {
			t.Fatalf("%s: query %d IDs diverge:\n got %v\nwant %v", label, qi, got.IDs[qi], want.IDs[qi])
		}
		if !slices.Equal(got.Items[qi], want.Items[qi]) {
			t.Fatalf("%s: query %d Items diverge", label, qi)
		}
	}
}

// TestEngineMutateMatchesReference interleaves inserts, deletes and
// compactions on a live engine, and after every burst checks both live
// promises: between compactions the DPU path matches the (mutation-aware)
// single-threaded integer reference for every query, and after the final
// Compact the engine is bit-identical to a freshly deployed engine over the
// rebuilt logical corpus. Runs on the batched-tally path and the per-op
// reference accountant (they share the mutation scan hook but not its
// implementation).
func TestEngineMutateMatchesReference(t *testing.T) {
	for _, perOp := range []bool{false, true} {
		name := "tally"
		if perOp {
			name = "perop"
		}
		t.Run(name, func(t *testing.T) {
			ix, s, base := mutFixture(t)
			opts := testOptions()
			opts.PerOpAccounting = perOp
			e, err := New(ix, s.Queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			live := make([]int32, base)
			for i := range live {
				live[i] = int32(i)
			}
			pool := make([]int32, s.Base.N-base)
			for i := range pool {
				pool[i] = int32(base + i)
			}
			checkReference := func() {
				res, err := e.SearchBatch(s.Queries)
				if err != nil {
					t.Fatal(err)
				}
				for qi := 0; qi < s.Queries.N; qi++ {
					want := ix.SearchInt(s.Queries.Vec(qi), opts.NProbe, opts.K)
					if !slices.Equal(res.Items[qi], want) {
						t.Fatalf("query %d diverges from int reference under mutation", qi)
					}
				}
			}
			for burst := 0; burst < 6; burst++ {
				for op := 0; op < 60; op++ {
					switch r := rng.Intn(10); {
					case r < 5 && len(pool) > 0:
						i := rng.Intn(len(pool))
						id := pool[i]
						pool = append(pool[:i], pool[i+1:]...)
						one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(int(id))}
						if err := e.Insert(one, []int32{id}); err != nil {
							t.Fatal(err)
						}
						live = append(live, id)
					case r < 9 && len(live) > 0:
						i := rng.Intn(len(live))
						id := live[i]
						live = append(live[:i], live[i+1:]...)
						if err := e.Delete([]int32{id}); err != nil {
							t.Fatal(err)
						}
						pool = append(pool, id)
					case r == 9:
						if err := e.Compact(); err != nil {
							t.Fatal(err)
						}
					}
				}
				checkReference()
			}
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			// Fresh deployment over the same logical corpus: rebuild the index
			// with frozen quantizers and deploy it with the same profile and
			// options. Results must match bit for bit.
			ids := ix.LiveIDs()
			vecs := dataset.U8Set{N: len(ids), D: s.Base.D}
			for _, id := range ids {
				vecs.Data = append(vecs.Data, s.Base.Vec(int(id))...)
			}
			fresh, err := ivf.RebuildFrozen(ix, vecs, ids)
			if err != nil {
				t.Fatal(err)
			}
			fe, err := New(fresh, s.Queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.SearchBatch(s.Queries)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fe.SearchBatch(s.Queries)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, got, want, "post-compact vs fresh engine")
		})
	}
}

// TestEngineEmptyClusterRoundTrip empties a whole cluster (delete + compact
// leaves it with no placement slices), then inserts a point that assigns to
// it: ensureReachable must inject a virtual slice so the append segment is
// scannable, and the point must be findable by querying its own vector.
func TestEngineEmptyClusterRoundTrip(t *testing.T) {
	ix, s, _ := mutFixture(t)
	opts := testOptions()
	e, err := New(ix, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Empty the smallest non-empty cluster.
	victim := -1
	for c, list := range ix.Lists {
		if len(list) == 0 {
			continue
		}
		if victim < 0 || len(list) < len(ix.Lists[victim]) {
			victim = c
		}
	}
	if err := e.Delete(slices.Clone(ix.Lists[victim])); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if ix.ListLen(victim) != 0 {
		t.Fatalf("cluster %d still has %d points", victim, ix.ListLen(victim))
	}
	if len(e.pl.ByCluster[victim]) != 0 {
		t.Fatalf("empty cluster %d still has placement slices", victim)
	}
	// A query equal to the victim's centroid assigns to it (it is its own
	// nearest centroid by construction).
	cu8 := ix.CentroidsU8[victim*ix.Dim : (victim+1)*ix.Dim]
	sc := ix.NewEncodeScratch()
	if got := ix.AssignVec(cu8, sc); got != int32(victim) {
		t.Skipf("centroid u8 rounding assigns to %d, not %d", got, victim)
	}
	newID := int32(s.Base.N)
	if err := e.Insert(dataset.U8Set{N: 1, D: ix.Dim, Data: cu8}, []int32{newID}); err != nil {
		t.Fatal(err)
	}
	if len(e.pl.ByCluster[victim]) == 0 {
		t.Fatal("insert into empty cluster left it unreachable")
	}
	res, err := e.SearchBatch(dataset.U8Set{N: 1, D: ix.Dim, Data: cu8})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(res.IDs[0], newID) {
		t.Fatalf("point inserted into emptied cluster not findable: %v", res.IDs[0])
	}
}

// TestNewRejectsMutatedIndex pins the deployment guard: an index carrying
// an uncompacted overlay cannot be deployed (its engine-side derived tables
// would not cover the overlay).
func TestNewRejectsMutatedIndex(t *testing.T) {
	ix, s, base := mutFixture(t)
	if _, err := ix.Insert(int32(base), s.Base.Vec(base)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(ix, s.Queries, testOptions()); err == nil {
		t.Fatal("New must reject a mutated index")
	}
	if _, err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(ix, s.Queries, testOptions()); err != nil {
		t.Fatalf("New must accept the index once compacted: %v", err)
	}
}

// TestMemoryFootprintTracksOverlay pins live memory accounting: the shared
// footprint grows with the overlay and returns to its original value at
// Compact (same logical corpus, so identical packed bytes).
func TestMemoryFootprintTracksOverlay(t *testing.T) {
	ix, s, base := mutFixture(t)
	e, err := New(ix, s.Queries, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := e.MemoryFootprint().SharedBytes
	n := 20
	vecs := dataset.U8Set{N: n, D: s.Base.D, Data: s.Base.Data[base*s.Base.D : (base+n)*s.Base.D]}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(base + i)
	}
	if err := e.Insert(vecs, ids); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete([]int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	during := e.MemoryFootprint().SharedBytes
	wantDelta := ix.MutationBytes()
	if algDelta := during - before; wantDelta == 0 || algDelta < wantDelta {
		t.Fatalf("footprint delta %d does not cover overlay bytes %d", algDelta, wantDelta)
	}
	// Restore the original logical corpus (drop the inserts, reinstate the
	// deleted base points) — only then must the compacted footprint return
	// exactly to its pre-mutation value.
	if err := e.Delete(ids); err != nil {
		t.Fatal(err)
	}
	restore := dataset.U8Set{N: 2, D: s.Base.D, Data: s.Base.Data[:2*s.Base.D]}
	if err := e.Insert(restore, []int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	after := e.MemoryFootprint().SharedBytes
	if after != before {
		t.Fatalf("footprint after compact %d != before mutation %d", after, before)
	}
}

// TestReplicaSeesMutations pins the shared-state contract: a mutation
// through the source engine is visible to a replica built before it, and
// both answer identically after inserts, deletes and a compaction.
func TestReplicaSeesMutations(t *testing.T) {
	ix, s, base := mutFixture(t)
	e, err := New(ix, s.Queries, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(e)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		a, err := e.SearchBatch(s.Queries)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.SearchBatch(s.Queries)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, b, a, label)
	}
	one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(base)}
	if err := e.Insert(one, []int32{int32(base)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete([]int32{3}); err != nil {
		t.Fatal(err)
	}
	check("replica after insert+delete")
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	check("replica after compact")
}
