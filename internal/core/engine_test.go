package core

import (
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/testutil"
	"drimann/internal/upmem"
)

// fixtures shared across tests (index building dominates test time).
type fixture struct {
	s  *dataset.Synth
	ix *ivf.Index
}

var sharedFixture *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if sharedFixture != nil {
		return sharedFixture
	}
	ix, s := testutil.Fixture(t, testutil.FixtureSpec{
		N: 6000, D: 16, Queries: 64, NumClusters: 32, Seed: 21, Noise: 10,
		ZipfS: 1.8, QuerySkew: 0.95,
		NList: 48, M: 8, CB: 64, BuildSeed: 7,
	})
	sharedFixture = &fixture{s: s, ix: ix}
	return sharedFixture
}

func testOptions() Options {
	o := DefaultOptions()
	o.NumDPUs = 16
	o.K = 10
	o.NProbe = 12
	o.BatchSize = 32
	o.CopyFootprint = 32 << 10
	return o
}

func TestEngineMatchesIntReferenceExactly(t *testing.T) {
	// The headline functional guarantee: distributing clusters over DPUs,
	// splitting, duplication, scheduling and postponement must not change a
	// single result relative to the single-threaded integer reference.
	f := getFixture(t)
	e, err := New(f.ix, dataset.U8Set{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < f.s.Queries.N; qi++ {
		want := f.ix.SearchInt(f.s.Queries.Vec(qi), e.opts.NProbe, e.opts.K)
		got := res.Items[qi]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d result %d: %+v != reference %+v", qi, j, got[j], want[j])
			}
		}
	}
}

func TestEngineRecall(t *testing.T) {
	f := getFixture(t)
	e, err := New(f.ix, dataset.U8Set{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	gt := dataset.GroundTruth(f.s.Base, f.s.Queries, 10, 0)
	if r := dataset.Recall(gt, res.IDs, 10); r < 0.75 {
		t.Fatalf("engine recall@10 = %v, want >= 0.75", r)
	}
}

func TestEngineMetricsSanity(t *testing.T) {
	f := getFixture(t)
	e, err := New(f.ix, dataset.U8Set{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.QPS <= 0 || m.SimSeconds <= 0 {
		t.Fatalf("bad QPS/time: %+v", m)
	}
	if m.Launches < m.Batches {
		t.Fatalf("launches %d < batches %d", m.Launches, m.Batches)
	}
	if m.PointsScanned == 0 {
		t.Fatal("no points scanned")
	}
	var phaseTotal float64
	for _, s := range m.PhaseSeconds {
		phaseTotal += s
	}
	if phaseTotal <= 0 {
		t.Fatal("no phase time recorded")
	}
	shares := m.PhaseShare()
	var shareSum float64
	for _, s := range shares {
		shareSum += s
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("phase shares sum to %v", shareSum)
	}
	if m.AvgImbalance() < 1 {
		t.Fatalf("imbalance below 1: %v", m.AvgImbalance())
	}
	// LC and DC must dominate the PIM time (Figure 9's shape).
	lcdc := shares[upmem.PhaseLC] + shares[upmem.PhaseDC]
	if lcdc < 0.5 {
		t.Fatalf("LC+DC share = %v, expected the dominant fraction", lcdc)
	}
}

func TestSQTAblation(t *testing.T) {
	f := getFixture(t)
	on := testOptions()
	off := testOptions()
	off.UseSQT = false

	eOn, err := New(f.ix, dataset.U8Set{}, on)
	if err != nil {
		t.Fatal(err)
	}
	eOff, err := New(f.ix, dataset.U8Set{}, off)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := eOn.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := eOff.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	// Lossless conversion: identical results.
	for qi := range rOn.IDs {
		for j := range rOn.IDs[qi] {
			if rOn.IDs[qi][j] != rOff.IDs[qi][j] {
				t.Fatalf("SQT changed results at query %d", qi)
			}
		}
	}
	// LC must get faster with SQT (multiplications removed).
	lcOn := rOn.Metrics.PhaseSeconds[upmem.PhaseLC]
	lcOff := rOff.Metrics.PhaseSeconds[upmem.PhaseLC]
	if lcOn >= lcOff {
		t.Fatalf("SQT did not speed up LC: %v vs %v", lcOn, lcOff)
	}
	speedup := lcOff / lcOn
	if speedup < 1.2 || speedup > 32 {
		t.Fatalf("LC speedup %v outside the plausible band (paper: ~1.93x)", speedup)
	}
	// End-to-end speedup is smaller than the LC speedup.
	e2e := rOff.Metrics.SimSeconds / rOn.Metrics.SimSeconds
	if e2e < 1.0 || e2e > speedup+0.01 {
		t.Fatalf("end-to-end speedup %v should be in [1, LC speedup %v]", e2e, speedup)
	}
}

func TestWRAMBufferAblation(t *testing.T) {
	f := getFixture(t)
	on := testOptions()
	off := testOptions()
	off.UseWRAM = false

	eOn, err := New(f.ix, dataset.U8Set{}, on)
	if err != nil {
		t.Fatal(err)
	}
	eOff, err := New(f.ix, dataset.U8Set{}, off)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := eOn.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := eOff.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range rOn.IDs {
		for j := range rOn.IDs[qi] {
			if rOn.IDs[qi][j] != rOff.IDs[qi][j] {
				t.Fatalf("buffer optimization changed results at query %d", qi)
			}
		}
	}
	speedup := rOff.Metrics.PIMSeconds / rOn.Metrics.PIMSeconds
	if speedup < 1.5 {
		t.Fatalf("WRAM buffering speedup %v too small (paper: ~4x)", speedup)
	}
	if speedup > 8 {
		t.Fatalf("WRAM buffering speedup %v implausibly large", speedup)
	}
}

func TestLockPruningAblation(t *testing.T) {
	f := getFixture(t)
	on := testOptions()
	off := testOptions()
	off.UseLockPruning = false

	eOn, err := New(f.ix, dataset.U8Set{}, on)
	if err != nil {
		t.Fatal(err)
	}
	eOff, err := New(f.ix, dataset.U8Set{}, off)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := eOn.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := eOff.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.Metrics.LockAcquired >= rOff.Metrics.LockAcquired {
		t.Fatalf("pruning should reduce lock acquisitions: %d vs %d",
			rOn.Metrics.LockAcquired, rOff.Metrics.LockAcquired)
	}
	if rOn.Metrics.LockSkipped == 0 {
		t.Fatal("pruning should skip some locks")
	}
	tsOn := rOn.Metrics.PhaseSeconds[upmem.PhaseTS]
	tsOff := rOff.Metrics.PhaseSeconds[upmem.PhaseTS]
	if tsOn >= tsOff {
		t.Fatalf("pruning should shrink TS time: %v vs %v", tsOn, tsOff)
	}
}

func TestLoadBalanceAblation(t *testing.T) {
	f := getFixture(t)
	on := testOptions()
	off := testOptions()
	off.EnableSplit = false
	off.EnableDup = false
	off.EnableBalance = false
	off.Rebalance = false
	off.Th3 = 0

	eOn, err := New(f.ix, f.s.Queries, on) // profile with the real workload
	if err != nil {
		t.Fatal(err)
	}
	eOff, err := New(f.ix, dataset.U8Set{}, off)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := eOn.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := eOff.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	// Same results either way.
	for qi := range rOn.IDs {
		for j := range rOn.IDs[qi] {
			if rOn.IDs[qi][j] != rOff.IDs[qi][j] {
				t.Fatalf("load balancing changed results at query %d", qi)
			}
		}
	}
	if rOn.Metrics.AvgImbalance() >= rOff.Metrics.AvgImbalance() {
		t.Fatalf("balancing should cut imbalance: %v vs %v",
			rOn.Metrics.AvgImbalance(), rOff.Metrics.AvgImbalance())
	}
	speedup := rOff.Metrics.PIMSeconds / rOn.Metrics.PIMSeconds
	if speedup < 1.2 {
		t.Fatalf("load-balance speedup %v too small on a skewed workload", speedup)
	}
}

func TestEngineWRAMTooSmall(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.WRAMBytes = 1024 // cannot hold even the staging buffers
	if _, err := New(f.ix, dataset.U8Set{}, o); err == nil {
		t.Fatal("expected WRAM failure")
	}
}

func TestEngineMRAMTooSmall(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.MRAMBytes = 4 << 10
	if _, err := New(f.ix, dataset.U8Set{}, o); err == nil {
		t.Fatal("expected MRAM failure")
	}
}

func TestEngineQueryDimMismatch(t *testing.T) {
	f := getFixture(t)
	e, err := New(f.ix, dataset.U8Set{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := dataset.U8Set{N: 1, D: 8, Data: make([]uint8, 8)}
	if _, err := e.SearchBatch(bad); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestEngineEmptyQuerySet(t *testing.T) {
	f := getFixture(t)
	e, err := New(f.ix, dataset.U8Set{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(dataset.U8Set{D: f.ix.Dim})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 0 || res.Metrics.QPS != 0 {
		t.Fatalf("empty query set should produce empty result, got %+v", res.Metrics)
	}
}

func TestEngineLUTSpillForLargeCB(t *testing.T) {
	// CB=1024 makes the LUT 8*1024*4 = 32 KB; with metadata and staging it
	// may or may not fit — build with a tiny WRAM to force the spill path
	// and verify the engine still works.
	s := dataset.Generate(dataset.SynthConfig{
		N: 2200, D: 8, NumQueries: 8, NumClusters: 8, Seed: 3, Noise: 8,
	})
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList: 8, PQ: pq.Config{M: 4, CB: 1024}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions()
	o.NumDPUs = 4
	o.NProbe = 4
	o.WRAMBytes = 12 << 10 // too small for a 16 KB LUT
	e, err := New(ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	if e.lutInWRAM {
		t.Fatal("LUT should have spilled to MRAM")
	}
	res, err := e.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < s.Queries.N; qi++ {
		want := ix.SearchInt(s.Queries.Vec(qi), o.NProbe, o.K)
		for j := range want {
			if res.Items[qi][j] != want[j] {
				t.Fatalf("spill path changed results at query %d", qi)
			}
		}
	}
}

func TestPostponementStillCoversAllWork(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.Th3 = 1.05 // aggressive postponement
	e, err := New(f.ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Postponed == 0 {
		t.Skip("no postponement at this configuration")
	}
	for qi := 0; qi < f.s.Queries.N; qi++ {
		want := f.ix.SearchInt(f.s.Queries.Vec(qi), o.NProbe, o.K)
		for j := range want {
			if res.Items[qi][j] != want[j] {
				t.Fatalf("postponement lost work at query %d", qi)
			}
		}
	}
}
