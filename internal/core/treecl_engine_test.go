package core

import (
	"testing"

	"drimann/internal/dataset"
)

func TestEngineTreeCLMatchesTreeReference(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.TreeCLBranch = 8
	e, err := New(f.ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	if e.loc.tree == nil {
		t.Fatal("tree locator not built")
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the sequential integer scan with the *same* tree locator
	// (the engine must only distribute the work, never change the probes).
	tree, err := f.ix.BuildTreeCL(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < f.s.Queries.N; qi++ {
		want := f.ix.SearchIntTree(tree, f.s.Queries.Vec(qi), o.NProbe, o.TreeCLBeam, o.K)
		got := res.Items[qi]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d result %d: %+v != %+v", qi, j, got[j], want[j])
			}
		}
	}
}

func TestEngineTreeCLReducesHostTime(t *testing.T) {
	f := getFixture(t)
	flat := testOptions()
	tree := testOptions()
	tree.TreeCLBranch = 8

	eFlat, err := New(f.ix, dataset.U8Set{}, flat)
	if err != nil {
		t.Fatal(err)
	}
	eTree, err := New(f.ix, dataset.U8Set{}, tree)
	if err != nil {
		t.Fatal(err)
	}
	rFlat, err := eFlat.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rTree, err := eTree.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if rTree.Metrics.HostSeconds >= rFlat.Metrics.HostSeconds {
		t.Fatalf("tree CL should cut host time: %v vs %v",
			rTree.Metrics.HostSeconds, rFlat.Metrics.HostSeconds)
	}
	// Quality stays close.
	gt := dataset.GroundTruth(f.s.Base, f.s.Queries, 10, 0)
	rF := dataset.Recall(gt, rFlat.IDs, 10)
	rT := dataset.Recall(gt, rTree.IDs, 10)
	if rT < rF-0.1 {
		t.Fatalf("tree CL recall %v too far below flat %v", rT, rF)
	}
}

func TestEngineTreeCLBadBranch(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.TreeCLBranch = 1
	if _, err := New(f.ix, dataset.U8Set{}, o); err == nil {
		t.Fatal("branch=1 must fail")
	}
}
