// Sharding support: the helpers the scatter-gather cluster layer
// (internal/cluster) uses to stitch per-shard engine results back into one
// global view. A shard engine runs in a compact local ID space (0..n_s-1
// over the points the shard owns); the cluster layer remaps local IDs to
// corpus-global IDs through a monotone table and merges per-shard partial
// top-k lists. Monotonicity is what makes the remap order-preserving: the
// deterministic (dist, id) total order of a shard's results is unchanged by
// a strictly increasing ID substitution, so the merged global top-k is
// bit-identical to a single unsharded engine's answer.

package core

import (
	"fmt"

	"drimann/internal/topk"
)

// RemapIDs rewrites local IDs to global IDs in place through globalID
// (globalID[local] = global). The table must be strictly increasing for the
// deterministic (dist, id) order to survive the remap.
func RemapIDs(ids []int32, globalID []int32) {
	for i, id := range ids {
		ids[i] = globalID[id]
	}
}

// RemapItems rewrites the IDs of scored items in place through globalID,
// leaving distances untouched.
func RemapItems(items []topk.Item[uint32], globalID []int32) {
	for i := range items {
		items[i].ID = globalID[items[i].ID]
	}
}

// MergeShardTopK merges per-shard sorted partial top-k lists (already in
// global ID space) into the global top-k under the deterministic (dist, id)
// order, truncated to k. Each part must itself be sorted ascending; the
// shards partition the corpus, so no ID appears twice. The returned slices
// are freshly allocated. This is the gather half of the cluster layer's
// scatter-gather: because every global top-k element is necessarily within
// its own shard's top-k, merging the S partial lists and keeping the best k
// reproduces a single engine's answer over the union exactly.
func MergeShardTopK(k int, parts [][]topk.Item[uint32]) ([]int32, []topk.Item[uint32]) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > k {
		total = k
	}
	items := make([]topk.Item[uint32], 0, total)
	// S is small (shard count), so a linear scan for the minimum head beats
	// heap bookkeeping; ties on (dist, id) cannot occur across shards.
	cursors := make([]int, len(parts))
	for len(items) < total {
		best := -1
		for s, p := range parts {
			if cursors[s] >= len(p) {
				continue
			}
			if best < 0 || topk.Less(p[cursors[s]], parts[best][cursors[best]]) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		items = append(items, parts[best][cursors[best]])
		cursors[best]++
	}
	ids := make([]int32, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	if len(items) == 0 {
		// Zero-fanout convention: match the single engine exactly, which
		// returns non-nil empty IDs and nil Items for a query with no
		// candidates (e.g. every probed cluster empty).
		items = nil
	}
	return ids, items
}

// ValidateRemapTable checks that a local→global ID table is strictly
// increasing — the property RemapIDs/RemapItems rely on to preserve the
// deterministic order. The cluster layer asserts this at build time.
func ValidateRemapTable(globalID []int32) error {
	for i := 1; i < len(globalID); i++ {
		if globalID[i] <= globalID[i-1] {
			return fmt.Errorf("core: remap table not strictly increasing at %d: %d <= %d",
				i, globalID[i], globalID[i-1])
		}
	}
	return nil
}
