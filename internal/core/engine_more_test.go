package core

import (
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/upmem"
)

func TestEngineDeterministic(t *testing.T) {
	f := getFixture(t)
	run := func() *Result {
		e, err := New(f.ix, f.s.Queries, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.SearchBatch(f.s.Queries)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Metrics.PIMSeconds != b.Metrics.PIMSeconds {
		t.Fatalf("simulated time not deterministic: %v vs %v",
			a.Metrics.PIMSeconds, b.Metrics.PIMSeconds)
	}
	if a.Metrics.LockAcquired != b.Metrics.LockAcquired {
		t.Fatal("lock accounting not deterministic")
	}
	for qi := range a.IDs {
		for j := range a.IDs[qi] {
			if a.IDs[qi][j] != b.IDs[qi][j] {
				t.Fatalf("results not deterministic at query %d", qi)
			}
		}
	}
}

func TestEngineSingleDPU(t *testing.T) {
	// One DPU degenerates to a sequential scan; results must still match
	// and the imbalance must be exactly 1.
	f := getFixture(t)
	o := testOptions()
	o.NumDPUs = 1
	o.CopyFootprint = 0
	o.EnableDup = false
	e, err := New(f.ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if im := res.Metrics.AvgImbalance(); im != 1 {
		t.Fatalf("single DPU imbalance = %v, want 1", im)
	}
	for qi := 0; qi < f.s.Queries.N; qi++ {
		want := f.ix.SearchInt(f.s.Queries.Vec(qi), o.NProbe, o.K)
		for j := range want {
			if res.Items[qi][j] != want[j] {
				t.Fatalf("single-DPU result diverges at query %d", qi)
			}
		}
	}
}

func TestEngineWithOPQIndex(t *testing.T) {
	s := dataset.Generate(dataset.SynthConfig{
		N: 3000, D: 16, NumQueries: 16, NumClusters: 16, Seed: 31, Noise: 9,
	})
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList: 16, PQ: pq.Config{M: 8, CB: 32}, Variant: "opq", Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions()
	o.NumDPUs = 8
	o.NProbe = 6
	e, err := New(ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	// The PIM integer path ignores the OPQ rotation (codes were produced in
	// rotated space; the integer LUT path is still self-consistent), so the
	// reference is SearchInt on the same index.
	for qi := 0; qi < s.Queries.N; qi++ {
		want := ix.SearchInt(s.Queries.Vec(qi), o.NProbe, o.K)
		for j := range want {
			if res.Items[qi][j] != want[j] {
				t.Fatalf("OPQ-index engine diverges at query %d", qi)
			}
		}
	}
}

func TestEngineLUTReuseWithColocation(t *testing.T) {
	f := getFixture(t)
	e, err := New(f.ix, f.s.Queries, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	builds, reuses := res.Metrics.LUTBuilds, res.Metrics.LUTReuses
	if builds == 0 {
		t.Fatal("no LUT builds recorded")
	}
	// Co-location of same-cluster slices is best-effort; just require the
	// accounting to be self-consistent with the scanned tasks.
	if reuses > builds*uint64(e.opts.NumDPUs) {
		t.Fatalf("implausible reuse accounting: %d reuses vs %d builds", reuses, builds)
	}
}

func TestEngineTransferAccounting(t *testing.T) {
	f := getFixture(t)
	e, err := New(f.ix, dataset.U8Set{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.XferSeconds <= 0 {
		t.Fatal("host<->PIM transfers must cost time")
	}
	// Transfers must stay far below PIM compute (the paper: negligible).
	if res.Metrics.XferSeconds > res.Metrics.PIMSeconds {
		t.Fatalf("transfer time %v exceeds PIM time %v — not the paper's regime",
			res.Metrics.XferSeconds, res.Metrics.PIMSeconds)
	}
}

func TestEngineTaskletScaling(t *testing.T) {
	// Fewer tasklets starve the pipeline and slow the engine.
	f := getFixture(t)
	fast := testOptions()
	slow := testOptions()
	slow.Tasklets = 2
	eFast, err := New(f.ix, dataset.U8Set{}, fast)
	if err != nil {
		t.Fatal(err)
	}
	eSlow, err := New(f.ix, dataset.U8Set{}, slow)
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := eFast.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := eSlow.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Metrics.PIMSeconds <= rFast.Metrics.PIMSeconds {
		t.Fatalf("2 tasklets (%v s) should be slower than 16 (%v s)",
			rSlow.Metrics.PIMSeconds, rFast.Metrics.PIMSeconds)
	}
}

func TestEngineMulCyclesOverride(t *testing.T) {
	// A hypothetical DPU with a hardware multiplier (MulCycles=1) should
	// make the non-SQT engine competitive with the SQT one — the trade-off
	// the paper's §6 discusses for SIMD-capable PIMs.
	f := getFixture(t)
	noSQT := testOptions()
	noSQT.UseSQT = false
	noSQTFastMul := noSQT
	noSQTFastMul.MulCycles = 1

	slow, err := New(f.ix, dataset.U8Set{}, noSQT)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := New(f.ix, dataset.U8Set{}, noSQTFastMul)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := slow.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := fast.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	lcSlow := rSlow.Metrics.PhaseSeconds[upmem.PhaseLC]
	lcFast := rFast.Metrics.PhaseSeconds[upmem.PhaseLC]
	if lcFast >= lcSlow {
		t.Fatalf("hardware multiplier should accelerate the mul-based LC: %v vs %v", lcFast, lcSlow)
	}
}
