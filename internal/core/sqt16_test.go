package core

import (
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/upmem"
)

func TestSQT16ModeIdenticalResults(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.SQT16 = true
	e, err := New(f.ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	// The tiered table is lossless: results match the reference exactly.
	for qi := 0; qi < f.s.Queries.N; qi++ {
		want := f.ix.SearchInt(f.s.Queries.Vec(qi), o.NProbe, o.K)
		for j := range want {
			if res.Items[qi][j] != want[j] {
				t.Fatalf("SQT16 changed results at query %d", qi)
			}
		}
	}
}

func TestSQT16HotWindowAbsorbsMostLookups(t *testing.T) {
	// The paper's premise for the tiered table: squaring operands are
	// residual differences, concentrated near zero, so the WRAM window
	// handles most cases.
	f := getFixture(t)
	o := testOptions()
	o.SQT16 = true
	o.SQT16HotEntries = 256 // a deliberately small window (1 KB)
	e, err := New(f.ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchBatch(f.s.Queries); err != nil {
		t.Fatal(err)
	}
	if hr := e.SQT16HitRate(); hr < 0.5 {
		t.Fatalf("hot-window hit rate %v too low even at 256 entries", hr)
	}
}

func TestSQT16ColdTierCostsTime(t *testing.T) {
	f := getFixture(t)
	base := testOptions()
	tiered := testOptions()
	tiered.SQT16 = true
	tiered.SQT16HotEntries = 16 // almost everything cold

	eBase, err := New(f.ix, dataset.U8Set{}, base)
	if err != nil {
		t.Fatal(err)
	}
	eTiered, err := New(f.ix, dataset.U8Set{}, tiered)
	if err != nil {
		t.Fatal(err)
	}
	rBase, err := eBase.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rTiered, err := eTiered.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	lcBase := rBase.Metrics.PhaseSeconds[upmem.PhaseLC]
	lcTiered := rTiered.Metrics.PhaseSeconds[upmem.PhaseLC]
	if lcTiered <= lcBase {
		t.Fatalf("cold-tier lookups should slow LC: %v vs %v", lcTiered, lcBase)
	}
}

func TestSQT16RequiresSQT(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.SQT16 = true
	o.UseSQT = false
	if _, err := New(f.ix, dataset.U8Set{}, o); err == nil {
		t.Fatal("SQT16 without UseSQT must fail")
	}
}
