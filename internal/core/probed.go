// ProbeSet and SearchBatchProbed: the engine's CL-skipping entry point.
// A sharded deployment resolves cluster probes once at its front door
// (Locator), partitions them per shard, and hands each shard engine its
// slice of the probe lists here — the engine runs schedule + DPU kernels +
// merge exactly as SearchBatch would, with the CL stage's work (and, unless
// chargeCL is set, its simulated cost) removed.

package core

import "drimann/internal/dataset"

// SearchBatchProbed is SearchBatch with the CL stage pre-resolved: probes
// carries each query's cluster list (shard-local IDs, ascending distance
// order) and the engine skips cluster locating entirely — scheduling, DPU
// kernel simulation and the host merge run unchanged on the same pipelined,
// allocation-free path. An empty probe list yields an empty result for that
// query.
//
// chargeCL controls the metrics attribution of the skipped stage: with it
// set, every batch is charged the engine's own hostCLSeconds exactly as
// SearchBatch charges it — so a caller that ran this engine's Locator
// itself gets bit-identical Metrics to SearchBatch (the equivalence suite
// pins this). A sharded front door that already charged CL once globally
// passes false, and the per-shard Metrics carry no CL cost at all.
func (e *Engine) SearchBatchProbed(queries dataset.U8Set, probes ProbeSet, chargeCL bool) (*Result, error) {
	if err := probes.Validate(queries.N, e.ix.NList); err != nil {
		return nil, err
	}
	return e.searchBatch(queries, probes, true, chargeCL)
}
