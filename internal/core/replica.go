// Replica engines: R-way replication of one shard deployment without
// cloning its read-only state. A replica shares the source engine's index,
// optimized layout, Locator, decomposed LUT builder and per-point
// decomposition terms — everything the hot path only reads — and gets its
// own simulated PIM system, SQT16 tables (they carry per-DPU hit
// statistics) and per-launch scratch, the state a concurrently-running
// engine mutates. Before this, every replica rebuilt the whole deployment
// (including the centroid directory and PQ codebooks), multiplying the
// dominant read-only footprint by R; MemoryFootprint reports the split so
// the cluster layer can account shared-vs-per-replica bytes honestly.

package core

import (
	"drimann/internal/engine"
	"drimann/internal/upmem"
)

// NewReplica builds an engine that serves the same deployment as src:
// bit-identical results and metrics, shared read-only state, private
// mutable state. Safe to call multiple times; replicas and the source may
// run concurrently (each owns its simulated system and scratch).
func NewReplica(src *Engine) (*Engine, error) {
	sys, err := upmem.NewSystem(src.sys.Cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		ix:        src.ix,
		sys:       sys,
		pl:        src.pl,
		opts:      src.opts,
		codeBytes: src.codeBytes,
		loc:       src.loc,
		lut:       src.lut,
		algebraic: src.algebraic,
		bsum:      src.bsum,
		// Mutation state is shared too: asums' outer array is written
		// element-wise (never reallocated), and freq/lcfg let Compact re-run
		// the layout from any engine of the deployment with identical inputs.
		asums: src.asums,
		freq:  src.freq,
		lcfg:  src.lcfg,
	}
	if src.sqt16 != nil {
		e.sqt16 = newSQT16Tables(e.opts)
	}
	if err := e.accountMemory(); err != nil {
		return nil, err
	}
	e.lutScratch = newLUTScratches(e.lut, e.opts.Workers)
	e.scratch = make([]dpuScratch, e.opts.NumDPUs)
	return e, nil
}

// MemoryFootprint splits one engine's host-side memory into the read-only
// bytes NewReplica shares across all replicas of a deployment and the
// private bytes every additional replica costs. For the IVF engine the
// shared side is the centroid directory (float and integer), integer PQ
// codebooks, inverted lists + codes and the static decomposition terms;
// the per-replica side is the SQT16 hot windows and the steady-state
// per-DPU launch scratch. The type is shared across backends (see
// internal/engine) so the cluster layer accounts fleets uniformly.
type MemoryFootprint = engine.MemoryFootprint

// MemoryFootprint reports the engine's shared/per-replica byte split (see
// MemoryFootprint). Structural sizes only — deterministic, not a heap
// profile.
func (e *Engine) MemoryFootprint() MemoryFootprint {
	ix := e.ix
	var shared int64
	shared += int64(len(ix.Centroids)) * 4
	shared += int64(len(ix.CentroidsU8))
	shared += int64(ix.M*ix.CB*(ix.Dim/ix.M)) * 2 // integer codebooks (int16)
	for c := range ix.Lists {
		shared += int64(len(ix.Lists[c]))*4 + int64(len(ix.Codes[c]))*2
	}
	for _, s := range e.bsum {
		shared += int64(len(s)) * 4
	}
	// Live mutation overlay: append segments + tombstones, plus their
	// per-point decomposition terms. Zero once compacted.
	shared += ix.MutationBytes()
	for _, s := range e.asums {
		shared += int64(len(s)) * 4
	}

	var per int64
	if e.sqt16 != nil {
		hot := e.opts.SQT16HotEntries
		if hot <= 0 {
			hot = 8192
		}
		per += int64(e.opts.NumDPUs) * int64(hot) * 4
	}
	// Steady-state per-DPU scratch: K-item heaps, the distance buffer for
	// the largest slice, and group indices for a batch's tasks.
	maxSlice := 0
	for _, s := range e.pl.Slices {
		if s.Count > maxSlice {
			maxSlice = s.Count
		}
	}
	per += int64(e.opts.NumDPUs) * int64(maxSlice) * 4 // distBuf
	per += int64(e.opts.NumDPUs) * int64(e.opts.K) * 16
	return MemoryFootprint{SharedBytes: shared, PerReplicaBytes: per}
}
