package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/durable"
	"drimann/internal/ivf"
)

// durableHarness pairs an engine with a store the way serve.Server
// does: every mutation is applied, then logged, then synced before it
// counts as acknowledged.
type durableHarness struct {
	t   *testing.T
	e   *Engine
	st  *durable.Store
	dim int
}

func (h *durableHarness) insert(vecs dataset.U8Set, ids []int32) {
	h.t.Helper()
	if err := h.e.Insert(vecs, ids); err != nil {
		h.t.Fatal(err)
	}
	rec, err := durable.EncodeInsert(ids, h.dim, vecs.Data[:vecs.N*vecs.D])
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.st.Append(rec); err != nil {
		h.t.Fatal(err)
	}
	if err := h.st.BatchEnd(); err != nil {
		h.t.Fatal(err)
	}
}

func (h *durableHarness) delete(ids []int32) {
	h.t.Helper()
	if err := h.e.Delete(ids); err != nil {
		h.t.Fatal(err)
	}
	if err := h.st.Append(durable.EncodeDelete(ids)); err != nil {
		h.t.Fatal(err)
	}
	if err := h.st.BatchEnd(); err != nil {
		h.t.Fatal(err)
	}
}

// TestEngineRecoverBitIdentical pins the engine-level recovery
// contract across two crash/recover generations: a restart from
// {snapshot, WAL} serves bit-identical results and reports identical
// memory stats to the never-crashed engine over the same acknowledged
// mutations. The second generation recovers from a snapshot that
// itself carries a live overlay (written by the post-replay
// checkpoint), exercising AdoptOverlay.
func TestEngineRecoverBitIdentical(t *testing.T) {
	for _, perOp := range []bool{false, true} {
		name := "tally"
		if perOp {
			name = "perop"
		}
		t.Run(name, func(t *testing.T) {
			ix, s, base := mutFixture(t)
			opts := testOptions()
			opts.PerOpAccounting = perOp
			live, err := New(ix, s.Queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			fs := durable.NewMemFS(durable.FaultPlan{})
			st, err := live.CreateStore(durable.Options{Dir: "eng", FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			h := &durableHarness{t: t, e: live, st: st, dim: s.Base.D}

			rng := rand.New(rand.NewSource(99))
			mutate := func(h *durableHarness, lo, hi int) {
				// Insert pool ids [lo, hi), then delete a few of each kind.
				for id := lo; id < hi; id++ {
					h.insert(dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(id)}, []int32{int32(id)})
				}
				h.delete([]int32{int32(rng.Intn(base))})       // base tombstone
				h.delete([]int32{int32(lo + rng.Intn(hi-lo))}) // append removal
			}
			mutate(h, base, base+40)

			for gen := 0; gen < 2; gen++ {
				// Crash: drop the live engine, recover from the store.
				recovered, rst, err := Recover(durable.Options{Dir: "eng", FS: fs}, s.Queries, opts)
				if err != nil {
					t.Fatalf("gen %d: %v", gen, err)
				}
				want, err := live.SearchBatch(s.Queries)
				if err != nil {
					t.Fatal(err)
				}
				got, err := recovered.SearchBatch(s.Queries)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResults(t, got, want, "recovered engine")
				if gm, wm := recovered.MemoryFootprint(), live.MemoryFootprint(); gm != wm {
					t.Fatalf("gen %d: memory stats diverge: %+v vs %+v", gen, gm, wm)
				}
				live, st = recovered, rst
				h = &durableHarness{t: t, e: live, st: st, dim: s.Base.D}
				// Next generation's mutations land on a store whose
				// snapshot already carries the replayed overlay.
				mutate(h, base+100+gen*50, base+130+gen*50)
			}
		})
	}
}

// engOp is one single-record step of the engine crash-matrix workload:
// an insert or delete (applied then logged, one WAL record each), a
// compact (engine fold + checkpoint rotation, as serve.Compact does),
// or a bare checkpoint rotation (serve.Checkpoint).
type engOp struct {
	kind string // "ins", "del", "compact", "checkpoint"
	id   int32
}

// TestEngineRecoverCrashMatrix kills the filesystem at every mutating
// operation of a fixed durable workload — torn final write included —
// then recovers. The recovered corpus must be exactly the acknowledged
// state or the acknowledged state plus the one in-flight mutation,
// never a torn hybrid, and the recovered engine must serve bit-identical
// results (and memory stats) to a never-crashed reference engine that
// applied the same op prefix.
func TestEngineRecoverCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is slow")
	}
	ix, s, base := mutFixture(t)
	opts := testOptions()
	// Engine mutations write through to the index, so every run needs a
	// fresh copy; reload from serialized bytes instead of re-building.
	var img bytes.Buffer
	if err := ix.Save(&img); err != nil {
		t.Fatal(err)
	}
	freshIx := func() *ivf.Index {
		fx, err := ivf.Load(bytes.NewReader(img.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return fx
	}

	workload := []engOp{
		{kind: "ins", id: int32(base)},
		{kind: "ins", id: int32(base + 1)},
		{kind: "del", id: 12},
		{kind: "checkpoint"},
		{kind: "ins", id: int32(base + 2)},
		{kind: "del", id: int32(base + 1)},
		{kind: "compact"},
		{kind: "ins", id: int32(base + 3)},
		{kind: "del", id: 40},
	}
	apply := func(e *Engine, st *durable.Store, op engOp) error {
		switch op.kind {
		case "ins":
			one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(int(op.id))}
			if err := e.Insert(one, []int32{op.id}); err != nil {
				return err
			}
			rec, err := durable.EncodeInsert([]int32{op.id}, s.Base.D, one.Data)
			if err != nil {
				return err
			}
			if err := st.Append(rec); err != nil {
				return err
			}
			return st.BatchEnd()
		case "del":
			if err := e.Delete([]int32{op.id}); err != nil {
				return err
			}
			if err := st.Append(durable.EncodeDelete([]int32{op.id})); err != nil {
				return err
			}
			return st.BatchEnd()
		case "compact":
			if err := e.Compact(); err != nil {
				return err
			}
			return st.Checkpoint(e.Snapshot)
		default:
			return st.Checkpoint(e.Snapshot)
		}
	}
	// refAt builds the never-crashed reference with the first k ops
	// applied (checkpoints are state-neutral).
	refAt := func(k int) *Engine {
		e, err := New(freshIx(), s.Queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range workload[:k] {
			switch op.kind {
			case "ins":
				one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(int(op.id))}
				if err := e.Insert(one, []int32{op.id}); err != nil {
					t.Fatal(err)
				}
			case "del":
				if err := e.Delete([]int32{op.id}); err != nil {
					t.Fatal(err)
				}
			case "compact":
				if err := e.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return e
	}

	// liveSets[k] is the corpus after the first k ops — one reference
	// walk instead of an engine build per candidate state.
	liveSets := make([][]int32, len(workload)+1)
	{
		walk := refAt(0)
		liveSets[0] = walk.Index().LiveIDs()
		for k, op := range workload {
			switch op.kind {
			case "ins":
				one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(int(op.id))}
				if err := walk.Insert(one, []int32{op.id}); err != nil {
					t.Fatal(err)
				}
			case "del":
				if err := walk.Delete([]int32{op.id}); err != nil {
					t.Fatal(err)
				}
			case "compact":
				if err := walk.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			liveSets[k+1] = walk.Index().LiveIDs()
		}
	}

	// Dry run to count setup ops and the total.
	dry := durable.NewMemFS(durable.FaultPlan{})
	{
		e, err := New(freshIx(), s.Queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.CreateStore(durable.Options{Dir: "eng", Policy: durable.SyncEveryRecord, FS: dry})
		if err != nil {
			t.Fatal(err)
		}
		setup := dry.Ops()
		for _, op := range workload {
			if err := apply(e, st, op); err != nil {
				t.Fatal(err)
			}
		}
		total := dry.Ops()

		for crashAt := setup + 1; crashAt <= total; crashAt++ {
			fs := durable.NewMemFS(durable.FaultPlan{CrashAtOp: crashAt, TornWrite: true})
			run, err := New(freshIx(), s.Queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			rst, err := run.CreateStore(durable.Options{Dir: "eng", Policy: durable.SyncEveryRecord, FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			acked := 0
			for _, op := range workload {
				if err := apply(run, rst, op); err != nil {
					if !errors.Is(err, durable.ErrCrashed) {
						t.Fatalf("crash@%d: op %d: %v", crashAt, acked, err)
					}
					break
				}
				acked++
			}
			fs.Reboot()
			recovered, _, err := Recover(durable.Options{Dir: "eng", Policy: durable.SyncEveryRecord, FS: fs}, s.Queries, opts)
			if err != nil {
				t.Fatalf("crash@%d: recover: %v", crashAt, err)
			}
			got := recovered.Index().LiveIDs()
			matched := -1
			for _, k := range []int{acked, acked + 1} {
				if k > len(workload) {
					continue
				}
				if slices.Equal(got, liveSets[k]) {
					matched = k
					break
				}
			}
			if matched < 0 {
				t.Fatalf("crash@%d: recovered corpus is neither state %d nor %d — torn hybrid", crashAt, acked, acked+1)
			}
			ref := refAt(matched)
			want, err := ref.SearchBatch(s.Queries)
			if err != nil {
				t.Fatal(err)
			}
			res, err := recovered.SearchBatch(s.Queries)
			if err != nil {
				t.Fatalf("crash@%d: recovered search: %v", crashAt, err)
			}
			requireSameResults(t, res, want, fmt.Sprintf("crash@%d (prefix %d)", crashAt, matched))
			if gm, wm := recovered.MemoryFootprint(), ref.MemoryFootprint(); gm != wm {
				t.Fatalf("crash@%d: memory stats diverge: %+v vs %+v", crashAt, gm, wm)
			}
		}
	}
}

// TestEngineRecoverEmptyWAL recovers straight from a checkpoint with no
// logged mutations.
func TestEngineRecoverEmptyWAL(t *testing.T) {
	ix, s, _ := mutFixture(t)
	opts := testOptions()
	eng, err := New(ix, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	fs := durable.NewMemFS(durable.FaultPlan{})
	if _, err := eng.CreateStore(durable.Options{Dir: "eng", FS: fs}); err != nil {
		t.Fatal(err)
	}
	recovered, _, err := Recover(durable.Options{Dir: "eng", FS: fs}, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recovered.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, got, want, "clean recovery")
}
