// Live mutability on the engine: Insert/Delete maintain the index's
// append-segment/tombstone overlay (ivf/mutable.go) together with the
// engine-side state derived from cluster contents — the algebraic per-point
// decomposition terms (asums) and the placement's reachability of
// previously-empty clusters — and Compact folds everything back into the
// packed layout, re-running the layout optimizer with the inputs New
// resolved so the result is bit-identical to a freshly deployed engine over
// the same logical corpus.
//
// Mutations are NOT safe concurrently with SearchBatch or with each other;
// the serving layers serialize them at launch boundaries (serve.Server
// executes them on the batcher goroutine between launches). Replica engines
// share ix/pl/bsum/asums with their source, so a mutation through any one
// engine is visible to all — which is also why every replica's batcher must
// be quiesced first.

package core

import (
	"fmt"

	"drimann/internal/dataset"
	"drimann/internal/layout"
)

// Insert adds vecs[i] under ids[i]: each point is assigned to its nearest
// centroid (bit-identically to index build), PQ-encoded with the frozen
// codebooks, and appended to that cluster's segment, immediately visible to
// the next launch. Ids must be non-negative and not currently live (delete
// first to replace).
func (e *Engine) Insert(vecs dataset.U8Set, ids []int32) error {
	if vecs.N != len(ids) {
		return fmt.Errorf("core: %d vectors for %d ids", vecs.N, len(ids))
	}
	if vecs.N > 0 && vecs.D != e.ix.Dim {
		return fmt.Errorf("core: insert dim %d, index dim %d", vecs.D, e.ix.Dim)
	}
	ix := e.ix
	for i := 0; i < vecs.N; i++ {
		c, err := ix.Insert(ids[i], vecs.Vec(i))
		if err != nil {
			return err
		}
		if e.algebraic {
			codes := ix.AppendCodes(int(c))
			n := len(codes) / ix.M
			var sum [1]int32
			e.lut.ClusterADCSums(int(c), codes[(n-1)*ix.M:], sum[:])
			e.asums[c] = append(e.asums[c], sum[0])
		}
		e.ensureReachable(c)
	}
	return nil
}

// Delete removes ids from the logical corpus: base-list points are
// tombstoned (filtered by the TS accept pass until Compact), append-segment
// points are removed outright.
func (e *Engine) Delete(ids []int32) error {
	for _, id := range ids {
		c, pos, err := e.ix.Delete(id)
		if err != nil {
			return err
		}
		if pos >= 0 && e.algebraic {
			a := e.asums[c]
			e.asums[c] = append(a[:pos], a[pos+1:]...)
		}
	}
	return nil
}

// ensureReachable gives cluster c a placement slice when the build-time
// layout skipped it (empty base list produces no slices): the scheduler
// expands probe requests through Placement.ByCluster, so without one a
// probed cluster generates no task and its append segment would be silently
// unscannable. The injected slice covers zero base points (the append
// segment rides on any Start==0 slice) and is placed on the least-loaded
// DPU; Compact discards it with the rest of the placement.
func (e *Engine) ensureReachable(c int32) {
	pl := e.pl
	if len(pl.ByCluster[c]) > 0 {
		return
	}
	d := 0
	for i := 1; i < pl.NumDPUs; i++ {
		if pl.DPUBytes[i] < pl.DPUBytes[d] {
			d = i
		}
	}
	id := len(pl.Slices)
	pl.Slices = append(pl.Slices, layout.Slice{ID: id, Cluster: c, Start: 0, Count: 0, DPUs: []int{d}})
	pl.ByCluster[c] = append(pl.ByCluster[c], id)
}

// Compact folds append segments and tombstones back into the packed
// inverted lists and re-optimizes the data layout over the post-fold
// cluster sizes with the exact heat profile and configuration New resolved.
// From the next launch on, results are bit-identical to a freshly built
// engine over the same logical corpus. (The simulated MRAM image still
// reflects the deployment-time allocation — compaction is modeled as a
// host-side reorganization, and per-launch costs derive from the placement
// and scans, not from the allocation bookkeeping.)
func (e *Engine) Compact() error { return e.compact(nil) }

// CompactRemap is Compact with a simultaneous id relabeling (live id x
// becomes remap[x]); the sharded layer uses it to renumber shard-local ids
// back into the dense monotone space its global-id remap tables require.
func (e *Engine) CompactRemap(remap []int32) error { return e.compact(remap) }

func (e *Engine) compact(remap []int32) error {
	ix := e.ix
	dirty, err := ix.CompactRemap(remap)
	if err != nil {
		return err
	}
	if len(dirty) == 0 && remap == nil {
		return nil
	}
	sizes := make([]int, ix.NList)
	for c := range sizes {
		sizes[c] = ix.ListLen(c)
	}
	pl, err := layout.Optimize(sizes, e.freq, e.lcfg)
	if err != nil {
		return fmt.Errorf("core: post-compaction layout: %w", err)
	}
	if err := pl.Validate(sizes); err != nil {
		return fmt.Errorf("core: post-compaction layout invariants: %w", err)
	}
	// In-place assignment: replicas share the Placement pointer, so the new
	// layout (like the rebuilt lists) is visible to every engine at once.
	*e.pl = *pl
	if e.algebraic {
		for _, c := range dirty {
			codes := ix.Codes[c]
			sums := make([]int32, len(codes)/ix.M)
			e.lut.ClusterADCSums(int(c), codes, sums)
			e.bsum[c] = sums
			e.asums[c] = e.asums[c][:0]
		}
	}
	return nil
}
