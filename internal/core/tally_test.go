package core

import (
	"fmt"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/upmem"
)

// TestBatchedTallyMatchesPerOpReference is the ISSUE-2 accounting property:
// across the full optimization matrix (UseSQT x SQT16 x UseWRAM x
// UseLockPruning x UseBitonicTS), the batched cost-tally path — with its
// LUT-free DC kernels, memoized SQT16 replay and bulk TS charging — must
// produce bit-identical results and exactly equal metrics to the retained
// per-op reference accountant: per-phase instruction cycles, DMA transfer
// counts and bytes (including coalesced random accesses), lock and LUT
// counters, and SQT16 hot/cold statistics.
func TestBatchedTallyMatchesPerOpReference(t *testing.T) {
	f := getFixture(t)

	type combo struct {
		sqt, sqt16, wram, prune, bitonic bool
	}
	var combos []combo
	for _, sqtMode := range [][2]bool{{false, false}, {true, false}, {true, true}} {
		for _, wram := range []bool{false, true} {
			for _, prune := range []bool{false, true} {
				for _, bitonic := range []bool{false, true} {
					combos = append(combos, combo{sqtMode[0], sqtMode[1], wram, prune, bitonic})
				}
			}
		}
	}

	for _, c := range combos {
		name := fmt.Sprintf("sqt=%v_sqt16=%v_wram=%v_prune=%v_bitonic=%v",
			c.sqt, c.sqt16, c.wram, c.prune, c.bitonic)
		t.Run(name, func(t *testing.T) {
			o := testOptions()
			o.UseSQT = c.sqt
			o.SQT16 = c.sqt16
			// A hot window far below the 8-bit diff domain (511) forces real
			// cold lookups; the default 8192 covers the whole domain and
			// would leave the memoized cold path trivially zero.
			o.SQT16HotEntries = 64
			o.UseWRAM = c.wram
			o.UseLockPruning = c.prune
			o.UseBitonicTS = c.bitonic
			oRef := o
			oRef.PerOpAccounting = true

			eBat, err := New(f.ix, dataset.U8Set{}, o)
			if err != nil {
				t.Fatal(err)
			}
			eRef, err := New(f.ix, dataset.U8Set{}, oRef)
			if err != nil {
				t.Fatal(err)
			}
			if eBat.opts.PerOpAccounting || !eRef.opts.PerOpAccounting {
				t.Fatal("accounting modes not wired through")
			}
			rBat, err := eBat.SearchBatch(f.s.Queries)
			if err != nil {
				t.Fatal(err)
			}
			rRef, err := eRef.SearchBatch(f.s.Queries)
			if err != nil {
				t.Fatal(err)
			}

			for qi := range rBat.IDs {
				if len(rBat.IDs[qi]) != len(rRef.IDs[qi]) {
					t.Fatalf("query %d: %d ids vs %d reference", qi, len(rBat.IDs[qi]), len(rRef.IDs[qi]))
				}
				for j := range rBat.IDs[qi] {
					if rBat.Items[qi][j] != rRef.Items[qi][j] {
						t.Fatalf("query %d item %d: tally %+v != reference %+v",
							qi, j, rBat.Items[qi][j], rRef.Items[qi][j])
					}
				}
			}
			// Metrics equality covers PhaseComputeCycles, PhaseDMACount,
			// PhaseDMABytes, PhaseSeconds, lock/LUT counters and the SQT16
			// hot/cold split elementwise (struct comparison).
			if rBat.Metrics != rRef.Metrics {
				t.Fatalf("metrics diverge:\ntally:     %+v\nreference: %+v", rBat.Metrics, rRef.Metrics)
			}
			if got, want := eBat.SQT16HitRate(), eRef.SQT16HitRate(); got != want {
				t.Fatalf("engine SQT16 hit rate %v != reference %v", got, want)
			}
			if c.sqt16 {
				if rBat.Metrics.SQT16Hot == 0 || rBat.Metrics.SQT16Cold == 0 {
					t.Fatalf("SQT16 run should exercise both tiers: hot %d cold %d",
						rBat.Metrics.SQT16Hot, rBat.Metrics.SQT16Cold)
				}
				// Per-DPU table statistics must match, not just the sums.
				for d := range eBat.sqt16 {
					if eBat.sqt16[d].Stats() != eRef.sqt16[d].Stats() {
						t.Fatalf("DPU %d tiered stats: tally %+v != reference %+v",
							d, eBat.sqt16[d].Stats(), eRef.sqt16[d].Stats())
					}
				}
			}
			if rBat.Metrics.PointsScanned == 0 || rBat.Metrics.PhaseComputeCycles[upmem.PhaseDC] == 0 {
				t.Fatalf("degenerate run: %+v", rBat.Metrics)
			}
		})
	}
}

// TestReferenceAccountingFallbackPath pins the third functional variant:
// with the decomposed LUT builder unavailable (budget exceeded via a huge
// virtual NList product is impractical here, so we clear it directly), the
// materialized-LUT fallback must still match the reference accountant.
func TestReferenceAccountingFallbackPath(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	eBat, err := New(f.ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the over-budget deployment: no decomposed builder, no
	// algebraic path, LUTs built per group via LUTInt.
	eBat.lut = nil
	eBat.lutScratch = nil
	eBat.algebraic = false
	eBat.bsum = nil

	oRef := o
	oRef.PerOpAccounting = true
	eRef, err := New(f.ix, dataset.U8Set{}, oRef)
	if err != nil {
		t.Fatal(err)
	}
	eRef.lut = nil
	eRef.lutScratch = nil

	rBat, err := eBat.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rRef, err := eRef.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range rBat.IDs {
		for j := range rBat.IDs[qi] {
			if rBat.Items[qi][j] != rRef.Items[qi][j] {
				t.Fatalf("query %d item %d: fallback %+v != reference %+v",
					qi, j, rBat.Items[qi][j], rRef.Items[qi][j])
			}
		}
	}
	if rBat.Metrics != rRef.Metrics {
		t.Fatalf("fallback metrics diverge:\ntally:     %+v\nreference: %+v", rBat.Metrics, rRef.Metrics)
	}
}
