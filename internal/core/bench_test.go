package core

import (
	"sync"
	"testing"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

var (
	coreBenchOnce sync.Once
	coreBenchIx   *ivf.Index
	coreBenchData *dataset.Synth
)

func coreBenchFixture(b *testing.B) (*ivf.Index, *dataset.Synth) {
	b.Helper()
	coreBenchOnce.Do(func() {
		coreBenchData = dataset.Generate(dataset.SynthConfig{
			N: 20000, D: 64, NumQueries: 128, NumClusters: 64,
			ZipfS: 1.5, QuerySkew: 0.9, Hotspots: 4, Noise: 9, Seed: 19,
		})
		ix, err := ivf.Build(coreBenchData.Base, ivf.BuildConfig{
			NList: 128, PQ: pq.Config{M: 16, CB: 64}, Seed: 3,
		})
		if err != nil {
			panic(err)
		}
		coreBenchIx = ix
	})
	return coreBenchIx, coreBenchData
}

// BenchmarkEngineSearchBatch measures the wall-clock cost of simulating one
// full DRIM-ANN batch (scheduling + functional kernels + accounting).
func BenchmarkEngineSearchBatch(b *testing.B) {
	ix, s := coreBenchFixture(b)
	opts := DefaultOptions()
	opts.NumDPUs = 32
	opts.NProbe = 16
	eng, err := New(ix, s.Queries, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchBatch(s.Queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBuild measures layout optimization + deployment cost.
func BenchmarkEngineBuild(b *testing.B) {
	ix, s := coreBenchFixture(b)
	opts := DefaultOptions()
	opts.NumDPUs = 32
	opts.NProbe = 16
	for i := 0; i < b.N; i++ {
		if _, err := New(ix, s.Queries, opts); err != nil {
			b.Fatal(err)
		}
	}
}
