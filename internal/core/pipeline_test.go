package core

import (
	"testing"

	"drimann/internal/dataset"
)

// TestPipelineDeterminismMatchesSerial is the ISSUE-1 determinism guarantee:
// the pipelined, worker-parallel execution path returns byte-identical
// results and identical metrics (every counter, every modeled second) to a
// Workers=1, pipelining-off run. The pipeline may only change wall-clock
// behavior, never what is computed.
func TestPipelineDeterminismMatchesSerial(t *testing.T) {
	f := getFixture(t)

	pip := testOptions()
	pip.Workers = 4 // force real concurrency in every stage
	ser := testOptions()
	ser.Workers = 1
	ser.NoPipeline = true

	ePip, err := New(f.ix, dataset.U8Set{}, pip)
	if err != nil {
		t.Fatal(err)
	}
	eSer, err := New(f.ix, dataset.U8Set{}, ser)
	if err != nil {
		t.Fatal(err)
	}
	rPip, err := ePip.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	rSer, err := eSer.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}

	for qi := range rPip.IDs {
		if len(rPip.IDs[qi]) != len(rSer.IDs[qi]) {
			t.Fatalf("query %d: %d ids vs %d serial", qi, len(rPip.IDs[qi]), len(rSer.IDs[qi]))
		}
		for j := range rPip.IDs[qi] {
			if rPip.IDs[qi][j] != rSer.IDs[qi][j] {
				t.Fatalf("query %d id %d: pipelined %d != serial %d",
					qi, j, rPip.IDs[qi][j], rSer.IDs[qi][j])
			}
			if rPip.Items[qi][j] != rSer.Items[qi][j] {
				t.Fatalf("query %d item %d: pipelined %+v != serial %+v",
					qi, j, rPip.Items[qi][j], rSer.Items[qi][j])
			}
		}
	}
	if rPip.Metrics != rSer.Metrics {
		t.Fatalf("metrics diverge:\npipelined: %+v\nserial:    %+v", rPip.Metrics, rSer.Metrics)
	}
	if rPip.Metrics.LUTBuilds == 0 || rPip.Metrics.LockAcquired == 0 || rPip.Metrics.PointsScanned == 0 {
		t.Fatalf("degenerate run: %+v", rPip.Metrics)
	}
}

// TestEngineReuseAcrossSearchBatches pins the LUT-scratch invalidation: a
// reused engine must answer a second, different query set exactly, even
// though in-batch query ids collide with the previous call's (the per-query
// decomposition cache must not leak across calls).
func TestEngineReuseAcrossSearchBatches(t *testing.T) {
	f := getFixture(t)
	e, err := New(f.ix, dataset.U8Set{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Single-query batches are the sharpest collision: both calls use query
	// id 0 for different vectors, so a stale per-query LUT cache is hit
	// immediately.
	for qi := 0; qi < 4; qi++ {
		one := dataset.U8Set{N: 1, D: f.s.Queries.D,
			Data: f.s.Queries.Vec(qi)}
		res, err := e.SearchBatch(one)
		if err != nil {
			t.Fatal(err)
		}
		want := f.ix.SearchInt(one.Vec(0), e.opts.NProbe, e.opts.K)
		for j := range want {
			if res.Items[0][j] != want[j] {
				t.Fatalf("single-query call %d leaked state: %+v != %+v", qi, res.Items[0][j], want[j])
			}
		}
	}

	if _, err := e.SearchBatch(f.s.Queries); err != nil {
		t.Fatal(err)
	}
	// Second full call: the same queries reversed, so query id i is a
	// different vector than in the first call.
	rev := dataset.U8Set{N: f.s.Queries.N, D: f.s.Queries.D,
		Data: make([]uint8, len(f.s.Queries.Data))}
	for qi := 0; qi < rev.N; qi++ {
		copy(rev.Data[qi*rev.D:(qi+1)*rev.D], f.s.Queries.Vec(rev.N-1-qi))
	}
	res, err := e.SearchBatch(rev)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < rev.N; qi++ {
		want := f.ix.SearchInt(rev.Vec(qi), e.opts.NProbe, e.opts.K)
		got := res.Items[qi]
		if len(got) != len(want) {
			t.Fatalf("reused engine query %d: %d results, want %d", qi, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("reused engine leaked state at query %d: %+v != %+v", qi, got[j], want[j])
			}
		}
	}
}

// TestPipelinedDrainDeliversPostponedTasks pins the drain path: with an
// aggressive overheat threshold and small batches, the final batch carries
// postponed tasks into extra launches (the Th3-doubling loop), and the
// pipelined path must still deliver every query's exact top-k.
func TestPipelinedDrainDeliversPostponedTasks(t *testing.T) {
	f := getFixture(t)
	o := testOptions()
	o.Th3 = 1.01     // postpone on the slightest overheat
	o.BatchSize = 16 // several batches, so carried work crosses batches
	e, err := New(f.ix, dataset.U8Set{}, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(f.s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Postponed == 0 {
		t.Fatal("scenario produced no postponement; tighten Th3")
	}
	if res.Metrics.Launches <= res.Metrics.Batches {
		t.Fatalf("drain should add launches beyond batches: %d launches, %d batches",
			res.Metrics.Launches, res.Metrics.Batches)
	}
	for qi := 0; qi < f.s.Queries.N; qi++ {
		want := f.ix.SearchInt(f.s.Queries.Vec(qi), o.NProbe, o.K)
		got := res.Items[qi]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("drain lost work at query %d: %+v != %+v", qi, got[j], want[j])
			}
		}
	}
}
