// Package cluster is DRIM-ANN's scatter-gather sharding layer: it
// partitions one IVF-PQ corpus across S independent core.Engines (one
// simulated PIM system each — the rack-scale deployment the paper targets,
// where a billion-point corpus spans many UPMEM ranks), fans each query
// batch out to every shard in parallel, and merges the per-shard partial
// top-k lists into a global result.
//
// # Partitioning
//
// All shards share the index's quantizers — the coarse centroid directory
// and the PQ codebooks are small and replicated, exactly as every rank of a
// real deployment holds the full (tiny) directory — while the inverted
// lists are partitioned:
//
//   - AssignHash spreads each cluster's points across shards by a
//     deterministic point-ID hash, so every shard holds a statistical 1/S
//     of every inverted list. Per-query work is near-perfectly balanced
//     across shards, at the cost of every shard touching every probed
//     cluster.
//   - AssignKMeans assigns whole coarse (k-means) clusters to shards with
//     a balanced k-means over the centroid vectors themselves (capacity-
//     capped, size-weighted), so each inverted list lives wholly on one
//     shard and spatially neighboring lists share a shard. That enables
//     selective scatter: the front door locates once, routes each query
//     only to the shards owning its probed clusters, and — because a
//     query's probes are spatial neighbors — the mean fan-out stays well
//     below S, the cross-rank partition UpANNS-style systems use to cut
//     fan-out traffic.
//
// Each shard's engine runs in a compact local ID space (0..n_s-1): its
// sub-index lists the shard's points under local IDs, and the layer keeps a
// strictly increasing local→global table per shard (plus the per-shard
// global-ID offset of its first point, for the common contiguous prefix).
// Because the table is monotone, the deterministic (dist, id) order of a
// shard's results is preserved by the remap, and because the shards
// partition the corpus and share every quantizer table, the merged global
// top-k is bit-identical to a single unsharded engine's SearchBatch — the
// equivalence suite pins this for S ∈ {1, 2, 7}.
//
// # Metrics
//
// Shards execute concurrently, so the merged core.Metrics is the
// cross-shard parallel view (core.Metrics.MergeParallel): counters sum,
// wall-like durations and per-phase critical paths take the max over
// shards (the fleet is as slow as its slowest rank), and QPS is recomputed
// from the merged totals.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/engine"
	"drimann/internal/ivf"
	"drimann/internal/topk"
	"drimann/internal/vecmath"
)

// Assignment selects the shard-partitioning policy.
type Assignment string

const (
	// AssignHash spreads points across shards by a deterministic ID hash.
	AssignHash Assignment = "hash"
	// AssignKMeans assigns whole coarse clusters to shards by a balanced
	// k-means over the centroid vectors (spatial grouping under a capacity
	// cap), enabling the selective-scatter front door.
	AssignKMeans Assignment = "kmeans"
)

// Options configures a Cluster.
type Options struct {
	// Shards is the number of independent partitions; default 2.
	Shards int
	// Replicas is the number of identical engines per shard (R-way
	// replication); default 1. Engine construction is deterministic, so the
	// replicas of a shard answer bit-identically — the serving layer
	// (NewServer) exploits that to route each query to any one replica,
	// hedge stragglers, and mask dead replicas, while the offline
	// Cluster.SearchBatch always runs on replica 0.
	Replicas int
	// Assignment picks the partitioning policy; default AssignHash.
	Assignment Assignment
	// Engine configures every per-shard engine (NumDPUs is per shard, so a
	// fleet of S shards simulates S x NumDPUs devices per replica).
	Engine core.Options
}

func (o *Options) defaults() error {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	switch o.Assignment {
	case "":
		o.Assignment = AssignHash
	case AssignHash, AssignKMeans:
	default:
		return fmt.Errorf("cluster: unknown assignment %q", o.Assignment)
	}
	return nil
}

// Shard is one partition: its replica engines over the shard's slice of
// the corpus plus the monotone local→global ID table. Engines are held by
// backend contract (engine.Engine) so a fleet can run the IVF engine or
// any other backend; the IVF-only paths (selective scatter, mutation,
// durability) discover the extra surface by type assertion.
type Shard struct {
	// Engine is replica 0 — the engine offline scatter-gather uses.
	Engine engine.Engine
	// Engines holds every replica engine (Engines[0] == Engine). Replicas
	// are built from the same deployment with the same options, so they are
	// interchangeable: any replica's answer is the shard's answer.
	Engines []engine.Engine
	// table maps shard-local point IDs to corpus-global IDs. It is
	// copy-on-write behind an atomic pointer: the routed front door remaps
	// merged results on caller goroutines concurrently with live mutations,
	// and a reader holding the previous table stays self-consistent (results
	// it merges were produced under that table). Strictly increasing at
	// build time and after every Compact; between compactions appends may
	// break monotonicity, which only the bit-identity guarantee (not
	// findability) depends on.
	table atomic.Pointer[[]int32]
	// Points is the number of corpus points this shard owns.
	Points int
}

// GlobalIDs returns the shard's current local→global ID table (an immutable
// snapshot — mutations install a fresh table rather than editing this one).
func (sh *Shard) GlobalIDs() []int32 { return *sh.table.Load() }

func (sh *Shard) setTable(t []int32) { sh.table.Store(&t) }

// ivfEngine is the backend surface the selective-scatter, mutation and
// durability paths need beyond the serving contract; only the IVF engine
// provides it today.
type ivfEngine interface {
	engine.ProbedSearcher
	engine.Mutable
	CompactRemap(remap []int32) error
	Index() *ivf.Index
	Locator() *core.Locator
}

// ivf returns the shard's replica-0 engine as the extended IVF surface,
// nil when the fleet runs a different backend.
func (sh *Shard) ivf() ivfEngine {
	e, _ := sh.Engine.(ivfEngine)
	return e
}

// IVF returns the shard's replica-0 engine as the concrete IVF engine, or
// nil when the fleet serves a different backend (inspection and tests).
func (sh *Shard) IVF() *core.Engine {
	e, _ := sh.Engine.(*core.Engine)
	return e
}

// Offset returns the shard's global-ID offset — the corpus ID of its first
// owned point (0 for an empty shard). The full GlobalIDs table handles
// non-contiguous ownership; the offset is the derived summary callers use
// to identify where a shard's range begins.
func (sh *Shard) Offset() int32 {
	t := sh.GlobalIDs()
	if len(t) == 0 {
		return 0
	}
	return t[0]
}

// Cluster is a fleet of shard engines behind one scatter-gather front.
type Cluster struct {
	shards []*Shard
	opt    Options
	ix     *ivf.Index // the shared (unsharded) index; nil for non-IVF fleets
	dim    int        // vector dimensionality (from ix or the engines)

	// loc is the front-door CL stage (borrowed from shard 0's engine — all
	// shard engines share the full centroid directory and the same options,
	// so their locators produce identical probes). owners[c] lists the
	// shards whose sub-index holds a non-empty inverted list for cluster c:
	// exactly one shard under AssignKMeans, potentially all under
	// AssignHash. Together they drive selective scatter. The owner map is
	// copy-on-write behind an atomic pointer: the routed front door reads it
	// per probe on caller goroutines, concurrently with mutations that make
	// previously-empty clusters non-empty.
	loc    *core.Locator
	owners atomic.Pointer[[][]int32]

	routeMu sync.Mutex
	route   RouteStats

	// mu serializes mutations (Insert/Delete/Compact) with each other and
	// with Stats snapshots, so a snapshot never mixes pre- and
	// post-compaction shard views. The search path never takes it.
	mu sync.Mutex
	// shardOfCluster is the authoritative cluster→shard routing under
	// AssignKMeans (nil under AssignHash): inserts into cluster c land on
	// shardOfCluster[c] even when the cluster is currently empty.
	shardOfCluster []int32
	// g2l[s] maps global id → shard-local id for shard s, built lazily at
	// the first mutation (O(N) once) to route deletes and reject duplicate
	// inserts.
	g2l []map[int32]int32
	// esc is the encode scratch for front-door insert assignment; guarded
	// by mu.
	esc *ivf.EncodeScratch
	// fstore, when attached (CreateFleetStore / RecoverCluster), makes
	// every mutation durable: Insert/Delete log applied sub-batches to
	// the owning shards' WALs before acknowledging, Compact checkpoints
	// every shard. Guarded by mu.
	fstore *FleetStore
}

// RouteStats aggregates the selective-scatter routing behavior of every
// front-door batch (offline SearchBatch and the routed Server alike record
// here): how many shards each query actually touched, and what the
// front-door CL phase cost.
type RouteStats struct {
	// RoutedQueries counts queries routed through the selective front door.
	RoutedQueries int
	// Batches counts front-door CL invocations.
	Batches int
	// FanoutSum totals shards contacted over all routed queries;
	// FanoutSum/RoutedQueries is the mean scatter fan-out. MaxFanout is the
	// worst query's fan-out, and FanoutHist[f] counts queries that touched
	// exactly f shards (length S+1).
	FanoutSum  int64
	MaxFanout  int
	FanoutHist []int
	// FrontCLWallSeconds is real time spent in front-door CL;
	// FrontCLSimSeconds is its modeled (simulated) host cost.
	FrontCLWallSeconds float64
	FrontCLSimSeconds  float64
}

// MeanFanout returns the average shards contacted per routed query (0 when
// nothing was routed).
func (r *RouteStats) MeanFanout() float64 {
	if r.RoutedQueries == 0 {
		return 0
	}
	return float64(r.FanoutSum) / float64(r.RoutedQueries)
}

// ShardMemStats is one shard's memory accounting: the read-only deployment
// bytes shared by all its replicas plus each replica's private bytes.
type ShardMemStats struct {
	Points          int
	Replicas        int
	SharedBytes     int64
	PerReplicaBytes int64
	// TotalBytes = SharedBytes + Replicas*PerReplicaBytes — what the shard
	// actually costs, versus Replicas*(Shared+PerReplica) for the naive
	// clone-everything replication this accounting replaced.
	TotalBytes int64
}

// Stats is the cluster-level observability snapshot: per-shard memory and
// the routing behavior of the selective-scatter front door.
type Stats struct {
	// Selective reports whether the fleet routes queries only to owning
	// shards (AssignKMeans) or broadcasts (AssignHash fallback).
	Selective bool
	Shards    []ShardMemStats
	Route     RouteStats
}

// Stats snapshots the cluster's memory and routing statistics. The shard
// sweep runs under the mutation mutex, so a snapshot taken while another
// goroutine inserts, deletes or compacts never mixes pre- and
// post-mutation shard views (MemoryFootprint reads the live
// append-segment/tombstone bytes, which only change under that mutex).
func (cl *Cluster) Stats() Stats {
	st := Stats{Selective: cl.Selective(), Shards: make([]ShardMemStats, len(cl.shards))}
	cl.mu.Lock()
	for s, sh := range cl.shards {
		var mf engine.MemoryFootprint
		if mr, ok := sh.Engine.(engine.MemoryReporter); ok {
			mf = mr.MemoryFootprint()
		}
		r := len(sh.Engines)
		st.Shards[s] = ShardMemStats{
			Points:          sh.Points,
			Replicas:        r,
			SharedBytes:     mf.SharedBytes,
			PerReplicaBytes: mf.PerReplicaBytes,
			TotalBytes:      mf.SharedBytes + int64(r)*mf.PerReplicaBytes,
		}
	}
	cl.mu.Unlock()
	cl.routeMu.Lock()
	st.Route = cl.route
	st.Route.FanoutHist = append([]int(nil), cl.route.FanoutHist...)
	cl.routeMu.Unlock()
	return st
}

// Selective reports whether the fleet uses the selective-scatter path:
// under AssignKMeans whole clusters live on one shard, so a query only
// needs the shards owning its probed clusters. AssignHash spreads every
// list across all shards, so it keeps the broadcast path.
func (cl *Cluster) Selective() bool { return cl.opt.Assignment == AssignKMeans }

// Locator exposes the front-door CL stage (shared with shard 0's engine;
// stateless per call, safe for concurrent use).
func (cl *Cluster) Locator() *core.Locator { return cl.loc }

// OwnerShards returns the shards owning cluster c's inverted list or append
// segment (view into the current copy-on-write owner map, not a copy; empty
// for an empty cluster). Safe for concurrent use with mutations.
func (cl *Cluster) OwnerShards(c int32) []int32 { return (*cl.owners.Load())[c] }

// ownersView returns the current owner map snapshot (one atomic load; the
// per-probe loops index into it without re-loading).
func (cl *Cluster) ownersView() [][]int32 { return *cl.owners.Load() }

func (cl *Cluster) storeOwners(o [][]int32) { cl.owners.Store(&o) }

// recordRoute folds one front-door batch into the cluster's RouteStats.
// fanouts[i] is query i's shards-contacted count; wall is the real time the
// front-door CL took, sim its modeled host cost.
func (cl *Cluster) recordRoute(fanouts []int, wall, sim float64) {
	cl.routeMu.Lock()
	defer cl.routeMu.Unlock()
	r := &cl.route
	if r.FanoutHist == nil {
		r.FanoutHist = make([]int, len(cl.shards)+1)
	}
	r.Batches++
	r.RoutedQueries += len(fanouts)
	for _, f := range fanouts {
		r.FanoutSum += int64(f)
		if f > r.MaxFanout {
			r.MaxFanout = f
		}
		r.FanoutHist[f]++
	}
	r.FrontCLWallSeconds += wall
	r.FrontCLSimSeconds += sim
}

// splitmix64 is the deterministic point-ID hash of AssignHash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardOfPoints computes each corpus point's shard under the configured
// assignment. nPoints is the corpus size (max list ID + 1); profile is the
// optional workload that weights the kmeans balance (see clusterHeat).
// It also returns the cluster→shard map under AssignKMeans (nil under
// AssignHash) — the routing live inserts follow, including into clusters
// that own no points yet.
func shardOfPoints(ix *ivf.Index, nPoints int, profile dataset.U8Set, opt Options) ([]int32, []int32) {
	owner := make([]int32, nPoints)
	if opt.Assignment == AssignHash {
		for i := range owner {
			owner[i] = int32(splitmix64(uint64(i)) % uint64(opt.Shards))
		}
		return owner, nil
	}
	heat := clusterHeat(ix, profile, opt.Engine.NProbe)
	shardOfCluster := assignClustersKMeans(ix, opt.Shards, heat)
	for c, list := range ix.Lists {
		for _, id := range list {
			owner[id] = shardOfCluster[c]
		}
	}
	return owner, shardOfCluster
}

// clusterHeat estimates each coarse cluster's expected query-time work —
// the weight the kmeans assignment balances across shards. With a profile
// workload it is list size × (1 + profile probe count): the points a shard
// actually scans are its owned clusters' points times how often queries
// probe them, so balancing raw list sizes alone leaves the shard owning the
// workload's hot region as the fleet's critical path (whole-corpus memory
// stays balanced under hash; under kmeans the memory split follows the heat
// split, the same trade the paper's intra-engine layout optimizer makes
// with the same profile). Without a profile every cluster weighs its list
// size — memory balance, the best available proxy.
func clusterHeat(ix *ivf.Index, profile dataset.U8Set, nprobe int) []float64 {
	probed := make([]float64, ix.NList)
	if profile.N > 0 {
		if nprobe <= 0 {
			nprobe = core.DefaultOptions().NProbe
		}
		if nprobe > ix.NList {
			nprobe = ix.NList
		}
		out := make([]topk.Item[uint32], profile.N*nprobe)
		counts := make([]int, profile.N)
		ix.LocateBatch(profile, 0, profile.N, nprobe, 0, out, counts)
		for qi := 0; qi < profile.N; qi++ {
			for _, it := range out[qi*nprobe : qi*nprobe+counts[qi]] {
				probed[it.ID]++
			}
		}
	}
	heat := make([]float64, ix.NList)
	for c := range heat {
		heat[c] = float64(ix.ListLen(c)) * (1 + probed[c])
	}
	return heat
}

// assignClustersKMeans maps whole coarse clusters to shards by a balanced
// k-means over the centroid vectors themselves: S meta-centroids are seeded
// by farthest-point and refined by capacity-constrained Lloyd iterations
// weighted by heat. Spatial grouping is what makes selective scatter pay
// off — a query's NProbe nearest clusters are spatial neighbors, so when
// neighboring clusters share a shard the probe list concentrates on few
// shards and the mean scatter fan-out drops well below S — while the
// capacity cap (~6% slack over perfect) keeps the heat split balanced
// enough that the fleet's max-over-shards latency doesn't pay for the
// locality. Deterministic: seeding, iteration order and tie-breaks are all
// fixed by the index and profile.
func assignClustersKMeans(ix *ivf.Index, shards int, heat []float64) []int32 {
	shardOfCluster := make([]int32, ix.NList)
	if shards <= 1 {
		return shardOfCluster
	}
	type cl struct {
		id     int
		weight float64
	}
	clusters := make([]cl, ix.NList)
	total := 0.0
	for c := range clusters {
		clusters[c] = cl{id: c, weight: heat[c]}
		total += heat[c]
	}
	// Deterministic heaviest-first order (ties by cluster id): hot clusters
	// place while capacity is plentiful, so the cap never strands them far
	// from their spatial home.
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].weight != clusters[j].weight {
			return clusters[i].weight > clusters[j].weight
		}
		return clusters[i].id < clusters[j].id
	})

	// Farthest-point seeding from the heaviest cluster's centroid.
	dim := ix.Dim
	metas := make([][]float32, 0, shards)
	minD := make([]float32, ix.NList)
	seed := clusters[0].id
	metas = append(metas, append([]float32(nil), ix.Centroid(seed)...))
	for c := 0; c < ix.NList; c++ {
		minD[c] = vecmath.L2SquaredF32(ix.Centroid(c), metas[0])
	}
	for len(metas) < shards {
		far := 0
		for c := 1; c < ix.NList; c++ {
			if minD[c] > minD[far] {
				far = c
			}
		}
		metas = append(metas, append([]float32(nil), ix.Centroid(far)...))
		for c := 0; c < ix.NList; c++ {
			if d := vecmath.L2SquaredF32(ix.Centroid(c), metas[len(metas)-1]); d < minD[c] {
				minD[c] = d
			}
		}
	}

	capLimit := total/float64(shards)*(1+1.0/16) + 1
	load := make([]float64, shards)
	const iters = 8
	for it := 0; it < iters; it++ {
		// Capacity-constrained assignment: each cluster goes to the nearest
		// meta-centroid with room; with every shard at cap, the lightest
		// takes it (the balance backstop).
		for s := range load {
			load[s] = 0
		}
		for _, c := range clusters {
			best, bestD := -1, float32(0)
			light := 0
			for s := 0; s < shards; s++ {
				if load[s] < load[light] {
					light = s
				}
				if load[s]+c.weight > capLimit {
					continue
				}
				d := vecmath.L2SquaredF32(ix.Centroid(c.id), metas[s])
				if best < 0 || d < bestD {
					best, bestD = s, d
				}
			}
			if best < 0 {
				best = light
			}
			shardOfCluster[c.id] = int32(best)
			load[best] += c.weight
		}
		if it == iters-1 {
			break
		}
		// Lloyd step: each meta-centroid moves to the heat-weighted mean of
		// its clusters' centroids (empty shards keep their seed).
		sums := make([][]float64, shards)
		weight := make([]float64, shards)
		for s := range sums {
			sums[s] = make([]float64, dim)
		}
		for _, c := range clusters {
			if c.weight == 0 {
				continue
			}
			s := shardOfCluster[c.id]
			cen := ix.Centroid(c.id)
			for j := 0; j < dim; j++ {
				sums[s][j] += c.weight * float64(cen[j])
			}
			weight[s] += c.weight
		}
		for s := 0; s < shards; s++ {
			if weight[s] == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				metas[s][j] = float32(sums[s][j] / weight[s])
			}
		}
	}
	return shardOfCluster
}

// New partitions ix across opt.Shards engines. The profile workload (may be
// empty) drives each shard's layout heat profiling, exactly as in core.New,
// and under AssignKMeans also weights the shard assignment itself (see
// clusterHeat): shards balance expected query-time work, not just points.
// The shared quantizer state (centroids, codebooks, SQT) is referenced, not
// copied; only the inverted lists and codes are split.
func New(ix *ivf.Index, profile dataset.U8Set, opt Options) (*Cluster, error) {
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	nPoints := 0
	for _, list := range ix.Lists {
		for _, id := range list {
			if int(id) >= nPoints {
				nPoints = int(id) + 1
			}
		}
	}
	owner, shardOfCluster := shardOfPoints(ix, nPoints, profile, opt)

	// Local ID spaces: enumerate each shard's points in ascending global ID
	// order, so the local→global table is strictly increasing and the remap
	// preserves the deterministic (dist, id) order.
	localOf := make([]int32, nPoints)
	tables := make([][]int32, opt.Shards)
	for id := 0; id < nPoints; id++ {
		s := owner[id]
		localOf[id] = int32(len(tables[s]))
		tables[s] = append(tables[s], int32(id))
	}

	cl := &Cluster{opt: opt, ix: ix, shards: make([]*Shard, opt.Shards)}
	for s := 0; s < opt.Shards; s++ {
		sub := &ivf.Index{
			Dim: ix.Dim, NList: ix.NList, M: ix.M, CB: ix.CB,
			Centroids:   ix.Centroids,
			CentroidsU8: ix.CentroidsU8,
			PQ:          ix.PQ,
			IntCB:       ix.IntCB,
			OPQ:         ix.OPQ,
			SQT:         ix.SQT,
			Lists:       make([][]int32, ix.NList),
			Codes:       make([][]uint16, ix.NList),
		}
		for c, list := range ix.Lists {
			codes := ix.Codes[c]
			for pos, id := range list {
				if owner[id] != int32(s) {
					continue
				}
				sub.Lists[c] = append(sub.Lists[c], localOf[id])
				sub.Codes[c] = append(sub.Codes[c], codes[pos*ix.M:(pos+1)*ix.M]...)
			}
		}
		if err := core.ValidateRemapTable(tables[s]); err != nil {
			return nil, err
		}
		// Replica 0 builds the deployment (layout, decomposition terms,
		// locator); further replicas share all of that read-only state and
		// only add private simulated hardware and scratch (the backend's
		// engine.Replicable hook) instead of cloning the deployment R times.
		engines := make([]engine.Engine, opt.Replicas)
		eng0, err := core.New(sub, profile, opt.Engine)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d engine: %w", s, err)
		}
		engines[0] = eng0
		for r := 1; r < opt.Replicas; r++ {
			if engines[r], err = eng0.NewReplica(); err != nil {
				return nil, fmt.Errorf("cluster: shard %d replica %d engine: %w", s, r, err)
			}
		}
		cl.shards[s] = &Shard{
			Engine: engines[0], Engines: engines,
			Points: len(tables[s]),
		}
		cl.shards[s].setTable(tables[s])
	}
	cl.shardOfCluster = shardOfCluster

	// Cluster→shard owner map for selective scatter: shard s owns cluster c
	// iff its sub-index holds a non-empty local list for c.
	owners := make([][]int32, ix.NList)
	for s, sh := range cl.shards {
		sub := sh.ivf().Index()
		for c := range sub.Lists {
			if len(sub.Lists[c]) > 0 {
				owners[c] = append(owners[c], int32(s))
			}
		}
	}
	cl.storeOwners(owners)
	cl.loc = cl.shards[0].ivf().Locator()
	return cl, nil
}

// FromEngines assembles a broadcast fleet from pre-built backend engines —
// one replica slice per shard (replica 0 first; all slices the same
// length) — plus each shard's strictly increasing local→global ID table.
// This is how a non-IVF backend (the graph engine, say) runs under the
// same scatter-gather front: each shard serves an arbitrary partition of
// the corpus in a compact local ID space, every query broadcasts to all
// shards (no cluster structure means no selective scatter), and the merged
// result is bit-identical to a single engine built over the union. The
// assembled fleet is immutable and non-durable — live mutation and the
// fleet store need the IVF routing state only New and RecoverCluster
// build — and Options.Engine is ignored (the engines are already built).
func FromEngines(shardEngines [][]engine.Engine, tables [][]int32, opt Options) (*Cluster, error) {
	if len(shardEngines) == 0 {
		return nil, fmt.Errorf("cluster: no shard engines")
	}
	if len(tables) != len(shardEngines) {
		return nil, fmt.Errorf("cluster: %d ID tables for %d shards", len(tables), len(shardEngines))
	}
	switch opt.Assignment {
	case "", AssignHash:
		opt.Assignment = AssignHash
	default:
		return nil, fmt.Errorf("cluster: assignment %q requires the IVF backend (use New)", opt.Assignment)
	}
	opt.Shards = len(shardEngines)
	opt.Replicas = len(shardEngines[0])
	cl := &Cluster{opt: opt, shards: make([]*Shard, len(shardEngines))}
	for s, engines := range shardEngines {
		if len(engines) == 0 || engines[0] == nil {
			return nil, fmt.Errorf("cluster: shard %d has no engine", s)
		}
		if len(engines) != opt.Replicas {
			return nil, fmt.Errorf("cluster: shard %d has %d replicas, shard 0 has %d", s, len(engines), opt.Replicas)
		}
		if d := engines[0].Dim(); d != shardEngines[0][0].Dim() {
			return nil, fmt.Errorf("cluster: shard %d dim %d != shard 0 dim %d", s, d, shardEngines[0][0].Dim())
		}
		if k := engines[0].K(); k != shardEngines[0][0].K() {
			return nil, fmt.Errorf("cluster: shard %d k %d != shard 0 k %d", s, k, shardEngines[0][0].K())
		}
		if err := core.ValidateRemapTable(tables[s]); err != nil {
			return nil, err
		}
		sh := &Shard{Engine: engines[0], Engines: engines, Points: len(tables[s])}
		sh.setTable(tables[s])
		cl.shards[s] = sh
	}
	cl.dim = cl.shards[0].Engine.Dim()
	cl.storeOwners(make([][]int32, 0))
	return cl, nil
}

// partitionProbes splits a front-door probe set into one shard-local probe
// set per shard (every per-shard set spans the full query list; a query a
// shard does not serve simply has an empty list there) and returns each
// query's scatter fan-out. Probe order is preserved per shard, so each
// shard still sees its clusters in ascending-distance order and schedules
// exactly as it would after running CL itself.
func (cl *Cluster) partitionProbes(ps core.ProbeSet, nq int) ([]core.ProbeSet, []int) {
	S := len(cl.shards)
	out := make([]core.ProbeSet, S)
	for s := range out {
		out[s].Offsets = make([]int32, 1, nq+1)
	}
	touched := make([]int, S)
	for s := range touched {
		touched[s] = -1
	}
	fanouts := make([]int, nq)
	owners := cl.ownersView()
	for qi := 0; qi < nq; qi++ {
		for _, c := range ps.Of(qi) {
			for _, s := range owners[c] {
				out[s].Clusters = append(out[s].Clusters, c)
				if touched[s] != qi {
					touched[s] = qi
					fanouts[qi]++
				}
			}
		}
		for s := 0; s < S; s++ {
			out[s].Offsets = append(out[s].Offsets, int32(len(out[s].Clusters)))
		}
	}
	return out, fanouts
}

// Shards exposes the fleet (for inspection, serving and tests).
func (cl *Cluster) Shards() []*Shard { return cl.shards }

// Replicas reports the configured replication factor R.
func (cl *Cluster) Replicas() int { return cl.opt.Replicas }

// Index returns the shared unsharded index the fleet was partitioned from
// (nil for fleets assembled from non-IVF engines via FromEngines).
func (cl *Cluster) Index() *ivf.Index { return cl.ix }

// K reports the per-shard engines' configured neighbors-per-query.
func (cl *Cluster) K() int { return cl.shards[0].Engine.K() }

// Dim reports the vector dimensionality queries must match.
func (cl *Cluster) Dim() int {
	if cl.ix != nil {
		return cl.ix.Dim
	}
	return cl.dim
}

// SearchBatch scatters the query batch across the shards, gathers the
// per-shard partial top-k lists, remaps local IDs to global IDs, and merges
// into the global top-k. Under AssignKMeans this is the selective path: the
// front door runs coarse locate once for the whole batch, partitions the
// probe lists by the cluster→shard owner map, and contacts only shards with
// non-empty probe lists (their engines skip CL entirely via
// SearchBatchProbed); under AssignHash every shard holds a slice of every
// list, so the batch broadcasts and each shard runs its own CL. Results
// (IDs and Items) are bit-identical to a single-engine SearchBatch over the
// unsharded corpus either way; Metrics is the cross-shard parallel view
// (core.Metrics.MergeParallel), with the selective path charging the
// front-door CL cost exactly once (overlapped with shard compute, as the
// engine's own pipeline models it).
func (cl *Cluster) SearchBatch(queries dataset.U8Set) (*core.Result, error) {
	if queries.D != cl.Dim() {
		return nil, fmt.Errorf("cluster: query dim %d != index dim %d", queries.D, cl.Dim())
	}
	results := make([]*core.Result, len(cl.shards))
	errs := make([]error, len(cl.shards))
	var clSim float64
	var wg sync.WaitGroup
	if cl.Selective() {
		start := time.Now()
		ps := cl.loc.Probes(queries)
		perShard, fanouts := cl.partitionProbes(ps, queries.N)
		clSim = cl.loc.CLSeconds(queries.N)
		cl.recordRoute(fanouts, time.Since(start).Seconds(), clSim)
		for s, sh := range cl.shards {
			if len(perShard[s].Clusters) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int, sh *Shard, ps core.ProbeSet) {
				defer wg.Done()
				results[s], errs[s] = sh.ivf().SearchBatchProbed(queries, ps, false)
			}(s, sh, perShard[s])
		}
	} else {
		for s, sh := range cl.shards {
			wg.Add(1)
			go func(s int, sh *Shard) {
				defer wg.Done()
				results[s], errs[s] = sh.Engine.SearchBatch(queries)
			}(s, sh)
		}
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
	}

	out := &core.Result{
		IDs:   make([][]int32, queries.N),
		Items: make([][]topk.Item[uint32], queries.N),
	}
	k := cl.K()
	parts := make([][]topk.Item[uint32], 0, len(cl.shards))
	for qi := 0; qi < queries.N; qi++ {
		parts = parts[:0]
		for s, r := range results {
			if r == nil {
				continue // shard not contacted (empty probe lists)
			}
			items := r.Items[qi]
			core.RemapItems(items, cl.shards[s].GlobalIDs())
			parts = append(parts, items)
		}
		out.IDs[qi], out.Items[qi] = core.MergeShardTopK(k, parts)
	}
	for _, r := range results {
		if r != nil {
			out.Metrics.MergeParallel(&r.Metrics)
		}
	}
	// Front-door CL attribution: charged once for the whole batch, and —
	// exactly as the engine's SimSeconds = Σ max(host, pim+xfer) pipeline
	// model treats the CL stage — overlapped with the scattered shard work
	// rather than added to it.
	if clSim > 0 {
		out.Metrics.Queries = queries.N
		out.Metrics.HostSeconds += clSim
		if clSim > out.Metrics.SimSeconds {
			out.Metrics.SimSeconds = clSim
		}
		if out.Metrics.SimSeconds > 0 {
			out.Metrics.QPS = float64(queries.N) / out.Metrics.SimSeconds
		}
	}
	return out, nil
}
