// Package cluster is DRIM-ANN's scatter-gather sharding layer: it
// partitions one IVF-PQ corpus across S independent core.Engines (one
// simulated PIM system each — the rack-scale deployment the paper targets,
// where a billion-point corpus spans many UPMEM ranks), fans each query
// batch out to every shard in parallel, and merges the per-shard partial
// top-k lists into a global result.
//
// # Partitioning
//
// All shards share the index's quantizers — the coarse centroid directory
// and the PQ codebooks are small and replicated, exactly as every rank of a
// real deployment holds the full (tiny) directory — while the inverted
// lists are partitioned:
//
//   - AssignHash spreads each cluster's points across shards by a
//     deterministic point-ID hash, so every shard holds a statistical 1/S
//     of every inverted list. Per-query work is near-perfectly balanced
//     across shards, at the cost of every shard touching every probed
//     cluster.
//   - AssignKMeans assigns whole coarse (k-means) clusters to shards with
//     a greedy balanced bin-packing over cluster sizes, so each inverted
//     list lives wholly on one shard. Shards skip probed clusters they do
//     not own (their lists are empty locally), which is the cross-rank
//     partition UpANNS-style systems use to cut fan-out traffic.
//
// Each shard's engine runs in a compact local ID space (0..n_s-1): its
// sub-index lists the shard's points under local IDs, and the layer keeps a
// strictly increasing local→global table per shard (plus the per-shard
// global-ID offset of its first point, for the common contiguous prefix).
// Because the table is monotone, the deterministic (dist, id) order of a
// shard's results is preserved by the remap, and because the shards
// partition the corpus and share every quantizer table, the merged global
// top-k is bit-identical to a single unsharded engine's SearchBatch — the
// equivalence suite pins this for S ∈ {1, 2, 7}.
//
// # Metrics
//
// Shards execute concurrently, so the merged core.Metrics is the
// cross-shard parallel view (core.Metrics.MergeParallel): counters sum,
// wall-like durations and per-phase critical paths take the max over
// shards (the fleet is as slow as its slowest rank), and QPS is recomputed
// from the merged totals.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/topk"
)

// Assignment selects the shard-partitioning policy.
type Assignment string

const (
	// AssignHash spreads points across shards by a deterministic ID hash.
	AssignHash Assignment = "hash"
	// AssignKMeans assigns whole coarse clusters to shards, balanced by
	// cluster size (greedy largest-first bin packing).
	AssignKMeans Assignment = "kmeans"
)

// Options configures a Cluster.
type Options struct {
	// Shards is the number of independent partitions; default 2.
	Shards int
	// Replicas is the number of identical engines per shard (R-way
	// replication); default 1. Engine construction is deterministic, so the
	// replicas of a shard answer bit-identically — the serving layer
	// (NewServer) exploits that to route each query to any one replica,
	// hedge stragglers, and mask dead replicas, while the offline
	// Cluster.SearchBatch always runs on replica 0.
	Replicas int
	// Assignment picks the partitioning policy; default AssignHash.
	Assignment Assignment
	// Engine configures every per-shard engine (NumDPUs is per shard, so a
	// fleet of S shards simulates S x NumDPUs devices per replica).
	Engine core.Options
}

func (o *Options) defaults() error {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	switch o.Assignment {
	case "":
		o.Assignment = AssignHash
	case AssignHash, AssignKMeans:
	default:
		return fmt.Errorf("cluster: unknown assignment %q", o.Assignment)
	}
	return nil
}

// Shard is one partition: its replica engines over the shard's sub-index
// plus the monotone local→global ID table.
type Shard struct {
	// Engine is replica 0 — the engine offline scatter-gather uses.
	Engine *core.Engine
	// Engines holds every replica engine (Engines[0] == Engine). Replicas
	// are built from the same sub-index with the same options, so they are
	// interchangeable: any replica's answer is the shard's answer.
	Engines []*core.Engine
	// GlobalID maps shard-local point IDs to corpus-global IDs; strictly
	// increasing, so the deterministic (dist, id) order survives the remap.
	GlobalID []int32
	// Points is the number of corpus points this shard owns.
	Points int
}

// Offset returns the shard's global-ID offset — the corpus ID of its first
// owned point (0 for an empty shard). The full GlobalID table handles
// non-contiguous ownership; the offset is the derived summary callers use
// to identify where a shard's range begins.
func (sh *Shard) Offset() int32 {
	if len(sh.GlobalID) == 0 {
		return 0
	}
	return sh.GlobalID[0]
}

// Cluster is a fleet of shard engines behind one scatter-gather front.
type Cluster struct {
	shards []*Shard
	opt    Options
	ix     *ivf.Index // the shared (unsharded) index; quantizer source
}

// splitmix64 is the deterministic point-ID hash of AssignHash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardOfPoints computes each corpus point's shard under the configured
// assignment. nPoints is the corpus size (max list ID + 1).
func shardOfPoints(ix *ivf.Index, nPoints int, opt Options) []int32 {
	owner := make([]int32, nPoints)
	if opt.Assignment == AssignHash {
		for i := range owner {
			owner[i] = int32(splitmix64(uint64(i)) % uint64(opt.Shards))
		}
		return owner
	}
	// Balanced k-means assignment: whole coarse clusters to shards, largest
	// cluster first onto the currently lightest shard (LPT bin packing).
	type cl struct{ id, size int }
	clusters := make([]cl, ix.NList)
	for c := range clusters {
		clusters[c] = cl{id: c, size: ix.ListLen(c)}
	}
	// Deterministic largest-first order (ties by cluster id).
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].size != clusters[j].size {
			return clusters[i].size > clusters[j].size
		}
		return clusters[i].id < clusters[j].id
	})
	load := make([]int, opt.Shards)
	shardOfCluster := make([]int32, ix.NList)
	for _, c := range clusters {
		best := 0
		for s := 1; s < opt.Shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		shardOfCluster[c.id] = int32(best)
		load[best] += c.size
	}
	for c, list := range ix.Lists {
		for _, id := range list {
			owner[id] = shardOfCluster[c]
		}
	}
	return owner
}

// New partitions ix across opt.Shards engines. The profile workload (may be
// empty) drives each shard's layout heat profiling, exactly as in core.New.
// The shared quantizer state (centroids, codebooks, SQT) is referenced, not
// copied; only the inverted lists and codes are split.
func New(ix *ivf.Index, profile dataset.U8Set, opt Options) (*Cluster, error) {
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	nPoints := 0
	for _, list := range ix.Lists {
		for _, id := range list {
			if int(id) >= nPoints {
				nPoints = int(id) + 1
			}
		}
	}
	owner := shardOfPoints(ix, nPoints, opt)

	// Local ID spaces: enumerate each shard's points in ascending global ID
	// order, so the local→global table is strictly increasing and the remap
	// preserves the deterministic (dist, id) order.
	localOf := make([]int32, nPoints)
	tables := make([][]int32, opt.Shards)
	for id := 0; id < nPoints; id++ {
		s := owner[id]
		localOf[id] = int32(len(tables[s]))
		tables[s] = append(tables[s], int32(id))
	}

	cl := &Cluster{opt: opt, ix: ix, shards: make([]*Shard, opt.Shards)}
	for s := 0; s < opt.Shards; s++ {
		sub := &ivf.Index{
			Dim: ix.Dim, NList: ix.NList, M: ix.M, CB: ix.CB,
			Centroids:   ix.Centroids,
			CentroidsU8: ix.CentroidsU8,
			PQ:          ix.PQ,
			IntCB:       ix.IntCB,
			OPQ:         ix.OPQ,
			SQT:         ix.SQT,
			Lists:       make([][]int32, ix.NList),
			Codes:       make([][]uint16, ix.NList),
		}
		for c, list := range ix.Lists {
			codes := ix.Codes[c]
			for pos, id := range list {
				if owner[id] != int32(s) {
					continue
				}
				sub.Lists[c] = append(sub.Lists[c], localOf[id])
				sub.Codes[c] = append(sub.Codes[c], codes[pos*ix.M:(pos+1)*ix.M]...)
			}
		}
		if err := core.ValidateRemapTable(tables[s]); err != nil {
			return nil, err
		}
		engines := make([]*core.Engine, opt.Replicas)
		for r := range engines {
			eng, err := core.New(sub, profile, opt.Engine)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d replica %d engine: %w", s, r, err)
			}
			engines[r] = eng
		}
		cl.shards[s] = &Shard{
			Engine: engines[0], Engines: engines,
			GlobalID: tables[s], Points: len(tables[s]),
		}
	}
	return cl, nil
}

// Shards exposes the fleet (for inspection, serving and tests).
func (cl *Cluster) Shards() []*Shard { return cl.shards }

// Replicas reports the configured replication factor R.
func (cl *Cluster) Replicas() int { return cl.opt.Replicas }

// Index returns the shared unsharded index the fleet was partitioned from.
func (cl *Cluster) Index() *ivf.Index { return cl.ix }

// K reports the per-shard engines' configured neighbors-per-query.
func (cl *Cluster) K() int { return cl.shards[0].Engine.K() }

// Dim reports the vector dimensionality queries must match.
func (cl *Cluster) Dim() int { return cl.ix.Dim }

// SearchBatch scatters the query batch to every shard in parallel, gathers
// the per-shard partial top-k lists, remaps local IDs to global IDs, and
// merges into the global top-k. Results (IDs and Items) are bit-identical
// to a single-engine SearchBatch over the unsharded corpus; Metrics is the
// cross-shard parallel view (core.Metrics.MergeParallel).
func (cl *Cluster) SearchBatch(queries dataset.U8Set) (*core.Result, error) {
	if queries.D != cl.ix.Dim {
		return nil, fmt.Errorf("cluster: query dim %d != index dim %d", queries.D, cl.ix.Dim)
	}
	results := make([]*core.Result, len(cl.shards))
	errs := make([]error, len(cl.shards))
	var wg sync.WaitGroup
	for s, sh := range cl.shards {
		wg.Add(1)
		go func(s int, sh *Shard) {
			defer wg.Done()
			results[s], errs[s] = sh.Engine.SearchBatch(queries)
		}(s, sh)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
	}

	out := &core.Result{
		IDs:   make([][]int32, queries.N),
		Items: make([][]topk.Item[uint32], queries.N),
	}
	k := cl.K()
	parts := make([][]topk.Item[uint32], len(cl.shards))
	for qi := 0; qi < queries.N; qi++ {
		for s, r := range results {
			items := r.Items[qi]
			core.RemapItems(items, cl.shards[s].GlobalID)
			parts[s] = items
		}
		out.IDs[qi], out.Items[qi] = core.MergeShardTopK(k, parts)
	}
	for _, r := range results {
		out.Metrics.MergeParallel(&r.Metrics)
	}
	return out, nil
}
