// ClusterServer: one online front door over a sharded fleet. Each shard
// gets its own internal/serve micro-batching server (the per-shard batching
// policy is exactly the single-engine one — deadline EWMA, bounded
// admission queue, draining Close); the front door validates once, copies
// the query once, scatters it to every shard server concurrently via the
// no-copy SearchOwned hook, and gathers/merges the partial top-k.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drimann/internal/core"
	"drimann/internal/serve"
	"drimann/internal/topk"
)

// ServerStats is a point-in-time snapshot of a ClusterServer's serving
// metrics: the front door's scatter-gather ledger plus the per-shard
// serve.Stats and their aggregated view.
type ServerStats struct {
	// Completed counts scatter-gather queries answered with results;
	// Canceled counts queries lost to the caller's context (canceled or
	// deadline-exceeded); Rejected counts refusals — bad argument at the
	// front door, or the fleet already closed (serve.ErrClosed); Failed
	// counts queries where a shard returned a genuine engine/launch error.
	Completed uint64
	Canceled  uint64
	Rejected  uint64
	Failed    uint64
	// AvgLatency is the mean front-door latency of completed queries
	// (slowest-shard wall time: a query is done when its last shard is).
	AvgLatency time.Duration

	// Shards holds each shard server's own ledger. Every front-door query
	// appears once in every shard's ledger (the scatter fans it out S ways).
	Shards []serve.Stats
	// Agg sums the per-shard ledgers (so Agg.Enqueued ≈ S x Completed under
	// error-free traffic) — except Agg.Sim, which is the cross-shard
	// parallel metrics view (core.Metrics.MergeParallel): counters sum,
	// wall-like durations are max-over-shards.
	Agg serve.Stats
}

// Response is one query's merged answer from the fleet.
type Response struct {
	// IDs are the global neighbor ids in the deterministic (distance, id)
	// order, truncated to the requested k; Items the scored candidates
	// behind them.
	IDs   []int32
	Items []topk.Item[uint32]
	// Latency is the front-door wall time: the slowest shard's
	// queueing + batching + launch, plus the merge.
	Latency time.Duration
	// MaxShardBatch is the largest micro-batch any shard served this query
	// in (the per-shard BatchSize, maxed over shards).
	MaxShardBatch int
}

// Server is the sharded online serving layer. Construct with NewServer;
// all methods are safe for concurrent use.
type Server struct {
	cl   *Cluster
	srvs []*serve.Server

	completed atomic.Uint64
	canceled  atomic.Uint64
	rejected  atomic.Uint64
	failed    atomic.Uint64
	latencyNS atomic.Int64
}

// NewServer starts one serve.Server per shard (all with the same options)
// behind a scatter-gather front door. The fleet becomes the engines' only
// driver: do not call the shard engines or Cluster.SearchBatch concurrently
// with a live server.
func NewServer(cl *Cluster, opt serve.Options) (*Server, error) {
	if cl == nil {
		return nil, fmt.Errorf("cluster: nil cluster")
	}
	s := &Server{cl: cl, srvs: make([]*serve.Server, len(cl.shards))}
	for i, sh := range cl.shards {
		srv, err := serve.New(sh.Engine, opt)
		if err != nil {
			for _, started := range s.srvs[:i] {
				started.Close()
			}
			return nil, fmt.Errorf("cluster: shard %d server: %w", i, err)
		}
		s.srvs[i] = srv
	}
	return s, nil
}

// Search submits one query to every shard concurrently and blocks until
// the merged answer is ready, ctx is done, or the fleet closes. The
// argument contract matches serve.Server.Search: q must have the index
// dimensionality (copied once at the front door), k <= 0 selects the
// engines' configured K, larger k is an error. If any shard fails the
// whole query fails (serve.ErrClosed is surfaced as such via errors.Is).
func (s *Server) Search(ctx context.Context, q []uint8, k int) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(q) != s.cl.Dim() {
		s.rejected.Add(1)
		return Response{}, fmt.Errorf("cluster: query dim %d != index dim %d", len(q), s.cl.Dim())
	}
	if k <= 0 {
		k = s.cl.K()
	} else if k > s.cl.K() {
		s.rejected.Add(1)
		return Response{}, fmt.Errorf("cluster: k %d exceeds engine K %d", k, s.cl.K())
	}
	// One copy at the front door; the per-shard servers use the no-copy
	// SearchOwned hook against it (immutable until every shard replied).
	owned := append([]uint8(nil), q...)

	t0 := time.Now()
	resps := make([]serve.Response, len(s.srvs))
	errs := make([]error, len(s.srvs))
	var wg sync.WaitGroup
	for i, srv := range s.srvs {
		wg.Add(1)
		go func(i int, srv *serve.Server) {
			defer wg.Done()
			resps[i], errs[i] = srv.SearchOwned(ctx, owned, k)
		}(i, srv)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Contract errors pass through unwrapped so callers can
			// errors.Is them exactly as with a single serve.Server, and the
			// ledger classifies them the way the single-server one does:
			// closed fleets are refusals, lost contexts are cancellations,
			// only genuine shard errors count as failures.
			switch {
			case errors.Is(err, serve.ErrClosed):
				s.rejected.Add(1)
				return Response{}, err
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				s.canceled.Add(1)
				return Response{}, err
			default:
				s.failed.Add(1)
				return Response{}, fmt.Errorf("cluster: shard %d: %w", i, err)
			}
		}
	}

	parts := make([][]topk.Item[uint32], len(resps))
	maxBatch := 0
	for i := range resps {
		core.RemapItems(resps[i].Items, s.cl.shards[i].GlobalID)
		parts[i] = resps[i].Items
		if resps[i].BatchSize > maxBatch {
			maxBatch = resps[i].BatchSize
		}
	}
	ids, items := core.MergeShardTopK(k, parts)
	lat := time.Since(t0)
	s.completed.Add(1)
	s.latencyNS.Add(int64(lat))
	return Response{IDs: ids, Items: items, Latency: lat, MaxShardBatch: maxBatch}, nil
}

// Close seals every shard server (concurrently) and waits for each to
// drain. Safe to call multiple times and concurrently.
func (s *Server) Close() error {
	errs := make([]error, len(s.srvs))
	var wg sync.WaitGroup
	for i, srv := range s.srvs {
		wg.Add(1)
		go func(i int, srv *serve.Server) {
			defer wg.Done()
			errs[i] = srv.Close()
		}(i, srv)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats snapshots the fleet's serving metrics.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Completed: s.completed.Load(),
		Canceled:  s.canceled.Load(),
		Rejected:  s.rejected.Load(),
		Failed:    s.failed.Load(),
		Shards:    make([]serve.Stats, len(s.srvs)),
	}
	if st.Completed > 0 {
		st.AvgLatency = time.Duration(s.latencyNS.Load() / int64(st.Completed))
	}
	var completedSum uint64
	var latSum float64
	var batchSum float64
	for i, srv := range s.srvs {
		ss := srv.Stats()
		st.Shards[i] = ss
		st.Agg.Enqueued += ss.Enqueued
		st.Agg.Completed += ss.Completed
		st.Agg.Canceled += ss.Canceled
		st.Agg.Failed += ss.Failed
		st.Agg.Rejected += ss.Rejected
		st.Agg.Batches += ss.Batches
		st.Agg.QueueDepth += ss.QueueDepth
		completedSum += ss.Completed
		latSum += float64(ss.AvgLatency) * float64(ss.Completed)
		batchSum += ss.MeanBatch * float64(ss.Completed)
		st.Agg.Sim.MergeParallel(&ss.Sim)
	}
	if completedSum > 0 {
		st.Agg.AvgLatency = time.Duration(latSum / float64(completedSum))
		st.Agg.MeanBatch = batchSum / float64(completedSum)
	}
	return st
}

// Metrics returns the cross-shard parallel view of the fleet's aggregated
// simulated engine metrics.
func (s *Server) Metrics() core.Metrics {
	var m core.Metrics
	for _, srv := range s.srvs {
		sm := srv.Metrics()
		m.MergeParallel(&sm)
	}
	return m
}
