// ClusterServer: one online front door over a sharded, replicated fleet.
// Every shard is served by R interchangeable replicas, each a full
// internal/serve micro-batching server over its own engine clone (the
// per-replica batching policy is exactly the single-engine one — deadline
// EWMA, bounded admission queue, draining Close).
//
// The front door validates once, copies the query once, and scatters it to
// every shard concurrently under a per-query derived context. Within a
// shard the query is routed to one replica by power-of-two-choices on the
// replicas' instantaneous load (queued + in-launch, serve.Server.Load); if
// the chosen replica has not answered within a hedge delay derived from the
// sibling replicas' p99 latency digests, the request is re-issued to a
// second replica and the first reply wins (the loser is canceled through
// the per-query context). A replica that fails outright is retried on
// another replica immediately (failover), and a breaker ejects a replica
// after consecutive failures, letting a probe through per cooldown window
// until a success closes it — so a slow, wedged, erroring or dead replica
// is masked instead of dominating the merge, and the query completes with
// the same bit-identical merged result whenever any replica of each shard
// answers. The scatter itself fast-fails: the first shard whose every
// usable replica has failed cancels its siblings' in-flight work and fails
// the query.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/serve"
	"drimann/internal/topk"
)

// ReplicaStats is one replica's serving ledger plus the routing state the
// front door keeps about it.
type ReplicaStats struct {
	serve.Stats
	// Load is the instantaneous queued+in-launch gauge routing compares.
	Load int
	// P99 is the latency-digest estimate hedge delays derive from (0 while
	// the digest is empty).
	P99 time.Duration
	// Ejected reports whether the breaker currently holds the replica out
	// of normal rotation; ConsecutiveFails its current failure streak.
	Ejected          bool
	ConsecutiveFails int
}

// ShardStats groups the replica ledgers of one shard.
type ShardStats struct {
	Replicas []ReplicaStats
}

// Total sums the shard's per-replica serve ledgers (Sim is the replicas'
// parallel metrics view).
func (ss ShardStats) Total() serve.Stats {
	var t serve.Stats
	var latSum, batchSum float64
	for _, rs := range ss.Replicas {
		t.Enqueued += rs.Enqueued
		t.Completed += rs.Completed
		t.Canceled += rs.Canceled
		t.Failed += rs.Failed
		t.Rejected += rs.Rejected
		t.Batches += rs.Batches
		t.QueueDepth += rs.QueueDepth
		t.Inflight += rs.Inflight
		latSum += float64(rs.AvgLatency) * float64(rs.Completed)
		batchSum += rs.MeanBatch * float64(rs.Completed)
		t.Sim.MergeParallel(&rs.Sim)
	}
	if t.Completed > 0 {
		t.AvgLatency = time.Duration(latSum / float64(t.Completed))
		t.MeanBatch = batchSum / float64(t.Completed)
	}
	return t
}

// ServerStats is a point-in-time snapshot of a ClusterServer's serving
// metrics: the front door's scatter-gather ledger, the replication
// machinery's counters, and the per-shard, per-replica serve ledgers.
type ServerStats struct {
	// Completed counts scatter-gather queries answered with results;
	// Canceled counts queries lost to the caller's context (canceled or
	// deadline-exceeded); Rejected counts refusals — bad argument at the
	// front door, or the fleet already closed (serve.ErrClosed); Failed
	// counts queries where every usable replica of some shard returned a
	// genuine engine/launch error.
	Completed uint64
	Canceled  uint64
	Rejected  uint64
	Failed    uint64
	// AvgLatency is the mean front-door latency of completed queries
	// (slowest-shard wall time: a query is done when its last shard is).
	AvgLatency time.Duration

	// Hedged counts hedge attempts issued (the timer fired and a second
	// replica was asked); HedgeWins those whose answer arrived first.
	// Failovers counts attempts re-issued after a replica error;
	// BreakerEjections counts breaker open transitions.
	Hedged           uint64
	HedgeWins        uint64
	Failovers        uint64
	BreakerEjections uint64

	// Route is the cluster's selective-scatter routing view (fan-out
	// distribution, front-door CL cost) — shared with the offline
	// Cluster.SearchBatch accumulator, since both drive the same front door.
	// All zeros under AssignHash (broadcast keeps no routing stats).
	Route RouteStats

	// Shards holds each shard's per-replica ledgers. Under selective
	// scatter a front-door query appears once in exactly one replica of
	// every shard it was routed to (plus hedges/failovers); under broadcast,
	// of every shard.
	Shards []ShardStats
	// Agg sums every replica's ledger — except Agg.Sim, which is the
	// cross-replica parallel metrics view (core.Metrics.MergeParallel):
	// counters sum, wall-like durations are max-over-engines.
	Agg serve.Stats
}

// Response is one query's merged answer from the fleet.
type Response struct {
	// IDs are the global neighbor ids in the deterministic (distance, id)
	// order, truncated to the requested k; Items the scored candidates
	// behind them.
	IDs   []int32
	Items []topk.Item[uint32]
	// Latency is the front-door wall time: the slowest shard's
	// queueing + batching + launch, plus the merge.
	Latency time.Duration
	// MaxShardBatch is the largest micro-batch any shard served this query
	// in (the per-shard BatchSize, maxed over shards).
	MaxShardBatch int
	// Hedged reports whether any shard of this query issued a hedge
	// attempt.
	Hedged bool
	// ShardsContacted is this query's scatter fan-out: how many shards the
	// front door actually sent it to. Under AssignKMeans routing this is
	// the number of shards owning its probed clusters (usually < S); under
	// AssignHash broadcast it is always S.
	ShardsContacted int
}

// Server is the sharded, replicated online serving layer. Construct with
// NewServer or NewServerRouted; all methods are safe for concurrent use.
type Server struct {
	cl     *Cluster
	opt    RouteOptions
	groups [][]*replicaHandle // [shard][replica]

	// servers retains the raw per-shard serve.Servers behind the Replica
	// wrappers: mutations quiesce the real batchers, and the fault-injection
	// wrap hook decorates only the query path.
	servers [][]*serve.Server
	// mutMu serializes fleet-wide mutations: two concurrent exclusiveAll
	// calls parking the same batchers in different orders would deadlock.
	mutMu sync.Mutex

	choice atomic.Uint64 // power-of-two-choices pick stream

	canceled  atomic.Uint64
	rejected  atomic.Uint64
	failed    atomic.Uint64
	hedged    atomic.Uint64
	hedgeWins atomic.Uint64
	failovers atomic.Uint64
	ejections atomic.Uint64

	// Completed and its latency sum snapshot under one mutex so AvgLatency
	// never divides a torn pair.
	doneMu    sync.Mutex
	completed uint64
	latencyNS int64
}

// NewServer starts one serve.Server per shard replica (all with the same
// options) behind a scatter-gather front door with default routing. The
// fleet becomes the engines' only driver: do not call the shard engines or
// Cluster.SearchBatch concurrently with a live server.
func NewServer(cl *Cluster, opt serve.Options) (*Server, error) {
	return NewServerRouted(cl, opt, RouteOptions{})
}

// NewServerRouted is NewServer with explicit replica-routing options
// (hedging policy, breaker thresholds, the fault-injection wrap hook).
func NewServerRouted(cl *Cluster, opt serve.Options, route RouteOptions) (*Server, error) {
	if cl == nil {
		return nil, fmt.Errorf("cluster: nil cluster")
	}
	route.defaults()
	s := &Server{
		cl:      cl,
		opt:     route,
		groups:  make([][]*replicaHandle, len(cl.shards)),
		servers: make([][]*serve.Server, len(cl.shards)),
	}
	s.choice.Store(route.Seed)
	for si, sh := range cl.shards {
		s.groups[si] = make([]*replicaHandle, len(sh.Engines))
		s.servers[si] = make([]*serve.Server, len(sh.Engines))
		for ri, eng := range sh.Engines {
			srv, err := serve.New(eng, opt)
			if err != nil {
				s.closeStarted()
				return nil, fmt.Errorf("cluster: shard %d replica %d server: %w", si, ri, err)
			}
			s.servers[si][ri] = srv
			var rep Replica = srv
			if route.WrapReplica != nil {
				rep = route.WrapReplica(si, ri, rep)
			}
			s.groups[si][ri] = &replicaHandle{rep: rep}
		}
	}
	return s, nil
}

// closeStarted closes whatever replicas a failed constructor already
// started.
func (s *Server) closeStarted() {
	for _, g := range s.groups {
		for _, h := range g {
			if h != nil {
				h.rep.Close()
			}
		}
	}
}

// pick selects a replica for the next attempt. An untried ejected replica
// whose cooldown has elapsed claims the half-open probe and is routed to
// first — probe-back must happen even while healthy siblings could serve
// the query, or an ejected replica never rejoins. Otherwise the pick is
// power-of-two-choices on Load among breaker-closed untried replicas.
// With no closed replica left, lastResort selects any untried replica —
// for the primary attempt and failovers a known-bad replica is still
// better than certain failure — while a hedge (lastResort false) is an
// optimization that declines instead. Reports false when no replica is
// eligible.
func (s *Server) pick(g []*replicaHandle, tried uint64, lastResort bool) (int, bool) {
	n := len(g)
	first := -1 // first untried replica, the last-resort fallback
	cand := make([]int, 0, n)
	now := time.Now()
	for i := 0; i < n; i++ {
		if tried&(1<<uint(i)) != 0 {
			continue
		}
		if first < 0 {
			first = i
		}
		if g[i].brk.closed() {
			cand = append(cand, i)
		} else if g[i].brk.tryProbe(now, s.opt.BreakerCooldown) {
			return i, true
		}
	}
	if first < 0 {
		return 0, false
	}
	switch len(cand) {
	case 0:
		if !lastResort {
			return 0, false
		}
		return first, true
	case 1:
		return cand[0], true
	default:
		// Power of two choices: sample two distinct candidates from the
		// deterministic choice stream, route to the less loaded one (ties
		// alternate so neither replica is systematically preferred).
		r := splitmix64(s.choice.Add(1))
		a := int(r % uint64(len(cand)))
		b := int((r >> 32) % uint64(len(cand)-1))
		if b >= a {
			b++
		}
		ca, cb := cand[a], cand[b]
		la, lb := g[ca].rep.Load(), g[cb].rep.Load()
		switch {
		case la < lb:
			return ca, true
		case lb < la:
			return cb, true
		case r&(1<<16) == 0:
			return ca, true
		default:
			return cb, true
		}
	}
}

// hedgeDelay derives the hedge timer for a query routed to g[primary]: the
// smallest p99 estimate among the sibling replicas the hedge could go to
// (if a sibling is likely to answer within d, waiting longer than d on a
// silent primary is wasted tail), clamped to [HedgeMin, HedgeMax], with
// HedgeGuess standing in while the digests are empty.
func (s *Server) hedgeDelay(g []*replicaHandle, primary int) time.Duration {
	best := time.Duration(0)
	for i, h := range g {
		if i == primary || !h.brk.closed() {
			continue
		}
		if p := h.dig.P99(); p > 0 && (best == 0 || p < best) {
			best = p
		}
	}
	if best == 0 {
		best = s.opt.HedgeGuess
	}
	if best < s.opt.HedgeMin {
		best = s.opt.HedgeMin
	}
	if best > s.opt.HedgeMax {
		best = s.opt.HedgeMax
	}
	return best
}

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	idx   int
	resp  serve.Response
	err   error
	dur   time.Duration
	hedge bool
}

// searchShard answers one query on one shard: route to a replica, hedge if
// it stalls, fail over if it errors, and return the first reply. With a
// non-nil probes list the attempt goes through the replica's
// SearchProbedOwned (selective scatter: the front door already ran CL);
// nil probes means the broadcast path, where the replica's engine locates
// for itself. Loser attempts are canceled through the attempt context when
// the function returns. An error return means the caller's context died,
// the fleet closed, or every usable replica failed.
func (s *Server) searchShard(qctx context.Context, g []*replicaHandle, q []uint8, k int, probes []int32) (serve.Response, bool, error) {
	actx, acancel := context.WithCancel(qctx)
	defer acancel()

	results := make(chan attemptResult, len(g))
	var tried uint64
	inflight := 0
	launch := func(idx int, hedge bool) {
		tried |= 1 << uint(idx)
		inflight++
		go func() {
			t0 := time.Now()
			var resp serve.Response
			var err error
			if probes != nil {
				resp, err = g[idx].rep.SearchProbedOwned(actx, q, k, probes)
			} else {
				resp, err = g[idx].rep.SearchOwned(actx, q, k)
			}
			results <- attemptResult{idx: idx, resp: resp, err: err, dur: time.Since(t0), hedge: hedge}
		}()
	}

	primary, ok := s.pick(g, tried, true)
	if !ok {
		return serve.Response{}, false, fmt.Errorf("cluster: shard has no replicas")
	}
	launch(primary, false)

	hedgedAny := false
	var hedgeC <-chan time.Time
	if !s.opt.DisableHedge && len(g) > 1 {
		timer := time.NewTimer(s.hedgeDelay(g, primary))
		defer timer.Stop()
		hedgeC = timer.C
	}

	var lastErr error
	for {
		select {
		case <-qctx.Done():
			return serve.Response{}, hedgedAny, qctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if idx, ok := s.pick(g, tried, false); ok {
				s.hedged.Add(1)
				hedgedAny = true
				launch(idx, true)
			}
		case r := <-results:
			inflight--
			if r.err == nil {
				g[r.idx].dig.record(r.dur)
				g[r.idx].brk.success()
				if r.hedge {
					s.hedgeWins.Add(1)
				}
				return r.resp, hedgedAny, nil
			}
			if err := qctx.Err(); err != nil {
				return serve.Response{}, hedgedAny, err
			}
			if errors.Is(r.err, serve.ErrClosed) {
				// The fleet is shutting down; no replica will do better.
				return serve.Response{}, hedgedAny, r.err
			}
			// Genuine replica failure: charge the breaker and fail over to
			// an untried replica immediately.
			if g[r.idx].brk.fail(s.opt.BreakerFailures, s.opt.BreakerCooldown, time.Now()) {
				s.ejections.Add(1)
			}
			lastErr = r.err
			if idx, ok := s.pick(g, tried, true); ok {
				s.failovers.Add(1)
				launch(idx, false)
			} else if inflight == 0 {
				return serve.Response{}, hedgedAny, lastErr
			}
		}
	}
}

// Search submits one query to every shard concurrently — each shard routes
// it to one of its replicas, hedging and failing over as needed — and
// blocks until the merged answer is ready, ctx is done, or the fleet
// closes. The argument contract matches serve.Server.Search: q must have
// the index dimensionality (copied once at the front door), k <= 0 selects
// the engines' configured K, larger k is an error. The scatter fast-fails:
// the first shard to fail cancels its siblings' in-flight work through the
// per-query derived context (serve.ErrClosed is surfaced as such via
// errors.Is).
func (s *Server) Search(ctx context.Context, q []uint8, k int) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(q) != s.cl.Dim() {
		s.rejected.Add(1)
		return Response{}, fmt.Errorf("cluster: query dim %d != index dim %d", len(q), s.cl.Dim())
	}
	if k <= 0 {
		k = s.cl.K()
	} else if k > s.cl.K() {
		s.rejected.Add(1)
		return Response{}, fmt.Errorf("cluster: k %d exceeds engine K %d", k, s.cl.K())
	}
	// One copy at the front door; the per-replica servers use the no-copy
	// SearchOwned hook against it (immutable until the last reply).
	owned := append([]uint8(nil), q...)

	t0 := time.Now()

	// Selective scatter (AssignKMeans): run coarse locate once here,
	// partition the probe list by the cluster→shard owner map, and contact
	// only the owning shards — each replica then skips its CL stage via
	// SearchProbedOwned. Under AssignHash perShard stays nil and the query
	// broadcasts with per-replica CL, as before.
	var perShard [][]int32
	contacted := len(s.groups)
	if s.cl.Selective() {
		loc := s.cl.Locator()
		probes := make([]topk.Item[uint32], loc.NProbe())
		counts := make([]int, 1)
		loc.LocateBatch(dataset.U8Set{N: 1, D: s.cl.Dim(), Data: owned}, 0, 1, probes, counts)
		perShard = make([][]int32, len(s.groups))
		contacted = 0
		for _, p := range probes[:counts[0]] {
			for _, sh := range s.cl.OwnerShards(p.ID) {
				if perShard[sh] == nil {
					contacted++
				}
				perShard[sh] = append(perShard[sh], p.ID)
			}
		}
		s.cl.recordRoute([]int{contacted}, time.Since(t0).Seconds(), loc.CLSeconds(1))
		if contacted == 0 {
			// Every probed cluster is empty fleet-wide: the answer is empty,
			// no shard needs to hear about it. Non-nil empty IDs and nil Items
			// match the single engine's empty-result convention bit for bit.
			lat := time.Since(t0)
			s.doneMu.Lock()
			s.completed++
			s.latencyNS += int64(lat)
			s.doneMu.Unlock()
			return Response{IDs: []int32{}, Latency: lat}, nil
		}
	}

	// The per-query context: canceling it aborts every in-flight replica
	// attempt of every shard, which is how the first failing shard stops
	// its siblings from finishing work nobody will merge.
	qctx, qcancel := context.WithCancel(ctx)
	defer qcancel()

	type shardResult struct {
		shard  int
		resp   serve.Response
		hedged bool
		err    error
	}
	results := make(chan shardResult, len(s.groups))
	for si, g := range s.groups {
		if perShard != nil && perShard[si] == nil {
			continue // selective: no probed cluster lives on this shard
		}
		var probes []int32
		if perShard != nil {
			probes = perShard[si]
		}
		go func(si int, g []*replicaHandle, probes []int32) {
			resp, hedged, err := s.searchShard(qctx, g, owned, k, probes)
			results <- shardResult{shard: si, resp: resp, hedged: hedged, err: err}
		}(si, g, probes)
	}

	resps := make([]serve.Response, len(s.groups))
	answered := make([]bool, len(s.groups))
	hedgedAny := false
	for i := 0; i < contacted; i++ {
		r := <-results
		if r.err == nil {
			resps[r.shard] = r.resp
			answered[r.shard] = true
			hedgedAny = hedgedAny || r.hedged
			continue
		}
		// Fast-fail: cancel sibling shards' in-flight work and classify.
		// Contract errors pass through unwrapped so callers can errors.Is
		// them exactly as with a single serve.Server: closed fleets are
		// refusals, lost contexts are cancellations, only genuine replica
		// errors count as failures.
		qcancel()
		switch {
		case errors.Is(r.err, serve.ErrClosed):
			s.rejected.Add(1)
			return Response{}, r.err
		case errors.Is(r.err, context.Canceled), errors.Is(r.err, context.DeadlineExceeded):
			s.canceled.Add(1)
			return Response{}, r.err
		default:
			s.failed.Add(1)
			return Response{}, fmt.Errorf("cluster: shard %d: %w", r.shard, r.err)
		}
	}

	parts := make([][]topk.Item[uint32], 0, contacted)
	maxBatch := 0
	for i := range resps {
		if !answered[i] {
			continue
		}
		core.RemapItems(resps[i].Items, s.cl.shards[i].GlobalIDs())
		parts = append(parts, resps[i].Items)
		if resps[i].BatchSize > maxBatch {
			maxBatch = resps[i].BatchSize
		}
	}
	ids, items := core.MergeShardTopK(k, parts)
	lat := time.Since(t0)
	s.doneMu.Lock()
	s.completed++
	s.latencyNS += int64(lat)
	s.doneMu.Unlock()
	return Response{
		IDs: ids, Items: items, Latency: lat,
		MaxShardBatch: maxBatch, Hedged: hedgedAny, ShardsContacted: contacted,
	}, nil
}

// exclusiveAll parks every replica batcher in the fleet at a launch
// boundary simultaneously (rendezvous through each serve.Server.Exclusive),
// runs fn while all engines are quiescent, then releases them. Replicas of
// one shard share their engine's index and placement, so a mutation is only
// safe once every batcher that could launch over that state is parked. If
// any replica has closed, fn is skipped and ErrClosed returned; the batchers
// that did park are released unharmed.
func (s *Server) exclusiveAll(fn func() error) error {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	n := 0
	for _, g := range s.servers {
		n += len(g)
	}
	acks := make(chan bool, n)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for _, g := range s.servers {
		for _, srv := range g {
			wg.Add(1)
			go func(srv *serve.Server) {
				defer wg.Done()
				err := srv.Exclusive(func() error {
					acks <- true
					<-release
					return nil
				})
				if err != nil {
					// ErrClosed: Exclusive never accepted fn, so no true ack
					// was (or will be) sent for this server.
					acks <- false
				}
			}(srv)
		}
	}
	ok := true
	for i := 0; i < n; i++ {
		if !<-acks {
			ok = false
		}
	}
	var err error
	if ok {
		err = fn()
	} else {
		err = serve.ErrClosed
	}
	close(release)
	wg.Wait()
	return err
}

// Insert adds points to the live fleet (Cluster.Insert semantics: global
// ids, build-identical shard routing, owner map updated) with every replica
// batcher quiesced for the duration — queries admitted before the call are
// answered before or after the mutation, never during, and every query
// batched after the call returns sees the new points.
func (s *Server) Insert(vecs dataset.U8Set, ids []int32) error {
	return s.exclusiveAll(func() error { return s.cl.Insert(vecs, ids) })
}

// Delete removes global ids from the live fleet under the same fleet-wide
// quiescence as Insert.
func (s *Server) Delete(ids []int32) error {
	return s.exclusiveAll(func() error { return s.cl.Delete(ids) })
}

// Compact folds every shard's mutation overlay back into its packed layout
// (Cluster.Compact) under fleet-wide quiescence; from the next batch on,
// merged results are bit-identical to a freshly built fleet.
func (s *Server) Compact() error {
	return s.exclusiveAll(func() error { return s.cl.Compact() })
}

// Checkpoint rotates every shard's durable {snapshot, WAL} generation
// (Cluster.Checkpoint) under fleet-wide quiescence, without compacting.
// No-op when the cluster has no fleet store attached.
func (s *Server) Checkpoint() error {
	return s.exclusiveAll(func() error { return s.cl.Checkpoint() })
}

// Close seals every replica server (concurrently) and waits for each to
// drain. Safe to call multiple times and concurrently.
func (s *Server) Close() error {
	var wg sync.WaitGroup
	errs := make([]error, len(s.groups))
	for si, g := range s.groups {
		wg.Add(1)
		go func(si int, g []*replicaHandle) {
			defer wg.Done()
			var first error
			for _, h := range g {
				if err := h.rep.Close(); err != nil && first == nil {
					first = err
				}
			}
			errs[si] = first
		}(si, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats snapshots the fleet's serving metrics.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Canceled:         s.canceled.Load(),
		Rejected:         s.rejected.Load(),
		Failed:           s.failed.Load(),
		Hedged:           s.hedged.Load(),
		HedgeWins:        s.hedgeWins.Load(),
		Failovers:        s.failovers.Load(),
		BreakerEjections: s.ejections.Load(),
		Shards:           make([]ShardStats, len(s.groups)),
	}
	st.Route = s.cl.Stats().Route
	s.doneMu.Lock()
	st.Completed = s.completed
	if s.completed > 0 {
		st.AvgLatency = time.Duration(s.latencyNS / int64(s.completed))
	}
	s.doneMu.Unlock()
	var completedSum uint64
	var latSum, batchSum float64
	for si, g := range s.groups {
		st.Shards[si].Replicas = make([]ReplicaStats, len(g))
		for ri, h := range g {
			rs := ReplicaStats{
				Stats: h.rep.Stats(),
				Load:  h.rep.Load(),
				P99:   h.dig.P99(),
			}
			rs.ConsecutiveFails, rs.Ejected = h.brk.snapshot()
			st.Shards[si].Replicas[ri] = rs

			st.Agg.Enqueued += rs.Enqueued
			st.Agg.Completed += rs.Completed
			st.Agg.Canceled += rs.Canceled
			st.Agg.Failed += rs.Failed
			st.Agg.Rejected += rs.Rejected
			st.Agg.Batches += rs.Batches
			st.Agg.QueueDepth += rs.QueueDepth
			st.Agg.Inflight += rs.Inflight
			completedSum += rs.Completed
			latSum += float64(rs.AvgLatency) * float64(rs.Completed)
			batchSum += rs.MeanBatch * float64(rs.Completed)
			st.Agg.Sim.MergeParallel(&rs.Sim)
		}
	}
	if completedSum > 0 {
		st.Agg.AvgLatency = time.Duration(latSum / float64(completedSum))
		st.Agg.MeanBatch = batchSum / float64(completedSum)
	}
	return st
}

// Metrics returns the cross-engine parallel view of the fleet's aggregated
// simulated engine metrics.
func (s *Server) Metrics() core.Metrics {
	var m core.Metrics
	for _, g := range s.groups {
		for _, h := range g {
			sm := h.rep.Stats().Sim
			m.MergeParallel(&sm)
		}
	}
	return m
}
