// Replica routing: the per-replica state the sharded Server routes with —
// a latency digest (the p99 estimate hedge timers derive from), a
// consecutive-failure breaker (eject and probe back), and the Replica
// contract itself, which is what fault injection wraps.

package cluster

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drimann/internal/serve"
)

// Replica is one interchangeable copy of a shard's serving stack. A
// *serve.Server satisfies it; internal/fault wraps one with injectable
// wedge/delay/error/kill behaviors. The contract is serve.Server's:
// SearchOwned honors ctx, the q buffer stays frozen while the replica
// lives, Load is the instantaneous queued+in-launch gauge routing compares.
type Replica interface {
	SearchOwned(ctx context.Context, q []uint8, k int) (serve.Response, error)
	// SearchProbedOwned is the selective-scatter entry point: the front door
	// already resolved this query's probe list (shard-local cluster IDs,
	// ascending distance order), so the replica's engine skips its CL stage.
	// probes is frozen under the same contract as q.
	SearchProbedOwned(ctx context.Context, q []uint8, k int, probes []int32) (serve.Response, error)
	Load() int
	Stats() serve.Stats
	Close() error
}

var _ Replica = (*serve.Server)(nil)

// RouteOptions configures replica routing, hedging and the breaker; zero
// values select defaults. It only matters when the cluster was built with
// Replicas > 1 (a single replica leaves nothing to route between).
type RouteOptions struct {
	// DisableHedge turns hedged requests off: a query waits for its chosen
	// replica no matter how slow it is (the breaker still ejects replicas
	// that fail outright).
	DisableHedge bool
	// HedgeMin / HedgeMax clamp the p99-derived hedge delay. Defaults
	// 250µs / 100ms.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// HedgeGuess seeds the hedge delay while a replica's latency digest is
	// still empty. Default 2ms.
	HedgeGuess time.Duration
	// BreakerFailures is the consecutive-failure count that ejects a
	// replica. Default 3.
	BreakerFailures int
	// BreakerCooldown is how long an ejected replica sits out before the
	// router lets one probe request through (half-open). Default 250ms.
	BreakerCooldown time.Duration
	// Seed feeds the deterministic power-of-two-choices pick stream.
	Seed uint64
	// WrapReplica, when set, interposes on each replica as the server is
	// built — the fault-injection hook (shard and replica identify the
	// slot). Returning r unchanged is valid.
	WrapReplica func(shard, replica int, r Replica) Replica
}

func (o *RouteOptions) defaults() {
	if o.HedgeMin <= 0 {
		o.HedgeMin = 250 * time.Microsecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = 100 * time.Millisecond
	}
	if o.HedgeMax < o.HedgeMin {
		o.HedgeMax = o.HedgeMin
	}
	if o.HedgeGuess <= 0 {
		o.HedgeGuess = 2 * time.Millisecond
	}
	if o.BreakerFailures <= 0 {
		o.BreakerFailures = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// digestWindow is the per-replica latency sample window. Small enough that
// the p99 estimate tracks regime changes (a replica that turns slow) within
// ~a hundred requests, large enough that one outlier is not the p99.
const digestWindow = 128

// latDigest estimates a replica's p99 completion latency from a sliding
// window of samples. Recording is O(1) amortized: the nearest-rank p99 of
// the window is recomputed every 16 samples and cached atomically, so the
// hot routing path reads one atomic.
type latDigest struct {
	mu   sync.Mutex
	ring [digestWindow]int64
	n    int
	p99  atomic.Int64
}

func (d *latDigest) record(lat time.Duration) {
	d.mu.Lock()
	d.ring[d.n%digestWindow] = int64(lat)
	d.n++
	// Recompute eagerly while the window fills so the first samples replace
	// the cold-start guess quickly, then settle to every 16th sample.
	if d.n <= 16 || d.n%16 == 0 {
		filled := d.n
		if filled > digestWindow {
			filled = digestWindow
		}
		buf := make([]int64, filled)
		copy(buf, d.ring[:filled])
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		idx := (filled*99+99)/100 - 1 // nearest-rank p99, clamped
		if idx < 0 {
			idx = 0
		}
		if idx >= filled {
			idx = filled - 1
		}
		d.p99.Store(buf[idx])
	}
	d.mu.Unlock()
}

// P99 returns the cached estimate, or 0 while no sample has been recorded.
func (d *latDigest) P99() time.Duration { return time.Duration(d.p99.Load()) }

// breaker ejects a replica after consecutive genuine failures and lets one
// probe through per cooldown window until a success closes it again.
type breaker struct {
	mu        sync.Mutex
	fails     int
	openUntil time.Time // zero while closed
}

// closed reports whether the breaker admits traffic freely.
func (b *breaker) closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openUntil.IsZero()
}

// tryProbe claims the half-open probe of an open breaker whose cooldown has
// elapsed. Claiming starts the next cooldown window, so at most one probe is
// admitted per window no matter what becomes of it — an abandoned probe (its
// query's context died before the attempt resolved) simply lets the next
// window probe again instead of wedging the breaker half-open forever.
func (b *breaker) tryProbe(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() || now.Before(b.openUntil) {
		return false
	}
	b.openUntil = now.Add(cooldown)
	return true
}

// success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails, b.openUntil = 0, time.Time{}
	b.mu.Unlock()
}

// fail records a genuine replica failure; crossing the threshold (or
// failing a probe) re-opens the breaker for cooldown. Reports whether this
// call newly ejected the replica.
func (b *breaker) fail(threshold int, cooldown time.Duration, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= threshold && b.openUntil.IsZero() {
		b.openUntil = now.Add(cooldown)
		return true
	}
	if !b.openUntil.IsZero() {
		// Already open (a failed probe): push the cooldown out again.
		b.openUntil = now.Add(cooldown)
	}
	return false
}

// snapshot reports (consecutive fails, ejected) for Stats.
func (b *breaker) snapshot() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails, !b.openUntil.IsZero()
}

// replicaHandle is one routable replica: the serving stack plus the routing
// state the front door keeps about it.
type replicaHandle struct {
	rep Replica
	dig latDigest
	brk breaker
}
