package cluster_test

import (
	"fmt"
	"reflect"
	"testing"

	"drimann/internal/cluster"
	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/testutil"
	"drimann/internal/topk"
)

// testFixture builds the shared corpus + index every cluster test
// partitions: clustered synthetic data with skewed queries, so both
// assignment policies see uneven inverted lists.
func testFixture(t testing.TB, n, queries int) (*ivf.Index, *dataset.Synth) {
	t.Helper()
	ix, s := testutil.Fixture(t, testutil.FixtureSpec{
		Name: "cluster", N: n, D: 64, Queries: queries,
		NumClusters: 40, Seed: 7, Noise: 9,
		NList: 64, M: 16, CB: 256, KMeansIters: 6, TrainSample: 3000,
		BuildSeed: 7,
	})
	return ix, s
}

func engineOpts() core.Options {
	o := core.DefaultOptions()
	o.NumDPUs = 16
	o.NProbe = 8
	o.K = 10
	return o
}

// TestClusterEquivalence is the acceptance property of the sharding layer:
// for S ∈ {1, 2, 7} shards under both assignment policies, with the flat CL
// scan and the TreeCL descent, the merged scatter-gather top-k (IDs and
// Items) is bit-identical to a single-engine SearchBatch over the unsharded
// corpus. This holds because every shard shares the full quantizer state
// (so the front door — or each shard under broadcast — locates the same
// probe set and computes the same integer distances), the shards partition
// the scanned points, the local→global ID tables are monotone
// (order-preserving), and the global top-k of a partitioned multiset is the
// merge of the per-part top-k lists. Under kmeans this exercises the
// selective-scatter path (front-door CL + SearchBatchProbed per shard);
// under hash, the broadcast fallback.
func TestClusterEquivalence(t *testing.T) {
	ix, s := testFixture(t, 6000, 64)
	for _, branch := range []int{0, 8} {
		opts := engineOpts()
		opts.TreeCLBranch = branch
		single, err := core.New(ix, s.Queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := single.SearchBatch(s.Queries)
		if err != nil {
			t.Fatal(err)
		}

		for _, shards := range []int{1, 2, 7} {
			for _, assign := range []cluster.Assignment{cluster.AssignHash, cluster.AssignKMeans} {
				t.Run(fmt.Sprintf("S=%d/%s/treecl=%d", shards, assign, branch), func(t *testing.T) {
					cl, err := cluster.New(ix, s.Queries, cluster.Options{
						Shards: shards, Assignment: assign, Engine: opts,
					})
					if err != nil {
						t.Fatal(err)
					}
					got, err := cl.SearchBatch(s.Queries)
					if err != nil {
						t.Fatal(err)
					}
					for qi := 0; qi < s.Queries.N; qi++ {
						if !reflect.DeepEqual(got.IDs[qi], ref.IDs[qi]) {
							t.Fatalf("query %d IDs diverge:\n  cluster %v\n  single  %v",
								qi, got.IDs[qi], ref.IDs[qi])
						}
						if !reflect.DeepEqual(got.Items[qi], ref.Items[qi]) {
							t.Fatalf("query %d Items diverge:\n  cluster %v\n  single  %v",
								qi, got.Items[qi], ref.Items[qi])
						}
					}
					// Cross-shard metrics view: the fleet scanned exactly the
					// single engine's points (the shards partition the corpus),
					// and the merged wall-clock is the slowest shard, never the
					// sum.
					if got.Metrics.PointsScanned != ref.Metrics.PointsScanned {
						t.Fatalf("points scanned %d != single %d",
							got.Metrics.PointsScanned, ref.Metrics.PointsScanned)
					}
					if got.Metrics.Queries != s.Queries.N {
						t.Fatalf("merged Queries = %d, want %d", got.Metrics.Queries, s.Queries.N)
					}
					if got.Metrics.SimSeconds <= 0 {
						t.Fatal("merged SimSeconds not positive")
					}
					// Routing stats: the selective path records every query
					// with fan-out in [1, S]; broadcast records nothing.
					st := cl.Stats()
					if assign == cluster.AssignKMeans {
						if !st.Selective {
							t.Fatal("kmeans fleet should report Selective")
						}
						if st.Route.RoutedQueries != s.Queries.N {
							t.Fatalf("routed %d queries, want %d", st.Route.RoutedQueries, s.Queries.N)
						}
						if mf := st.Route.MeanFanout(); mf <= 0 || mf > float64(shards) {
							t.Fatalf("mean fan-out %v outside (0, %d]", mf, shards)
						}
						if st.Route.MaxFanout > shards {
							t.Fatalf("max fan-out %d > %d shards", st.Route.MaxFanout, shards)
						}
						if st.Route.FrontCLSimSeconds <= 0 {
							t.Fatal("front-door CL sim cost not recorded")
						}
					} else if st.Route.RoutedQueries != 0 {
						t.Fatalf("broadcast fleet recorded %d routed queries", st.Route.RoutedQueries)
					}
				})
			}
		}
	}
}

// TestClusterPartition pins the partition invariants: every corpus point is
// owned by exactly one shard, local→global tables are strictly increasing,
// and kmeans assignment keeps whole coarse clusters on one shard.
func TestClusterPartition(t *testing.T) {
	ix, s := testFixture(t, 4000, 16)
	for _, assign := range []cluster.Assignment{cluster.AssignHash, cluster.AssignKMeans} {
		t.Run(string(assign), func(t *testing.T) {
			cl, err := cluster.New(ix, s.Queries, cluster.Options{
				Shards: 3, Assignment: assign, Engine: engineOpts(),
			})
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int32]int)
			total := 0
			for si, sh := range cl.Shards() {
				tbl := sh.GlobalIDs()
				if err := core.ValidateRemapTable(tbl); err != nil {
					t.Fatalf("shard %d: %v", si, err)
				}
				if sh.Points != len(tbl) {
					t.Fatalf("shard %d Points %d != table %d", si, sh.Points, len(tbl))
				}
				if sh.Points > 0 && sh.Offset() != tbl[0] {
					t.Fatalf("shard %d Offset %d != first global %d", si, sh.Offset(), tbl[0])
				}
				for _, g := range tbl {
					if prev, dup := seen[g]; dup {
						t.Fatalf("point %d owned by shards %d and %d", g, prev, si)
					}
					seen[g] = si
				}
				total += sh.Points
			}
			if total != s.Base.N {
				t.Fatalf("shards own %d points, corpus has %d", total, s.Base.N)
			}
			if assign == cluster.AssignKMeans {
				for c, list := range ix.Lists {
					if len(list) == 0 {
						continue
					}
					owner := seen[list[0]]
					for _, id := range list[1:] {
						if seen[id] != owner {
							t.Fatalf("kmeans: cluster %d split across shards %d and %d",
								c, owner, seen[id])
						}
					}
				}
			}
		})
	}
}

// TestMergeShardTopK exercises the merge helper directly: interleaved
// sorted partials, truncation, empty parts, and fewer-than-k totals.
func TestMergeShardTopK(t *testing.T) {
	it := func(id int32, d uint32) topk.Item[uint32] { return topk.Item[uint32]{ID: id, Dist: d} }
	parts := [][]topk.Item[uint32]{
		{it(4, 1), it(0, 5), it(8, 9)},
		{},
		{it(2, 2), it(6, 5), it(10, 7)},
	}
	ids, items := core.MergeShardTopK(4, parts)
	wantIDs := []int32{4, 2, 0, 6}
	if !reflect.DeepEqual(ids, wantIDs) {
		t.Fatalf("merged ids %v, want %v", ids, wantIDs)
	}
	for i, id := range ids {
		if items[i].ID != id {
			t.Fatalf("items[%d].ID %d != ids[%d] %d", i, items[i].ID, i, id)
		}
	}
	// Tie on distance across parts: smaller ID wins (0 before 6 at dist 5).
	if items[2].Dist != 5 || items[2].ID != 0 {
		t.Fatalf("tie-break wrong: %+v", items[2])
	}
	ids, _ = core.MergeShardTopK(10, parts)
	if len(ids) != 6 {
		t.Fatalf("undersized merge returned %d ids, want all 6", len(ids))
	}
}

// TestMetricsMergeParallel pins the cross-shard metrics semantics: sums for
// counters, max for wall-like durations, recomputed QPS.
func TestMetricsMergeParallel(t *testing.T) {
	a := core.Metrics{Queries: 100, SimSeconds: 2, HostSeconds: 1, PIMSeconds: 2,
		Launches: 3, PointsScanned: 500, ImbalanceSum: 3.3}
	b := core.Metrics{Queries: 100, SimSeconds: 5, HostSeconds: 4, PIMSeconds: 1,
		Launches: 2, PointsScanned: 700, ImbalanceSum: 2.2}
	var m core.Metrics
	m.MergeParallel(&a)
	m.MergeParallel(&b)
	if m.Queries != 100 {
		t.Fatalf("Queries %d, want max 100", m.Queries)
	}
	if m.SimSeconds != 5 || m.HostSeconds != 4 || m.PIMSeconds != 2 {
		t.Fatalf("wall-like fields not max-merged: %+v", m)
	}
	if m.Launches != 5 || m.PointsScanned != 1200 {
		t.Fatalf("counters not summed: %+v", m)
	}
	if want := 100.0 / 5.0; m.QPS != want {
		t.Fatalf("QPS %v, want %v", m.QPS, want)
	}
	if got := m.AvgImbalance(); got != (3.3+2.2)/5 {
		t.Fatalf("AvgImbalance %v", got)
	}
}

// TestClusterDimMismatch checks front-door argument validation.
func TestClusterDimMismatch(t *testing.T) {
	ix, s := testFixture(t, 2000, 4)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{Shards: 2, Engine: engineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	bad := dataset.U8Set{N: 1, D: 8, Data: make([]uint8, 8)}
	if _, err := cl.SearchBatch(bad); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}
