// Live mutability across the fleet: Insert routes each new point to a shard
// through the same assignment the build used (the retained cluster→shard map
// under AssignKMeans, the point-ID hash under AssignHash), Delete routes by
// the global→local table, and Compact renumbers every shard's local ID space
// back to the dense monotone layout a fresh partitioning would produce, so
// post-compaction results are bit-identical to a freshly built fleet over
// the same logical corpus.
//
// Between compactions the layer promises findability, not bit-identity: an
// inserted point's shard-local id is appended to the end of the ID table, so
// the table can lose monotonicity until Compact restores it. The owner map
// and the per-shard tables are copy-on-write (see Cluster/Shard), which is
// what lets the routed server keep serving concurrently — provided every
// shard engine is quiesced around the actual engine mutation, which
// cluster.Server does at batch boundaries.

package cluster

import (
	"errors"
	"fmt"
	"sort"

	"drimann/internal/dataset"
)

// ErrUnsupported is returned by Insert/Delete/Compact and CreateFleetStore
// when the fleet was assembled from a backend without the IVF routing
// state live mutation and durability need (see FromEngines).
var ErrUnsupported = errors.New("cluster: backend does not support this operation")

// requireIVF rejects mutation/durability calls on fleets whose backend
// lacks the extended IVF surface. Callers hold cl.mu.
func (cl *Cluster) requireIVF() error {
	if cl.ix == nil || cl.shards[0].ivf() == nil {
		return fmt.Errorf("cluster: fleet over backend %T: %w", cl.shards[0].Engine, ErrUnsupported)
	}
	return nil
}

// ensureG2L lazily builds the per-shard global→local maps (O(N) once) and
// the front-door encode scratch. Callers hold cl.mu.
func (cl *Cluster) ensureG2L() {
	if cl.g2l != nil {
		return
	}
	cl.g2l = make([]map[int32]int32, len(cl.shards))
	for s, sh := range cl.shards {
		tbl := sh.GlobalIDs()
		m := make(map[int32]int32, len(tbl))
		for local, g := range tbl {
			m[g] = int32(local)
		}
		cl.g2l[s] = m
	}
	cl.esc = cl.ix.NewEncodeScratch()
}

// findShard returns the shard owning live global id, or -1. Callers hold
// cl.mu and have run ensureG2L.
func (cl *Cluster) findShard(id int32) int {
	for s := range cl.g2l {
		if _, ok := cl.g2l[s][id]; ok {
			return s
		}
	}
	return -1
}

// pendingInserts accumulates one shard's applied insert sub-batch — the
// WAL record a durable fleet writes once the batch finishes (or fails
// part-way: the applied prefix is still logged, so the WAL always
// reproduces acknowledged engine state).
type pendingInserts struct {
	ids  []int32
	vecs []byte
}

// Insert adds vecs[i] under global ids[i]. Under AssignKMeans each point
// lands on the shard owning its nearest centroid's cluster (even a cluster
// that owned no points at build time); under AssignHash on the shard its ID
// hashes to — both exactly where a fresh build over the grown corpus would
// place it. The owner map is updated before returning, so the very next
// selective-scatter batch routes to the new point. With a fleet store
// attached, each shard's applied sub-batch is WAL-logged before the call
// returns; a logging failure is reported even when every point applied
// ("applied but not durable" — the mutation is live in memory but not
// acknowledged). Not safe concurrently with searches on the shard engines;
// the routed cluster.Server serializes this at batch boundaries.
func (cl *Cluster) Insert(vecs dataset.U8Set, ids []int32) error {
	if vecs.N != len(ids) {
		return fmt.Errorf("cluster: %d vectors for %d ids", vecs.N, len(ids))
	}
	if vecs.N > 0 && vecs.D != cl.ix.Dim {
		return fmt.Errorf("cluster: insert dim %d, index dim %d", vecs.D, cl.ix.Dim)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.requireIVF(); err != nil {
		return err
	}
	cl.ensureG2L()
	var pend []pendingInserts
	if cl.fstore != nil {
		pend = make([]pendingInserts, len(cl.shards))
	}
	var applyErr error
	for i := 0; i < vecs.N; i++ {
		id := ids[i]
		if id < 0 {
			applyErr = fmt.Errorf("cluster: insert id %d negative", id)
			break
		}
		if s := cl.findShard(id); s >= 0 {
			applyErr = fmt.Errorf("cluster: id %d already present on shard %d (delete it first)", id, s)
			break
		}
		var s int32
		if cl.shardOfCluster != nil {
			c := cl.ix.AssignVec(vecs.Vec(i), cl.esc)
			s = cl.shardOfCluster[c]
		} else {
			s = int32(splitmix64(uint64(id)) % uint64(len(cl.shards)))
		}
		sh := cl.shards[s]
		tbl := sh.GlobalIDs()
		local := int32(len(tbl))
		one := dataset.U8Set{N: 1, D: vecs.D, Data: vecs.Vec(i)}
		if err := sh.ivf().Insert(one, []int32{local}); err != nil {
			applyErr = fmt.Errorf("cluster: shard %d: %w", s, err)
			break
		}
		newTbl := make([]int32, len(tbl)+1)
		copy(newTbl, tbl)
		newTbl[len(tbl)] = id
		sh.setTable(newTbl)
		sh.Points++
		cl.g2l[s][id] = local
		if pend != nil {
			pend[s].ids = append(pend[s].ids, id)
			pend[s].vecs = append(pend[s].vecs, vecs.Vec(i)...)
		}
		c, ok := sh.ivf().Index().WhereIs(local)
		if !ok {
			applyErr = fmt.Errorf("cluster: shard %d lost inserted local id %d", s, local)
			break
		}
		cl.addOwner(c, s)
	}
	if pend != nil {
		if err := cl.logInserts(pend, vecs.D); err != nil {
			return fmt.Errorf("cluster: insert applied but not durable: %w", err)
		}
	}
	return applyErr
}

// addOwner records shard s as an owner of cluster c (copy-on-write; no-op
// when already recorded). Callers hold cl.mu.
func (cl *Cluster) addOwner(c, s int32) {
	owners := cl.ownersView()
	for _, o := range owners[c] {
		if o == s {
			return
		}
	}
	next := make([][]int32, len(owners))
	copy(next, owners)
	row := make([]int32, 0, len(owners[c])+1)
	row = append(row, owners[c]...)
	row = append(row, s)
	sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	next[c] = row
	cl.storeOwners(next)
}

// Delete removes global ids from the fleet, routing each to the shard that
// holds it. Owner-map entries are left in place until Compact (routing to a
// shard whose list became all-tombstones is harmless, just not minimal).
// With a fleet store attached the applied sub-batches are WAL-logged under
// the same applied-prefix contract as Insert.
func (cl *Cluster) Delete(ids []int32) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.requireIVF(); err != nil {
		return err
	}
	cl.ensureG2L()
	var pend [][]int32
	if cl.fstore != nil {
		pend = make([][]int32, len(cl.shards))
	}
	var applyErr error
	for _, id := range ids {
		s := cl.findShard(id)
		if s < 0 {
			applyErr = fmt.Errorf("cluster: id %d not present", id)
			break
		}
		local := cl.g2l[s][id]
		if err := cl.shards[s].ivf().Delete([]int32{local}); err != nil {
			applyErr = fmt.Errorf("cluster: shard %d: %w", s, err)
			break
		}
		delete(cl.g2l[s], id)
		cl.shards[s].Points--
		if pend != nil {
			pend[s] = append(pend[s], id)
		}
	}
	if pend != nil {
		if err := cl.logDeletes(pend); err != nil {
			return fmt.Errorf("cluster: delete applied but not durable: %w", err)
		}
	}
	return applyErr
}

// Compact folds every shard's append segments and tombstones into its
// packed layout and renumbers shard-local IDs into the dense ascending
// order of the surviving global IDs — restoring the strictly-increasing
// remap tables that make merged results bit-identical to a freshly built
// fleet (and to a single engine) over the same logical corpus. The owner
// map is rebuilt exactly.
func (cl *Cluster) Compact() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.requireIVF(); err != nil {
		return err
	}
	cl.ensureG2L()
	for s, sh := range cl.shards {
		m := cl.g2l[s]
		globals := make([]int32, 0, len(m))
		for g := range m {
			globals = append(globals, g)
		}
		sort.Slice(globals, func(i, j int) bool { return globals[i] < globals[j] })
		oldTbl := sh.GlobalIDs()
		if !sh.ivf().Index().HasMutations() && len(globals) == len(oldTbl) {
			continue // untouched shard: table already dense and monotone
		}
		remap := make([]int32, len(oldTbl))
		for newLocal, g := range globals {
			remap[m[g]] = int32(newLocal)
		}
		if err := sh.ivf().CompactRemap(remap); err != nil {
			return fmt.Errorf("cluster: shard %d compact: %w", s, err)
		}
		sh.setTable(globals)
		sh.Points = len(globals)
		for newLocal, g := range globals {
			m[g] = int32(newLocal)
		}
	}
	owners := make([][]int32, cl.ix.NList)
	for s, sh := range cl.shards {
		sub := sh.ivf().Index()
		for c := range sub.Lists {
			if len(sub.Lists[c]) > 0 {
				owners[c] = append(owners[c], int32(s))
			}
		}
	}
	cl.storeOwners(owners)
	if cl.fstore != nil {
		// Compact is the durable rotation point: every shard's packed
		// state becomes the new checkpoint and its WAL restarts empty.
		return cl.checkpointShards()
	}
	return nil
}
