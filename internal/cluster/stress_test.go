package cluster_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drimann/internal/cluster"
	"drimann/internal/serve"
)

// TestClusterStress hammers the scatter-gather front door under -race:
// many goroutines issuing queries with mixed k, random pre-flight
// cancellations, and a mid-flight Close. Every call must resolve exactly
// once — with results, a context error, or serve.ErrClosed — and after the
// drain every shard's serve ledger must balance.
func TestClusterStress(t *testing.T) {
	ix, s := testFixture(t, 4000, 32)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 3, Assignment: cluster.AssignKMeans, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(cl, serve.Options{MaxBatch: 8, MaxWait: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 25
	var completed, failed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for i := 0; i < perG; i++ {
				qi := rng.Intn(s.Queries.N)
				k := 1 + rng.Intn(cl.K())
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				resp, err := srv.Search(ctx, s.Queries.Vec(qi), k)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					if len(resp.IDs) > k || len(resp.IDs) != len(resp.Items) {
						t.Errorf("inconsistent response: %d ids, %d items, k=%d",
							len(resp.IDs), len(resp.Items), k)
					}
					for j, id := range resp.IDs {
						if resp.Items[j].ID != id {
							t.Errorf("ids/items cross-wired at %d", j)
						}
					}
					completed.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled),
					errors.Is(err, serve.ErrClosed):
					failed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}
	// Close mid-flight: racing Searches must either be served or fail with
	// the typed error, never hang or panic.
	time.Sleep(2 * time.Millisecond)
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.Close() }()
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}

	if completed.Load()+failed.Load() != goroutines*perG {
		t.Fatalf("outcomes %d+%d != %d requests",
			completed.Load(), failed.Load(), goroutines*perG)
	}
	st := srv.Stats()
	// Front-door ledger: every call lands in exactly one class, and no
	// engine-level failure is expected — closed fleets are Rejected, lost
	// contexts Canceled.
	if st.Failed != 0 {
		t.Fatalf("front door recorded %d engine failures", st.Failed)
	}
	if st.Completed+st.Canceled+st.Rejected != goroutines*perG {
		t.Fatalf("front-door ledger %d+%d+%d != %d calls",
			st.Completed, st.Canceled, st.Rejected, goroutines*perG)
	}
	for si, ss := range st.Shards {
		tot := ss.Total()
		if tot.Enqueued != tot.Completed+tot.Canceled+tot.Failed {
			t.Fatalf("shard %d ledger unbalanced after drain: %+v", si, tot)
		}
		if tot.QueueDepth != 0 {
			t.Fatalf("shard %d queue depth %d after drain", si, tot.QueueDepth)
		}
	}
}
