package cluster_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drimann/internal/cluster"
	"drimann/internal/dataset"
	"drimann/internal/fault"
	"drimann/internal/serve"
	"drimann/internal/topk"
)

// countingReplica interposes on a shard replica to count which entry point
// the front door used. The counters are per shard (shared by its replicas),
// so a test can assert exactly which shards a query's scatter touched.
type countingReplica struct {
	cluster.Replica
	probed *atomic.Int64
	plain  *atomic.Int64
}

func (c countingReplica) SearchProbedOwned(ctx context.Context, q []uint8, k int, probes []int32) (serve.Response, error) {
	c.probed.Add(1)
	return c.Replica.SearchProbedOwned(ctx, q, k, probes)
}

func (c countingReplica) SearchOwned(ctx context.Context, q []uint8, k int) (serve.Response, error) {
	c.plain.Add(1)
	return c.Replica.SearchOwned(ctx, q, k)
}

// TestSelectiveScatterProperty pins the selective-scatter routing property
// under AssignKMeans: a shard is contacted for a query if and only if it
// owns at least one of the query's probed clusters — a shard whose probe
// list is empty never sees the query — and every contacted shard is reached
// through SearchProbedOwned (the front door already ran CL, so the plain
// entry point must stay cold). Hedging is disabled and R=1, so each
// contacted shard sees exactly one replica call per query and the counter
// deltas are exact.
func TestSelectiveScatterProperty(t *testing.T) {
	const shards = 3
	ix, s := testFixture(t, 5000, 48)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: shards, Assignment: cluster.AssignKMeans, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	probedCalls := make([]atomic.Int64, shards)
	plainCalls := make([]atomic.Int64, shards)
	srv, err := cluster.NewServerRouted(cl,
		serve.Options{MaxBatch: 8, MaxWait: 100 * time.Microsecond},
		cluster.RouteOptions{
			DisableHedge: true,
			WrapReplica: func(shard, replica int, r cluster.Replica) cluster.Replica {
				return countingReplica{Replica: r, probed: &probedCalls[shard], plain: &plainCalls[shard]}
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	loc := cl.Locator()
	probes := make([]topk.Item[uint32], loc.NProbe())
	counts := make([]int, 1)
	sawPartial := false
	for qi := 0; qi < s.Queries.N; qi++ {
		q := s.Queries.Vec(qi)
		// Recompute the query's probe set independently and derive the
		// expected contact set from the cluster→shard owner map.
		loc.LocateBatch(dataset.U8Set{N: 1, D: cl.Dim(), Data: q}, 0, 1, probes, counts)
		expect := make(map[int32]bool)
		for _, p := range probes[:counts[0]] {
			for _, sh := range cl.OwnerShards(p.ID) {
				expect[sh] = true
			}
		}
		if len(expect) < shards {
			sawPartial = true
		}

		var before [shards]int64
		for si := range before {
			before[si] = probedCalls[si].Load()
		}
		resp, err := srv.Search(context.Background(), q, 0)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if resp.ShardsContacted != len(expect) {
			t.Fatalf("query %d: ShardsContacted %d, owner map says %d",
				qi, resp.ShardsContacted, len(expect))
		}
		for si := 0; si < shards; si++ {
			delta := probedCalls[si].Load() - before[si]
			switch {
			case expect[int32(si)] && delta != 1:
				t.Fatalf("query %d: shard %d owns a probed cluster but saw %d calls", qi, si, delta)
			case !expect[int32(si)] && delta != 0:
				t.Fatalf("query %d: shard %d owns no probed cluster but saw %d calls", qi, si, delta)
			}
		}
	}
	if !sawPartial {
		t.Fatal("every query hit all shards — fixture exercises nothing selective")
	}
	for si := range plainCalls {
		if n := plainCalls[si].Load(); n != 0 {
			t.Fatalf("shard %d: %d calls through plain SearchOwned on the selective path", si, n)
		}
	}
	st := srv.Stats()
	if st.Route.RoutedQueries != s.Queries.N {
		t.Fatalf("routed %d queries, want %d", st.Route.RoutedQueries, s.Queries.N)
	}
	if mf := st.Route.MeanFanout(); mf <= 0 || mf >= float64(shards) {
		t.Fatalf("mean fan-out %v, want in (0, %d) for a selective fleet", mf, shards)
	}
	if len(st.Route.FanoutHist) != shards+1 {
		t.Fatalf("fan-out histogram has %d buckets, want %d", len(st.Route.FanoutHist), shards+1)
	}
}

// TestRoutedScatterStress hammers the selective-scatter front door under
// -race with a degraded replica in the fleet: S=3 shards at R=2 where one
// shard's second replica is wrapped with deterministic delay + error
// injection. Mixed k, random short-timeout contexts and a mid-flight Close
// race against the scatter; hedging and failover must mask the sick replica
// (no front-door Failed), every call must resolve exactly once, and the
// per-shard serve ledgers must balance after the drain.
func TestRoutedScatterStress(t *testing.T) {
	ix, s := testFixture(t, 4000, 32)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 3, Replicas: 2, Assignment: cluster.AssignKMeans, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServerRouted(cl,
		serve.Options{MaxBatch: 8, MaxWait: 200 * time.Microsecond},
		cluster.RouteOptions{
			HedgeMin: 100 * time.Microsecond,
			WrapReplica: func(shard, replica int, r cluster.Replica) cluster.Replica {
				if shard == 1 && replica == 1 {
					return fault.Wrap(r, fault.Plan{
						Delay: 400 * time.Microsecond, DelayEvery: 3,
						ErrorEvery: 5, Seed: 11,
					})
				}
				return r
			},
		})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 25
	var completed, failed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 104729))
			for i := 0; i < perG; i++ {
				qi := rng.Intn(s.Queries.N)
				k := 1 + rng.Intn(cl.K())
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				resp, err := srv.Search(ctx, s.Queries.Vec(qi), k)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					if len(resp.IDs) > k || len(resp.IDs) != len(resp.Items) {
						t.Errorf("inconsistent response: %d ids, %d items, k=%d",
							len(resp.IDs), len(resp.Items), k)
					}
					if resp.ShardsContacted < 0 || resp.ShardsContacted > 3 {
						t.Errorf("fan-out %d outside [0, 3]", resp.ShardsContacted)
					}
					completed.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled),
					errors.Is(err, serve.ErrClosed):
					failed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.Close() }()
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}

	if completed.Load()+failed.Load() != goroutines*perG {
		t.Fatalf("outcomes %d+%d != %d requests",
			completed.Load(), failed.Load(), goroutines*perG)
	}
	st := srv.Stats()
	// The degraded replica's injected errors must be masked by failover (its
	// healthy sibling always answers), never surface as front-door failures.
	if st.Failed != 0 {
		t.Fatalf("front door recorded %d failures despite R=2 masking", st.Failed)
	}
	if st.Completed+st.Canceled+st.Rejected != goroutines*perG {
		t.Fatalf("front-door ledger %d+%d+%d != %d calls",
			st.Completed, st.Canceled, st.Rejected, goroutines*perG)
	}
	if st.Route.RoutedQueries != goroutines*perG {
		t.Fatalf("routing recorded %d queries, want %d", st.Route.RoutedQueries, goroutines*perG)
	}
	for si, ss := range st.Shards {
		tot := ss.Total()
		if tot.Enqueued != tot.Completed+tot.Canceled+tot.Failed {
			t.Fatalf("shard %d ledger unbalanced after drain: %+v", si, tot)
		}
		if tot.QueueDepth != 0 {
			t.Fatalf("shard %d queue depth %d after drain", si, tot.QueueDepth)
		}
	}
}
