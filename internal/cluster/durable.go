// Fleet durability: a FleetStore gives a sharded Cluster the same crash
// contract the single-engine serving stack gets from durable.Store —
// every acknowledged mutation survives a kill at any instant, and
// RecoverCluster restarts the fleet bit-identically (search results,
// memory stats, owner maps, remap tables).
//
// Layout: one fleet directory holding an immutable ASSIGN sidecar plus
// one durable.Store per shard under shard-%03d/. The sidecar freezes
// the partitioning decision — assignment policy, shard count, and the
// cluster→shard map under AssignKMeans — because the map was computed
// from the original full index and profile heat, which no longer exist
// at recovery time. Each shard's snapshot carries its local→global ID
// table (stale entries for deleted points and all — replay computes
// local ids as table length, so the table must round-trip exactly), the
// shard's owner-map rows (a live insert into a cluster marks its shard
// as an owner even if the point is later deleted; index contents alone
// cannot reproduce that), and last the shard sub-index in the ivf v2
// checkpoint format (last because ivf.Load buffers past what it
// consumes).
//
// WAL records carry GLOBAL ids: one client batch fans out across
// shards, so Cluster.Insert/Delete log each shard's applied sub-batch
// to that shard's WAL, in per-shard application order. Replay is then
// purely shard-local — insert assigns local id = len(table) exactly as
// the live path did, delete routes through the rebuilt global→local
// map — and shards can replay independently in any order.
package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/durable"
	"drimann/internal/engine"
	"drimann/internal/ivf"
)

// AssignName is the fleet assignment sidecar file, written once at
// CreateFleetStore and never rewritten.
const AssignName = "ASSIGN"

const (
	assignMagic   = 0x44524153 // "DRAS"
	assignVersion = 1

	shardSnapMagic   = 0x44525348 // "DRSH"
	shardSnapVersion = 1
)

// FleetStore is the durable state of one sharded fleet: a durable.Store
// per shard plus the assignment sidecar. Not safe for concurrent use on
// its own — the Cluster logs to it under its mutation mutex, and the
// routed Server additionally quiesces every replica batcher first.
type FleetStore struct {
	dir    string
	fs     durable.FS
	stores []*durable.Store
}

func fleetFS(opt durable.Options) durable.FS {
	if opt.FS != nil {
		return opt.FS
	}
	return durable.OS{}
}

func shardDir(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", s))
}

// Dir returns the fleet directory.
func (fst *FleetStore) Dir() string { return fst.dir }

// NumShards returns the number of per-shard stores.
func (fst *FleetStore) NumShards() int { return len(fst.stores) }

// Shard returns shard s's durable.Store (for inspection and tests).
func (fst *FleetStore) Shard(s int) *durable.Store { return fst.stores[s] }

// Close syncs and closes every shard's live WAL.
func (fst *FleetStore) Close() error {
	errs := make([]error, len(fst.stores))
	for s, st := range fst.stores {
		errs[s] = st.Close()
	}
	return errors.Join(errs...)
}

// encodeAssign freezes the partitioning decision: policy, shard count,
// nlist, and (under AssignKMeans) the cluster→shard map, with a
// trailing CRC over everything before it.
func encodeAssign(policy Assignment, shards, nlist int, shardOfCluster []int32) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var w [4]byte
	le.PutUint32(w[:], assignMagic)
	buf.Write(w[:])
	le.PutUint32(w[:], assignVersion)
	buf.Write(w[:])
	if policy == AssignKMeans {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	le.PutUint32(w[:], uint32(shards))
	buf.Write(w[:])
	le.PutUint32(w[:], uint32(nlist))
	buf.Write(w[:])
	if policy == AssignKMeans {
		binary.Write(&buf, le, shardOfCluster)
	}
	le.PutUint32(w[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(w[:])
	return buf.Bytes()
}

func decodeAssign(data []byte) (policy Assignment, shards, nlist int, shardOfCluster []int32, err error) {
	le := binary.LittleEndian
	fail := func(format string, args ...any) (Assignment, int, int, []int32, error) {
		return "", 0, 0, nil, fmt.Errorf("cluster: assignment sidecar: "+format, args...)
	}
	if len(data) < 4+4+1+4+4+4 {
		return fail("short file (%d bytes)", len(data))
	}
	if le.Uint32(data[len(data)-4:]) != crc32.ChecksumIEEE(data[:len(data)-4]) {
		return fail("checksum mismatch")
	}
	if le.Uint32(data[0:4]) != assignMagic {
		return fail("bad magic")
	}
	if v := le.Uint32(data[4:8]); v != assignVersion {
		return fail("unsupported version %d", v)
	}
	switch data[8] {
	case 0:
		policy = AssignHash
	case 1:
		policy = AssignKMeans
	default:
		return fail("unknown policy byte %d", data[8])
	}
	shards = int(le.Uint32(data[9:13]))
	nlist = int(le.Uint32(data[13:17]))
	if shards <= 0 || nlist <= 0 {
		return fail("corrupt header shards=%d nlist=%d", shards, nlist)
	}
	body := data[17 : len(data)-4]
	if policy == AssignKMeans {
		if len(body) != nlist*4 {
			return fail("cluster map is %d bytes, want %d", len(body), nlist*4)
		}
		shardOfCluster = make([]int32, nlist)
		for c := range shardOfCluster {
			s := int32(le.Uint32(body[c*4:]))
			if s < 0 || int(s) >= shards {
				return fail("cluster %d maps to shard %d of %d", c, s, shards)
			}
			shardOfCluster[c] = s
		}
	} else if len(body) != 0 {
		return fail("%d trailing bytes under hash policy", len(body))
	}
	return policy, shards, nlist, shardOfCluster, nil
}

// writeIDSection frames an int32 slice as `n u32 | ids n×i32 | crc u32`
// (CRC over the length and ids bytes).
func writeIDSection(w io.Writer, ids []int32) error {
	buf := make([]byte, 4+len(ids)*4)
	le := binary.LittleEndian
	le.PutUint32(buf, uint32(len(ids)))
	for i, id := range ids {
		le.PutUint32(buf[4+i*4:], uint32(id))
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	var crc [4]byte
	le.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	_, err := w.Write(crc[:])
	return err
}

func readIDSection(data []byte, what string) (ids []int32, rest []byte, err error) {
	le := binary.LittleEndian
	if len(data) < 8 {
		return nil, nil, fmt.Errorf("cluster: shard snapshot: truncated %s section", what)
	}
	n := int(le.Uint32(data))
	end := 4 + n*4
	if n < 0 || len(data) < end+4 {
		return nil, nil, fmt.Errorf("cluster: shard snapshot: %s section claims %d ids beyond file", what, n)
	}
	if le.Uint32(data[end:]) != crc32.ChecksumIEEE(data[:end]) {
		return nil, nil, fmt.Errorf("cluster: shard snapshot: %s section checksum mismatch", what)
	}
	ids = make([]int32, n)
	for i := range ids {
		ids[i] = int32(le.Uint32(data[4+i*4:]))
	}
	return ids, data[end+4:], nil
}

// shardSnapshot returns shard s's checkpoint writer: header, the
// local→global table, the shard's owned clusters (the owner-map rows
// naming s), then the sub-index with its live overlay in ivf v2 format.
// Callers hold cl.mu (or are the only goroutine, during create and
// recovery).
func (cl *Cluster) shardSnapshot(s int) func(w io.Writer) error {
	return func(w io.Writer) error {
		le := binary.LittleEndian
		var head [8]byte
		le.PutUint32(head[0:4], shardSnapMagic)
		le.PutUint32(head[4:8], shardSnapVersion)
		if _, err := w.Write(head[:]); err != nil {
			return err
		}
		sh := cl.shards[s]
		if err := writeIDSection(w, sh.GlobalIDs()); err != nil {
			return err
		}
		owners := cl.ownersView()
		var owned []int32
		for c, row := range owners {
			for _, o := range row {
				if o == int32(s) {
					owned = append(owned, int32(c))
					break
				}
			}
		}
		if err := writeIDSection(w, owned); err != nil {
			return err
		}
		return sh.ivf().Index().Save(w)
	}
}

func parseShardSnapshot(img []byte) (table, owned []int32, ixBytes []byte, err error) {
	le := binary.LittleEndian
	if len(img) < 8 || le.Uint32(img[0:4]) != shardSnapMagic {
		return nil, nil, nil, fmt.Errorf("cluster: shard snapshot: bad magic")
	}
	if v := le.Uint32(img[4:8]); v != shardSnapVersion {
		return nil, nil, nil, fmt.Errorf("cluster: shard snapshot: unsupported version %d", v)
	}
	rest := img[8:]
	if table, rest, err = readIDSection(rest, "table"); err != nil {
		return nil, nil, nil, err
	}
	if owned, rest, err = readIDSection(rest, "owners"); err != nil {
		return nil, nil, nil, err
	}
	return table, owned, rest, nil
}

// CreateFleetStore initializes durable state for cl under opt.Dir — the
// assignment sidecar plus one per-shard store seeded with an initial
// checkpoint — and attaches it: from here on every Cluster.Insert and
// Delete logs its applied sub-batches to the owning shards' WALs before
// acknowledging, and Compact checkpoints every shard. The caller closes
// the returned store after the fleet's last mutation (the routed Server
// does not own it).
func CreateFleetStore(cl *Cluster, opt durable.Options) (*FleetStore, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.requireIVF(); err != nil {
		return nil, err
	}
	if cl.fstore != nil {
		return nil, fmt.Errorf("cluster: fleet store already attached")
	}
	fsys := fleetFS(opt)
	if err := fsys.MkdirAll(opt.Dir); err != nil {
		return nil, err
	}
	side := encodeAssign(cl.opt.Assignment, len(cl.shards), cl.ix.NList, cl.shardOfCluster)
	if err := durable.WriteFileAtomic(fsys, filepath.Join(opt.Dir, AssignName), func(w io.Writer) error {
		_, err := w.Write(side)
		return err
	}); err != nil {
		return nil, err
	}
	fst := &FleetStore{dir: opt.Dir, fs: fsys, stores: make([]*durable.Store, len(cl.shards))}
	for s := range cl.shards {
		st, err := durable.Create(durable.Options{Dir: shardDir(opt.Dir, s), Policy: opt.Policy, FS: opt.FS},
			cl.shardSnapshot(s))
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d store: %w", s, err)
		}
		fst.stores[s] = st
	}
	cl.fstore = fst
	return fst, nil
}

// Durability returns the attached fleet store, nil when the cluster is
// not durable.
func (cl *Cluster) Durability() *FleetStore { return cl.fstore }

// logInserts appends each shard's applied insert sub-batch (global ids
// + raw vectors, in application order) to that shard's WAL and marks
// the batch durability point. Callers hold cl.mu.
func (cl *Cluster) logInserts(pend []pendingInserts, dim int) error {
	for s := range pend {
		if len(pend[s].ids) == 0 {
			continue
		}
		rec, err := durable.EncodeInsert(pend[s].ids, dim, pend[s].vecs)
		if err != nil {
			return err
		}
		st := cl.fstore.stores[s]
		if err := st.Append(rec); err != nil {
			return err
		}
		if err := st.BatchEnd(); err != nil {
			return err
		}
	}
	return nil
}

// logDeletes is logInserts for delete sub-batches.
func (cl *Cluster) logDeletes(pend [][]int32) error {
	for s := range pend {
		if len(pend[s]) == 0 {
			continue
		}
		st := cl.fstore.stores[s]
		if err := st.Append(durable.EncodeDelete(pend[s])); err != nil {
			return err
		}
		if err := st.BatchEnd(); err != nil {
			return err
		}
	}
	return nil
}

// checkpointShards rotates every shard's {snapshot, WAL} generation.
// Callers hold cl.mu.
func (cl *Cluster) checkpointShards() error {
	for s := range cl.shards {
		if err := cl.fstore.stores[s].Checkpoint(cl.shardSnapshot(s)); err != nil {
			return fmt.Errorf("cluster: shard %d checkpoint: %w", s, err)
		}
	}
	return nil
}

// Checkpoint rotates every shard's durable generation without
// compacting (snapshots carry the live overlays; base lists are
// untouched, so recovery redeploys them exactly). No-op without an
// attached store. Not safe concurrently with searches — the routed
// Server exposes this under fleet-wide quiescence.
func (cl *Cluster) Checkpoint() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.fstore == nil {
		return nil
	}
	return cl.checkpointShards()
}

// RecoverCluster rebuilds a fleet from the durable state in opt.Dir:
// the assignment sidecar fixes the partitioning, each shard redeploys
// from its checkpoint snapshot (base lists are always a deploy-time
// state, so core.New reproduces placement and decomposition exactly),
// re-adopts its overlay, replays its WAL tail, and rotates to a fresh
// generation. profile and copt must match the original deployment for
// bit-identity, exactly as in core.Recover. The returned cluster has
// the store attached and ready for appends; unacknowledged mutations
// (never WAL-synced) may be lost, acknowledged ones never are.
func RecoverCluster(opt durable.Options, profile dataset.U8Set, copt Options) (*Cluster, *FleetStore, error) {
	if err := copt.defaults(); err != nil {
		return nil, nil, err
	}
	fsys := fleetFS(opt)
	raw, err := fsys.ReadFile(filepath.Join(opt.Dir, AssignName))
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: recover: %w", err)
	}
	policy, S, nlist, shardOfCluster, err := decodeAssign(raw)
	if err != nil {
		return nil, nil, err
	}
	if policy != copt.Assignment {
		return nil, nil, fmt.Errorf("cluster: recover: store was partitioned with %q, options say %q", policy, copt.Assignment)
	}
	if S != copt.Shards {
		return nil, nil, fmt.Errorf("cluster: recover: store has %d shards, options say %d", S, copt.Shards)
	}

	cl := &Cluster{
		opt:            copt,
		shards:         make([]*Shard, S),
		shardOfCluster: shardOfCluster,
		g2l:            make([]map[int32]int32, S),
	}
	fst := &FleetStore{dir: opt.Dir, fs: fsys, stores: make([]*durable.Store, S)}
	walTails := make([][][]byte, S)
	ownedBy := make([][]int32, S)
	for s := 0; s < S; s++ {
		st, err := durable.Open(durable.Options{Dir: shardDir(opt.Dir, s), Policy: opt.Policy, FS: opt.FS})
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: recover shard %d: %w", s, err)
		}
		fst.stores[s] = st
		img, err := st.SnapshotBytes()
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: recover shard %d snapshot: %w", s, err)
		}
		table, owned, ixBytes, err := parseShardSnapshot(img)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: recover shard %d: %w", s, err)
		}
		sub, err := ivf.Load(bytes.NewReader(ixBytes))
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: recover shard %d index: %w", s, err)
		}
		if sub.NList != nlist {
			return nil, nil, fmt.Errorf("cluster: recover shard %d: index nlist %d != sidecar %d", s, sub.NList, nlist)
		}
		overlay := sub.DetachOverlay()
		eng, err := core.New(sub, profile, copt.Engine)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: recover shard %d deploy: %w", s, err)
		}
		if err := eng.AdoptOverlay(overlay); err != nil {
			return nil, nil, fmt.Errorf("cluster: recover shard %d overlay: %w", s, err)
		}
		// Live point set: the table keeps stale entries for deleted
		// points (only Compact prunes it), so the global→local map and
		// Points come from the engine's live local ids, exactly the
		// state the live fleet's lazy g2l held at checkpoint time.
		locals := sub.LiveIDs()
		m := make(map[int32]int32, len(locals))
		for _, l := range locals {
			if int(l) >= len(table) {
				return nil, nil, fmt.Errorf("cluster: recover shard %d: live local id %d beyond table (%d)", s, l, len(table))
			}
			m[table[l]] = l
		}
		cl.g2l[s] = m
		sh := &Shard{Engine: eng, Points: len(m)}
		sh.setTable(table)
		cl.shards[s] = sh
		if walTails[s], err = st.WALRecords(); err != nil {
			return nil, nil, fmt.Errorf("cluster: recover shard %d WAL: %w", s, err)
		}
		ownedBy[s] = owned
	}

	// Shared front-door state: every shard sub-index carries the full
	// (identical) quantizer tables, so shard 0's stand in for the
	// original unsharded index — post-build the cluster only uses its
	// quantizers (AssignVec, Centroid, scratch), never its lists.
	sub0 := cl.shards[0].ivf().Index()
	cl.ix = &ivf.Index{
		Dim: sub0.Dim, NList: sub0.NList, M: sub0.M, CB: sub0.CB,
		Centroids:   sub0.Centroids,
		CentroidsU8: sub0.CentroidsU8,
		PQ:          sub0.PQ,
		IntCB:       sub0.IntCB,
		OPQ:         sub0.OPQ,
		SQT:         sub0.SQT,
		Lists:       make([][]int32, sub0.NList),
		Codes:       make([][]uint16, sub0.NList),
	}
	cl.esc = cl.ix.NewEncodeScratch()
	owners := make([][]int32, nlist)
	for s := 0; s < S; s++ {
		for _, c := range ownedBy[s] {
			if c < 0 || int(c) >= nlist {
				return nil, nil, fmt.Errorf("cluster: recover shard %d: owned cluster %d out of range", s, c)
			}
			owners[c] = append(owners[c], int32(s)) // shard-ascending: rows stay sorted
		}
	}
	cl.storeOwners(owners)

	// Replay each shard's WAL tail through the live mutation path, then
	// grow the replica set and rotate every generation (discarding any
	// torn tails) so the store accepts appends again.
	for s := 0; s < S; s++ {
		if err := cl.replayShardWAL(s, walTails[s]); err != nil {
			return nil, nil, err
		}
	}
	for s, sh := range cl.shards {
		engines := make([]engine.Engine, copt.Replicas)
		engines[0] = sh.Engine
		rep, _ := sh.Engine.(engine.Replicable)
		for r := 1; r < copt.Replicas; r++ {
			if engines[r], err = rep.NewReplica(); err != nil {
				return nil, nil, fmt.Errorf("cluster: recover shard %d replica %d: %w", s, r, err)
			}
		}
		sh.Engines = engines
	}
	cl.loc = cl.shards[0].ivf().Locator()
	cl.fstore = fst
	if err := cl.checkpointShards(); err != nil {
		return nil, nil, err
	}
	return cl, fst, nil
}

// replayShardWAL applies shard s's decoded WAL tail in order: inserts
// re-route nothing (the record already names this shard) and take the
// next local id exactly as the live path did; deletes resolve through
// the rebuilt global→local map. Owner rows grow through the same
// addOwner the live insert used.
func (cl *Cluster) replayShardWAL(s int, recs [][]byte) error {
	sh := cl.shards[s]
	for i, rec := range recs {
		m, err := durable.DecodeMutation(rec)
		if err != nil {
			return fmt.Errorf("cluster: shard %d WAL record %d: %w", s, i, err)
		}
		switch m.Op {
		case durable.OpInsert:
			if m.Dim != cl.ix.Dim {
				return fmt.Errorf("cluster: shard %d WAL record %d: dim %d != index dim %d", s, i, m.Dim, cl.ix.Dim)
			}
			for j, g := range m.IDs {
				tbl := sh.GlobalIDs()
				local := int32(len(tbl))
				one := dataset.U8Set{N: 1, D: m.Dim, Data: m.Vecs[j*m.Dim : (j+1)*m.Dim]}
				if err := sh.ivf().Insert(one, []int32{local}); err != nil {
					return fmt.Errorf("cluster: shard %d WAL record %d replay: %w", s, i, err)
				}
				newTbl := make([]int32, len(tbl)+1)
				copy(newTbl, tbl)
				newTbl[len(tbl)] = g
				sh.setTable(newTbl)
				sh.Points++
				cl.g2l[s][g] = local
				c, ok := sh.ivf().Index().WhereIs(local)
				if !ok {
					return fmt.Errorf("cluster: shard %d lost replayed local id %d", s, local)
				}
				cl.addOwner(c, int32(s))
			}
		case durable.OpDelete:
			for _, g := range m.IDs {
				local, ok := cl.g2l[s][g]
				if !ok {
					return fmt.Errorf("cluster: shard %d WAL record %d: delete of unknown id %d", s, i, g)
				}
				if err := sh.ivf().Delete([]int32{local}); err != nil {
					return fmt.Errorf("cluster: shard %d WAL record %d replay: %w", s, i, err)
				}
				delete(cl.g2l[s], g)
				sh.Points--
			}
		default:
			return fmt.Errorf("cluster: shard %d WAL record %d: unknown op %d", s, i, m.Op)
		}
	}
	return nil
}
