package cluster_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drimann/internal/cluster"
	"drimann/internal/core"
	"drimann/internal/fault"
	"drimann/internal/serve"
)

// faultFleet builds the shared replicated fixture: S=2 shards x R=2
// replicas over the standard test corpus, plus the unreplicated
// single-engine reference results every masking assertion compares against.
func faultFleet(t *testing.T, n, queries int) (*cluster.Cluster, *core.Result, func(qi int) []uint8, int) {
	t.Helper()
	ix, s := testFixture(t, n, queries)
	single, err := core.New(ix, s.Queries, engineOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 2, Replicas: 2, Assignment: cluster.AssignHash, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, ref, s.Queries.Vec, s.Queries.N
}

// wrapper captures the fault wrapper of every (shard, replica) slot so
// tests can flip replica health mid-flight.
type wrapper struct {
	mu   sync.Mutex
	reps map[[2]int]*fault.Replica
}

func (w *wrapper) hook(plan func(shard, replica int) *fault.Plan) func(int, int, cluster.Replica) cluster.Replica {
	w.reps = map[[2]int]*fault.Replica{}
	return func(shard, replica int, r cluster.Replica) cluster.Replica {
		p := plan(shard, replica)
		if p == nil {
			return r
		}
		fr := fault.Wrap(r, *p)
		w.mu.Lock()
		w.reps[[2]int{shard, replica}] = fr
		w.mu.Unlock()
		return fr
	}
}

func (w *wrapper) get(shard, replica int) *fault.Replica {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reps[[2]int{shard, replica}]
}

// TestReplicaFaultMasking is the fleet's availability contract: with R=2
// and replica 1 of every shard degraded — wedged forever, slow, erroring
// on every call, or killed mid-flight — every query still completes, with
// results bit-identical to the unreplicated single-engine reference,
// because hedging (for silent degradation) or failover (for loud failure)
// reroutes to the healthy replica. The healthy-fleet case pins the
// opposite edge: with hedge timers clamped far above real latency, no
// hedge ever fires.
func TestReplicaFaultMasking(t *testing.T) {
	cl, ref, vec, nq := faultFleet(t, 4000, 48)

	cases := []struct {
		name  string
		plan  *fault.Plan // applied to replica 1 of every shard
		route cluster.RouteOptions
		check func(t *testing.T, st cluster.ServerStats)
	}{
		{
			name: "wedged replica is hedged around",
			plan: &fault.Plan{WedgeFrom: 1},
			check: func(t *testing.T, st cluster.ServerStats) {
				if st.Hedged == 0 {
					t.Error("no hedge fired against a wedged replica")
				}
				if st.HedgeWins == 0 {
					t.Error("no hedge won against a wedged replica")
				}
			},
		},
		{
			name: "slow replica is hedged around",
			plan: &fault.Plan{Delay: 80 * time.Millisecond},
			check: func(t *testing.T, st cluster.ServerStats) {
				if st.Hedged == 0 {
					t.Error("no hedge fired against a slow replica")
				}
			},
		},
		{
			name: "erroring replica fails over and trips the breaker",
			plan: &fault.Plan{ErrorEvery: 1},
			check: func(t *testing.T, st cluster.ServerStats) {
				if st.Failovers == 0 {
					t.Error("no failover from an erroring replica")
				}
				if st.BreakerEjections == 0 {
					t.Error("breaker never ejected an always-erroring replica")
				}
			},
		},
		{
			name: "replica killed mid-flight fails over",
			plan: &fault.Plan{KillAfter: 3},
			check: func(t *testing.T, st cluster.ServerStats) {
				if st.Failovers == 0 {
					t.Error("no failover from a killed replica")
				}
			},
		},
		{
			name:  "healthy fleet: hedge does not fire",
			plan:  nil,
			route: cluster.RouteOptions{HedgeMin: 30 * time.Second, HedgeMax: 30 * time.Second, HedgeGuess: 30 * time.Second},
			check: func(t *testing.T, st cluster.ServerStats) {
				if st.Hedged != 0 {
					t.Errorf("%d hedges fired in a healthy fleet under a 30s timer", st.Hedged)
				}
				if st.Failovers != 0 || st.BreakerEjections != 0 {
					t.Errorf("failovers=%d ejections=%d in a healthy fleet", st.Failovers, st.BreakerEjections)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := &wrapper{}
			route := tc.route
			route.WrapReplica = w.hook(func(shard, replica int) *fault.Plan {
				if replica == 1 {
					return tc.plan
				}
				return nil
			})
			srv, err := cluster.NewServerRouted(cl, serve.Options{MaxBatch: 8, MaxWait: 200 * time.Microsecond}, route)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			got := make([]cluster.Response, nq)
			var wg sync.WaitGroup
			for qi := 0; qi < nq; qi++ {
				wg.Add(1)
				go func(qi int) {
					defer wg.Done()
					resp, err := srv.Search(context.Background(), vec(qi), 0)
					if err != nil {
						t.Errorf("query %d: %v", qi, err)
						return
					}
					got[qi] = resp
				}(qi)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			for qi := range got {
				if !reflect.DeepEqual(got[qi].IDs, ref.IDs[qi]) {
					t.Fatalf("query %d IDs diverge from the healthy reference:\n  fleet  %v\n  single %v",
						qi, got[qi].IDs, ref.IDs[qi])
				}
				if !reflect.DeepEqual(got[qi].Items, ref.Items[qi]) {
					t.Fatalf("query %d Items diverge", qi)
				}
			}
			st := srv.Stats()
			if st.Completed != uint64(nq) {
				t.Fatalf("front door completed %d of %d", st.Completed, nq)
			}
			if st.Failed != 0 || st.Canceled != 0 || st.Rejected != 0 {
				t.Fatalf("degraded-replica queries leaked out of Completed: %+v", st)
			}
			tc.check(t, st)
		})
	}
}

// TestBreakerEjectProbeBack walks the breaker through its whole cycle on a
// live fleet: a replica that errors on every call is ejected after the
// failure threshold, sits out the cooldown window (during which it receives
// no traffic at all, not even hedges), then — once healed and the cooldown
// has elapsed — a probe is let through and its success closes the breaker,
// returning the replica to rotation.
func TestBreakerEjectProbeBack(t *testing.T) {
	cl, ref, vec, _ := faultFleet(t, 3000, 16)
	w := &wrapper{}
	const cooldown = time.Second
	route := cluster.RouteOptions{
		BreakerFailures: 3,
		BreakerCooldown: cooldown,
		WrapReplica: w.hook(func(shard, replica int) *fault.Plan {
			if replica == 1 {
				return &fault.Plan{}
			}
			return nil
		}),
	}
	srv, err := cluster.NewServerRouted(cl, serve.Options{MaxBatch: 4, MaxWait: 0}, route)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	boom := errors.New("replica sick")
	w.get(0, 1).SetErr(boom)
	w.get(1, 1).SetErr(boom)

	// Drive sequential queries until both shards' replica 1 is ejected.
	// Every query still succeeds: the sick replica's failures fail over to
	// the healthy one.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := srv.Search(context.Background(), vec(0), 0); err != nil {
			t.Fatalf("query failed while replica 1 was sick: %v", err)
		}
		st := srv.Stats()
		if st.Shards[0].Replicas[1].Ejected && st.Shards[1].Replicas[1].Ejected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 1 never ejected: %+v", st)
		}
	}
	ejectedAt := time.Now()
	st := srv.Stats()
	if st.BreakerEjections < 2 {
		t.Fatalf("ejections %d, want >= 2", st.BreakerEjections)
	}

	// While the cooldown runs, traffic routes around the ejected replicas
	// entirely — no pick, no hedge, no probe.
	calls01, calls11 := w.get(0, 1).Calls(), w.get(1, 1).Calls()
	for i := 0; i < 10; i++ {
		if _, err := srv.Search(context.Background(), vec(i%4), 0); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(ejectedAt); d > cooldown/2 {
		t.Skipf("machine too slow to observe the cooldown window (%v elapsed)", d)
	}
	if got := w.get(0, 1).Calls(); got != calls01 {
		t.Fatalf("ejected replica 0/1 received %d calls during cooldown", got-calls01)
	}
	if got := w.get(1, 1).Calls(); got != calls11 {
		t.Fatalf("ejected replica 1/1 received %d calls during cooldown", got-calls11)
	}

	// Heal the replicas and wait out the cooldown: the next queries claim
	// the half-open probe, route to replica 1, and the success closes the
	// breaker — visible as backend completions on the once-sick replicas.
	w.get(0, 1).SetErr(nil)
	w.get(1, 1).SetErr(nil)
	time.Sleep(cooldown + 50*time.Millisecond)
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := srv.Search(context.Background(), vec(1), 0)
		if err != nil {
			t.Fatalf("query failed after replica healed: %v", err)
		}
		if !reflect.DeepEqual(resp.IDs, ref.IDs[1]) {
			t.Fatal("post-heal result diverges from the healthy reference")
		}
		st = srv.Stats()
		if !st.Shards[0].Replicas[1].Ejected && !st.Shards[1].Replicas[1].Ejected &&
			st.Shards[0].Replicas[1].Completed > 0 && st.Shards[1].Replicas[1].Completed > 0 {
			break // probed back: breakers closed, replicas serving again
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 1 never probed back: %+v", st)
		}
	}
}

// TestScatterFastFail pins the fast-fail satellite: when one shard fails,
// the front door must not wait for its siblings — a wedged sibling shard
// would otherwise hang the query forever — and the canceled siblings must
// not leak goroutines or queued work.
func TestScatterFastFail(t *testing.T) {
	ix, s := testFixture(t, 3000, 8)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{Shards: 2, Engine: engineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	w := &wrapper{}
	route := cluster.RouteOptions{
		WrapReplica: w.hook(func(shard, replica int) *fault.Plan { return &fault.Plan{} }),
	}
	srv, err := cluster.NewServerRouted(cl, serve.Options{MaxBatch: 4, MaxWait: 0}, route)
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()

	// Shard 0 errors instantly; shard 1 is wedged forever. Without the
	// per-query derived context the Search would block on shard 1.
	boom := errors.New("shard down")
	w.get(0, 0).SetErr(boom)
	w.get(1, 0).Wedge()
	t0 := time.Now()
	_, err = srv.Search(context.Background(), s.Queries.Vec(0), 0)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Search returned %v, want the shard 0 error", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("fast-fail took %v; the wedged sibling was waited on", d)
	}

	// A caller-side deadline must likewise cancel both shards' work.
	w.get(0, 0).SetErr(nil)
	w.get(0, 0).Wedge()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := srv.Search(ctx, s.Queries.Vec(0), 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Search returned %v", err)
	}

	// The canceled attempts unblock through their derived contexts: the
	// goroutine count must settle back to the baseline (and the wedges are
	// still in place, so anything stuck would be visible).
	settled := false
	for wait := time.Now().Add(5 * time.Second); time.Now().Before(wait); {
		if runtime.NumGoroutine() <= baseline+2 {
			settled = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !settled {
		t.Fatalf("goroutines leaked after fast-fail: baseline %d, now %d",
			baseline, runtime.NumGoroutine())
	}

	st := srv.Stats()
	if st.Failed != 1 {
		t.Fatalf("front door Failed = %d, want 1", st.Failed)
	}
	if st.Canceled != 1 {
		t.Fatalf("front door Canceled = %d, want 1", st.Canceled)
	}

	w.get(0, 0).Unwedge()
	w.get(1, 0).Unwedge()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for si, ss := range srv.Stats().Shards {
		tot := ss.Total()
		if tot.QueueDepth != 0 || tot.Inflight != 0 {
			t.Fatalf("shard %d left work behind after fast-fail: %+v", si, tot)
		}
	}
}

// TestStatsSnapshotNoTear is the -race regression for the snapshot-tear
// fix: Completed and the latency sum are read under one lock, so a
// snapshot taken mid-update can never divide mismatched pairs — observable
// as a completed query with a zero average latency.
func TestStatsSnapshotNoTear(t *testing.T) {
	ix, s := testFixture(t, 3000, 16)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 2, Replicas: 2, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(cl, serve.Options{MaxBatch: 8, MaxWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	for p := 0; p < 2; p++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := srv.Stats()
				if st.Completed > 0 && st.AvgLatency <= 0 {
					t.Errorf("torn front-door snapshot: Completed=%d AvgLatency=%v",
						st.Completed, st.AvgLatency)
				}
				for si, ss := range st.Shards {
					for ri, rs := range ss.Replicas {
						if rs.Completed > 0 && rs.AvgLatency <= 0 {
							t.Errorf("torn replica snapshot %d/%d: Completed=%d AvgLatency=%v",
								si, ri, rs.Completed, rs.AvgLatency)
						}
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := srv.Search(context.Background(), s.Queries.Vec((g*40+i)%s.Queries.N), 0); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaChaos is the chaos invariant the CI stress step repeats:
// concurrent mixed-k traffic with random caller deadlines while replica 1
// of every shard is randomly wedged, errored, healed, and eventually
// killed. Every call must resolve exactly once (front-door ledger:
// Completed + Canceled + Rejected + Failed == calls), completed queries
// must be bit-identical to the unreplicated reference, no query may fail
// outright (replica 0 stays healthy, so masking must always succeed), and
// after the drain every replica's serve ledger must balance exactly once
// (Enqueued == Completed + Canceled + Failed).
func TestReplicaChaos(t *testing.T) {
	cl, ref, vec, nq := faultFleet(t, 4000, 48)
	w := &wrapper{}
	route := cluster.RouteOptions{
		BreakerCooldown: 10 * time.Millisecond,
		WrapReplica: w.hook(func(shard, replica int) *fault.Plan {
			if replica == 1 {
				return &fault.Plan{}
			}
			return nil
		}),
	}
	srv, err := cluster.NewServerRouted(cl, serve.Options{MaxBatch: 8, MaxWait: 200 * time.Microsecond}, route)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 30
	var completed, canceled atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 104729))
			for i := 0; i < perG; i++ {
				qi := rng.Intn(nq)
				k := 1 + rng.Intn(cl.K())
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(5) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(500+rng.Intn(2000))*time.Microsecond)
				}
				resp, err := srv.Search(ctx, vec(qi), k)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					want := ref.IDs[qi]
					if len(want) > k {
						want = want[:k]
					}
					if !reflect.DeepEqual(resp.IDs, want) {
						t.Errorf("query %d k=%d diverges under chaos", qi, k)
					}
					completed.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					canceled.Add(1)
				default:
					t.Errorf("query failed under chaos (replica 0 healthy): %v", err)
				}
			}
		}(g)
	}

	// The chaos monkey: flip replica 1 of a random shard between wedged,
	// erroring and healthy; kill one of them outright partway through.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(31337))
		sick := errors.New("chaos error")
		for i := 0; i < 60; i++ {
			fr := w.get(rng.Intn(2), 1)
			switch rng.Intn(4) {
			case 0:
				fr.Wedge()
			case 1:
				fr.Unwedge()
			case 2:
				fr.SetErr(sick)
			case 3:
				fr.SetErr(nil)
			}
			if i == 30 {
				w.get(0, 1).Kill()
			}
			time.Sleep(time.Millisecond)
		}
		// Heal everything that survives so the drain is clean.
		for sh := 0; sh < 2; sh++ {
			w.get(sh, 1).Unwedge()
			w.get(sh, 1).SetErr(nil)
		}
	}()
	wg.Wait()
	<-chaosDone
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	if got := completed.Load() + canceled.Load(); got != goroutines*perG {
		t.Fatalf("outcomes %d != %d calls", got, goroutines*perG)
	}
	st := srv.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d queries failed outright with replica 0 healthy", st.Failed)
	}
	if total := st.Completed + st.Canceled + st.Rejected + st.Failed; total != goroutines*perG {
		t.Fatalf("front-door ledger %d+%d+%d+%d != %d calls",
			st.Completed, st.Canceled, st.Rejected, st.Failed, goroutines*perG)
	}
	for si, ss := range st.Shards {
		for ri, rs := range ss.Replicas {
			if rs.Enqueued != rs.Completed+rs.Canceled+rs.Failed {
				t.Fatalf("replica %d/%d ledger unbalanced after drain: %+v", si, ri, rs.Stats)
			}
			if rs.QueueDepth != 0 || rs.Inflight != 0 {
				t.Fatalf("replica %d/%d still busy after drain: %+v", si, ri, rs.Stats)
			}
		}
	}
}

// TestReplicatedOfflineEquivalence pins that replication is invisible to
// the offline scatter-gather path: a replicated cluster's SearchBatch
// (replica 0) stays bit-identical to the unreplicated fleet and the single
// engine.
func TestReplicatedOfflineEquivalence(t *testing.T) {
	ix, s := testFixture(t, 4000, 24)
	single, err := core.New(ix, s.Queries, engineOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 3, Replicas: 2, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Replicas() != 2 {
		t.Fatalf("Replicas() = %d, want 2", cl.Replicas())
	}
	for si, sh := range cl.Shards() {
		if len(sh.Engines) != 2 || sh.Engines[0] != sh.Engine {
			t.Fatalf("shard %d replica wiring wrong: %d engines", si, len(sh.Engines))
		}
	}
	got, err := cl.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range ref.IDs {
		if !reflect.DeepEqual(got.IDs[qi], ref.IDs[qi]) {
			t.Fatalf("query %d diverges under replication", qi)
		}
	}
}
