package cluster_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"drimann/internal/cluster"
	"drimann/internal/core"
	"drimann/internal/serve"
)

// TestClusterServerEquivalence: single queries through the sharded front
// door are bit-identical to the single-engine offline batch — the serving
// contract composed with the sharding contract.
func TestClusterServerEquivalence(t *testing.T) {
	ix, s := testFixture(t, 6000, 48)
	single, err := core.New(ix, s.Queries, engineOpts())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 3, Assignment: cluster.AssignHash, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(cl, serve.Options{MaxBatch: 16, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got := make([]cluster.Response, s.Queries.N)
	var wg sync.WaitGroup
	for qi := 0; qi < s.Queries.N; qi++ {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			resp, err := srv.Search(context.Background(), s.Queries.Vec(qi), 0)
			if err != nil {
				t.Errorf("query %d: %v", qi, err)
				return
			}
			got[qi] = resp
		}(qi)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for qi := range got {
		if !reflect.DeepEqual(got[qi].IDs, ref.IDs[qi]) {
			t.Fatalf("query %d IDs diverge:\n  fleet  %v\n  single %v", qi, got[qi].IDs, ref.IDs[qi])
		}
		if !reflect.DeepEqual(got[qi].Items, ref.Items[qi]) {
			t.Fatalf("query %d Items diverge", qi)
		}
	}

	st := srv.Stats()
	if st.Completed != uint64(s.Queries.N) {
		t.Fatalf("front door completed %d of %d", st.Completed, s.Queries.N)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("%d shard ledgers, want 3", len(st.Shards))
	}
	// Every query fans out to every shard exactly once.
	if st.Agg.Completed != 3*uint64(s.Queries.N) {
		t.Fatalf("aggregate shard completions %d, want %d", st.Agg.Completed, 3*s.Queries.N)
	}
	for si, ss := range st.Shards {
		tot := ss.Total()
		if tot.Enqueued != tot.Completed+tot.Canceled+tot.Failed {
			t.Fatalf("shard %d ledger unbalanced: %+v", si, tot)
		}
	}
	if st.Agg.Sim.PointsScanned == 0 {
		t.Fatal("aggregated sim metrics empty")
	}
	if m := srv.Metrics(); m.PointsScanned != st.Agg.Sim.PointsScanned {
		t.Fatalf("Metrics() %d != Stats().Agg.Sim %d", m.PointsScanned, st.Agg.Sim.PointsScanned)
	}
}

// TestClusterServerContract pins front-door argument validation, k
// truncation and the typed close error.
func TestClusterServerContract(t *testing.T) {
	ix, s := testFixture(t, 3000, 8)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{Shards: 2, Engine: engineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(cl, serve.Options{MaxBatch: 8, MaxWait: 0})
	if err != nil {
		t.Fatal(err)
	}

	full, err := srv.Search(context.Background(), s.Queries.Vec(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.IDs) != cl.K() {
		t.Fatalf("k=0 returned %d ids, want %d", len(full.IDs), cl.K())
	}
	three, err := srv.Search(context.Background(), s.Queries.Vec(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(three.IDs, full.IDs[:3]) {
		t.Fatalf("k=3 not a prefix: %v vs %v", three.IDs, full.IDs)
	}
	if _, err := srv.Search(context.Background(), s.Queries.Vec(0), cl.K()+1); err == nil {
		t.Fatal("k > K should fail")
	}
	if _, err := srv.Search(context.Background(), s.Queries.Vec(0)[:8], 0); err == nil {
		t.Fatal("wrong dimension should fail")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Search(context.Background(), s.Queries.Vec(0), 0); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-close error = %v, want serve.ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
