package cluster_test

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drimann/internal/cluster"
	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
	"drimann/internal/serve"
	"drimann/internal/topk"
)

// mutClusterFixture builds the index over the head of the corpus, keeping
// the tail as an insert pool (ids are corpus positions everywhere, so
// s.Base.Vec(id) is any id's vector).
func mutClusterFixture(t testing.TB, n, base, queries int) (*ivf.Index, *dataset.Synth) {
	t.Helper()
	s := dataset.Generate(dataset.SynthConfig{
		Name: "cluster-mut", N: n, D: 64, NumQueries: queries,
		NumClusters: 40, Seed: 7, Noise: 9,
	})
	ix, err := ivf.Build(dataset.U8Set{N: base, D: s.Base.D, Data: s.Base.Data[:base*s.Base.D]},
		ivf.BuildConfig{
			NList: 64, PQ: pq.Config{M: 16, CB: 256},
			KMeansIters: 6, TrainSample: 3000, Seed: 7,
		})
	if err != nil {
		t.Fatal(err)
	}
	return ix, s
}

// freshSingle deploys a frozen-quantizer rebuild over the live logical
// corpus as a single unsharded engine — the bit-identity reference for a
// compacted fleet.
func freshSingle(t *testing.T, ix *ivf.Index, s *dataset.Synth, live []int32, opts core.Options) *core.Result {
	t.Helper()
	ids := slices.Clone(live)
	slices.Sort(ids)
	vecs := dataset.U8Set{N: len(ids), D: s.Base.D}
	for _, id := range ids {
		vecs.Data = append(vecs.Data, s.Base.Vec(int(id))...)
	}
	fresh, err := ivf.RebuildFrozen(ix, vecs, ids)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(fresh, s.Queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SearchBatch(s.Queries)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterMutateCompactEquivalence is the tentpole acceptance property:
// for S ∈ {1, 2, 7} under both assignment policies, a fleet that lived
// through randomized insert/delete interleavings (including delete-then-
// reinsert of the same id and mid-stream compactions) and then compacted
// answers SearchBatch bit-identically (IDs and Items) to a freshly built
// single engine over the same logical corpus. Between compactions, every
// live inserted point is findable by its own vector and every deleted point
// is absent.
func TestClusterMutateCompactEquivalence(t *testing.T) {
	const n, base = 5000, 4200
	ix, s := mutClusterFixture(t, n, base, 48)
	opts := engineOpts()
	for _, shards := range []int{1, 2, 7} {
		for _, assign := range []cluster.Assignment{cluster.AssignHash, cluster.AssignKMeans} {
			t.Run(fmt.Sprintf("S=%d/%s", shards, assign), func(t *testing.T) {
				cl, err := cluster.New(ix, s.Queries, cluster.Options{
					Shards: shards, Assignment: assign, Engine: opts,
				})
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(shards)*31 + 7))
				live := make([]int32, base)
				for i := range live {
					live[i] = int32(i)
				}
				pool := make([]int32, n-base)
				for i := range pool {
					pool[i] = int32(base + i)
				}
				var inserted, deleted []int32
				for op := 0; op < 220; op++ {
					switch r := rng.Intn(12); {
					case r < 6 && len(pool) > 0:
						i := rng.Intn(len(pool))
						id := pool[i]
						pool = append(pool[:i], pool[i+1:]...)
						one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(int(id))}
						if err := cl.Insert(one, []int32{id}); err != nil {
							t.Fatal(err)
						}
						live = append(live, id)
						inserted = append(inserted, id)
					case r < 11 && len(live) > 0:
						i := rng.Intn(len(live))
						id := live[i]
						live = append(live[:i], live[i+1:]...)
						if err := cl.Delete([]int32{id}); err != nil {
							t.Fatal(err)
						}
						pool = append(pool, id)
						deleted = append(deleted, id)
					case r == 11:
						if err := cl.Compact(); err != nil {
							t.Fatal(err)
						}
					}
				}
				// Between compactions: membership promises on the live overlay.
				liveSet := make(map[int32]bool, len(live))
				for _, id := range live {
					liveSet[id] = true
				}
				probe := func(id int32) []int32 {
					one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(int(id))}
					res, err := cl.SearchBatch(one)
					if err != nil {
						t.Fatal(err)
					}
					return res.IDs[0]
				}
				checked := 0
				for _, id := range inserted {
					if !liveSet[id] {
						continue
					}
					if !slices.Contains(probe(id), id) {
						t.Fatalf("live inserted point %d not findable before compact", id)
					}
					if checked++; checked >= 8 {
						break
					}
				}
				checked = 0
				for _, id := range deleted {
					if liveSet[id] {
						continue // reinserted since
					}
					if slices.Contains(probe(id), id) {
						t.Fatalf("deleted point %d still findable", id)
					}
					if checked++; checked >= 8 {
						break
					}
				}
				if err := cl.Compact(); err != nil {
					t.Fatal(err)
				}
				got, err := cl.SearchBatch(s.Queries)
				if err != nil {
					t.Fatal(err)
				}
				want := freshSingle(t, ix, s, live, opts)
				for qi := 0; qi < s.Queries.N; qi++ {
					if !slices.Equal(got.IDs[qi], want.IDs[qi]) {
						t.Fatalf("query %d IDs diverge post-compact:\n fleet  %v\n single %v",
							qi, got.IDs[qi], want.IDs[qi])
					}
					if !slices.Equal(got.Items[qi], want.Items[qi]) {
						t.Fatalf("query %d Items diverge post-compact", qi)
					}
				}
			})
		}
	}
}

// emptyProbedClusters deletes every point of query 0's probed clusters from
// the fleet and compacts, returning the deleted ids. Afterward query 0's
// whole probe set is empty fleet-wide — the zero-fanout case.
func emptyProbedClusters(t *testing.T, cl *cluster.Cluster, ix *ivf.Index, q []uint8) []int32 {
	t.Helper()
	loc := cl.Locator()
	probes := make([]topk.Item[uint32], loc.NProbe())
	counts := make([]int, 1)
	loc.LocateBatch(dataset.U8Set{N: 1, D: cl.Dim(), Data: q}, 0, 1, probes, counts)
	var victims []int32
	for _, p := range probes[:counts[0]] {
		victims = append(victims, ix.Lists[p.ID]...)
	}
	if len(victims) == 0 {
		t.Fatal("fixture: probed clusters already empty")
	}
	if err := cl.Delete(victims); err != nil {
		t.Fatal(err)
	}
	if err := cl.Compact(); err != nil {
		t.Fatal(err)
	}
	return victims
}

// TestZeroFanoutQuery pins the zero-fanout bugfix on both paths: when every
// probed cluster of a query is empty fleet-wide, the offline scatter-gather
// and the routed front door (which contacts zero shards under selective
// routing) both return a result bit-identical to the single engine's empty
// convention — non-nil empty IDs, nil Items.
func TestZeroFanoutQuery(t *testing.T) {
	const n, base = 4000, 4000
	for _, assign := range []cluster.Assignment{cluster.AssignHash, cluster.AssignKMeans} {
		t.Run(string(assign), func(t *testing.T) {
			ix, s := mutClusterFixture(t, n, base, 8)
			opts := engineOpts()
			cl, err := cluster.New(ix, s.Queries, cluster.Options{
				Shards: 3, Assignment: assign, Engine: opts,
			})
			if err != nil {
				t.Fatal(err)
			}
			q := s.Queries.Vec(0)
			victims := emptyProbedClusters(t, cl, ix, q)

			// The single-engine reference over the same (shrunk) corpus.
			live := make([]int32, 0, base-len(victims))
			gone := make(map[int32]bool, len(victims))
			for _, id := range victims {
				gone[id] = true
			}
			for id := int32(0); id < int32(base); id++ {
				if !gone[id] {
					live = append(live, id)
				}
			}
			want := freshSingle(t, ix, s, live, opts)
			if want.IDs[0] == nil || len(want.IDs[0]) != 0 || want.Items[0] != nil {
				t.Fatalf("single engine empty convention changed: IDs=%v Items=%v",
					want.IDs[0], want.Items[0])
			}

			// Offline scatter-gather path.
			one := dataset.U8Set{N: 1, D: cl.Dim(), Data: q}
			got, err := cl.SearchBatch(one)
			if err != nil {
				t.Fatal(err)
			}
			if got.IDs[0] == nil || len(got.IDs[0]) != 0 || got.Items[0] != nil {
				t.Fatalf("offline zero-fanout result not bit-identical to single engine: IDs=%v Items=%v",
					got.IDs[0], got.Items[0])
			}

			// Routed front door: under kmeans the query contacts zero shards.
			srv, err := cluster.NewServer(cl, serve.Options{MaxBatch: 4, MaxWait: 50 * time.Microsecond})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			resp, err := srv.Search(context.Background(), q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if resp.IDs == nil || len(resp.IDs) != 0 || resp.Items != nil {
				t.Fatalf("routed zero-fanout result not bit-identical: IDs=%v Items=%v",
					resp.IDs, resp.Items)
			}
			if assign == cluster.AssignKMeans && resp.ShardsContacted != 0 {
				t.Fatalf("selective zero-fanout query contacted %d shards, want 0", resp.ShardsContacted)
			}
		})
	}
}

// TestOwnerMapFollowsInsert pins the stale-owner-map bugfix: emptying a
// cluster drops it from the owner map, and inserting a point that assigns
// to it must restore the owner entry before the next batch routes — the new
// point is findable through the routed selective-scatter path.
func TestOwnerMapFollowsInsert(t *testing.T) {
	const n, base = 4000, 4000
	ix, s := mutClusterFixture(t, n, base, 8)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 3, Assignment: cluster.AssignKMeans, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(cl, serve.Options{MaxBatch: 4, MaxWait: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Empty query 0's probed clusters through the live server, so its probe
	// set routes nowhere...
	q := s.Queries.Vec(0)
	loc := cl.Locator()
	probes := make([]topk.Item[uint32], loc.NProbe())
	counts := make([]int, 1)
	loc.LocateBatch(dataset.U8Set{N: 1, D: cl.Dim(), Data: q}, 0, 1, probes, counts)
	var victims []int32
	for _, p := range probes[:counts[0]] {
		if len(cl.OwnerShards(p.ID)) == 0 {
			t.Fatalf("probed cluster %d has no owner before deletion", p.ID)
		}
		victims = append(victims, ix.Lists[p.ID]...)
	}
	if err := srv.Delete(victims); err != nil {
		t.Fatal(err)
	}
	if err := srv.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, p := range probes[:counts[0]] {
		if len(cl.OwnerShards(p.ID)) != 0 {
			t.Fatalf("emptied cluster %d still has owners", p.ID)
		}
	}
	resp, err := srv.Search(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsContacted != 0 || len(resp.IDs) != 0 {
		t.Fatalf("query over emptied clusters: contacted=%d IDs=%v", resp.ShardsContacted, resp.IDs)
	}

	// ...then insert the query vector itself as a new point: it assigns to
	// one of the emptied clusters (its nearest centroid), the owner map must
	// pick the shard back up, and the very next selective search finds it.
	newID := int32(n)
	if err := srv.Insert(dataset.U8Set{N: 1, D: cl.Dim(), Data: q}, []int32{newID}); err != nil {
		t.Fatal(err)
	}
	sc := ix.NewEncodeScratch()
	c := ix.AssignVec(q, sc)
	if len(cl.OwnerShards(c)) != 1 {
		t.Fatalf("cluster %d has %d owners after insert, want 1", c, len(cl.OwnerShards(c)))
	}
	resp, err = srv.Search(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsContacted != 1 {
		t.Fatalf("post-insert query contacted %d shards, want 1", resp.ShardsContacted)
	}
	if !slices.Contains(resp.IDs, newID) {
		t.Fatalf("inserted point %d not findable through selective scatter: %v", newID, resp.IDs)
	}
}

// TestClusterStatsDuringMutations runs a Stats poller against offline
// cluster mutations under -race: the snapshot must never tear (memory
// totals are internally consistent — never mixing pre- and post-compaction
// shard views into a negative or impossible number).
func TestClusterStatsDuringMutations(t *testing.T) {
	const n, base = 4000, 3500
	ix, s := mutClusterFixture(t, n, base, 8)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 3, Assignment: cluster.AssignKMeans, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := cl.Stats()
			for si, sh := range st.Shards {
				if sh.SharedBytes <= 0 || sh.PerReplicaBytes < 0 ||
					sh.TotalBytes != sh.SharedBytes+int64(sh.Replicas)*sh.PerReplicaBytes {
					t.Errorf("shard %d memory snapshot torn: %+v", si, sh)
					return
				}
			}
		}
	}()
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 30; round++ {
		ids := make([]int32, 10)
		vecs := dataset.U8Set{N: len(ids), D: s.Base.D}
		for i := range ids {
			ids[i] = int32(base + round*len(ids) + i)
			vecs.Data = append(vecs.Data, s.Base.Vec(int(ids[i]))...)
		}
		if err := cl.Insert(vecs, ids); err != nil {
			t.Fatal(err)
		}
		if err := cl.Delete(ids[:rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(3) == 0 {
			if err := cl.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestMutateUnderRoutedTraffic races live mutations through the routed
// front door against concurrent search traffic under -race: the fleet-wide
// quiescing must keep every response internally consistent, mutations must
// be visible to batches after their call returns (inserted points findable,
// deleted points absent), and the ledgers must balance after the drain.
func TestMutateUnderRoutedTraffic(t *testing.T) {
	const n, base = 4000, 3600
	ix, s := mutClusterFixture(t, n, base, 16)
	cl, err := cluster.New(ix, s.Queries, cluster.Options{
		Shards: 2, Replicas: 2, Assignment: cluster.AssignKMeans, Engine: engineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(cl, serve.Options{MaxBatch: 8, MaxWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var searchers sync.WaitGroup
	var served atomic.Uint64
	for g := 0; g < 4; g++ {
		searchers.Add(1)
		go func(g int) {
			defer searchers.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				qi := rng.Intn(s.Queries.N)
				k := 1 + rng.Intn(cl.K())
				resp, err := srv.Search(context.Background(), s.Queries.Vec(qi), k)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if len(resp.IDs) > k || len(resp.IDs) != len(resp.Items) {
					t.Errorf("torn response: %d ids, %d items, k=%d", len(resp.IDs), len(resp.Items), k)
					return
				}
				served.Add(1)
			}
		}(g)
	}

	// The mutator: insert a wave, verify findability through the live front
	// door, delete half, verify absence, occasionally compact.
	rng := rand.New(rand.NewSource(3))
	next := int32(base)
	for round := 0; round < 12; round++ {
		ids := make([]int32, 8)
		vecs := dataset.U8Set{N: len(ids), D: s.Base.D}
		for i := range ids {
			ids[i] = next
			next++
			vecs.Data = append(vecs.Data, s.Base.Vec(int(ids[i]))...)
		}
		if err := srv.Insert(vecs, ids); err != nil {
			t.Fatal(err)
		}
		probe := func(id int32) []int32 {
			resp, err := srv.Search(context.Background(), s.Base.Vec(int(id)), 0)
			if err != nil {
				t.Fatalf("probe search: %v", err)
			}
			return resp.IDs
		}
		if id := ids[rng.Intn(len(ids))]; !slices.Contains(probe(id), id) {
			t.Fatalf("round %d: inserted point %d not findable under traffic", round, id)
		}
		dead := ids[:len(ids)/2]
		if err := srv.Delete(dead); err != nil {
			t.Fatal(err)
		}
		if id := dead[rng.Intn(len(dead))]; slices.Contains(probe(id), id) {
			t.Fatalf("round %d: deleted point %d still findable under traffic", round, id)
		}
		if round%4 == 3 {
			if err := srv.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	searchers.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("no background traffic was served")
	}
	st := srv.Stats()
	for si, ss := range st.Shards {
		tot := ss.Total()
		if tot.Enqueued != tot.Completed+tot.Canceled+tot.Failed {
			t.Fatalf("shard %d ledger unbalanced after drain: %+v", si, tot)
		}
	}
	// Post-close mutations must refuse, not wedge.
	if err := srv.Compact(); err == nil {
		t.Fatal("Compact after Close must fail")
	}
}
