package cluster_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"drimann/internal/cluster"
	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/durable"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

// durableFixture builds a corpus whose tail `reserve` points are left out
// of the index as a live-insert pool, mirroring the serve-layer fixture.
func durableFixture(t testing.TB, n, queries, reserve int) (*ivf.Index, *dataset.Synth, int) {
	t.Helper()
	s := dataset.Generate(dataset.SynthConfig{
		Name: "cluster-durable", N: n, D: 64, NumQueries: queries,
		NumClusters: 40, Seed: 7, Noise: 9,
	})
	base := n - reserve
	ix, err := ivf.Build(dataset.U8Set{N: base, D: s.Base.D, Data: s.Base.Data[:base*s.Base.D]},
		ivf.BuildConfig{
			NList:       64,
			PQ:          pq.Config{M: 16, CB: 256},
			KMeansIters: 6,
			TrainSample: 3000,
			Seed:        7,
		})
	if err != nil {
		t.Fatal(err)
	}
	return ix, s, base
}

// requireFleetEqual asserts two fleets are bit-identical: search results,
// per-shard local→global tables, points, memory stats, and owner maps.
func requireFleetEqual(t *testing.T, got, want *cluster.Cluster, queries dataset.U8Set, what string) {
	t.Helper()
	wr, err := want.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := got.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.N; qi++ {
		if !reflect.DeepEqual(gr.IDs[qi], wr.IDs[qi]) || !reflect.DeepEqual(gr.Items[qi], wr.Items[qi]) {
			t.Fatalf("%s: query %d diverges:\n got %v\nwant %v", what, qi, gr.IDs[qi], wr.IDs[qi])
		}
	}
	gs, ws := got.Shards(), want.Shards()
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d shards, want %d", what, len(gs), len(ws))
	}
	for s := range gs {
		if !reflect.DeepEqual(gs[s].GlobalIDs(), ws[s].GlobalIDs()) {
			t.Fatalf("%s: shard %d table diverges", what, s)
		}
		if gs[s].Points != ws[s].Points {
			t.Fatalf("%s: shard %d points %d, want %d", what, s, gs[s].Points, ws[s].Points)
		}
		if gm, wm := gs[s].IVF().MemoryFootprint(), ws[s].IVF().MemoryFootprint(); gm != wm {
			t.Fatalf("%s: shard %d memory stats diverge: %+v vs %+v", what, s, gm, wm)
		}
	}
	for c := int32(0); int(c) < want.Index().NList; c++ {
		if !reflect.DeepEqual(got.OwnerShards(c), want.OwnerShards(c)) {
			t.Fatalf("%s: owner map diverges at cluster %d: %v vs %v",
				what, c, got.OwnerShards(c), want.OwnerShards(c))
		}
	}
}

// TestClusterRecoverBitIdentical pins the fleet-level recovery contract
// for S ∈ {1, 2, 7} under both assignment policies: a fleet recovered
// from its FleetStore serves bit-identical results, tables, owner maps,
// and memory stats to the live (never-crashed) fleet over the same
// acknowledged mutations — across two crash/recover generations, the
// second from snapshots that carry live overlays.
func TestClusterRecoverBitIdentical(t *testing.T) {
	ix, s, base := durableFixture(t, 4000, 48, 300)
	for _, shards := range []int{1, 2, 7} {
		for _, assign := range []cluster.Assignment{cluster.AssignHash, cluster.AssignKMeans} {
			t.Run(fmt.Sprintf("S=%d/%s", shards, assign), func(t *testing.T) {
				copt := cluster.Options{Shards: shards, Assignment: assign, Engine: engineOpts()}
				cl, err := cluster.New(ix, s.Queries, copt)
				if err != nil {
					t.Fatal(err)
				}
				fs := durable.NewMemFS(durable.FaultPlan{})
				fst, err := cluster.CreateFleetStore(cl, durable.Options{Dir: "fleet", FS: fs})
				if err != nil {
					t.Fatal(err)
				}

				// Mutations: multi-point batches (per-shard sub-batch
				// logging), deletes of base and fresh points, an
				// insert-then-delete pair (owner rows outlive the point),
				// and a mid-stream Compact (checkpoint rotation).
				insert := func(cl *cluster.Cluster, lo, n int) {
					t.Helper()
					ids := make([]int32, n)
					for i := range ids {
						ids[i] = int32(lo + i)
					}
					vecs := dataset.U8Set{N: n, D: s.Base.D, Data: s.Base.Data[lo*s.Base.D : (lo+n)*s.Base.D]}
					if err := cl.Insert(vecs, ids); err != nil {
						t.Fatal(err)
					}
				}
				for lo := base; lo < base+40; lo += 5 {
					insert(cl, lo, 5)
				}
				if err := cl.Delete([]int32{7, 501, int32(base + 3)}); err != nil {
					t.Fatal(err)
				}
				if err := cl.Compact(); err != nil {
					t.Fatal(err)
				}
				insert(cl, base+60, 5)
				if err := cl.Delete([]int32{int32(base + 62), 9}); err != nil {
					t.Fatal(err)
				}

				// Kill: close the live store, recover a second fleet.
				if err := fst.Close(); err != nil {
					t.Fatal(err)
				}
				rcl, rfst, err := cluster.RecoverCluster(durable.Options{Dir: "fleet", FS: fs}, s.Queries, copt)
				if err != nil {
					t.Fatal(err)
				}
				requireFleetEqual(t, rcl, cl, s.Queries, "gen 1")

				// Generation 2: mutate the recovered fleet (its rotated
				// snapshot carries the replayed overlay), kill, recover.
				insert(rcl, base+100, 5)
				if err := rcl.Delete([]int32{int32(base + 101), 23}); err != nil {
					t.Fatal(err)
				}
				if err := rfst.Close(); err != nil {
					t.Fatal(err)
				}
				rcl2, _, err := cluster.RecoverCluster(durable.Options{Dir: "fleet", FS: fs}, s.Queries, copt)
				if err != nil {
					t.Fatal(err)
				}
				requireFleetEqual(t, rcl2, rcl, s.Queries, "gen 2")
			})
		}
	}
}

// TestClusterRecoverRejectsMismatchedOptions pins the sidecar guard:
// recovering with a different shard count or assignment policy than the
// store was partitioned with must fail loudly, never silently re-route.
func TestClusterRecoverRejectsMismatchedOptions(t *testing.T) {
	ix, s, _ := durableFixture(t, 2000, 8, 100)
	copt := cluster.Options{Shards: 2, Assignment: cluster.AssignKMeans, Engine: engineOpts()}
	cl, err := cluster.New(ix, s.Queries, copt)
	if err != nil {
		t.Fatal(err)
	}
	fs := durable.NewMemFS(durable.FaultPlan{})
	if _, err := cluster.CreateFleetStore(cl, durable.Options{Dir: "fleet", FS: fs}); err != nil {
		t.Fatal(err)
	}
	bad := copt
	bad.Shards = 3
	if _, _, err := cluster.RecoverCluster(durable.Options{Dir: "fleet", FS: fs}, s.Queries, bad); err == nil {
		t.Fatal("shard-count mismatch must fail recovery")
	}
	bad = copt
	bad.Assignment = cluster.AssignHash
	if _, _, err := cluster.RecoverCluster(durable.Options{Dir: "fleet", FS: fs}, s.Queries, bad); err == nil {
		t.Fatal("assignment mismatch must fail recovery")
	}
}

// matrixOp is one single-point step of the crash-matrix workload.
// Single-point mutations touch exactly one shard, so "acknowledged"
// has no cross-shard partial case: the op is durable or it is not.
type matrixOp struct {
	kind string // "ins", "del", "compact"
	id   int32
}

func applyMatrixOp(cl *cluster.Cluster, s *dataset.Synth, op matrixOp) error {
	switch op.kind {
	case "ins":
		one := dataset.U8Set{N: 1, D: s.Base.D, Data: s.Base.Vec(int(op.id))}
		return cl.Insert(one, []int32{op.id})
	case "del":
		return cl.Delete([]int32{op.id})
	default:
		return cl.Compact()
	}
}

// corpusSet returns the fleet's live global-id set, shard by shard.
func corpusSet(cl *cluster.Cluster) map[int32]bool {
	out := make(map[int32]bool)
	for _, sh := range cl.Shards() {
		tbl := sh.GlobalIDs()
		for _, l := range sh.IVF().Index().LiveIDs() {
			out[tbl[l]] = true
		}
	}
	return out
}

// TestClusterRecoverCrashMatrix kills the fleet at every mutating
// filesystem operation of a fixed workload (torn final write included)
// and recovers: the recovered corpus must be exactly the acknowledged
// state or the acknowledged state plus the one in-flight mutation —
// never a torn hybrid — and the recovered fleet must serve bit-identical
// results to a never-crashed reference over that same op prefix. The
// workload's fresh ids ascend past every base id, so per-shard tables
// stay monotone and bit-identity holds even when a crash inside the
// Compact rotation leaves some shards recovered from the compacted
// snapshot and others replaying their pre-compact overlay.
func TestClusterRecoverCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is slow")
	}
	s := dataset.Generate(dataset.SynthConfig{
		Name: "cluster-crash", N: 1600, D: 32, NumQueries: 16,
		NumClusters: 16, Seed: 5, Noise: 9,
	})
	base := 1500
	ix, err := ivf.Build(dataset.U8Set{N: base, D: s.Base.D, Data: s.Base.Data[:base*s.Base.D]},
		ivf.BuildConfig{
			NList:       24,
			PQ:          pq.Config{M: 8, CB: 64},
			KMeansIters: 4,
			TrainSample: 1000,
			Seed:        3,
		})
	if err != nil {
		t.Fatal(err)
	}
	eopt := core.DefaultOptions()
	eopt.NumDPUs = 8
	eopt.NProbe = 6
	eopt.K = 10
	copt := cluster.Options{Shards: 2, Assignment: cluster.AssignKMeans, Engine: eopt}

	workload := []matrixOp{
		{kind: "ins", id: int32(base)},
		{kind: "ins", id: int32(base + 1)},
		{kind: "del", id: 12},
		{kind: "ins", id: int32(base + 2)},
		{kind: "del", id: int32(base + 1)},
		{kind: "compact"},
		{kind: "ins", id: int32(base + 3)},
		{kind: "del", id: 40},
	}

	// run builds a fresh durable fleet on fs, applies the workload until
	// a crash interrupts it, and reports how many ops were acknowledged
	// plus which op (if any) was in flight.
	run := func(fs *durable.MemFS) (acked int, inflight bool, err error) {
		cl, err := cluster.New(ix, s.Queries, copt)
		if err != nil {
			return 0, false, err
		}
		if _, err := cluster.CreateFleetStore(cl, durable.Options{
			Dir: "fleet", Policy: durable.SyncEveryRecord, FS: fs,
		}); err != nil {
			return 0, false, err
		}
		for _, op := range workload {
			if err := applyMatrixOp(cl, s, op); err != nil {
				if errors.Is(err, durable.ErrCrashed) || errors.Is(err, durable.ErrInjectedSync) {
					return acked, true, nil
				}
				return 0, false, err
			}
			acked++
		}
		return acked, false, nil
	}

	// Dry run: count the setup ops (crashing inside creation just means
	// no store exists — covered by the store-level matrix) and the total.
	dry := durable.NewMemFS(durable.FaultPlan{})
	probe, err := cluster.New(ix, s.Queries, copt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.CreateFleetStore(probe, durable.Options{
		Dir: "fleet", Policy: durable.SyncEveryRecord, FS: dry,
	}); err != nil {
		t.Fatal(err)
	}
	setupOps := dry.Ops()
	for _, op := range workload {
		if err := applyMatrixOp(probe, s, op); err != nil {
			t.Fatal(err)
		}
	}
	totalOps := dry.Ops()

	// Reference states: refSets[k] is the corpus after k acknowledged
	// ops; refAt(k) a never-crashed fleet with the first k ops applied.
	refSets := make([]map[int32]bool, len(workload)+1)
	{
		rcl, err := cluster.New(ix, s.Queries, copt)
		if err != nil {
			t.Fatal(err)
		}
		refSets[0] = corpusSet(rcl)
		for k, op := range workload {
			if err := applyMatrixOp(rcl, s, op); err != nil {
				t.Fatal(err)
			}
			refSets[k+1] = corpusSet(rcl)
		}
	}
	refAt := func(k int) *cluster.Cluster {
		rcl, err := cluster.New(ix, s.Queries, copt)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range workload[:k] {
			if err := applyMatrixOp(rcl, s, op); err != nil {
				t.Fatal(err)
			}
		}
		return rcl
	}

	for crashAt := setupOps + 1; crashAt <= totalOps; crashAt++ {
		fs := durable.NewMemFS(durable.FaultPlan{CrashAtOp: crashAt, TornWrite: true})
		acked, inflight, err := run(fs)
		if err != nil {
			t.Fatalf("crash@%d: workload: %v", crashAt, err)
		}
		fs.Reboot()
		rcl, _, err := cluster.RecoverCluster(durable.Options{
			Dir: "fleet", Policy: durable.SyncEveryRecord, FS: fs,
		}, s.Queries, copt)
		if err != nil {
			t.Fatalf("crash@%d: recover: %v", crashAt, err)
		}
		got := corpusSet(rcl)
		matched := -1
		for _, k := range []int{acked, acked + 1} {
			if inflight || k == acked {
				if k <= len(workload) && reflect.DeepEqual(got, refSets[k]) {
					matched = k
					break
				}
			}
		}
		if matched < 0 {
			t.Fatalf("crash@%d: recovered corpus (%d ids) is neither state %d nor %d — torn hybrid",
				crashAt, len(got), acked, acked+1)
		}
		ref := refAt(matched)
		want, err := ref.SearchBatch(s.Queries)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rcl.SearchBatch(s.Queries)
		if err != nil {
			t.Fatalf("crash@%d: recovered search: %v", crashAt, err)
		}
		for qi := 0; qi < s.Queries.N; qi++ {
			if !reflect.DeepEqual(res.IDs[qi], want.IDs[qi]) || !reflect.DeepEqual(res.Items[qi], want.Items[qi]) {
				t.Fatalf("crash@%d: query %d diverges from reference over op prefix %d",
					crashAt, qi, matched)
			}
		}
	}
}
