package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"drimann/internal/vecmath"
)

// blobs generates k well-separated Gaussian blobs with n points each.
func blobs(rng *rand.Rand, k, n, dim int, sep float64) ([]float32, []int32) {
	data := make([]float32, 0, k*n*dim)
	labels := make([]int32, 0, k*n)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = float64(c) * sep
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			for j := 0; j < dim; j++ {
				data = append(data, float32(centers[c][j]+rng.NormFloat64()*0.5))
			}
			labels = append(labels, int32(c))
		}
	}
	return data, labels
}

func TestTrainRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data, labels := blobs(rng, 4, 100, 8, 20)
	res, err := Train(data, Config{K: 4, Dim: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// All points from one blob must land in one cluster (perfect separation).
	mapping := map[int32]int32{}
	for i, lab := range labels {
		got := res.Assign[i]
		if want, ok := mapping[lab]; ok {
			if got != want {
				t.Fatalf("blob %d split across clusters %d and %d", lab, want, got)
			}
		} else {
			mapping[lab] = got
		}
	}
	if len(mapping) != 4 {
		t.Fatalf("expected 4 distinct clusters, got %d", len(mapping))
	}
}

func TestTrainInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, _ := blobs(rng, 3, 50, 4, 10)
	res, err := Train(data, Config{K: 5, Dim: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := len(data) / 4
	if len(res.Assign) != n {
		t.Fatalf("Assign length %d, want %d", len(res.Assign), n)
	}
	total := 0
	for c, s := range res.Sizes {
		if s < 0 {
			t.Fatalf("negative cluster size at %d", c)
		}
		total += s
	}
	if total != n {
		t.Fatalf("sizes sum %d, want %d", total, n)
	}
	for i, a := range res.Assign {
		if a < 0 || int(a) >= res.K {
			t.Fatalf("assignment %d out of range at %d", a, i)
		}
	}
	if res.Inertia < 0 || math.IsNaN(res.Inertia) {
		t.Fatalf("bad inertia %v", res.Inertia)
	}
}

func TestTrainAssignsNearestCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, _ := blobs(rng, 3, 60, 6, 15)
	res, err := Train(data, Config{K: 3, Dim: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(res.Assign); i++ {
		vec := data[i*6 : (i+1)*6]
		best, _ := vecmath.ArgMinL2F32(vec, res.Centroids, 6)
		if int32(best) != res.Assign[i] {
			t.Fatalf("point %d assigned to %d but nearest centroid is %d", i, res.Assign[i], best)
		}
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, _ := blobs(rng, 2, 40, 4, 8)
	a, err := Train(data, Config{K: 2, Dim: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, Config{K: 2, Dim: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if a.Centroids[i] != b.Centroids[i] {
			t.Fatalf("non-deterministic centroid at %d", i)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train([]float32{1, 2, 3}, Config{K: 2, Dim: 2}); err == nil {
		t.Fatal("expected error for ragged data")
	}
	if _, err := Train([]float32{1, 2}, Config{K: 3, Dim: 2}); err == nil {
		t.Fatal("expected error for n < K")
	}
	if _, err := Train(nil, Config{K: 0, Dim: 2}); err == nil {
		t.Fatal("expected error for K=0")
	}
}

func TestTrainHandlesDuplicatePoints(t *testing.T) {
	// All points identical: K clusters must still be produced without NaNs.
	data := make([]float32, 20*3)
	for i := range data {
		data[i] = 7
	}
	res, err := Train(data, Config{K: 4, Dim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Centroids {
		if math.IsNaN(float64(c)) {
			t.Fatal("NaN centroid on degenerate input")
		}
	}
}

func TestMiniBatchConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, labels := blobs(rng, 3, 300, 8, 25)
	res, err := Train(data, Config{K: 3, Dim: 8, Seed: 2, MiniBatch: 128, MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Mini-batch should still separate blobs cleanly at this separation.
	mapping := map[int32]map[int32]int{}
	for i, lab := range labels {
		if mapping[lab] == nil {
			mapping[lab] = map[int32]int{}
		}
		mapping[lab][res.Assign[i]]++
	}
	for lab, m := range mapping {
		bestCount, total := 0, 0
		for _, cnt := range m {
			total += cnt
			if cnt > bestCount {
				bestCount = cnt
			}
		}
		if float64(bestCount)/float64(total) < 0.95 {
			t.Fatalf("blob %d poorly clustered by mini-batch: %v", lab, m)
		}
	}
}

func TestAssignHelper(t *testing.T) {
	centroids := []float32{0, 0, 10, 10}
	data := []float32{1, 1, 9, 9, 0, 0}
	got, err := Assign(data, centroids, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Assign[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := Assign([]float32{1}, centroids, 2, 1); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestInertiaDecreasesVsRandomCentroids(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := blobs(rng, 4, 80, 8, 12)
	res, err := Train(data, Config{K: 4, Dim: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Inertia with random centroids (first 4 points) must be much worse.
	randCent := make([]float32, 4*8)
	copy(randCent, data[:4*8])
	assign := make([]int32, len(data)/8)
	cfg := Config{Dim: 8, Workers: 2}
	cfg.defaults()
	randInertia := assignAll(data, randCent, assign, nil, cfg)
	if res.Inertia >= randInertia {
		t.Fatalf("trained inertia %v not better than naive %v", res.Inertia, randInertia)
	}
}
