// Package kmeans provides the clustering used to train both the IVF coarse
// quantizer and the per-subspace PQ codebooks: k-means++ seeding followed by
// Lloyd iterations with parallel assignment, optional mini-batch updates for
// large corpora, and empty-cluster repair.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"drimann/internal/vecmath"
)

// Config controls training.
type Config struct {
	K        int   // number of centroids; required
	Dim      int   // vector dimensionality; required
	MaxIters int   // Lloyd iterations; default 25
	Seed     int64 // RNG seed; default 1
	// MiniBatch, when > 0, caps the number of points sampled per iteration.
	// Zero uses the full dataset each iteration.
	MiniBatch int
	// Tol stops early when the relative inertia improvement falls below it;
	// default 1e-4.
	Tol float64
	// Workers bounds assignment parallelism; default runtime.GOMAXPROCS(0).
	Workers int
}

func (c *Config) defaults() {
	if c.MaxIters <= 0 {
		c.MaxIters = 25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Result holds a trained clustering.
type Result struct {
	K, Dim    int
	Centroids []float32 // flat K x Dim
	Assign    []int32   // len N: cluster index per input point
	Sizes     []int     // len K: points per cluster
	Inertia   float64   // final sum of squared distances
	Iters     int       // Lloyd iterations actually run
}

// Centroid returns centroid i as a slice view.
func (r *Result) Centroid(i int) []float32 {
	return r.Centroids[i*r.Dim : (i+1)*r.Dim]
}

// Train clusters the flat data (N x cfg.Dim) into cfg.K clusters.
func Train(data []float32, cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.Dim <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: invalid config K=%d Dim=%d", cfg.K, cfg.Dim)
	}
	if len(data)%cfg.Dim != 0 {
		return nil, fmt.Errorf("kmeans: data length %d not a multiple of dim %d", len(data), cfg.Dim)
	}
	n := len(data) / cfg.Dim
	if n < cfg.K {
		return nil, fmt.Errorf("kmeans: %d points < K=%d", n, cfg.K)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	centroids := seedPlusPlus(data, n, cfg, rng)
	assign := make([]int32, n)
	prevInertia := math.Inf(1)
	iters := 0

	for it := 0; it < cfg.MaxIters; it++ {
		iters = it + 1
		sample := sampleIdx(n, cfg.MiniBatch, rng)
		inertia := assignAll(data, centroids, assign, sample, cfg)
		updateCentroids(data, centroids, assign, sample, cfg, rng)
		if sample == nil { // exact inertia only meaningful on full passes
			if prevInertia-inertia <= cfg.Tol*prevInertia {
				break
			}
			prevInertia = inertia
		}
	}
	// Final full assignment so Assign/Sizes reflect the returned centroids.
	inertia := assignAll(data, centroids, assign, nil, cfg)

	sizes := make([]int, cfg.K)
	for _, a := range assign {
		sizes[a]++
	}
	return &Result{
		K: cfg.K, Dim: cfg.Dim,
		Centroids: centroids,
		Assign:    assign,
		Sizes:     sizes,
		Inertia:   inertia,
		Iters:     iters,
	}, nil
}

// seedPlusPlus picks initial centroids with the k-means++ D² weighting.
func seedPlusPlus(data []float32, n int, cfg Config, rng *rand.Rand) []float32 {
	centroids := make([]float32, cfg.K*cfg.Dim)
	first := rng.Intn(n)
	copy(centroids[:cfg.Dim], data[first*cfg.Dim:(first+1)*cfg.Dim])

	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = float64(vecmath.L2SquaredF32(data[i*cfg.Dim:(i+1)*cfg.Dim], centroids[:cfg.Dim]))
	}
	for c := 1; c < cfg.K; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n) // all points coincide with a centroid
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		dst := centroids[c*cfg.Dim : (c+1)*cfg.Dim]
		copy(dst, data[pick*cfg.Dim:(pick+1)*cfg.Dim])
		for i := 0; i < n; i++ {
			d := float64(vecmath.L2SquaredF32(data[i*cfg.Dim:(i+1)*cfg.Dim], dst))
			if d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// sampleIdx returns a mini-batch index set, or nil for a full pass.
func sampleIdx(n, batch int, rng *rand.Rand) []int32 {
	if batch <= 0 || batch >= n {
		return nil
	}
	idx := make([]int32, batch)
	for i := range idx {
		idx[i] = int32(rng.Intn(n))
	}
	return idx
}

// assignAll assigns points (all, or just the sample) to nearest centroids in
// parallel and returns the summed squared distance over the points visited.
func assignAll(data, centroids []float32, assign []int32, sample []int32, cfg Config) float64 {
	n := len(assign)
	indexAt := func(i int) int {
		if sample == nil {
			return i
		}
		return int(sample[i])
	}
	count := n
	if sample != nil {
		count = len(sample)
	}

	workers := cfg.Workers
	if workers > count {
		workers = 1
	}
	var wg sync.WaitGroup
	partial := make([]float64, workers)
	chunk := (count + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > count {
			hi = count
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var acc float64
			for i := lo; i < hi; i++ {
				p := indexAt(i)
				best, d := vecmath.ArgMinL2F32(data[p*cfg.Dim:(p+1)*cfg.Dim], centroids, cfg.Dim)
				assign[p] = int32(best)
				acc += float64(d)
			}
			partial[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	var inertia float64
	for _, p := range partial {
		inertia += p
	}
	return inertia
}

// updateCentroids recomputes centroids as the mean of their members (over the
// sample when mini-batching) and repairs empty clusters by re-seeding them on
// the point farthest from its centroid.
func updateCentroids(data, centroids []float32, assign []int32, sample []int32, cfg Config, rng *rand.Rand) {
	sums := make([]float64, cfg.K*cfg.Dim)
	counts := make([]int, cfg.K)
	visit := func(p int) {
		c := int(assign[p])
		row := data[p*cfg.Dim : (p+1)*cfg.Dim]
		dst := sums[c*cfg.Dim : (c+1)*cfg.Dim]
		for j, x := range row {
			dst[j] += float64(x)
		}
		counts[c]++
	}
	if sample == nil {
		for p := 0; p < len(assign); p++ {
			visit(p)
		}
	} else {
		for _, p := range sample {
			visit(int(p))
		}
	}
	for c := 0; c < cfg.K; c++ {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		dst := centroids[c*cfg.Dim : (c+1)*cfg.Dim]
		src := sums[c*cfg.Dim : (c+1)*cfg.Dim]
		for j := range dst {
			dst[j] = float32(src[j] * inv)
		}
	}
	// Empty-cluster repair: re-seed on the member farthest from its centroid
	// within the currently largest cluster.
	for c := 0; c < cfg.K; c++ {
		if counts[c] > 0 {
			continue
		}
		big := 0
		for k := range counts {
			if counts[k] > counts[big] {
				big = k
			}
		}
		worst, worstD := -1, float32(-1)
		limit := len(assign)
		for p := 0; p < limit; p++ {
			if int(assign[p]) != big {
				continue
			}
			d := vecmath.L2SquaredF32(data[p*cfg.Dim:(p+1)*cfg.Dim], centroids[big*cfg.Dim:(big+1)*cfg.Dim])
			if d > worstD {
				worst, worstD = p, d
			}
		}
		if worst < 0 {
			worst = rng.Intn(len(assign))
		}
		copy(centroids[c*cfg.Dim:(c+1)*cfg.Dim], data[worst*cfg.Dim:(worst+1)*cfg.Dim])
		assign[worst] = int32(c)
		counts[c]++
		counts[big]--
	}
}

// Assign maps each row of flat data (N x dim) to its nearest centroid, in
// parallel. It returns one cluster index per row.
func Assign(data, centroids []float32, dim, workers int) ([]int32, error) {
	if dim <= 0 || len(data)%dim != 0 || len(centroids)%dim != 0 {
		return nil, errors.New("kmeans: bad shapes in Assign")
	}
	assign := make([]int32, len(data)/dim)
	cfg := Config{Dim: dim, Workers: workers}
	cfg.defaults()
	assignAll(data, centroids, assign, nil, cfg)
	return assign, nil
}
