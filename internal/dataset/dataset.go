// Package dataset provides the vector corpora DRIM-ANN is evaluated on.
//
// The paper uses public billion/hundred-million-scale sets (SIFT, DEEP,
// SPACEV, T2I — Table 1). Those are too large to ship or to search on a
// laptop, so this package generates synthetic corpora with the same shape:
// the dimension and dtype of each named dataset, clustered structure
// (Gaussian mixture), Zipf-skewed cluster popularity, and query sets skewed
// toward hot clusters — the property that drives the paper's load-balancing
// experiments. Real fvecs/bvecs/ivecs files are also supported for users who
// have the originals on disk.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"drimann/internal/topk"
	"drimann/internal/vecmath"
)

// U8Set is a flat corpus of N uint8 vectors of dimension D, the native
// storage of the PIM path (everything is 8-bit quantized, as in the paper's
// experiments).
type U8Set struct {
	N, D int
	Data []uint8
}

// Vec returns row i as a slice view.
func (s U8Set) Vec(i int) []uint8 { return s.Data[i*s.D : (i+1)*s.D] }

// F32 widens the whole set to float32 (fresh storage).
func (s U8Set) F32() F32Set {
	out := F32Set{N: s.N, D: s.D, Data: make([]float32, len(s.Data))}
	vecmath.U8ToF32(out.Data, s.Data)
	return out
}

// Bytes reports the storage footprint of the raw vectors.
func (s U8Set) Bytes() int { return len(s.Data) }

// F32Set is a flat corpus of N float32 vectors of dimension D.
type F32Set struct {
	N, D int
	Data []float32
}

// Vec returns row i as a slice view.
func (s F32Set) Vec(i int) []float32 { return s.Data[i*s.D : (i+1)*s.D] }

// Quantize maps the set onto the uint8 grid with a fitted affine quantizer,
// mirroring the paper's "DEEP100M is quantified to uint8" step.
func (s F32Set) Quantize() (U8Set, vecmath.Quantizer) {
	q := vecmath.FitQuantizer(s.Data)
	return U8Set{N: s.N, D: s.D, Data: q.EncodeAll(s.Data)}, q
}

// SynthConfig describes a synthetic corpus.
type SynthConfig struct {
	Name        string  // informational
	N           int     // number of base vectors
	D           int     // dimensionality
	NumQueries  int     // number of query vectors
	NumClusters int     // latent mixture components; default max(16, N/2000)
	ZipfS       float64 // cluster-popularity skew (>1); default 1.3
	Noise       float64 // per-dimension Gaussian sigma; default 12
	QuerySkew   float64 // fraction of queries drawn from the hot cluster mass; default 0.8
	Seed        int64   // RNG seed; default 1
	// IntrinsicDim is the rank of each cluster's noise subspace. Real
	// embedding corpora (SIFT, DEEP) have low intrinsic dimension, which is
	// what makes nearest-neighbor ranking resolvable by product quantizers;
	// isotropic full-rank noise would not. Default min(D, 12).
	IntrinsicDim int
	// Hotspots > 0 concentrates the skewed query mass around this many
	// anchor points (trending/repeated queries, as in recommendation and
	// RAG workloads): those queries repeatedly probe the same few clusters
	// regardless of nlist, the condition that makes load balancing matter.
	// 0 disables hotspots (skewed queries still favor hot clusters).
	Hotspots int
	// HotspotNoise is the perturbation sigma around an anchor; default
	// Noise/4.
	HotspotNoise float64
}

func (c *SynthConfig) defaults() {
	if c.NumClusters <= 0 {
		c.NumClusters = c.N / 2000
		if c.NumClusters < 16 {
			c.NumClusters = 16
		}
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if c.Noise <= 0 {
		c.Noise = 12
	}
	if c.QuerySkew <= 0 || c.QuerySkew > 1 {
		c.QuerySkew = 0.8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 1000
	}
	if c.IntrinsicDim <= 0 {
		c.IntrinsicDim = 12
	}
	if c.IntrinsicDim > c.D {
		c.IntrinsicDim = c.D
	}
	if c.HotspotNoise <= 0 {
		c.HotspotNoise = c.Noise / 4
	}
}

// Synth holds a generated corpus plus its query set and generation metadata.
type Synth struct {
	Config  SynthConfig
	Base    U8Set
	Queries U8Set
	// ClusterOfBase records the latent component of each base vector —
	// useful for tests, not consumed by the engine.
	ClusterOfBase []int32
}

// Generate builds a synthetic clustered corpus. Cluster sizes follow a Zipf
// law (rank-popularity), points are Gaussian around uniformly placed centers,
// and queries preferentially target popular clusters (QuerySkew of the query
// mass goes to clusters proportional to popularity²  — a heavier skew than
// the base distribution, as real query logs exhibit).
func Generate(cfg SynthConfig) *Synth {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Cluster popularity ~ Zipf over ranks.
	weights := make([]float64, cfg.NumClusters)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		wsum += weights[i]
	}
	for i := range weights {
		weights[i] /= wsum
	}

	// Centers uniform in [48, 207]^D so +-4 sigma of noise rarely clips.
	centers := make([]float64, cfg.NumClusters*cfg.D)
	for i := range centers {
		centers[i] = 48 + rng.Float64()*159
	}

	// Per-cluster low-rank noise basis: D x r with unit-variance rows, so
	// points spread with per-dimension sigma ~ Noise inside an r-dimensional
	// subspace (low intrinsic dimension, like real embeddings).
	r := cfg.IntrinsicDim
	bases := make([]float64, cfg.NumClusters*cfg.D*r)
	norm := 1 / math.Sqrt(float64(r))
	for i := range bases {
		bases[i] = rng.NormFloat64() * norm
	}
	z := make([]float64, r)
	sample := func(c int, sigma float64, dst []uint8) {
		cen := centers[c*cfg.D : (c+1)*cfg.D]
		basis := bases[c*cfg.D*r : (c+1)*cfg.D*r]
		for k := 0; k < r; k++ {
			z[k] = rng.NormFloat64() * sigma
		}
		for j := 0; j < cfg.D; j++ {
			v := cen[j]
			rowB := basis[j*r : (j+1)*r]
			for k := 0; k < r; k++ {
				v += rowB[k] * z[k]
			}
			dst[j] = clampU8(v)
		}
	}

	sizes := apportion(weights, cfg.N, rng)

	base := U8Set{N: cfg.N, D: cfg.D, Data: make([]uint8, cfg.N*cfg.D)}
	clusterOf := make([]int32, cfg.N)
	row := 0
	for c, sz := range sizes {
		for i := 0; i < sz; i++ {
			sample(c, cfg.Noise, base.Data[row*cfg.D:(row+1)*cfg.D])
			clusterOf[row] = int32(c)
			row++
		}
	}

	// Query distribution: with probability QuerySkew pick a cluster by
	// popularity² (renormalized); otherwise uniformly. Queries sit slightly
	// off-center (noise * 1.1) so exact duplicates are rare.
	hotWeights := make([]float64, cfg.NumClusters)
	var hsum float64
	for i, w := range weights {
		hotWeights[i] = w * w
		hsum += hotWeights[i]
	}
	for i := range hotWeights {
		hotWeights[i] /= hsum
	}
	// Hotspot anchors: concrete base vectors, drawn from ordinary-sized
	// clusters (at most 2x the mean population). Zipf head clusters can hold
	// a large share of the corpus; anchoring queries inside them would make
	// their true neighbors arbitrarily dense as N grows, conflating query
	// skew with quantizer resolution.
	var anchors []int
	if cfg.Hotspots > 0 {
		meanSize := cfg.N / cfg.NumClusters
		for len(anchors) < cfg.Hotspots {
			p := rng.Intn(cfg.N)
			if sizes[clusterOf[p]] > 2*meanSize {
				continue
			}
			anchors = append(anchors, p)
		}
	}

	queries := U8Set{N: cfg.NumQueries, D: cfg.D, Data: make([]uint8, cfg.NumQueries*cfg.D)}
	for qi := 0; qi < cfg.NumQueries; qi++ {
		dst := queries.Data[qi*cfg.D : (qi+1)*cfg.D]
		if rng.Float64() < cfg.QuerySkew {
			if len(anchors) > 0 {
				anchor := base.Vec(anchors[rng.Intn(len(anchors))])
				for j := 0; j < cfg.D; j++ {
					dst[j] = clampU8(float64(anchor[j]) + rng.NormFloat64()*cfg.HotspotNoise)
				}
				continue
			}
			sample(pick(hotWeights, rng), cfg.Noise*1.1, dst)
			continue
		}
		sample(rng.Intn(cfg.NumClusters), cfg.Noise*1.1, dst)
	}

	return &Synth{Config: cfg, Base: base, Queries: queries, ClusterOfBase: clusterOf}
}

// apportion converts fractional weights into integer sizes summing to n, with
// every cluster getting at least one point when n >= len(weights).
func apportion(weights []float64, n int, rng *rand.Rand) []int {
	k := len(weights)
	sizes := make([]int, k)
	assigned := 0
	for i, w := range weights {
		sizes[i] = int(w * float64(n))
		if sizes[i] == 0 && n >= k {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	for assigned > n {
		i := rng.Intn(k)
		if sizes[i] > 1 {
			sizes[i]--
			assigned--
		}
	}
	for assigned < n {
		sizes[pick(weights, rng)]++
		assigned++
	}
	return sizes
}

func pick(weights []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r <= acc {
			return i
		}
	}
	return len(weights) - 1
}

func clampU8(x float64) uint8 {
	v := math.Round(x)
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// Named dataset presets matching Table 1 shapes at a reduced scale.
// The scale parameter multiplies the default base size (100k vectors).

// SIFT generates a synthetic corpus with SIFT's shape (128-dim uint8).
func SIFT(n, queries int, seed int64) *Synth {
	return Generate(SynthConfig{Name: "SIFT", N: n, D: 128, NumQueries: queries, Seed: seed})
}

// DEEP generates a synthetic corpus with DEEP's shape (96-dim, quantized
// uint8 as in the paper's experiments).
func DEEP(n, queries int, seed int64) *Synth {
	return Generate(SynthConfig{Name: "DEEP", N: n, D: 96, NumQueries: queries, Seed: seed})
}

// SPACEV generates a synthetic corpus with SPACEV's shape (100-dim).
func SPACEV(n, queries int, seed int64) *Synth {
	return Generate(SynthConfig{Name: "SPACEV", N: n, D: 100, NumQueries: queries, Seed: seed})
}

// T2I generates a synthetic corpus with T2I's shape (200-dim).
func T2I(n, queries int, seed int64) *Synth {
	return Generate(SynthConfig{Name: "T2I", N: n, D: 200, NumQueries: queries, Seed: seed})
}

// TableEntry describes a dataset row of the paper's Table 1.
type TableEntry struct {
	Name    string
	Vectors int64
	Dim     int
}

// Table1 returns the paper's dataset inventory (full-scale declared sizes).
func Table1() []TableEntry {
	return []TableEntry{
		{Name: "ST1B (SIFT1B)", Vectors: 1_000_000_000, Dim: 128},
		{Name: "DP1B (DEEP1B)", Vectors: 1_000_000_000, Dim: 96},
		{Name: "SV1B (SPACEV1B)", Vectors: 1_000_000_000, Dim: 100},
		{Name: "T2I1B", Vectors: 1_000_000_000, Dim: 200},
		{Name: "ST100M (SIFT100M)", Vectors: 100_000_000, Dim: 128},
		{Name: "DP100M (DEEP100M)", Vectors: 100_000_000, Dim: 96},
	}
}

// GroundTruth computes exact top-k neighbors (integer L2, deterministic
// tie-break) for each query by parallel brute force.
func GroundTruth(base, queries U8Set, k, workers int) [][]int32 {
	if base.D != queries.D {
		panic(fmt.Sprintf("dataset: dim mismatch base=%d queries=%d", base.D, queries.D))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]int32, queries.N)
	var wg sync.WaitGroup
	chunk := (queries.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > queries.N {
			hi = queries.N
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for qi := lo; qi < hi; qi++ {
				q := queries.Vec(qi)
				h := topk.NewHeap[uint32](k)
				for i := 0; i < base.N; i++ {
					d := vecmath.L2SquaredU8(q, base.Vec(i))
					if h.WouldAccept(int32(i), d) {
						h.Push(int32(i), d)
					}
				}
				items := h.Sorted()
				ids := make([]int32, len(items))
				for j, it := range items {
					ids[j] = it.ID
				}
				out[qi] = ids
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Recall computes mean recall@k: the fraction of the true top-k found in the
// returned top-k, averaged over queries.
func Recall(gt, got [][]int32, k int) float64 {
	if len(gt) != len(got) {
		panic("dataset: recall length mismatch")
	}
	if len(gt) == 0 {
		return 0
	}
	var total float64
	for qi := range gt {
		truth := gt[qi]
		if len(truth) > k {
			truth = truth[:k]
		}
		res := got[qi]
		if len(res) > k {
			res = res[:k]
		}
		set := make(map[int32]struct{}, len(truth))
		for _, id := range truth {
			set[id] = struct{}{}
		}
		hits := 0
		for _, id := range res {
			if _, ok := set[id]; ok {
				hits++
			}
		}
		if len(truth) > 0 {
			total += float64(hits) / float64(len(truth))
		}
	}
	return total / float64(len(gt))
}

// ClusterSizeSkew reports the ratio of the largest latent-cluster share to a
// uniform share; tests use it to confirm the generator produces the skew the
// load-balancing experiments rely on.
func (s *Synth) ClusterSizeSkew() float64 {
	counts := make([]int, s.Config.NumClusters)
	for _, c := range s.ClusterOfBase {
		counts[c]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	uniform := float64(s.Base.N) / float64(s.Config.NumClusters)
	return float64(counts[0]) / uniform
}
