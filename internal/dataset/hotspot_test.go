package dataset

import (
	"testing"

	"drimann/internal/vecmath"
)

func TestHotspotQueriesConcentrate(t *testing.T) {
	cfg := SynthConfig{
		N: 4000, D: 16, NumQueries: 400, NumClusters: 32,
		QuerySkew: 0.9, Hotspots: 3, Seed: 9,
	}
	s := Generate(cfg)

	// Cluster queries by their nearest base vector's latent cluster; with 3
	// hotspots and 90% skew, a few latent clusters should absorb most
	// queries.
	counts := map[int32]int{}
	for qi := 0; qi < s.Queries.N; qi++ {
		best, bestD := int32(-1), uint32(1<<31)
		q := s.Queries.Vec(qi)
		for i := 0; i < s.Base.N; i += 7 { // sampled scan is enough
			d := vecmath.L2SquaredU8(q, s.Base.Vec(i))
			if d < bestD {
				best, bestD = s.ClusterOfBase[i], d
			}
		}
		counts[best]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	if float64(top)/float64(s.Queries.N) < 0.2 {
		t.Fatalf("hotspot queries should concentrate: top cluster only %d/%d", top, s.Queries.N)
	}
}

func TestHotspotsOffStillSkewed(t *testing.T) {
	a := Generate(SynthConfig{N: 2000, D: 8, NumQueries: 100, Seed: 3, Hotspots: 0})
	b := Generate(SynthConfig{N: 2000, D: 8, NumQueries: 100, Seed: 3, Hotspots: 5})
	if a.Queries.N != b.Queries.N {
		t.Fatal("query counts differ")
	}
	// Different query bytes: hotspots change the workload.
	same := 0
	for i := range a.Queries.Data {
		if a.Queries.Data[i] == b.Queries.Data[i] {
			same++
		}
	}
	if same == len(a.Queries.Data) {
		t.Fatal("hotspot flag had no effect on queries")
	}
}

func TestIntrinsicDimAvoidsDistanceConcentration(t *testing.T) {
	// Low-rank noise keeps the *mean* pairwise distance (per-dim variance is
	// normalized) but widens its *relative spread*: full-rank 32-dim
	// Gaussians suffer concentration of measure (all pairs nearly
	// equidistant), which is what makes neighbor ranking unresolvable. The
	// generator must avoid that.
	full := Generate(SynthConfig{N: 1000, D: 32, NumQueries: 1, NumClusters: 2,
		IntrinsicDim: 32, Seed: 5})
	low := Generate(SynthConfig{N: 1000, D: 32, NumQueries: 1, NumClusters: 2,
		IntrinsicDim: 2, Seed: 5})
	relSpread := func(s *Synth) float64 {
		var ids []int
		for i, c := range s.ClusterOfBase {
			if c == 0 && len(ids) < 50 {
				ids = append(ids, i)
			}
		}
		var sum, sum2 float64
		n := 0
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				d := float64(vecmath.L2SquaredU8(s.Base.Vec(ids[i]), s.Base.Vec(ids[j])))
				sum += d
				sum2 += d * d
				n++
			}
		}
		mean := sum / float64(n)
		variance := sum2/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		return variance / (mean * mean) // squared coefficient of variation
	}
	if relSpread(low) <= relSpread(full)*1.5 {
		t.Fatalf("rank-2 noise should widen relative distance spread: %v vs %v",
			relSpread(low), relSpread(full))
	}
}
