package dataset

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// The fuzz targets feed arbitrary bytes to the vecs readers and enforce
// two properties: the reader never panics (corrupt or truncated headers —
// including absurd claimed dimensions — must surface as errors), and any
// input it does accept round-trips bit-exactly through write-then-read
// (checked on the re-encoded bytes, which sidesteps NaN comparison for
// fvecs). CI runs each target for a short -fuzztime as a smoke step.

func validBvecs() []byte {
	var buf bytes.Buffer
	WriteBvecs(&buf, U8Set{N: 3, D: 4, Data: []uint8{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
	}})
	return buf.Bytes()
}

func validFvecs() []byte {
	var buf bytes.Buffer
	WriteFvecs(&buf, F32Set{N: 2, D: 3, Data: []float32{
		1.5, -2.25, 3, 0.125, 6, -7.5,
	}})
	return buf.Bytes()
}

func validIvecs() []byte {
	var buf bytes.Buffer
	WriteIvecs(&buf, [][]int32{{5, 9, 1}, {}, {42}})
	return buf.Bytes()
}

// header builds one little-endian int32 record header.
func header(dim int32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(dim))
	return b[:]
}

func FuzzReadBvecs(f *testing.F) {
	f.Add(validBvecs())
	f.Add(header(1 << 30))                 // absurd dim: must error, not OOM
	f.Add(header(-4))                      // negative dim
	f.Add(validBvecs()[:5])                // truncated row
	f.Add(append(validBvecs(), 7))         // trailing garbage
	f.Add(append(header(4), header(2)...)) // inconsistent dims
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBvecs(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := WriteBvecs(&enc1, s); err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		s2, err := ReadBvecs(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own encoding: %v", err)
		}
		var enc2 bytes.Buffer
		WriteBvecs(&enc2, s2)
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("bvecs round-trip not bit-exact")
		}
	})
}

func FuzzReadFvecs(f *testing.F) {
	f.Add(validFvecs())
	f.Add(header(1 << 28))
	f.Add(header(0))
	f.Add(validFvecs()[:9])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadFvecs(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := WriteFvecs(&enc1, s); err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		s2, err := ReadFvecs(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own encoding: %v", err)
		}
		var enc2 bytes.Buffer
		WriteFvecs(&enc2, s2)
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("fvecs round-trip not bit-exact")
		}
	})
}

func FuzzReadIvecs(f *testing.F) {
	f.Add(validIvecs())
	f.Add(header(1 << 29))
	f.Add(header(-1))
	f.Add(validIvecs()[:6])
	f.Fuzz(func(t *testing.T, data []byte) {
		lists, err := ReadIvecs(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := WriteIvecs(&enc1, lists); err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		lists2, err := ReadIvecs(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own encoding: %v", err)
		}
		var enc2 bytes.Buffer
		WriteIvecs(&enc2, lists2)
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("ivecs round-trip not bit-exact")
		}
	})
}
