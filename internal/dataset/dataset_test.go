package dataset

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGenerateShapes(t *testing.T) {
	s := Generate(SynthConfig{N: 500, D: 16, NumQueries: 50, NumClusters: 8, Seed: 3})
	if s.Base.N != 500 || s.Base.D != 16 || len(s.Base.Data) != 500*16 {
		t.Fatalf("base shape wrong: %+v", s.Base)
	}
	if s.Queries.N != 50 || s.Queries.D != 16 {
		t.Fatalf("query shape wrong: %+v", s.Queries)
	}
	if len(s.ClusterOfBase) != 500 {
		t.Fatalf("cluster labels wrong length %d", len(s.ClusterOfBase))
	}
	for _, c := range s.ClusterOfBase {
		if c < 0 || int(c) >= 8 {
			t.Fatalf("cluster label out of range: %d", c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SynthConfig{N: 200, D: 8, NumQueries: 20, Seed: 9})
	b := Generate(SynthConfig{N: 200, D: 8, NumQueries: 20, Seed: 9})
	if !bytes.Equal(a.Base.Data, b.Base.Data) || !bytes.Equal(a.Queries.Data, b.Queries.Data) {
		t.Fatal("generator is not deterministic for equal seeds")
	}
	c := Generate(SynthConfig{N: 200, D: 8, NumQueries: 20, Seed: 10})
	if bytes.Equal(a.Base.Data, c.Base.Data) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateSkew(t *testing.T) {
	s := Generate(SynthConfig{N: 5000, D: 8, NumClusters: 32, ZipfS: 1.5, Seed: 4})
	if skew := s.ClusterSizeSkew(); skew < 2 {
		t.Fatalf("expected Zipf-skewed cluster sizes, skew=%v", skew)
	}
}

func TestPresetShapes(t *testing.T) {
	cases := []struct {
		s   *Synth
		dim int
	}{
		{SIFT(300, 10, 1), 128},
		{DEEP(300, 10, 1), 96},
		{SPACEV(300, 10, 1), 100},
		{T2I(300, 10, 1), 200},
	}
	for _, c := range cases {
		if c.s.Base.D != c.dim {
			t.Fatalf("%s dim = %d, want %d", c.s.Config.Name, c.s.Base.D, c.dim)
		}
	}
}

func TestTable1Inventory(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows, want 6", len(rows))
	}
	dims := map[string]int{"ST1B (SIFT1B)": 128, "DP1B (DEEP1B)": 96, "SV1B (SPACEV1B)": 100, "T2I1B": 200}
	for _, r := range rows {
		if want, ok := dims[r.Name]; ok && r.Dim != want {
			t.Fatalf("%s dim = %d, want %d", r.Name, r.Dim, want)
		}
		if r.Vectors <= 0 {
			t.Fatalf("%s has non-positive size", r.Name)
		}
	}
}

func TestGroundTruthExactOnTiny(t *testing.T) {
	base := U8Set{N: 4, D: 2, Data: []uint8{
		0, 0,
		10, 10,
		0, 1,
		200, 200,
	}}
	queries := U8Set{N: 1, D: 2, Data: []uint8{0, 0}}
	gt := GroundTruth(base, queries, 3, 2)
	want := []int32{0, 2, 1}
	for i, id := range want {
		if gt[0][i] != id {
			t.Fatalf("gt[0] = %v, want %v", gt[0], want)
		}
	}
}

func TestGroundTruthSelfQuery(t *testing.T) {
	s := Generate(SynthConfig{N: 300, D: 8, NumQueries: 1, Seed: 5})
	// Query identical to a base vector must return that vector first.
	q := U8Set{N: 1, D: 8, Data: append([]uint8{}, s.Base.Vec(42)...)}
	gt := GroundTruth(s.Base, q, 1, 4)
	d0 := l2(q.Vec(0), s.Base.Vec(int(gt[0][0])))
	d42 := l2(q.Vec(0), s.Base.Vec(42))
	if d0 != 0 || d42 != 0 {
		t.Fatalf("self query should find an exact match, got id=%d d=%d", gt[0][0], d0)
	}
}

func l2(a, b []uint8) int {
	var s int
	for i := range a {
		d := int(a[i]) - int(b[i])
		s += d * d
	}
	return s
}

func TestRecall(t *testing.T) {
	gt := [][]int32{{1, 2, 3}, {4, 5, 6}}
	got := [][]int32{{1, 2, 9}, {4, 5, 6}}
	if r := Recall(gt, got, 3); r < 0.8333 || r > 0.8334 {
		t.Fatalf("recall = %v, want ~0.8333", r)
	}
	if r := Recall(gt, got, 2); r != 1 {
		t.Fatalf("recall@2 = %v, want 1", r)
	}
	if r := Recall(nil, nil, 5); r != 0 {
		t.Fatalf("empty recall = %v", r)
	}
}

func TestRecallPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Recall([][]int32{{1}}, nil, 1)
}

func TestFvecsRoundTrip(t *testing.T) {
	s := F32Set{N: 3, D: 4, Data: []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}}
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != s.N || got.D != s.D {
		t.Fatalf("shape %dx%d, want %dx%d", got.N, got.D, s.N, s.D)
	}
	for i := range s.Data {
		if got.Data[i] != s.Data[i] {
			t.Fatalf("fvecs roundtrip mismatch at %d", i)
		}
	}
}

func TestBvecsRoundTripProperty(t *testing.T) {
	f := func(rows [][4]uint8) bool {
		if len(rows) == 0 {
			return true
		}
		s := U8Set{N: len(rows), D: 4}
		for _, r := range rows {
			s.Data = append(s.Data, r[:]...)
		}
		var buf bytes.Buffer
		if err := WriteBvecs(&buf, s); err != nil {
			return false
		}
		got, err := ReadBvecs(&buf)
		if err != nil {
			return false
		}
		return got.N == s.N && got.D == s.D && bytes.Equal(got.Data, s.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	lists := [][]int32{{1, 2, 3}, {}, {42}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, lists); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0]) != 3 || len(got[1]) != 0 || got[2][0] != 42 {
		t.Fatalf("ivecs roundtrip = %v", got)
	}
}

func TestReadFvecsRejectsCorrupt(t *testing.T) {
	// Negative dimension.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFvecs(&buf); err == nil {
		t.Fatal("expected error for negative dim")
	}
	// Truncated row.
	buf.Reset()
	buf.Write([]byte{2, 0, 0, 0, 1, 2}) // dim=2 but only 2 bytes of payload
	if _, err := ReadFvecs(&buf); err == nil {
		t.Fatal("expected error for truncated row")
	}
}

func TestReadBvecsRejectsInconsistentDim(t *testing.T) {
	var buf bytes.Buffer
	s1 := U8Set{N: 1, D: 2, Data: []uint8{1, 2}}
	s2 := U8Set{N: 1, D: 3, Data: []uint8{1, 2, 3}}
	if err := WriteBvecs(&buf, s1); err != nil {
		t.Fatal(err)
	}
	if err := WriteBvecs(&buf, s2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBvecs(&buf); err == nil {
		t.Fatal("expected error for inconsistent dims")
	}
}

func TestQuantizeF32Set(t *testing.T) {
	s := F32Set{N: 2, D: 2, Data: []float32{-1, 0, 1, 3}}
	u, q := s.Quantize()
	if u.N != 2 || u.D != 2 {
		t.Fatalf("quantized shape wrong: %+v", u)
	}
	// Extremes map to grid ends.
	if u.Data[0] != 0 {
		t.Fatalf("min should quantize to 0, got %d", u.Data[0])
	}
	if u.Data[3] != 255 {
		t.Fatalf("max should quantize to 255, got %d", u.Data[3])
	}
	if q.Scale <= 0 {
		t.Fatal("bad quantizer scale")
	}
}

func TestGroundTruthDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GroundTruth(U8Set{N: 1, D: 2, Data: []uint8{1, 2}}, U8Set{N: 1, D: 3, Data: []uint8{1, 2, 3}}, 1, 1)
}
