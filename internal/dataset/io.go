package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The .fvecs/.bvecs/.ivecs formats used by the TEXMEX/BIGANN corpora store
// one record per vector: a little-endian int32 dimension followed by dim
// elements (float32, uint8, or int32 respectively).

// MaxVecDim bounds the per-record dimension the readers accept. The header
// is attacker-controlled in the sense that a corrupt or truncated file can
// claim any int32; without a cap, a single bogus header would drive a
// multi-gigabyte allocation and crash the process instead of returning an
// error. Real embedding corpora top out in the low thousands of
// dimensions, so 2^20 is far beyond anything legitimate.
const MaxVecDim = 1 << 20

// WriteFvecs writes a float32 set in fvecs format.
func WriteFvecs(w io.Writer, s F32Set) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < s.N; i++ {
		if err := binary.Write(bw, binary.LittleEndian, int32(s.D)); err != nil {
			return fmt.Errorf("dataset: write fvecs dim: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, s.Vec(i)); err != nil {
			return fmt.Errorf("dataset: write fvecs row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadFvecs reads an entire fvecs stream.
func ReadFvecs(r io.Reader) (F32Set, error) {
	br := bufio.NewReader(r)
	var out F32Set
	for {
		var dim int32
		err := binary.Read(br, binary.LittleEndian, &dim)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("dataset: read fvecs dim: %w", err)
		}
		if dim <= 0 || dim > MaxVecDim {
			return out, fmt.Errorf("dataset: invalid fvecs dim %d", dim)
		}
		if out.D == 0 {
			out.D = int(dim)
		} else if out.D != int(dim) {
			return out, fmt.Errorf("dataset: inconsistent fvecs dim %d vs %d", dim, out.D)
		}
		row := make([]float32, dim)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return out, fmt.Errorf("dataset: read fvecs row %d: %w", out.N, err)
		}
		out.Data = append(out.Data, row...)
		out.N++
	}
}

// WriteBvecs writes a uint8 set in bvecs format.
func WriteBvecs(w io.Writer, s U8Set) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < s.N; i++ {
		if err := binary.Write(bw, binary.LittleEndian, int32(s.D)); err != nil {
			return fmt.Errorf("dataset: write bvecs dim: %w", err)
		}
		if _, err := bw.Write(s.Vec(i)); err != nil {
			return fmt.Errorf("dataset: write bvecs row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadBvecs reads an entire bvecs stream.
func ReadBvecs(r io.Reader) (U8Set, error) {
	br := bufio.NewReader(r)
	var out U8Set
	for {
		var dim int32
		err := binary.Read(br, binary.LittleEndian, &dim)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("dataset: read bvecs dim: %w", err)
		}
		if dim <= 0 || dim > MaxVecDim {
			return out, fmt.Errorf("dataset: invalid bvecs dim %d", dim)
		}
		if out.D == 0 {
			out.D = int(dim)
		} else if out.D != int(dim) {
			return out, fmt.Errorf("dataset: inconsistent bvecs dim %d vs %d", dim, out.D)
		}
		row := make([]uint8, dim)
		if _, err := io.ReadFull(br, row); err != nil {
			return out, fmt.Errorf("dataset: read bvecs row %d: %w", out.N, err)
		}
		out.Data = append(out.Data, row...)
		out.N++
	}
}

// WriteIvecs writes ground-truth id lists in ivecs format.
func WriteIvecs(w io.Writer, lists [][]int32) error {
	bw := bufio.NewWriter(w)
	for i, list := range lists {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(list))); err != nil {
			return fmt.Errorf("dataset: write ivecs dim: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, list); err != nil {
			return fmt.Errorf("dataset: write ivecs row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadIvecs reads ground-truth id lists in ivecs format.
func ReadIvecs(r io.Reader) ([][]int32, error) {
	br := bufio.NewReader(r)
	var out [][]int32
	for {
		var dim int32
		err := binary.Read(br, binary.LittleEndian, &dim)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read ivecs dim: %w", err)
		}
		if dim < 0 || dim > MaxVecDim {
			return nil, fmt.Errorf("dataset: invalid ivecs dim %d", dim)
		}
		row := make([]int32, dim)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("dataset: read ivecs row %d: %w", len(out), err)
		}
		out = append(out, row)
	}
}

// LoadBvecsFile reads a bvecs corpus from disk.
func LoadBvecsFile(path string) (U8Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return U8Set{}, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadBvecs(f)
}

// SaveBvecsFile writes a bvecs corpus to disk.
func SaveBvecsFile(path string, s U8Set) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteBvecs(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
