// Package perfmodel implements DRIM-ANN's analytic performance model
// (paper §4, Equations 1-13): closed-form per-phase compute and memory
// costs of cluster-based ANNS as a function of the index parameters
// (K, P, C, M, CB), the dataset shape (N, Q, D, bit widths) and the hardware
// (#PE, frequency, bandwidth). The model drives the design space
// exploration, the runtime scheduler's heat estimates, and the roofline and
// scalability figures.
package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"drimann/internal/upmem"
)

// Params carries the notation of the paper's Table 2. Byte widths replace
// the paper's bit widths (the ratio is what matters; bandwidths are in
// bytes/s throughout this repository).
type Params struct {
	N int64 // total vectors
	Q int   // queries per batch
	D int   // dimension

	K  int // neighbors per query
	P  int // located clusters per query (nprobe)
	C  int // average points per cluster (N / nlist)
	M  int // subvectors per vector
	CB int // codebook entries per subspace

	BytesC  float64 // centroid element width (default 1, uint8)
	BytesQ  float64 // query element width (default 1)
	BytesP  float64 // encoded point sub-code width (default 1; 2 if CB > 256)
	BytesCB float64 // codebook element width (default 2, int16)
	BytesL  float64 // LUT entry width (default 4, uint32)
	BytesA  float64 // address width (default 4)
}

func (p *Params) defaults() error {
	if p.N <= 0 || p.Q <= 0 || p.D <= 0 || p.K <= 0 || p.P <= 0 || p.C <= 0 || p.M <= 0 || p.CB <= 0 {
		return fmt.Errorf("perfmodel: all of N,Q,D,K,P,C,M,CB must be positive: %+v", *p)
	}
	if p.D%p.M != 0 {
		return fmt.Errorf("perfmodel: M=%d must divide D=%d", p.M, p.D)
	}
	if p.BytesC == 0 {
		p.BytesC = 1
	}
	if p.BytesQ == 0 {
		p.BytesQ = 1
	}
	if p.BytesP == 0 {
		if p.CB > 256 {
			p.BytesP = 2
		} else {
			p.BytesP = 1
		}
	}
	if p.BytesCB == 0 {
		p.BytesCB = 2
	}
	if p.BytesL == 0 {
		p.BytesL = 4
	}
	if p.BytesA == 0 {
		p.BytesA = 4
	}
	return nil
}

// NList returns the cluster count N/C implied by the parameters.
func (p Params) NList() float64 { return float64(p.N) / float64(p.C) }

// Dist is Equation 2: the op count of an X-dimensional L2 distance
// (subtract, square, accumulate per element), with the squaring op costing
// mulCost add-equivalents. mulCost=1 reproduces the paper's dist(X)=3X-1;
// mulCost=32 models UPMEM's software multiply; mulCost=2 models the SQT
// replacement (abs + load).
func Dist(x int, mulCost float64) float64 {
	return float64(x)*(2+mulCost) - 1
}

func log2(x int) float64 {
	if x <= 1 {
		return 1
	}
	return math.Log2(float64(x))
}

// PhaseCost is one phase's total compute operations and memory traffic.
type PhaseCost struct {
	Compute float64 // operations
	IO      float64 // bytes
}

// C2IO is Equation 13: compute-to-IO ratio of the phase.
func (pc PhaseCost) C2IO() float64 {
	if pc.IO == 0 {
		return math.Inf(1)
	}
	return pc.Compute / pc.IO
}

// Costs evaluates Equations 1-11 for every phase. mulCost parameterizes the
// squaring operation as in Dist.
func Costs(p Params, mulCost float64) ([upmem.NumPhases]PhaseCost, error) {
	var out [upmem.NumPhases]PhaseCost
	if err := p.defaults(); err != nil {
		return out, err
	}
	q := float64(p.Q)
	nlist := p.NList()
	d := float64(p.D)
	pp := float64(p.P)
	c := float64(p.C)
	m := float64(p.M)
	cb := float64(p.CB)

	// Equation 1 & 3: cluster locating.
	out[upmem.PhaseCL] = PhaseCost{
		Compute: q * nlist * (Dist(p.D, mulCost) + log2(p.P) - 1),
		IO:      q * nlist * ((p.BytesC+p.BytesQ)*d + (p.BytesL+p.BytesA)*(log2(p.P)+1)),
	}
	// Equations 4-5: residual calculation.
	out[upmem.PhaseRC] = PhaseCost{
		Compute: q * pp * d,
		IO:      (p.BytesC + p.BytesQ) * q * pp * d,
	}
	// Equations 6-7: LUT construction.
	out[upmem.PhaseLC] = PhaseCost{
		Compute: q * pp * cb * Dist(p.D/p.M, mulCost) * m,
		IO:      q * pp * cb * ((p.BytesCB+p.BytesQ)*d + p.BytesL*m),
	}
	// Equations 8-9: distance calculation.
	out[upmem.PhaseDC] = PhaseCost{
		Compute: q * pp * c * (m - 1),
		IO:      q * pp * c * ((p.BytesA+p.BytesL)*m + p.BytesL),
	}
	// Equations 10-11: top-k sorting.
	out[upmem.PhaseTS] = PhaseCost{
		Compute: q * pp * c * (log2(p.K) - 1),
		IO:      (p.BytesL + p.BytesA) * q * pp * c * (log2(p.K) + 1),
	}
	return out, nil
}

// Hardware models one execution platform for Equation 12.
type Hardware struct {
	PE     float64 // parallel processing elements (threads or DPUs)
	FreqHz float64
	// Lanes is the SIMD width usable by the distance kernels (the AVX factor
	// for the CPU baseline; 1 for scalar DPUs).
	Lanes float64
	// BWBytes is the aggregate memory bandwidth available to the phase.
	BWBytes float64
}

// FromPlatform derives phase hardware from a platform model.
func FromPlatform(p upmem.Platform) Hardware {
	lanes := float64(p.VectorWidth)
	if lanes < 1 {
		lanes = 1
	}
	return Hardware{
		PE:      float64(p.Threads),
		FreqHz:  p.FreqGHz * 1e9,
		Lanes:   lanes,
		BWBytes: p.MemBWGBs * 1e9,
	}
}

// PhaseTime is Equation 12: compute and memory fully overlap, so the phase
// takes the maximum of the two.
func PhaseTime(pc PhaseCost, hw Hardware) float64 {
	compute := pc.Compute / (hw.FreqHz * hw.PE * hw.Lanes)
	io := pc.IO / hw.BWBytes
	return math.Max(compute, io)
}

// Assignment says which phases run on the host; the rest run on the PIM.
// DRIM-ANN's default splits CL onto the host (paper §5.2).
type Assignment struct {
	HostPhases map[upmem.Phase]bool
}

// DefaultAssignment places CL on the host.
func DefaultAssignment() Assignment {
	return Assignment{HostPhases: map[upmem.Phase]bool{upmem.PhaseCL: true}}
}

// BatchTime is the Equation 14 objective: host and PIM pipelines overlap, so
// the batch takes the maximum of the two pipelines' summed phase times.
func BatchTime(costs [upmem.NumPhases]PhaseCost, host, pim Hardware, asg Assignment) float64 {
	var hostT, pimT float64
	for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
		pc := costs[p]
		if pc.Compute == 0 && pc.IO == 0 {
			continue
		}
		if asg.HostPhases[p] {
			hostT += PhaseTime(pc, host)
		} else {
			pimT += PhaseTime(pc, pim)
		}
	}
	return math.Max(hostT, pimT)
}

// QPS converts a batch time into queries per second.
func QPS(p Params, batchTime float64) float64 {
	if batchTime <= 0 {
		return 0
	}
	return float64(p.Q) / batchTime
}

// PredictQPS is the convenience entry point used by the DSE and the
// experiment harness: UPMEM-side phases with the SQT cost model, CL on the
// host.
func PredictQPS(p Params, host, pim Hardware, sqt bool) (float64, error) {
	mulCost := 32.0
	if sqt {
		mulCost = 2.0
	}
	costs, err := Costs(p, mulCost)
	if err != nil {
		return 0, err
	}
	// The host has hardware multipliers regardless of the PIM kernel choice.
	hostCosts, err := Costs(p, 1.0)
	if err != nil {
		return 0, err
	}
	asg := DefaultAssignment()
	mixed := costs
	mixed[upmem.PhaseCL] = hostCosts[upmem.PhaseCL]
	return QPS(p, BatchTime(mixed, host, pim, asg)), nil
}

// SuggestAssignment implements the paper's placement rule (§4): phases with
// a higher compute-to-IO ratio go to the host — after the multiplier-less
// conversion most phases are memory-intensive and belong on the PIM, but
// C2IO-heavy ones can overlap on the host. The suggestion minimizes the
// Equation-14 objective greedily: phases are sorted by C2IO and host-side
// prefixes are evaluated against the full model.
func SuggestAssignment(costs [upmem.NumPhases]PhaseCost, host, pim Hardware) Assignment {
	type ranked struct {
		p    upmem.Phase
		c2io float64
	}
	var phases []ranked
	for p := upmem.Phase(0); p < upmem.NumPhases; p++ {
		if costs[p].Compute == 0 && costs[p].IO == 0 {
			continue
		}
		phases = append(phases, ranked{p, costs[p].C2IO()})
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].c2io > phases[j].c2io })

	best := Assignment{HostPhases: map[upmem.Phase]bool{}}
	bestTime := BatchTime(costs, host, pim, best)
	cur := map[upmem.Phase]bool{}
	for _, r := range phases {
		cur[r.p] = true
		cand := Assignment{HostPhases: map[upmem.Phase]bool{}}
		for p := range cur {
			cand.HostPhases[p] = true
		}
		if t := BatchTime(costs, host, pim, cand); t < bestTime {
			bestTime, best = t, cand
		}
	}
	return best
}

// ArithmeticIntensity returns total ops per byte over all phases — the
// x-axis of the roofline plot (Figure 2).
func ArithmeticIntensity(costs [upmem.NumPhases]PhaseCost) float64 {
	var ops, bytes float64
	for _, pc := range costs {
		ops += pc.Compute
		bytes += pc.IO
	}
	if bytes == 0 {
		return 0
	}
	return ops / bytes
}

// DatasetBytes returns the memory footprint of the encoded dataset plus the
// raw vectors (used for OOM checks in the roofline and scalability studies).
func DatasetBytes(p Params) float64 {
	if err := p.defaults(); err != nil {
		return 0
	}
	raw := float64(p.N) * float64(p.D) * p.BytesQ
	codes := float64(p.N) * float64(p.M) * p.BytesP
	return raw + codes
}
