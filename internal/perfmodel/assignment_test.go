package perfmodel

import (
	"testing"

	"drimann/internal/upmem"
)

func TestSuggestAssignmentNeverWorseThanAllPIM(t *testing.T) {
	p := params()
	costs, err := Costs(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	host := FromPlatform(upmem.PlatformCPU())
	pim := FromPlatform(upmem.PlatformUPMEM(32))

	allPIM := Assignment{HostPhases: map[upmem.Phase]bool{}}
	suggested := SuggestAssignment(costs, host, pim)
	if BatchTime(costs, host, pim, suggested) > BatchTime(costs, host, pim, allPIM) {
		t.Fatal("suggested assignment must not lose to the all-PIM baseline")
	}
}

func TestSuggestAssignmentPicksHighC2IOForHost(t *testing.T) {
	// CL has the highest C2IO of the phases after multiplier-less
	// conversion (it does full-dimension distances against small data), so
	// a sensible suggestion with a capable host includes CL — exactly the
	// paper's deployment choice.
	p := params()
	costs, err := Costs(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	host := FromPlatform(upmem.PlatformCPU())
	pim := FromPlatform(upmem.PlatformUPMEM(32))
	asg := SuggestAssignment(costs, host, pim)
	if len(asg.HostPhases) == 0 {
		t.Skip("model found all-PIM optimal at these constants")
	}
	// Whatever is on the host must have C2IO >= anything left on the PIM.
	minHost := 1e18
	for ph := range asg.HostPhases {
		if c := costs[ph].C2IO(); c < minHost {
			minHost = c
		}
	}
	for ph := upmem.Phase(0); ph < upmem.NumPhases; ph++ {
		if asg.HostPhases[ph] || (costs[ph].Compute == 0 && costs[ph].IO == 0) {
			continue
		}
		if costs[ph].C2IO() > minHost+1e-12 {
			t.Fatalf("phase %v (C2IO %v) on PIM while a lower-C2IO phase is on host (%v)",
				ph, costs[ph].C2IO(), minHost)
		}
	}
}

func TestSuggestAssignmentWeakHostGetsNothing(t *testing.T) {
	p := params()
	costs, err := Costs(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	weakHost := Hardware{PE: 1, FreqHz: 1e6, Lanes: 1, BWBytes: 1e6}
	pim := FromPlatform(upmem.PlatformUPMEM(32))
	asg := SuggestAssignment(costs, weakHost, pim)
	if len(asg.HostPhases) != 0 {
		t.Fatalf("a hopeless host should receive no phases, got %v", asg.HostPhases)
	}
}
