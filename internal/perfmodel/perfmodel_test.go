package perfmodel

import (
	"math"
	"testing"

	"drimann/internal/upmem"
)

func params() Params {
	return Params{
		N: 1_000_000, Q: 1000, D: 128,
		K: 10, P: 32, C: 100, M: 16, CB: 256,
	}
}

func TestDistEquation2(t *testing.T) {
	// dist(X) = 3X - 1 with a unit-cost multiply (the paper's form).
	if got := Dist(128, 1); got != 3*128-1 {
		t.Fatalf("Dist(128,1) = %v, want %v", got, 3*128-1)
	}
	// SQT replaces the multiply with abs+load (2 ops).
	if got := Dist(8, 2); got != 8*4-1 {
		t.Fatalf("Dist(8,2) = %v", got)
	}
	// Software multiply on UPMEM costs 32.
	if Dist(8, 32) <= Dist(8, 2) {
		t.Fatal("software multiply must dominate SQT cost")
	}
}

func TestCostsHandComputedCL(t *testing.T) {
	p := params()
	costs, err := Costs(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Equation 1: Q * N/C * (dist(D) + log2(P) - 1).
	nlist := float64(p.N) / float64(p.C)
	wantCompute := float64(p.Q) * nlist * (float64(3*p.D-1) + 5 - 1)
	if math.Abs(costs[upmem.PhaseCL].Compute-wantCompute) > 1e-6*wantCompute {
		t.Fatalf("CL compute = %v, want %v", costs[upmem.PhaseCL].Compute, wantCompute)
	}
	// Equation 3 IO with Bc=Bq=1, Bl=Ba=4.
	wantIO := float64(p.Q) * nlist * (2*float64(p.D) + 8*(5+1))
	if math.Abs(costs[upmem.PhaseCL].IO-wantIO) > 1e-6*wantIO {
		t.Fatalf("CL IO = %v, want %v", costs[upmem.PhaseCL].IO, wantIO)
	}
}

func TestCostsHandComputedRCDC(t *testing.T) {
	p := params()
	costs, err := Costs(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Equation 4: Q*P*D.
	if got, want := costs[upmem.PhaseRC].Compute, float64(p.Q*p.P*p.D); got != want {
		t.Fatalf("RC compute = %v, want %v", got, want)
	}
	// Equation 5: (Bc+Bq)*Q*P*D.
	if got, want := costs[upmem.PhaseRC].IO, 2*float64(p.Q*p.P*p.D); got != want {
		t.Fatalf("RC IO = %v, want %v", got, want)
	}
	// Equation 8: Q*P*C*(M-1).
	if got, want := costs[upmem.PhaseDC].Compute, float64(p.Q*p.P*p.C*(p.M-1)); got != want {
		t.Fatalf("DC compute = %v, want %v", got, want)
	}
	// Equation 9: Q*P*C*((Ba+Bl)*M + Bl).
	if got, want := costs[upmem.PhaseDC].IO, float64(p.Q*p.P*p.C)*(8*16+4); got != want {
		t.Fatalf("DC IO = %v, want %v", got, want)
	}
}

func TestCostsValidation(t *testing.T) {
	p := params()
	p.M = 7 // does not divide 128
	if _, err := Costs(p, 1); err == nil {
		t.Fatal("expected error for M not dividing D")
	}
	p = params()
	p.Q = 0
	if _, err := Costs(p, 1); err == nil {
		t.Fatal("expected error for Q=0")
	}
}

func TestLCBottleneckShiftsWithNlist(t *testing.T) {
	// Figure 9's phenomenon: raising nlist (lowering C) moves the PIM
	// bottleneck from DC to LC.
	// LC work per probed cluster scales with ~4*CB*D ops; DC with C*(M-1).
	// The crossover sits at C ~ 8500 for these parameters — consistent with
	// the paper, where nlist=2^13 on 100M vectors (C~12k) is DC-bound and
	// nlist=2^16 (C~1.5k) is LC-bound.
	smallNlist := params()
	smallNlist.C = 12000 // nlist ~ 83: DC-dominated
	bigNlist := params()
	bigNlist.C = 1500 // nlist ~ 667: LC-dominated

	cs, err := Costs(smallNlist, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Costs(bigNlist, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cs[upmem.PhaseDC].Compute <= cs[upmem.PhaseLC].Compute {
		t.Fatal("with few clusters DC should dominate LC")
	}
	if cb[upmem.PhaseLC].Compute <= cb[upmem.PhaseDC].Compute {
		t.Fatal("with many clusters LC should dominate DC")
	}
}

func TestPhaseTimeMaxForm(t *testing.T) {
	hw := Hardware{PE: 10, FreqHz: 1e9, Lanes: 1, BWBytes: 1e9}
	computeBound := PhaseCost{Compute: 1e12, IO: 1}
	ioBound := PhaseCost{Compute: 1, IO: 1e12}
	if got := PhaseTime(computeBound, hw); got != 1e12/1e10 {
		t.Fatalf("compute-bound time = %v", got)
	}
	if got := PhaseTime(ioBound, hw); got != 1e12/1e9 {
		t.Fatalf("io-bound time = %v", got)
	}
}

func TestBatchTimeOverlapsHostAndPIM(t *testing.T) {
	p := params()
	costs, err := Costs(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	host := FromPlatform(upmem.PlatformCPU())
	pim := FromPlatform(upmem.PlatformUPMEM(32))
	asg := DefaultAssignment()
	total := BatchTime(costs, host, pim, asg)

	var hostT, pimT float64
	for ph := upmem.Phase(0); ph < upmem.NumPhases; ph++ {
		if costs[ph].Compute == 0 && costs[ph].IO == 0 {
			continue
		}
		if asg.HostPhases[ph] {
			hostT += PhaseTime(costs[ph], host)
		} else {
			pimT += PhaseTime(costs[ph], pim)
		}
	}
	if total != math.Max(hostT, pimT) {
		t.Fatalf("BatchTime = %v, want max(%v, %v)", total, hostT, pimT)
	}
}

func TestPredictQPSSQTHelps(t *testing.T) {
	p := params()
	host := FromPlatform(upmem.PlatformCPU())
	pim := FromPlatform(upmem.PlatformUPMEM(32))
	withSQT, err := PredictQPS(p, host, pim, true)
	if err != nil {
		t.Fatal(err)
	}
	withoutSQT, err := PredictQPS(p, host, pim, false)
	if err != nil {
		t.Fatal(err)
	}
	if withSQT <= withoutSQT {
		t.Fatalf("SQT must improve predicted QPS: %v vs %v", withSQT, withoutSQT)
	}
	ratio := withSQT / withoutSQT
	if ratio > 32 {
		t.Fatalf("SQT gain %v cannot exceed the multiply cost ratio", ratio)
	}
}

func TestQPSMonotonicInNprobe(t *testing.T) {
	host := FromPlatform(upmem.PlatformCPU())
	pim := FromPlatform(upmem.PlatformUPMEM(32))
	prev := math.Inf(1)
	for _, nprobe := range []int{16, 32, 64, 128} {
		p := params()
		p.P = nprobe
		qps, err := PredictQPS(p, host, pim, true)
		if err != nil {
			t.Fatal(err)
		}
		if qps >= prev {
			t.Fatalf("QPS should fall as nprobe grows: %v -> %v", prev, qps)
		}
		prev = qps
	}
}

func TestC2IO(t *testing.T) {
	pc := PhaseCost{Compute: 100, IO: 50}
	if pc.C2IO() != 2 {
		t.Fatalf("C2IO = %v", pc.C2IO())
	}
	if !math.IsInf(PhaseCost{Compute: 1}.C2IO(), 1) {
		t.Fatal("zero IO should give infinite C2IO")
	}
}

func TestArithmeticIntensityLow(t *testing.T) {
	// ANNS is memory-hungry: its overall arithmetic intensity is low
	// (Figure 2 places it well left of the GPU roofline knee).
	costs, err := Costs(params(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ai := ArithmeticIntensity(costs)
	if ai <= 0 || ai > 20 {
		t.Fatalf("arithmetic intensity %v outside plausible ANNS range", ai)
	}
}

func TestDatasetBytes(t *testing.T) {
	p := params()
	want := float64(p.N)*128 + float64(p.N)*16
	if got := DatasetBytes(p); got != want {
		t.Fatalf("DatasetBytes = %v, want %v", got, want)
	}
}

func TestCodeBytesDefaultFollowsCB(t *testing.T) {
	p := params()
	p.CB = 1024
	if _, err := Costs(p, 1); err != nil {
		t.Fatal(err)
	}
	if p.BytesP != 0 {
		t.Fatal("Costs must not mutate the caller's copy")
	}
}
