package bench

import (
	"fmt"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/energy"
	"drimann/internal/perfmodel"
	"drimann/internal/upmem"
)

// paperDPUs is the paper's UPMEM server size; scaled experiments compare a
// NumDPUs-sized slice of it against the same slice of the 32-thread CPU
// baseline so all ratios carry over.
const paperDPUs = 2543

// drimRun is one simulated DRIM-ANN execution.
type drimRun struct {
	QPS     float64
	Recall  float64
	Metrics core.Metrics
}

// runDRIM builds an engine for (dataset, nlist, nprobe) with optional option
// mutation and simulates the full query set.
func (r *Runner) runDRIM(name string, nlist, nprobe int, mutate func(*core.Options)) (drimRun, error) {
	return r.runDRIMCB(name, nlist, nprobe, r.Scale.CB, mutate)
}

// runDRIMCB is runDRIM with an explicit codebook size (a few experiments
// need a DC-heavy configuration).
func (r *Runner) runDRIMCB(name string, nlist, nprobe, cb int, mutate func(*core.Options)) (drimRun, error) {
	s := r.Dataset(name)
	m := subvectorsFor(s.Base.D)
	ix, err := r.Index(name, nlist, m, cb)
	if err != nil {
		return drimRun{}, err
	}
	opts := core.DefaultOptions()
	opts.NumDPUs = r.Scale.NumDPUs
	opts.K = r.Scale.K
	opts.NProbe = nprobe
	opts.BatchSize = 128
	opts.CopyFootprint = 64 << 10
	if mutate != nil {
		mutate(&opts)
	}
	eng, err := core.New(ix, s.Queries, opts)
	if err != nil {
		return drimRun{}, err
	}
	res, err := eng.SearchBatch(s.Queries)
	if err != nil {
		return drimRun{}, err
	}
	gt := r.GroundTruth(name)
	return drimRun{
		QPS:     res.Metrics.QPS,
		Recall:  dataset.Recall(gt, res.IDs, r.Scale.K),
		Metrics: res.Metrics,
	}, nil
}

// cpuQPS models the Faiss-CPU baseline on the same scaled slice: the CPU
// model gets NumDPUs/2543 of the paper CPU's threads and bandwidth. The DC
// LUT gathers are charged to cache, not DRAM (Faiss keeps per-query LUTs L1
// resident), so only code/id streaming hits memory — without this the paper
// model overstates CPU memory traffic.
func (r *Runner) cpuQPS(name string, nlist, nprobe int) (float64, error) {
	s := r.Dataset(name)
	m := subvectorsFor(s.Base.D)
	slice := float64(r.Scale.NumDPUs) / paperDPUs
	c := s.Base.N / nlist
	if c < 1 {
		c = 1
	}
	p := perfmodel.Params{
		N: int64(s.Base.N), Q: s.Queries.N, D: s.Base.D,
		K: r.Scale.K, P: nprobe, C: c, M: m, CB: r.Scale.CB,
	}
	costs, err := perfmodel.Costs(p, 1)
	if err != nil {
		return 0, err
	}
	// Streaming-only DC/TS IO (codes + ids; LUT gathers are cache hits).
	costs[upmem.PhaseDC].IO = float64(p.Q*p.P*c) * (float64(m) + 4)
	costs[upmem.PhaseTS].IO = float64(p.Q*p.P*c) * 1 // threshold hits cache

	cpu := upmem.PlatformCPU()
	hw := perfmodel.FromPlatform(cpu)
	const cpuEfficiency = 0.35 // Faiss-like fraction of peak on this mix
	hw.PE *= slice * cpuEfficiency
	hw.BWBytes *= slice
	var total float64
	for ph := upmem.Phase(0); ph < upmem.NumPhases; ph++ {
		pc := costs[ph]
		if pc.Compute == 0 && pc.IO == 0 {
			continue
		}
		phw := hw
		if ph == upmem.PhaseDC || ph == upmem.PhaseTS {
			phw.Lanes = 1 // gather/compare phases do not vectorize well
		}
		total += perfmodel.PhaseTime(pc, phw)
	}
	return perfmodel.QPS(p, total), nil
}

// Table1 regenerates the dataset inventory.
func Table1(r *Runner) (*Table, error) {
	t := &Table{
		ID: "T1", Title: "Large-scale ANNS datasets",
		Columns: []string{"Dataset", "Vectors", "Dim", "Synthetic stand-in (this run)"},
	}
	scaleByName := map[string]string{
		"ST1B (SIFT1B)": "SIFT", "DP1B (DEEP1B)": "DEEP", "SV1B (SPACEV1B)": "SPACEV",
		"T2I1B": "T2I", "ST100M (SIFT100M)": "SIFT", "DP100M (DEEP100M)": "DEEP",
	}
	for _, row := range dataset.Table1() {
		stand := scaleByName[row.Name]
		t.AddRow(row.Name, fmt.Sprintf("%d", row.Vectors), fmt.Sprintf("%d", row.Dim),
			fmt.Sprintf("%s x %d vectors", stand, r.Scale.N))
	}
	t.Notes = append(t.Notes,
		"original corpora are generated synthetically at reduced scale with matching dim/dtype/skew (DESIGN.md)")
	return t, nil
}

// Figure2 regenerates the roofline analysis at paper scale (it is analytic
// in the paper as well).
func Figure2(*Runner) (*Table, error) {
	t := &Table{
		ID: "F2", Title: "Roofline analysis of ANNS (attainable GOPs; X = OOM)",
		Columns: []string{"Dataset", "AI (ops/B)", "CPU", "GPU x1", "GPU x2", "UPMEM x16", "UPMEM x24", "UPMEM x32"},
	}
	type ds struct {
		name string
		n    int64
		d    int
	}
	sets := []ds{
		{"SIFT100M", 100e6, 128}, {"DEEP100M", 100e6, 96},
		{"SIFT1B", 1e9, 128}, {"DEEP1B", 1e9, 96},
		{"SPACEV1B", 1e9, 100}, {"T2I1B", 1e9, 200},
	}
	gpu1 := upmem.PlatformGPU()
	gpu2 := gpu1
	gpu2.Name = "GPU x2"
	gpu2.PeakGOPs *= 2
	gpu2.MemBWGBs *= 2
	gpu2.MemCapGB *= 2
	platforms := []upmem.Platform{
		upmem.PlatformCPU(), gpu1, gpu2,
		upmem.PlatformUPMEM(16), upmem.PlatformUPMEM(24), upmem.PlatformUPMEM(32),
	}
	for _, s := range sets {
		m := subvectorsFor(s.d)
		p := perfmodel.Params{
			N: s.n, Q: 10000, D: s.d, K: 10, P: 96, C: int(s.n / (1 << 14)), M: m, CB: 256,
		}
		costs, err := perfmodel.Costs(p, 1)
		if err != nil {
			return nil, err
		}
		ai := perfmodel.ArithmeticIntensity(costs)
		row := []string{s.name, f2(ai)}
		bytes := perfmodel.DatasetBytes(p)
		for _, pf := range platforms {
			if !pf.Fits(bytes) {
				row = append(row, "X (OOM)")
				continue
			}
			row = append(row, f0(pf.RooflineGOPs(ai)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "intersection of each dataset's arithmetic intensity with each platform's roofline; X marks out-of-memory")
	return t, nil
}

// endToEnd runs the Figure 7/8 sweeps for one dataset.
func endToEnd(r *Runner, id, name string) (*Table, error) {
	t := &Table{
		ID: id, Title: fmt.Sprintf("End-to-end QPS on %s-shaped data (DRIM-ANN vs Faiss-CPU)", name),
		Columns: []string{"sweep", "value", "Faiss-CPU QPS", "DRIM-ANN QPS", "speedup", "recall@10"},
	}
	midNlist := r.Scale.NLists[len(r.Scale.NLists)/2]
	midNprobe := r.Scale.NProbes[len(r.Scale.NProbes)/2]

	for _, nprobe := range r.Scale.NProbes {
		drim, err := r.runDRIM(name, midNlist, nprobe, nil)
		if err != nil {
			return nil, err
		}
		cq, err := r.cpuQPS(name, midNlist, nprobe)
		if err != nil {
			return nil, err
		}
		t.AddRow("nprobe", fmt.Sprintf("%d", nprobe), f0(cq), f0(drim.QPS), f2(drim.QPS/cq), f3(drim.Recall))
	}
	for _, nlist := range r.Scale.NLists {
		drim, err := r.runDRIM(name, nlist, midNprobe, nil)
		if err != nil {
			return nil, err
		}
		cq, err := r.cpuQPS(name, nlist, midNprobe)
		if err != nil {
			return nil, err
		}
		t.AddRow("nlist", fmt.Sprintf("%d", nlist), f0(cq), f0(drim.QPS), f2(drim.QPS/cq), f3(drim.Recall))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("simulated %d-DPU slice of the paper's 2543-DPU server vs the matching slice of the 32-thread AVX2 CPU", r.Scale.NumDPUs),
		"paper: 1.63x-2.25x (SIFT100M) and 1.61x-2.46x (DEEP100M)")
	return t, nil
}

// Figure7 regenerates the SIFT end-to-end comparison.
func Figure7(r *Runner) (*Table, error) { return endToEnd(r, "F7", "SIFT") }

// Figure8 regenerates the DEEP end-to-end comparison.
func Figure8(r *Runner) (*Table, error) { return endToEnd(r, "F8", "DEEP") }

// Figure9 regenerates the PIM kernel latency breakdown.
func Figure9(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F9", Title: "PIM kernel latency breakdown on SIFT-shaped data",
		Columns: []string{"sweep", "value", "RC", "LC", "DC", "TS", "Others"},
	}
	midNlist := r.Scale.NLists[len(r.Scale.NLists)/2]
	midNprobe := r.Scale.NProbes[len(r.Scale.NProbes)/2]
	addRow := func(sweep string, value int, m core.Metrics) {
		sh := m.PhaseShare()
		t.AddRow(sweep, fmt.Sprintf("%d", value),
			f3(sh[upmem.PhaseRC]), f3(sh[upmem.PhaseLC]),
			f3(sh[upmem.PhaseDC]), f3(sh[upmem.PhaseTS]),
			f3(sh[upmem.PhaseCL]+sh[upmem.PhaseOther]))
	}
	for _, nprobe := range r.Scale.NProbes {
		drim, err := r.runDRIM("SIFT", midNlist, nprobe, nil)
		if err != nil {
			return nil, err
		}
		addRow("nprobe", nprobe, drim.Metrics)
	}
	for _, nlist := range r.Scale.NLists {
		drim, err := r.runDRIM("SIFT", nlist, midNprobe, nil)
		if err != nil {
			return nil, err
		}
		addRow("nlist", nlist, drim.Metrics)
	}
	t.Notes = append(t.Notes, "paper: LC and DC dominate; the bottleneck moves from DC to LC as nlist grows")
	return t, nil
}

// Figure10 regenerates the energy comparison.
func Figure10(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F10", Title: "End-to-end energy on SIFT-shaped data (J per query batch)",
		Columns: []string{"sweep", "value", "Faiss-CPU J", "DRIM-ANN J", "efficiency gain"},
	}
	cpuPower := energy.CPUServer()
	pimPower := energy.UPMEMServer(32) // the paper's full 32-DIMM server
	// Both systems are simulated as a 1/scaleup slice; energy per query at
	// full scale is P_full / (QPS_slice * scaleup).
	scaleup := paperDPUs / float64(r.Scale.NumDPUs)
	midNlist := r.Scale.NLists[len(r.Scale.NLists)/2]
	midNprobe := r.Scale.NProbes[len(r.Scale.NProbes)/2]

	addRow := func(sweep string, value, nlist, nprobe int) error {
		drim, err := r.runDRIM("SIFT", nlist, nprobe, nil)
		if err != nil {
			return err
		}
		cq, err := r.cpuQPS("SIFT", nlist, nprobe)
		if err != nil {
			return err
		}
		q := float64(r.Scale.Queries)
		cpuJ := cpuPower.Watts(1) * q / (cq * scaleup)
		pimJ := pimPower.Watts(1) * q / (drim.QPS * scaleup)
		t.AddRow(sweep, fmt.Sprintf("%d", value), f2(cpuJ), f2(pimJ), f2(cpuJ/pimJ))
		return nil
	}
	for _, nprobe := range r.Scale.NProbes {
		if err := addRow("nprobe", nprobe, midNlist, nprobe); err != nil {
			return nil, err
		}
	}
	for _, nlist := range r.Scale.NLists {
		if err := addRow("nlist", nlist, nlist, midNprobe); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "paper: 1.10x-1.58x better energy efficiency than the CPU baseline (geomean 1.27x)")
	return t, nil
}
