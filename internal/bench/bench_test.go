package bench

// Shape tests: each experiment must regenerate rows whose *shape* matches
// the paper — who wins, by roughly what factor, where crossovers fall.
// Absolute values are simulator-scale, so all bands are deliberately loose.

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	testRunnerOnce sync.Once
	testRunner     *Runner
	testTables     map[string]*Table
	testErr        error
)

// tables runs every experiment once on a shared runner.
func tables(t *testing.T) map[string]*Table {
	t.Helper()
	testRunnerOnce.Do(func() {
		testRunner = NewRunner(SmallScale())
		testTables = map[string]*Table{}
		for _, e := range All() {
			tab, err := e.Run(testRunner)
			if err != nil {
				testErr = err
				return
			}
			testTables[e.ID] = tab
		}
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testTables
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSpace(tab.Rows[row][col])
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: cannot parse %q", tab.ID, row, col, s)
	}
	return v
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(ids))
	}
	if _, ok := ByID("f7"); !ok {
		t.Fatal("ByID should be case-insensitive")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id should not resolve")
	}
}

func TestAllExperimentsProduceRows(t *testing.T) {
	for id, tab := range tables(t) {
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: ragged row %v", id, row)
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab := tables(t)["T1"]
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 1 must list 6 datasets, got %d", len(tab.Rows))
	}
}

func TestFigure2Shape(t *testing.T) {
	tab := tables(t)["F2"]
	// SIFT1B row: GPU x1 and UPMEM x16 OOM, CPU tiny, UPMEM x32 alive.
	for _, row := range tab.Rows {
		if row[0] == "SIFT1B" {
			if !strings.Contains(row[3], "OOM") {
				t.Fatalf("SIFT1B must OOM on one A100, got %q", row[3])
			}
			if strings.Contains(row[7], "OOM") {
				t.Fatalf("SIFT1B must fit UPMEM x32, got %q", row[7])
			}
		}
		if row[0] == "SIFT100M" {
			cpu := mustFloat(t, row[2])
			gpu := mustFloat(t, row[3])
			u16 := mustFloat(t, row[5])
			u32 := mustFloat(t, row[7])
			if cpu >= gpu {
				t.Fatal("CPU must be the slowest platform at ANNS intensity")
			}
			if u32 <= u16 {
				t.Fatal("UPMEM must scale with DIMMs")
			}
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cannot parse %q", s)
	}
	return v
}

func testEndToEndShape(t *testing.T, id string) {
	tab := tables(t)[id]
	if len(tab.Rows) != len(SmallScale().NProbes)+len(SmallScale().NLists) {
		t.Fatalf("%s rows = %d", id, len(tab.Rows))
	}
	for i := range tab.Rows {
		speedup := cell(t, tab, i, 4)
		if speedup < 1.0 || speedup > 5.0 {
			t.Errorf("%s row %d: DRIM/CPU speedup %v outside [1, 5] (paper: 1.6-2.5)", id, i, speedup)
		}
		recall := cell(t, tab, i, 5)
		if recall < 0.5 {
			t.Errorf("%s row %d: recall %v too low", id, i, recall)
		}
	}
	// QPS must fall as nprobe grows (both engines scan more clusters).
	nprobes := len(SmallScale().NProbes)
	for i := 1; i < nprobes; i++ {
		if cell(t, tab, i, 3) > cell(t, tab, i-1, 3) {
			t.Errorf("%s: DRIM QPS should fall with nprobe", id)
		}
	}
	// Recall at the largest nlist configuration approaches the paper's 0.8
	// constraint.
	if r := cell(t, tab, len(tab.Rows)-1, 5); r < 0.7 {
		t.Errorf("%s: final recall %v, want >= 0.7", id, r)
	}
}

func TestFigure7Shape(t *testing.T) { testEndToEndShape(t, "F7") }
func TestFigure8Shape(t *testing.T) { testEndToEndShape(t, "F8") }

func TestFigure9Shape(t *testing.T) {
	tab := tables(t)["F9"]
	nprobes := len(SmallScale().NProbes)
	for i := range tab.Rows {
		lc := cell(t, tab, i, 3)
		dc := cell(t, tab, i, 4)
		ts := cell(t, tab, i, 5)
		if lc+dc < 0.7 {
			t.Errorf("F9 row %d: LC+DC share %v should dominate", i, lc+dc)
		}
		if ts > 0.15 {
			t.Errorf("F9 row %d: TS share %v too high (lock pruning should shrink it)", i, ts)
		}
	}
	// DC share falls as nlist rises (the paper's bottleneck shift).
	first := cell(t, tab, nprobes, 4)
	last := cell(t, tab, len(tab.Rows)-1, 4)
	if last > first {
		t.Errorf("F9: DC share should fall with nlist: %v -> %v", first, last)
	}
}

func TestFigure10Shape(t *testing.T) {
	tab := tables(t)["F10"]
	for i := range tab.Rows {
		gain := cell(t, tab, i, 4)
		if gain < 0.8 || gain > 3.0 {
			t.Errorf("F10 row %d: energy gain %v outside [0.8, 3] (paper: 1.10-1.58)", i, gain)
		}
	}
}

func TestFigure11aShape(t *testing.T) {
	tab := tables(t)["F11a"]
	for i := range tab.Rows {
		lc := cell(t, tab, i, 1)
		overall := cell(t, tab, i, 2)
		if lc < 1.3 || lc > 6 {
			t.Errorf("F11a row %d: LC speedup %v outside [1.3, 6] (paper: ~1.93)", i, lc)
		}
		if overall > lc+0.05 {
			t.Errorf("F11a row %d: overall speedup %v exceeds LC speedup %v", i, overall, lc)
		}
		if overall < 1 {
			t.Errorf("F11a row %d: SQT should never slow the engine down (%v)", i, overall)
		}
	}
}

func TestFigure11bShape(t *testing.T) {
	tab := tables(t)["F11b"]
	for i := range tab.Rows {
		ratio := cell(t, tab, i, 4)
		if ratio <= 0.2 || ratio > 1.1 {
			t.Errorf("F11b row %d: actual/model %v outside (0.2, 1.1] (paper: 0.72-1.0)", i, ratio)
		}
	}
}

func TestFigure12aShape(t *testing.T) {
	tab := tables(t)["F12a"]
	if len(tab.Rows) != 12 {
		t.Fatalf("F12a rows = %d, want 12 (3 datasets x 4 targets)", len(tab.Rows))
	}
	// Within each dataset the normalized throughput must not increase as
	// the accuracy floor tightens.
	for ds := 0; ds < 3; ds++ {
		for i := 1; i < 4; i++ {
			prev := cell(t, tab, ds*4+i-1, 4)
			cur := cell(t, tab, ds*4+i, 4)
			if cur > prev*1.01 {
				t.Errorf("F12a %s: throughput rose as the constraint tightened (%v -> %v)",
					tab.Rows[ds*4][0], prev, cur)
			}
		}
	}
}

func TestFigure12bShape(t *testing.T) {
	tab := tables(t)["F12b"]
	for i := range tab.Rows {
		sp := cell(t, tab, i, 2)
		if sp < 2.5 || sp > 6.5 {
			t.Errorf("F12b row %d: WRAM speedup %v outside [2.5, 6.5] (paper: 3.86-4.30, bound 4.72)", i, sp)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	tab := tables(t)["F13"]
	maxOverall := 0.0
	for i := range tab.Rows {
		overall := cell(t, tab, i, 2)
		alloc := cell(t, tab, i, 3)
		if overall < 0.95 {
			t.Errorf("F13 row %d: overall speedup %v < 1", i, overall)
		}
		if alloc < 0.9 {
			t.Errorf("F13 row %d: allocation speedup %v < 0.9", i, alloc)
		}
		if overall > maxOverall {
			maxOverall = overall
		}
	}
	if maxOverall < 1.8 {
		t.Errorf("F13: peak overall speedup %v too small (paper: 4.84-6.19)", maxOverall)
	}
}

func TestFigure14aShape(t *testing.T) {
	tab := tables(t)["F14a"]
	maxSp := 0.0
	for i := range tab.Rows {
		sp := cell(t, tab, i, 1)
		if sp < 0.8 {
			t.Errorf("F14a row %d: splitting should not badly hurt (%v)", i, sp)
		}
		if sp > maxSp {
			maxSp = sp
		}
	}
	if maxSp < 1.2 {
		t.Errorf("F14a: best split speedup %v too small (paper: up to 3.35)", maxSp)
	}
	// The finest granularity must beat the coarsest.
	if cell(t, tab, 0, 1) < cell(t, tab, len(tab.Rows)-1, 1) {
		t.Error("F14a: finest slices should beat coarsest")
	}
}

func TestFigure14bShape(t *testing.T) {
	tab := tables(t)["F14b"]
	first := cell(t, tab, 0, 1)
	last := cell(t, tab, len(tab.Rows)-1, 1)
	peak := first
	for i := range tab.Rows {
		if v := cell(t, tab, i, 1); v > peak {
			peak = v
		}
	}
	if last < first*1.5 {
		t.Errorf("F14b: duplication should pay off: %v -> %v", first, last)
	}
	if peak < 2.2 {
		t.Errorf("F14b: peak duplication speedup %v too small", peak)
	}
	if last < peak*0.7 {
		t.Errorf("F14b: speedup should saturate, not collapse: last %v vs peak %v", last, peak)
	}
	// Roughly monotone: scheduling noise allows small dips, never collapses.
	for i := 1; i < len(tab.Rows); i++ {
		if cell(t, tab, i, 1) < cell(t, tab, i-1, 1)*0.75 {
			t.Errorf("F14b: speedup dipped too much at row %d", i)
		}
	}
}

func TestFigure15Shape(t *testing.T) {
	tab := tables(t)["F15"]
	for i := range tab.Rows {
		upmemCPU := cell(t, tab, i, 1)
		aimCPU := cell(t, tab, i, 3)
		upmemGPU := cell(t, tab, i, 4)
		hbmGPU := cell(t, tab, i, 5)
		aimGPU := cell(t, tab, i, 6)
		if upmemCPU < 0.9 || upmemCPU > 2.6 {
			t.Errorf("F15 row %d: UPMEM/CPU %v outside [0.9, 2.6] (paper ~1.9)", i, upmemCPU)
		}
		if upmemGPU > 0.3 {
			t.Errorf("F15 row %d: UPMEM/GPU %v should be far below 1 (paper ~0.16)", i, upmemGPU)
		}
		if hbmGPU < 0.6 || hbmGPU > 1.2 {
			t.Errorf("F15 row %d: HBM-PIM/GPU %v outside [0.6, 1.2] (paper 0.76-1.00)", i, hbmGPU)
		}
		if aimGPU < 1.7 || aimGPU > 3.0 {
			t.Errorf("F15 row %d: AiM/GPU %v outside [1.7, 3.0] (paper 2.09-2.67)", i, aimGPU)
		}
		if aimCPU < 20 || aimCPU > 40 {
			t.Errorf("F15 row %d: AiM/CPU %v outside [20, 40] (paper 30.1-33.9)", i, aimCPU)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tab := tables(t)["T3"]
	if len(tab.Rows) != 3 {
		t.Fatalf("T3 rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][2] != "405" {
		t.Fatalf("MemANNS reported QPS must be cited as 405, got %q", tab.Rows[0][2])
	}
	noDSE := cell(t, tab, 1, 2)
	withDSE := cell(t, tab, 2, 2)
	if noDSE < 100 || noDSE > 900 {
		t.Errorf("T3: no-DSE QPS %v outside [100, 900] (paper: 419)", noDSE)
	}
	if withDSE < noDSE*2.5 {
		t.Errorf("T3: DSE should multiply throughput: %v vs %v (paper: 9.2x)", withDSE, noDSE)
	}
	if withDSE < 405 {
		t.Errorf("T3: DRIM-ANN with DSE (%v) must beat MemANNS (405)", withDSE)
	}
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(SmallScale())
	a := r.Dataset("SIFT")
	b := r.Dataset("SIFT")
	if a != b {
		t.Fatal("datasets must be cached")
	}
	ixA, err := r.Index("SIFT", 32, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	ixB, err := r.Index("SIFT", 32, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ixA != ixB {
		t.Fatal("indexes must be cached")
	}
	gtA := r.GroundTruth("SIFT")
	gtB := r.GroundTruth("SIFT")
	if &gtA[0] != &gtB[0] {
		t.Fatal("ground truth must be cached")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{ID: "X", Title: "test", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== X: test ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint output missing %q:\n%s", want, out)
		}
	}
}
