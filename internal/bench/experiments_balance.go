package bench

import (
	"fmt"

	"drimann/internal/core"
	"drimann/internal/perfmodel"
	"drimann/internal/upmem"
)

// naiveOptions disables every load-balance mechanism: whole clusters
// round-robin across DPUs, no duplication, no postponement — the paper's
// imbalanced baseline.
func naiveOptions(o *core.Options) {
	o.EnableSplit = false
	o.EnableDup = false
	o.EnableBalance = false
	o.Rebalance = false
	o.Th3 = 0
}

// Figure13 regenerates the load-balance speedups: overall (partition +
// duplication + allocation + scheduling) and allocation-only.
func Figure13(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F13", Title: "Speedup of load-balance optimization on skewed queries",
		Columns: []string{"dataset", "nlist", "overall speedup", "allocation-only speedup"},
	}
	for _, name := range []string{"SIFT", "DEEP"} {
		for _, nlist := range r.Scale.NLists {
			// Like the paper (nprobe=96 on 2543 DPUs), each query must touch
			// far fewer clusters than there are DPUs for imbalance to show.
			nprobe := r.Scale.NProbes[0]
			full, err := r.runDRIM(name, nlist, nprobe, nil)
			if err != nil {
				return nil, err
			}
			allocOnly, err := r.runDRIM(name, nlist, nprobe, func(o *core.Options) {
				o.EnableSplit = false
				o.EnableDup = false
				o.Rebalance = false
				o.Th3 = 0
			})
			if err != nil {
				return nil, err
			}
			naive, err := r.runDRIM(name, nlist, nprobe, naiveOptions)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%d", nlist),
				f2(naive.Metrics.PIMSeconds/full.Metrics.PIMSeconds),
				f2(naive.Metrics.PIMSeconds/allocOnly.Metrics.PIMSeconds))
		}
	}
	t.Notes = append(t.Notes, "paper: overall 4.84x-6.19x rising with nlist; allocation alone 1.76x-4.07x")
	return t, nil
}

// Figure14a regenerates the split-granularity sweep.
func Figure14a(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F14a", Title: "Cluster partition: speedup vs split granularity",
		Columns: []string{"split granularity (points)", "speedup vs imbalanced"},
	}
	// DC-heavy configuration (few large clusters, small codebook), the
	// regime where the paper studies partitioning: splitting spreads the
	// dominant scan work, and the LUT-rebuild overhead of extra slices is
	// secondary.
	nlist := 16
	cb := 16
	nprobe := r.Scale.NProbes[0]
	naive, err := r.runDRIMCB("SIFT", nlist, nprobe, cb, naiveOptions)
	if err != nil {
		return nil, err
	}
	avgC := r.Scale.N / nlist
	for _, frac := range []int{8, 4, 2, 1} {
		th := avgC / frac
		if th < 1 {
			th = 1
		}
		run, err := r.runDRIMCB("SIFT", nlist, nprobe, cb, func(o *core.Options) {
			// Isolate partition + allocation: no duplication, no runtime
			// rebalancing or postponement on either side of the comparison.
			o.EnableDup = false
			o.SplitThreshold = th
			o.Rebalance = false
			o.Th3 = 0
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", th), f2(naive.Metrics.PIMSeconds/run.Metrics.PIMSeconds))
	}
	t.Notes = append(t.Notes, "paper: partition + allocation reaches up to 3.35x; finer slices balance better until metadata overhead bites")
	return t, nil
}

// Figure14b regenerates the duplication-footprint sweep.
func Figure14b(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F14b", Title: "Cluster duplication: speedup vs extra footprint per DPU",
		Columns: []string{"copy footprint (KiB/DPU)", "speedup vs imbalanced"},
	}
	nlist := r.Scale.NLists[len(r.Scale.NLists)/2]
	nprobe := r.Scale.NProbes[0]
	naive, err := r.runDRIM("SIFT", nlist, nprobe, naiveOptions)
	if err != nil {
		return nil, err
	}
	for _, kib := range []int{0, 8, 16, 32, 64, 128} {
		foot := kib << 10
		run, err := r.runDRIM("SIFT", nlist, nprobe, func(o *core.Options) {
			// Isolate allocation + duplication (the figure's subject): no
			// partitioning, no runtime rebalancing or postponement.
			o.EnableSplit = false
			o.Rebalance = false
			o.Th3 = 0
			o.CopyFootprint = foot
			if foot == 0 {
				o.EnableDup = false
			}
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", kib), f2(naive.Metrics.PIMSeconds/run.Metrics.PIMSeconds))
	}
	t.Notes = append(t.Notes, "paper: gains saturate once extra footprint reaches ~0.129 MB per DPU (<20% of the dataset)")
	return t, nil
}

// platformEff derates the Equation-12 ideal to what each platform achieves
// in practice: the paper's model uses per-phase profiled bandwidths and
// frequencies (BW_x, F_x); lacking those hardware profiles, a single
// per-platform factor is calibrated so that the paper's measured
// cross-platform ratios are reproduced (UPMEM ~1.9x CPU, Faiss-GPU ~12.3x
// Faiss-CPU, HBM-PIM ~0.86x GPU, AiM ~2.35x GPU on SIFT100M).
type platformEff struct {
	platform upmem.Platform
	comp, bw float64
	sqt      bool // multiplier-less PIM kernels
}

// Figure15 regenerates the cross-platform scalability study at paper scale
// (SIFT100M, Q=10000), which the paper also evaluates by scaling its model
// to HBM-PIM and AiM simulators.
func Figure15(*Runner) (*Table, error) {
	t := &Table{
		ID: "F15", Title: "DRIM-ANN on UPMEM / HBM-PIM / AiM vs Faiss-CPU and Faiss-GPU (SIFT100M)",
		Columns: []string{"nlist", "UPMEM/CPU", "HBM-PIM/CPU", "AiM/CPU", "UPMEM/GPU", "HBM-PIM/GPU", "AiM/GPU"},
	}
	systems := map[string]platformEff{
		"CPU":    {upmem.PlatformCPU(), 0.35, 1.0, false},
		"GPU":    {upmem.PlatformGPU(), 0.40, 0.65, false},
		"UPMEM":  {upmem.PlatformUPMEM(32), 0.10, 0.10, true},
		"HBMPIM": {upmem.PlatformHBMPIM(), 0.28, 0.28, true},
		"AiM":    {upmem.PlatformAiM(), 0.35, 0.35, true},
	}
	qpsOf := func(sys platformEff, nlist int) (float64, error) {
		const n = 100_000_000
		p := perfmodel.Params{
			N: n, Q: 10000, D: 128, K: 10, P: 96, C: n / nlist, M: 16, CB: 256,
		}
		mul := 1.0
		if sys.sqt {
			mul = 2.0
		}
		costs, err := perfmodel.Costs(p, mul)
		if err != nil {
			return 0, err
		}
		hw := perfmodel.FromPlatform(sys.platform)
		hw.PE *= sys.comp
		hw.BWBytes *= sys.bw
		var total float64
		for ph := upmem.Phase(0); ph < upmem.NumPhases; ph++ {
			pc := costs[ph]
			if pc.Compute == 0 && pc.IO == 0 {
				continue
			}
			phw := hw
			if !sys.sqt && (ph == upmem.PhaseDC || ph == upmem.PhaseTS) {
				phw.Lanes = 1
			}
			total += perfmodel.PhaseTime(pc, phw)
		}
		return perfmodel.QPS(p, total), nil
	}
	for _, nlist := range []int{1 << 13, 1 << 14, 1 << 15} {
		qps := map[string]float64{}
		for name, sys := range systems {
			v, err := qpsOf(sys, nlist)
			if err != nil {
				return nil, err
			}
			qps[name] = v
		}
		t.AddRow(fmt.Sprintf("2^%d", log2int(nlist)),
			f2(qps["UPMEM"]/qps["CPU"]), f2(qps["HBMPIM"]/qps["CPU"]), f2(qps["AiM"]/qps["CPU"]),
			f2(qps["UPMEM"]/qps["GPU"]), f2(qps["HBMPIM"]/qps["GPU"]), f2(qps["AiM"]/qps["GPU"]))
	}
	t.Notes = append(t.Notes,
		"paper: UPMEM ~1.9x CPU but only ~0.16x GPU; HBM-PIM 11.3x-12.3x CPU (0.76x-1.00x GPU); AiM 30.1x-33.9x CPU (2.09x-2.67x GPU)",
		"platform efficiency factors stand in for the paper's per-phase profiled BW_x/F_x (see DESIGN.md)")
	return t, nil
}

func log2int(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Table3 regenerates the MemANNS comparison on SIFT1B. MemANNS is closed
// source; its row cites the numbers reported in its paper, as the DRIM-ANN
// paper itself does. The DRIM-ANN rows are priced by the performance model
// at 1018 DPUs, without DSE (the paper's empirical default configuration)
// and with the DSE-selected configuration (higher nlist, lower nprobe).
func Table3(*Runner) (*Table, error) {
	t := &Table{
		ID: "T3", Title: "Comparison with MemANNS on SIFT1B",
		Columns: []string{"system", "#DPUs", "QPS (SIFT1B)"},
	}
	upmemAt := func(dpus int) perfmodel.Hardware {
		return perfmodel.Hardware{
			PE:     float64(dpus) * 0.10, // same calibration as Figure 15
			FreqHz: 350e6, Lanes: 1,
			BWBytes: float64(dpus) * 0.7e9 * 0.10,
		}
	}
	host := perfmodel.FromPlatform(upmem.PlatformCPU())
	qpsFor := func(dpus, nlist, nprobe int) (float64, error) {
		const n = 1_000_000_000
		p := perfmodel.Params{
			N: n, Q: 10000, D: 128, K: 10, P: nprobe, C: n / nlist, M: 16, CB: 256,
		}
		return perfmodel.PredictQPS(p, host, upmemAt(dpus), true)
	}
	noDSE, err := qpsFor(1018, 1<<16, 96)
	if err != nil {
		return nil, err
	}
	// The DSE explores (P, nlist) under the paper's recall proxy (P >= 32
	// with M=16, CB=256 holds recall@10 >= 0.8 on SIFT1B) and keeps the
	// model-optimal configuration: finer clustering, fewer probes (paper
	// Table 3: 419 -> 3867 QPS).
	withDSE := 0.0
	for _, nlist := range []int{1 << 14, 1 << 15, 1 << 16, 3 << 15, 1 << 17, 3 << 16, 1 << 18} {
		for _, p := range []int{32, 48, 64, 96} {
			q, err := qpsFor(1018, nlist, p)
			if err != nil {
				return nil, err
			}
			if q > withDSE {
				withDSE = q
			}
		}
	}
	t.AddRow("MemANNS (reported)", "896", "405")
	t.AddRow("DRIM-ANN (without DSE)", "1018", f0(noDSE))
	t.AddRow("DRIM-ANN (with DSE)", "1018", f0(withDSE))
	t.Notes = append(t.Notes, "paper: MemANNS 405 QPS @896 DPUs; DRIM-ANN 419 (no DSE) and 3867 (DSE) @1018 DPUs")
	return t, nil
}
