// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§5), each regenerating the same rows/series the
// paper reports, at a configurable scale. The paper's absolute numbers come
// from physical hardware; the harness reproduces the *shape* — who wins, by
// roughly what factor, and where crossovers fall — on the simulator.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"drimann/internal/dataset"
	"drimann/internal/ivf"
	"drimann/internal/pq"
)

// Table is one regenerated artifact.
type Table struct {
	ID      string // paper artifact id: "T1", "F7", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale sets the experiment sizes. The paper runs at 10^8-10^9 vectors on
// 2543 DPUs; the default scale keeps every ratio (nprobe/nlist, DPU
// occupancy, query skew) while fitting in seconds on a laptop.
type Scale struct {
	N          int   // base vectors per dataset
	Queries    int   // query count
	NumDPUs    int   // simulated DPUs
	K          int   // neighbors
	NLists     []int // sweep standing in for the paper's 2^13..2^16
	NProbes    []int // sweep standing in for the paper's 32..128
	CB         int   // codebook entries (paper: 256)
	Seed       int64
	DSEBudget  int // recall evaluations per DSE run
	KMeansIter int
}

// SmallScale is used by `go test -bench` and the test suite.
func SmallScale() Scale {
	return Scale{
		N: 10000, Queries: 96, NumDPUs: 24, K: 10,
		NLists:  []int{32, 64, 128, 256},
		NProbes: []int{4, 8, 12, 16},
		CB:      64, Seed: 42, DSEBudget: 6, KMeansIter: 6,
	}
}

// DefaultScale is used by cmd/drim-bench.
func DefaultScale() Scale {
	return Scale{
		N: 60000, Queries: 512, NumDPUs: 64, K: 10,
		NLists:  []int{128, 256, 512, 1024},
		NProbes: []int{8, 16, 24, 32},
		CB:      128, Seed: 42, DSEBudget: 10, KMeansIter: 10,
	}
}

// subvectorsFor picks the M that divides the dimension. The paper uses
// M=16 with CB=256 at 10^8 scale; at harness scale CB is smaller, so M is
// finer to keep the code resolution (M x log2(CB) bits) comparable.
func subvectorsFor(dim int) int {
	for _, m := range []int{32, 20, 16, 10, 8, 4, 2, 1} {
		if dim%m == 0 {
			return m
		}
	}
	return 1
}

// Runner caches datasets and indexes across experiments so the sweep suite
// stays fast.
type Runner struct {
	Scale Scale

	mu      sync.Mutex
	synths  map[string]*dataset.Synth
	indexes map[string]*ivf.Index
	gts     map[string][][]int32
}

// NewRunner builds a harness at the given scale.
func NewRunner(s Scale) *Runner {
	return &Runner{
		Scale:   s,
		synths:  make(map[string]*dataset.Synth),
		indexes: make(map[string]*ivf.Index),
		gts:     make(map[string][][]int32),
	}
}

// Dataset returns (cached) the named synthetic corpus: SIFT, DEEP, SPACEV
// or T2I shapes, generated with the query/cluster skew that drives the
// paper's load-balancing experiments.
func (r *Runner) Dataset(name string) *dataset.Synth {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.synths[name]; ok {
		return s
	}
	dims := map[string]struct {
		d    int
		seed int64
	}{
		"SIFT": {128, 0}, "DEEP": {96, 1}, "SPACEV": {100, 2}, "T2I": {200, 3},
	}
	shape, ok := dims[name]
	if !ok {
		panic(fmt.Sprintf("bench: unknown dataset %q", name))
	}
	// Latent clusters must stay at or below the smallest nlist so every IVF
	// cell subdivides one latent mode (unimodal residuals, like real data);
	// and each latent cluster should hold a few hundred points so neighbor
	// gaps stay resolvable by the quantizer at harness scale.
	nClusters := r.Scale.N / 300
	if nClusters < 32 {
		nClusters = 32
	}
	if max := r.Scale.NLists[0]; nClusters > max {
		nClusters = max
	}
	s := dataset.Generate(dataset.SynthConfig{
		Name: name, N: r.Scale.N, D: shape.d,
		NumQueries:  r.Scale.Queries,
		NumClusters: nClusters,
		ZipfS:       1.6,
		QuerySkew:   0.9,
		Hotspots:    4,
		Noise:       9,
		Seed:        r.Scale.Seed + shape.seed,
	})
	r.synths[name] = s
	return s
}

// Index returns (cached) an IVF-PQ index for the named dataset.
func (r *Runner) Index(name string, nlist, m, cb int) (*ivf.Index, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", name, nlist, m, cb)
	r.mu.Lock()
	if ix, ok := r.indexes[key]; ok {
		r.mu.Unlock()
		return ix, nil
	}
	r.mu.Unlock()

	s := r.Dataset(name)
	ix, err := ivf.Build(s.Base, ivf.BuildConfig{
		NList:       nlist,
		PQ:          pq.Config{M: m, CB: cb, Iters: r.Scale.KMeansIter},
		KMeansIters: r.Scale.KMeansIter,
		TrainSample: min(s.Base.N, 20000),
		Seed:        r.Scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: building %s: %w", key, err)
	}
	r.mu.Lock()
	r.indexes[key] = ix
	r.mu.Unlock()
	return ix, nil
}

// GroundTruth returns (cached) exact neighbors for the named dataset.
func (r *Runner) GroundTruth(name string) [][]int32 {
	r.mu.Lock()
	if gt, ok := r.gts[name]; ok {
		r.mu.Unlock()
		return gt
	}
	r.mu.Unlock()
	s := r.Dataset(name)
	gt := dataset.GroundTruth(s.Base, s.Queries, r.Scale.K, 0)
	r.mu.Lock()
	r.gts[name] = gt
	r.mu.Unlock()
	return gt
}

// Experiment couples a paper artifact with its regeneration function.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Runner) (*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Large-scale ANNS datasets (Table 1)", Table1},
		{"F2", "Roofline analysis of ANNS on various platforms (Figure 2)", Figure2},
		{"F7", "End-to-end performance on SIFT100M-shaped data (Figure 7)", Figure7},
		{"F8", "End-to-end performance on DEEP100M-shaped data (Figure 8)", Figure8},
		{"F9", "PIM kernel latency breakdown (Figure 9)", Figure9},
		{"F10", "End-to-end energy comparison (Figure 10)", Figure10},
		{"F11a", "Speedup of multiplier-less (SQT) conversion (Figure 11a)", Figure11a},
		{"F11b", "Actual performance vs the performance model (Figure 11b)", Figure11b},
		{"F12a", "Accuracy/performance trade-off via DSE (Figure 12a)", Figure12a},
		{"F12b", "Speedup of WRAM buffer optimization (Figure 12b)", Figure12b},
		{"F13", "Speedup of load-balance optimization (Figure 13)", Figure13},
		{"F14a", "Cluster partition: split granularity sweep (Figure 14a)", Figure14a},
		{"F14b", "Cluster duplication: footprint sweep (Figure 14b)", Figure14b},
		{"F15", "Scalability to HBM-PIM and AiM vs CPU/GPU (Figure 15)", Figure15},
		{"T3", "Comparison with MemANNS on SIFT1B (Table 3)", Table3},
	}
}

// ByID finds an experiment by its paper artifact id (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
