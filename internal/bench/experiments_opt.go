package bench

import (
	"fmt"

	"drimann/internal/core"
	"drimann/internal/dataset"
	"drimann/internal/dse"
	"drimann/internal/perfmodel"
	"drimann/internal/upmem"
)

// upmemHW is the Equation-12 hardware of the simulated UPMEM slice. The
// paper's model plugs in per-phase *profiled* frequencies F_x rather than
// the nominal clock; effOpsPerCycle stands in for that profile — the
// fraction of nominal instruction throughput a real DPU kernel sustains
// once addressing, loads/stores and loop control are included (PrIM
// measures ~0.25-0.5 for streaming integer kernels).
func (r *Runner) upmemHW() perfmodel.Hardware {
	const effOpsPerCycle = 0.30
	return perfmodel.Hardware{
		PE:      float64(r.Scale.NumDPUs),
		FreqHz:  350e6 * effOpsPerCycle,
		Lanes:   1,
		BWBytes: float64(r.Scale.NumDPUs) * 0.7e9,
	}
}

// Figure11a regenerates the multiplier-less conversion ablation.
func Figure11a(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F11a", Title: "Speedup of multiplier-less (SQT) ANNS conversion",
		Columns: []string{"nprobe", "LC speedup", "overall speedup"},
	}
	nlist := r.Scale.NLists[len(r.Scale.NLists)-1] // LC-heavy like the paper's 2^16
	for _, nprobe := range r.Scale.NProbes {
		on, err := r.runDRIM("SIFT", nlist, nprobe, nil)
		if err != nil {
			return nil, err
		}
		off, err := r.runDRIM("SIFT", nlist, nprobe, func(o *core.Options) { o.UseSQT = false })
		if err != nil {
			return nil, err
		}
		lcOn := on.Metrics.PhaseSeconds[upmem.PhaseLC]
		lcOff := off.Metrics.PhaseSeconds[upmem.PhaseLC]
		t.AddRow(fmt.Sprintf("%d", nprobe), f2(lcOff/lcOn), f2(off.Metrics.SimSeconds/on.Metrics.SimSeconds))
	}
	t.Notes = append(t.Notes, "paper: average LC speedup 1.93x, end-to-end 1.40x at nlist=2^16; bounded far below 32x by SQT access granularity")
	return t, nil
}

// Figure11b regenerates the performance-model validation: actual simulated
// QPS as a fraction of the Equation 1-12 prediction.
func Figure11b(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F11b", Title: "Actual performance vs the performance model",
		Columns: []string{"dataset", "nlist", "model QPS", "actual QPS", "actual/model"},
	}
	host := perfmodel.FromPlatform(upmem.PlatformCPU())
	for _, name := range []string{"SIFT", "DEEP"} {
		s := r.Dataset(name)
		m := subvectorsFor(s.Base.D)
		for _, nlist := range r.Scale.NLists {
			nprobe := r.Scale.NProbes[len(r.Scale.NProbes)/2]
			actual, err := r.runDRIM(name, nlist, nprobe, nil)
			if err != nil {
				return nil, err
			}
			c := s.Base.N / nlist
			if c < 1 {
				c = 1
			}
			p := perfmodel.Params{
				N: int64(s.Base.N), Q: s.Queries.N, D: s.Base.D,
				K: r.Scale.K, P: nprobe, C: c, M: m, CB: r.Scale.CB,
			}
			model, err := perfmodel.PredictQPS(p, host, r.upmemHW(), true)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%d", nlist), f0(model), f0(actual.QPS), f3(actual.QPS/model))
		}
	}
	t.Notes = append(t.Notes,
		"the model is an upper bound: it ignores load imbalance, DMA setup latency and loop overheads",
		"paper: actual reaches 71.8%-99.9% (SIFT100M) and 73.5%-95.1% (DEEP100M) of the prediction")
	return t, nil
}

// Figure12a regenerates the accuracy/performance trade-off: for each recall
// constraint, the DSE picks an index configuration and we report the
// model-predicted throughput, normalized per dataset to the strictest
// constraint.
func Figure12a(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F12a", Title: "Throughput vs accuracy constraint (DSE-selected configs)",
		Columns: []string{"dataset", "recall floor", "chosen config", "recall", "normalized QPS"},
	}
	host := perfmodel.FromPlatform(upmem.PlatformCPU())
	targets := []float64{0.65, 0.70, 0.75, 0.80}

	for _, name := range []string{"SIFT", "DEEP", "SPACEV"} {
		s := r.Dataset(name)
		m := subvectorsFor(s.Base.D)
		gt := r.GroundTruth(name)
		// The space must include configurations that undershoot the
		// strictest floor (half the smallest nprobe, half the codebook) or
		// every target collapses onto the same feasible optimum.
		space := dse.Space{
			P:     append([]int{r.Scale.NProbes[0] / 2}, r.Scale.NProbes...),
			NList: []int{r.Scale.NLists[1], r.Scale.NLists[len(r.Scale.NLists)-1]},
			M:     []int{m / 2, m},
			CB:    []int{r.Scale.CB / 2, r.Scale.CB},
		}
		qpsFn := func(c dse.Candidate) (float64, error) {
			avg := s.Base.N / c.NList
			if avg < 1 {
				avg = 1
			}
			p := perfmodel.Params{
				N: int64(s.Base.N), Q: s.Queries.N, D: s.Base.D,
				K: r.Scale.K, P: c.P, C: avg, M: c.M, CB: c.CB,
			}
			return perfmodel.PredictQPS(p, host, r.upmemHW(), true)
		}
		recallFn := func(c dse.Candidate) (float64, error) {
			ix, err := r.Index(name, c.NList, c.M, c.CB)
			if err != nil {
				return 0, err
			}
			got := ix.SearchIntBatch(s.Queries, c.P, r.Scale.K, 0)
			return dataset.Recall(gt, got, r.Scale.K), nil
		}

		var baseQPS float64
		type picked struct {
			res    *dse.Result
			target float64
		}
		var picks []picked
		for _, target := range targets {
			res, err := dse.Optimize(space, qpsFn, recallFn,
				dse.Config{AccuracyConstraint: target, Budget: r.Scale.DSEBudget})
			if err != nil {
				return nil, err
			}
			picks = append(picks, picked{res, target})
			if target == 0.80 {
				baseQPS = res.BestQPS
			}
		}
		if baseQPS == 0 {
			baseQPS = picks[len(picks)-1].res.BestQPS
		}
		for _, p := range picks {
			t.AddRow(name, f2(p.target), p.res.Best.String(), f3(p.res.BestRecall), f2(p.res.BestQPS/baseQPS))
		}
	}
	t.Notes = append(t.Notes, "paper: throughput rises as the accuracy constraint loosens, on all three datasets")
	return t, nil
}

// Figure12b regenerates the WRAM buffer optimization ablation.
func Figure12b(r *Runner) (*Table, error) {
	t := &Table{
		ID: "F12b", Title: "Speedup of WRAM buffer optimization",
		Columns: []string{"dataset", "nprobe", "speedup"},
	}
	nlist := r.Scale.NLists[len(r.Scale.NLists)/2]
	for _, name := range []string{"SIFT", "DEEP"} {
		for _, nprobe := range []int{r.Scale.NProbes[0], r.Scale.NProbes[len(r.Scale.NProbes)-1]} {
			on, err := r.runDRIM(name, nlist, nprobe, nil)
			if err != nil {
				return nil, err
			}
			off, err := r.runDRIM(name, nlist, nprobe, func(o *core.Options) { o.UseWRAM = false })
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%d", nprobe), f2(off.Metrics.PIMSeconds/on.Metrics.PIMSeconds))
		}
	}
	t.Notes = append(t.Notes,
		"paper: 4.18x-4.30x (SIFT100M) and 3.86x-4.07x (DEEP100M), near the 4.72x WRAM:MRAM bandwidth bound")
	return t, nil
}
