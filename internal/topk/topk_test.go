package topk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// oracle computes the expected top-k by full sort.
func oracle(items []Item[uint32], k int) []Item[uint32] {
	cp := make([]Item[uint32], len(items))
	copy(cp, items)
	SortItems(cp)
	if len(cp) > k {
		cp = cp[:k]
	}
	return cp
}

func equalItems(a, b []Item[uint32]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHeapMatchesSortOracleProperty(t *testing.T) {
	f := func(dists []uint32, kRaw uint8) bool {
		k := int(kRaw)%16 + 1
		items := make([]Item[uint32], len(dists))
		h := NewHeap[uint32](k)
		for i, d := range dists {
			items[i] = Item[uint32]{ID: int32(i), Dist: d}
			h.Push(int32(i), d)
		}
		return equalItems(h.Sorted(), oracle(items, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapTieBreakDeterministic(t *testing.T) {
	h := NewHeap[uint32](2)
	h.Push(5, 10)
	h.Push(3, 10)
	h.Push(9, 10)
	got := h.Sorted()
	if got[0].ID != 3 || got[1].ID != 5 {
		t.Fatalf("tie-break by ID violated: %v", got)
	}
}

func TestHeapThresholdAndWouldAccept(t *testing.T) {
	h := NewHeap[uint32](2)
	if _, ok := h.Threshold(); ok {
		t.Fatal("threshold defined on non-full heap")
	}
	if !h.WouldAccept(1, 1<<31) {
		t.Fatal("non-full heap must accept anything")
	}
	h.Push(1, 100)
	h.Push(2, 200)
	th, ok := h.Threshold()
	if !ok || th != 200 {
		t.Fatalf("threshold = %d,%v want 200,true", th, ok)
	}
	if h.WouldAccept(3, 200) {
		t.Fatal("equal distance with larger ID must be rejected")
	}
	if !h.WouldAccept(1, 200) {
		t.Fatal("equal distance with smaller ID must be accepted")
	}
	if !h.WouldAccept(3, 199) {
		t.Fatal("smaller distance must be accepted")
	}
	if h.Push(3, 250) {
		t.Fatal("push above threshold must be rejected")
	}
	if !h.Push(3, 50) {
		t.Fatal("push below threshold must be accepted")
	}
	th, _ = h.Threshold()
	if th != 100 {
		t.Fatalf("threshold after eviction = %d, want 100", th)
	}
}

func TestHeapReset(t *testing.T) {
	h := NewHeap[uint32](3)
	h.Push(1, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset did not empty heap")
	}
	h.Push(2, 2)
	if got := h.Sorted(); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("heap unusable after reset: %v", got)
	}
}

func TestNewHeapPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewHeap[uint32](0)
}

func TestBitonicSortMatchesSortProperty(t *testing.T) {
	f := func(dists []uint32) bool {
		items := make([]Item[uint32], len(dists))
		for i, d := range dists {
			items[i] = Item[uint32]{ID: int32(i), Dist: d}
		}
		want := make([]Item[uint32], len(items))
		copy(want, items)
		SortItems(want)
		BitonicSort(items)
		return equalItems(items, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicSortSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 100, 128, 1000} {
		items := make([]Item[uint32], n)
		for i := range items {
			items[i] = Item[uint32]{ID: int32(i), Dist: rng.Uint32() % 64}
		}
		want := make([]Item[uint32], n)
		copy(want, items)
		SortItems(want)
		swaps := BitonicSort(items)
		if !equalItems(items, want) {
			t.Fatalf("bitonic sort wrong for n=%d", n)
		}
		if n >= 2 && swaps <= 0 {
			t.Fatalf("bitonic sort should report compare-exchanges for n=%d", n)
		}
	}
}

func TestMergeSorted(t *testing.T) {
	a := []Item[uint32]{{ID: 1, Dist: 1}, {ID: 4, Dist: 4}}
	b := []Item[uint32]{{ID: 2, Dist: 2}, {ID: 3, Dist: 3}, {ID: 5, Dist: 5}}
	got := MergeSorted(a, b, 4)
	want := []Item[uint32]{{ID: 1, Dist: 1}, {ID: 2, Dist: 2}, {ID: 3, Dist: 3}, {ID: 4, Dist: 4}}
	if !equalItems(got, want) {
		t.Fatalf("MergeSorted = %v", got)
	}
	if got := MergeSorted(nil, b, 2); len(got) != 2 || got[0].ID != 2 {
		t.Fatalf("MergeSorted(nil,b) = %v", got)
	}
}

func TestMergeSortedMatchesOracleProperty(t *testing.T) {
	f := func(da, db []uint32, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		a := make([]Item[uint32], len(da))
		for i, d := range da {
			a[i] = Item[uint32]{ID: int32(i), Dist: d}
		}
		b := make([]Item[uint32], len(db))
		for i, d := range db {
			b[i] = Item[uint32]{ID: int32(1000 + i), Dist: d}
		}
		SortItems(a)
		SortItems(b)
		all := append(append([]Item[uint32]{}, a...), b...)
		return equalItems(MergeSorted(a, b, k), oracle(all, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapFloat32(t *testing.T) {
	h := NewHeap[float32](2)
	h.Push(1, 0.5)
	h.Push(2, 0.25)
	h.Push(3, 0.75)
	got := h.Sorted()
	if got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("float heap wrong: %v", got)
	}
}

func BenchmarkHeapPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dists := make([]uint32, 4096)
	for i := range dists {
		dists[i] = rng.Uint32()
	}
	h := NewHeap[uint32](10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for j, d := range dists {
			h.Push(int32(j), d)
		}
	}
}

func TestSortedInto(t *testing.T) {
	h := NewHeap[uint32](5)
	for _, v := range []uint32{9, 3, 7, 1, 5, 8, 2} {
		if h.WouldAccept(int32(v), v) {
			h.Push(int32(v), v)
		}
	}
	want := h.Sorted()

	// Nil destination, too-small destination, oversized destination: all
	// must return the same ascending list, reusing capacity when possible.
	for _, dst := range [][]Item[uint32]{nil, make([]Item[uint32], 0, 2), make([]Item[uint32], 9)} {
		got := h.SortedInto(dst)
		if len(got) != len(want) {
			t.Fatalf("len %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("item %d: %+v != %+v", i, got[i], want[i])
			}
		}
	}

	// Reuse must not allocate once capacity suffices.
	buf := make([]Item[uint32], 0, h.Len())
	out := h.SortedInto(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("SortedInto reallocated despite sufficient capacity")
	}
	// Heap is untouched.
	if h.Len() != len(want) {
		t.Fatal("SortedInto mutated the heap")
	}
}

// TestBoundMatchesWouldAccept: the cached-threshold fast path must agree
// with WouldAccept at every step of a randomized push sequence, provided the
// bound is re-captured after each push.
func TestBoundMatchesWouldAccept(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(8)
		h := NewHeap[uint32](k)
		bound := h.Bound()
		for i := 0; i < 200; i++ {
			id := int32(rng.Intn(64))
			dist := uint32(rng.Intn(16)) // narrow range to force distance ties
			want := h.WouldAccept(id, dist)
			if got := bound.Accepts(id, dist); got != want {
				t.Fatalf("trial %d step %d: Accepts(%d, %d) = %v, WouldAccept = %v (heap %+v)",
					trial, i, id, dist, got, want, h.items)
			}
			if want {
				h.Push(id, dist)
				bound = h.Bound()
			}
		}
	}
}
