// Package topk provides the bounded top-k selection structures used by both
// the host-side cluster locating phase (float32 distances) and the DPU-side
// top-k sorting phase (uint32 integer distances): a bounded max-heap that
// keeps the k smallest items, and a bitonic sorting network mirroring the
// paper's Figure 1 TS alternatives.
//
// Ordering is deterministic everywhere: ties on distance are broken by the
// smaller ID, so independent engines (CPU reference vs PIM simulation)
// produce identical result lists and can be compared exactly in tests.
package topk

import (
	"cmp"
	"math"
	"math/bits"
	"slices"
)

// Item is a candidate neighbor: an ID and its distance to the query.
type Item[D cmp.Ordered] struct {
	ID   int32
	Dist D
}

// compare is the canonical deterministic total order used across the
// repository — ascending distance, ties broken by ascending ID — as a
// three-way comparison. Less, SortItems and Bound.Accepts all derive from
// it.
func compare[D cmp.Ordered](a, b Item[D]) int {
	if c := cmp.Compare(a.Dist, b.Dist); c != 0 {
		return c
	}
	return cmp.Compare(a.ID, b.ID)
}

// Less reports whether a precedes b in the deterministic total order.
func Less[D cmp.Ordered](a, b Item[D]) bool {
	return compare(a, b) < 0
}

// Heap is a bounded max-heap holding the k smallest items pushed so far.
// The zero value is not usable; call NewHeap.
type Heap[D cmp.Ordered] struct {
	k     int
	items []Item[D] // max-heap ordered by Less (root = current worst kept item)
}

// NewHeap returns a heap retaining the k smallest items. k must be >= 1.
func NewHeap[D cmp.Ordered](k int) *Heap[D] {
	if k < 1 {
		panic("topk: k must be >= 1")
	}
	return &Heap[D]{k: k, items: make([]Item[D], 0, k)}
}

// Len reports how many items are currently held (<= k).
func (h *Heap[D]) Len() int { return len(h.items) }

// K returns the heap capacity.
func (h *Heap[D]) K() int { return h.k }

// Full reports whether k items are held, i.e. Threshold is meaningful.
func (h *Heap[D]) Full() bool { return len(h.items) == h.k }

// Threshold returns the current worst retained item's distance. The boolean
// is false until the heap is full; until then every push is accepted.
func (h *Heap[D]) Threshold() (D, bool) {
	var zero D
	if !h.Full() {
		return zero, false
	}
	return h.items[0].Dist, true
}

// WouldAccept reports whether a push with this distance would change the
// heap. This is the "lock pruning" predicate from the paper's §6: DPU
// tasklets consult a (possibly stale) threshold before taking the shared
// top-k lock.
func (h *Heap[D]) WouldAccept(id int32, dist D) bool {
	if !h.Full() {
		return true
	}
	return Less(Item[D]{ID: id, Dist: dist}, h.items[0])
}

// Bound is a register-resident copy of a heap's acceptance threshold — the
// cached fast path of WouldAccept for kernels that test millions of
// candidates against a rarely-changing top-k bound. Capture it with
// Heap.Bound, test candidates with Accepts, and re-capture after every Push
// (the only operation that moves the threshold). The zero Bound accepts
// everything, matching a non-full heap.
type Bound[D cmp.Ordered] struct {
	full  bool
	worst Item[D]
}

// Bound returns the heap's current acceptance bound.
func (h *Heap[D]) Bound() Bound[D] {
	if len(h.items) < h.k {
		return Bound[D]{}
	}
	return Bound[D]{full: true, worst: h.items[0]}
}

// Accepts reports whether a Push of (id, dist) would change the heap the
// bound was captured from — exactly WouldAccept at capture time. The body
// open-codes Less((id, dist), worst) because this is a per-candidate call
// in simulation kernels and the delegated form falls out of the compiler's
// inlining budget; TestBoundMatchesWouldAccept pins the equivalence.
func (b *Bound[D]) Accepts(id int32, dist D) bool {
	if !b.full {
		return true
	}
	if dist != b.worst.Dist {
		return dist < b.worst.Dist
	}
	return id < b.worst.ID
}

// Push offers an item; it returns true if the item was retained.
func (h *Heap[D]) Push(id int32, dist D) bool {
	it := Item[D]{ID: id, Dist: dist}
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.siftUp(len(h.items) - 1)
		return true
	}
	if !Less(it, h.items[0]) {
		return false
	}
	h.items[0] = it
	h.siftDown(0)
	return true
}

// Reset empties the heap for reuse, keeping capacity.
func (h *Heap[D]) Reset() { h.items = h.items[:0] }

// Sorted returns the retained items in ascending deterministic order. The
// heap itself is left untouched.
func (h *Heap[D]) Sorted() []Item[D] {
	out := make([]Item[D], len(h.items))
	copy(out, h.items)
	SortItems(out)
	return out
}

// SortedInto writes the retained items into dst (reusing its capacity, which
// is grown only when insufficient) in ascending deterministic order and
// returns the filled slice. The heap itself is left untouched. This is the
// allocation-free twin of Sorted for hot paths that drain many heaps.
func (h *Heap[D]) SortedInto(dst []Item[D]) []Item[D] {
	dst = append(dst[:0], h.items...)
	SortItems(dst)
	return dst
}

func (h *Heap[D]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !Less(h.items[parent], h.items[i]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap[D]) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && Less(h.items[largest], h.items[l]) {
			largest = l
		}
		if r < n && Less(h.items[largest], h.items[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// SortItems sorts items in place into the deterministic ascending order.
func SortItems[D cmp.Ordered](items []Item[D]) {
	slices.SortFunc(items, compare[D])
}

// BitonicSort sorts items in place into the deterministic ascending order
// using a bitonic network, the data-independent alternative the paper lists
// for the TS phase. Inputs of non-power-of-two length are padded with
// max-sentinel items that sort to the tail. The returned count is the number
// of compare-exchange operations a hardware realization would execute (used
// by the cost model).
func BitonicSort[D cmp.Ordered](items []Item[D]) int {
	n := len(items)
	if n < 2 {
		return 0
	}
	size := 1 << bits.Len(uint(n-1)) // next power of two >= n
	work := items
	if size != n {
		work = make([]Item[D], size)
		copy(work, items)
		maxIt := items[0]
		for _, it := range items[1:] {
			if Less(maxIt, it) {
				maxIt = it
			}
		}
		pad := Item[D]{ID: math.MaxInt32, Dist: maxIt.Dist}
		for i := n; i < size; i++ {
			work[i] = pad
		}
	}
	swaps := 0
	for k := 2; k <= size; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < size; i++ {
				partner := i ^ j
				if partner <= i {
					continue
				}
				swaps++
				ascending := i&k == 0
				if ascending == Less(work[partner], work[i]) {
					work[i], work[partner] = work[partner], work[i]
				}
			}
		}
	}
	if size != n {
		copy(items, work[:n])
	}
	return swaps
}

// MergeSorted merges two ascending deterministic-order slices into a fresh
// ascending slice truncated to k items, used when combining per-DPU top-k
// lists on the host.
func MergeSorted[D cmp.Ordered](a, b []Item[D], k int) []Item[D] {
	out := make([]Item[D], 0, min(k, len(a)+len(b)))
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		switch {
		case i >= len(a):
			out = append(out, b[j])
			j++
		case j >= len(b):
			out = append(out, a[i])
			i++
		case Less(a[i], b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}
