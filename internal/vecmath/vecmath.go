// Package vecmath provides the scalar vector kernels shared by every layer of
// the DRIM-ANN stack: L2 distances in float32 and in the integer domain used
// by the PIM path, uint8 quantization of float corpora, and asymmetric
// distance computation (ADC) over product-quantization lookup tables.
//
// Vectors are flat slices with an explicit dimension so that large corpora
// stay contiguous (one allocation for N*D elements).
package vecmath

import (
	"fmt"
	"math"
)

// L2SquaredF32 returns the squared Euclidean distance between two float32
// vectors of equal length.
func L2SquaredF32(a, b []float32) float32 {
	_ = b[len(a)-1]
	var sum float32
	for i, av := range a {
		d := av - b[i]
		sum += d * d
	}
	return sum
}

// L2SquaredU8 returns the squared Euclidean distance between two uint8
// vectors of equal length. The result is exact: for dim <= 2^16 the maximum
// possible sum (dim * 255^2) fits in a uint32.
func L2SquaredU8(a, b []uint8) uint32 {
	_ = b[len(a)-1]
	var sum uint32
	for i, av := range a {
		d := int32(av) - int32(b[i])
		sum += uint32(d * d)
	}
	return sum
}

// L2SquaredI16 returns the squared Euclidean distance between two int16
// vectors of equal length, as used on the PIM integer path (residual vs
// quantized codebook entry).
func L2SquaredI16(a, b []int16) uint32 {
	_ = b[len(a)-1]
	var sum uint32
	for i, av := range a {
		d := int32(av) - int32(b[i])
		sum += uint32(d * d)
	}
	return sum
}

// DotF32 returns the inner product of two float32 vectors of equal length.
func DotF32(a, b []float32) float32 {
	_ = b[len(a)-1]
	var sum float32
	for i, av := range a {
		sum += av * b[i]
	}
	return sum
}

// NormSquaredF32 returns the squared L2 norm of v.
func NormSquaredF32(v []float32) float32 {
	var sum float32
	for _, x := range v {
		sum += x * x
	}
	return sum
}

// SubI16 writes a-b into dst in the int16 domain, the residual operation of
// the PIM path (operands are uint8-quantized so the difference always fits).
func SubI16(dst []int16, a, b []uint8) {
	_ = b[len(a)-1]
	_ = dst[len(a)-1]
	for i, av := range a {
		dst[i] = int16(av) - int16(b[i])
	}
}

// SubF32 writes a-b into dst.
func SubF32(dst, a, b []float32) {
	_ = b[len(a)-1]
	_ = dst[len(a)-1]
	for i, av := range a {
		dst[i] = av - b[i]
	}
}

// ArgMinL2F32 scans the flat centroid matrix (k rows of length dim) and
// returns the row index with the smallest squared L2 distance to query, along
// with that distance. It panics if centroids is not a multiple of dim or is
// empty.
func ArgMinL2F32(query, centroids []float32, dim int) (int, float32) {
	k := len(centroids) / dim
	if k == 0 || len(centroids)%dim != 0 {
		panic(fmt.Sprintf("vecmath: bad centroid matrix len=%d dim=%d", len(centroids), dim))
	}
	best, bestDist := 0, float32(math.MaxFloat32)
	for i := 0; i < k; i++ {
		d := L2SquaredF32(query, centroids[i*dim:(i+1)*dim])
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist
}

// Quantizer maps float32 vectors onto the uint8 grid used by the PIM path.
// Quantization is affine: q = round((x - Bias) / Scale), clamped to [0,255].
type Quantizer struct {
	Scale float32 // grid step; > 0
	Bias  float32 // value represented by code 0
}

// FitQuantizer derives an affine uint8 quantizer covering the min..max range
// of the given flat data. A degenerate (constant) input yields Scale 1.
func FitQuantizer(data []float32) Quantizer {
	if len(data) == 0 {
		return Quantizer{Scale: 1}
	}
	lo, hi := data[0], data[0]
	for _, x := range data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	scale := (hi - lo) / 255
	if scale <= 0 {
		scale = 1
	}
	return Quantizer{Scale: scale, Bias: lo}
}

// Encode quantizes one float32 value to its uint8 code.
func (q Quantizer) Encode(x float32) uint8 {
	v := math.Round(float64((x - q.Bias) / q.Scale))
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// Decode reconstructs the float32 value of a uint8 code.
func (q Quantizer) Decode(c uint8) float32 {
	return q.Bias + float32(c)*q.Scale
}

// EncodeVec quantizes src into dst (same length).
func (q Quantizer) EncodeVec(dst []uint8, src []float32) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = q.Encode(x)
	}
}

// DecodeVec reconstructs src into dst (same length).
func (q Quantizer) DecodeVec(dst []float32, src []uint8) {
	_ = dst[len(src)-1]
	for i, c := range src {
		dst[i] = q.Decode(c)
	}
}

// EncodeAll quantizes a whole flat float32 corpus into a fresh uint8 corpus.
func (q Quantizer) EncodeAll(src []float32) []uint8 {
	dst := make([]uint8, len(src))
	q.EncodeVec(dst, src)
	return dst
}

// DecodeAll reconstructs a whole flat uint8 corpus into a fresh float32
// corpus.
func (q Quantizer) DecodeAll(src []uint8) []float32 {
	dst := make([]float32, len(src))
	q.DecodeVec(dst, src)
	return dst
}

// U8ToF32 widens a uint8 vector to float32 without rescaling; used when the
// corpus is already natively uint8 (e.g. SIFT).
func U8ToF32(dst []float32, src []uint8) {
	_ = dst[len(src)-1]
	for i, c := range src {
		dst[i] = float32(c)
	}
}

// ADCF32 accumulates an asymmetric PQ distance from a float32 lookup table.
// lut holds M contiguous rows of cb entries; code holds M entries indexing
// into the corresponding row.
func ADCF32(lut []float32, code []uint16, cb int) float32 {
	var sum float32
	for m, c := range code {
		sum += lut[m*cb+int(c)]
	}
	return sum
}

// ADCU32 is the integer-domain twin of ADCF32 used on the PIM path.
func ADCU32(lut []uint32, code []uint16, cb int) uint32 {
	var sum uint32
	for m, c := range code {
		sum += lut[m*cb+int(c)]
	}
	return sum
}

// MeanVec computes the per-dimension mean of a flat corpus with n rows of
// length dim into a fresh vector.
func MeanVec(data []float32, dim int) []float32 {
	n := len(data) / dim
	mean := make([]float32, dim)
	if n == 0 {
		return mean
	}
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		for j, x := range row {
			mean[j] += x
		}
	}
	inv := 1 / float32(n)
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}
