// Package vecmath provides the scalar vector kernels shared by every layer of
// the DRIM-ANN stack: L2 distances in float32 and in the integer domain used
// by the PIM path, uint8 quantization of float corpora, and asymmetric
// distance computation (ADC) over product-quantization lookup tables.
//
// Vectors are flat slices with an explicit dimension so that large corpora
// stay contiguous (one allocation for N*D elements).
package vecmath

import (
	"fmt"
	"math"
)

// L2SquaredF32 returns the squared Euclidean distance between two float32
// vectors of equal length.
func L2SquaredF32(a, b []float32) float32 {
	_ = b[len(a)-1]
	var sum float32
	for i, av := range a {
		d := av - b[i]
		sum += d * d
	}
	return sum
}

// L2SquaredU8 returns the squared Euclidean distance between two uint8
// vectors of equal length. The result is exact: for dim <= 2^16 the maximum
// possible sum (dim * 255^2) fits in a uint32.
func L2SquaredU8(a, b []uint8) uint32 {
	_ = b[len(a)-1]
	var sum uint32
	for i, av := range a {
		d := int32(av) - int32(b[i])
		sum += uint32(d * d)
	}
	return sum
}

// L2SquaredU8Abandon computes L2SquaredU8(a, b) with early abandonment: it
// checks the running sum against bound every 16 elements and returns
// (partial, false) as soon as the partial sum exceeds bound. Squared terms
// only grow the sum, so a partial sum above bound proves the full distance
// is above it too — callers that reject distances strictly greater than
// bound get exactly the decisions a full evaluation would produce. When the
// scan completes, the exact distance is returned with true (it may still
// exceed bound if the final stretch crossed it).
func L2SquaredU8Abandon(a, b []uint8, bound uint32) (uint32, bool) {
	_ = b[len(a)-1]
	var sum uint32
	n := len(a)
	i := 0
	for ; i+16 <= n; i += 16 {
		for j := i; j < i+16; j++ {
			d := int32(a[j]) - int32(b[j])
			sum += uint32(d * d)
		}
		if sum > bound {
			return sum, false
		}
	}
	for ; i < n; i++ {
		d := int32(a[i]) - int32(b[i])
		sum += uint32(d * d)
	}
	return sum, true
}

// L2SquaredI16 returns the squared Euclidean distance between two int16
// vectors of equal length, as used on the PIM integer path (residual vs
// quantized codebook entry).
func L2SquaredI16(a, b []int16) uint32 {
	_ = b[len(a)-1]
	var sum uint32
	for i, av := range a {
		d := int32(av) - int32(b[i])
		sum += uint32(d * d)
	}
	return sum
}

// DotF32 returns the inner product of two float32 vectors of equal length.
func DotF32(a, b []float32) float32 {
	_ = b[len(a)-1]
	var sum float32
	for i, av := range a {
		sum += av * b[i]
	}
	return sum
}

// NormSquaredF32 returns the squared L2 norm of v.
func NormSquaredF32(v []float32) float32 {
	var sum float32
	for _, x := range v {
		sum += x * x
	}
	return sum
}

// SubI16 writes a-b into dst in the int16 domain, the residual operation of
// the PIM path (operands are uint8-quantized so the difference always fits).
func SubI16(dst []int16, a, b []uint8) {
	_ = b[len(a)-1]
	_ = dst[len(a)-1]
	for i, av := range a {
		dst[i] = int16(av) - int16(b[i])
	}
}

// SubF32 writes a-b into dst.
func SubF32(dst, a, b []float32) {
	_ = b[len(a)-1]
	_ = dst[len(a)-1]
	for i, av := range a {
		dst[i] = av - b[i]
	}
}

// ArgMinL2F32 scans the flat centroid matrix (k rows of length dim) and
// returns the row index with the smallest squared L2 distance to query, along
// with that distance. It panics if centroids is not a multiple of dim or is
// empty.
func ArgMinL2F32(query, centroids []float32, dim int) (int, float32) {
	k := len(centroids) / dim
	if k == 0 || len(centroids)%dim != 0 {
		panic(fmt.Sprintf("vecmath: bad centroid matrix len=%d dim=%d", len(centroids), dim))
	}
	best, bestDist := 0, float32(math.MaxFloat32)
	for i := 0; i < k; i++ {
		d := L2SquaredF32(query, centroids[i*dim:(i+1)*dim])
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist
}

// Quantizer maps float32 vectors onto the uint8 grid used by the PIM path.
// Quantization is affine: q = round((x - Bias) / Scale), clamped to [0,255].
type Quantizer struct {
	Scale float32 // grid step; > 0
	Bias  float32 // value represented by code 0
}

// FitQuantizer derives an affine uint8 quantizer covering the min..max range
// of the given flat data. A degenerate (constant) input yields Scale 1.
func FitQuantizer(data []float32) Quantizer {
	if len(data) == 0 {
		return Quantizer{Scale: 1}
	}
	lo, hi := data[0], data[0]
	for _, x := range data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	scale := (hi - lo) / 255
	if scale <= 0 {
		scale = 1
	}
	return Quantizer{Scale: scale, Bias: lo}
}

// Encode quantizes one float32 value to its uint8 code.
func (q Quantizer) Encode(x float32) uint8 {
	v := math.Round(float64((x - q.Bias) / q.Scale))
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// Decode reconstructs the float32 value of a uint8 code.
func (q Quantizer) Decode(c uint8) float32 {
	return q.Bias + float32(c)*q.Scale
}

// EncodeVec quantizes src into dst (same length).
func (q Quantizer) EncodeVec(dst []uint8, src []float32) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = q.Encode(x)
	}
}

// DecodeVec reconstructs src into dst (same length).
func (q Quantizer) DecodeVec(dst []float32, src []uint8) {
	_ = dst[len(src)-1]
	for i, c := range src {
		dst[i] = q.Decode(c)
	}
}

// EncodeAll quantizes a whole flat float32 corpus into a fresh uint8 corpus.
func (q Quantizer) EncodeAll(src []float32) []uint8 {
	dst := make([]uint8, len(src))
	q.EncodeVec(dst, src)
	return dst
}

// DecodeAll reconstructs a whole flat uint8 corpus into a fresh float32
// corpus.
func (q Quantizer) DecodeAll(src []uint8) []float32 {
	dst := make([]float32, len(src))
	q.DecodeVec(dst, src)
	return dst
}

// U8ToF32 widens a uint8 vector to float32 without rescaling; used when the
// corpus is already natively uint8 (e.g. SIFT).
func U8ToF32(dst []float32, src []uint8) {
	_ = dst[len(src)-1]
	for i, c := range src {
		dst[i] = float32(c)
	}
}

// ADCF32 accumulates an asymmetric PQ distance from a float32 lookup table.
// lut holds M contiguous rows of cb entries; code holds M entries indexing
// into the corresponding row.
func ADCF32(lut []float32, code []uint16, cb int) float32 {
	var sum float32
	for m, c := range code {
		sum += lut[m*cb+int(c)]
	}
	return sum
}

// ADCU32 is the integer-domain twin of ADCF32 used on the PIM path.
func ADCU32(lut []uint32, code []uint16, cb int) uint32 {
	var sum uint32
	for m, c := range code {
		sum += lut[m*cb+int(c)]
	}
	return sum
}

// ADCU32M8 is ADCU32 specialized for M=8: fully unrolled with four
// independent accumulators so the gathers overlap instead of serializing on
// one addition chain. uint32 addition is associative mod 2^32, so the result
// is bit-identical to ADCU32.
func ADCU32M8(lut []uint32, code []uint16, cb int) uint32 {
	_ = code[7]
	s0 := lut[int(code[0])] + lut[4*cb+int(code[4])]
	s1 := lut[cb+int(code[1])] + lut[5*cb+int(code[5])]
	s2 := lut[2*cb+int(code[2])] + lut[6*cb+int(code[6])]
	s3 := lut[3*cb+int(code[3])] + lut[7*cb+int(code[7])]
	return (s0 + s1) + (s2 + s3)
}

// ADCU32M16 is ADCU32 specialized for M=16 (four 4-term accumulators).
func ADCU32M16(lut []uint32, code []uint16, cb int) uint32 {
	_ = code[15]
	s0 := lut[int(code[0])] + lut[4*cb+int(code[4])] +
		lut[8*cb+int(code[8])] + lut[12*cb+int(code[12])]
	s1 := lut[cb+int(code[1])] + lut[5*cb+int(code[5])] +
		lut[9*cb+int(code[9])] + lut[13*cb+int(code[13])]
	s2 := lut[2*cb+int(code[2])] + lut[6*cb+int(code[6])] +
		lut[10*cb+int(code[10])] + lut[14*cb+int(code[14])]
	s3 := lut[3*cb+int(code[3])] + lut[7*cb+int(code[7])] +
		lut[11*cb+int(code[11])] + lut[15*cb+int(code[15])]
	return (s0 + s1) + (s2 + s3)
}

// adcU32M16CB256 is ADCU32M16 further specialized for CB=256: each row is
// re-sliced to a provable length of 256 and indexed through a &255 mask, so
// the compiler drops every gather bounds check. Codes must be < 256 (the
// packing guarantees it for CB=256 indexes).
func adcU32M16CB256(lut []uint32, code []uint16) uint32 {
	_ = code[15]
	_ = lut[16*256-1]
	r0, r4 := lut[0*256:][:256], lut[4*256:][:256]
	r8, r12 := lut[8*256:][:256], lut[12*256:][:256]
	s0 := r0[code[0]&255] + r4[code[4]&255] + r8[code[8]&255] + r12[code[12]&255]
	r1, r5 := lut[1*256:][:256], lut[5*256:][:256]
	r9, r13 := lut[9*256:][:256], lut[13*256:][:256]
	s1 := r1[code[1]&255] + r5[code[5]&255] + r9[code[9]&255] + r13[code[13]&255]
	r2, r6 := lut[2*256:][:256], lut[6*256:][:256]
	r10, r14 := lut[10*256:][:256], lut[14*256:][:256]
	s2 := r2[code[2]&255] + r6[code[6]&255] + r10[code[10]&255] + r14[code[14]&255]
	r3, r7 := lut[3*256:][:256], lut[7*256:][:256]
	r11, r15 := lut[11*256:][:256], lut[15*256:][:256]
	s3 := r3[code[3]&255] + r7[code[7]&255] + r11[code[11]&255] + r15[code[15]&255]
	return (s0 + s1) + (s2 + s3)
}

// ADCBatchU32 fills dst[i] with the ADC distance of point i over the packed
// code matrix (n rows of m entries), dispatching to the unrolled M=8/M=16
// kernels when they apply. Results are bit-identical to calling ADCU32 per
// row.
func ADCBatchU32(dst []uint32, lut []uint32, codes []uint16, m, cb int) {
	switch {
	case m == 16 && cb == 256:
		for i := range dst {
			dst[i] = adcU32M16CB256(lut, codes[i*16:i*16+16])
		}
	case m == 8:
		for i := range dst {
			dst[i] = ADCU32M8(lut, codes[i*8:i*8+8], cb)
		}
	case m == 16:
		for i := range dst {
			dst[i] = ADCU32M16(lut, codes[i*16:i*16+16], cb)
		}
	default:
		for i := range dst {
			dst[i] = ADCU32(lut, codes[i*m:(i+1)*m], cb)
		}
	}
}

// qeSumM8 gathers the per-query decomposition term Σ_m qe[m*cb+code_m] for
// one M=8 code row (int32 domain, four accumulators).
func qeSumM8(qe []int32, code []uint16, cb int) int32 {
	_ = code[7]
	s0 := qe[int(code[0])] + qe[4*cb+int(code[4])]
	s1 := qe[cb+int(code[1])] + qe[5*cb+int(code[5])]
	s2 := qe[2*cb+int(code[2])] + qe[6*cb+int(code[6])]
	s3 := qe[3*cb+int(code[3])] + qe[7*cb+int(code[7])]
	return (s0 + s1) + (s2 + s3)
}

// qeSumM16 is qeSumM8 for M=16.
func qeSumM16(qe []int32, code []uint16, cb int) int32 {
	_ = code[15]
	s0 := qe[int(code[0])] + qe[4*cb+int(code[4])] +
		qe[8*cb+int(code[8])] + qe[12*cb+int(code[12])]
	s1 := qe[cb+int(code[1])] + qe[5*cb+int(code[5])] +
		qe[9*cb+int(code[9])] + qe[13*cb+int(code[13])]
	s2 := qe[2*cb+int(code[2])] + qe[6*cb+int(code[6])] +
		qe[10*cb+int(code[10])] + qe[14*cb+int(code[14])]
	s3 := qe[3*cb+int(code[3])] + qe[7*cb+int(code[7])] +
		qe[11*cb+int(code[11])] + qe[15*cb+int(code[15])]
	return (s0 + s1) + (s2 + s3)
}

// qeSum is the generic-width fallback of qeSumM8/qeSumM16.
func qeSum(qe []int32, code []uint16, cb int) int32 {
	var s int32
	for m, c := range code {
		s += qe[m*cb+int(c)]
	}
	return s
}

// qeSumM16CB256 is qeSumM16 with the bounds checks dropped via the CB=256
// masked-index trick of adcU32M16CB256.
func qeSumM16CB256(qe []int32, code []uint16) int32 {
	_ = code[15]
	_ = qe[16*256-1]
	r0, r4 := qe[0*256:][:256], qe[4*256:][:256]
	r8, r12 := qe[8*256:][:256], qe[12*256:][:256]
	s0 := r0[code[0]&255] + r4[code[4]&255] + r8[code[8]&255] + r12[code[12]&255]
	r1, r5 := qe[1*256:][:256], qe[5*256:][:256]
	r9, r13 := qe[9*256:][:256], qe[13*256:][:256]
	s1 := r1[code[1]&255] + r5[code[5]&255] + r9[code[9]&255] + r13[code[13]&255]
	r2, r6 := qe[2*256:][:256], qe[6*256:][:256]
	r10, r14 := qe[10*256:][:256], qe[14*256:][:256]
	s2 := r2[code[2]&255] + r6[code[6]&255] + r10[code[10]&255] + r14[code[14]&255]
	r3, r7 := qe[3*256:][:256], qe[7*256:][:256]
	r11, r15 := qe[11*256:][:256], qe[15*256:][:256]
	s3 := r3[code[3]&255] + r7[code[7]&255] + r11[code[11]&255] + r15[code[15]&255]
	return (s0 + s1) + (s2 + s3)
}

// ADCResidualBatch fills dst[i] = uint32(base + bsum[i] - 2*Σ_m
// qe[m*cb+code_im]) — the algebraically decomposed twin of ADCBatchU32: base
// is the per-(query, cluster) scalar term, bsum the precomputed static
// per-point term, and qe the per-query gather table (see ivf.LUTBuilder).
// Every partial sum stays far below int32 overflow, so the result is
// bit-identical to materializing the group's LUT and summing it with
// ADCBatchU32.
func ADCResidualBatch(dst []uint32, qe []int32, codes []uint16, bsum []int32, base int32, m, cb int) {
	_ = bsum[len(dst)-1]
	switch {
	case m == 16 && cb == 256:
		for i := range dst {
			dst[i] = uint32(base + bsum[i] - 2*qeSumM16CB256(qe, codes[i*16:i*16+16]))
		}
	case m == 8:
		for i := range dst {
			dst[i] = uint32(base + bsum[i] - 2*qeSumM8(qe, codes[i*8:i*8+8], cb))
		}
	case m == 16:
		for i := range dst {
			dst[i] = uint32(base + bsum[i] - 2*qeSumM16(qe, codes[i*16:i*16+16], cb))
		}
	default:
		for i := range dst {
			dst[i] = uint32(base + bsum[i] - 2*qeSum(qe, codes[i*m:(i+1)*m], cb))
		}
	}
}

// DotU8I32 returns the exact int32 inner product of two uint8 vectors of
// equal length (bounded by dim * 255^2, far below overflow for dim <= 2^15).
func DotU8I32(a, b []uint8) int32 {
	_ = b[len(a)-1]
	var s int32
	for i, av := range a {
		s += int32(av) * int32(b[i])
	}
	return s
}

// MeanVec computes the per-dimension mean of a flat corpus with n rows of
// length dim into a fresh vector.
func MeanVec(data []float32, dim int) []float32 {
	n := len(data) / dim
	mean := make([]float32, dim)
	if n == 0 {
		return mean
	}
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		for j, x := range row {
			mean[j] += x
		}
	}
	inv := 1 / float32(n)
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}
