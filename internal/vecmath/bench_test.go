package vecmath

import (
	"math/rand"
	"testing"
)

func benchVectors(n int) ([]uint8, []uint8, []float32, []float32) {
	rng := rand.New(rand.NewSource(1))
	a8 := make([]uint8, n)
	b8 := make([]uint8, n)
	af := make([]float32, n)
	bf := make([]float32, n)
	for i := 0; i < n; i++ {
		a8[i] = uint8(rng.Intn(256))
		b8[i] = uint8(rng.Intn(256))
		af[i] = rng.Float32()
		bf[i] = rng.Float32()
	}
	return a8, b8, af, bf
}

func BenchmarkL2SquaredU8Dim128(b *testing.B) {
	a8, b8, _, _ := benchVectors(128)
	b.SetBytes(128)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += L2SquaredU8(a8, b8)
	}
	_ = sink
}

func BenchmarkL2SquaredF32Dim128(b *testing.B) {
	_, _, af, bf := benchVectors(128)
	b.SetBytes(128 * 4)
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += L2SquaredF32(af, bf)
	}
	_ = sink
}

func BenchmarkADCU32M16(b *testing.B) {
	lut := make([]uint32, 16*256)
	for i := range lut {
		lut[i] = uint32(i)
	}
	code := make([]uint16, 16)
	for i := range code {
		code[i] = uint16(i * 13 % 256)
	}
	for i := 0; i < b.N; i++ {
		_ = ADCU32(lut, code, 256)
	}
}

// adcFixture builds an M-row LUT plus n packed code rows shaped like the
// engine's DC kernel input (one cluster slice).
func adcFixture(m, cb, n int) (lut []uint32, codes []uint16) {
	rng := rand.New(rand.NewSource(3))
	lut = make([]uint32, m*cb)
	for i := range lut {
		lut[i] = rng.Uint32()
	}
	codes = make([]uint16, n*m)
	for i := range codes {
		codes[i] = uint16(rng.Intn(cb))
	}
	return lut, codes
}

// The ISSUE-2 ADC micro-benchmarks: generic per-point loop vs the unrolled
// M=16 kernel vs the batch dispatcher vs the decomposed residual batch. The
// engine's DC phase runs one of the batch variants per cluster slice.

func BenchmarkADCU32GenericLoop(b *testing.B) {
	const m, cb, n = 16, 256, 1024
	lut, codes := adcFixture(m, cb, n)
	b.SetBytes(int64(n * m * 2))
	var sink uint32
	for i := 0; i < b.N; i++ {
		for p := 0; p < n; p++ {
			sink += ADCU32(lut, codes[p*m:(p+1)*m], cb)
		}
	}
	_ = sink
}

func BenchmarkADCU32M16Unrolled(b *testing.B) {
	const m, cb, n = 16, 256, 1024
	lut, codes := adcFixture(m, cb, n)
	b.SetBytes(int64(n * m * 2))
	var sink uint32
	for i := 0; i < b.N; i++ {
		for p := 0; p < n; p++ {
			sink += ADCU32M16(lut, codes[p*m:(p+1)*m], cb)
		}
	}
	_ = sink
}

func BenchmarkADCBatchU32M16(b *testing.B) {
	const m, cb, n = 16, 256, 1024
	lut, codes := adcFixture(m, cb, n)
	dst := make([]uint32, n)
	b.SetBytes(int64(n * m * 2))
	for i := 0; i < b.N; i++ {
		ADCBatchU32(dst, lut, codes, m, cb)
	}
}

func BenchmarkADCBatchU32M8(b *testing.B) {
	const m, cb, n = 8, 256, 1024
	lut, codes := adcFixture(m, cb, n)
	dst := make([]uint32, n)
	b.SetBytes(int64(n * m * 2))
	for i := 0; i < b.N; i++ {
		ADCBatchU32(dst, lut, codes, m, cb)
	}
}

func BenchmarkADCResidualBatchM16(b *testing.B) {
	const m, cb, n = 16, 256, 1024
	_, codes := adcFixture(m, cb, n)
	rng := rand.New(rand.NewSource(4))
	qe := make([]int32, m*cb)
	for i := range qe {
		qe[i] = int32(rng.Intn(1 << 20))
	}
	bsum := make([]int32, n)
	for i := range bsum {
		bsum[i] = int32(rng.Intn(1 << 24))
	}
	dst := make([]uint32, n)
	b.SetBytes(int64(n * m * 2))
	for i := 0; i < b.N; i++ {
		ADCResidualBatch(dst, qe, codes, bsum, 12345, m, cb)
	}
}

func BenchmarkArgMinL2F32(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const k, dim = 1024, 128
	centroids := make([]float32, k*dim)
	for i := range centroids {
		centroids[i] = rng.Float32()
	}
	query := centroids[:dim]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArgMinL2F32(query, centroids, dim)
	}
}
