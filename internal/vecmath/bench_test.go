package vecmath

import (
	"math/rand"
	"testing"
)

func benchVectors(n int) ([]uint8, []uint8, []float32, []float32) {
	rng := rand.New(rand.NewSource(1))
	a8 := make([]uint8, n)
	b8 := make([]uint8, n)
	af := make([]float32, n)
	bf := make([]float32, n)
	for i := 0; i < n; i++ {
		a8[i] = uint8(rng.Intn(256))
		b8[i] = uint8(rng.Intn(256))
		af[i] = rng.Float32()
		bf[i] = rng.Float32()
	}
	return a8, b8, af, bf
}

func BenchmarkL2SquaredU8Dim128(b *testing.B) {
	a8, b8, _, _ := benchVectors(128)
	b.SetBytes(128)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += L2SquaredU8(a8, b8)
	}
	_ = sink
}

func BenchmarkL2SquaredF32Dim128(b *testing.B) {
	_, _, af, bf := benchVectors(128)
	b.SetBytes(128 * 4)
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += L2SquaredF32(af, bf)
	}
	_ = sink
}

func BenchmarkADCU32M16(b *testing.B) {
	lut := make([]uint32, 16*256)
	for i := range lut {
		lut[i] = uint32(i)
	}
	code := make([]uint16, 16)
	for i := range code {
		code[i] = uint16(i * 13 % 256)
	}
	for i := 0; i < b.N; i++ {
		_ = ADCU32(lut, code, 256)
	}
}

func BenchmarkArgMinL2F32(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const k, dim = 1024, 128
	centroids := make([]float32, k*dim)
	for i := range centroids {
		centroids[i] = rng.Float32()
	}
	query := centroids[:dim]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArgMinL2F32(query, centroids, dim)
	}
}
