package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestL2SquaredF32Basic(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := L2SquaredF32(a, b); got != 25 {
		t.Fatalf("L2SquaredF32 = %v, want 25", got)
	}
	if got := L2SquaredF32(a, a); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestL2SquaredU8Basic(t *testing.T) {
	a := []uint8{0, 255, 10}
	b := []uint8{255, 0, 10}
	want := uint32(2 * 255 * 255)
	if got := L2SquaredU8(a, b); got != want {
		t.Fatalf("L2SquaredU8 = %d, want %d", got, want)
	}
}

func TestL2SquaredSymmetryProperty(t *testing.T) {
	f := func(a, b [16]uint8) bool {
		return L2SquaredU8(a[:], b[:]) == L2SquaredU8(b[:], a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL2SquaredI16MatchesU8(t *testing.T) {
	// Widening uint8 vectors to int16 must not change the distance.
	f := func(a, b [8]uint8) bool {
		ai := make([]int16, 8)
		bi := make([]int16, 8)
		for i := range a {
			ai[i] = int16(a[i])
			bi[i] = int16(b[i])
		}
		return L2SquaredI16(ai, bi) == L2SquaredU8(a[:], b[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL2NonNegativeAndIdentity(t *testing.T) {
	f := func(a, b [12]uint8) bool {
		d := L2SquaredU8(a[:], b[:])
		if a == b && d != 0 {
			return false
		}
		// d is uint32 so non-negativity is structural; check zero iff equal.
		if d == 0 {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotF32(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := DotF32(a, b); got != 32 {
		t.Fatalf("DotF32 = %v, want 32", got)
	}
}

func TestNormSquaredF32(t *testing.T) {
	if got := NormSquaredF32([]float32{3, 4}); got != 25 {
		t.Fatalf("NormSquaredF32 = %v, want 25", got)
	}
}

func TestSubI16(t *testing.T) {
	a := []uint8{10, 0, 255}
	b := []uint8{20, 0, 0}
	dst := make([]int16, 3)
	SubI16(dst, a, b)
	want := []int16{-10, 0, 255}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SubI16[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestSubF32(t *testing.T) {
	dst := make([]float32, 2)
	SubF32(dst, []float32{5, 1}, []float32{2, 3})
	if dst[0] != 3 || dst[1] != -2 {
		t.Fatalf("SubF32 = %v", dst)
	}
}

func TestArgMinL2F32(t *testing.T) {
	centroids := []float32{
		0, 0,
		10, 10,
		3, 4,
	}
	idx, d := ArgMinL2F32([]float32{3, 3}, centroids, 2)
	if idx != 2 {
		t.Fatalf("ArgMinL2F32 idx = %d, want 2", idx)
	}
	if d != 1 {
		t.Fatalf("ArgMinL2F32 dist = %v, want 1", d)
	}
}

func TestArgMinPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged centroid matrix")
		}
	}()
	ArgMinL2F32([]float32{1, 2}, []float32{1, 2, 3}, 2)
}

func TestQuantizerRoundTripGrid(t *testing.T) {
	q := Quantizer{Scale: 0.5, Bias: -10}
	for c := 0; c < 256; c++ {
		x := q.Decode(uint8(c))
		if got := q.Encode(x); got != uint8(c) {
			t.Fatalf("Encode(Decode(%d)) = %d", c, got)
		}
	}
}

func TestFitQuantizerCoversRange(t *testing.T) {
	data := []float32{-1, 0, 2.5, 7}
	q := FitQuantizer(data)
	if q.Encode(-1) != 0 {
		t.Fatalf("min should map to 0, got %d", q.Encode(-1))
	}
	if q.Encode(7) != 255 {
		t.Fatalf("max should map to 255, got %d", q.Encode(7))
	}
	// Everything decodes back within one grid step.
	for _, x := range data {
		back := q.Decode(q.Encode(x))
		if diff := math.Abs(float64(back - x)); diff > float64(q.Scale)/2+1e-5 {
			t.Fatalf("roundtrip error %v for %v (scale %v)", diff, x, q.Scale)
		}
	}
}

func TestFitQuantizerDegenerate(t *testing.T) {
	q := FitQuantizer([]float32{3, 3, 3})
	if q.Scale <= 0 {
		t.Fatalf("degenerate scale must stay positive, got %v", q.Scale)
	}
	if q.Encode(3) != 0 {
		t.Fatalf("constant input should encode to 0")
	}
	if FitQuantizer(nil).Scale <= 0 {
		t.Fatal("empty input must yield a usable quantizer")
	}
}

func TestQuantizerClamps(t *testing.T) {
	q := Quantizer{Scale: 1, Bias: 0}
	if q.Encode(-5) != 0 {
		t.Fatal("below-range values must clamp to 0")
	}
	if q.Encode(500) != 255 {
		t.Fatal("above-range values must clamp to 255")
	}
}

func TestEncodeDecodeVecAll(t *testing.T) {
	src := []float32{0, 1, 2, 3}
	q := FitQuantizer(src)
	enc := q.EncodeAll(src)
	dec := q.DecodeAll(enc)
	for i := range src {
		if math.Abs(float64(dec[i]-src[i])) > float64(q.Scale)/2+1e-5 {
			t.Fatalf("EncodeAll/DecodeAll error at %d: %v vs %v", i, dec[i], src[i])
		}
	}
}

func TestU8ToF32(t *testing.T) {
	dst := make([]float32, 3)
	U8ToF32(dst, []uint8{0, 128, 255})
	if dst[0] != 0 || dst[1] != 128 || dst[2] != 255 {
		t.Fatalf("U8ToF32 = %v", dst)
	}
}

func TestADCAccumulators(t *testing.T) {
	const m, cb = 3, 4
	lutF := make([]float32, m*cb)
	lutU := make([]uint32, m*cb)
	for i := range lutF {
		lutF[i] = float32(i)
		lutU[i] = uint32(i)
	}
	code := []uint16{1, 3, 0}
	wantF := lutF[0*cb+1] + lutF[1*cb+3] + lutF[2*cb+0]
	if got := ADCF32(lutF, code, cb); got != wantF {
		t.Fatalf("ADCF32 = %v, want %v", got, wantF)
	}
	if got := ADCU32(lutU, code, cb); got != uint32(wantF) {
		t.Fatalf("ADCU32 = %v, want %v", got, uint32(wantF))
	}
}

func TestMeanVec(t *testing.T) {
	data := []float32{0, 2, 4, 6}
	mean := MeanVec(data, 2)
	if mean[0] != 2 || mean[1] != 4 {
		t.Fatalf("MeanVec = %v", mean)
	}
	empty := MeanVec(nil, 2)
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatalf("MeanVec(nil) = %v", empty)
	}
}

func TestQuantizerErrorBoundProperty(t *testing.T) {
	// For values inside the fitted range the round-trip error is at most
	// half a grid step (plus float slop).
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(64)
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * 10)
		}
		q := FitQuantizer(data)
		for _, x := range data {
			back := q.Decode(q.Encode(x))
			if math.Abs(float64(back-x)) > float64(q.Scale)/2+1e-4 {
				t.Fatalf("roundtrip error too large: x=%v back=%v scale=%v", x, back, q.Scale)
			}
		}
	}
}

// TestADCUnrolledVariantsMatchGeneric: the M=8/M=16 unrolled kernels, the
// batch dispatcher, and the decomposed residual batch must all be
// bit-identical to the scalar reference loop.
func TestADCUnrolledVariantsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range []int{4, 8, 16} {
		for _, cb := range []int{16, 64, 256} {
			lut := make([]uint32, m*cb)
			for i := range lut {
				// Large values exercise uint32 wraparound in the sums.
				lut[i] = rng.Uint32()
			}
			const n = 37
			codes := make([]uint16, n*m)
			for i := range codes {
				codes[i] = uint16(rng.Intn(cb))
			}

			want := make([]uint32, n)
			for i := 0; i < n; i++ {
				want[i] = ADCU32(lut, codes[i*m:(i+1)*m], cb)
			}
			got := make([]uint32, n)
			ADCBatchU32(got, lut, codes, m, cb)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("M=%d CB=%d point %d: batch %d != reference %d", m, cb, i, got[i], want[i])
				}
			}
			switch m {
			case 8:
				for i := 0; i < n; i++ {
					if v := ADCU32M8(lut, codes[i*8:i*8+8], cb); v != want[i] {
						t.Fatalf("ADCU32M8 CB=%d point %d: %d != %d", cb, i, v, want[i])
					}
				}
			case 16:
				for i := 0; i < n; i++ {
					if v := ADCU32M16(lut, codes[i*16:i*16+16], cb); v != want[i] {
						t.Fatalf("ADCU32M16 CB=%d point %d: %d != %d", cb, i, v, want[i])
					}
				}
			}
		}
	}
}

// TestADCResidualBatchMatchesMaterializedLUT: summing a materialized LUT
// whose entries are uint32(p + b[e] - 2*qe[e]) must equal the decomposed
// per-point evaluation for every M dispatch width.
func TestADCResidualBatchMatchesMaterializedLUT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, m := range []int{4, 8, 16} {
		const cb = 64
		qe := make([]int32, m*cb)
		b := make([]int32, m*cb)
		lut := make([]uint32, m*cb)
		base := int32(rng.Intn(1<<20) - 1<<19)
		perRow := base / int32(m)
		rem := base - perRow*int32(m)
		for i := range qe {
			qe[i] = int32(rng.Intn(1 << 20))
			b[i] = int32(rng.Intn(1 << 20))
			p := perRow
			if i/cb == 0 {
				p += rem
			}
			lut[i] = uint32(p + b[i] - 2*qe[i])
		}
		const n = 29
		codes := make([]uint16, n*m)
		bsum := make([]int32, n)
		for i := 0; i < n; i++ {
			for mi := 0; mi < m; mi++ {
				codes[i*m+mi] = uint16(rng.Intn(cb))
				bsum[i] += b[mi*cb+int(codes[i*m+mi])]
			}
		}
		want := make([]uint32, n)
		ADCBatchU32(want, lut, codes, m, cb)
		got := make([]uint32, n)
		ADCResidualBatch(got, qe, codes, bsum, base, m, cb)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("M=%d point %d: decomposed %d != materialized %d", m, i, got[i], want[i])
			}
		}
	}
}

func TestDotU8I32(t *testing.T) {
	a := []uint8{255, 0, 3, 255}
	b := []uint8{255, 9, 2, 1}
	want := int32(255*255 + 0 + 6 + 255)
	if got := DotU8I32(a, b); got != want {
		t.Fatalf("DotU8I32 = %d, want %d", got, want)
	}
}

// TestL2SquaredU8AbandonExact: whenever the bounded scan completes, the
// distance equals the full evaluation; whenever it abandons, the true
// distance is strictly above the bound (so a caller rejecting > bound makes
// identical decisions either way).
func TestL2SquaredU8AbandonExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(200)
		a := make([]uint8, n)
		b := make([]uint8, n)
		for i := range a {
			a[i] = uint8(rng.Intn(256))
			b[i] = uint8(rng.Intn(256))
		}
		want := L2SquaredU8(a, b)
		var bound uint32
		switch rng.Intn(3) {
		case 0:
			bound = want // completing scans must return exactly want
		case 1:
			bound = want / 2
		default:
			bound = uint32(rng.Intn(1 << 22))
		}
		got, done := L2SquaredU8Abandon(a, b, bound)
		if done {
			if got != want {
				t.Fatalf("trial %d: completed scan returned %d, want %d", trial, got, want)
			}
		} else {
			if want <= bound {
				t.Fatalf("trial %d: abandoned although true distance %d <= bound %d", trial, want, bound)
			}
			if got <= bound {
				t.Fatalf("trial %d: abandoned with partial %d <= bound %d", trial, got, bound)
			}
		}
	}
}
