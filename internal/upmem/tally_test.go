package upmem

import (
	"math/rand"
	"testing"
)

// TestTallyMatchesPerOpCharging: a randomized charge sequence applied (a)
// per op directly to a DPU and (b) accumulated in a Tally and flushed once
// must leave bit-identical phase statistics, including the per-call DMA
// coalescing of RandomAccess.
func TestTallyMatchesPerOpCharging(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultConfig(2)
	cfg.defaults()
	for trial := 0; trial < 20; trial++ {
		direct := &DPU{cfg: &cfg}
		tallied := &DPU{cfg: &cfg}
		var tally Tally
		for i := 0; i < 200; i++ {
			p := Phase(rng.Intn(int(NumPhases)))
			n := uint64(rng.Intn(1000))
			switch rng.Intn(4) {
			case 0:
				op := Op(rng.Intn(6))
				direct.Charge(p, op, n)
				tally.Charge(&cfg.Cost, p, op, n)
			case 1:
				direct.ChargeCycles(p, n)
				tally.ChargeCycles(p, n)
			case 2:
				direct.DMA(p, n)
				tally.DMA(p, n)
			case 3:
				// Odd n exercises the coalescing round-up, which is only
				// bit-identical when applied per call.
				direct.RandomAccess(p, n)
				tally.RandomAccess(p, n)
			}
		}
		tallied.ApplyTally(&tally)
		for p := Phase(0); p < NumPhases; p++ {
			if direct.Stats(p) != tallied.Stats(p) {
				t.Fatalf("trial %d phase %s: tallied %+v != direct %+v",
					trial, p, tallied.Stats(p), direct.Stats(p))
			}
			if direct.PhaseCycles(p) != tallied.PhaseCycles(p) {
				t.Fatalf("trial %d phase %s: wall cycles diverge", trial, p)
			}
		}
	}
}

// TestTallyReset: a reset tally applies as zero.
func TestTallyReset(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.defaults()
	var tally Tally
	tally.ChargeCycles(PhaseDC, 100)
	tally.DMA(PhaseLC, 64)
	tally.Reset()
	d := &DPU{cfg: &cfg}
	d.ApplyTally(&tally)
	if d.TotalCycles() != 0 {
		t.Fatalf("reset tally charged %d cycles", d.TotalCycles())
	}
}
