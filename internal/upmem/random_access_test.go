package upmem

import "testing"

func TestRandomAccessCostsMoreThanStreaming(t *testing.T) {
	s := newTestSystem(t, 1)
	d := s.DPUs[0]

	// 1000 random 8-byte accesses vs one streamed 8000-byte DMA.
	d.RandomAccess(PhaseDC, 1000)
	random := d.Stats(PhaseDC).IOCycles(&s.Cfg.Cost)
	d.ResetCounters()
	d.DMA(PhaseDC, 8000)
	streamed := d.Stats(PhaseDC).IOCycles(&s.Cfg.Cost)

	if random <= streamed {
		t.Fatalf("random access (%d cy) must cost more than streaming (%d cy)", random, streamed)
	}
	// The gap is what the WRAM buffer optimization eliminates; it should be
	// several-fold (paper: up to the 4.72x bandwidth ratio and beyond for
	// tiny transfers).
	if float64(random)/float64(streamed) < 3 {
		t.Fatalf("random/streamed ratio %v too small to motivate buffering",
			float64(random)/float64(streamed))
	}
}

func TestRandomAccessAccumulates(t *testing.T) {
	s := newTestSystem(t, 1)
	d := s.DPUs[0]
	d.RandomAccess(PhaseLC, 10)
	st := d.Stats(PhaseLC)
	if st.DMABytes != 80 {
		t.Fatalf("DMABytes = %d, want 80", st.DMABytes)
	}
	if st.DMACount == 0 {
		t.Fatal("random accesses must count DMA setups")
	}
}
