// Package upmem simulates a UPMEM-style DRAM-PIM system (paper §2.2) well
// enough to reproduce DRIM-ANN's performance phenomena without the hardware.
//
// The simulator is functional-plus-analytic: kernels are ordinary Go code
// that computes real answers while charging simulated costs to the DPU they
// run on. The cost model captures exactly the properties the paper's design
// reacts to:
//
//   - each DPU is an in-order multithreaded pipeline that reaches ~1
//     instruction/cycle only with >= PipelineDepth tasklets (PrIM
//     characterization), at 350-450 MHz;
//   - there is no hardware multiplier: a 32-bit multiply costs ~32
//     add-equivalent cycles, a division ~64;
//   - each DPU owns 64 MB of MRAM (DRAM bank) and a 64 KB WRAM scratchpad;
//     WRAM accesses are pipeline-absorbed, MRAM is reachable only via DMA
//     with a fixed setup latency plus a per-byte cost;
//   - DPUs cannot talk to each other, and host<->DPU transfers share a
//     bandwidth of roughly 0.75 % of the aggregate internal bandwidth.
//
// Computation and DMA overlap within a phase (the paper's Equation 12), so a
// phase's wall time is max(compute, IO).
package upmem

import (
	"fmt"
)

// Phase identifies the ANNS processing phase a cost is charged to,
// mirroring the paper's CL/RC/LC/DC/TS decomposition (Figure 1).
type Phase int

// Phases in paper order. PhaseOther absorbs scheduling/merge overheads.
const (
	PhaseCL Phase = iota
	PhaseRC
	PhaseLC
	PhaseDC
	PhaseTS
	PhaseOther
	NumPhases
)

// String returns the paper's abbreviation for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseCL:
		return "CL"
	case PhaseRC:
		return "RC"
	case PhaseLC:
		return "LC"
	case PhaseDC:
		return "DC"
	case PhaseTS:
		return "TS"
	case PhaseOther:
		return "Others"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Op is an instruction class with a distinct cycle cost.
type Op int

// Instruction classes. OpMul/OpDiv are the expensive software-emulated ones.
const (
	OpAdd   Op = iota // add/sub/abs/shift: 1 cycle
	OpCmp             // compare/branch: 1 cycle
	OpLoad            // WRAM load: 1 cycle (pipeline-absorbed)
	OpStore           // WRAM store: 1 cycle
	OpMul             // 32x32 multiply: no hardware unit, ~32 cycles
	OpDiv             // division: ~64 cycles
)

// CostModel holds the per-class cycle costs and DMA/transfer parameters.
type CostModel struct {
	ClockHz          float64 // DPU clock (350 MHz on the paper's DIMMs)
	PipelineDepth    int     // tasklets needed for 1 instr/cycle (11 per PrIM)
	AddCycles        uint64
	CmpCycles        uint64
	LoadCycles       uint64
	StoreCycles      uint64
	MulCycles        uint64 // the paper's "32x more expensive than addition"
	DivCycles        uint64
	DMALatencyCycles uint64  // fixed setup per MRAM<->WRAM DMA
	DMACyclesPerByte float64 // streaming cost; ~0.5 cy/B = ~700 MB/s at 350 MHz
	// WRAMSpeedup is the bandwidth advantage of WRAM-resident data over
	// MRAM streaming; the paper measures ~4.72x peak.
	WRAMSpeedup float64
}

// DefaultCostModel returns the UPMEM PIM-DIMM parameters used throughout the
// paper's experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		ClockHz:          350e6,
		PipelineDepth:    11,
		AddCycles:        1,
		CmpCycles:        1,
		LoadCycles:       1,
		StoreCycles:      1,
		MulCycles:        32,
		DivCycles:        64,
		DMALatencyCycles: 77,
		DMACyclesPerByte: 0.5,
		WRAMSpeedup:      4.72,
	}
}

// Cycles returns the cost of n instructions of class op.
func (c *CostModel) Cycles(op Op, n uint64) uint64 {
	switch op {
	case OpAdd:
		return c.AddCycles * n
	case OpCmp:
		return c.CmpCycles * n
	case OpLoad:
		return c.LoadCycles * n
	case OpStore:
		return c.StoreCycles * n
	case OpMul:
		return c.MulCycles * n
	case OpDiv:
		return c.DivCycles * n
	}
	panic(fmt.Sprintf("upmem: unknown op %d", int(op)))
}

// Config describes a PIM system instance.
type Config struct {
	NumDPUs   int
	Tasklets  int // per-DPU software threads; default 16
	WRAMBytes int // default 64 KB
	MRAMBytes int // default 64 MB
	Cost      CostModel
	// HostXferFraction is host<->PIM bandwidth as a fraction of aggregate
	// internal bandwidth (the paper's 0.75 %).
	HostXferFraction float64
	// LaunchLatencySec is the fixed host-side cost of one synchronous DPU
	// launch (rank broadcast + barrier).
	LaunchLatencySec float64
}

// DefaultConfig returns a paper-like system scaled to numDPUs.
func DefaultConfig(numDPUs int) Config {
	return Config{
		NumDPUs:          numDPUs,
		Tasklets:         16,
		WRAMBytes:        64 * 1024,
		MRAMBytes:        64 * 1024 * 1024,
		Cost:             DefaultCostModel(),
		HostXferFraction: 0.0075,
		LaunchLatencySec: 20e-6,
	}
}

func (c *Config) defaults() {
	if c.Tasklets <= 0 {
		c.Tasklets = 16
	}
	if c.WRAMBytes <= 0 {
		c.WRAMBytes = 64 * 1024
	}
	if c.MRAMBytes <= 0 {
		c.MRAMBytes = 64 * 1024 * 1024
	}
	if c.Cost.ClockHz == 0 {
		c.Cost = DefaultCostModel()
	}
	if c.HostXferFraction <= 0 {
		c.HostXferFraction = 0.0075
	}
	if c.LaunchLatencySec <= 0 {
		c.LaunchLatencySec = 20e-6
	}
}

// InternalBWBytesPerSec returns the per-DPU MRAM streaming bandwidth implied
// by the DMA cost model.
func (c *Config) InternalBWBytesPerSec() float64 {
	return c.Cost.ClockHz / c.Cost.DMACyclesPerByte
}

// HostBWBytesPerSec returns the aggregate host<->PIM bandwidth.
func (c *Config) HostBWBytesPerSec() float64 {
	return c.HostXferFraction * float64(c.NumDPUs) * c.InternalBWBytesPerSec()
}

// PhaseStats accumulates the cost of one phase on one DPU.
type PhaseStats struct {
	ComputeCycles uint64 // instruction cycles (pre pipeline scaling)
	DMACount      uint64 // MRAM<->WRAM transfers issued
	DMABytes      uint64 // bytes moved by those transfers
}

// IOCycles returns the DMA-side cycles of the phase.
func (s PhaseStats) IOCycles(cost *CostModel) uint64 {
	return s.DMACount*cost.DMALatencyCycles + uint64(float64(s.DMABytes)*cost.DMACyclesPerByte)
}

// DPU models a single data processing unit: cost counters plus WRAM/MRAM
// capacity accounting. It is not safe for concurrent use; the engine runs
// each DPU in its own goroutine.
type DPU struct {
	ID  int
	cfg *Config

	wramUsed int
	mramUsed int

	phases [NumPhases]PhaseStats
}

// Charge accounts n instructions of class op against phase p.
func (d *DPU) Charge(p Phase, op Op, n uint64) {
	d.phases[p].ComputeCycles += d.cfg.Cost.Cycles(op, n)
}

// ChargeCycles accounts raw cycles against phase p.
func (d *DPU) ChargeCycles(p Phase, cycles uint64) {
	d.phases[p].ComputeCycles += cycles
}

// DMA accounts one MRAM<->WRAM transfer of the given size against phase p.
func (d *DPU) DMA(p Phase, bytes uint64) {
	d.phases[p].DMACount++
	d.phases[p].DMABytes += bytes
}

// dmaOverlap is the number of fine-grained DMA setups the per-DPU engine can
// overlap (double-buffering, per the PrIM small-transfer characterization).
const dmaOverlap = 2

// RandomAccess accounts n fine-grained MRAM accesses issued without WRAM
// buffering: each is a minimum-granularity (8-byte) DMA on the single
// per-DPU DMA engine, which can double-buffer (overlap two setups) but no
// more — per the PrIM small-transfer characterization. This is what makes
// unbuffered SQT/LUT/metadata access so expensive on real UPMEM hardware and
// what the paper's buffer optimization removes (Figure 12b).
func (d *DPU) RandomAccess(p Phase, n uint64) {
	d.phases[p].DMACount += (n + dmaOverlap - 1) / dmaOverlap
	d.phases[p].DMABytes += 8 * n
}

// Tally is a register-resident batch of cost charges. Hot simulation kernels
// accumulate instruction, DMA and random-access costs into a private Tally
// and flush it to a DPU's phase counters once per slice or launch
// (ApplyTally) instead of charging the shared counters per operation. Every
// accumulation uses exactly the arithmetic of the corresponding DPU method —
// including the per-call coalescing rule of RandomAccess — and all counters
// are uint64 sums, so a flushed Tally yields bit-identical phase statistics
// to charging per op.
type Tally struct {
	compute  [NumPhases]uint64
	dmaCount [NumPhases]uint64
	dmaBytes [NumPhases]uint64
}

// Charge accounts n instructions of class op against phase p (the Tally twin
// of DPU.Charge; cost supplies the per-class cycle weights).
func (t *Tally) Charge(cost *CostModel, p Phase, op Op, n uint64) {
	t.compute[p] += cost.Cycles(op, n)
}

// ChargeCycles accounts raw cycles against phase p.
func (t *Tally) ChargeCycles(p Phase, cycles uint64) {
	t.compute[p] += cycles
}

// DMA accounts one MRAM<->WRAM transfer of the given size against phase p.
func (t *Tally) DMA(p Phase, bytes uint64) {
	t.dmaCount[p]++
	t.dmaBytes[p] += bytes
}

// RandomAccess accounts n fine-grained MRAM accesses against phase p with
// the same per-call coalescing as DPU.RandomAccess (callers must keep the
// call granularity of the per-op path for bit-identical DMA counts).
func (t *Tally) RandomAccess(p Phase, n uint64) {
	t.dmaCount[p] += (n + dmaOverlap - 1) / dmaOverlap
	t.dmaBytes[p] += 8 * n
}

// Reset zeroes the tally for reuse.
func (t *Tally) Reset() { *t = Tally{} }

// ApplyTally adds a tally's accumulated costs to the DPU's phase counters.
func (d *DPU) ApplyTally(t *Tally) {
	for p := Phase(0); p < NumPhases; p++ {
		d.phases[p].ComputeCycles += t.compute[p]
		d.phases[p].DMACount += t.dmaCount[p]
		d.phases[p].DMABytes += t.dmaBytes[p]
	}
}

// AllocWRAM reserves scratchpad bytes; it fails when the 64 KB WRAM would be
// exceeded — the constraint behind the paper's tiered SQT and buffer
// optimization.
func (d *DPU) AllocWRAM(bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("upmem: negative WRAM allocation")
	}
	if d.wramUsed+bytes > d.cfg.WRAMBytes {
		return fmt.Errorf("upmem: WRAM overflow on DPU %d: %d + %d > %d",
			d.ID, d.wramUsed, bytes, d.cfg.WRAMBytes)
	}
	d.wramUsed += bytes
	return nil
}

// AllocMRAM reserves MRAM bytes; it fails beyond the 64 MB bank.
func (d *DPU) AllocMRAM(bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("upmem: negative MRAM allocation")
	}
	if d.mramUsed+bytes > d.cfg.MRAMBytes {
		return fmt.Errorf("upmem: MRAM overflow on DPU %d: %d + %d > %d",
			d.ID, d.mramUsed, bytes, d.cfg.MRAMBytes)
	}
	d.mramUsed += bytes
	return nil
}

// WRAMUsed reports reserved scratchpad bytes.
func (d *DPU) WRAMUsed() int { return d.wramUsed }

// MRAMUsed reports reserved bank bytes.
func (d *DPU) MRAMUsed() int { return d.mramUsed }

// WRAMFree reports remaining scratchpad bytes.
func (d *DPU) WRAMFree() int { return d.cfg.WRAMBytes - d.wramUsed }

// MRAMFree reports remaining bank bytes.
func (d *DPU) MRAMFree() int { return d.cfg.MRAMBytes - d.mramUsed }

// ResetWRAM releases all scratchpad reservations (between batches).
func (d *DPU) ResetWRAM() { d.wramUsed = 0 }

// ResetCounters zeroes the phase statistics (between measurements).
func (d *DPU) ResetCounters() { d.phases = [NumPhases]PhaseStats{} }

// Stats returns the accumulated statistics for phase p.
func (d *DPU) Stats(p Phase) PhaseStats { return d.phases[p] }

// PhaseCycles returns the wall cycles of phase p: compute scaled by pipeline
// occupancy, overlapped with DMA (Equation 12's max form).
func (d *DPU) PhaseCycles(p Phase) uint64 {
	s := d.phases[p]
	compute := d.scalePipeline(s.ComputeCycles)
	io := s.IOCycles(&d.cfg.Cost)
	if io > compute {
		return io
	}
	return compute
}

// TotalCycles returns the summed wall cycles across phases.
func (d *DPU) TotalCycles() uint64 {
	var total uint64
	for p := Phase(0); p < NumPhases; p++ {
		total += d.PhaseCycles(p)
	}
	return total
}

// scalePipeline converts instruction cycles to wall cycles given the tasklet
// count: throughput is min(T, depth)/depth instructions per cycle.
func (d *DPU) scalePipeline(cycles uint64) uint64 {
	t := d.cfg.Tasklets
	depth := d.cfg.Cost.PipelineDepth
	if t >= depth {
		return cycles
	}
	return cycles * uint64(depth) / uint64(t)
}

// Seconds converts cycles to seconds at the configured clock.
func (c *Config) Seconds(cycles uint64) float64 {
	return float64(cycles) / c.Cost.ClockHz
}

// System is a collection of DPUs plus host-transfer accounting.
type System struct {
	Cfg  Config
	DPUs []*DPU

	hostToDev uint64
	devToHost uint64
	launches  int
}

// NewSystem builds a system with cfg (defaults applied).
func NewSystem(cfg Config) (*System, error) {
	cfg.defaults()
	if cfg.NumDPUs <= 0 {
		return nil, fmt.Errorf("upmem: NumDPUs must be positive, got %d", cfg.NumDPUs)
	}
	s := &System{Cfg: cfg, DPUs: make([]*DPU, cfg.NumDPUs)}
	for i := range s.DPUs {
		s.DPUs[i] = &DPU{ID: i, cfg: &s.Cfg}
	}
	return s, nil
}

// TransferToDPUs accounts host->PIM bytes (queries, LUT seeds, metadata).
func (s *System) TransferToDPUs(bytes uint64) { s.hostToDev += bytes }

// TransferFromDPUs accounts PIM->host bytes (top-k results).
func (s *System) TransferFromDPUs(bytes uint64) { s.devToHost += bytes }

// Launch accounts one synchronous launch of all DPUs.
func (s *System) Launch() { s.launches++ }

// Launches reports the number of synchronous launches so far.
func (s *System) Launches() int { return s.launches }

// TransferSeconds returns the time spent on host<->PIM transfers plus launch
// overheads so far.
func (s *System) TransferSeconds() float64 {
	bw := s.Cfg.HostBWBytesPerSec()
	return float64(s.hostToDev+s.devToHost)/bw + float64(s.launches)*s.Cfg.LaunchLatencySec
}

// TransferredBytes reports (to-device, from-device) totals.
func (s *System) TransferredBytes() (uint64, uint64) { return s.hostToDev, s.devToHost }

// MaxDPUCycles returns the slowest DPU's total cycles — the batch critical
// path under synchronous launches, which is exactly what load balancing
// minimizes.
func (s *System) MaxDPUCycles() uint64 {
	var max uint64
	for _, d := range s.DPUs {
		if c := d.TotalCycles(); c > max {
			max = c
		}
	}
	return max
}

// MeanDPUCycles returns the average per-DPU total cycles.
func (s *System) MeanDPUCycles() float64 {
	var sum uint64
	for _, d := range s.DPUs {
		sum += d.TotalCycles()
	}
	return float64(sum) / float64(len(s.DPUs))
}

// Imbalance returns max/mean DPU cycles (1.0 = perfectly balanced); the
// paper's load-balance optimizations drive this toward 1.
func (s *System) Imbalance() float64 {
	mean := s.MeanDPUCycles()
	if mean == 0 {
		return 1
	}
	return float64(s.MaxDPUCycles()) / mean
}

// PhaseCyclesMax returns the slowest DPU's cycles for one phase, the
// quantity behind the paper's Figure 9 breakdown.
func (s *System) PhaseCyclesMax(p Phase) uint64 {
	var max uint64
	for _, d := range s.DPUs {
		if c := d.PhaseCycles(p); c > max {
			max = c
		}
	}
	return max
}

// ResetCounters zeroes all DPU counters and transfer accounting.
func (s *System) ResetCounters() {
	for _, d := range s.DPUs {
		d.ResetCounters()
	}
	s.hostToDev, s.devToHost, s.launches = 0, 0, 0
}

// ResetWRAM releases WRAM reservations on all DPUs.
func (s *System) ResetWRAM() {
	for _, d := range s.DPUs {
		d.ResetWRAM()
	}
}
