package upmem

import (
	"testing"
	"testing/quick"
)

func newTestSystem(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewSystem(DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{NumDPUs: 0}); err == nil {
		t.Fatal("NumDPUs=0 must fail")
	}
	s := newTestSystem(t, 4)
	if len(s.DPUs) != 4 {
		t.Fatalf("got %d DPUs", len(s.DPUs))
	}
	if s.Cfg.WRAMBytes != 64*1024 || s.Cfg.MRAMBytes != 64*1024*1024 {
		t.Fatalf("defaults not applied: %+v", s.Cfg)
	}
}

func TestMulCosts32xAdd(t *testing.T) {
	// The paper's headline hardware constraint.
	s := newTestSystem(t, 1)
	d := s.DPUs[0]
	d.Charge(PhaseLC, OpAdd, 100)
	addCycles := d.Stats(PhaseLC).ComputeCycles
	d.ResetCounters()
	d.Charge(PhaseLC, OpMul, 100)
	mulCycles := d.Stats(PhaseLC).ComputeCycles
	if mulCycles != 32*addCycles {
		t.Fatalf("mul/add ratio = %d/%d, want 32x", mulCycles, addCycles)
	}
}

func TestPipelineScaling(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Tasklets = 1 // starved pipeline
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := s.DPUs[0]
	d.Charge(PhaseDC, OpAdd, 100)
	if got := d.PhaseCycles(PhaseDC); got != 100*11 {
		t.Fatalf("1-tasklet cycles = %d, want 1100", got)
	}

	cfg.Tasklets = 16 // saturated
	s2, _ := NewSystem(cfg)
	d2 := s2.DPUs[0]
	d2.Charge(PhaseDC, OpAdd, 100)
	if got := d2.PhaseCycles(PhaseDC); got != 100 {
		t.Fatalf("16-tasklet cycles = %d, want 100", got)
	}
}

func TestDMACostModel(t *testing.T) {
	s := newTestSystem(t, 1)
	d := s.DPUs[0]
	d.DMA(PhaseDC, 1024)
	io := d.Stats(PhaseDC).IOCycles(&s.Cfg.Cost)
	want := uint64(77) + uint64(1024*0.5)
	if io != want {
		t.Fatalf("DMA cycles = %d, want %d", io, want)
	}
	// Two small DMAs cost more than one large DMA of the same total size —
	// the reason the engine batches MRAM reads.
	d.ResetCounters()
	d.DMA(PhaseDC, 512)
	d.DMA(PhaseDC, 512)
	two := d.Stats(PhaseDC).IOCycles(&s.Cfg.Cost)
	if two <= want {
		t.Fatalf("split DMA %d should cost more than one transfer %d", two, want)
	}
}

func TestComputeIOOverlap(t *testing.T) {
	// Phase time is max(compute, IO), per Equation 12.
	s := newTestSystem(t, 1)
	d := s.DPUs[0]
	d.Charge(PhaseLC, OpAdd, 10)
	d.DMA(PhaseLC, 100000)
	io := d.Stats(PhaseLC).IOCycles(&s.Cfg.Cost)
	if got := d.PhaseCycles(PhaseLC); got != io {
		t.Fatalf("IO-bound phase = %d, want %d", got, io)
	}
	d.ResetCounters()
	d.Charge(PhaseLC, OpMul, 1000000)
	d.DMA(PhaseLC, 10)
	if got := d.PhaseCycles(PhaseLC); got != 32*1000000 {
		t.Fatalf("compute-bound phase = %d, want %d", got, 32*1000000)
	}
}

func TestWRAMCapacity(t *testing.T) {
	s := newTestSystem(t, 1)
	d := s.DPUs[0]
	if err := d.AllocWRAM(60 * 1024); err != nil {
		t.Fatal(err)
	}
	if err := d.AllocWRAM(8 * 1024); err == nil {
		t.Fatal("expected WRAM overflow")
	}
	if d.WRAMFree() != 4*1024 {
		t.Fatalf("WRAMFree = %d", d.WRAMFree())
	}
	d.ResetWRAM()
	if d.WRAMUsed() != 0 {
		t.Fatal("ResetWRAM failed")
	}
	if err := d.AllocWRAM(-1); err == nil {
		t.Fatal("negative alloc must fail")
	}
}

func TestMRAMCapacity(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MRAMBytes = 1024
	s, _ := NewSystem(cfg)
	d := s.DPUs[0]
	if err := d.AllocMRAM(1000); err != nil {
		t.Fatal(err)
	}
	if err := d.AllocMRAM(100); err == nil {
		t.Fatal("expected MRAM overflow")
	}
	if d.MRAMFree() != 24 {
		t.Fatalf("MRAMFree = %d", d.MRAMFree())
	}
}

func TestHostTransferModel(t *testing.T) {
	s := newTestSystem(t, 100)
	bw := s.Cfg.HostBWBytesPerSec()
	// 0.75% of aggregate internal bandwidth.
	wantBW := 0.0075 * 100 * s.Cfg.InternalBWBytesPerSec()
	if bw != wantBW {
		t.Fatalf("host BW = %g, want %g", bw, wantBW)
	}
	s.TransferToDPUs(1 << 20)
	s.TransferFromDPUs(1 << 20)
	s.Launch()
	sec := s.TransferSeconds()
	want := float64(2<<20)/bw + s.Cfg.LaunchLatencySec
	if diff := sec - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("transfer seconds = %g, want %g", sec, want)
	}
	toDev, fromDev := s.TransferredBytes()
	if toDev != 1<<20 || fromDev != 1<<20 {
		t.Fatalf("transferred = %d/%d", toDev, fromDev)
	}
}

func TestImbalanceMetric(t *testing.T) {
	s := newTestSystem(t, 4)
	for i, d := range s.DPUs {
		d.Charge(PhaseDC, OpAdd, uint64(100*(i+1)))
	}
	// cycles: 100,200,300,400 -> mean 250, max 400
	if got := s.Imbalance(); got != 400.0/250.0 {
		t.Fatalf("imbalance = %v", got)
	}
	if s.MaxDPUCycles() != 400 {
		t.Fatalf("max cycles = %d", s.MaxDPUCycles())
	}
	s.ResetCounters()
	if s.Imbalance() != 1 {
		t.Fatal("empty system should report imbalance 1")
	}
}

func TestPhaseCyclesMax(t *testing.T) {
	s := newTestSystem(t, 3)
	s.DPUs[0].Charge(PhaseLC, OpAdd, 10)
	s.DPUs[1].Charge(PhaseLC, OpAdd, 50)
	s.DPUs[2].Charge(PhaseLC, OpAdd, 30)
	if got := s.PhaseCyclesMax(PhaseLC); got != 50 {
		t.Fatalf("PhaseCyclesMax = %d", got)
	}
}

func TestSecondsConversion(t *testing.T) {
	cfg := DefaultConfig(1)
	if sec := cfg.Seconds(350e6); sec != 1 {
		t.Fatalf("350M cycles at 350MHz = %v s, want 1", sec)
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{PhaseCL: "CL", PhaseRC: "RC", PhaseLC: "LC", PhaseDC: "DC", PhaseTS: "TS", PhaseOther: "Others"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("Phase %d = %q, want %q", int(p), p.String(), want)
		}
	}
	if Phase(99).String() == "" {
		t.Fatal("unknown phase should still stringify")
	}
}

func TestChargeMonotoneProperty(t *testing.T) {
	// More instructions never cost fewer cycles.
	f := func(a, b uint16) bool {
		s := newTestSystemQuick()
		d := s.DPUs[0]
		d.Charge(PhaseDC, OpAdd, uint64(a))
		ca := d.PhaseCycles(PhaseDC)
		d.Charge(PhaseDC, OpAdd, uint64(b))
		cb := d.PhaseCycles(PhaseDC)
		return cb >= ca
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func newTestSystemQuick() *System {
	s, err := NewSystem(DefaultConfig(1))
	if err != nil {
		panic(err)
	}
	return s
}

func TestRooflinePlatforms(t *testing.T) {
	cpu, gpu := PlatformCPU(), PlatformGPU()
	upmem24 := PlatformUPMEM(24)
	upmem32 := PlatformUPMEM(32)

	// At ANNS-like low arithmetic intensity (~1 op/byte) the CPU is
	// bandwidth-bound and the GPU is far faster — Figure 2's shape.
	ai := 1.0
	if cpu.RooflineGOPs(ai) >= gpu.RooflineGOPs(ai) {
		t.Fatal("GPU must beat CPU at low AI")
	}
	if cpu.RooflineGOPs(ai) != ai*cpu.MemBWGBs {
		t.Fatal("CPU must be bandwidth-bound at AI=1")
	}
	// UPMEM scales linearly with DIMM count.
	if upmem32.MemBWGBs <= upmem24.MemBWGBs || upmem32.PeakGOPs <= upmem24.PeakGOPs {
		t.Fatal("UPMEM must scale with DIMMs")
	}
	// UPMEM x24 has bandwidth comparable to the A100 (paper: "comparable").
	ratio := upmem24.MemBWGBs / gpu.MemBWGBs
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("UPMEM x24 BW / A100 BW = %v, want ~1", ratio)
	}
	// But UPMEM is compute-poor: peak is a tiny fraction of the GPU's.
	if PlatformUPMEM(32).PeakGOPs/gpu.PeakGOPs > 0.05 {
		t.Fatal("UPMEM compute should be a small fraction of A100")
	}
}

func TestGPUOOM(t *testing.T) {
	gpu := PlatformGPU()
	sift100m := 100e6 * 128.0 // bytes, uint8
	sift1b := 1e9 * 128.0
	if !gpu.Fits(sift100m) {
		t.Fatal("SIFT100M must fit A100")
	}
	if gpu.Fits(sift1b) {
		t.Fatal("SIFT1B must OOM on A100 (Figure 2's X markers)")
	}
	if !PlatformUPMEM(32).Fits(sift100m) {
		t.Fatal("SIFT100M must fit UPMEM x32")
	}
}

func TestRooflineMonotone(t *testing.T) {
	p := PlatformCPU()
	prev := 0.0
	for ai := 0.1; ai < 100; ai *= 2 {
		g := p.RooflineGOPs(ai)
		if g < prev {
			t.Fatal("roofline must be monotone in AI")
		}
		if g > p.PeakGOPs {
			t.Fatal("roofline must cap at peak")
		}
		prev = g
	}
}
