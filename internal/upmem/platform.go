package upmem

// Platform is an analytic model of a compute platform used for the paper's
// roofline analysis (Figure 2) and cross-platform scalability study
// (Figure 15). Only the quantities the roofline needs are modeled: peak
// arithmetic throughput, memory bandwidth, and capacity (for OOM checks).
type Platform struct {
	Name string
	// PeakGOPs is the peak arithmetic throughput in giga-operations/s for
	// the scalar integer/float ops ANNS issues.
	PeakGOPs float64
	// MemBWGBs is the peak memory bandwidth in GB/s.
	MemBWGBs float64
	// MemCapGB is usable memory capacity in GB; datasets larger than this
	// OOM (the GPU failure mode in Figure 2 and §5.4).
	MemCapGB float64
	// Threads and FreqGHz and VectorWidth feed the per-phase performance
	// model (#PE, F and effective lane count in Equations 1-12).
	Threads     int
	FreqGHz     float64
	VectorWidth int
}

// RooflineGOPs returns attainable throughput at the given arithmetic
// intensity (operations per byte): min(peak, AI * BW).
func (p Platform) RooflineGOPs(opsPerByte float64) float64 {
	bwBound := opsPerByte * p.MemBWGBs
	if bwBound < p.PeakGOPs {
		return bwBound
	}
	return p.PeakGOPs
}

// Fits reports whether a dataset of the given size fits in platform memory.
func (p Platform) Fits(datasetBytes float64) bool {
	return datasetBytes <= p.MemCapGB*1e9
}

// PlatformCPU models the paper's baseline CPU server: Intel Xeon Gold 5218
// (16 cores / 32 threads @ 2.3 GHz, AVX2) with 512 GB DDR4.
// Peak ~ 32 threads x 2.3 GHz x 8 lanes = 589 GOPs; ~100 GB/s of DRAM BW.
func PlatformCPU() Platform {
	return Platform{
		Name:        "CPU (Xeon Gold 5218, 32T AVX2)",
		PeakGOPs:    589,
		MemBWGBs:    100,
		MemCapGB:    512,
		Threads:     32,
		FreqGHz:     2.3,
		VectorWidth: 8,
	}
}

// PlatformGPU models an NVIDIA A100 PCIe 80 GB: ~19.5 TFLOPs fp32 and
// ~1.94 TB/s HBM2e, but only 80 GB of memory.
func PlatformGPU() Platform {
	return Platform{
		Name:        "GPU (A100 PCIe 80GB)",
		PeakGOPs:    19500,
		MemBWGBs:    1940,
		MemCapGB:    80,
		Threads:     6912,
		FreqGHz:     1.41,
		VectorWidth: 1,
	}
}

// PlatformUPMEM models a UPMEM deployment with the given number of DIMMs
// (the paper's server: ~2543 DPUs over 32 DIMMs, i.e. ~80 DPUs/DIMM at
// 350 MHz). Compute, bandwidth and capacity all scale linearly with DIMMs —
// the adaptive-scalability property Figure 2 highlights.
func PlatformUPMEM(dimms int) Platform {
	dpus := float64(dimms) * 80
	return Platform{
		Name:        "UPMEM",
		PeakGOPs:    dpus * 0.35, // 1 instr/cycle/DPU at 350 MHz
		MemBWGBs:    dpus * 0.70, // ~700 MB/s streaming per DPU
		MemCapGB:    dpus * 0.064,
		Threads:     int(dpus),
		FreqGHz:     0.35,
		VectorWidth: 1,
	}
}

// PlatformHBMPIM models Samsung's HBM-PIM (FIMDRAM): SIMD FP16 units at
// bank level. The paper scales DRIM-ANN to it in simulation; compute is
// ~3.69 % of A100 with roughly 2x the GPU's effective internal bandwidth.
func PlatformHBMPIM() Platform {
	return Platform{
		Name:        "HBM-PIM (Samsung FIMDRAM)",
		PeakGOPs:    19500 * 0.0369,
		MemBWGBs:    3900,
		MemCapGB:    48,
		Threads:     4096,
		FreqGHz:     0.30,
		VectorWidth: 16,
	}
}

// PlatformAiM models SK Hynix's GDDR6-AiM: ~12.31 % of A100 compute with
// very high bank-level internal bandwidth.
func PlatformAiM() Platform {
	return Platform{
		Name:        "AiM (SK Hynix GDDR6-AiM)",
		PeakGOPs:    19500 * 0.1231,
		MemBWGBs:    8000,
		MemCapGB:    64,
		Threads:     8192,
		FreqGHz:     1.0,
		VectorWidth: 16,
	}
}
